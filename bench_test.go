// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation. Each benchmark runs its experiment and, once
// per process, prints the reproduced table so `go test -bench . | tee
// bench_output.txt` doubles as the reproduction artifact referenced by
// EXPERIMENTS.md.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/experiments"
)

var printOnce sync.Map

// benchCtx is shared by every benchmark in the process, so calibrated
// jobs are reused across experiments exactly as in a serial
// varuna-bench run.
var benchCtx = experiments.NewCtx()

// runExperiment executes an experiment b.N times, printing its table
// on the first run.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		t, err := e.Run(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			fmt.Printf("\n%s\n", t)
		}
	}
}

func BenchmarkFigure3Availability(b *testing.B)   { runExperiment(b, "fig3") }
func BenchmarkFigure4Schedules(b *testing.B)      { runExperiment(b, "fig4") }
func BenchmarkTable3PipelineDepth(b *testing.B)   { runExperiment(b, "table3") }
func BenchmarkFigure5GPT8B(b *testing.B)          { runExperiment(b, "fig5") }
func BenchmarkFigure6GPT2B(b *testing.B)          { runExperiment(b, "fig6") }
func BenchmarkFigure7Gantt(b *testing.B)          { runExperiment(b, "fig7") }
func BenchmarkTable4TwentyB(b *testing.B)         { runExperiment(b, "table4") }
func BenchmarkBERTLargeAnd200B(b *testing.B)      { runExperiment(b, "bert200b") }
func BenchmarkScaling(b *testing.B)               { runExperiment(b, "scaling") }
func BenchmarkTable5GPipe(b *testing.B)           { runExperiment(b, "table5") }
func BenchmarkTable6Pipelines(b *testing.B)       { runExperiment(b, "table6") }
func BenchmarkTable7SimAccuracy(b *testing.B)     { runExperiment(b, "table7") }
func BenchmarkSimulatorSpeed(b *testing.B)        { runExperiment(b, "simspeed") }
func BenchmarkPlannerCaching(b *testing.B)        { runExperiment(b, "planner") }
func BenchmarkFigure8Morphing(b *testing.B)       { runExperiment(b, "fig8") }
func BenchmarkRestartCost(b *testing.B)           { runExperiment(b, "restart-cost") }
func BenchmarkOneVsFourGPUVMs(b *testing.B)       { runExperiment(b, "vmsize") }
func BenchmarkFigure9Convergence(b *testing.B)    { runExperiment(b, "fig9") }
func BenchmarkFigure10TwoBW(b *testing.B)         { runExperiment(b, "fig10") }
func BenchmarkSharedStateTracer(b *testing.B)     { runExperiment(b, "tracer") }
func BenchmarkAblationOpportunistic(b *testing.B) { runExperiment(b, "abl-opportunistic") }
func BenchmarkAblationMicroBatch(b *testing.B)    { runExperiment(b, "abl-microbatch") }
func BenchmarkAblationLastStage(b *testing.B)     { runExperiment(b, "abl-laststage") }
func BenchmarkAblationStraggler(b *testing.B)     { runExperiment(b, "abl-straggler") }
