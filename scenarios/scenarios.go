// Package scenarios embeds the committed scenario files so tests,
// experiments and golden checks load them independent of the working
// directory. The files are the source of truth for the migrated
// experiments (elastic, restart-cost, spot-dollars) and the seeded
// chaos-stress regime; `varuna-sim run scenarios/<name>.yaml` replays
// any of them from the repo root.
package scenarios

import "embed"

// FS holds every committed scenario file.
//
//go:embed *.yaml
var FS embed.FS
