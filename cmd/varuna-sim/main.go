// Command varuna-sim runs Varuna's auto-configuration for a model on a
// GPU fleet: it calibrates once, sweeps pipeline depths through the
// parametrized simulator (§4.4), and prints the predicted throughput of
// every feasible configuration plus the chosen one.
//
// The `run` subcommand is the scenario front door: it executes a
// declarative scenario file (fleet spec + scripted/chaos event
// timeline) end-to-end through the §4.6 manager and prints the
// structured run report. The same file and seeds always replay to a
// bit-identical timeline.
//
// Usage:
//
//	varuna-sim -model gpt2-8.3b -gpus 128 -batch 8192
//	varuna-sim -model gpt2-2.5b -gpus 100 -vm 4      # 4-GPU VMs
//	varuna-sim run scenario.yaml                     # run a scenario file
//	varuna-sim run elastic                           # or a committed scenario
//	varuna-sim run chaos-stress -json report.json    # machine-readable report
//	varuna-sim run restart-cost -state ./state       # persist planner+meter
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/scenario"
	"repro/scenarios"
)

func specByName(name string) (*model.Spec, bool) {
	for _, s := range model.Zoo() {
		if strings.EqualFold(s.Name, name) ||
			strings.EqualFold(strings.ReplaceAll(s.Name, "GPT2-", "gpt2-"), name) {
			return s, true
		}
	}
	return nil, false
}

// runScenario implements `varuna-sim run <scenario>`: load (from disk
// or the committed scenarios/ set), compile, execute, report.
func runScenario(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	jsonOut := fs.String("json", "", "also write the structured report as JSON to this path ('-' for stdout)")
	stateDir := fs.String("state", "", "state directory: load planner+meter before the run, save after")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: varuna-sim run <scenario.yaml | committed name> [-json path] [-state dir]\ncommitted scenarios:\n")
		entries, _ := scenarios.FS.ReadDir(".")
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".yaml") {
				fmt.Fprintf(os.Stderr, "  %s\n", strings.TrimSuffix(e.Name(), ".yaml"))
			}
		}
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() < 1 {
		fs.Usage()
		os.Exit(2)
	}
	name := fs.Arg(0)
	// Accept flags after the scenario name too (`run chaos-stress
	// -json r.json`): flag parsing stops at the first positional.
	fs.Parse(fs.Args()[1:])
	if fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}

	var sc *scenario.Scenario
	var err error
	if _, statErr := os.Stat(name); statErr == nil {
		sc, err = scenario.Load(name)
	} else if data, fsErr := scenarios.FS.ReadFile(strings.TrimSuffix(name, ".yaml") + ".yaml"); fsErr == nil {
		sc, err = scenario.Parse(data)
	} else {
		err = fmt.Errorf("%q is neither a file nor a committed scenario", name)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim run:", err)
		os.Exit(1)
	}

	fmt.Printf("scenario %s: %s\n", sc.Name, sc.Description)

	// A fleet-mode scenario runs N jobs through the arbiter and emits
	// the fleet report; single-job scenarios keep the direct path.
	var summary string
	var jsonBytes func() ([]byte, error)
	var violations []string
	if sc.Fleet != nil {
		if *stateDir != "" {
			fmt.Fprintln(os.Stderr, "varuna-sim run: -state is not supported for fleet scenarios")
			os.Exit(1)
		}
		res, err := scenario.RunFleet(sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "varuna-sim run:", err)
			os.Exit(1)
		}
		summary, jsonBytes, violations = res.Report.Summary(), res.Report.JSON, res.Report.Violations
	} else {
		res, err := scenario.Run(sc, *stateDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "varuna-sim run:", err)
			os.Exit(1)
		}
		summary, jsonBytes, violations = res.Report.Summary(), res.Report.JSON, res.Report.Violations
	}
	fmt.Print(summary)

	if *jsonOut != "" {
		data, err := jsonBytes()
		if err != nil {
			fmt.Fprintln(os.Stderr, "varuna-sim run:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "varuna-sim run:", err)
			os.Exit(1)
		}
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "run" {
		runScenario(os.Args[2:])
		return
	}
	modelName := flag.String("model", "GPT2-2.5B", "model name (see model zoo)")
	gpus := flag.Int("gpus", 100, "available GPUs")
	batch := flag.Int("batch", 8192, "global mini-batch size")
	vmSize := flag.Int("vm", 1, "GPUs per spot VM (1 or 4)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	spec, ok := specByName(*modelName)
	if !ok {
		fmt.Fprintf(os.Stderr, "varuna-sim: unknown model %q; available:\n", *modelName)
		for _, s := range model.Zoo() {
			fmt.Fprintf(os.Stderr, "  %s\n", s.Name)
		}
		os.Exit(1)
	}
	vm := hw.NC6v3
	if *vmSize == 4 {
		vm = hw.NC24v3
	}
	cluster := hw.SpotCluster(vm, *gpus)

	fmt.Printf("model:   %s\n", spec)
	fmt.Printf("cluster: %s (%d GPUs, %s inter-node)\n", cluster.Name, cluster.NumGPUs(), cluster.Inter.Kind)
	fmt.Printf("batch:   %d examples/mini-batch\n\n", *batch)

	job, err := core.NewJob(spec, cluster, *batch, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("calibrated %d cut-points; micro-batch sweet spot m=%d\n\n",
		len(job.CutPoints()), job.Calibration().PickMicroSize(0.05))

	sweep, err := job.Sweep(*gpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("%-10s %-4s %-6s %-12s %-10s %s\n", "config", "m", "Nm", "est/batch", "total ex/s", "ex/s/GPU")
	best := sweep[0]
	for _, c := range sweep {
		marker := ""
		if c.TotalExPerSec() > best.TotalExPerSec() {
			best = c
		}
		fmt.Printf("%-10s %-4d %-6d %-12v %-10.1f %.2f%s\n",
			fmt.Sprintf("%dx%d", c.P, c.D), c.M, c.Nm, c.Est, c.TotalExPerSec(), c.ExPerSecPerGPU(), marker)
	}
	fmt.Printf("\nchosen: %v → %.1f ex/s on %d GPUs\n", best, best.TotalExPerSec(), best.GPUsUsed)

	ms, err := job.Measure(best)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("measured: %v per mini-batch (%.1f ex/s) — simulator error %.1f%%\n",
		ms.MiniBatchTime, ms.ExPerSec(),
		100*abs(best.Est.Seconds()-ms.MiniBatchTime.Seconds())/ms.MiniBatchTime.Seconds())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
