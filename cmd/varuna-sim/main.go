// Command varuna-sim runs Varuna's auto-configuration for a model on a
// GPU fleet: it calibrates once, sweeps pipeline depths through the
// parametrized simulator (§4.4), and prints the predicted throughput of
// every feasible configuration plus the chosen one.
//
// Usage:
//
//	varuna-sim -model gpt2-8.3b -gpus 128 -batch 8192
//	varuna-sim -model gpt2-2.5b -gpus 100 -vm 4      # 4-GPU VMs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
)

func specByName(name string) (*model.Spec, bool) {
	for _, s := range model.Zoo() {
		if strings.EqualFold(s.Name, name) ||
			strings.EqualFold(strings.ReplaceAll(s.Name, "GPT2-", "gpt2-"), name) {
			return s, true
		}
	}
	return nil, false
}

func main() {
	modelName := flag.String("model", "GPT2-2.5B", "model name (see model zoo)")
	gpus := flag.Int("gpus", 100, "available GPUs")
	batch := flag.Int("batch", 8192, "global mini-batch size")
	vmSize := flag.Int("vm", 1, "GPUs per spot VM (1 or 4)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	spec, ok := specByName(*modelName)
	if !ok {
		fmt.Fprintf(os.Stderr, "varuna-sim: unknown model %q; available:\n", *modelName)
		for _, s := range model.Zoo() {
			fmt.Fprintf(os.Stderr, "  %s\n", s.Name)
		}
		os.Exit(1)
	}
	vm := hw.NC6v3
	if *vmSize == 4 {
		vm = hw.NC24v3
	}
	cluster := hw.SpotCluster(vm, *gpus)

	fmt.Printf("model:   %s\n", spec)
	fmt.Printf("cluster: %s (%d GPUs, %s inter-node)\n", cluster.Name, cluster.NumGPUs(), cluster.Inter.Kind)
	fmt.Printf("batch:   %d examples/mini-batch\n\n", *batch)

	job, err := core.NewJob(spec, cluster, *batch, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("calibrated %d cut-points; micro-batch sweet spot m=%d\n\n",
		len(job.CutPoints()), job.Calibration().PickMicroSize(0.05))

	sweep, err := job.Sweep(*gpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("%-10s %-4s %-6s %-12s %-10s %s\n", "config", "m", "Nm", "est/batch", "total ex/s", "ex/s/GPU")
	best := sweep[0]
	for _, c := range sweep {
		marker := ""
		if c.TotalExPerSec() > best.TotalExPerSec() {
			best = c
		}
		fmt.Printf("%-10s %-4d %-6d %-12v %-10.1f %.2f%s\n",
			fmt.Sprintf("%dx%d", c.P, c.D), c.M, c.Nm, c.Est, c.TotalExPerSec(), c.ExPerSecPerGPU(), marker)
	}
	fmt.Printf("\nchosen: %v → %.1f ex/s on %d GPUs\n", best, best.TotalExPerSec(), best.GPUsUsed)

	ms, err := job.Measure(best)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("measured: %v per mini-batch (%.1f ex/s) — simulator error %.1f%%\n",
		ms.MiniBatchTime, ms.ExPerSec(),
		100*abs(best.Est.Seconds()-ms.MiniBatchTime.Seconds())/ms.MiniBatchTime.Seconds())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
