// Command varuna-sim runs Varuna's auto-configuration for a model on a
// GPU fleet: it calibrates once, sweeps pipeline depths through the
// parametrized simulator (§4.4), and prints the predicted throughput of
// every feasible configuration plus the chosen one.
//
// The `run` subcommand is the scenario front door: it executes a
// declarative scenario file (fleet spec + scripted/chaos event
// timeline) end-to-end through the §4.6 manager and prints the
// structured run report. The same file and seeds always replay to a
// bit-identical timeline.
//
// Usage:
//
//	varuna-sim -model gpt2-8.3b -gpus 128 -batch 8192
//	varuna-sim -model gpt2-2.5b -gpus 100 -vm 4      # 4-GPU VMs
//	varuna-sim run scenario.yaml                     # run a scenario file
//	varuna-sim run elastic                           # or a committed scenario
//	varuna-sim run chaos-stress -json report.json    # machine-readable report
//	varuna-sim run restart-cost -state ./state       # persist planner+meter
//	varuna-sim run multi-job -trace trace.json       # + Chrome trace export
//	varuna-sim run elastic -html report.html         # + HTML report with sparklines
//	varuna-sim trace multi-job                       # trace-first shorthand
//	varuna-sim metrics elastic -o out/               # OpenMetrics + series CSV export
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/scenario"
	"repro/scenarios"
)

func specByName(name string) (*model.Spec, bool) {
	for _, s := range model.Zoo() {
		if strings.EqualFold(s.Name, name) ||
			strings.EqualFold(strings.ReplaceAll(s.Name, "GPT2-", "gpt2-"), name) {
			return s, true
		}
	}
	return nil, false
}

// loadScenario resolves a name to a scenario: a file on disk first,
// then the committed scenarios/ set.
func loadScenario(name string) (*scenario.Scenario, error) {
	if _, statErr := os.Stat(name); statErr == nil {
		return scenario.Load(name)
	}
	if data, fsErr := scenarios.FS.ReadFile(strings.TrimSuffix(name, ".yaml") + ".yaml"); fsErr == nil {
		return scenario.Parse(data)
	}
	return nil, fmt.Errorf("%q is neither a file nor a committed scenario", name)
}

// parseScenarioArgs parses a subcommand's flags around the positional
// scenario name (`run chaos-stress -json r.json` works: flag parsing
// stops at the first positional, so we parse, take the positional,
// and parse the remainder). Exits with usage on error.
func parseScenarioArgs(fs *flag.FlagSet, args []string) string {
	fs.Parse(args)
	if fs.NArg() < 1 {
		fs.Usage()
		os.Exit(2)
	}
	name := fs.Arg(0)
	fs.Parse(fs.Args()[1:])
	if fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}
	return name
}

// listScenarios prints the committed scenario names to stderr.
func listScenarios() {
	entries, _ := scenarios.FS.ReadDir(".")
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".yaml") {
			fmt.Fprintf(os.Stderr, "  %s\n", strings.TrimSuffix(e.Name(), ".yaml"))
		}
	}
}

// runOutcome is what an executed scenario hands the CLI: the printable
// report pieces plus the telemetry state the exporters read.
type runOutcome struct {
	summary    string
	jsonBytes  func() ([]byte, error)
	violations []string
	series     *obs.SeriesSet
	html       func() []byte
}

// observedRun compiles and executes a scenario with the given
// observability hooks attached (both may be nil — then the run is
// byte-identical to an unobserved one) and returns the report pieces
// the CLI prints. forceTelemetry enables continuous series sampling
// even when the scenario declares no telemetry block (the exporter
// paths). Fleet-mode scenarios go through the arbiter; -state is a
// single-job facility only.
func observedRun(sc *scenario.Scenario, stateDir string, tr *obs.Tracer, met *obs.Metrics, forceTelemetry bool) (*runOutcome, error) {
	if sc.Fleet != nil {
		if stateDir != "" {
			return nil, fmt.Errorf("-state is not supported for fleet scenarios")
		}
		c, err := scenario.CompileFleet(sc)
		if err != nil {
			return nil, err
		}
		if forceTelemetry {
			c.EnableTelemetry()
		}
		c.Observe(tr, met)
		res, err := c.Run()
		if err != nil {
			return nil, err
		}
		return &runOutcome{
			summary:    res.Report.Summary(),
			jsonBytes:  res.Report.JSON,
			violations: res.Report.Violations,
			series:     c.Series,
			html:       res.HTML,
		}, nil
	}
	c, err := scenario.Compile(sc)
	if err != nil {
		return nil, err
	}
	if forceTelemetry {
		c.EnableTelemetry()
	}
	c.Observe(tr, met)
	res, err := c.Run(stateDir)
	if err != nil {
		return nil, err
	}
	return &runOutcome{
		summary:    res.Report.Summary(),
		jsonBytes:  res.Report.JSON,
		violations: res.Report.Violations,
		series:     c.Series,
		html:       res.HTML,
	}, nil
}

// runScenario implements `varuna-sim run <scenario>`: load (from disk
// or the committed scenarios/ set), compile, execute, report. Returns
// the process exit code so deferred profile writers run before exit.
func runScenario(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	jsonOut := fs.String("json", "", "also write the structured report as JSON to this path ('-' for stdout)")
	stateDir := fs.String("state", "", "state directory: load planner+meter before the run, save after")
	traceOut := fs.String("trace", "", "export a Chrome trace-event JSON of the run to this path (open in Perfetto or chrome://tracing)")
	htmlOut := fs.String("html", "", "write a self-contained HTML report (summary, SLOs, series sparklines) to this path")
	prof := profiling.Register(fs, "varuna-sim run")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: varuna-sim run <scenario.yaml | committed name> [-json path] [-state dir] [-trace path] [-html path] [-cpuprofile path] [-memprofile path]\ncommitted scenarios:\n")
		listScenarios()
		fs.PrintDefaults()
	}
	name := parseScenarioArgs(fs, args)

	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer prof.Stop()

	sc, err := loadScenario(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim run:", err)
		return 1
	}

	fmt.Printf("scenario %s: %s\n", sc.Name, sc.Description)

	// Observability is attached only when asked for: with -trace unset
	// both hooks stay nil and the run (and its report bytes) is
	// identical to an unobserved one. -html forces series sampling so
	// the page has sparklines even for scenarios without a telemetry
	// block.
	var tr *obs.Tracer
	var met *obs.Metrics
	if *traceOut != "" {
		tr = obs.NewTracer()
		met = obs.NewMetrics()
	}

	out, err := observedRun(sc, *stateDir, tr, met, *htmlOut != "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim run:", err)
		return 1
	}
	fmt.Print(out.summary)

	if *traceOut != "" {
		if err := writeTrace(tr, met, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "varuna-sim run:", err)
			return 1
		}
	}
	if *htmlOut != "" {
		if err := os.WriteFile(*htmlOut, out.html(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "varuna-sim run:", err)
			return 1
		}
		fmt.Printf("html:      report → %s\n", *htmlOut)
	}
	if *jsonOut != "" {
		data, err := out.jsonBytes()
		if err != nil {
			fmt.Fprintln(os.Stderr, "varuna-sim run:", err)
			return 1
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "varuna-sim run:", err)
			return 1
		}
	}
	if len(out.violations) > 0 {
		return 1
	}
	return 0
}

// metricsScenario implements `varuna-sim metrics <scenario> [-o dir]`:
// run the scenario with continuous telemetry forced on and export the
// deterministic (SimOnly) metrics snapshot as OpenMetrics text plus
// the raw series points as CSV. Exporters do not gate: the exit code
// reflects export success, not invariant violations.
func metricsScenario(args []string) int {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	outDir := fs.String("o", ".", "output directory for metrics.om and series.csv")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: varuna-sim metrics <scenario.yaml | committed name> [-o dir]\ncommitted scenarios:\n")
		listScenarios()
		fs.PrintDefaults()
	}
	name := parseScenarioArgs(fs, args)

	sc, err := loadScenario(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim metrics:", err)
		return 1
	}
	fmt.Printf("scenario %s: %s\n", sc.Name, sc.Description)

	met := obs.NewMetrics()
	out, err := observedRun(sc, "", nil, met, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim metrics:", err)
		return 1
	}
	fmt.Print(out.summary)

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim metrics:", err)
		return 1
	}
	om := obs.OpenMetrics(met.Snapshot(obs.SimOnly), out.series)
	omPath := filepath.Join(*outDir, "metrics.om")
	if err := os.WriteFile(omPath, om, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim metrics:", err)
		return 1
	}
	csvPath := filepath.Join(*outDir, "series.csv")
	if err := os.WriteFile(csvPath, out.series.CSV(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim metrics:", err)
		return 1
	}
	names := out.series.Names()
	var pts int
	for _, n := range names {
		pts += out.series.Len(n)
	}
	fmt.Printf("metrics:   OpenMetrics → %s, %d series (%d points) → %s\n", omPath, len(names), pts, csvPath)
	return 0
}

// writeTrace exports the Chrome trace and prints the wall-clock
// self-profiling block (planner sweep / arbiter tick latencies) that
// never enters the deterministic report.
func writeTrace(tr *obs.Tracer, met *obs.Metrics, path string) error {
	data, err := tr.ChromeTrace()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("trace:     %d spans on %d tracks → %s\n", tr.Len(), len(tr.Tracks()), path)
	if ws := met.Snapshot(obs.WallOnly).Summary(); ws != "" {
		fmt.Print("self-profiling (wall-clock, not in report):\n" + ws)
	}
	return nil
}

// traceScenario implements `varuna-sim trace <scenario>`: run the
// scenario with tracing on and export the Chrome trace, defaulting the
// output path to <scenario>.trace.json. Shorthand for
// `run <scenario> -trace <scenario>.trace.json` minus the report JSON.
func traceScenario(args []string) int {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	out := fs.String("o", "", "trace output path (default <scenario>.trace.json)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: varuna-sim trace <scenario.yaml | committed name> [-o path]\ncommitted scenarios:\n")
		listScenarios()
		fs.PrintDefaults()
	}
	name := parseScenarioArgs(fs, args)

	sc, err := loadScenario(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim trace:", err)
		return 1
	}
	path := *out
	if path == "" {
		path = sc.Name + ".trace.json"
	}

	fmt.Printf("scenario %s: %s\n", sc.Name, sc.Description)
	tr := obs.NewTracer()
	met := obs.NewMetrics()
	res, err := observedRun(sc, "", tr, met, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim trace:", err)
		return 1
	}
	fmt.Print(res.summary)
	if err := writeTrace(tr, met, path); err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim trace:", err)
		return 1
	}
	if len(res.violations) > 0 {
		return 1
	}
	return 0
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "run":
			os.Exit(runScenario(os.Args[2:]))
		case "trace":
			os.Exit(traceScenario(os.Args[2:]))
		case "metrics":
			os.Exit(metricsScenario(os.Args[2:]))
		}
	}
	modelName := flag.String("model", "GPT2-2.5B", "model name (see model zoo)")
	gpus := flag.Int("gpus", 100, "available GPUs")
	batch := flag.Int("batch", 8192, "global mini-batch size")
	vmSize := flag.Int("vm", 1, "GPUs per spot VM (1 or 4)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	spec, ok := specByName(*modelName)
	if !ok {
		fmt.Fprintf(os.Stderr, "varuna-sim: unknown model %q; available:\n", *modelName)
		for _, s := range model.Zoo() {
			fmt.Fprintf(os.Stderr, "  %s\n", s.Name)
		}
		os.Exit(1)
	}
	vm := hw.NC6v3
	if *vmSize == 4 {
		vm = hw.NC24v3
	}
	cluster := hw.SpotCluster(vm, *gpus)

	fmt.Printf("model:   %s\n", spec)
	fmt.Printf("cluster: %s (%d GPUs, %s inter-node)\n", cluster.Name, cluster.NumGPUs(), cluster.Inter.Kind)
	fmt.Printf("batch:   %d examples/mini-batch\n\n", *batch)

	job, err := core.NewJob(spec, cluster, *batch, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("calibrated %d cut-points; micro-batch sweet spot m=%d\n\n",
		len(job.CutPoints()), job.Calibration().PickMicroSize(0.05))

	sweep, err := job.Sweep(*gpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("%-10s %-4s %-6s %-12s %-10s %s\n", "config", "m", "Nm", "est/batch", "total ex/s", "ex/s/GPU")
	best := sweep[0]
	for _, c := range sweep {
		marker := ""
		if c.TotalExPerSec() > best.TotalExPerSec() {
			best = c
		}
		fmt.Printf("%-10s %-4d %-6d %-12v %-10.1f %.2f%s\n",
			fmt.Sprintf("%dx%d", c.P, c.D), c.M, c.Nm, c.Est, c.TotalExPerSec(), c.ExPerSecPerGPU(), marker)
	}
	fmt.Printf("\nchosen: %v → %.1f ex/s on %d GPUs\n", best, best.TotalExPerSec(), best.GPUsUsed)

	ms, err := job.Measure(best)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("measured: %v per mini-batch (%.1f ex/s) — simulator error %.1f%%\n",
		ms.MiniBatchTime, ms.ExPerSec(),
		100*abs(best.Est.Seconds()-ms.MiniBatchTime.Seconds())/ms.MiniBatchTime.Seconds())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
