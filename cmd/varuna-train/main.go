// Command varuna-train runs the real numeric training engine: a small
// GPT trained with genuine pipeline + data parallelism over goroutine
// stages, demonstrating the semantics Varuna preserves — identical
// trajectories across (P, D, m) shapes, checkpointed morphing, and
// tracer-synchronized tied weights.
//
// Usage:
//
//	varuna-train -p 3 -d 2 -steps 100
//	varuna-train -p 2 -d 1 -morph-at 50 -morph-p 4   # morph mid-run
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/nn"
)

func main() {
	p := flag.Int("p", 3, "pipeline depth")
	d := flag.Int("d", 1, "data-parallel width")
	m := flag.Int("m", 8, "micro-batch size")
	batch := flag.Int("batch", 64, "global mini-batch size")
	steps := flag.Int("steps", 100, "mini-batches to train")
	lr := flag.Float64("lr", 3e-3, "Adam learning rate")
	morphAt := flag.Int("morph-at", 0, "checkpoint and morph after this step (0 = never)")
	morphP := flag.Int("morph-p", 2, "pipeline depth after the morph")
	morphD := flag.Int("morph-d", 1, "data-parallel width after the morph")
	flag.Parse()

	gpt := nn.GPTConfig{Vocab: 24, Dim: 24, SeqLen: 12, Layers: 4, MLPMult: 2, Seed: 99}
	cfg := engine.Config{GPT: gpt, P: *p, D: *d, MicroBatch: *m, BatchSize: *batch, LR: *lr, DataSeed: 7}
	e, err := engine.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-train:", err)
		os.Exit(1)
	}
	fmt.Printf("training char-GPT (%d layers, dim %d) at %dx%d, m=%d, batch %d\n",
		gpt.Layers, gpt.Dim, *p, *d, *m, *batch)
	if shared := e.SharedParamNames(); len(shared) > 0 {
		fmt.Printf("tracer: cross-partition shared parameters: %v (synchronized every mini-batch)\n", shared)
	}

	report := func(step int, loss float64) {
		if step%10 == 0 || step == *steps-1 {
			fmt.Printf("step %4d  loss %.4f\n", step+1, loss)
		}
	}
	for i := 0; i < *steps; i++ {
		if *morphAt > 0 && i == *morphAt {
			store := checkpoint.NewMemStore()
			if err := e.Save(store); err != nil {
				fmt.Fprintln(os.Stderr, "varuna-train:", err)
				os.Exit(1)
			}
			next := cfg
			next.P, next.D = *morphP, *morphD
			e, err = engine.Resume(next, store)
			if err != nil {
				fmt.Fprintln(os.Stderr, "varuna-train:", err)
				os.Exit(1)
			}
			fmt.Printf("-- morphed %dx%d → %dx%d at step %d (per-layer checkpoint resume) --\n",
				*p, *d, *morphP, *morphD, i)
		}
		report(i, e.Step())
	}
	fmt.Printf("held-out loss: %.4f\n", e.Eval(4))
}
