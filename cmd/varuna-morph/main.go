// Command varuna-morph replays a spot-VM market against a Varuna job
// and prints the morphing timeline (the Figure 8 scenario): the manager
// grows the fleet when capacity appears, reconfigures on preemption,
// excludes fail-stutter VMs, and checkpoints continuously.
// Reconfiguration downtime is priced by the restart cost model; with
// the default morph-or-hold policy the manager declines morphs whose
// modeled downtime exceeds the discounted throughput gain.
//
// Usage:
//
//	varuna-morph -model GPT2-2.5B -target 150 -hours 24
//	varuna-morph -policy constant          # the paper's flat 4-minute overhead
//	varuna-morph -state /tmp/ckpt          # warm-start/persist the planner cache
//	varuna-morph -prices volatile -objective dollar   # min-$/example on a stochastic curve
//	varuna-morph -prices constant -objective deadline -deadline-target 1.0
//
// With -state, the planner's cost cache and decision memo are loaded
// from <dir>/planner-state.json before the run (if present) and saved
// back after it, alongside the §4.5 checkpoint — a killed-and-restarted
// manager resumes with warm morph decisions instead of a cold re-sweep.
// When prices are on, the cost meter persists in the same file, so the
// resumed run continues the same cumulative bill.
//
// -prices attaches a spot price curve (constant at -dollar, or a
// seeded mean-reverting "volatile" one) and the run reports dollars
// spent by bucket. -objective selects what morph decisions optimize:
// throughput (the default; prices only account), dollar
// (min $/example — idle capacity released, marginal replicas shed
// through spikes), or deadline (-deadline-target million examples by
// the horizon, bought as cheaply as possible).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/autoconfig"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/manager"
	"repro/internal/model"
	"repro/internal/price"
	"repro/internal/restart"
	"repro/internal/simtime"
	"repro/internal/spot"
)

func main() {
	modelName := flag.String("model", "GPT2-2.5B", "model name")
	target := flag.Int("target", 150, "GPUs the manager keeps requesting")
	hours := flag.Float64("hours", 24, "simulated horizon")
	batch := flag.Int("batch", 8192, "global mini-batch size")
	seed := flag.Int64("seed", 1, "deterministic seed")
	policy := flag.String("policy", "hold", "reconfiguration pricing: hold (morph-or-hold), modeled, constant")
	stateDir := flag.String("state", "", "directory for planner-state persistence (empty disables)")
	prices := flag.String("prices", "off", "spot price curve: off, constant, volatile (mean-reverting, seeded)")
	dollar := flag.Float64("dollar", 2.40, "price level in $/GPU-hour (constant value / volatile mean)")
	objective := flag.String("objective", "throughput", "morph objective: throughput, dollar (min $/example), deadline")
	deadlineTarget := flag.Float64("deadline-target", 1.0, "deadline objective: million examples due by the horizon")
	flag.Parse()

	var spec *model.Spec
	for _, s := range model.Zoo() {
		if s.Name == *modelName {
			spec = s
		}
	}
	if spec == nil {
		fmt.Fprintf(os.Stderr, "varuna-morph: unknown model %q\n", *modelName)
		os.Exit(1)
	}
	opts := manager.DefaultOptions()
	switch *policy {
	case "hold":
		opts.Policy = manager.PolicyMorphOrHold
	case "modeled":
		opts.Policy = manager.PolicyModeled
	case "constant":
		opts.Policy = manager.PolicyConstant
	default:
		fmt.Fprintf(os.Stderr, "varuna-morph: unknown policy %q (hold, modeled, constant)\n", *policy)
		os.Exit(1)
	}
	horizon := simtime.FromSeconds(*hours * 3600)
	var curve *price.Curve
	switch *prices {
	case "off":
	case "constant":
		curve = price.Constant(*dollar)
	case "volatile":
		var err error
		curve, err = price.MeanReverting(price.MROptions{
			Mean: *dollar, Vol: 0.18, Reversion: 0.12, Horizon: horizon,
		}, *seed+3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "varuna-morph:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "varuna-morph: unknown prices %q (off, constant, volatile)\n", *prices)
		os.Exit(1)
	}
	switch *objective {
	case "throughput":
	case "dollar":
		opts.Objective = autoconfig.Objective{Kind: autoconfig.ObjMinDollarPerExample}
	case "deadline":
		opts.Objective = autoconfig.Objective{
			Kind:           autoconfig.ObjDeadline,
			DeadlineAt:     simtime.Time(horizon),
			TargetExamples: *deadlineTarget * 1e6,
		}
	default:
		fmt.Fprintf(os.Stderr, "varuna-morph: unknown objective %q (throughput, dollar, deadline)\n", *objective)
		os.Exit(1)
	}

	cluster := hw.SpotCluster(hw.NC6v3, *target)
	job, err := core.NewJob(spec, cluster, *batch, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-morph:", err)
		os.Exit(1)
	}
	var meter *price.Meter
	if curve != nil {
		meter = price.NewMeter(curve)
		opts.Meter = meter
	}
	if *stateDir != "" {
		sections := restart.Sections{restart.SectionPlanner: job.Planner()}
		if meter != nil {
			sections[restart.SectionMeter] = meter
		}
		found, err := restart.LoadSections(*stateDir, sections)
		if err != nil {
			fmt.Fprintln(os.Stderr, "varuna-morph:", err)
			os.Exit(1)
		}
		if found[restart.SectionPlanner] {
			fmt.Printf("planner state loaded from %s\n", *stateDir)
		}
		if found[restart.SectionMeter] {
			fmt.Printf("cost meter resumed at $%.2f\n", meter.Total())
		}
	}
	mk := spot.NewMarket(1, *target*4/5, *seed+1)
	mk.Prices = curve
	points, stats, err := job.RunOnSpotMarketOpts(mk, *target, horizon, *seed+2, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-morph:", err)
		os.Exit(1)
	}

	fmt.Printf("%-8s %-6s %-10s %-12s %-10s %-10s %s\n", "time", "GPUs", "config", "total ex/s", "ex/s/GPU", "downtime", "event")
	for _, p := range points {
		cfg, per, down := "-", "-", "-"
		if p.Config.GPUsUsed > 0 {
			cfg = fmt.Sprintf("%dx%d", p.Config.P, p.Config.D)
			per = fmt.Sprintf("%.2f", p.ExPerSec/float64(p.Config.GPUsUsed))
		}
		if p.Downtime > 0 {
			down = p.Downtime.String()
		}
		fmt.Printf("%-8s %-6d %-10s %-12.1f %-10s %-10s %s\n",
			fmt.Sprintf("%.1fh", p.At.Hours()), p.GPUs, cfg, p.ExPerSec, per, down, p.Event)
	}
	fmt.Printf("\n%d mini-batches (%.2fM examples), %d morphs, %d replacements, %d holds, %d preemptions, %d stragglers excluded\n",
		stats.MiniBatches, stats.Examples/1e6, stats.Morphs, stats.Replacements, stats.Holds, stats.Preemptions, stats.StragglersExcluded)
	fmt.Printf("%d checkpoints, %d mini-batches lost to rollbacks, %v downtime (%v reconfiguring)\n",
		stats.Checkpoints, stats.LostMiniBatches, stats.Downtime, stats.MorphDowntime)
	if curve != nil {
		fmt.Printf("dollars: $%.2f total ($%.2f compute, $%.2f reconfig, $%.2f idle) — $%.2f per 1k examples, %d VMs released\n",
			stats.DollarsSpent, stats.DollarsCompute, stats.DollarsReconfig, stats.DollarsIdle,
			1000*stats.DollarsPerExample(), stats.VMsReleased)
	}
	ps := job.Planner().Stats()
	fmt.Printf("planner: %d sweeps, decision memo %d/%d hits, cost cache %.0f%% hit rate (%d hits, %d misses, %d StageCosts builds, %d anchor sims)\n",
		ps.Sweeps, ps.DecisionHits, ps.DecisionHits+ps.DecisionMisses,
		100*ps.HitRate(), ps.CostHits, ps.CostMisses, ps.CostComputes, ps.SimAnchorRuns)
	if *stateDir != "" {
		sections := restart.Sections{restart.SectionPlanner: job.Planner()}
		if meter != nil {
			sections[restart.SectionMeter] = meter
		}
		if err := restart.SaveSections(*stateDir, sections); err != nil {
			fmt.Fprintln(os.Stderr, "varuna-morph:", err)
			os.Exit(1)
		}
		fmt.Printf("planner state saved to %s\n", *stateDir)
	}
}
