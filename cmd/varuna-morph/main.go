// Command varuna-morph replays a spot-VM market against a Varuna job
// and prints the morphing timeline (the Figure 8 scenario): the manager
// grows the fleet when capacity appears, reconfigures on preemption,
// excludes fail-stutter VMs, and checkpoints continuously.
//
// Usage:
//
//	varuna-morph -model GPT2-2.5B -target 150 -hours 24
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/simtime"
	"repro/internal/spot"
)

func main() {
	modelName := flag.String("model", "GPT2-2.5B", "model name")
	target := flag.Int("target", 150, "GPUs the manager keeps requesting")
	hours := flag.Float64("hours", 24, "simulated horizon")
	batch := flag.Int("batch", 8192, "global mini-batch size")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	var spec *model.Spec
	for _, s := range model.Zoo() {
		if s.Name == *modelName {
			spec = s
		}
	}
	if spec == nil {
		fmt.Fprintf(os.Stderr, "varuna-morph: unknown model %q\n", *modelName)
		os.Exit(1)
	}

	cluster := hw.SpotCluster(hw.NC6v3, *target)
	job, err := core.NewJob(spec, cluster, *batch, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-morph:", err)
		os.Exit(1)
	}
	mk := spot.NewMarket(1, *target*4/5, *seed+1)
	horizon := simtime.FromSeconds(*hours * 3600)
	points, stats, err := job.RunOnSpotMarket(mk, *target, horizon, *seed+2)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-morph:", err)
		os.Exit(1)
	}

	fmt.Printf("%-8s %-6s %-10s %-12s %-10s %s\n", "time", "GPUs", "config", "total ex/s", "ex/s/GPU", "event")
	for _, p := range points {
		cfg, per := "-", "-"
		if p.Config.GPUsUsed > 0 {
			cfg = fmt.Sprintf("%dx%d", p.Config.P, p.Config.D)
			per = fmt.Sprintf("%.2f", p.ExPerSec/float64(p.Config.GPUsUsed))
		}
		fmt.Printf("%-8s %-6d %-10s %-12.1f %-10s %s\n",
			fmt.Sprintf("%.1fh", p.At.Hours()), p.GPUs, cfg, p.ExPerSec, per, p.Event)
	}
	fmt.Printf("\n%d mini-batches (%.2fM examples), %d morphs, %d replacements, %d preemptions, %d stragglers excluded\n",
		stats.MiniBatches, stats.Examples/1e6, stats.Morphs, stats.Replacements, stats.Preemptions, stats.StragglersExcluded)
	fmt.Printf("%d checkpoints, %d mini-batches lost to rollbacks, %v downtime\n",
		stats.Checkpoints, stats.LostMiniBatches, stats.Downtime)
	ps := job.Planner().Stats()
	fmt.Printf("planner: %d sweeps, decision memo %d/%d hits, cost cache %.0f%% hit rate (%d hits, %d misses, %d StageCosts builds, %d anchor sims)\n",
		ps.Sweeps, ps.DecisionHits, ps.DecisionHits+ps.DecisionMisses,
		100*ps.HitRate(), ps.CostHits, ps.CostMisses, ps.CostComputes, ps.SimAnchorRuns)
}
