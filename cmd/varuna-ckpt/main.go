// Command varuna-ckpt inspects and exercises Varuna's per-layer
// checkpoint format (§4.5): it trains a small model, writes a sharded
// checkpoint to disk, prints the manifest and layer inventory, then
// resumes under a different pipeline shape to verify the
// morphing-resume path end to end.
//
// Usage:
//
//	varuna-ckpt -dir /tmp/ckpt            # write, inspect, resume
//	varuna-ckpt -dir /tmp/ckpt -inspect   # inspect an existing checkpoint
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/nn"
	"repro/internal/restart"
)

func main() {
	dir := flag.String("dir", "", "checkpoint directory (required)")
	inspect := flag.Bool("inspect", false, "only print the latest manifest and layer sizes")
	steps := flag.Int("steps", 8, "mini-batches to train before checkpointing")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "varuna-ckpt: -dir is required")
		os.Exit(1)
	}
	store, err := checkpoint.NewFileStore(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-ckpt:", err)
		os.Exit(1)
	}

	if !*inspect {
		gpt := nn.GPTConfig{Vocab: 24, Dim: 24, SeqLen: 12, Layers: 4, MLPMult: 2, Seed: 99}
		cfg := engine.Config{GPT: gpt, P: 3, D: 2, MicroBatch: 8, BatchSize: 48, LR: 3e-3, DataSeed: 7}
		e, err := engine.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "varuna-ckpt:", err)
			os.Exit(1)
		}
		losses := e.Losses(*steps)
		if err := e.Save(store); err != nil {
			fmt.Fprintln(os.Stderr, "varuna-ckpt:", err)
			os.Exit(1)
		}
		fmt.Printf("trained %d steps at 3x2 (loss %.4f → %.4f), checkpoint written to %s\n",
			*steps, losses[0], losses[len(losses)-1], *dir)

		// Resume under a different shape, the §4.5 morphing property.
		cfg2 := cfg
		cfg2.P, cfg2.D = 2, 3
		r, err := engine.Resume(cfg2, store)
		if err != nil {
			fmt.Fprintln(os.Stderr, "varuna-ckpt:", err)
			os.Exit(1)
		}
		next := r.Step()
		fmt.Printf("resumed at 2x3 from step %d; next mini-batch loss %.4f\n", *steps, next)
	}

	m, ok, err := store.Latest()
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-ckpt:", err)
		os.Exit(1)
	}
	if !ok {
		fmt.Println("no checkpoint present")
		return
	}
	fmt.Printf("\nmanifest: step %d, %d/%d layers, %d state bytes recorded\n",
		m.Step, len(m.Layers), m.NumLayers, m.TotalBytes())
	var total int
	for _, l := range m.Layers {
		ls, err := store.GetLayer(m.Step, l)
		if err != nil {
			fmt.Fprintln(os.Stderr, "varuna-ckpt:", err)
			os.Exit(1)
		}
		fmt.Printf("  layer %2d: %7d params (+%d Adam moments, %d bytes)\n",
			l, len(ls.Params), len(ls.M)+len(ls.V), m.BytesFor(l))
		total += len(ls.Params)
	}
	if *inspect {
		fmt.Printf("total: %d parameters\n", total)
	} else {
		fmt.Printf("total: %d parameters (%d bytes written through this store)\n", total, store.BytesWritten())
	}

	// Price the morph this tool just demonstrated from the manifest's
	// own byte accounting: the 3x2 → 2x3 reshape over commodity
	// ethernet, with un-flushed work pending. Manifests written before
	// byte accounting existed record no sizes, and a price built from
	// zeros would be confidently meaningless — skip it.
	if m.TotalBytes() == 0 {
		fmt.Println("manifest predates byte accounting; skipping reconfiguration pricing")
		return
	}
	rm := restart.NewModelFromManifest(m, hw.SpotCluster(hw.NC6v3, 6))
	costs := rm.Price(
		restart.Assignment{Stages: restart.EvenStages(m.NumLayers, 3), D: 2},
		restart.Assignment{Stages: restart.EvenStages(m.NumLayers, 2), D: 3},
		true,
	)
	fmt.Printf("modeled 3x2 → 2x3 reconfiguration cost: %v\n", costs)
}
