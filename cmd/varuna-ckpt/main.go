// Command varuna-ckpt inspects and exercises Varuna's per-layer
// checkpoint format (§4.5): it trains a small model, writes a sharded
// checkpoint to disk, prints the manifest and layer inventory, then
// resumes under a different pipeline shape to verify the
// morphing-resume path end to end.
//
// Usage:
//
//	varuna-ckpt -dir /tmp/ckpt            # write, inspect, resume
//	varuna-ckpt -dir /tmp/ckpt -inspect   # inspect an existing checkpoint
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/nn"
)

func main() {
	dir := flag.String("dir", "", "checkpoint directory (required)")
	inspect := flag.Bool("inspect", false, "only print the latest manifest and layer sizes")
	steps := flag.Int("steps", 8, "mini-batches to train before checkpointing")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "varuna-ckpt: -dir is required")
		os.Exit(1)
	}
	store, err := checkpoint.NewFileStore(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-ckpt:", err)
		os.Exit(1)
	}

	if !*inspect {
		gpt := nn.GPTConfig{Vocab: 24, Dim: 24, SeqLen: 12, Layers: 4, MLPMult: 2, Seed: 99}
		cfg := engine.Config{GPT: gpt, P: 3, D: 2, MicroBatch: 8, BatchSize: 48, LR: 3e-3, DataSeed: 7}
		e, err := engine.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "varuna-ckpt:", err)
			os.Exit(1)
		}
		losses := e.Losses(*steps)
		if err := e.Save(store); err != nil {
			fmt.Fprintln(os.Stderr, "varuna-ckpt:", err)
			os.Exit(1)
		}
		fmt.Printf("trained %d steps at 3x2 (loss %.4f → %.4f), checkpoint written to %s\n",
			*steps, losses[0], losses[len(losses)-1], *dir)

		// Resume under a different shape, the §4.5 morphing property.
		cfg2 := cfg
		cfg2.P, cfg2.D = 2, 3
		r, err := engine.Resume(cfg2, store)
		if err != nil {
			fmt.Fprintln(os.Stderr, "varuna-ckpt:", err)
			os.Exit(1)
		}
		next := r.Step()
		fmt.Printf("resumed at 2x3 from step %d; next mini-batch loss %.4f\n", *steps, next)
	}

	m, ok, err := store.Latest()
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-ckpt:", err)
		os.Exit(1)
	}
	if !ok {
		fmt.Println("no checkpoint present")
		return
	}
	fmt.Printf("\nmanifest: step %d, %d/%d layers\n", m.Step, len(m.Layers), m.NumLayers)
	var total int
	for _, l := range m.Layers {
		ls, err := store.GetLayer(m.Step, l)
		if err != nil {
			fmt.Fprintln(os.Stderr, "varuna-ckpt:", err)
			os.Exit(1)
		}
		fmt.Printf("  layer %2d: %7d params (+%d Adam moments)\n", l, len(ls.Params), len(ls.M)+len(ls.V))
		total += len(ls.Params)
	}
	fmt.Printf("total: %d parameters\n", total)
}
