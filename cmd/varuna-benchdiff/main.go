// Command varuna-benchdiff gates CI on the BENCH_*.json perf
// trajectory: it compares the wall_ms of a fresh `varuna-bench -json`
// run against the committed baseline reports and exits non-zero when
// an experiment regressed past the tolerance, failed, or disappeared.
//
// Usage:
//
//	varuna-bench -parallel 0 -json /tmp/bench
//	varuna-benchdiff -baseline bench/baseline -current /tmp/bench
//
// An experiment regresses when
//
//	current wall_ms > tolerance · baseline wall_ms + floor
//
// The multiplicative tolerance absorbs machine speed differences
// between the machine that committed the baseline and the CI runner;
// the additive floor keeps millisecond-scale experiments from tripping
// on scheduler noise. Experiments without a baseline are listed as
// "new" and pass — refresh the baseline directory to adopt them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/experiments"
)

func main() {
	baseline := flag.String("baseline", "bench/baseline", "directory of committed BENCH_<id>.json reports")
	current := flag.String("current", "", "directory of the fresh run's BENCH_<id>.json reports")
	tolerance := flag.Float64("tolerance", 3.0, "multiplicative wall_ms slack vs baseline")
	floor := flag.Float64("floor-ms", 250, "additive wall_ms slack vs baseline")
	history := flag.String("history", "", "append this green run's wall_ms summary (p50/p99/max) to the given JSONL file and flag cross-run drift")
	drift := flag.Float64("drift", 2.0, "advisory drift factor vs the historical per-experiment median (with -history)")
	flag.Parse()

	if *current == "" {
		fmt.Fprintln(os.Stderr, "varuna-benchdiff: -current is required")
		os.Exit(2)
	}
	base, err := loadReports(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-benchdiff:", err)
		os.Exit(2)
	}
	cur, err := loadReports(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-benchdiff:", err)
		os.Exit(2)
	}

	deltas, failures := experiments.DiffReports(base, cur, *tolerance, *floor)
	fmt.Println(experiments.RenderDeltas(deltas))
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "varuna-benchdiff: %d experiment(s) failed the gate (tolerance %.1fx + %.0fms)\n",
			failures, *tolerance, *floor)
		os.Exit(1)
	}
	fmt.Printf("all %d experiments within %.1fx + %.0fms of baseline\n", len(deltas), *tolerance, *floor)

	// The gate is green: record the run in the cross-run history and
	// surface slow creep a single-baseline comparison cannot see. Drift
	// is advisory — it never fails the gate.
	if *history != "" {
		entry := experiments.NewHistoryEntry(cur)
		hist, err := experiments.LoadHistory(*history)
		if err != nil {
			fmt.Fprintln(os.Stderr, "varuna-benchdiff: -history:", err)
			os.Exit(2)
		}
		for _, msg := range experiments.Drift(hist, entry, *drift) {
			fmt.Printf("drift (advisory): %s\n", msg)
		}
		if err := experiments.AppendHistory(*history, entry); err != nil {
			fmt.Fprintln(os.Stderr, "varuna-benchdiff: -history:", err)
			os.Exit(2)
		}
		fmt.Printf("history: appended run summary (p50 %.0fms, p99 %.0fms, max %.0fms) to %s (%d prior run(s))\n",
			entry.P50, entry.P99, entry.Max, *history, len(hist))
	}
}

// loadReports reads every BENCH_*.json in dir.
func loadReports(dir string) ([]experiments.Report, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no BENCH_*.json reports in %s", dir)
	}
	sort.Strings(matches)
	var out []experiments.Report
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var r experiments.Report
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if r.ID == "" {
			r.ID = strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "BENCH_"), ".json")
		}
		out = append(out, r)
	}
	return out, nil
}
