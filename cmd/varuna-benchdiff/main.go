// Command varuna-benchdiff gates CI on the BENCH_*.json perf
// trajectory: it compares the wall_ms of a fresh `varuna-bench -json`
// run against the committed baseline reports and exits non-zero when
// an experiment regressed past the tolerance, failed, or disappeared.
//
// Usage:
//
//	varuna-bench -parallel 0 -json /tmp/bench
//	varuna-benchdiff -baseline bench/baseline -current /tmp/bench
//
// An experiment regresses when
//
//	current wall_ms > tolerance · baseline wall_ms + floor
//
// The multiplicative tolerance absorbs machine speed differences
// between the machine that committed the baseline and the CI runner;
// the additive floor keeps millisecond-scale experiments from tripping
// on scheduler noise. Experiments without a baseline are listed as
// "new" and pass — refresh the baseline directory to adopt them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/experiments"
)

func main() {
	baseline := flag.String("baseline", "bench/baseline", "directory of committed BENCH_<id>.json reports")
	current := flag.String("current", "", "directory of the fresh run's BENCH_<id>.json reports")
	tolerance := flag.Float64("tolerance", 3.0, "multiplicative wall_ms slack vs baseline")
	floor := flag.Float64("floor-ms", 250, "additive wall_ms slack vs baseline")
	flag.Parse()

	if *current == "" {
		fmt.Fprintln(os.Stderr, "varuna-benchdiff: -current is required")
		os.Exit(2)
	}
	base, err := loadReports(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-benchdiff:", err)
		os.Exit(2)
	}
	cur, err := loadReports(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "varuna-benchdiff:", err)
		os.Exit(2)
	}

	deltas, failures := experiments.DiffReports(base, cur, *tolerance, *floor)
	fmt.Println(experiments.RenderDeltas(deltas))
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "varuna-benchdiff: %d experiment(s) failed the gate (tolerance %.1fx + %.0fms)\n",
			failures, *tolerance, *floor)
		os.Exit(1)
	}
	fmt.Printf("all %d experiments within %.1fx + %.0fms of baseline\n", len(deltas), *tolerance, *floor)
}

// loadReports reads every BENCH_*.json in dir.
func loadReports(dir string) ([]experiments.Report, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no BENCH_*.json reports in %s", dir)
	}
	sort.Strings(matches)
	var out []experiments.Report
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var r experiments.Report
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if r.ID == "" {
			r.ID = strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "BENCH_"), ".json")
		}
		out = append(out, r)
	}
	return out, nil
}
