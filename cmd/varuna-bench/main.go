// Command varuna-bench regenerates the paper's tables and figures on
// the reproduction stack.
//
// Usage:
//
//	varuna-bench                    # run everything (slow)
//	varuna-bench -list              # list experiment ids
//	varuna-bench -exp fig4          # run one experiment
//	varuna-bench -parallel 0        # fan experiments across all cores
//	varuna-bench -json out/         # write BENCH_<id>.json timing reports
//	varuna-bench -exp planner -cpuprofile cpu.pprof   # profile a hot path
//
// -cpuprofile and -memprofile write pprof profiles of the run — the
// same binary the CI perf gate (varuna-benchdiff) executes, so a
// wall_ms regression flagged there can be diagnosed directly:
//
//	go tool pprof cpu.pprof
//
// With -parallel != 1 (0 means GOMAXPROCS) experiments run against
// isolated job caches; tables still print in registry order. The
// isolation choice follows the flag, not the resolved worker count, so
// -parallel 0 on a 1-CPU machine runs serially but produces the same
// isolated-cache numbers as a many-core run. Experiments that serially
// share a calibrated job (and its testbed RNG stream) recalibrate in
// isolated mode, so their jitter samples — and thus some measured
// numbers — differ from a serial -parallel 1 run; see EXPERIMENTS.md.
// Each -json report carries the experiment id, paper reference,
// wall-clock milliseconds and outcome.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/profiling"
)

// main defers to run so profile-flushing defers execute before the
// process exits (os.Exit skips them).
func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list experiments and exit")
	exp := flag.String("exp", "", "run a single experiment by id")
	parallel := flag.Int("parallel", 1, "experiments to run concurrently (1 runs serially with shared calibration; any other value — including 0, meaning GOMAXPROCS — isolates job caches even on one CPU, so jitter-derived numbers can differ from a serial run; see EXPERIMENTS.md)")
	jsonDir := flag.String("json", "", "directory for per-experiment BENCH_<id>.json timing reports (empty disables)")
	prof := profiling.Register(flag.CommandLine, "varuna-bench")
	flag.Parse()

	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer prof.Stop()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Paper)
		}
		return 0
	}
	entries := experiments.All()
	if *exp != "" {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "varuna-bench: unknown experiment %q (try -list)\n", *exp)
			return 1
		}
		entries = []experiments.Entry{e}
	}
	// Isolation semantics follow the flag, not the machine: -parallel 0
	// means "isolated job caches, as parallel as the hardware allows",
	// which on a 1-CPU box must still isolate (GOMAXPROCS resolving to
	// 1 must not silently switch to shared-cache semantics).
	workers := *parallel
	isolated := *parallel != 1
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "varuna-bench: %v\n", err)
			return 1
		}
	}

	failed := false
	reports := experiments.RunEntriesWith(entries, experiments.RunOptions{Workers: workers, Isolated: isolated}, func(r experiments.Report) {
		if !r.OK {
			failed = true
			fmt.Fprintf(os.Stderr, "varuna-bench: %s: %s\n", r.ID, r.Error)
			return
		}
		fmt.Println(r.Table)
		fmt.Printf("[%s completed in %.0fms]\n\n", r.ID, r.WallMS)
	})
	if *jsonDir != "" {
		for _, r := range reports {
			if err := writeReport(*jsonDir, r); err != nil {
				fmt.Fprintf(os.Stderr, "varuna-bench: %v\n", err)
				failed = true
			}
		}
	}
	if failed {
		return 1
	}
	return 0
}

func writeReport(dir string, r experiments.Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+r.ID+".json"), append(data, '\n'), 0o644)
}
