// Command varuna-bench regenerates the paper's tables and figures on
// the reproduction stack.
//
// Usage:
//
//	varuna-bench            # run everything (slow)
//	varuna-bench -list      # list experiment ids
//	varuna-bench -exp fig4  # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	exp := flag.String("exp", "", "run a single experiment by id")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Paper)
		}
		return
	}
	run := experiments.All()
	if *exp != "" {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "varuna-bench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		run = []experiments.Entry{e}
	}
	for _, e := range run {
		start := time.Now()
		t, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "varuna-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(t)
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
