// Quickstart: train a massive model on whatever spot GPUs you can get.
//
// This example walks the full Varuna flow on the 8.3B GPT-2: identify
// cut-points, calibrate once, let the simulator pick the configuration
// for the fleet you have, execute a mini-batch, and re-configure when
// the fleet shrinks — without touching hyper-parameters.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
)

func main() {
	spec := model.GPT2Megatron8B()
	cluster := hw.SpotCluster(hw.NC6v3, 128) // 128 spot 1-GPU V100 VMs
	const miniBatch = 8192

	fmt.Printf("model: %s\n", spec)
	fmt.Printf("fleet: %d×%s on %s\n\n", cluster.NumGPUs(), cluster.VM.Name, cluster.Inter.Kind)

	// One-time setup: cut-point identification (§5.1) and
	// scale-invariant calibration (§4.3). Neither depends on the
	// fleet size, so morphing never repeats this.
	job, err := core.NewJob(spec, cluster, miniBatch, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("setup: %d cut-points, micro-batch sweet spot m=%d\n\n",
		len(job.CutPoints()), job.Calibration().PickMicroSize(0.05))

	// Auto-configuration (§4.4): sweep pipeline depths through the
	// parametrized simulator and pick the fastest.
	best, err := job.BestConfig(128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chosen config for 128 GPUs: %v\n", best)

	// Execute one mini-batch on the cluster and compare with the
	// simulator's prediction.
	ms, err := job.Measure(best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured: %v per mini-batch = %.1f ex/s (%.2f ex/s/GPU)\n",
		ms.MiniBatchTime, ms.ExPerSec(), ms.ExPerSec()/float64(best.GPUsUsed))
	est, err := job.Estimate(best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulator predicted %v — the Table 7 property\n\n", est)

	// Preemption strikes: 35 VMs vanish. Morph to 93 GPUs. The global
	// mini-batch stays 8192 — gradient accumulation absorbs the loss
	// of replicas (§4.2), so training semantics are unchanged.
	shrunk, err := job.BestConfig(93)
	if err != nil {
		log.Fatal(err)
	}
	ms2, err := job.Measure(shrunk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after preemption, 93 GPUs: %v → %.1f ex/s (%.2f ex/s/GPU)\n",
		shrunk, ms2.ExPerSec(), ms2.ExPerSec()/float64(shrunk.GPUsUsed))
	fmt.Printf("effective batch unchanged: %d → %d examples\n", best.Examples, shrunk.Examples)
}
