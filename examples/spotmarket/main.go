// Spotmarket: ride a volatile spot-VM fleet for 24 hours (the Figure 8
// scenario). The Varuna manager detects preemptions through missed
// heartbeats, flags fail-stutter VMs, rolls back to the last
// checkpoint when work is lost, and morphs the (P, D) configuration so
// per-GPU throughput stays level while the fleet swings. The market
// carries a spot price curve, so the run is also metered in dollars —
// compute vs reconfiguration downtime vs idle capacity.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/price"
	"repro/internal/simtime"
	"repro/internal/spot"
)

func main() {
	spec := model.GPT2XL2B()
	const target = 150
	cluster := hw.SpotCluster(hw.NC6v3, target)

	job, err := core.NewJob(spec, cluster, 8192, 5)
	if err != nil {
		log.Fatal(err)
	}

	// A spot market with ~120 spare GPUs on average, swinging over an
	// 8-hour datacenter load cycle, priced by a mean-reverting spot
	// curve around $2.40/GPU·h.
	mk := spot.NewMarket(1, 120, 11)
	mk.Prices, err = price.MeanReverting(price.MROptions{
		Mean: 2.40, Vol: 0.18, Reversion: 0.12, Horizon: 24 * simtime.Hour,
	}, 12)
	if err != nil {
		log.Fatal(err)
	}
	points, stats, err := job.RunOnSpotMarket(mk, target, 24*simtime.Hour, 13)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("24 hours of %s on spot 1-GPU VMs (target %d GPUs)\n\n", spec.Name, target)
	fmt.Printf("%-7s %-5s %-9s %-11s %-9s %s\n", "time", "GPUs", "config", "total ex/s", "per-GPU", "event")
	for _, p := range points {
		if p.Config.GPUsUsed == 0 {
			fmt.Printf("%-7s %-5d %-9s %-11s %-9s %s\n",
				fmt.Sprintf("%.1fh", p.At.Hours()), p.GPUs, "-", "-", "-", p.Event)
			continue
		}
		fmt.Printf("%-7s %-5d %-9s %-11.1f %-9.2f %s\n",
			fmt.Sprintf("%.1fh", p.At.Hours()), p.GPUs,
			fmt.Sprintf("%dx%d", p.Config.P, p.Config.D),
			p.ExPerSec, p.ExPerSec/float64(p.Config.GPUsUsed), p.Event)
	}
	fmt.Printf("\nsummary: %.1fM examples in %d mini-batches\n", stats.Examples/1e6, stats.MiniBatches)
	fmt.Printf("  %d morphs, %d replacement events, %d preemptions, %d allocations\n",
		stats.Morphs, stats.Replacements, stats.Preemptions, stats.Allocations)
	fmt.Printf("  %d checkpoints, %d mini-batches rolled back, %d stragglers excluded, %v downtime\n",
		stats.Checkpoints, stats.LostMiniBatches, stats.StragglersExcluded, stats.Downtime)
	fmt.Printf("  $%.2f spent ($%.2f compute, $%.2f reconfig, $%.2f idle) — $%.2f per 1k examples\n",
		stats.DollarsSpent, stats.DollarsCompute, stats.DollarsReconfig, stats.DollarsIdle,
		1000*stats.DollarsPerExample())
}
