// Convergence: the semantic guarantees, demonstrated with real
// arithmetic. A small GPT trains under several (P, D, m) shapes with
// the same global batch — every trajectory is identical (correctness-
// preserving morphing, §4.2). A mid-run checkpoint morph does not
// perturb the loss. Tied embedding weights stay consistent across
// partitions because the tracer-mandated sync runs (§5.2).
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/nn"
)

func main() {
	gpt := nn.GPTConfig{Vocab: 24, Dim: 24, SeqLen: 12, Layers: 4, MLPMult: 2, Seed: 99}
	base := engine.Config{GPT: gpt, MicroBatch: 8, BatchSize: 48, LR: 3e-3, DataSeed: 7}

	// 1. Morphing invariance: same M_total, different shapes.
	fmt.Println("1) one global batch, three cluster shapes — identical training:")
	shapes := []struct{ p, d, m int }{{1, 1, 48}, {3, 2, 8}, {6, 1, 4}}
	var ref []float64
	for _, s := range shapes {
		cfg := base
		cfg.P, cfg.D, cfg.MicroBatch = s.p, s.d, s.m
		e, err := engine.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		losses := e.Losses(6)
		if ref == nil {
			ref = losses
		}
		var worst float64
		for i := range losses {
			if d := math.Abs(losses[i] - ref[i]); d > worst {
				worst = d
			}
		}
		fmt.Printf("   %dx%d m=%-2d  losses %.6f → %.6f   max|Δ| vs reference: %.1e\n",
			s.p, s.d, s.m, losses[0], losses[len(losses)-1], worst)
	}

	// 2. Checkpointed morph mid-run.
	fmt.Println("\n2) checkpoint at step 5, resume on a different shape:")
	cfg := base
	cfg.P, cfg.D = 3, 2
	a, err := engine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pre := a.Losses(5)
	store := checkpoint.NewMemStore()
	if err := a.Save(store); err != nil {
		log.Fatal(err)
	}
	cfg2 := base
	cfg2.P, cfg2.D = 2, 3
	b, err := engine.Resume(cfg2, store)
	if err != nil {
		log.Fatal(err)
	}
	post := b.Losses(5)
	fmt.Printf("   3x2 steps 1-5:  %.6f → %.6f\n", pre[0], pre[4])
	fmt.Printf("   2x3 steps 6-10: %.6f → %.6f (trajectory continues seamlessly)\n", post[0], post[4])

	// 3. The tracer's finding and why it matters.
	fmt.Println("\n3) tracer: tied weights across partitions:")
	e, err := engine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   shared across stages: %v — allreduced every mini-batch\n", e.SharedParamNames())
	fmt.Println("   (run the §5.2 ablation in varuna-bench -exp tracer to see the drift without it)")
}
