// Hypercluster: the paper's headline comparison (Figure 5). Varuna on
// cheap spot VMs versus Megatron's intra-layer partitioning on both
// commodity VMs and a dedicated DGX-2 hypercluster — including the
// cost-performance accounting that motivates the whole system.
package main

import (
	"fmt"
	"log"

	"repro/internal/baselines"
	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/netsim"
)

func main() {
	spec := model.GPT2Megatron8B()
	const miniBatch = 8192
	const gpus = 128

	spotCluster := hw.SpotCluster(hw.NC24v3, gpus)
	hcCluster := hw.Hypercluster(8) // 8 DGX-2 = 128 GPUs

	// Varuna on spot VMs.
	spotJob, err := core.NewJob(spec, spotCluster, miniBatch, 9)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := spotJob.Configure(18, 7)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := spotJob.Measure(cfg)
	if err != nil {
		log.Fatal(err)
	}
	varunaSpot := ms.ExPerSec() / float64(cfg.GPUsUsed)

	// Varuna on the hypercluster.
	hcJob, err := core.NewJob(spec, hcCluster, miniBatch, 9)
	if err != nil {
		log.Fatal(err)
	}
	hcCfg, err := hcJob.Configure(18, 7)
	if err != nil {
		log.Fatal(err)
	}
	hcMs, err := hcJob.Measure(hcCfg)
	if err != nil {
		log.Fatal(err)
	}
	varunaHC := hcMs.ExPerSec() / float64(hcCfg.GPUsUsed)

	// Megatron on both.
	megSpot, megSpotT, err := baselines.BestMegatron(spec, gpus, 4, miniBatch, spotCluster, netsim.New(1.3), compute.Default())
	if err != nil {
		log.Fatal(err)
	}
	megSpotEx := float64(miniBatch) / megSpotT.Seconds() / float64(megSpot.GPUs())
	megHCCfg, megHCT, err := baselines.BestMegatron(spec, gpus, 4, miniBatch, hcCluster, netsim.New(1), compute.Default())
	if err != nil {
		log.Fatal(err)
	}
	megHCEx := float64(miniBatch) / megHCT.Seconds() / float64(megHCCfg.GPUs())

	spotCost := spotCluster.GPUHourCost()
	hcCost := hcCluster.GPUHourCost()

	fmt.Printf("GPT-2 8.3B, mini-batch %d, %d GPUs\n\n", miniBatch, gpus)
	fmt.Printf("%-28s %-12s %-12s %s\n", "system", "ex/s/GPU", "$/GPU-hour", "ex per dollar")
	row := func(name string, ex, cost float64) {
		fmt.Printf("%-28s %-12.3f %-12.2f %.0f\n", name, ex, cost, ex*3600/cost)
	}
	row("Varuna on spot VMs", varunaSpot, spotCost)
	row("Varuna on hypercluster", varunaHC, hcCost)
	row(fmt.Sprintf("Megatron on spot (%d-way)", megSpot.MP), megSpotEx, spotCost)
	row(fmt.Sprintf("Megatron on hypercluster (%d-way)", megHCCfg.MP), megHCEx, hcCost)
	fmt.Printf("\nVaruna(spot) vs Megatron(spot):         %.1fx faster\n", varunaSpot/megSpotEx)
	fmt.Printf("Varuna(spot) vs Megatron(hypercluster): %.2fx the throughput at ~1/5 the price\n", varunaSpot/megHCEx)
}
