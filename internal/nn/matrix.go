// Package nn is a small, deterministic neural-network library used by
// the real training engine (internal/engine) to validate Varuna's
// semantic claims — sync-SGD preservation under job morphing, tied
// weights across partitions, and the divergence of stale-update
// pipelines — with actual float64 arithmetic rather than cost models.
//
// Everything is plain Go with fixed iteration order: two runs with the
// same seed produce bit-identical results.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MatMul returns a·b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
	return out
}

// MatMulATB returns aᵀ·b (used for weight gradients).
func MatMulATB(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("nn: matmulATB shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		ar := a.Row(r)
		br := b.Row(r)
		for i, av := range ar {
			if av == 0 {
				continue
			}
			or := out.Row(i)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
	return out
}

// MatMulABT returns a·bᵀ (used for input gradients).
func MatMulABT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: matmulABT shape mismatch %dx%d · %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			br := b.Row(j)
			var s float64
			for k, av := range ar {
				s += av * br[k]
			}
			or[j] = s
		}
	}
	return out
}

// AddInPlace adds b into a element-wise.
func AddInPlace(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("nn: add shape mismatch")
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Scale multiplies all elements by s.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	// Name identifies the parameter for checkpointing and the tracer.
	Name string
	// Value and Grad are flat storage; shape is owned by the layer.
	Value, Grad []float64
	// Shared marks parameters synchronized across pipeline stages
	// (tied weights, §5.2).
	Shared bool
}

// NewParam allocates a parameter initialized by init.
func NewParam(name string, n int, init func(i int) float64) *Param {
	p := &Param{Name: name, Value: make([]float64, n), Grad: make([]float64, n)}
	for i := range p.Value {
		p.Value[i] = init(i)
	}
	return p
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Init helpers ------------------------------------------------------

// XavierInit returns an initializer drawing from U(−lim, lim) with the
// Xavier bound for the given fan-in/out, using a deterministic source.
func XavierInit(rng *rand.Rand, fanIn, fanOut int) func(int) float64 {
	lim := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return func(int) float64 { return (rng.Float64()*2 - 1) * lim }
}

// ZeroInit returns zeros (for biases).
func ZeroInit(int) float64 { return 0 }
