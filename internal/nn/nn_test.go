package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad checks analytic parameter and input gradients of a
// layer against central differences on a scalar loss L = Σ y⊙w.
func checkLayerGrads(t *testing.T, l Layer, x *Matrix, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	y, _ := l.Forward(x)
	w := NewMatrix(y.Rows, y.Cols)
	for i := range w.Data {
		w.Data[i] = rng.Float64()*2 - 1
	}
	loss := func() float64 {
		y, _ := l.Forward(x)
		var s float64
		for i, v := range y.Data {
			s += v * w.Data[i]
		}
		return s
	}
	// Analytic.
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	y2, ctx := l.Forward(x)
	_ = y2
	dx := l.Backward(ctx, w.Clone())

	const h = 1e-6
	// Parameter gradients (sample a few indices per param).
	for _, p := range l.Params() {
		idxs := sampleIdx(rng, len(p.Value), 6)
		for _, i := range idxs {
			orig := p.Value[i]
			p.Value[i] = orig + h
			lp := loss()
			p.Value[i] = orig - h
			lm := loss()
			p.Value[i] = orig
			num := (lp - lm) / (2 * h)
			if relErr(num, p.Grad[i]) > tol {
				t.Errorf("%s param %s[%d]: numeric %g vs analytic %g", l.Name(), p.Name, i, num, p.Grad[i])
			}
		}
	}
	// Input gradients.
	if dx != nil {
		idxs := sampleIdx(rng, len(x.Data), 6)
		for _, i := range idxs {
			orig := x.Data[i]
			x.Data[i] = orig + h
			lp := loss()
			x.Data[i] = orig - h
			lm := loss()
			x.Data[i] = orig
			num := (lp - lm) / (2 * h)
			if relErr(num, dx.Data[i]) > tol {
				t.Errorf("%s input[%d]: numeric %g vs analytic %g", l.Name(), i, num, dx.Data[i])
			}
		}
	}
}

func sampleIdx(rng *rand.Rand, n, k int) []int {
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := rng.Perm(n)
	return perm[:k]
}

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	s := math.Abs(a) + math.Abs(b)
	if s < 1e-8 {
		return d
	}
	return d / s
}

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("lin", 5, 3, rng)
	checkLayerGrads(t, l, randMatrix(rng, 4, 5), 1e-5)
}

func TestGeluGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	checkLayerGrads(t, NewGelu("gelu"), randMatrix(rng, 3, 7), 1e-5)
}

func TestLayerNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	checkLayerGrads(t, NewLayerNorm("ln", 6), randMatrix(rng, 4, 6), 1e-4)
}

func TestBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := NewBlock("blk", 8, 4, 2, rng)
	checkLayerGrads(t, b, randMatrix(rng, 8, 8), 1e-4) // 2 examples × seq 4
}

func TestEmbeddingGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewEmbedding("emb", 11, 6, 3, rng)
	ids := NewMatrix(2, 3)
	for i := range ids.Data {
		ids.Data[i] = float64(rng.Intn(11))
	}
	checkLayerGrads(t, e, ids, 1e-5)
}

func TestOutputProjectionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := NewEmbedding("emb", 9, 5, 2, rng)
	o := NewOutputProjection("head", e)
	checkLayerGrads(t, o, randMatrix(rng, 4, 5), 1e-5)
}

func TestTiedProjectionIsIndependentCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEmbedding("emb", 9, 5, 2, rng)
	o := NewOutputProjection("head", e)
	if !e.W.Shared || !o.W.Shared {
		t.Fatal("tied params must be marked Shared")
	}
	if e.W.Name != o.W.Name {
		t.Fatal("tied params must share a name for cross-stage sync")
	}
	if &e.W.Value[0] == &o.W.Value[0] {
		t.Fatal("tied params must be physically separate (different devices)")
	}
	for i := range e.W.Value {
		if e.W.Value[i] != o.W.Value[i] {
			t.Fatal("tied params must start identical")
		}
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	logits := randMatrix(rng, 6, 5) // B=3, T=2
	targets := NewMatrix(3, 2)
	for i := range targets.Data {
		targets.Data[i] = float64(rng.Intn(5))
	}
	_, dl := SoftmaxCrossEntropy(logits, targets, 3)
	const h = 1e-6
	for _, i := range sampleIdx(rng, len(logits.Data), 10) {
		orig := logits.Data[i]
		logits.Data[i] = orig + h
		lp, _ := SoftmaxCrossEntropy(logits, targets, 3)
		logits.Data[i] = orig - h
		lm, _ := SoftmaxCrossEntropy(logits, targets, 3)
		logits.Data[i] = orig
		// Loss returns mean over B·T rows; gradient is scaled for a
		// sum over (totalExamples·T): identical here since total=B.
		num := (lp - lm) / (2 * h) * float64(6)
		ana := dl.Data[i] * float64(3*2)
		if relErr(num, ana) > 1e-4 {
			t.Errorf("loss grad[%d]: numeric %g vs analytic %g", i, num, ana)
		}
	}
}

func TestMatrixOps(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := &Matrix{Rows: 3, Cols: 2, Data: []float64{7, 8, 9, 10, 11, 12}}
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("matmul[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
	// aᵀ·(a·b) and (a·b)·bᵀ shapes.
	atb := MatMulATB(a, c) // 3x2
	if atb.Rows != 3 || atb.Cols != 2 {
		t.Fatal("ATB shape")
	}
	abt := MatMulABT(c, b) // 2x3... c is 2x2, b is 3x2 → 2x3
	if abt.Rows != 2 || abt.Cols != 3 {
		t.Fatal("ABT shape")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch must panic")
		}
	}()
	MatMul(a, a)
}

func TestAdamConvergesQuadratic(t *testing.T) {
	// Minimize (x-3)² elementwise.
	p := NewParam("x", 4, func(int) float64 { return 10 })
	opt := NewAdam(0.1)
	for i := 0; i < 2000; i++ {
		for j, v := range p.Value {
			p.Grad[j] = 2 * (v - 3)
		}
		opt.Step([]*Param{p})
	}
	for _, v := range p.Value {
		if math.Abs(v-3) > 0.01 {
			t.Fatalf("Adam did not converge: %v", p.Value)
		}
	}
	if opt.StepCount() != 2000 {
		t.Fatal("step count")
	}
}

func TestAdamDeterminism(t *testing.T) {
	run := func() []float64 {
		layers := BuildGPT(GPTConfig{Vocab: 17, Dim: 8, SeqLen: 4, Layers: 2, Seed: 42})
		var params []*Param
		for _, l := range layers {
			params = append(params, l.Params()...)
		}
		out := make([]float64, 0, 16)
		for _, p := range params[:2] {
			out = append(out, p.Value[:4]...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must build identical models")
		}
	}
}

func TestBuildGPTStructure(t *testing.T) {
	layers := BuildGPT(GPTConfig{Vocab: 17, Dim: 8, SeqLen: 4, Layers: 3, Seed: 1})
	if len(layers) != 5 {
		t.Fatalf("layers = %d, want embedding+3 blocks+head = 5", len(layers))
	}
	if layers[0].Name() != "embedding" || layers[4].Name() != "lm_head" {
		t.Fatal("layer order wrong")
	}
	// A full forward/backward pass runs without panics and with
	// correct shapes.
	ids := NewMatrix(2, 4)
	x := &Matrix{Rows: 2, Cols: 4, Data: []float64{1, 2, 3, 4, 5, 6, 7, 8}}
	_ = ids
	var ctxs []Ctx
	h := x
	for _, l := range layers {
		var c Ctx
		h, c = l.Forward(h)
		ctxs = append(ctxs, c)
	}
	if h.Rows != 8 || h.Cols != 17 {
		t.Fatalf("logits shape %dx%d, want 8x17", h.Rows, h.Cols)
	}
	targets := NewMatrix(2, 4)
	loss, dl := SoftmaxCrossEntropy(h, targets, 2)
	if math.IsNaN(loss) || loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	dy := dl
	for i := len(layers) - 1; i >= 0; i-- {
		dy = layers[i].Backward(ctxs[i], dy)
	}
}

func TestRecomputeReproducesForward(t *testing.T) {
	// The engine's recompute contract: re-running Forward on the same
	// input yields bit-identical activations and a usable fresh ctx.
	rng := rand.New(rand.NewSource(11))
	b := NewBlock("blk", 8, 4, 2, rng)
	x := randMatrix(rng, 8, 8)
	y1, _ := b.Forward(x)
	y2, ctx2 := b.Forward(x)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("forward must be deterministic for recompute")
		}
	}
	dy := randMatrix(rng, 8, 8)
	for _, p := range b.Params() {
		p.ZeroGrad()
	}
	dx := b.Backward(ctx2, dy)
	if dx == nil || dx.Rows != 8 {
		t.Fatal("backward through recomputed ctx failed")
	}
}
