package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one pipeline-partitionable unit: forward produces the
// output and a context holding whatever backward needs; backward
// consumes that context, accumulates parameter gradients, and returns
// the input gradient. Because the context is explicit, the engine can
// drop it after forward (gradient checkpointing) and regenerate it by
// re-running forward from the stashed input — exactly Varuna's
// recompute (§3.1).
type Layer interface {
	// Forward computes the layer output for x.
	Forward(x *Matrix) (*Matrix, Ctx)
	// Backward propagates dy through ctx, accumulating into Params.
	Backward(ctx Ctx, dy *Matrix) *Matrix
	// Params lists the layer's trainable tensors.
	Params() []*Param
	// Name identifies the layer.
	Name() string
}

// Ctx is opaque per-micro-batch forward state.
type Ctx any

// ---- Linear --------------------------------------------------------

// Linear is y = x·W + b (bias optional).
type Linear struct {
	name    string
	In, Out int
	W, B    *Param // B is nil for bias-free projections
}

// NewLinear builds a Linear layer with Xavier weights.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		name: name, In: in, Out: out,
		W: NewParam(name+".W", in*out, XavierInit(rng, in, out)),
		B: NewParam(name+".b", out, ZeroInit),
	}
}

// NewLinearNoBias builds a bias-free Linear layer. The key projection
// of attention uses this: a key bias shifts every score in a row by the
// same amount, which softmax cancels — a loss null-direction whose
// gradient is pure rounding noise that adaptive optimizers then
// amplify into spurious parameter drift.
func NewLinearNoBias(name string, in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		name: name, In: in, Out: out,
		W: NewParam(name+".W", in*out, XavierInit(rng, in, out)),
	}
}

type linearCtx struct{ x *Matrix }

// Forward implements Layer.
func (l *Linear) Forward(x *Matrix) (*Matrix, Ctx) {
	w := &Matrix{Rows: l.In, Cols: l.Out, Data: l.W.Value}
	y := MatMul(x, w)
	if l.B != nil {
		for i := 0; i < y.Rows; i++ {
			row := y.Row(i)
			for j := range row {
				row[j] += l.B.Value[j]
			}
		}
	}
	return y, linearCtx{x: x}
}

// Backward implements Layer.
func (l *Linear) Backward(ctx Ctx, dy *Matrix) *Matrix {
	c := ctx.(linearCtx)
	dW := MatMulATB(c.x, dy)
	for i, v := range dW.Data {
		l.W.Grad[i] += v
	}
	if l.B != nil {
		for i := 0; i < dy.Rows; i++ {
			row := dy.Row(i)
			for j := range row {
				l.B.Grad[j] += row[j]
			}
		}
	}
	w := &Matrix{Rows: l.In, Cols: l.Out, Data: l.W.Value}
	return MatMulABT(dy, w)
}

// Params implements Layer.
func (l *Linear) Params() []*Param {
	if l.B == nil {
		return []*Param{l.W}
	}
	return []*Param{l.W, l.B}
}

// Name implements Layer.
func (l *Linear) Name() string { return l.name }

// ---- Gelu ----------------------------------------------------------

// Gelu is the tanh-approximated GELU activation.
type Gelu struct{ name string }

// NewGelu builds a GELU layer.
func NewGelu(name string) *Gelu { return &Gelu{name: name} }

type geluCtx struct{ x *Matrix }

const geluC = 0.7978845608028654 // sqrt(2/pi)

// Forward implements Layer.
func (g *Gelu) Forward(x *Matrix) (*Matrix, Ctx) {
	y := NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = 0.5 * v * (1 + math.Tanh(geluC*(v+0.044715*v*v*v)))
	}
	return y, geluCtx{x: x}
}

// Backward implements Layer.
func (g *Gelu) Backward(ctx Ctx, dy *Matrix) *Matrix {
	c := ctx.(geluCtx)
	dx := NewMatrix(dy.Rows, dy.Cols)
	for i, v := range c.x.Data {
		u := geluC * (v + 0.044715*v*v*v)
		t := math.Tanh(u)
		du := geluC * (1 + 3*0.044715*v*v)
		d := 0.5*(1+t) + 0.5*v*(1-t*t)*du
		dx.Data[i] = dy.Data[i] * d
	}
	return dx
}

// Params implements Layer.
func (g *Gelu) Params() []*Param { return nil }

// Name implements Layer.
func (g *Gelu) Name() string { return g.name }

// ---- LayerNorm -----------------------------------------------------

// LayerNorm normalizes each row to zero mean and unit variance, then
// applies a learned affine transform.
type LayerNorm struct {
	name string
	Dim  int
	G, B *Param
}

// NewLayerNorm builds a LayerNorm over dim features.
func NewLayerNorm(name string, dim int) *LayerNorm {
	return &LayerNorm{
		name: name, Dim: dim,
		G: NewParam(name+".g", dim, func(int) float64 { return 1 }),
		B: NewParam(name+".b", dim, ZeroInit),
	}
}

type lnCtx struct {
	xhat *Matrix
	invS []float64
}

const lnEps = 1e-5

// Forward implements Layer.
func (l *LayerNorm) Forward(x *Matrix) (*Matrix, Ctx) {
	y := NewMatrix(x.Rows, x.Cols)
	xhat := NewMatrix(x.Rows, x.Cols)
	invS := make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		var varr float64
		for _, v := range row {
			d := v - mean
			varr += d * d
		}
		varr /= float64(len(row))
		inv := 1 / math.Sqrt(varr+lnEps)
		invS[i] = inv
		xr := xhat.Row(i)
		yr := y.Row(i)
		for j, v := range row {
			xr[j] = (v - mean) * inv
			yr[j] = xr[j]*l.G.Value[j] + l.B.Value[j]
		}
	}
	return y, lnCtx{xhat: xhat, invS: invS}
}

// Backward implements Layer.
func (l *LayerNorm) Backward(ctx Ctx, dy *Matrix) *Matrix {
	c := ctx.(lnCtx)
	dx := NewMatrix(dy.Rows, dy.Cols)
	n := float64(l.Dim)
	for i := 0; i < dy.Rows; i++ {
		dyr := dy.Row(i)
		xr := c.xhat.Row(i)
		var sumDxh, sumDxhX float64
		dxh := make([]float64, l.Dim)
		for j := range dyr {
			l.G.Grad[j] += dyr[j] * xr[j]
			l.B.Grad[j] += dyr[j]
			dxh[j] = dyr[j] * l.G.Value[j]
			sumDxh += dxh[j]
			sumDxhX += dxh[j] * xr[j]
		}
		dxr := dx.Row(i)
		for j := range dyr {
			dxr[j] = (dxh[j] - sumDxh/n - xr[j]*sumDxhX/n) * c.invS[i]
		}
	}
	return dx
}

// Params implements Layer.
func (l *LayerNorm) Params() []*Param { return []*Param{l.G, l.B} }

// Name implements Layer.
func (l *LayerNorm) Name() string { return l.name }

// ---- Embedding -----------------------------------------------------

// Embedding maps token ids (encoded as float64 in a [B, T] matrix) to
// [B·T, H] vectors plus a learned positional embedding. Its weight can
// be shared with an OutputProjection (tied embeddings).
type Embedding struct {
	name       string
	Vocab, Dim int
	SeqLen     int
	W          *Param // Vocab×Dim
	Pos        *Param // SeqLen×Dim
}

// NewEmbedding builds an embedding table.
func NewEmbedding(name string, vocab, dim, seqLen int, rng *rand.Rand) *Embedding {
	e := &Embedding{
		name: name, Vocab: vocab, Dim: dim, SeqLen: seqLen,
		W:   NewParam(name+".W", vocab*dim, XavierInit(rng, vocab, dim)),
		Pos: NewParam(name+".pos", seqLen*dim, XavierInit(rng, seqLen, dim)),
	}
	return e
}

type embCtx struct{ ids *Matrix }

// Forward implements Layer.
func (e *Embedding) Forward(ids *Matrix) (*Matrix, Ctx) {
	b, t := ids.Rows, ids.Cols
	if t != e.SeqLen {
		panic(fmt.Sprintf("nn: embedding expects seq %d, got %d", e.SeqLen, t))
	}
	y := NewMatrix(b*t, e.Dim)
	for i := 0; i < b; i++ {
		for j := 0; j < t; j++ {
			id := int(ids.At(i, j))
			if id < 0 || id >= e.Vocab {
				panic(fmt.Sprintf("nn: token id %d out of vocab %d", id, e.Vocab))
			}
			row := y.Row(i*t + j)
			wrow := e.W.Value[id*e.Dim : (id+1)*e.Dim]
			prow := e.Pos.Value[j*e.Dim : (j+1)*e.Dim]
			for k := range row {
				row[k] = wrow[k] + prow[k]
			}
		}
	}
	return y, embCtx{ids: ids}
}

// Backward implements Layer.
func (e *Embedding) Backward(ctx Ctx, dy *Matrix) *Matrix {
	c := ctx.(embCtx)
	b, t := c.ids.Rows, c.ids.Cols
	for i := 0; i < b; i++ {
		for j := 0; j < t; j++ {
			id := int(c.ids.At(i, j))
			row := dy.Row(i*t + j)
			wg := e.W.Grad[id*e.Dim : (id+1)*e.Dim]
			pg := e.Pos.Grad[j*e.Dim : (j+1)*e.Dim]
			for k, v := range row {
				wg[k] += v
				pg[k] += v
			}
		}
	}
	return nil // token ids carry no gradient
}

// Params implements Layer.
func (e *Embedding) Params() []*Param { return []*Param{e.W, e.Pos} }

// Name implements Layer.
func (e *Embedding) Name() string { return e.name }

// ---- OutputProjection (tied) ----------------------------------------

// OutputProjection computes logits = x·Wᵀ against the embedding table.
// When tied to an Embedding it holds its own physical copy of the
// weight (the two layers may live on different pipeline stages, i.e.
// different devices) marked Shared under the embedding's parameter
// name: the engine must synchronize gradients of same-named Shared
// parameters across stages every mini-batch, exactly the cross-
// partition state Varuna's tracer flags (§5.2). Failing to do so makes
// the copies drift — the bug class the tracer exists to catch.
type OutputProjection struct {
	name       string
	Vocab, Dim int
	W          *Param
}

// NewOutputProjection ties the projection to the embedding weight by
// value: identical initialization, same parameter name, both Shared.
func NewOutputProjection(name string, emb *Embedding) *OutputProjection {
	emb.W.Shared = true
	w := &Param{
		Name:   emb.W.Name,
		Value:  append([]float64(nil), emb.W.Value...),
		Grad:   make([]float64, len(emb.W.Grad)),
		Shared: true,
	}
	return &OutputProjection{name: name, Vocab: emb.Vocab, Dim: emb.Dim, W: w}
}

type projCtx struct{ x *Matrix }

// Forward implements Layer.
func (o *OutputProjection) Forward(x *Matrix) (*Matrix, Ctx) {
	w := &Matrix{Rows: o.Vocab, Cols: o.Dim, Data: o.W.Value}
	return MatMulABT(x, w), projCtx{x: x}
}

// Backward implements Layer.
func (o *OutputProjection) Backward(ctx Ctx, dy *Matrix) *Matrix {
	c := ctx.(projCtx)
	dW := MatMulATB(dy, c.x) // Vocab×Dim
	for i, v := range dW.Data {
		o.W.Grad[i] += v
	}
	w := &Matrix{Rows: o.Vocab, Cols: o.Dim, Data: o.W.Value}
	return MatMul(dy, w)
}

// Params implements Layer.
func (o *OutputProjection) Params() []*Param { return []*Param{o.W} }

// Name implements Layer.
func (o *OutputProjection) Name() string { return o.name }
