package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Block is one pre-norm transformer block: single-head causal
// self-attention and a GELU MLP, each with a residual connection. It
// is the repeated unit the cut-point machinery partitions (§5.1).
type Block struct {
	name   string
	Dim    int
	SeqLen int

	ln1, ln2       *LayerNorm
	wq, wk, wv, wo *Linear
	fc1, fc2       *Linear
	gelu           *Gelu
}

// NewBlock builds a transformer block of width dim over seqLen tokens.
func NewBlock(name string, dim, seqLen, mlpMult int, rng *rand.Rand) *Block {
	return &Block{
		name: name, Dim: dim, SeqLen: seqLen,
		ln1:  NewLayerNorm(name+".ln1", dim),
		ln2:  NewLayerNorm(name+".ln2", dim),
		wq:   NewLinear(name+".wq", dim, dim, rng),
		wk:   NewLinearNoBias(name+".wk", dim, dim, rng),
		wv:   NewLinear(name+".wv", dim, dim, rng),
		wo:   NewLinear(name+".wo", dim, dim, rng),
		fc1:  NewLinear(name+".fc1", dim, dim*mlpMult, rng),
		fc2:  NewLinear(name+".fc2", dim*mlpMult, dim, rng),
		gelu: NewGelu(name + ".gelu"),
	}
}

type blockCtx struct {
	x *Matrix // block input (for residuals)

	ln1Ctx  Ctx
	qCtx    Ctx
	kCtx    Ctx
	vCtx    Ctx
	oCtx    Ctx
	q, k, v *Matrix
	attn    []*Matrix // per-example softmaxed score matrices
	mid     *Matrix   // attention output (after residual)

	ln2Ctx  Ctx
	fc1Ctx  Ctx
	geluCtx Ctx
	fc2Ctx  Ctx
}

// Forward implements Layer.
func (b *Block) Forward(x *Matrix) (*Matrix, Ctx) {
	if x.Rows%b.SeqLen != 0 {
		panic(fmt.Sprintf("nn: block input rows %d not a multiple of seq %d", x.Rows, b.SeqLen))
	}
	c := &blockCtx{x: x}

	// Attention sub-layer.
	var n *Matrix
	n, c.ln1Ctx = b.ln1.Forward(x)
	c.q, c.qCtx = b.wq.Forward(n)
	c.k, c.kCtx = b.wk.Forward(n)
	c.v, c.vCtx = b.wv.Forward(n)

	batch := x.Rows / b.SeqLen
	ctxOut := NewMatrix(x.Rows, b.Dim)
	scale := 1 / math.Sqrt(float64(b.Dim))
	c.attn = make([]*Matrix, batch)
	for e := 0; e < batch; e++ {
		off := e * b.SeqLen
		a := NewMatrix(b.SeqLen, b.SeqLen)
		for i := 0; i < b.SeqLen; i++ {
			qi := c.q.Row(off + i)
			// Causal: attend to positions ≤ i; softmax over them.
			maxv := math.Inf(-1)
			for j := 0; j <= i; j++ {
				kj := c.k.Row(off + j)
				var s float64
				for d := range qi {
					s += qi[d] * kj[d]
				}
				s *= scale
				a.Set(i, j, s)
				if s > maxv {
					maxv = s
				}
			}
			var sum float64
			for j := 0; j <= i; j++ {
				v := math.Exp(a.At(i, j) - maxv)
				a.Set(i, j, v)
				sum += v
			}
			for j := 0; j <= i; j++ {
				a.Set(i, j, a.At(i, j)/sum)
			}
			out := ctxOut.Row(off + i)
			for j := 0; j <= i; j++ {
				w := a.At(i, j)
				vj := c.v.Row(off + j)
				for d := range out {
					out[d] += w * vj[d]
				}
			}
		}
		c.attn[e] = a
	}
	var attnOut *Matrix
	attnOut, c.oCtx = b.wo.Forward(ctxOut)
	mid := attnOut
	AddInPlace(mid, x) // residual
	c.mid = mid

	// MLP sub-layer.
	var n2, h, g, mlpOut *Matrix
	n2, c.ln2Ctx = b.ln2.Forward(mid)
	h, c.fc1Ctx = b.fc1.Forward(n2)
	g, c.geluCtx = b.gelu.Forward(h)
	mlpOut, c.fc2Ctx = b.fc2.Forward(g)
	AddInPlace(mlpOut, mid) // residual
	return mlpOut, c
}

// Backward implements Layer.
func (b *Block) Backward(ctx Ctx, dy *Matrix) *Matrix {
	c := ctx.(*blockCtx)

	// MLP sub-layer backward (residual: dy flows to both branches).
	dg := b.fc2.Backward(c.fc2Ctx, dy)
	dh := b.gelu.Backward(c.geluCtx, dg)
	dn2 := b.fc1.Backward(c.fc1Ctx, dh)
	dmid := b.ln2.Backward(c.ln2Ctx, dn2)
	AddInPlace(dmid, dy)

	// Attention sub-layer backward.
	dctx := b.wo.Backward(c.oCtx, dmid)
	batch := c.x.Rows / b.SeqLen
	scale := 1 / math.Sqrt(float64(b.Dim))
	dq := NewMatrix(c.x.Rows, b.Dim)
	dk := NewMatrix(c.x.Rows, b.Dim)
	dv := NewMatrix(c.x.Rows, b.Dim)
	for e := 0; e < batch; e++ {
		off := e * b.SeqLen
		a := c.attn[e]
		for i := 0; i < b.SeqLen; i++ {
			dout := dctx.Row(off + i)
			// dV and dA.
			da := make([]float64, i+1)
			for j := 0; j <= i; j++ {
				vj := c.v.Row(off + j)
				dvj := dv.Row(off + j)
				w := a.At(i, j)
				var s float64
				for d := range dout {
					dvj[d] += w * dout[d]
					s += dout[d] * vj[d]
				}
				da[j] = s
			}
			// Softmax backward: ds = a ⊙ (da − Σ a·da).
			var dot float64
			for j := 0; j <= i; j++ {
				dot += a.At(i, j) * da[j]
			}
			for j := 0; j <= i; j++ {
				ds := a.At(i, j) * (da[j] - dot) * scale
				qi := c.q.Row(off + i)
				kj := c.k.Row(off + j)
				dqi := dq.Row(off + i)
				dkj := dk.Row(off + j)
				for d := range qi {
					dqi[d] += ds * kj[d]
					dkj[d] += ds * qi[d]
				}
			}
		}
	}
	dn := b.wq.Backward(c.qCtx, dq)
	AddInPlace(dn, b.wk.Backward(c.kCtx, dk))
	AddInPlace(dn, b.wv.Backward(c.vCtx, dv))
	dx := b.ln1.Backward(c.ln1Ctx, dn)
	AddInPlace(dx, dmid)
	return dx
}

// Params implements Layer.
func (b *Block) Params() []*Param {
	var out []*Param
	for _, l := range []Layer{b.ln1, b.wq, b.wk, b.wv, b.wo, b.ln2, b.fc1, b.fc2} {
		out = append(out, l.Params()...)
	}
	return out
}

// Name implements Layer.
func (b *Block) Name() string { return b.name }

// ---- Loss ----------------------------------------------------------

// SoftmaxCrossEntropy computes the mean cross-entropy of logits
// [B·T, V] against targets [B, T] (token ids), and the logits gradient
// scaled for a sum over totalExamples examples (so micro-batch
// gradients accumulate to exactly the full-batch gradient).
func SoftmaxCrossEntropy(logits *Matrix, targets *Matrix, totalExamples int) (float64, *Matrix) {
	bt := logits.Rows
	t := targets.Cols
	if targets.Rows*t != bt {
		panic(fmt.Sprintf("nn: loss shape mismatch: %d logits rows vs %d targets", bt, targets.Rows*t))
	}
	dl := NewMatrix(bt, logits.Cols)
	var loss float64
	denom := float64(totalExamples * t)
	for r := 0; r < bt; r++ {
		row := logits.Row(r)
		target := int(targets.At(r/t, r%t))
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - maxv)
		}
		logZ := math.Log(sum) + maxv
		loss += logZ - row[target]
		drow := dl.Row(r)
		for j, v := range row {
			p := math.Exp(v-maxv) / sum
			drow[j] = p / denom
		}
		drow[target] -= 1 / denom
	}
	return loss / float64(bt), dl
}

// ---- Model builder --------------------------------------------------

// GPTConfig shapes a miniature GPT.
type GPTConfig struct {
	Vocab, Dim, SeqLen, Layers, MLPMult int
	Seed                                int64
}

// BuildGPT constructs the layer sequence [Embedding, Block×L,
// OutputProjection(tied)] deterministically from the seed.
func BuildGPT(cfg GPTConfig) []Layer {
	if cfg.MLPMult == 0 {
		cfg.MLPMult = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	emb := NewEmbedding("embedding", cfg.Vocab, cfg.Dim, cfg.SeqLen, rng)
	layers := []Layer{emb}
	for i := 0; i < cfg.Layers; i++ {
		layers = append(layers, NewBlock(fmt.Sprintf("block%d", i), cfg.Dim, cfg.SeqLen, cfg.MLPMult, rng))
	}
	layers = append(layers, NewOutputProjection("lm_head", emb))
	return layers
}

// ---- Adam ----------------------------------------------------------

// Adam is the standard Adam optimizer over a parameter set, with state
// held per parameter (checkpointable).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	step                  int
	m, v                  map[*Param][]float64
}

// NewAdam builds an optimizer with the usual defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float64), v: make(map[*Param][]float64)}
}

// Step applies one update to params from their accumulated gradients,
// then clears the gradients.
func (a *Adam) Step(params []*Param) {
	a.step++
	b1c := 1 - math.Pow(a.Beta1, float64(a.step))
	b2c := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.Value))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, len(p.Value))
			a.v[p] = v
		}
		for i, g := range p.Grad {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			p.Value[i] -= a.LR * (m[i] / b1c) / (math.Sqrt(v[i]/b2c) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// StepCount reports completed optimizer steps.
func (a *Adam) StepCount() int { return a.step }

// State exposes the Adam moments of p (allocating if absent), for
// checkpointing.
func (a *Adam) State(p *Param) (m, v []float64) {
	if _, ok := a.m[p]; !ok {
		a.m[p] = make([]float64, len(p.Value))
		a.v[p] = make([]float64, len(p.Value))
	}
	return a.m[p], a.v[p]
}

// SetStep restores the step counter (checkpoint resume).
func (a *Adam) SetStep(s int) { a.step = s }
