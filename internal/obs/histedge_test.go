package obs

import (
	"math"
	"testing"
)

// Pin the log2 bucket layout at its edges through the exported
// surface: bucket 0 holds everything below 1 (zero and negatives
// included), and the top bucket clamps astronomically large samples
// while quantiles stay clamped to the observed max.

func TestHistZeroObservation(t *testing.T) {
	m := NewMetrics()
	m.Observe("h", 0)
	h := m.Snapshot(All).Histograms["h"]
	if h.Count != 1 || h.Min != 0 || h.Max != 0 {
		t.Fatalf("zero obs snapshot %+v", h)
	}
	// Bucket 0's upper bound is 1, but quantiles clamp to the observed
	// max, so a lone zero reports exactly zero at every quantile.
	if h.P50 != 0 || h.P99 != 0 {
		t.Fatalf("zero obs quantiles %+v", h)
	}
}

func TestHistNegativeObservation(t *testing.T) {
	m := NewMetrics()
	m.Observe("h", -5)
	m.Observe("h", -1e12)
	h := m.Snapshot(All).Histograms["h"]
	if h.Count != 2 || h.Min != -1e12 || h.Max != -5 {
		t.Fatalf("negative obs snapshot %+v", h)
	}
	// Both land in bucket 0; the quantile upper bound clamps to the
	// observed max, which is itself negative.
	if h.P50 != -5 || h.P99 != -5 {
		t.Fatalf("negative obs quantiles %+v", h)
	}
	if h.Mean != (-5-1e12)/2 {
		t.Fatalf("negative obs mean %v", h.Mean)
	}
}

func TestHistMaxInt64Observation(t *testing.T) {
	m := NewMetrics()
	v := float64(math.MaxInt64)
	m.Observe("h", v)
	h := m.Snapshot(All).Histograms["h"]
	if h.Count != 1 || h.Min != v || h.Max != v {
		t.Fatalf("max-int64 obs snapshot %+v", h)
	}
	// log2(2^63) + 1 = 64 would overflow the 64-bucket layout; the
	// clamp pins it into the top bucket (63) and the quantile clamp
	// reports the observed max, not the bucket bound 2^63.
	if h.P50 != v || h.P99 != v {
		t.Fatalf("max-int64 obs quantiles %+v", h)
	}
}

// Mixing the edges must keep rank order: zero and negatives rank below
// the giant sample.
func TestHistEdgeMix(t *testing.T) {
	m := NewMetrics()
	m.Observe("h", -3)
	m.Observe("h", 0)
	m.Observe("h", float64(math.MaxInt64))
	h := m.Snapshot(All).Histograms["h"]
	if h.Count != 3 || h.Min != -3 || h.Max != float64(math.MaxInt64) {
		t.Fatalf("edge mix snapshot %+v", h)
	}
	// Rank 2 of 3 sits in bucket 0, whose upper bound is 1 — and with
	// n=3 even the p99 rank (int(0.99·2)+1 = 2) lands there, so only
	// Max carries the giant sample.
	if h.P50 != 1 || h.P99 != 1 {
		t.Fatalf("edge mix quantiles %+v", h)
	}
}
