package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Metrics is a typed registry of counters, gauges and histograms the
// instrumented stack reports into: recovery latencies, morph downtime,
// sweep wall-times, cache hit rates, per-job dollar buckets. A nil
// *Metrics is the disabled registry (every method no-ops), the same
// discipline as the Tracer.
//
// Two kinds of values coexist and must never be conflated:
//
//   - simulated-time metrics (morph downtime, recovery latency) are
//     deterministic: a replayed scenario reports them bit-identically;
//   - wall-clock self-profiling (planner sweep latency, arbiter tick
//     latency — the ROADMAP item 2 measurement baseline) varies run to
//     run by nature.
//
// The convention separating them is the name prefix: "wall." metrics
// hold wall-clock observations, everything else is simulated-time or
// count data. Snapshot can exclude the wall section
// (Snapshot(SimOnly)) for byte-stability assertions.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*hist
}

// NewMetrics builds an enabled registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Enabled reports whether the registry records anything.
func (m *Metrics) Enabled() bool { return m != nil }

// Count adds delta to a named counter.
func (m *Metrics) Count(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.counters == nil {
		m.counters = make(map[string]int64)
	}
	m.counters[name] += delta
	m.mu.Unlock()
}

// Gauge sets a named gauge to its latest value.
func (m *Metrics) Gauge(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.gauges == nil {
		m.gauges = make(map[string]float64)
	}
	m.gauges[name] = v
	m.mu.Unlock()
}

// Observe records one sample into a named histogram. Units are the
// caller's convention — the instrumented stack uses microseconds for
// both simulated durations and wall-clock latencies (suffix "_us").
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.hists == nil {
		m.hists = make(map[string]*hist)
	}
	h := m.hists[name]
	if h == nil {
		h = &hist{}
		m.hists[name] = h
	}
	h.observe(v)
	m.mu.Unlock()
}

// histBuckets is the bucket count of the fixed log2 layout: bucket i
// holds samples in [2^(i-1), 2^i) (bucket 0 holds < 1), so 64 buckets
// cover sub-microsecond to ~292 years in microseconds.
const histBuckets = 64

// hist is a fixed-layout log2 histogram: allocation-free observation,
// deterministic quantile estimates.
type hist struct {
	counts     [histBuckets]int64
	n          int64
	sum        float64
	minV, maxV float64
}

func (h *hist) observe(v float64) {
	b := 0
	if v >= 1 {
		b = int(math.Floor(math.Log2(v))) + 1
		if b >= histBuckets {
			b = histBuckets - 1
		}
	}
	h.counts[b]++
	if h.n == 0 || v < h.minV {
		h.minV = v
	}
	if h.n == 0 || v > h.maxV {
		h.maxV = v
	}
	h.n++
	h.sum += v
}

// quantile estimates q ∈ [0,1] from the bucket layout: the upper bound
// of the bucket containing the q-th sample, clamped to the observed
// max — deterministic, within 2× of the true value.
func (h *hist) quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(q*float64(h.n-1)) + 1
	var seen int64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			// Upper bound of bucket b: bucket 0 is [0,1), bucket b≥1 is
			// [2^(b-1), 2^b).
			return math.Min(math.Exp2(float64(b)), h.maxV)
		}
	}
	return h.maxV
}

// HistSnapshot summarizes one histogram.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// SnapshotMode selects what Snapshot includes.
type SnapshotMode int

const (
	// All includes every metric, wall-clock self-profiling included.
	All SnapshotMode = iota
	// SimOnly excludes "wall."-prefixed metrics — the deterministic
	// subset a byte-stability assertion can compare across replays.
	SimOnly
	// WallOnly includes only the "wall."-prefixed self-profiling
	// metrics — the non-deterministic complement of SimOnly.
	WallOnly
)

// Snap is the serializable registry snapshot. Map keys marshal in
// sorted order (encoding/json), so identical values produce identical
// bytes.
type Snap struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry. Nil registries snapshot to the zero
// Snap.
func (m *Metrics) Snapshot(mode SnapshotMode) Snap {
	var s Snap
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	keep := func(name string) bool {
		switch mode {
		case SimOnly:
			return !isWall(name)
		case WallOnly:
			return isWall(name)
		default:
			return true
		}
	}
	for k, v := range m.counters {
		if !keep(k) {
			continue
		}
		if s.Counters == nil {
			s.Counters = make(map[string]int64)
		}
		s.Counters[k] = v
	}
	for k, v := range m.gauges {
		if !keep(k) {
			continue
		}
		if s.Gauges == nil {
			s.Gauges = make(map[string]float64)
		}
		s.Gauges[k] = v
	}
	for k, h := range m.hists {
		if !keep(k) {
			continue
		}
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistSnapshot)
		}
		mean := 0.0
		if h.n > 0 {
			mean = h.sum / float64(h.n)
		}
		s.Histograms[k] = HistSnapshot{
			Count: h.n, Mean: mean, Min: h.minV, Max: h.maxV,
			P50: h.quantile(0.50), P90: h.quantile(0.90), P99: h.quantile(0.99),
		}
	}
	return s
}

// isWall reports whether a metric name is wall-clock self-profiling.
func isWall(name string) bool { return len(name) >= 5 && name[:5] == "wall." }

// JSON marshals the snapshot as indented, byte-stable JSON.
func (s Snap) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// Summary renders the snapshot's histograms one per line, sorted —
// the human-readable self-profiling block scenario summaries append.
func (s Snap) Summary() string {
	if len(s.Histograms) == 0 {
		return ""
	}
	names := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	out := ""
	for _, k := range names {
		h := s.Histograms[k]
		out += fmt.Sprintf("  %-28s n=%-6d mean=%-10.1f p50=%-10.0f p99=%-10.0f max=%.1f\n",
			k, h.Count, h.Mean, h.P50, h.P99, h.Max)
	}
	return out
}
