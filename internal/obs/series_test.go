package obs

import (
	"bytes"
	"testing"

	"repro/internal/simtime"
)

func TestSeriesNilSafe(t *testing.T) {
	var s *SeriesSet
	s.Record("x", 0, 1)
	s.Watch("x", func(simtime.Time, float64) {})
	if s.Enabled() || s.Len("x") != 0 || s.Points("x") != nil || s.Names() != nil || s.Dropped("x") != 0 {
		t.Fatal("nil SeriesSet must no-op everywhere")
	}
	if _, ok := s.Summary("x"); ok {
		t.Fatal("nil SeriesSet summary must report absent")
	}
}

func TestSeriesDisabledZeroAlloc(t *testing.T) {
	var s *SeriesSet
	allocs := testing.AllocsPerRun(100, func() {
		s.Record("gpus", 42, 64)
	})
	if allocs != 0 {
		t.Fatalf("disabled Record allocates %v/op", allocs)
	}
}

func TestSeriesRecordOrder(t *testing.T) {
	s := NewSeriesSet(0)
	for i := 0; i < 5; i++ {
		s.Record("a", simtime.Time(i), float64(i*10))
	}
	pts := s.Points("a")
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		if p.At != simtime.Time(i) || p.V != float64(i*10) {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
}

func TestSeriesRingEviction(t *testing.T) {
	s := NewSeriesSet(3)
	for i := 0; i < 7; i++ {
		s.Record("a", simtime.Time(i), float64(i))
	}
	pts := s.Points("a")
	if len(pts) != 3 || s.Dropped("a") != 4 {
		t.Fatalf("ring kept %d dropped %d", len(pts), s.Dropped("a"))
	}
	for i, want := range []float64{4, 5, 6} {
		if pts[i].V != want {
			t.Fatalf("ring pts %+v", pts)
		}
	}
}

func TestSeriesNamesSorted(t *testing.T) {
	s := NewSeriesSet(0)
	s.Record("z", 0, 1)
	s.Record("a", 0, 1)
	s.Record("m", 0, 1)
	names := s.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Fatalf("names %v", names)
	}
}

func TestSeriesSummary(t *testing.T) {
	s := NewSeriesSet(0)
	for i, v := range []float64{5, 1, 9, 3, 7} {
		s.Record("a", simtime.Time(i), v)
	}
	sum, ok := s.Summary("a")
	if !ok {
		t.Fatal("summary absent")
	}
	if sum.Count != 5 || sum.Min != 1 || sum.Max != 9 || sum.Mean != 5 || sum.P50 != 5 || sum.P99 != 9 || sum.Last != 7 {
		t.Fatalf("summary %+v", sum)
	}
}

func TestSeriesWatch(t *testing.T) {
	s := NewSeriesSet(0)
	var got []float64
	s.Watch("a", func(at simtime.Time, v float64) { got = append(got, v) })
	s.Record("a", 0, 1)
	s.Record("b", 1, 99) // different series: watcher must not fire
	s.Record("a", 2, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("watched %v", got)
	}
}

func TestSeriesCSVByteStable(t *testing.T) {
	build := func() *SeriesSet {
		s := NewSeriesSet(0)
		s.Record("b", 10, 0.5)
		s.Record("a", 0, 1)
		s.Record("a", simtime.Time(simtime.Hour), 2.25)
		return s
	}
	a, b := build().CSV(), build().CSV()
	if !bytes.Equal(a, b) {
		t.Fatal("identical recordings export different CSV bytes")
	}
	want := "series,t_us,value\na,0,1\na,3600000000,2.25\nb,10,0.5\n"
	if string(a) != want {
		t.Fatalf("csv:\n%s", a)
	}
}

func TestSeriesCSVNil(t *testing.T) {
	var s *SeriesSet
	if string(s.CSV()) != "series,t_us,value\n" {
		t.Fatalf("nil csv %q", s.CSV())
	}
}

func TestOpenMetricsStable(t *testing.T) {
	build := func() ([]byte, error) {
		m := NewMetrics()
		m.Count("preempts", 3)
		m.Gauge("dollars.total", 1.5)
		m.Observe("recovery_us", 100)
		s := NewSeriesSet(0)
		s.Record("gpus", 0, 8)
		s.Record("gpus", 1, 6)
		return OpenMetrics(m.Snapshot(SimOnly), s), nil
	}
	a, _ := build()
	b, _ := build()
	if !bytes.Equal(a, b) {
		t.Fatal("identical state exports different OpenMetrics bytes")
	}
	for _, want := range []string{
		"# TYPE varuna_preempts counter\nvaruna_preempts_total 3\n",
		"# TYPE varuna_dollars_total gauge\nvaruna_dollars_total 1.5\n",
		"varuna_recovery_us_count 1\n",
		"# TYPE varuna_series_gpus gauge\nvaruna_series_gpus 6\n",
		"# EOF\n",
	} {
		if !bytes.Contains(a, []byte(want)) {
			t.Fatalf("OpenMetrics missing %q in:\n%s", want, a)
		}
	}
}
