package obs

import (
	"testing"

	"repro/internal/simtime"
)

// at converts a duration offset into an absolute sample instant.
func at(d simtime.Duration) simtime.Time { return simtime.Time(d) }

func TestParseSLOExpr(t *testing.T) {
	cases := []struct {
		expr      string
		series    string
		agg, op   string
		threshold float64
	}{
		{"recovery-p99 < 120s", "recovery", "p99", "<", 120},
		{"downtime-fraction < 3%", "downtime-fraction", "last", "<", 0.03},
		{"dollars-per-kex < 0.8", "dollars-per-kex", "last", "<", 0.8},
		{"idle-fraction <= 10%", "idle-fraction", "last", "<=", 0.10},
		{"gpus-min >= 8", "gpus", "min", ">=", 8},
		{"throughput-mean > 500ms", "throughput", "mean", ">", 0.5},
		{"recovery-max < 2m", "recovery", "max", "<", 120},
		{"recovery-p50 < 1.5h", "recovery", "p50", "<", 5400},
	}
	for _, c := range cases {
		series, agg, op, th, err := ParseSLOExpr(c.expr)
		if err != nil {
			t.Fatalf("%q: %v", c.expr, err)
		}
		if series != c.series || agg != c.agg || op != c.op || th != c.threshold {
			t.Fatalf("%q → (%q,%q,%q,%v)", c.expr, series, agg, op, th)
		}
	}
}

func TestParseSLOExprRejects(t *testing.T) {
	for _, expr := range []string{
		"", "recovery <", "recovery ~ 5", "recovery < banana",
		"a b c d", "-p99 < 5",
	} {
		if _, _, _, _, err := ParseSLOExpr(expr); err == nil {
			t.Fatalf("%q: want error", expr)
		}
	}
}

func TestMonitorImmediateBreach(t *testing.T) {
	m := &Monitor{Name: "d", Op: "<", Threshold: 0.03, Agg: "last"}
	m.Observe(0, 0.01)
	if m.Breaches() != 0 {
		t.Fatal("compliant sample breached")
	}
	m.Observe(at(simtime.Hour), 0.05)
	if m.Breaches() != 1 {
		t.Fatalf("breaches %d", m.Breaches())
	}
	// Still violating: same episode, no second breach.
	m.Observe(at(2*simtime.Hour), 0.06)
	if m.Breaches() != 1 {
		t.Fatalf("episode double-counted: %d", m.Breaches())
	}
	// Recover, then violate again: a new episode.
	m.Observe(at(3*simtime.Hour), 0.01)
	m.Observe(at(4*simtime.Hour), 0.09)
	if m.Breaches() != 2 {
		t.Fatalf("second episode not counted: %d", m.Breaches())
	}
	r := m.Result()
	if r.OK || r.Breaches != 2 || r.Worst != 0.09 || r.FirstBreachHours != 1 {
		t.Fatalf("result %+v", r)
	}
}

func TestMonitorBurnWindow(t *testing.T) {
	m := &Monitor{Name: "d", Op: "<", Threshold: 10, Agg: "last", For: 30 * simtime.Minute}
	m.Observe(0, 50) // violation starts, burn window not yet elapsed
	if m.Breaches() != 0 {
		t.Fatal("breached before burn window elapsed")
	}
	m.Observe(at(10*simtime.Minute), 50)
	if m.Breaches() != 0 {
		t.Fatal("breached mid-burn")
	}
	m.Observe(at(30*simtime.Minute), 50)
	if m.Breaches() != 1 {
		t.Fatalf("burn window elapsed, breaches %d", m.Breaches())
	}
	// A blip that recovers inside the window never breaches.
	m2 := &Monitor{Name: "d", Op: "<", Threshold: 10, Agg: "last", For: 30 * simtime.Minute}
	m2.Observe(0, 50)
	m2.Observe(at(10*simtime.Minute), 5)
	m2.Observe(at(20*simtime.Minute), 50)
	m2.Observe(at(40*simtime.Minute), 5)
	if m2.Breaches() != 0 {
		t.Fatalf("blips breached: %d", m2.Breaches())
	}
}

func TestMonitorRollingQuantile(t *testing.T) {
	m := &Monitor{Name: "r", Op: "<", Threshold: 100, Agg: "p99", Window: simtime.Hour}
	for i := 0; i < 10; i++ {
		m.Observe(simtime.Time(i)*at(simtime.Minute), 50)
	}
	if m.Breaches() != 0 {
		t.Fatal("p99 of 50s breached threshold 100")
	}
	m.Observe(simtime.Time(10)*at(simtime.Minute), 500)
	if m.Breaches() != 1 {
		t.Fatalf("p99 should include the 500 spike: %d", m.Breaches())
	}
	// After the window slides past the spike, the aggregate recovers.
	m.Observe(simtime.Time(3)*at(simtime.Hour), 50)
	if r := m.Result(); r.Last != 50 {
		t.Fatalf("window failed to evict spike: last=%v", r.Last)
	}
}

func TestMonitorOnBreachFiresOncePerEpisode(t *testing.T) {
	var fired []simtime.Time
	m := &Monitor{
		Name: "d", Op: "<", Threshold: 1, Agg: "last",
		OnBreach: func(at simtime.Time, v float64) { fired = append(fired, at) },
	}
	m.Observe(1, 5)
	m.Observe(2, 5)
	m.Observe(3, 0)
	m.Observe(4, 5)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 4 {
		t.Fatalf("OnBreach fired at %v", fired)
	}
}

func TestMonitorGreaterOps(t *testing.T) {
	m := &Monitor{Name: "g", Op: ">=", Threshold: 8, Agg: "last"}
	m.Observe(0, 10)
	m.Observe(1, 4)
	m.Observe(2, 12)
	r := m.Result()
	if r.Breaches != 1 || r.Worst != 4 {
		t.Fatalf("result %+v", r)
	}
}
