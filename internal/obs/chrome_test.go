package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// buildTrace records a miniature cross-track causal chain: a market
// reclaim causing a job-track preemption, decision and restart phase.
func buildTrace() *Tracer {
	tr := NewTracer()
	mkt := tr.Track("market")
	job := tr.Track("job:a")
	reclaim := tr.Instant(mkt, 0, 10, "market", "reclaim")
	tr.SetArgs(reclaim, I64("vm", 3), I64("gpus", 1))
	pre := tr.Instant(job, reclaim, 10, "fleet", "preempt")
	dec := tr.Begin(job, pre, 10, "manager", "decision")
	tr.SetArgs(dec, Str("label", "morph 4x2 -> 3x2"))
	stop := tr.Begin(job, dec, 10, "restart", "stop")
	tr.End(stop, 40)
	tr.End(dec, 40)
	return tr
}

type traceFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   int64          `json:"ts"`
		Dur  *int64         `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		ID   string         `json:"id"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestChromeTraceStructure(t *testing.T) {
	data, err := buildTrace().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var f traceFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, data)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", f.DisplayTimeUnit)
	}

	var meta, complete, flowS, flowF int
	threadNames := map[int]string{}
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name == "thread_name" {
				threadNames[ev.TID] = ev.Args["name"].(string)
			}
		case "X":
			complete++
			if ev.Dur == nil {
				t.Fatalf("X event %q without dur", ev.Name)
			}
			if _, ok := ev.Args["span"]; !ok {
				t.Fatalf("X event %q without span id", ev.Name)
			}
		case "s":
			flowS++
		case "f":
			flowF++
		}
	}
	// process_name + 2×(thread_name, thread_sort_index).
	if meta != 5 {
		t.Fatalf("%d metadata events, want 5", meta)
	}
	if threadNames[1] != "market" || threadNames[2] != "job:a" {
		t.Fatalf("thread names %v", threadNames)
	}
	if complete != 4 {
		t.Fatalf("%d X events, want 4", complete)
	}
	// Exactly one cross-track parent link (reclaim → preempt): one
	// flow start/finish pair.
	if flowS != 1 || flowF != 1 {
		t.Fatalf("flow pairs %d/%d, want 1/1", flowS, flowF)
	}

	// The decision span keeps its duration and parent annotation.
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" && ev.Name == "decision" {
			if *ev.Dur != 30 {
				t.Fatalf("decision dur %d, want 30", *ev.Dur)
			}
			if ev.Args["parent"].(float64) != 2 {
				t.Fatalf("decision parent %v", ev.Args["parent"])
			}
		}
	}
}

func TestChromeTraceByteStable(t *testing.T) {
	a, err := buildTrace().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildTrace().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical recordings export different bytes")
	}
}

func TestChromeTraceNil(t *testing.T) {
	var tr *Tracer
	data, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var f traceFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("nil export invalid: %v", err)
	}
	if len(f.TraceEvents) != 0 {
		t.Fatalf("nil export events %+v", f.TraceEvents)
	}
}

// An enabled tracer that never recorded anything must export the same
// canonical empty trace as a nil one — valid JSON with an empty event
// array, not incidental metadata.
func TestChromeTraceEmpty(t *testing.T) {
	data, err := NewTracer().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var f traceFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("empty export invalid: %v", err)
	}
	if len(f.TraceEvents) != 0 {
		t.Fatalf("empty export events %+v", f.TraceEvents)
	}
	nilData, err := (*Tracer)(nil).ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, nilData) {
		t.Fatal("empty and nil tracers export different bytes")
	}
}
