package obs

import (
	"math"
	"sort"
	"sync"

	"repro/internal/simtime"
)

// DefaultSeriesCap is the per-series ring capacity when the caller
// does not choose one: at the default 1-minute cadence it retains just
// under three days of samples before the ring starts dropping the
// oldest points.
const DefaultSeriesCap = 4096

// Point is one (simulated time, value) sample.
type Point struct {
	At simtime.Time
	V  float64
}

// series is one named ring-buffered sampler.
type series struct {
	pts      []Point // ring storage; len(pts) == cap once full
	head     int     // index of the oldest retained point
	n        int     // retained point count
	dropped  int64   // points evicted by the ring
	watchers []func(at simtime.Time, v float64)
}

// SeriesSet is a registry of named time series sampled on the
// simulated clock: GPU counts, throughput, cumulative dollars,
// recovery latencies — the continuous signals the end-of-run Metrics
// snapshot flattens away. A nil *SeriesSet is the disabled registry:
// every method is an immediate return, so instrumented hot paths stay
// bit-identical and allocation-free when sampling is off (the same
// discipline as the Tracer and Metrics).
//
// Determinism: points carry only simulated time and values derived
// from it, and recording order is the event loop's execution order, so
// a replayed scenario exports byte-identical series.
type SeriesSet struct {
	mu     sync.Mutex
	cap    int
	names  []string // registration order
	series map[string]*series
}

// NewSeriesSet builds an enabled registry whose rings retain up to
// capacity points each (DefaultSeriesCap when capacity <= 0).
func NewSeriesSet(capacity int) *SeriesSet {
	if capacity <= 0 {
		capacity = DefaultSeriesCap
	}
	return &SeriesSet{cap: capacity}
}

// Enabled reports whether the registry records anything.
func (s *SeriesSet) Enabled() bool { return s != nil }

// get looks up or registers a series. Caller holds the lock.
func (s *SeriesSet) get(name string) *series {
	sr := s.series[name]
	if sr == nil {
		if s.series == nil {
			s.series = make(map[string]*series)
		}
		sr = &series{}
		s.series[name] = sr
		s.names = append(s.names, name)
	}
	return sr
}

// Record appends one sample to the named series (registering it on
// first use) and feeds every watcher attached to that name.
func (s *SeriesSet) Record(name string, at simtime.Time, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	sr := s.get(name)
	if sr.n < s.cap {
		sr.pts = append(sr.pts, Point{At: at, V: v})
		sr.n++
	} else {
		sr.pts[sr.head] = Point{At: at, V: v}
		sr.head = (sr.head + 1) % s.cap
		sr.dropped++
	}
	watchers := sr.watchers
	s.mu.Unlock()
	for _, w := range watchers {
		w(at, v)
	}
}

// Watch attaches an online observer to a series (registering the name
// if new): fn runs synchronously on every Record, in attach order —
// the feed the SLO monitors evaluate on.
func (s *SeriesSet) Watch(name string, fn func(at simtime.Time, v float64)) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	sr := s.get(name)
	sr.watchers = append(sr.watchers, fn)
	s.mu.Unlock()
}

// Names returns the registered series names, sorted — the
// deterministic export order.
func (s *SeriesSet) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.names))
	copy(out, s.names)
	sort.Strings(out)
	return out
}

// Points snapshots the retained points of a series in chronological
// order (nil for unknown names or a nil registry).
func (s *SeriesSet) Points(name string) []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.series[name]
	if sr == nil || sr.n == 0 {
		return nil
	}
	out := make([]Point, 0, sr.n)
	for i := 0; i < sr.n; i++ {
		out = append(out, sr.pts[(sr.head+i)%len(sr.pts)])
	}
	return out
}

// Len reports the retained point count of a series.
func (s *SeriesSet) Len(name string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sr := s.series[name]; sr != nil {
		return sr.n
	}
	return 0
}

// Dropped reports how many points the ring evicted from a series.
func (s *SeriesSet) Dropped(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sr := s.series[name]; sr != nil {
		return sr.dropped
	}
	return 0
}

// SeriesSummary condenses one series' retained points — the
// per-series line the reports and the bench history carry.
type SeriesSummary struct {
	Count   int     `json:"count"`
	Dropped int64   `json:"dropped,omitempty"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
	P50     float64 `json:"p50"`
	P99     float64 `json:"p99"`
	Last    float64 `json:"last"`
}

// Summary computes the summary of one series (ok is false for unknown
// names, empty series, or a nil registry). Quantiles are nearest-rank
// over the retained points.
func (s *SeriesSet) Summary(name string) (SeriesSummary, bool) {
	pts := s.Points(name)
	if len(pts) == 0 {
		return SeriesSummary{}, false
	}
	vals := make([]float64, len(pts))
	sum := 0.0
	for i, p := range pts {
		vals[i] = p.V
		sum += p.V
	}
	sort.Float64s(vals)
	out := SeriesSummary{
		Count:   len(pts),
		Dropped: s.Dropped(name),
		Min:     vals[0],
		Max:     vals[len(vals)-1],
		Mean:    sum / float64(len(vals)),
		P50:     quantileSorted(vals, 0.50),
		P99:     quantileSorted(vals, 0.99),
		Last:    pts[len(pts)-1].V,
	}
	return out, true
}

// quantileSorted is the nearest-rank quantile of an ascending slice.
func quantileSorted(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}
