package obs

import (
	"bytes"
	"sort"
	"strconv"
)

// CSV dumps every retained series point as byte-stable CSV:
// one "series,t_us,value" row per point, series in sorted name order,
// points chronological. Nil registries export just the header.
func (s *SeriesSet) CSV() []byte {
	var buf bytes.Buffer
	buf.WriteString("series,t_us,value\n")
	for _, name := range s.Names() {
		for _, p := range s.Points(name) {
			buf.WriteString(name)
			buf.WriteByte(',')
			buf.WriteString(strconv.FormatInt(int64(p.At), 10))
			buf.WriteByte(',')
			buf.WriteString(formatFloat(p.V))
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes()
}

// OpenMetrics renders a metrics snapshot plus the latest series values
// as OpenMetrics text exposition: counters and gauges verbatim,
// histograms as summaries (quantile labels + _sum/_count), each series
// as a gauge holding its last sample. Names are sanitized to the
// exposition charset and prefixed "varuna_"; families appear in sorted
// order so identical state exports identical bytes.
func OpenMetrics(snap Snap, ss *SeriesSet) []byte {
	var buf bytes.Buffer
	for _, k := range sortedKeys(snap.Counters) {
		n := metricName(k)
		buf.WriteString("# TYPE " + n + " counter\n")
		buf.WriteString(n + "_total " + strconv.FormatInt(snap.Counters[k], 10) + "\n")
	}
	for _, k := range sortedKeys(snap.Gauges) {
		n := metricName(k)
		buf.WriteString("# TYPE " + n + " gauge\n")
		buf.WriteString(n + " " + formatFloat(snap.Gauges[k]) + "\n")
	}
	for _, k := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[k]
		n := metricName(k)
		buf.WriteString("# TYPE " + n + " summary\n")
		buf.WriteString(n + "{quantile=\"0.5\"} " + formatFloat(h.P50) + "\n")
		buf.WriteString(n + "{quantile=\"0.9\"} " + formatFloat(h.P90) + "\n")
		buf.WriteString(n + "{quantile=\"0.99\"} " + formatFloat(h.P99) + "\n")
		buf.WriteString(n + "_sum " + formatFloat(h.Mean*float64(h.Count)) + "\n")
		buf.WriteString(n + "_count " + strconv.FormatInt(h.Count, 10) + "\n")
	}
	for _, name := range ss.Names() {
		pts := ss.Points(name)
		if len(pts) == 0 {
			continue
		}
		n := metricName("series." + name)
		buf.WriteString("# TYPE " + n + " gauge\n")
		buf.WriteString(n + " " + formatFloat(pts[len(pts)-1].V) + "\n")
	}
	buf.WriteString("# EOF\n")
	return buf.Bytes()
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// metricName maps an internal dotted/dashed name onto the OpenMetrics
// charset: "varuna_" prefix, [a-zA-Z0-9_] body.
func metricName(name string) string {
	out := make([]byte, 0, len(name)+7)
	out = append(out, "varuna_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// formatFloat renders a float densely and deterministically: the
// shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
