package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestCountersGauges(t *testing.T) {
	m := NewMetrics()
	m.Count("a", 2)
	m.Count("a", 3)
	m.Gauge("g", 1.5)
	m.Gauge("g", 2.5) // latest wins
	s := m.Snapshot(All)
	if s.Counters["a"] != 5 {
		t.Fatalf("counter a = %d", s.Counters["a"])
	}
	if s.Gauges["g"] != 2.5 {
		t.Fatalf("gauge g = %v", s.Gauges["g"])
	}
}

func TestHistogram(t *testing.T) {
	m := NewMetrics()
	for i := 1; i <= 1000; i++ {
		m.Observe("lat", float64(i))
	}
	h := m.Snapshot(All).Histograms["lat"]
	if h.Count != 1000 || h.Min != 1 || h.Max != 1000 {
		t.Fatalf("count/min/max %+v", h)
	}
	if h.Mean < 500 || h.Mean > 501 {
		t.Fatalf("mean %v", h.Mean)
	}
	// The log2 layout guarantees quantiles within 2× of the true value
	// (upper bucket bound), clamped to the observed max.
	if h.P50 < 500 || h.P50 > 1000 {
		t.Fatalf("p50 %v outside [500,1000]", h.P50)
	}
	if h.P99 < 990/2 || h.P99 > 1000 {
		t.Fatalf("p99 %v", h.P99)
	}
	if h.Max != 1000 || h.P99 > h.Max {
		t.Fatalf("p99 %v > max %v", h.P99, h.Max)
	}

	// Sub-1 values land in bucket 0.
	m.Observe("tiny", 0.25)
	if th := m.Snapshot(All).Histograms["tiny"]; th.Count != 1 || th.P50 > 1 {
		t.Fatalf("tiny %+v", th)
	}
}

func TestSnapshotModes(t *testing.T) {
	m := NewMetrics()
	m.Count("planner.sweeps", 1)
	m.Count("wall.ticks", 1)
	m.Gauge("dollars.total", 5)
	m.Gauge("wall.g", 1)
	m.Observe("manager.recovery_us", 10)
	m.Observe("wall.planner.sweep_us", 10)

	sim := m.Snapshot(SimOnly)
	for name := range sim.Counters {
		if isWall(name) {
			t.Fatalf("SimOnly kept %q", name)
		}
	}
	if _, ok := sim.Histograms["wall.planner.sweep_us"]; ok {
		t.Fatal("SimOnly kept a wall histogram")
	}
	if _, ok := sim.Histograms["manager.recovery_us"]; !ok {
		t.Fatal("SimOnly dropped a sim histogram")
	}

	wall := m.Snapshot(WallOnly)
	if len(wall.Counters) != 1 || len(wall.Gauges) != 1 || len(wall.Histograms) != 1 {
		t.Fatalf("WallOnly kept %d/%d/%d", len(wall.Counters), len(wall.Gauges), len(wall.Histograms))
	}
	if _, ok := wall.Histograms["wall.planner.sweep_us"]; !ok {
		t.Fatal("WallOnly dropped the wall histogram")
	}

	all := m.Snapshot(All)
	if len(all.Counters) != 2 || len(all.Gauges) != 2 || len(all.Histograms) != 2 {
		t.Fatal("All filtered something")
	}
}

func TestSnapshotJSONByteStable(t *testing.T) {
	build := func() *Metrics {
		m := NewMetrics()
		m.Count("b", 2)
		m.Count("a", 1)
		m.Gauge("z", 9)
		m.Gauge("y", 8)
		m.Observe("h2", 4)
		m.Observe("h1", 3)
		return m
	}
	j1, err := build().Snapshot(All).JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := build().Snapshot(All).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshot JSON not byte-stable:\n%s\nvs\n%s", j1, j2)
	}
}

func TestSummarySorted(t *testing.T) {
	m := NewMetrics()
	m.Observe("zz", 1)
	m.Observe("aa", 2)
	sum := m.Snapshot(All).Summary()
	if !strings.Contains(sum, "aa") || !strings.Contains(sum, "zz") {
		t.Fatalf("summary missing names:\n%s", sum)
	}
	if strings.Index(sum, "aa") > strings.Index(sum, "zz") {
		t.Fatalf("summary not sorted:\n%s", sum)
	}
	if (Snap{}).Summary() != "" {
		t.Fatal("empty snapshot summary not empty")
	}
}

func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	if m.Enabled() {
		t.Fatal("nil metrics enabled")
	}
	m.Count("a", 1)
	m.Gauge("g", 1)
	m.Observe("h", 1)
	s := m.Snapshot(All)
	if s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Fatal("nil metrics snapshot non-empty")
	}
}
