package obs

import (
	"testing"

	"repro/internal/simtime"
)

func TestTrackRegistration(t *testing.T) {
	tr := NewTracer()
	mkt := tr.Track("market")
	arb := tr.Track("arbiter")
	if mkt != 1 || arb != 2 {
		t.Fatalf("track ids %d,%d; want 1,2", mkt, arb)
	}
	if again := tr.Track("market"); again != mkt {
		t.Fatalf("re-registering returned %d, want %d", again, mkt)
	}
	if got := tr.TrackName(arb); got != "arbiter" {
		t.Fatalf("TrackName(%d) = %q", arb, got)
	}
	if got := tr.TrackName(99); got != "" {
		t.Fatalf("unknown track named %q", got)
	}
	want := []string{"market", "arbiter"}
	tracks := tr.Tracks()
	if len(tracks) != len(want) || tracks[0] != want[0] || tracks[1] != want[1] {
		t.Fatalf("Tracks() = %v, want %v", tracks, want)
	}
}

func TestSpanLifecycle(t *testing.T) {
	tr := NewTracer()
	trk := tr.Track("job")
	id := tr.Begin(trk, 0, 100, "manager", "train")
	if id != 1 {
		t.Fatalf("first span id %d", id)
	}
	tr.SetArgs(id, I64("gpus", 8), Str("label", "morph"))
	tr.End(id, 500)

	sp, ok := tr.Find(id)
	if !ok {
		t.Fatal("span not found")
	}
	if sp.Start != 100 || sp.End != 500 || sp.Cat != "manager" || sp.Name != "train" {
		t.Fatalf("span %+v", sp)
	}
	if len(sp.Args) != 2 || sp.Args[0].Val != 8 || sp.Args[1].Str != "morph" {
		t.Fatalf("args %+v", sp.Args)
	}

	// End never rewinds: a second, earlier End leaves the span alone.
	tr.End(id, 200)
	if sp, _ = tr.Find(id); sp.End != 500 {
		t.Fatalf("End rewound span to %v", sp.End)
	}

	// Instants carry ids and zero duration.
	iid := tr.Instant(trk, id, 300, "fleet", "preempt")
	if sp, _ = tr.Find(iid); sp.Start != sp.End || sp.Parent != id {
		t.Fatalf("instant %+v", sp)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len() = %d", tr.Len())
	}

	// Unknown ids are ignored, not panics.
	tr.End(99, 1000)
	tr.SetArgs(99, I64("x", 1))
	if _, ok := tr.Find(99); ok {
		t.Fatal("found a span that was never recorded")
	}
}

func TestChainRootLast(t *testing.T) {
	tr := NewTracer()
	mkt := tr.Track("market")
	job := tr.Track("job")
	reclaim := tr.Instant(mkt, 0, 10, "market", "reclaim")
	preempt := tr.Instant(job, reclaim, 10, "fleet", "preempt")
	decide := tr.Begin(job, preempt, 10, "manager", "decision")
	restart := tr.Begin(job, decide, 20, "restart", "stop")

	chain := tr.Chain(restart)
	want := []string{"stop", "decision", "preempt", "reclaim"}
	if len(chain) != len(want) {
		t.Fatalf("chain length %d, want %d", len(chain), len(want))
	}
	for i, name := range want {
		if chain[i].Name != name {
			t.Fatalf("chain[%d] = %q, want %q", i, chain[i].Name, name)
		}
	}
	if chain[len(chain)-1].Parent != 0 {
		t.Fatal("chain root has a parent")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	if id := tr.Begin(1, 0, 0, "a", "b"); id != 0 {
		t.Fatalf("nil Begin returned %d", id)
	}
	if id := tr.Track("x"); id != 0 {
		t.Fatalf("nil Track returned %d", id)
	}
	tr.End(1, 10)
	tr.SetArgs(1, I64("k", 1))
	if tr.Instant(0, 0, 0, "a", "b") != 0 || tr.Len() != 0 {
		t.Fatal("nil tracer recorded something")
	}
	if tr.Spans() != nil || tr.Tracks() != nil || tr.Chain(1) != nil {
		t.Fatal("nil tracer snapshots non-nil")
	}
	if _, ok := tr.Find(1); ok {
		t.Fatal("nil tracer found a span")
	}
	if tr.TrackName(1) != "" {
		t.Fatal("nil tracer named a track")
	}
}

// TestTracerDisabledZeroAlloc pins design constraint 1: every tracer
// and metrics operation on the disabled (nil) instances — the exact
// calls left on instrumented hot paths when tracing is off — performs
// zero allocations.
func TestTracerDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	var met *Metrics
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			t.Fatal("unexpectedly enabled")
		}
		id := tr.Begin(1, 0, simtime.Time(1), "manager", "train")
		tr.End(id, simtime.Time(2))
		tr.Instant(1, id, simtime.Time(2), "fleet", "preempt")
		tr.SetArgs(id)
		met.Count("planner.sweeps", 1)
		met.Gauge("g", 1)
		met.Observe("h", 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled hot path allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkTracerDisabled is the benchdiff-visible form of the same
// gate: b.ReportAllocs surfaces any regression as allocs/op > 0.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	var met *Metrics
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := tr.Begin(1, 0, simtime.Time(int64(i)), "manager", "train")
		tr.End(id, simtime.Time(int64(i+1)))
		met.Observe("h", float64(i))
	}
}

func BenchmarkTracerEnabled(b *testing.B) {
	tr := NewTracer()
	trk := tr.Track("job")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := tr.Begin(trk, 0, simtime.Time(int64(i)), "manager", "train")
		tr.End(id, simtime.Time(int64(i+1)))
	}
}
