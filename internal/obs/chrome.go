package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Chrome trace-event export: the recorded spans as a JSON Object
// Format trace (https://docs.google.com/document/d/1CvAClvFfyA5R-
// PhYUmn5OOQtYMH4h6I0nSsKchNAySU) loadable in chrome://tracing and
// https://ui.perfetto.dev. The mapping:
//
//   - simulated microseconds map 1:1 to trace timestamps (both are µs
//     since origin);
//   - each obs track becomes one thread of a single "varuna-sim"
//     process, in registration order (market and arbiter control
//     tracks first, then one track per job);
//   - spans become complete ("X") events, instants zero-duration ones;
//   - every parent link is carried in args.parent, and cross-track
//     parent links are additionally rendered as flow arrows ("s"/"f"
//     pairs) so Perfetto draws the market-reclaim → revocation →
//     morph-decision causality across tracks.
//
// Export is deterministic: events are written in span recording order
// with fixed field order, so a bit-identical replay exports a
// byte-identical trace file.

// chromeEvent is one trace event with the exact field order the
// exporter commits to (stable bytes).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const chromePID = 1

// ChromeTrace renders the recorded spans as Chrome trace-event JSON.
// A nil tracer, or an enabled one that recorded nothing, exports the
// canonical empty trace — an explicit guard, not a side effect of the
// metadata emission below.
func (t *Tracer) ChromeTrace() ([]byte, error) {
	if t == nil || (t.Len() == 0 && len(t.Tracks()) == 0) {
		return []byte("{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n"), nil
	}
	var buf bytes.Buffer
	buf.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(ev chromeEvent) error {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			buf.WriteString(",\n")
		}
		first = false
		buf.Write(data)
		return nil
	}

	// Process + thread metadata: one process, one named thread per
	// track, ordered by registration.
	if err := emit(chromeEvent{
		Name: "process_name", Ph: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": "varuna-sim"},
	}); err != nil {
		return nil, err
	}
	for i, name := range t.Tracks() {
		tid := i + 1
		if err := emit(chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: tid,
			Args: map[string]any{"name": name},
		}); err != nil {
			return nil, err
		}
		if err := emit(chromeEvent{
			Name: "thread_sort_index", Ph: "M", PID: chromePID, TID: tid,
			Args: map[string]any{"sort_index": tid},
		}); err != nil {
			return nil, err
		}
	}

	spans := t.Spans()
	for _, sp := range spans {
		dur := int64(sp.End.Sub(sp.Start))
		ev := chromeEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X",
			TS: int64(sp.Start), Dur: &dur,
			PID: chromePID, TID: int(sp.Track),
			Args: map[string]any{"span": int64(sp.ID)},
		}
		if sp.Parent > 0 {
			ev.Args["parent"] = int64(sp.Parent)
		}
		for _, a := range sp.Args {
			if a.Str != "" {
				ev.Args[a.Key] = a.Str
			} else {
				ev.Args[a.Key] = a.Val
			}
		}
		if err := emit(ev); err != nil {
			return nil, err
		}
		// Cross-track causality as a flow arrow: start at the parent's
		// opening instant, finish at the child's. Flow id = child span
		// id, so every arrow is its own binding.
		if sp.Parent > 0 && int(sp.Parent) <= len(spans) {
			par := spans[sp.Parent-1]
			if par.Track != sp.Track {
				fid := fmt.Sprintf("0x%x", int64(sp.ID))
				if err := emit(chromeEvent{
					Name: "cause", Cat: "flow", Ph: "s",
					TS: int64(par.Start), PID: chromePID, TID: int(par.Track), ID: fid,
				}); err != nil {
					return nil, err
				}
				if err := emit(chromeEvent{
					Name: "cause", Cat: "flow", Ph: "f", BP: "e",
					TS: int64(sp.Start), PID: chromePID, TID: int(sp.Track), ID: fid,
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	buf.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return buf.Bytes(), nil
}
