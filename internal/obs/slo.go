package obs

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/simtime"
)

// Monitor is one online SLO evaluator: it watches a series, aggregates
// it over a rolling window, compares against a threshold, and counts
// breach episodes. Feed it by attaching Observe as a SeriesSet watcher
// — evaluation happens inline, in the event loop's deterministic
// order, so breach instants replay bit-identically.
//
// Burn-rate semantics: a sample that violates the comparison starts
// (or continues) a violation episode; the episode becomes a *breach*
// once it has lasted For continuously (immediately when For == 0).
// Each episode breaches at most once; compliance resets it.
type Monitor struct {
	// Name identifies the rule in reports and metrics
	// ("slo.breach.<name>").
	Name string
	// Expr is the original rule text, kept for reports.
	Expr string
	// Series is the watched series name (already job-prefixed in
	// fleet mode).
	Series string
	// Agg aggregates the window: "last", "min", "max", "mean", "p50",
	// "p90", "p99".
	Agg string
	// Op compares the aggregate to Threshold: "<", "<=", ">", ">=".
	Op string
	// Threshold is the bound, in the series' own unit.
	Threshold float64
	// Window bounds the rolling aggregation window (0 = all retained
	// samples). Ignored when Agg is "last".
	Window simtime.Duration
	// For is the burn window: how long a violation must persist
	// before it counts as a breach.
	For simtime.Duration
	// Enforce marks the rule as run-failing: breaches become report
	// violations and a nonzero exit.
	Enforce bool
	// Job names the fleet job the rule applies to ("" single-job).
	Job string
	// OnBreach, when set, fires once per breach episode with the
	// breach instant and the offending aggregate value.
	OnBreach func(at simtime.Time, v float64)

	win         []Point // rolling buffer (unused when Agg == "last")
	samples     int
	last        float64
	worst       float64
	hasWorst    bool
	violating   bool
	violSince   simtime.Time
	episodeHit  bool
	breaches    int
	firstBreach simtime.Time
}

// Observe feeds one sample. Attach via SeriesSet.Watch.
func (m *Monitor) Observe(at simtime.Time, v float64) {
	agg := v
	if m.Agg != "last" {
		m.win = append(m.win, Point{At: at, V: v})
		if m.Window > 0 {
			cut := at - simtime.Time(m.Window)
			i := 0
			for i < len(m.win) && m.win[i].At < cut {
				i++
			}
			if i > 0 {
				m.win = append(m.win[:0], m.win[i:]...)
			}
		}
		agg = m.aggregate()
	}
	m.samples++
	m.last = agg
	if !m.hasWorst || m.worse(agg) {
		m.worst = agg
		m.hasWorst = true
	}
	if m.compare(agg) {
		m.violating = false
		m.episodeHit = false
		return
	}
	if !m.violating {
		m.violating = true
		m.violSince = at
	}
	if !m.episodeHit && simtime.Duration(at-m.violSince) >= m.For {
		m.episodeHit = true
		m.breaches++
		if m.breaches == 1 {
			m.firstBreach = at
		}
		if m.OnBreach != nil {
			m.OnBreach(at, agg)
		}
	}
}

// aggregate computes the windowed aggregate.
func (m *Monitor) aggregate() float64 {
	if len(m.win) == 0 {
		return 0
	}
	switch m.Agg {
	case "min":
		v := m.win[0].V
		for _, p := range m.win[1:] {
			if p.V < v {
				v = p.V
			}
		}
		return v
	case "max":
		v := m.win[0].V
		for _, p := range m.win[1:] {
			if p.V > v {
				v = p.V
			}
		}
		return v
	case "mean":
		sum := 0.0
		for _, p := range m.win {
			sum += p.V
		}
		return sum / float64(len(m.win))
	default: // p50/p90/p99
		q := 0.5
		switch m.Agg {
		case "p90":
			q = 0.90
		case "p99":
			q = 0.99
		}
		vals := make([]float64, len(m.win))
		for i, p := range m.win {
			vals[i] = p.V
		}
		// Insertion sort: windows are small and mostly ordered.
		for i := 1; i < len(vals); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
		return quantileSorted(vals, q)
	}
}

// compare reports whether the aggregate satisfies the rule.
func (m *Monitor) compare(v float64) bool {
	switch m.Op {
	case "<":
		return v < m.Threshold
	case "<=":
		return v <= m.Threshold
	case ">":
		return v > m.Threshold
	default: // ">="
		return v >= m.Threshold
	}
}

// worse reports whether v is further into violation territory than the
// current worst.
func (m *Monitor) worse(v float64) bool {
	if m.Op == "<" || m.Op == "<=" {
		return v > m.worst
	}
	return v < m.worst
}

// SLOResult is the per-rule entry in the report's slo section.
type SLOResult struct {
	Name             string  `json:"name"`
	Expr             string  `json:"expr"`
	Job              string  `json:"job,omitempty"`
	Mode             string  `json:"mode"`
	Samples          int     `json:"samples"`
	Breaches         int     `json:"breaches"`
	FirstBreachHours float64 `json:"first_breach_hours,omitempty"`
	Worst            float64 `json:"worst"`
	Last             float64 `json:"last"`
	OK               bool    `json:"ok"`
}

// Result snapshots the monitor's outcome.
func (m *Monitor) Result() SLOResult {
	mode := "warn"
	if m.Enforce {
		mode = "enforce"
	}
	r := SLOResult{
		Name: m.Name, Expr: m.Expr, Job: m.Job, Mode: mode,
		Samples: m.samples, Breaches: m.breaches,
		Worst: m.worst, Last: m.last, OK: m.breaches == 0,
	}
	if m.breaches > 0 {
		r.FirstBreachHours = m.firstBreach.Hours()
	}
	return r
}

// Breaches reports the breach-episode count so far.
func (m *Monitor) Breaches() int { return m.breaches }

// ParseSLOExpr parses a rule expression of the form
//
//	<series>[-<agg>] <op> <threshold>
//
// where op is one of < <= > >= and threshold is a plain float, a
// percentage ("3%" → 0.03) or a duration ("120s", "500ms", "2m",
// "1.5h" → seconds). The agg suffix is one of -min -max -mean -p50
// -p90 -p99; without it the rule evaluates each sample directly
// ("last").
func ParseSLOExpr(expr string) (seriesName, agg, op string, threshold float64, err error) {
	fields := strings.Fields(expr)
	if len(fields) != 3 {
		return "", "", "", 0, fmt.Errorf("slo expr %q: want \"<series> <op> <value>\"", expr)
	}
	seriesName, op = fields[0], fields[1]
	switch op {
	case "<", "<=", ">", ">=":
	default:
		return "", "", "", 0, fmt.Errorf("slo expr %q: unknown op %q", expr, op)
	}
	agg = "last"
	for _, suf := range []string{"min", "max", "mean", "p50", "p90", "p99"} {
		if strings.HasSuffix(seriesName, "-"+suf) {
			agg = suf
			seriesName = seriesName[:len(seriesName)-len(suf)-1]
			break
		}
	}
	if seriesName == "" {
		return "", "", "", 0, fmt.Errorf("slo expr %q: empty series name", expr)
	}
	threshold, err = parseThreshold(fields[2])
	if err != nil {
		return "", "", "", 0, fmt.Errorf("slo expr %q: %v", expr, err)
	}
	return seriesName, agg, op, threshold, nil
}

// parseThreshold parses a plain float, a percentage, or a duration
// (yielding seconds).
func parseThreshold(s string) (float64, error) {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	if strings.HasSuffix(s, "%") {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			return 0, fmt.Errorf("bad percentage %q", s)
		}
		return v / 100, nil
	}
	for _, u := range []struct {
		suffix string
		scale  float64
	}{{"ms", 1e-3}, {"s", 1}, {"m", 60}, {"h", 3600}} {
		if strings.HasSuffix(s, u.suffix) {
			v, err := strconv.ParseFloat(strings.TrimSuffix(s, u.suffix), 64)
			if err != nil {
				continue
			}
			return v * u.scale, nil
		}
	}
	return 0, fmt.Errorf("bad threshold %q (want float, percentage, or duration)", s)
}
