// Package obs is the simulated-time observability layer: causal spans
// and typed metrics threaded through the whole simulate-and-decide
// stack (market → arbiter → manager → planner → restart).
//
// The evaluation story of the paper (§6, Figure 8) is a *timeline
// narrative* — which preemption triggered which morph, how long
// recovery took, where dollars went — but the aggregate counters in
// manager.Stats and the scenario reports flatten that narrative into
// totals. A Tracer records the narrative itself: every span is keyed
// to a simtime instant and linked to the span that caused it, so one
// chain — market reclaim → arbiter revocation cascade → manager
// preemption handling → planner sweep → restart phases → resumed
// training segment — is reconstructable end to end, and exportable as
// a Chrome trace-event file (chrome://tracing, Perfetto).
//
// Design constraints, in order:
//
//  1. Off must be free. A nil *Tracer is a valid tracer whose every
//     method is an immediate return — no interface dispatch, no
//     allocation, no branch beyond the nil check — so instrumented hot
//     paths are bit-identical and allocation-identical to
//     uninstrumented ones (TestTracerDisabledZeroAlloc pins this).
//  2. Deterministic when on. Spans carry only simulated time and
//     values derived from it; recording order is the event-loop's
//     deterministic execution order, so a replayed scenario exports a
//     byte-identical trace. Wall-clock self-profiling lives in the
//     separate Metrics registry and never enters the trace file.
//  3. Causality is explicit. Every span names its parent; cross-track
//     links (an arbiter revocation parenting a job's preemption span)
//     ride spot.Event.Cause and are rendered as flow arrows in the
//     Chrome export.
package obs

import (
	"sync"

	"repro/internal/simtime"
)

// SpanID identifies one recorded span. 0 is "no span" (the nil parent
// and the id every operation on a disabled tracer returns).
type SpanID int64

// TrackID identifies one export track (a Chrome trace "thread"): one
// per job, plus the arbiter and market control tracks. 0 is the
// default track.
type TrackID int32

// Span is one recorded operation on the simulated clock. Instant
// events are spans with End == Start.
type Span struct {
	ID     SpanID
	Parent SpanID
	Track  TrackID
	Start  simtime.Time
	End    simtime.Time
	// Cat groups spans by subsystem ("market", "arbiter", "manager",
	// "planner", "restart"); Name is the operation ("tick", "morph",
	// "flush", ...).
	Cat  string
	Name string
	Args []Arg
}

// Arg is one key/value annotation on a span. Values are either int64
// or string — enough for GPU counts, VM ids, config shapes — and are
// only ever derived from simulated state, keeping the trace
// deterministic.
type Arg struct {
	Key string
	Val int64
	Str string
}

// I64 builds an integer arg.
func I64(key string, v int64) Arg { return Arg{Key: key, Val: v} }

// Str builds a string arg.
func Str(key, v string) Arg { return Arg{Key: key, Str: v} }

// Tracer records causal spans over simulated time. The zero value is
// ready to use; a nil Tracer is the disabled tracer. Safe for
// concurrent use (the scenario event loops are single-threaded, but
// parallel sweep workers may annotate concurrently).
type Tracer struct {
	mu     sync.Mutex
	tracks []string
	spans  []Span
}

// NewTracer builds an enabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Enabled reports whether the tracer records anything. All methods
// no-op on a nil receiver, but callers should guard argument
// construction behind Enabled so disabled hot paths stay
// allocation-free.
func (t *Tracer) Enabled() bool { return t != nil }

// Track registers (or looks up) a named track and returns its id.
// Registration order is export order: register control tracks
// (market, arbiter) before job tracks for a stable trace layout.
func (t *Tracer) Track(name string) TrackID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, n := range t.tracks {
		if n == name {
			return TrackID(i + 1)
		}
	}
	t.tracks = append(t.tracks, name)
	return TrackID(len(t.tracks))
}

// TrackName reports the registered name of a track ("" for the
// default track or a nil tracer).
func (t *Tracer) TrackName(id TrackID) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 1 || int(id) > len(t.tracks) {
		return ""
	}
	return t.tracks[id-1]
}

// Begin opens a span at the given simulated instant. End closes it;
// until then the span's End is its Start. Returns 0 on a nil tracer.
func (t *Tracer) Begin(track TrackID, parent SpanID, at simtime.Time, cat, name string) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Track: track,
		Start: at, End: at, Cat: cat, Name: name,
	})
	return id
}

// End closes a span at the given instant. Ending at or before the
// span's start leaves it an instant event; unknown ids are ignored.
func (t *Tracer) End(id SpanID, at simtime.Time) {
	if t == nil || id < 1 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) > len(t.spans) {
		return
	}
	if sp := &t.spans[id-1]; at > sp.End {
		sp.End = at
	}
}

// Instant records a zero-duration span. Instants still carry ids so
// they can parent other spans — a preemption instant on a job track
// parents the decision span that handles it.
func (t *Tracer) Instant(track TrackID, parent SpanID, at simtime.Time, cat, name string) SpanID {
	return t.Begin(track, parent, at, cat, name)
}

// SetArgs appends annotations to a span.
func (t *Tracer) SetArgs(id SpanID, args ...Arg) {
	if t == nil || id < 1 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) > len(t.spans) {
		return
	}
	sp := &t.spans[id-1]
	sp.Args = append(sp.Args, args...)
}

// Spans snapshots every recorded span in recording order — the
// deterministic order the event loop executed.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Tracks snapshots the registered track names in registration order.
func (t *Tracer) Tracks() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.tracks))
	copy(out, t.tracks)
	return out
}

// Len reports the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Find returns the span with the given id (zero Span, false when
// absent or the tracer is nil).
func (t *Tracer) Find(id SpanID) (Span, bool) {
	if t == nil || id < 1 {
		return Span{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) > len(t.spans) {
		return Span{}, false
	}
	return t.spans[id-1], true
}

// Chain walks parent links from id upward (inclusive), returning the
// spans root-last. A cycle-free walk by construction: parents always
// have smaller ids.
func (t *Tracer) Chain(id SpanID) []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for id > 0 {
		sp, ok := t.Find(id)
		if !ok {
			break
		}
		out = append(out, sp)
		id = sp.Parent
	}
	return out
}
