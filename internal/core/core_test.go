package core

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/simtime"
	"repro/internal/spot"
)

func TestNewJobValidation(t *testing.T) {
	if _, err := NewJob(nil, hw.SpotCluster(hw.NC6v3, 8), 64, 1); err == nil {
		t.Fatal("nil spec must fail")
	}
	if _, err := NewJob(model.BERTLarge(), hw.SpotCluster(hw.NC6v3, 8), 0, 1); err == nil {
		t.Fatal("batch 0 must fail")
	}
}

func TestJobEndToEnd(t *testing.T) {
	job, err := NewJob(model.GPT2XL2B(), hw.SpotCluster(hw.NC6v3, 100), 8192, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(job.CutPoints()) == 0 || job.Calibration() == nil {
		t.Fatal("setup incomplete")
	}
	best, err := job.BestConfig(100)
	if err != nil {
		t.Fatal(err)
	}
	if best.P*best.D > 100 {
		t.Fatalf("%v over-subscribes", best)
	}
	est, err := job.Estimate(best)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := job.Measure(best)
	if err != nil {
		t.Fatal(err)
	}
	// Estimate and measurement agree within Table 7's band (plus
	// testbed heterogeneity).
	ratio := est.Seconds() / ms.MiniBatchTime.Seconds()
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("estimate %v vs measured %v: ratio %.3f", est, ms.MiniBatchTime, ratio)
	}
	// Comparison policy path works.
	if _, err := job.MeasureWithPolicy(best, schedule.DeepSpeedP); err != nil {
		t.Fatal(err)
	}
	// Explicit shape path works.
	c, err := job.Configure(9, 11)
	if err != nil {
		t.Fatal(err)
	}
	if c.P != 9 || c.D != 11 {
		t.Fatalf("Configure returned %v", c)
	}
}

func TestJobSpotMarket(t *testing.T) {
	job, err := NewJob(model.GPT2XL2B(), hw.SpotCluster(hw.NC6v3, 150), 8192, 5)
	if err != nil {
		t.Fatal(err)
	}
	mk := spot.NewMarket(1, 120, 11)
	points, stats, err := job.RunOnSpotMarket(mk, 150, 8*simtime.Hour, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 || stats.MiniBatches == 0 {
		t.Fatal("spot run made no progress")
	}
}
