// Package core is Varuna's top-level API: it ties together cut-point
// identification (§5.1), scale-invariant calibration (§4.3), the
// parametrized simulator (§4.4), job morphing (§4.2) and the manager
// (§4.6) behind a single Job type. A user describes a model and a
// resource pool; Varuna works out how to run it and keeps it running
// as spot capacity comes and goes.
//
//	job, _ := core.NewJob(model.GPT2Megatron8B(), hw.SpotCluster(hw.NC6v3, 300), 8192, 1)
//	cfg, _ := job.BestConfig(300)       // e.g. 18x16
//	ms, _ := job.Measure(cfg)           // execute one mini-batch on the testbed
//	est, _ := job.Estimate(cfg)         // the simulator's prediction
package core

import (
	"fmt"

	"repro/internal/autoconfig"
	"repro/internal/calibrate"
	"repro/internal/hw"
	"repro/internal/manager"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/simtime"
	"repro/internal/spot"
	"repro/internal/testbed"
)

// Job is one training job managed by Varuna.
type Job struct {
	// Spec is the model under training.
	Spec *model.Spec
	// Cluster is the resource pool (spot VMs or hypercluster).
	Cluster hw.Cluster
	// MTotal is the global mini-batch size, fixed for the job's life.
	MTotal int

	tb      *testbed.Testbed
	cuts    []model.CutPoint
	params  *calibrate.Params
	in      autoconfig.Inputs
	planner *autoconfig.Planner
}

// NewJob profiles the model on the cluster and prepares it for
// configuration: cut-points are identified once, and the one-time
// calibration measures the Table 2 parameters. Neither depends on how
// many GPUs the job later runs on.
func NewJob(spec *model.Spec, cluster hw.Cluster, mTotal int, seed int64) (*Job, error) {
	if spec == nil {
		return nil, fmt.Errorf("core: nil model spec")
	}
	if mTotal < 1 {
		return nil, fmt.Errorf("core: mini-batch size %d < 1", mTotal)
	}
	tb := testbed.New(cluster, seed)
	// One cut-point per candidate boundary: enough for pipelines as
	// deep as the layer structure allows.
	k := 2*spec.NumLayers - 1
	if k < 1 {
		k = 1
	}
	cuts, err := model.FindCutPoints(spec, k)
	if err != nil {
		return nil, err
	}
	params, err := calibrate.Run(spec, tb, calibrate.Options{GPUsPerNode: cluster.VM.GPUs})
	if err != nil {
		return nil, err
	}
	j := &Job{Spec: spec, Cluster: cluster, MTotal: mTotal, tb: tb, cuts: cuts, params: params}
	j.in = autoconfig.Inputs{
		Spec:        spec,
		Cuts:        cuts,
		Params:      params,
		GPUMem:      cluster.VM.GPU.MemoryBytes,
		MTotal:      mTotal,
		GPUsPerNode: cluster.VM.GPUs,
	}
	j.planner = autoconfig.NewPlanner(j.in)
	return j, nil
}

// Testbed exposes the underlying ground-truth cluster (for
// experiments and baselines).
func (j *Job) Testbed() *testbed.Testbed { return j.tb }

// Calibration exposes the measured Table 2 parameters.
func (j *Job) Calibration() *calibrate.Params { return j.params }

// CutPoints exposes the identified partition boundaries.
func (j *Job) CutPoints() []model.CutPoint { return j.cuts }

// Inputs exposes the morphing inputs (for the manager).
func (j *Job) Inputs() autoconfig.Inputs { return j.in }

// Planner exposes the job-lifetime morph planner: every configuration
// decision made through this Job shares its caches, so repeated
// sweeps across a morphing timeline only pay partition costs once per
// unique (P, m, D) candidate.
func (j *Job) Planner() *autoconfig.Planner { return j.planner }

// BestConfig picks the fastest (P, D, m, Nm) for g GPUs via the
// simulator sweep (§4.4), memoized per fleet size by the planner.
func (j *Job) BestConfig(g int) (autoconfig.Choice, error) {
	return j.planner.Best(g)
}

// Sweep evaluates every feasible pipeline depth for g GPUs through the
// planner's lifetime cache.
func (j *Job) Sweep(g int) ([]autoconfig.Choice, error) {
	return j.planner.Sweep(g)
}

// Configure evaluates one explicit P×D shape through the planner's
// lifetime cache.
func (j *Job) Configure(p, d int) (autoconfig.Choice, error) {
	return j.planner.Evaluate(p, d)
}

// Estimate predicts the mini-batch time of a configuration with the
// calibrated parametric simulator.
func (j *Job) Estimate(c autoconfig.Choice) (simtime.Duration, error) {
	costs, err := j.params.StageCosts(j.Spec, c.Stages, c.M, c.D, j.tb.InterBoundaryFlags(c.P))
	if err != nil {
		return 0, err
	}
	return testbed.EstimateWithSim(c.P, c.Nm, costs)
}

// Measure executes one mini-batch of the configuration on the
// ground-truth testbed under Varuna's schedule.
func (j *Job) Measure(c autoconfig.Choice) (testbed.Measurement, error) {
	return j.tb.MeasureMiniBatch(j.jobConfig(c))
}

// MeasureWithPolicy executes one mini-batch under a comparison
// system's schedule.
func (j *Job) MeasureWithPolicy(c autoconfig.Choice, policy schedule.Policy) (testbed.Measurement, error) {
	return j.tb.MeasureWithPolicy(j.jobConfig(c), policy)
}

func (j *Job) jobConfig(c autoconfig.Choice) testbed.JobConfig {
	return testbed.JobConfig{
		Spec:   j.Spec,
		Stages: c.Stages,
		M:      c.M,
		Nm:     c.Nm,
		D:      c.D,
	}
}

// RunOnSpotMarket drives the job through a spot-market trace with the
// Varuna manager under default options: morphing on fleet changes
// (priced by the restart cost model, held when unprofitable),
// checkpoint rollbacks on preemption, straggler exclusion (§4.6,
// Figure 8). The manager plans with the job's lifetime Planner, so
// morph decisions stay cached across repeated runs on the same Job.
func (j *Job) RunOnSpotMarket(mk *spot.Market, targetGPUs int, horizon simtime.Duration, seed int64) ([]manager.TimelinePoint, manager.Stats, error) {
	return j.RunOnSpotMarketOpts(mk, targetGPUs, horizon, seed, manager.DefaultOptions())
}

// RunOnSpotMarketOpts is RunOnSpotMarket with explicit manager options
// (reconfiguration pricing policy, checkpoint cadence, thresholds).
// When the caller leaves EventGapPrior unset, the morph-or-hold
// horizon is seeded from the market's own analytic hazard — the
// expected time to the next fleet event for a fleet at the target
// size — until observed gaps take over.
func (j *Job) RunOnSpotMarketOpts(mk *spot.Market, targetGPUs int, horizon simtime.Duration, seed int64, opts manager.Options) ([]manager.TimelinePoint, manager.Stats, error) {
	if opts.Prices == nil && opts.Meter == nil {
		// A priced market carries its own curve; dollars are then
		// accounted (and dollar objectives decidable) without the
		// caller re-plumbing it.
		opts.Prices = mk.Prices
	}
	if err := opts.Validate(); err != nil {
		return nil, manager.Stats{}, err
	}
	if opts.EventGapPrior <= 0 {
		vms := (targetGPUs + mk.GPUsPerVM - 1) / mk.GPUsPerVM
		opts.EventGapPrior = mk.ExpectedNextEvent(0, vms)
	}
	events := spot.EventTrace(mk, targetGPUs, horizon, 10*simtime.Minute)
	mg := manager.NewWithPlanner(j.in, j.tb, j.planner, opts, seed)
	return mg.RunTimeline(events, horizon)
}
