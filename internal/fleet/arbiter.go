package fleet

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/autoconfig"
	"repro/internal/manager"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/spot"
)

// jobState is the arbiter's view of one tenant.
type jobState struct {
	idx  int
	cfg  *Job
	feed *jobFeed
	run  *manager.Run

	leased     map[int]int // vm -> gpus
	leasedGPUs int
	// released marks VMs this job voluntarily returned: they are never
	// leased back to it (its manager already wrote them off and would
	// ignore their preemptions).
	released map[int]bool
}

// freeVM is unleased capacity the arbiter holds: a fresh market grant,
// an acked revocation, or a voluntary release (from records the
// releasing job, which must not get it back). cause is the span that
// freed it — a later lease of this VM parents there, so the trace
// connects grant → lease and revocation → handoff → re-lease.
type freeVM struct {
	vm, gpus int
	from     int // releasing job index, or -1
	cause    obs.SpanID
}

// handoff is a revoked VM in flight: it joins the free list only once
// the victim's control loop has observed the revocation (its feed
// clock passed the revocation instant), so a VM is never leased to two
// jobs at once even across the victim's processing lag.
type handoff struct {
	vm, gpus int
	at       simtime.Time
	victim   int
	cause    obs.SpanID // the revocation span, carried to the re-lease
}

// arbiter co-simulates N manager control loops and the pool probe loop
// on one event queue. All state transitions are deterministic: ticks
// fire before same-instant job steps (the tick for T+probe is always
// scheduled before any job can schedule a T+probe wake, and equal-time
// events fire in insertion order), bids break ties by job order, and
// the only randomness is the market's own seeded stream plus the
// seeded victim draws of scripted reclaims.
type arbiter struct {
	q      *simtime.EventQueue
	pool   *spot.Pool
	probe  simtime.Duration
	hz     simtime.Time
	opts   Options
	onTick func(a, b int32)

	jobs    []*jobState
	free    []freeVM
	pending []handoff

	scripted  []ScriptedPreempt
	scrIdx    int
	outages   []ScriptedOutage
	outIdx    int
	victimRng *simtime.Rand

	// nextTick is the next scheduled probe instant; hasNext is false
	// after the final tick (feeds stop waking their jobs).
	nextTick simtime.Time
	hasNext  bool

	meanRate float64
	audit    *Audit

	// tr/met mirror Options.Trace/Metrics (nil-safe). trkMkt/trkArb
	// are the market and arbiter control tracks; curTick is the span
	// of the probe currently executing — the parent every market
	// event, lease and cascade of that probe hangs off.
	tr      *obs.Tracer
	met     *obs.Metrics
	trkMkt  obs.TrackID
	trkArb  obs.TrackID
	curTick obs.SpanID
}

func newArbiter(mk *spot.Market, jobs []*Job, opts Options) *arbiter {
	target := 0
	for _, j := range jobs {
		target += j.TargetGPUs
	}
	a := &arbiter{
		pool:      spot.NewPool(mk, target),
		probe:     opts.Probe,
		hz:        simtime.Time(opts.Horizon),
		opts:      opts,
		victimRng: simtime.NewRand(opts.VictimSeed),
		audit:     newAudit(len(jobs)),
	}
	a.scripted = append(a.scripted, opts.Preempts...)
	sort.SliceStable(a.scripted, func(i, j int) bool { return a.scripted[i].At < a.scripted[j].At })
	a.outages = append(a.outages, opts.Outages...)
	sort.SliceStable(a.outages, func(i, j int) bool { return a.outages[i].At < a.outages[j].At })
	if opts.Prices != nil {
		a.meanRate = opts.Prices.Mean(0, a.hz)
	}
	a.tr, a.met = opts.Trace, opts.Metrics
	if a.tr.Enabled() {
		// Control tracks first, then one track per job in job order —
		// the stable export layout.
		a.trkMkt = a.tr.Track("market")
		a.trkArb = a.tr.Track("arbiter")
	}
	for i, j := range jobs {
		if opts.Trace != nil {
			j.Mgr.Opts.Trace = opts.Trace
			j.Mgr.Opts.TraceTrack = opts.Trace.Track("job:" + j.Name)
		}
		if opts.Metrics != nil {
			j.Mgr.Opts.Metrics = opts.Metrics
		}
		if opts.Series != nil {
			j.Mgr.Opts.Series = opts.Series
			j.Mgr.Opts.SeriesPrefix = j.Name + "/"
			j.Mgr.Opts.SampleEvery = opts.SampleEvery
		}
		a.jobs = append(a.jobs, &jobState{
			idx:      i,
			cfg:      j,
			leased:   make(map[int]int),
			released: make(map[int]bool),
		})
	}
	return a
}

func (a *arbiter) run() (*Result, error) {
	a.q = new(simtime.EventQueue)
	a.onTick = a.tick
	// The arbiter's first tick is scheduled before any job's first
	// step: ticks win every same-instant race by insertion order, so
	// leases granted at T are poppable by job steps at T.
	a.nextTick, a.hasNext = 0, true
	a.q.ScheduleCall(0, a.onTick, 0, 0)
	for _, j := range a.jobs {
		j.feed = &jobFeed{arb: a, job: j}
		run, err := j.cfg.Mgr.StartOn(a.q, j.feed, a.opts.Horizon)
		if err != nil {
			return nil, fmt.Errorf("fleet: job %q: %w", j.cfg.Name, err)
		}
		j.run = run
	}
	a.q.Run(0)

	res := &Result{Audit: a.audit}
	for _, j := range a.jobs {
		points, stats := j.run.Finish()
		res.Jobs = append(res.Jobs, JobResult{
			Name:   j.cfg.Name,
			Points: points,
			Stats:  stats,
			Events: j.feed.evs,
		})
	}
	// Anything still in flight at the end is a bookkeeping leak.
	for _, h := range a.pending {
		if h.at <= a.hz.Add(-a.probe) {
			a.audit.violate("handoff of vm%d (revoked t=%v) never acknowledged", h.vm, h.at)
		}
	}
	return res, nil
}

// bid scores a job's claim on contended capacity at instant t: its
// base priority plus objective-derived urgency. Deadline jobs bid up
// as they fall behind schedule (progress fraction trailing the
// elapsed fraction of the deadline window) and stand down once the
// target is met; min-$/example jobs bid the price surplus — capacity
// is worth more to them when the spot price sits below its long-run
// mean; throughput jobs bid their base priority flat.
func (a *arbiter) bid(j *jobState, t simtime.Time) float64 {
	b := j.cfg.Priority
	switch j.cfg.Objective.Kind {
	case autoconfig.ObjDeadline:
		o := j.cfg.Objective
		if o.DeadlineAt <= 0 || o.TargetExamples <= 0 {
			break
		}
		pf := j.run.ExamplesDone() / o.TargetExamples
		if pf >= 1 {
			// Target met: the deadline job no longer outbids anyone.
			b -= 0.5
			break
		}
		df := float64(t) / float64(o.DeadlineAt)
		if df > 1 {
			df = 1
		}
		b += clamp(2*(df-pf), -1, 1) + 0.25*df
	case autoconfig.ObjMinDollarPerExample:
		if a.opts.Prices != nil && a.meanRate > 0 {
			b += 0.5 * clamp((a.meanRate-a.opts.Prices.At(t))/a.meanRate, -1, 1)
		}
	}
	return b
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// bidOrder returns job indices sorted by bid, highest first; equal
// bids keep job order (stable).
func (a *arbiter) bidOrder(t simtime.Time, bids []float64) []int {
	order := make([]int, len(a.jobs))
	for i := range order {
		order[i] = i
		bids[i] = a.bid(a.jobs[i], t)
	}
	sort.SliceStable(order, func(x, y int) bool { return bids[order[x]] > bids[order[y]] })
	return order
}

// tick is one arbiter probe: advance the market, return acked
// handoffs to circulation, lease free capacity by bid order, and run
// revocation cascades for jobs under their floors.
func (a *arbiter) tick(int32, int32) {
	t := a.q.Now()
	var wall time.Time
	if a.met.Enabled() {
		wall = time.Now()
	}
	if a.tr.Enabled() {
		a.curTick = a.tr.Instant(a.trkArb, 0, t, "arbiter", "tick")
	}

	// Scripted zone outages due now empty their zone before anything
	// else: a whole failure domain vanishing is the largest provider
	// event, and each kill feeds capacity back into the market.
	for a.outIdx < len(a.outages) && a.outages[a.outIdx].At <= t {
		o := a.outages[a.outIdx]
		a.outIdx++
		a.zoneOutage(t, o.Zone)
	}

	// Scripted reclaims due now feed back into the market before its
	// own dynamics advance.
	for a.scrIdx < len(a.scripted) && a.scripted[a.scrIdx].At <= t {
		s := a.scripted[a.scrIdx]
		a.scrIdx++
		for i := 0; i < s.Count; i++ {
			a.scriptedKill(t)
		}
	}

	// Market dynamics: fresh grants join the free list, preemptions of
	// leased VMs pass through to the owning job.
	for _, ev := range a.pool.Tick(t, a.probe) {
		a.audit.PoolEvents++
		var cause obs.SpanID
		if a.tr.Enabled() {
			name := "grant"
			if ev.Kind == spot.Preempt {
				name = "reclaim"
			}
			cause = a.tr.Instant(a.trkMkt, a.curTick, t, "market", name)
			a.tr.SetArgs(cause, obs.I64("vm", int64(ev.VM)), obs.I64("gpus", int64(ev.GPUs)))
		}
		switch ev.Kind {
		case spot.Alloc:
			a.free = append(a.free, freeVM{vm: ev.VM, gpus: ev.GPUs, from: -1, cause: cause})
		case spot.Preempt:
			a.poolPreempt(ev, false, cause)
		}
	}

	// Handoffs whose victim has observed the revocation return to the
	// free list (general circulation: the next lease round hands them
	// to the highest bidder under target, usually the job the cascade
	// ran for).
	if len(a.pending) > 0 {
		kept := a.pending[:0]
		for _, h := range a.pending {
			if a.jobs[h.victim].feed.consumed >= h.at {
				a.free = append(a.free, freeVM{vm: h.vm, gpus: h.gpus, from: -1, cause: h.cause})
			} else {
				kept = append(kept, h)
			}
		}
		a.pending = kept
	}

	bids := make([]float64, len(a.jobs))
	order := a.bidOrder(t, bids)
	if a.tr.Enabled() {
		for _, idx := range order {
			a.tr.SetArgs(a.curTick, obs.Arg{Key: "bid:" + a.jobs[idx].cfg.Name, Val: int64(bids[idx] * 1000)})
		}
	}
	a.leaseRound(t, order)
	a.cascades(t, order, bids)

	if next := t.Add(a.probe); next <= a.hz {
		a.nextTick, a.hasNext = next, true
		a.q.ScheduleCall(next, a.onTick, 0, 0)
	} else {
		a.hasNext = false
	}
	if a.met.Enabled() {
		a.met.Observe("wall.arbiter.tick_us", float64(time.Since(wall).Microseconds()))
	}
}

// zoneOutage reclaims every live pool VM in one availability zone —
// the correlated mass-preemption. One "outage" span on the market
// track parents every per-VM reclaim, so the trace walks outage →
// reclaim → (job preemption handling) end to end.
func (a *arbiter) zoneOutage(t simtime.Time, zone int) {
	a.audit.ZoneOutages++
	var ospan obs.SpanID
	if a.tr.Enabled() {
		ospan = a.tr.Instant(a.trkMkt, a.curTick, t, "market", "outage")
		a.tr.SetArgs(ospan, obs.I64("zone", int64(zone)))
	}
	for _, vm := range a.pool.LiveInDomain(a.opts.Zones, zone) {
		a.pool.Kill(vm)
		var cause obs.SpanID
		if a.tr.Enabled() {
			cause = a.tr.Instant(a.trkMkt, ospan, t, "market", "outage-reclaim")
			a.tr.SetArgs(cause, obs.I64("vm", int64(vm)), obs.I64("zone", int64(zone)))
		}
		a.poolPreempt(spot.Event{At: t, Kind: spot.Preempt, VM: vm, GPUs: a.pool.Market().GPUsPerVM}, true, cause)
	}
}

// scriptedKill reclaims one seeded-random live pool VM: leased,
// free or in-flight alike — the provider does not care whose it was.
func (a *arbiter) scriptedKill(t simtime.Time) {
	ids := a.pool.LiveIDs()
	if len(ids) == 0 {
		return
	}
	vm := ids[a.victimRng.Intn(len(ids))]
	a.pool.Kill(vm)
	a.audit.ScriptedKills++
	var cause obs.SpanID
	if a.tr.Enabled() {
		cause = a.tr.Instant(a.trkMkt, a.curTick, t, "market", "scripted-reclaim")
		a.tr.SetArgs(cause, obs.I64("vm", int64(vm)))
	}
	a.poolPreempt(spot.Event{At: t, Kind: spot.Preempt, VM: vm, GPUs: a.pool.Market().GPUsPerVM}, true, cause)
}

// poolPreempt routes a market (or scripted) reclaim of a VM to
// whoever holds it: the owning job sees an ordinary preemption; free
// or in-flight VMs silently leave the books.
func (a *arbiter) poolPreempt(ev spot.Event, scripted bool, cause obs.SpanID) {
	ev.Cause = int64(cause)
	for _, j := range a.jobs {
		if g, ok := j.leased[ev.VM]; ok {
			delete(j.leased, ev.VM)
			j.leasedGPUs -= g
			a.audit.unlease(ev.VM)
			if !scripted {
				a.audit.MarketPreempts++
			}
			j.feed.push(ev)
			return
		}
	}
	for i, f := range a.free {
		if f.vm == ev.VM {
			a.free = append(a.free[:i], a.free[i+1:]...)
			return
		}
	}
	for i, h := range a.pending {
		if h.vm == ev.VM {
			// The victim already saw its revocation preemption; the
			// market reclaiming the VM mid-handoff just cancels the
			// handoff.
			a.pending = append(a.pending[:i], a.pending[i+1:]...)
			return
		}
	}
}

// leaseRound grants free capacity in two passes, both in bid order:
// first every job is brought up to its guaranteed floor, then the
// remainder fills toward targets highest bidder first. The floor pass
// is what keeps a permanently-outbid job alive — its floor cannot be
// restored by cascade (cascades only revoke from strictly lower
// bidders, and the bottom of the order has none), so guaranteed
// capacity must be honoured before anyone's discretionary fill. A job
// never receives a VM it previously released.
func (a *arbiter) leaseRound(t simtime.Time, order []int) {
	for _, idx := range order {
		a.leaseUpTo(t, a.jobs[idx], a.jobs[idx].cfg.MinGPUs)
	}
	for _, idx := range order {
		a.leaseUpTo(t, a.jobs[idx], a.jobs[idx].cfg.TargetGPUs)
	}
}

// leaseUpTo grants free VMs to j until its lease reaches limit GPUs or
// no eligible free VM remains.
func (a *arbiter) leaseUpTo(t simtime.Time, j *jobState, limit int) {
	for j.leasedGPUs < limit {
		picked := -1
		for i, f := range a.free {
			if f.from == j.idx || j.released[f.vm] {
				continue
			}
			picked = i
			break
		}
		if picked < 0 {
			break
		}
		f := a.free[picked]
		a.free = append(a.free[:picked], a.free[picked+1:]...)
		a.leaseTo(t, j, f.vm, f.gpus, f.cause)
	}
}

// leaseTo delivers one VM to a job as an allocation event. parent is
// the span that freed the VM (market grant, acked revocation,
// voluntary release), so the trace chains capacity end to end.
func (a *arbiter) leaseTo(t simtime.Time, j *jobState, vm, gpus int, parent obs.SpanID) {
	j.leased[vm] = gpus
	j.leasedGPUs += gpus
	a.audit.lease(t, vm, j.idx, j.cfg.Name)
	a.audit.Leases++
	ev := spot.Event{At: t, Kind: spot.Alloc, VM: vm, GPUs: gpus}
	if a.tr.Enabled() {
		ls := a.tr.Instant(a.trkArb, parent, t, "arbiter", "lease")
		a.tr.SetArgs(ls,
			obs.I64("vm", int64(vm)), obs.I64("gpus", int64(gpus)),
			obs.Str("job", j.cfg.Name))
		if a.opts.Zones > 1 {
			a.tr.SetArgs(ls, obs.I64("zone", int64(vm%a.opts.Zones)))
		}
		ev.Cause = int64(ls)
	}
	j.feed.push(ev)
}

// cascades restores every under-floor job, in bid order, by revoking
// from strictly lower-bidding jobs that sit above their own floors —
// lowest bidder first, largest VM ids first within a victim. Revoked
// VMs enter the handoff queue; the victim sees a preemption at t.
func (a *arbiter) cascades(t simtime.Time, order []int, bids []float64) {
	for oi, idx := range order {
		j := a.jobs[idx]
		deficit := j.cfg.MinGPUs - j.leasedGPUs
		if deficit <= 0 {
			continue
		}
		var c *Cascade
		var cspan obs.SpanID
		// Walk candidates from the lowest bid upward; only strictly
		// lower bids than the beneficiary's are revocable.
		for vi := len(order) - 1; vi > oi && deficit > 0; vi-- {
			v := a.jobs[order[vi]]
			if bids[order[vi]] >= bids[idx] {
				break
			}
			for deficit > 0 && v.leasedGPUs > v.cfg.MinGPUs {
				vm, gpus := v.largestLease()
				if vm < 0 || v.leasedGPUs-gpus < v.cfg.MinGPUs {
					break
				}
				// Priority order is an invariant, not just policy:
				// every job bidding below this victim must already be
				// at its floor.
				for wi := len(order) - 1; wi > vi; wi-- {
					w := a.jobs[order[wi]]
					if bids[order[wi]] < bids[order[vi]] && w.leasedGPUs > w.cfg.MinGPUs {
						a.audit.violate("t=%v: cascade for %q revokes from %q while lower-bidding %q has revocable capacity",
							t, j.cfg.Name, v.cfg.Name, w.cfg.Name)
					}
				}
				delete(v.leased, vm)
				v.leasedGPUs -= gpus
				a.audit.unlease(vm)
				a.audit.Revocations++
				if c == nil {
					a.audit.Cascades = append(a.audit.Cascades, Cascade{At: t, For: j.cfg.Name, ForBid: bids[idx]})
					c = &a.audit.Cascades[len(a.audit.Cascades)-1]
					if a.tr.Enabled() {
						cspan = a.tr.Instant(a.trkArb, a.curTick, t, "arbiter", "cascade")
						a.tr.SetArgs(cspan, obs.Str("for", j.cfg.Name), obs.I64("deficit_gpus", int64(deficit)))
					}
				}
				rev := spot.Event{At: t, Kind: spot.Preempt, VM: vm, GPUs: gpus}
				var rvspan obs.SpanID
				if a.tr.Enabled() {
					rvspan = a.tr.Instant(a.trkArb, cspan, t, "arbiter", "revoke")
					a.tr.SetArgs(rvspan,
						obs.I64("vm", int64(vm)), obs.I64("gpus", int64(gpus)),
						obs.Str("victim", v.cfg.Name))
					rev.Cause = int64(rvspan)
				}
				a.pending = append(a.pending, handoff{vm: vm, gpus: gpus, at: t, victim: v.idx, cause: rvspan})
				v.feed.push(rev)
				c.Victims = append(c.Victims, CascadeVictim{Job: v.cfg.Name, Bid: bids[order[vi]], VM: vm})
				deficit -= gpus
			}
		}
	}
}

// largestLease picks the job's highest-id leased VM — the
// deterministic revocation order within one victim.
func (j *jobState) largestLease() (vm, gpus int) {
	vm = -1
	for id := range j.leased {
		if id > vm {
			vm = id
		}
	}
	if vm >= 0 {
		gpus = j.leased[vm]
	}
	return vm, gpus
}

// jobFeed is the manager.Feed the arbiter drives one job through:
// leases and revocations queue here, and the consumed clock (advanced
// by every Pop the job's control loop makes) acknowledges revocation
// handoffs.
type jobFeed struct {
	arb *arbiter
	job *jobState

	evs      []spot.Event
	head     int
	consumed simtime.Time
}

func (f *jobFeed) push(ev spot.Event) { f.evs = append(f.evs, ev) }

func (f *jobFeed) Pop(now simtime.Time) (spot.Event, bool) {
	if now > f.consumed {
		f.consumed = now
	}
	if f.head < len(f.evs) && f.evs[f.head].At <= now {
		ev := f.evs[f.head]
		f.head++
		return ev, true
	}
	return spot.Event{}, false
}

func (f *jobFeed) NextAt(now simtime.Time) (simtime.Time, bool) {
	at := simtime.Time(0)
	ok := false
	if f.head < len(f.evs) {
		at, ok = f.evs[f.head].At, true
	}
	// Wake at the next arbiter tick even with no event queued: the
	// tick may deliver a lease, and a training job must yield the
	// clock so the probe loop can interleave.
	if f.arb.hasNext && (!ok || f.arb.nextTick < at) {
		at, ok = f.arb.nextTick, true
	}
	return at, ok
}

// Release returns a voluntarily-released VM to the arbiter's free
// list for other jobs — under a shared fleet the one-way door swings
// back.
func (f *jobFeed) Release(vm int, at simtime.Time) {
	j := f.job
	g, ok := j.leased[vm]
	if !ok {
		return
	}
	delete(j.leased, vm)
	j.leasedGPUs -= g
	j.released[vm] = true
	f.arb.audit.unlease(vm)
	f.arb.audit.Releases++
	f.arb.audit.releasedToPool(vm)
	var cause obs.SpanID
	if f.arb.tr.Enabled() {
		cause = f.arb.tr.Instant(f.arb.trkArb, 0, at, "arbiter", "release")
		f.arb.tr.SetArgs(cause,
			obs.I64("vm", int64(vm)), obs.I64("gpus", int64(g)),
			obs.Str("from", j.cfg.Name))
	}
	f.arb.free = append(f.arb.free, freeVM{vm: vm, gpus: g, from: j.idx, cause: cause})
}

func (f *jobFeed) Driven() bool { return true }
