package fleet

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/autoconfig"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/manager"
	"repro/internal/model"
	"repro/internal/price"
	"repro/internal/simtime"
	"repro/internal/spot"
)

// testFleet builds a three-tenant fleet over one small market: a
// deadline job, a min-$/example job and a plain throughput job, with
// floors tight enough that market dips and scripted reclaims force
// revocation cascades. Shared across the invariant tests; seeds vary.
type testFleet struct {
	mk    *spot.Market
	jobs  []*Job
	pool  *price.Meter
	sub   []*price.Meter
	curve *price.Curve
	opts  Options
}

func buildTestFleet(t *testing.T, seed int64) *testFleet {
	t.Helper()
	horizon := 24 * simtime.Hour
	curve, err := price.MeanReverting(price.MROptions{
		Mean: 2.40, Vol: 0.18, Reversion: 0.12, Horizon: horizon,
	}, seed+100)
	if err != nil {
		t.Fatal(err)
	}
	pool := price.NewMeter(curve)

	mkJob := func(name string, seedOff int64, target, min int, prio float64, obj autoconfig.Objective) (*Job, *price.Meter) {
		cluster := hw.SpotCluster(hw.NC6v3, 48)
		job, err := core.NewJob(model.GPT2XL2B(), cluster, 8192, seed+seedOff)
		if err != nil {
			t.Fatal(err)
		}
		opts := manager.DefaultOptions()
		sub := price.NewTeeMeter(curve, pool)
		opts.Meter = sub
		opts.Objective = obj
		mg := manager.NewWithPlanner(job.Inputs(), job.Testbed(), job.Planner(), opts, seed+seedOff+2)
		return &Job{
			Name: name, Mgr: mg,
			TargetGPUs: target, MinGPUs: min, Priority: prio, Objective: obj,
		}, sub
	}

	f := &testFleet{mk: spot.NewMarket(1, 300, seed), pool: pool, curve: curve}
	j1, m1 := mkJob("deadline", 1, 40, 24, 1.5, autoconfig.Objective{
		Kind: autoconfig.ObjDeadline, DeadlineAt: simtime.Time(horizon), TargetExamples: 5e6,
	})
	j2, m2 := mkJob("dollar", 11, 40, 8, 1.0, autoconfig.Objective{
		Kind: autoconfig.ObjMinDollarPerExample,
	})
	j3, m3 := mkJob("batch", 21, 40, 8, 0.5, autoconfig.Objective{})
	f.jobs = []*Job{j1, j2, j3}
	f.sub = []*price.Meter{m1, m2, m3}
	f.opts = Options{
		Horizon: horizon,
		Probe:   10 * simtime.Minute,
		Prices:  curve,
		Preempts: []ScriptedPreempt{
			{At: simtime.Time(10 * simtime.Hour), Count: 40},
			{At: simtime.Time(16 * simtime.Hour), Count: 35},
		},
		VictimSeed: seed + 9,
	}
	return f
}

// TestFleetInvariants drives the seeded three-job chaos fleet and
// checks the structural invariants the audit records: no VM leased to
// two jobs, cascades strictly in priority order, per-job bills summing
// to the pool bill, and per-job event streams that are locally
// consistent (every preemption hits a VM that job actually held).
func TestFleetInvariants(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		f := buildTestFleet(t, seed)
		res, err := Run(f.mk, f.jobs, f.opts)
		if err != nil {
			t.Fatal(err)
		}
		a := res.Audit
		if len(a.Violations) != 0 {
			t.Fatalf("seed %d: audit violations: %v", seed, a.Violations)
		}
		if a.PoolEvents == 0 || a.Leases == 0 {
			t.Fatalf("seed %d: dead market: %+v", seed, a)
		}
		if a.ScriptedKills == 0 {
			t.Fatalf("seed %d: scripted reclaims never fired", seed)
		}

		// Per-job event streams: allocations and preemptions pair up.
		for _, jr := range res.Jobs {
			live := map[int]bool{}
			for _, ev := range jr.Events {
				switch ev.Kind {
				case spot.Alloc:
					if live[ev.VM] {
						t.Fatalf("seed %d: job %s: vm%d allocated twice without a preempt", seed, jr.Name, ev.VM)
					}
					live[ev.VM] = true
				case spot.Preempt:
					if !live[ev.VM] {
						t.Fatalf("seed %d: job %s: vm%d preempted while not held", seed, jr.Name, ev.VM)
					}
					live[ev.VM] = false
				}
			}
			if jr.Stats.MiniBatches == 0 {
				t.Fatalf("seed %d: job %s never trained", seed, jr.Name)
			}
		}

		// Shared bill: per-job meters sum to the pool meter.
		var sum float64
		for _, m := range f.sub {
			sum += m.Total()
		}
		if diff := math.Abs(sum - f.pool.Total()); diff > 1e-6*math.Max(1, f.pool.Total()) {
			t.Fatalf("seed %d: job bills %.6f do not sum to pool bill %.6f", seed, sum, f.pool.Total())
		}
		if f.pool.Total() <= 0 {
			t.Fatalf("seed %d: nothing billed", seed)
		}

		// Cascade order: within each cascade, every victim bids below
		// the beneficiary and victim bids are non-increasing... walked
		// lowest-first, so recorded bids must be non-decreasing.
		if len(a.Cascades) == 0 {
			t.Fatalf("seed %d: floors never forced a cascade", seed)
		}
		for _, c := range a.Cascades {
			prev := math.Inf(-1)
			for _, v := range c.Victims {
				if v.Bid >= c.ForBid {
					t.Fatalf("seed %d: cascade at %v for %s (bid %.3f) revoked from %s bidding %.3f",
						seed, c.At, c.For, c.ForBid, v.Job, v.Bid)
				}
				if v.Bid < prev {
					t.Fatalf("seed %d: cascade at %v revoked out of order: %.3f after %.3f", seed, c.At, v.Bid, prev)
				}
				prev = v.Bid
			}
		}
	}
}

// TestFleetReplayBitIdentical reruns the same seeded fleet and
// requires bit-identical results across every job — the determinism
// property of the whole co-simulation.
func TestFleetReplayBitIdentical(t *testing.T) {
	f1 := buildTestFleet(t, 5)
	r1, err := Run(f1.mk, f1.jobs, f1.opts)
	if err != nil {
		t.Fatal(err)
	}
	f2 := buildTestFleet(t, 5)
	r2, err := Run(f2.mk, f2.jobs, f2.opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Jobs, r2.Jobs) {
		t.Fatal("fleet replay diverged")
	}
	if !reflect.DeepEqual(r1.Audit, r2.Audit) {
		t.Fatal("fleet audit diverged across replays")
	}
}

// TestSingleJobCollapse pins the single-tenant fast path: one job
// under the arbiter replays the direct market trace bit-identically.
func TestSingleJobCollapse(t *testing.T) {
	horizon := 12 * simtime.Hour
	job, err := core.NewJob(model.GPT2XL2B(), hw.SpotCluster(hw.NC6v3, 48), 8192, 54)
	if err != nil {
		t.Fatal(err)
	}
	direct := manager.NewWithPlanner(job.Inputs(), job.Testbed(), job.Planner(), manager.DefaultOptions(), 56)
	events := spot.EventTrace(spot.NewMarket(1, 60, 55), 48, horizon, 10*simtime.Minute)
	wantPts, wantStats, err := direct.RunTimeline(events, horizon)
	if err != nil {
		t.Fatal(err)
	}

	job2, err := core.NewJob(model.GPT2XL2B(), hw.SpotCluster(hw.NC6v3, 48), 8192, 54)
	if err != nil {
		t.Fatal(err)
	}
	arb := manager.NewWithPlanner(job2.Inputs(), job2.Testbed(), job2.Planner(), manager.DefaultOptions(), 56)
	res, err := Run(spot.NewMarket(1, 60, 55), []*Job{{Name: "solo", Mgr: arb, TargetGPUs: 48}},
		Options{Horizon: horizon, Probe: 10 * simtime.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Jobs[0].Points, wantPts) {
		t.Fatal("single-job arbiter timeline diverges from direct path")
	}
	if !reflect.DeepEqual(res.Jobs[0].Stats, wantStats) {
		t.Fatal("single-job arbiter stats diverge from direct path")
	}
	if len(res.Audit.Violations) != 0 {
		t.Fatalf("violations: %v", res.Audit.Violations)
	}
}

// TestZoneOutageEmptiesZone drives a single-tenant fleet through a
// scripted zone outage and checks the correlated semantics: at the
// outage instant every held VM in the zone is preempted, the audit
// counts the outage, and the run replays bit-identically.
func TestZoneOutageEmptiesZone(t *testing.T) {
	const zones, zone = 4, 2
	at := simtime.Time(6 * simtime.Hour)
	run := func() *Result {
		job, err := core.NewJob(model.GPT2XL2B(), hw.SpotCluster(hw.NC6v3, 48), 8192, 54)
		if err != nil {
			t.Fatal(err)
		}
		mg := manager.NewWithPlanner(job.Inputs(), job.Testbed(), job.Planner(), manager.DefaultOptions(), 56)
		res, err := Run(spot.NewMarket(1, 60, 55), []*Job{{Name: "solo", Mgr: mg, TargetGPUs: 48}},
			Options{
				Horizon: 12 * simtime.Hour, Probe: 10 * simtime.Minute,
				Zones:   zones,
				Outages: []ScriptedOutage{{At: at, Zone: zone}},
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Audit.ZoneOutages != 1 {
		t.Fatalf("audit.ZoneOutages = %d, want 1", res.Audit.ZoneOutages)
	}
	if len(res.Audit.Violations) != 0 {
		t.Fatalf("violations: %v", res.Audit.Violations)
	}
	// Replay the job's event stream: every in-zone VM held when the
	// outage fires must be preempted at exactly that instant.
	held := map[int]bool{}
	preempted := map[int]bool{}
	for _, ev := range res.Jobs[0].Events {
		if ev.At < at {
			switch ev.Kind {
			case spot.Alloc:
				held[ev.VM] = true
			case spot.Preempt:
				delete(held, ev.VM)
			}
			continue
		}
		if ev.At == at && ev.Kind == spot.Preempt {
			preempted[ev.VM] = true
		}
	}
	inZone := 0
	for vm := range held {
		if vm%zones != zone {
			continue
		}
		inZone++
		if !preempted[vm] {
			t.Fatalf("vm%d (zone %d) held at outage but not preempted", vm, zone)
		}
	}
	if inZone == 0 {
		t.Fatal("outage hit an empty zone; test needs live in-zone VMs")
	}
	res2 := run()
	if !reflect.DeepEqual(res.Jobs, res2.Jobs) {
		t.Fatal("zone-outage run diverged across replays")
	}
}

// TestFleetValidation covers the config error paths.
func TestFleetValidation(t *testing.T) {
	mk := spot.NewMarket(1, 60, 1)
	if _, err := Run(mk, nil, Options{Horizon: simtime.Hour}); err == nil {
		t.Fatal("no jobs must error")
	}
	j := &Job{Name: "a", TargetGPUs: 10}
	if _, err := Run(mk, []*Job{j}, Options{}); err == nil {
		t.Fatal("zero horizon must error")
	}
	if _, err := Run(mk, []*Job{{Name: "", TargetGPUs: 10}}, Options{Horizon: simtime.Hour}); err == nil {
		t.Fatal("unnamed job must error")
	}
	if _, err := Run(mk, []*Job{j, {Name: "a", TargetGPUs: 10}}, Options{Horizon: simtime.Hour}); err == nil {
		t.Fatal("duplicate names must error")
	}
	if _, err := Run(mk, []*Job{{Name: "b"}}, Options{Horizon: simtime.Hour}); err == nil {
		t.Fatal("zero target must error")
	}
	if _, err := Run(mk, []*Job{{Name: "b", TargetGPUs: 4, MinGPUs: 8}}, Options{Horizon: simtime.Hour}); err == nil {
		t.Fatal("min above target must error")
	}
	if _, err := Run(mk, []*Job{j}, Options{Horizon: simtime.Hour, Zones: 1}); err == nil {
		t.Fatal("zones=1 must error")
	}
	if _, err := Run(mk, []*Job{j}, Options{Horizon: simtime.Hour,
		Outages: []ScriptedOutage{{At: 0, Zone: 0}}}); err == nil {
		t.Fatal("outages without zones must error")
	}
	if _, err := Run(mk, []*Job{j}, Options{Horizon: simtime.Hour, Zones: 4,
		Outages: []ScriptedOutage{{At: 0, Zone: 7}}}); err == nil {
		t.Fatal("out-of-range outage zone must error")
	}
}
