// Package fleet is the multi-job control plane above the §4.6
// manager: an arbiter that owns the spot fleet and leases VMs to N
// concurrent jobs. Each job bids with an objective-derived priority —
// deadline urgency from how far behind schedule it is, $-surplus from
// where the spot price sits against its long-run mean — and the
// arbiter runs the autoscaler-style pool policy *inside* the simulated
// timeline: a probe loop on the shared event queue ticks the driven
// spot.Pool, leases fresh capacity to the highest bidders, and revokes
// from the lowest-bidding jobs in cascades when a job falls below its
// guaranteed floor.
//
// Revocations are delivered through the job's event feed as ordinary
// spot preemptions: at the manager layer an arbiter revocation is
// indistinguishable from the provider reclaiming the VM, so the whole
// §4.6 machinery (checkpoint rollback, morph-or-hold, restart pricing)
// applies unchanged. Capacity a job voluntarily releases returns to
// the arbiter's free list and is re-leased to other jobs — under a
// shared fleet, a released VM is no longer a one-way door.
//
// With a single job the arbiter collapses to the direct-market path:
// no competing job means no contention, no revocation and no re-lease,
// so the pool's event stream is job-independent and is pretraced with
// spot.EventTrace — bit-identical to running the manager against the
// market directly (golden-pinned by the scenario parity tests).
package fleet

import (
	"fmt"

	"repro/internal/autoconfig"
	"repro/internal/manager"
	"repro/internal/obs"
	"repro/internal/price"
	"repro/internal/simtime"
	"repro/internal/spot"
)

// Job is one tenant of the shared fleet.
type Job struct {
	// Name labels the job in audits and reports.
	Name string
	// Mgr is the job's §4.6 manager, fully configured (objective,
	// meter, schedules). The arbiter starts its control loop on the
	// shared queue and feeds it leases and revocations.
	Mgr *manager.Manager
	// TargetGPUs is the capacity the job wants; the arbiter leases
	// toward it when the bid order reaches this job.
	TargetGPUs int
	// MinGPUs is the guaranteed floor: when the job's leased capacity
	// falls below it, the arbiter revokes from lower-bidding jobs
	// (that are above their own floors) to restore it. Zero means no
	// guarantee.
	MinGPUs int
	// Priority is the job's base bid; objective-derived urgency is
	// added on top at each tick.
	Priority float64
	// Objective shapes the bid (deadline slack, $-surplus). Usually
	// mirrors Mgr.Opts.Objective.
	Objective autoconfig.Objective
}

// ScriptedPreempt reclaims Count live pool VMs at At — the chaos
// lever: victims are drawn seeded from the pool's live set, and the
// reclaim feeds back into the market (capacity returns to the
// provider), shifting subsequent hazard like a real mass-preemption.
type ScriptedPreempt struct {
	At    simtime.Time
	Count int
}

// ScriptedOutage reclaims every live pool VM in one availability zone
// at At — the correlated mass-preemption lever. Zones must be set on
// Options; VM ids map to zones round-robin (id % Zones).
type ScriptedOutage struct {
	At   simtime.Time
	Zone int
}

// Options tunes a fleet run.
type Options struct {
	// Horizon is the run length.
	Horizon simtime.Duration
	// Probe is the arbiter's tick cadence (default 10 minutes) — the
	// same cadence the pool's market dynamics advance on.
	Probe simtime.Duration
	// Prices is the shared spot price curve, used for $-surplus bids.
	// Nil disables the economic bid component.
	Prices *price.Curve
	// Preempts is the scripted reclaim schedule, in any order.
	Preempts []ScriptedPreempt
	// Zones spreads the pool's VMs round-robin over availability zones
	// (vm id % Zones); 0 keeps the pool flat. Required for Outages.
	Zones int
	// Outages is the scripted zone-outage schedule, in any order: each
	// entry reclaims every live VM in its zone at its instant.
	Outages []ScriptedOutage
	// VictimSeed seeds the scripted reclaims' victim draws.
	VictimSeed int64
	// Trace, when non-nil, records the run's causal spans: market
	// grants/reclaims, arbiter ticks, leases, revocation cascades —
	// and is threaded into every job's manager (one track per job), so
	// a revocation's span parents the victim's preemption handling.
	// Nil (the default) changes nothing: the run is bit-identical to
	// an untraced one.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives registry metrics, including the
	// wall-clock arbiter-tick self-profiling histogram
	// ("wall.arbiter.tick_us").
	Metrics *obs.Metrics
	// Series, when non-nil, receives every job's continuous telemetry
	// samples under a "<job>/" name prefix; SampleEvery sets the
	// cadence (0 = the manager default). Nil changes nothing: the run
	// is bit-identical to an unsampled one.
	Series      *obs.SeriesSet
	SampleEvery simtime.Duration
}

// JobResult is one job's view of a fleet run.
type JobResult struct {
	Name string
	// Points and Stats are the job's manager timeline, exactly as a
	// direct RunTimeline would report them.
	Points []manager.TimelinePoint
	Stats  manager.Stats
	// Events are the fleet events delivered to this job: leases as
	// allocations, market preemptions and arbiter revocations as
	// preemptions.
	Events []spot.Event
}

// Result is a completed fleet run.
type Result struct {
	Jobs []JobResult
	// Audit is the run's invariant ledger: lease bookkeeping,
	// revocation cascades, violations.
	Audit *Audit
}

// Run arbitrates the market across the given jobs until the horizon.
// Job order is the deterministic tie-break for equal bids.
func Run(mk *spot.Market, jobs []*Job, opts Options) (*Result, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("fleet: no jobs")
	}
	if opts.Probe <= 0 {
		opts.Probe = 10 * simtime.Minute
	}
	if opts.Horizon <= 0 {
		return nil, fmt.Errorf("fleet: Options.Horizon must be positive")
	}
	names := map[string]bool{}
	for i, j := range jobs {
		if j.Name == "" {
			return nil, fmt.Errorf("fleet: job %d has no name", i)
		}
		if names[j.Name] {
			return nil, fmt.Errorf("fleet: duplicate job name %q", j.Name)
		}
		names[j.Name] = true
		if j.TargetGPUs <= 0 {
			return nil, fmt.Errorf("fleet: job %q needs TargetGPUs > 0", j.Name)
		}
		if j.MinGPUs < 0 || j.MinGPUs > j.TargetGPUs {
			return nil, fmt.Errorf("fleet: job %q MinGPUs %d outside [0, %d]", j.Name, j.MinGPUs, j.TargetGPUs)
		}
	}

	if opts.Zones < 0 || opts.Zones == 1 {
		return nil, fmt.Errorf("fleet: Options.Zones must be 0 (flat) or >= 2, got %d", opts.Zones)
	}
	for _, o := range opts.Outages {
		if opts.Zones < 2 {
			return nil, fmt.Errorf("fleet: Options.Outages needs Options.Zones >= 2")
		}
		if o.Zone < 0 || o.Zone >= opts.Zones {
			return nil, fmt.Errorf("fleet: outage zone %d outside [0, %d)", o.Zone, opts.Zones)
		}
	}
	if len(jobs) == 1 && len(opts.Preempts) == 0 && len(opts.Outages) == 0 {
		return runSingle(mk, jobs[0], opts)
	}
	return newArbiter(mk, jobs, opts).run()
}

// runSingle is the single-tenant collapse: with no competitor there is
// nothing to arbitrate — the pool stream is independent of anything
// the job does (releases stay lame-duck holds, exactly as the direct
// path models them), so the whole trace is pregenerated and the
// manager replays it bit-identically to core.Job.RunOnSpotMarket.
func runSingle(mk *spot.Market, j *Job, opts Options) (*Result, error) {
	if opts.Trace != nil {
		j.Mgr.Opts.Trace = opts.Trace
		j.Mgr.Opts.TraceTrack = opts.Trace.Track("job:" + j.Name)
	}
	if opts.Metrics != nil {
		j.Mgr.Opts.Metrics = opts.Metrics
	}
	if opts.Series != nil {
		j.Mgr.Opts.Series = opts.Series
		j.Mgr.Opts.SeriesPrefix = j.Name + "/"
		j.Mgr.Opts.SampleEvery = opts.SampleEvery
	}
	events := spot.EventTrace(mk, j.TargetGPUs, opts.Horizon, opts.Probe)
	points, stats, err := j.Mgr.RunTimeline(events, opts.Horizon)
	if err != nil {
		return nil, fmt.Errorf("fleet: job %q: %w", j.Name, err)
	}
	audit := newAudit(1)
	for _, ev := range events {
		audit.PoolEvents++
		switch ev.Kind {
		case spot.Alloc:
			audit.lease(ev.At, ev.VM, 0, j.Name)
			audit.Leases++
		case spot.Preempt:
			audit.unlease(ev.VM)
			audit.MarketPreempts++
		}
	}
	return &Result{
		Jobs:  []JobResult{{Name: j.Name, Points: points, Stats: stats, Events: events}},
		Audit: audit,
	}, nil
}
