package fleet

import (
	"fmt"

	"repro/internal/simtime"
)

// CascadeVictim is one revocation inside a cascade.
type CascadeVictim struct {
	Job string
	Bid float64
	VM  int
}

// Cascade records one revocation cascade: the under-floor job it ran
// for and the VMs taken from lower-bidding jobs, in revocation order.
type Cascade struct {
	At      simtime.Time
	For     string
	ForBid  float64
	Victims []CascadeVictim
}

// Audit is the fleet run's invariant ledger. The arbiter records every
// lease transition through it; structural violations (a VM leased to
// two jobs, a cascade revoking out of priority order) are captured as
// they happen rather than reconstructed after the fact.
type Audit struct {
	// PoolEvents counts raw market events the pool produced.
	PoolEvents int
	// Leases counts VM leases granted to jobs; Revocations the leases
	// the arbiter took back in cascades; Releases the VMs jobs
	// voluntarily returned; MarketPreempts the leased VMs the market
	// itself reclaimed; ScriptedKills the chaos-scripted reclaims.
	Leases         int
	Revocations    int
	Releases       int
	MarketPreempts int
	ScriptedKills  int
	// ReLeases counts leases of a VM that a (different) job had
	// previously released — released capacity returning to
	// circulation, the one-way door swinging both ways.
	ReLeases int
	// ZoneOutages counts scripted zone outages applied (each reclaims
	// every live VM in its zone).
	ZoneOutages int
	// Cascades lists every revocation cascade.
	Cascades []Cascade
	// Violations lists invariant breaches in occurrence order; a clean
	// run has none.
	Violations []string

	owner    map[int]string // vm -> owning job name, while leased
	everFree map[int]bool   // vm ids that passed through the free list after a release
}

func newAudit(jobs int) *Audit {
	return &Audit{owner: make(map[int]string), everFree: make(map[int]bool)}
}

func (a *Audit) violate(format string, args ...any) {
	a.Violations = append(a.Violations, fmt.Sprintf(format, args...))
}

// lease records a VM entering a job's fleet; a VM already owned
// elsewhere is the no-double-lease violation.
func (a *Audit) lease(at simtime.Time, vm int, _ int, job string) {
	if cur, ok := a.owner[vm]; ok {
		a.violate("t=%v: vm%d leased to %q while still leased to %q", at, vm, job, cur)
	}
	a.owner[vm] = job
	if a.everFree[vm] {
		a.ReLeases++
	}
}

// unlease records a VM leaving its job (preempt, revoke or release).
func (a *Audit) unlease(vm int) {
	delete(a.owner, vm)
}

// releasedToPool marks a voluntarily-released VM as back in
// circulation, so a later lease of it counts as a re-lease.
func (a *Audit) releasedToPool(vm int) {
	a.everFree[vm] = true
}
