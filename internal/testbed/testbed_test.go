package testbed

import (
	"math"
	"testing"

	"repro/internal/calibrate"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/sim"
)

func jobFor(t *testing.T, spec *model.Spec, p, m, nm, d int) JobConfig {
	t.Helper()
	k := spec.NumLayers - 1
	if k < p-1 {
		k = p - 1
	}
	cuts, err := model.FindCutPoints(spec, k)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := model.Partition(spec, cuts, p, true)
	if err != nil {
		t.Fatal(err)
	}
	return JobConfig{Spec: spec, Stages: stages, M: m, Nm: nm, D: d}
}

func TestMeasureMiniBatchBasics(t *testing.T) {
	tb := New(hw.SpotCluster(hw.NC6v3, 63), 1)
	cfg := jobFor(t, model.GPT2XL2B(), 9, 4, 16, 7)
	ms, err := tb.MeasureMiniBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Examples != 4*16*7 {
		t.Fatalf("examples = %d, want %d", ms.Examples, 4*16*7)
	}
	if ms.MiniBatchTime <= 0 || ms.ExPerSec() <= 0 {
		t.Fatal("measurement must be positive")
	}
	if len(ms.Trace) == 0 {
		t.Fatal("replica-0 trace missing")
	}
	// Plausibility: 2.5B on 63 spot GPUs lands in the 0.5–5 ex/s/GPU
	// band the paper reports (~1.5-1.85).
	perGPU := ms.ExPerSec() / 63
	if perGPU < 0.3 || perGPU > 6 {
		t.Fatalf("per-GPU throughput %.2f ex/s implausible", perGPU)
	}
}

func TestMeasureRejectsBadConfig(t *testing.T) {
	tb := New(hw.SpotCluster(hw.NC6v3, 8), 1)
	cfg := jobFor(t, model.GPT2XL2B(), 9, 4, 8, 1)
	cfg.D = 0
	if _, err := tb.MeasureMiniBatch(cfg); err == nil {
		t.Fatal("D=0 must fail")
	}
}

func TestStragglerSlowsJob(t *testing.T) {
	base := New(hw.SpotCluster(hw.NC6v3, 36), 7)
	cfg := jobFor(t, model.GPT2XL2B(), 9, 4, 12, 4)
	clean, err := base.MeasureMiniBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slowTB := New(hw.SpotCluster(hw.NC6v3, 36), 7)
	cfg.ExtraSlow = map[int]float64{2: 1.4}
	slow, err := slowTB.MeasureMiniBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// §4.6: "even a single slow GPU would slow down the entire job".
	if float64(slow.MiniBatchTime) < 1.15*float64(clean.MiniBatchTime) {
		t.Fatalf("40%% straggler barely moved mini-batch: %v vs %v", slow.MiniBatchTime, clean.MiniBatchTime)
	}
}

func TestInterBoundaryFlags(t *testing.T) {
	one := New(hw.SpotCluster(hw.NC6v3, 8), 1)
	for i, f := range one.InterBoundaryFlags(6)[:5] {
		if !f {
			t.Fatalf("1-GPU VMs: boundary %d must be inter-node", i)
		}
	}
	four := New(hw.SpotCluster(hw.NC24v3, 8), 1)
	flags := four.InterBoundaryFlags(8)
	for i := 0; i < 7; i++ {
		want := (i+1)%4 == 0
		if flags[i] != want {
			t.Fatalf("4-GPU VMs: boundary %d inter=%v, want %v", i, flags[i], want)
		}
	}
	if flags[7] {
		t.Fatal("last stage has no boundary")
	}
}

func TestHyperclusterFasterThanSpot(t *testing.T) {
	spot := New(hw.SpotCluster(hw.NC6v3, 54), 3)
	hc := New(hw.Hypercluster(4), 3)
	cfg := jobFor(t, model.GPT2Megatron8B(), 18, 4, 16, 3)
	s, err := spot.MeasureMiniBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hc.MeasureMiniBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.MiniBatchTime >= s.MiniBatchTime {
		t.Fatalf("hypercluster %v must beat spot %v", h.MiniBatchTime, s.MiniBatchTime)
	}
	// But not catastrophically: Varuna's design keeps spot within ~2x
	// of hypercluster (Fig 5: 0.56 vs 0.83 ex/s/GPU ≈ 1.5x).
	ratio := float64(s.MiniBatchTime) / float64(h.MiniBatchTime)
	if ratio > 2.5 {
		t.Fatalf("spot/hypercluster ratio %.2f too large; pipeline comm not overlapped?", ratio)
	}
}

func TestCalibratedSimMatchesTestbed(t *testing.T) {
	// The heart of Table 7: calibrate on the testbed, predict with the
	// parametric simulator, compare against a measured run. The paper
	// reports <5% error; we allow 10% to absorb measurement noise.
	cluster := hw.SpotCluster(hw.NC6v3, 126)
	tb := New(cluster, 11)
	spec := model.GPT2XL2B()
	params, err := calibrate.Run(spec, tb, calibrate.Options{GPUsPerNode: cluster.VM.GPUs})
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := model.FindCutPoints(spec, 53)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ p, d int }{{9, 7}, {18, 3}, {6, 10}} {
		stages, err := model.Partition(spec, cuts, c.p, true)
		if err != nil {
			t.Fatal(err)
		}
		// Realistic micro-batch counts for a batch of 8192.
		m := 4
		nm := (8192 + m*c.d - 1) / (m * c.d)
		costs, err := params.StageCosts(spec, stages, m, c.d, tb.InterBoundaryFlags(c.p))
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateWithSim(c.p, nm, costs)
		if err != nil {
			t.Fatal(err)
		}
		// Average several measured mini-batches.
		var sum float64
		const reps = 5
		for r := 0; r < reps; r++ {
			ms, err := tb.MeasureMiniBatch(JobConfig{Spec: spec, Stages: stages, M: m, Nm: nm, D: c.d})
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(ms.MiniBatchTime)
		}
		actual := sum / reps
		errFrac := math.Abs(float64(est)-actual) / actual
		if errFrac > 0.10 {
			t.Errorf("P=%d D=%d: estimate %v vs actual %.0f — error %.1f%% exceeds 10%%",
				c.p, c.d, est, actual, errFrac*100)
		}
	}
}

func TestMeasureWithPolicyOrdering(t *testing.T) {
	// Table 6's qualitative ordering on commodity 1-GPU VMs:
	// Varuna ≥ Megatron-1F1B ≥ DeepSpeed, and GPipe behind Varuna.
	tb := New(hw.SpotCluster(hw.NC6v3, 72), 5)
	cfg := jobFor(t, model.GPT2XL2B(), 9, 4, 32, 8)
	run := func(p schedule.Policy) float64 {
		var sum float64
		const reps = 3
		for r := 0; r < reps; r++ {
			ms, err := tb.MeasureWithPolicy(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			sum += ms.ExPerSec()
		}
		return sum / reps
	}
	varuna := run(schedule.Varuna)
	megatron := run(schedule.Megatron1F1B)
	deepspeed := run(schedule.DeepSpeedP)
	gpipe := run(schedule.GPipeP)
	if varuna < megatron {
		t.Errorf("Varuna %.2f must be at least Megatron-1F1B %.2f", varuna, megatron)
	}
	if megatron < deepspeed {
		t.Errorf("Megatron-1F1B %.2f must beat DeepSpeed %.2f (comm overlap)", megatron, deepspeed)
	}
	if varuna <= gpipe {
		t.Errorf("Varuna %.2f must beat GPipe %.2f", varuna, gpipe)
	}
}

func TestVarunaStrictAblation(t *testing.T) {
	tb := New(hw.SpotCluster(hw.NC6v3, 36), 9)
	cfg := jobFor(t, model.GPT2XL2B(), 9, 4, 24, 4)
	ms, err := tb.MeasureWithPolicy(cfg, schedule.VarunaStrict)
	if err != nil {
		t.Fatal(err)
	}
	if ms.MiniBatchTime <= 0 {
		t.Fatal("strict ablation must produce a measurement")
	}
}

func TestTrueStageCostsShape(t *testing.T) {
	tb := New(hw.SpotCluster(hw.NC6v3, 36), 1)
	cfg := jobFor(t, model.GPT2XL2B(), 9, 4, 12, 4)
	costs := tb.TrueStageCosts(cfg)
	if len(costs) != 9 {
		t.Fatalf("%d costs", len(costs))
	}
	if costs[8].ActSend != 0 {
		t.Fatal("last stage sends nothing")
	}
	for i := 0; i < 8; i++ {
		if costs[i].ActSend <= 0 {
			t.Fatalf("stage %d missing transfer", i)
		}
	}
	var _ []sim.StageCosts = costs
	// D=1: no allreduce.
	cfg.D = 1
	for i, c := range tb.TrueStageCosts(cfg) {
		if c.AllReduce != 0 {
			t.Fatalf("stage %d has allreduce at D=1", i)
		}
	}
}

func TestMeasureNoTraceGolden(t *testing.T) {
	// The NoTrace knob must change nothing but the trace itself: two
	// identically-seeded testbeds measuring the same config report
	// bit-identical summary metrics, with and without the trace.
	cfg := jobFor(t, model.GPT2XL2B(), 9, 4, 16, 7)
	traced, err := New(hw.SpotCluster(hw.NC6v3, 63), 7).MeasureMiniBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoTrace = true
	fast, err := New(hw.SpotCluster(hw.NC6v3, 63), 7).MeasureMiniBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.MiniBatchTime != traced.MiniBatchTime || fast.Bubble != traced.Bubble || fast.Examples != traced.Examples {
		t.Fatalf("NoTrace drifted: %+v vs %+v", fast, traced)
	}
	if len(traced.Trace) == 0 {
		t.Fatal("default measurement must keep the trace")
	}
	if len(fast.Trace) != 0 {
		t.Fatalf("NoTrace measurement recorded %d spans", len(fast.Trace))
	}
}
