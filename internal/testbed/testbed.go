// Package testbed is the ground-truth cluster: the stand-in for the
// paper's Azure spot fleet and DGX-2 hypercluster. It owns the true
// hardware cost models (compute kernels, network fabric) and executes
// pipeline configurations at task granularity with per-operation jitter,
// per-device speed heterogeneity and measurement noise.
//
// Two consumers sit on top. Varuna's profiler (internal/calibrate)
// treats the testbed as the machine being measured, via the
// calibrate.Bench interface. Experiments treat it as "reality": the
// Actual column of Table 7 and every measured throughput in §7 come
// from testbed runs, while the Estimated column comes from the
// parametric simulator fed with calibrated parameters.
package testbed

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// Testbed is one cluster with its ground-truth cost models.
type Testbed struct {
	// Cluster is the hardware pool.
	Cluster hw.Cluster
	// Cost is the true GPU kernel model.
	Cost compute.CostModel
	// Fabric is the true network model.
	Fabric netsim.Fabric
	// NoiseCV is measurement noise applied to profiling probes.
	NoiseCV float64
	// HeteroCV is per-device speed spread across the fleet (§4.6
	// notes VMs can run "slower than the rest, often by as much 30%").
	HeteroCV float64

	rng *simtime.Rand
}

// New builds a testbed over cluster with deterministic randomness.
func New(cluster hw.Cluster, seed int64) *Testbed {
	contention := 1.0
	if cluster.LowPriority {
		// Spot VMs have no locality; flows cross oversubscribed
		// switch tiers.
		contention = 1.3
	}
	return &Testbed{
		Cluster:  cluster,
		Cost:     compute.Default(),
		Fabric:   netsim.New(contention),
		NoiseCV:  0.02,
		HeteroCV: 0.03,
		rng:      simtime.NewRand(seed),
	}
}

// jitterCV reports the run-time jitter level of the cluster's
// inter-node link.
func (tb *Testbed) jitterCV() float64 { return tb.Cluster.Inter.JitterCV }

// noisy perturbs a true value with measurement noise.
func (tb *Testbed) noisy(d simtime.Duration) simtime.Duration {
	return tb.rng.Jitter(d, tb.NoiseCV)
}

// --- calibrate.Bench implementation -------------------------------

// OpForward measures the raw forward kernel time of op — the F_i(m)
// primitive of Table 2.
func (tb *Testbed) OpForward(op model.Op, m int) simtime.Duration {
	return tb.noisy(tb.Cost.RawKernelTime(op.FwdFlops*float64(m), m))
}

// OpBackward measures the raw backward kernel time of op — the B_i(m)
// primitive of Table 2.
func (tb *Testbed) OpBackward(op model.Op, m int) simtime.Duration {
	return tb.noisy(tb.Cost.RawKernelTime(2*op.FwdFlops*float64(m), m))
}

// Overhead measures the fixed per-task launch overhead the §4.3
// profiler folds into every stage time.
func (tb *Testbed) Overhead() simtime.Duration {
	return tb.noisy(tb.Cost.LaunchOverhead)
}

// Transfer measures a point-to-point transfer of n bytes and the
// link's observed jitter — the activation/gradient latency primitives
// of Table 2 and the Observation-3 jitter the simulator replays.
func (tb *Testbed) Transfer(n int64, inter bool) (simtime.Duration, float64) {
	link := tb.Cluster.VM.Intra
	if inter {
		link = tb.Cluster.Inter
	}
	mean := tb.Fabric.PointToPoint(n, link)
	// A profiler averages a handful of jittered samples.
	const trials = 5
	var sum simtime.Duration
	for i := 0; i < trials; i++ {
		sum += tb.rng.Jitter(mean, link.JitterCV)
	}
	return sum / trials, link.JitterCV
}

// AllReduce measures a data-parallel gradient allreduce. The testbed
// places replicas of the same stage into the same VM first
// (replica-major), so the allreduce is hierarchical: an intra-VM phase
// over the local link, then one cross-node ring per VM — each NIC
// carries exactly one ring, making the k-in-flight contention the
// §4.3 probe asks about equal to inFlight=1 under this placement.
// On 1-GPU VMs the hierarchy degenerates to a flat ring.
func (tb *Testbed) AllReduce(n int64, d, inFlight int) simtime.Duration {
	t := tb.Fabric.HierarchicalAllReduce(n, d, tb.Cluster.VM.GPUs, tb.Cluster.VM.Intra, tb.Cluster.Inter)
	if inFlight > 1 {
		// Callers probing stage-major placement see the NIC shared
		// inFlight ways during the cross-node phase.
		t = simtime.Duration(float64(t) * float64(inFlight))
	}
	return tb.noisy(t)
}

// Optimizer measures the weight update for n parameters (the
// per-stage optimizer term of Table 2).
func (tb *Testbed) Optimizer(n int64) simtime.Duration {
	return tb.noisy(tb.Cost.OptimizerForParams(n, false))
}

// DeviceSpread measures the fleet's persistent per-device speed spread
// by timing the same kernel across VMs (§4.6 reports spot VMs running
// "slower than the rest, often by as much 30%").
func (tb *Testbed) DeviceSpread() float64 {
	return tb.HeteroCV * (1 + 0.1*tb.rng.NormFloat64())
}

// --- ground-truth execution ----------------------------------------

// JobConfig is a concrete parallel configuration to execute.
type JobConfig struct {
	Spec   *model.Spec
	Stages []model.Stage
	// M is the micro-batch size, Nm the micro-batches per mini-batch,
	// D the data-parallel width.
	M, Nm, D int
	// OffloadOptimizer keeps optimizer state in host memory (200B run).
	OffloadOptimizer bool
	// ExtraSlow optionally marks straggling replicas: replica index →
	// speed factor (1.3 = 30% slower), applied to every stage of that
	// replica's pipeline.
	ExtraSlow map[int]float64
	// NetSlow scales every network cost — activation/gradient sends
	// and allreduces — by the given factor: the testbed's
	// network-degradation injection (an oversubscribed or flapping
	// inter-node fabric). Zero or 1 means a healthy network.
	NetSlow float64
	// NoTrace skips task-trace collection: Measurement.Trace stays nil
	// and the simulator takes its allocation-free fast path. The zero
	// value keeps the trace, so Gantt-consuming callers (Figure 7)
	// stay correct by default; callers that only read summary metrics
	// — MiniBatchTime, Bubble, ExPerSec — should set it (the §4.6
	// manager measures every morph segment this way). Summary metrics
	// are bit-identical with the trace on or off.
	NoTrace bool
}

// TrueStageCosts assembles stage costs from the ground-truth models —
// what the hardware "really" does, as opposed to what calibration
// estimated.
func (tb *Testbed) TrueStageCosts(cfg JobConfig) []sim.StageCosts {
	gpn := tb.Cluster.VM.GPUs
	netSlow := cfg.NetSlow
	if netSlow <= 0 {
		netSlow = 1
	}
	scaleNet := func(d simtime.Duration) simtime.Duration {
		if netSlow == 1 {
			return d
		}
		return simtime.Duration(float64(d)*netSlow + 0.5)
	}
	costs := make([]sim.StageCosts, len(cfg.Stages))
	for i, st := range cfg.Stages {
		c := sim.StageCosts{
			Fwd: tb.Cost.Forward(st, cfg.M),
			Bwd: tb.Cost.Backward(st, cfg.M),
			Rec: tb.Cost.Recompute(st, cfg.M),
		}
		if i < len(cfg.Stages)-1 {
			link := tb.Cluster.VM.Intra
			if (i+1)%gpn == 0 || gpn == 1 {
				link = tb.Cluster.Inter
			}
			c.ActSend = scaleNet(tb.Fabric.PointToPoint(st.SendBytes*int64(cfg.M), link))
			c.GradSend = c.ActSend
		}
		if cfg.D > 1 {
			c.AllReduce = scaleNet(tb.Fabric.HierarchicalAllReduce(st.Params*model.BytesPerParam, cfg.D, gpn, tb.Cluster.VM.Intra, tb.Cluster.Inter))
		}
		c.Optimizer = tb.Cost.OptimizerStep(st, cfg.OffloadOptimizer)
		costs[i] = c
	}
	return costs
}

// InterBoundaryFlags reports, for each stage, whether the activation
// hop to the next stage crosses nodes under the testbed's placement
// (pipeline stages packed into nodes first). The last entry is always
// false (no successor).
func (tb *Testbed) InterBoundaryFlags(p int) []bool {
	gpn := tb.Cluster.VM.GPUs
	flags := make([]bool, p)
	for i := 0; i < p-1; i++ {
		flags[i] = gpn == 1 || (i+1)%gpn == 0
	}
	return flags
}

// Measurement is one observed mini-batch execution (the "Actual"
// column of Table 7 and every measured throughput in §7).
type Measurement struct {
	// MiniBatchTime is the wall time of one mini-batch, allreduce and
	// optimizer step included.
	MiniBatchTime simtime.Duration
	// Examples is the number of training examples processed.
	Examples int
	// Trace is replica 0's task trace (for Gantt rendering, Figure 7).
	// Nil when the measurement ran with JobConfig.NoTrace; all other
	// fields are unaffected by the knob.
	Trace []sim.TaskSpan
	// Bubble is replica 0's pipeline bubble fraction.
	Bubble float64
}

// ExPerSec reports examples/second for the mini-batch.
func (ms Measurement) ExPerSec() float64 {
	if ms.MiniBatchTime <= 0 {
		return 0
	}
	return float64(ms.Examples) / ms.MiniBatchTime.Seconds()
}

// MeasureMiniBatch executes one mini-batch of cfg under Varuna's
// schedule and returns the observed timing. All D replica pipelines run
// with independent jitter and device-speed draws; each stage's
// allreduce starts when its slowest replica finishes, and the
// mini-batch completes when the slowest stage finishes its update.
func (tb *Testbed) MeasureMiniBatch(cfg JobConfig) (Measurement, error) {
	return tb.measure(cfg, nil)
}

// measure runs one mini-batch; runOne overrides single-replica
// execution when non-nil (used for non-Varuna policies).
func (tb *Testbed) measure(cfg JobConfig, runOne func(sim.Config) (sim.Result, error)) (Measurement, error) {
	if cfg.D < 1 || cfg.Nm < 1 || cfg.M < 1 {
		return Measurement{}, fmt.Errorf("testbed: bad config M=%d Nm=%d D=%d", cfg.M, cfg.Nm, cfg.D)
	}
	p := len(cfg.Stages)
	costs := tb.TrueStageCosts(cfg)
	// Strip the tail from per-replica runs; the cross-replica barrier
	// is applied below.
	pipeCosts := make([]sim.StageCosts, p)
	copy(pipeCosts, costs)
	for i := range pipeCosts {
		pipeCosts[i].AllReduce = 0
		pipeCosts[i].Optimizer = 0
	}

	// The mini-batch ends when the slowest replica of each stage joins
	// its allreduce ring. Rather than simulating all D pipelines
	// (identical work, independent noise), sample every replica's
	// per-stage device-speed factor and run ONE pipeline whose stage
	// speeds are the per-stage maxima — the effective pace the barrier
	// observes. Jitter on individual tasks averages out across a
	// mini-batch (the span's coefficient of variation shrinks with
	// 1/√tasks), so device heterogeneity dominates the cross-replica
	// spread.
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = 1
	}
	for r := 0; r < cfg.D; r++ {
		extra := 1.0
		if f, ok := cfg.ExtraSlow[r]; ok {
			extra = f
		}
		for i := range speeds {
			s := (1 + absOf(tb.rng.NormFloat64())*tb.HeteroCV) * extra
			if s > speeds[i] {
				speeds[i] = s
			}
		}
	}
	rcfg := sim.Config{
		Depth:           p,
		Micros:          cfg.Nm,
		Policy:          varunaPolicy,
		Costs:           pipeCosts,
		JitterCV:        tb.jitterCV(),
		ComputeJitterCV: 0.02, // GPU kernels are far steadier than the network
		Rand:            tb.rng,
		SpeedFactor:     speeds,
		CollectTrace:    !cfg.NoTrace, // Measurement.Trace feeds Gantt rendering
	}
	var res sim.Result
	var err error
	if runOne != nil {
		res, err = runOne(rcfg)
	} else {
		res, err = sim.Run(rcfg)
	}
	if err != nil {
		return Measurement{}, err
	}
	var meas Measurement
	meas.Trace = res.Trace
	meas.Bubble = res.BubbleFrac
	var total simtime.Time
	for i, end := range res.StageEnds {
		e := end.
			Add(tb.rng.Jitter(costs[i].AllReduce, tb.jitterCV())).
			Add(costs[i].Optimizer)
		total = simtime.Max(total, e)
	}
	meas.MiniBatchTime = simtime.Duration(total)
	meas.Examples = cfg.M * cfg.Nm * cfg.D
	return meas, nil
}

func absOf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
