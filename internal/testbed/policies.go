package testbed

import (
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// varunaPolicy is the default execution discipline of the testbed.
var varunaPolicy = schedule.Varuna

// MeasureWithPolicy executes one mini-batch under a comparison
// system's schedule (GPipe, Megatron-1F1B, DeepSpeed, PipeDream). GPipe
// runs memory-chunked: its all-forward phase stashes one input
// activation per in-flight micro-batch, so large Nm is split into
// chunks that fit the stash budget, draining the pipeline in between.
func (tb *Testbed) MeasureWithPolicy(cfg JobConfig, policy schedule.Policy) (Measurement, error) {
	switch policy.Name {
	case schedule.GPipeP.Name:
		return tb.measure(cfg, func(rc sim.Config) (sim.Result, error) {
			rc.Policy = policy
			chunk := tb.gpipeChunk(cfg)
			return sim.RunChunked(rc, chunk, schedule.GPipe)
		})
	case schedule.Varuna.Name:
		return tb.MeasureMiniBatch(cfg)
	case schedule.VarunaStrict.Name:
		// Freeze the rule-based order under mean timings, then replay
		// it without deviation — the opportunism ablation.
		return tb.measure(cfg, func(rc sim.Config) (sim.Result, error) {
			orders, err := sim.VarunaOrders(rc.Depth, rc.Micros, rc.Costs)
			if err != nil {
				return sim.Result{}, err
			}
			rc.Policy = schedule.Policy{Name: policy.Name}
			rc.Orders = orders.Orders
			return sim.Run(rc)
		})
	default:
		// 1F1B-family schedules (Megatron, DeepSpeed, PipeDream).
		return tb.measure(cfg, func(rc sim.Config) (sim.Result, error) {
			orders, err := schedule.OneFOneB(rc.Depth, rc.Micros)
			if err != nil {
				return sim.Result{}, err
			}
			rc.Policy = policy
			rc.Orders = orders.Orders
			return sim.Run(rc)
		})
	}
}

// gpipeChunk derives GPipe's memory-feasible chunk from the device
// memory left after model state.
func (tb *Testbed) gpipeChunk(cfg JobConfig) int {
	p := len(cfg.Stages)
	// Budget: device memory minus state of the largest stage, capped
	// to leave room for working activations.
	var maxState int64
	for _, st := range cfg.Stages {
		if s := st.Params * 16; s > maxState {
			maxState = s
		}
	}
	budget := tb.Cluster.VM.GPU.MemoryBytes - maxState - (2 << 30)
	if budget < 1<<30 {
		budget = 1 << 30
	}
	stashPer := cfg.Spec.BlockActivationBytes() * int64(cfg.M)
	return sim.GPipeChunk(budget, stashPer, p)
}

// EstimateWithSim is the counterpart of MeasureMiniBatch on the
// prediction side: run the parametric simulator (no jitter, mean
// parameters) over the given calibrated stage costs. Used by Table 7
// to compare estimate vs measurement.
func EstimateWithSim(depth, nm int, costs []sim.StageCosts) (simtime.Duration, error) {
	res, err := sim.Run(sim.Config{
		Depth:  depth,
		Micros: nm,
		Policy: schedule.Varuna,
		Costs:  costs,
	})
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
