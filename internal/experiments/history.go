package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// HistoryEntry is one green-run summary line in bench/history.jsonl:
// the per-experiment wall_ms of the run plus its distribution summary.
// The file is append-only JSONL — one line per CI-green run — and is
// the cross-run regression record varuna-benchdiff -history maintains.
type HistoryEntry struct {
	// Runs maps experiment id → wall_ms for that run.
	Runs map[string]float64 `json:"wall_ms"`
	// P50/P99/Max summarize the run's wall_ms distribution across
	// experiments (nearest-rank quantiles).
	P50 float64 `json:"p50_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// NewHistoryEntry summarizes a green run's reports. Failed reports are
// excluded (the gate already rejected the run if any failed).
func NewHistoryEntry(reports []Report) HistoryEntry {
	e := HistoryEntry{Runs: map[string]float64{}}
	var vals []float64
	for _, r := range reports {
		if !r.OK {
			continue
		}
		e.Runs[r.ID] = r.WallMS
		vals = append(vals, r.WallMS)
	}
	if len(vals) == 0 {
		return e
	}
	sort.Float64s(vals)
	e.P50 = quantileNearestRank(vals, 0.50)
	e.P99 = quantileNearestRank(vals, 0.99)
	e.Max = vals[len(vals)-1]
	return e
}

// quantileNearestRank is the nearest-rank quantile of sorted vals.
func quantileNearestRank(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	idx := int(q*float64(len(vals)-1) + 0.5)
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}

// LoadHistory reads a history.jsonl file. A missing file is an empty
// history, not an error — the first green run creates it.
func LoadHistory(path string) ([]HistoryEntry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []HistoryEntry
	scan := bufio.NewScanner(f)
	scan.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for scan.Scan() {
		line++
		if len(scan.Bytes()) == 0 {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal(scan.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		out = append(out, e)
	}
	return out, scan.Err()
}

// AppendHistory appends one summary line to the history file, creating
// it if absent.
func AppendHistory(path string, e HistoryEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(data, '\n'))
	return err
}

// Drift flags experiments whose current wall_ms exceeds factor times
// their historical median — slow creep a single-baseline tolerance
// gate cannot see, because each run resets the comparison point. The
// returned messages are advisory (the gate does not fail on drift);
// experiments with fewer than 3 historical samples are skipped as
// statistically meaningless.
func Drift(hist []HistoryEntry, cur HistoryEntry, factor float64) []string {
	byID := map[string][]float64{}
	for _, e := range hist {
		for id, ms := range e.Runs {
			byID[id] = append(byID[id], ms)
		}
	}
	ids := make([]string, 0, len(cur.Runs))
	for id := range cur.Runs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []string
	for _, id := range ids {
		samples := byID[id]
		if len(samples) < 3 {
			continue
		}
		sort.Float64s(samples)
		med := quantileNearestRank(samples, 0.50)
		if ms := cur.Runs[id]; med > 0 && ms > factor*med {
			out = append(out, fmt.Sprintf("%s: %.0fms vs historical median %.0fms over %d run(s) (%.1fx)",
				id, ms, med, len(samples), ms/med))
		}
	}
	return out
}
