// Package experiments regenerates every table and figure of the
// paper's evaluation (§7) on the reproduction stack: each experiment
// builds the workloads, runs Varuna and the relevant baselines on the
// testbed, and reports the same rows/series the paper does. The
// EXPERIMENTS.md file records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/autoconfig"
	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/simtime"
	"repro/internal/testbed"
)

// jobLike is the slice of core.Job the experiments use, kept as an
// interface so helpers stay testable.
type jobLike interface {
	Configure(p, d int) (autoconfig.Choice, error)
	Measure(c autoconfig.Choice) (testbed.Measurement, error)
	MeasureWithPolicy(c autoconfig.Choice, policy schedule.Policy) (testbed.Measurement, error)
	Estimate(c autoconfig.Choice) (simtime.Duration, error)
	Testbed() *testbed.Testbed
}

var _ jobLike = (*core.Job)(nil)

// defaultCost is the V100 kernel model shared with the testbed.
func defaultCost() compute.CostModel { return compute.Default() }

// offload102 builds the 200B job config with optimizer state in host
// memory (§7.1.1).
func offload102(job *core.Job, c autoconfig.Choice) testbed.JobConfig {
	return testbed.JobConfig{
		Spec:             job.Spec,
		Stages:           c.Stages,
		M:                c.M,
		Nm:               c.Nm,
		D:                c.D,
		OffloadOptimizer: true,
	}
}

// Table is a printable experiment result.
type Table struct {
	// Title names the experiment ("Table 4: ...").
	Title string
	// Header labels the columns.
	Header []string
	// Rows hold formatted cells.
	Rows [][]string
	// Notes carry caveats and substitutions.
	Notes []string
	// Figure optionally carries pre-rendered chart text (Gantt, loss
	// curves, availability plots).
	Figure string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Figure != "" {
		b.WriteByte('\n')
		b.WriteString(t.Figure)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// f2 formats with 2 decimals, f3 with 3, f1 with 1.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// tflopsPerGPU converts per-GPU throughput into useful TFlops/s/GPU
// (recompute excluded, as §7.1 specifies).
func tflopsPerGPU(spec *model.Spec, exPerSecPerGPU float64) float64 {
	return exPerSecPerGPU * spec.TrainFlopsPerExample() / 1e12
}

// Ctx carries the state shared by the experiments of one invocation —
// a cache of calibrated jobs: several experiments use the same
// (model, cluster) pair and calibration is the expensive step. Each
// serial invocation shares one Ctx across every experiment; the
// parallel runner gives each experiment its own, so concurrently
// running experiments never share a testbed (whose RNG is neither
// goroutine-safe nor order-independent) and results stay deterministic
// regardless of scheduling.
type Ctx struct {
	jobs sync.Map
}

// NewCtx returns an empty experiment context.
func NewCtx() *Ctx { return &Ctx{} }

type jobKey struct {
	spec    string
	cluster string
	mTotal  int
	seed    int64
}

// sharedJob returns a calibrated core.Job for the spec/cluster pair,
// memoized within this Ctx.
func (x *Ctx) sharedJob(spec *model.Spec, cluster hw.Cluster, mTotal int, seed int64) (*core.Job, error) {
	key := jobKey{spec: spec.Name, cluster: cluster.Name, mTotal: mTotal, seed: seed}
	if v, ok := x.jobs.Load(key); ok {
		return v.(*core.Job), nil
	}
	job, err := core.NewJob(spec, cluster, mTotal, seed)
	if err != nil {
		return nil, err
	}
	if v, loaded := x.jobs.LoadOrStore(key, job); loaded {
		return v.(*core.Job), nil
	}
	return job, nil
}
