package experiments

import (
	"strings"
	"testing"
)

func TestDiffReports(t *testing.T) {
	base := []Report{
		{ID: "a", WallMS: 100, OK: true},
		{ID: "b", WallMS: 100, OK: true},
		{ID: "c", WallMS: 1, OK: true},
		{ID: "gone", WallMS: 50, OK: true},
	}
	cur := []Report{
		{ID: "a", WallMS: 120, OK: true},   // within tolerance
		{ID: "b", WallMS: 1000, OK: true},  // regression (2x+250 < 1000)
		{ID: "c", WallMS: 200, OK: true},   // 200x but under the floor
		{ID: "fresh", WallMS: 5, OK: true}, // new, informational
		{ID: "broken", OK: false},          // failed run
	}
	deltas, failures := DiffReports(base, cur, 2.0, 250)
	byID := map[string]BenchDelta{}
	for _, d := range deltas {
		byID[d.ID] = d
	}
	want := map[string]string{
		"a": "ok", "b": "regression", "c": "ok",
		"gone": "missing", "fresh": "new", "broken": "failed",
	}
	for id, status := range want {
		if byID[id].Status != status {
			t.Errorf("%s: status %q, want %q", id, byID[id].Status, status)
		}
	}
	if failures != 3 { // b, gone, broken
		t.Fatalf("failures = %d, want 3", failures)
	}
	if r := byID["a"].Ratio; r < 1.19 || r > 1.21 {
		t.Fatalf("ratio %v, want 1.2", r)
	}

	out := RenderDeltas(deltas)
	for _, frag := range []string{"regression", "missing", "1.20x"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestDiffReportsAllClean(t *testing.T) {
	base := []Report{{ID: "x", WallMS: 10, OK: true}}
	cur := []Report{{ID: "x", WallMS: 12, OK: true}}
	deltas, failures := DiffReports(base, cur, 3.0, 250)
	if failures != 0 || len(deltas) != 1 || deltas[0].Status != "ok" {
		t.Fatalf("clean diff misreported: %+v failures=%d", deltas, failures)
	}
}
