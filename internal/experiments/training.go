package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/nn"
)

// charGPT is the Figure 9/10 substitution model: a character-level
// transformer trained for real on a synthetic corpus. The paper trains
// a 2.5B GPT-2; the claims under test (large-batch equivalence,
// morphing-invariant trajectories, stale-update divergence) are
// properties of the training semantics, not the parameter count.
func charGPT() nn.GPTConfig {
	return nn.GPTConfig{Vocab: 24, Dim: 24, SeqLen: 12, Layers: 4, MLPMult: 2, Seed: 99}
}

// lossCurve renders losses as a coarse text chart.
func lossCurve(label string, losses []float64, lo, hi float64) string {
	const cols = 80
	glyphs := []rune("█▇▆▅▄▃▂▁ ")
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s ", label)
	for c := 0; c < cols; c++ {
		idx := c * len(losses) / cols
		v := losses[idx]
		if math.IsNaN(v) || v > hi {
			v = hi
		}
		if v < lo {
			v = lo
		}
		frac := (v - lo) / (hi - lo)
		g := int(frac * float64(len(glyphs)-1))
		b.WriteRune(glyphs[len(glyphs)-1-g])
	}
	fmt.Fprintf(&b, "  final %.3f\n", losses[len(losses)-1])
	return b.String()
}

// Fig9Convergence reproduces Figure 9's claim at engine scale: training
// with a 16x larger mini-batch for 16x fewer iterations reaches the
// same held-out loss, and a mid-run morph (new P×D from a checkpoint)
// leaves the trajectory unchanged.
func Fig9Convergence(x *Ctx) (*Table, error) {
	const (
		smallBatch = 16
		bigBatch   = 256 // 16x
		smallSteps = 640
		bigSteps   = 40 // 16x fewer
	)
	small, err := engine.New(engine.Config{GPT: charGPT(), P: 2, D: 1, MicroBatch: 8,
		BatchSize: smallBatch, LR: 2e-3, DataSeed: 31})
	if err != nil {
		return nil, err
	}
	smallLoss := small.Losses(smallSteps)
	smallEval := small.Eval(4)

	big, err := engine.New(engine.Config{GPT: charGPT(), P: 2, D: 2, MicroBatch: 8,
		BatchSize: bigBatch, LR: 8e-3, DataSeed: 31})
	if err != nil {
		return nil, err
	}
	bigLoss := big.Losses(bigSteps)
	bigEval := big.Eval(4)

	// Morphing mid-run: train the big-batch job 10 steps at 2x2,
	// checkpoint, resume at 3x1, finish — compare to the straight run.
	store := checkpoint.NewMemStore()
	m1, err := engine.New(engine.Config{GPT: charGPT(), P: 2, D: 2, MicroBatch: 8,
		BatchSize: bigBatch, LR: 8e-3, DataSeed: 31})
	if err != nil {
		return nil, err
	}
	morphLoss := m1.Losses(bigSteps / 2)
	if err := m1.Save(store); err != nil {
		return nil, err
	}
	m2, err := engine.Resume(engine.Config{GPT: charGPT(), P: 3, D: 1, MicroBatch: 8,
		BatchSize: bigBatch, LR: 8e-3, DataSeed: 31}, store)
	if err != nil {
		return nil, err
	}
	morphLoss = append(morphLoss, m2.Losses(bigSteps-bigSteps/2)...)
	var worst float64
	for i := range bigLoss {
		d := math.Abs(bigLoss[i] - morphLoss[i])
		if d > worst {
			worst = d
		}
	}

	t := &Table{
		Title:  "Figure 9: convergence with 16x larger mini-batch (char-GPT substitution)",
		Header: []string{"Run", "Batch", "Iterations", "Held-out loss"},
	}
	t.Add("baseline", fmt.Sprint(smallBatch), fmt.Sprint(smallSteps), f3(smallEval))
	t.Add("16x batch, 16x fewer iters", fmt.Sprint(bigBatch), fmt.Sprint(bigSteps), f3(bigEval))
	t.Add("same + mid-run morph 2x2→3x1", fmt.Sprint(bigBatch), fmt.Sprint(bigSteps), f3(m2.Eval(4)))
	lo, hi := 0.0, smallLoss[0]
	t.Figure = lossCurve("baseline", smallLoss, lo, hi) +
		lossCurve("16x batch", bigLoss, lo, hi) +
		lossCurve("16x batch+morph", morphLoss, lo, hi)
	t.Notes = append(t.Notes,
		fmt.Sprintf("morphed vs straight trajectory: max |Δloss| = %.2e (sync-SGD preserved)", worst),
		"paper: 2.5B GPT-2 at batch 8192 matches Megatron's batch-512 validation perplexity (10.81) on 16x fewer iterations")
	return t, nil
}

// Fig10TwoBW reproduces the appendix finding: stale-update pipelines
// (PipeDream/2BW-style) destabilize training that sync-SGD handles.
func Fig10TwoBW(x *Ctx) (*Table, error) {
	const steps = 40
	sync, err := engine.New(engine.Config{GPT: charGPT(), P: 4, D: 1, MicroBatch: 4,
		BatchSize: 64, LR: 3e-2, DataSeed: 33})
	if err != nil {
		return nil, err
	}
	syncLoss := sync.Losses(steps)

	stale, err := engine.New(engine.Config{GPT: charGPT(), P: 4, D: 1, MicroBatch: 4,
		BatchSize: 64, LR: 3e-2, DataSeed: 33, Mode: engine.StalePerMicro})
	if err != nil {
		return nil, err
	}
	staleLoss := stale.Losses(steps)

	twoBW, err := engine.New(engine.Config{GPT: charGPT(), P: 4, D: 1, MicroBatch: 4,
		BatchSize: 64, LR: 3e-2, DataSeed: 33, Mode: engine.TwoBW})
	if err != nil {
		return nil, err
	}
	twoBWLoss := twoBW.Losses(steps)

	t := &Table{
		Title:  "Figure 10: sync-SGD vs stale-update pipelines (char-GPT substitution)",
		Header: []string{"Discipline", "Final loss", "Max loss seen"},
	}
	t.Add("synchronous (Varuna)", f3(syncLoss[steps-1]), f3(maxOf(syncLoss)))
	t.Add("2BW delayed updates (PipeDream-2BW)", f3(twoBWLoss[steps-1]), f3(maxOf(twoBWLoss)))
	t.Add("stale per-micro updates (PipeDream-style)", f3(staleLoss[steps-1]), f3(maxOf(staleLoss)))
	hi := syncLoss[0] * 2
	t.Figure = lossCurve("sync", syncLoss, 0, hi) + lossCurve("2BW", twoBWLoss, 0, hi) + lossCurve("stale", staleLoss, 0, hi)
	t.Notes = append(t.Notes,
		"paper: PipeDream-2BW's 355M GPT-2 diverged after 16k iterations; sync training did not")
	return t, nil
}

func maxOf(xs []float64) float64 {
	worst := xs[0]
	for _, x := range xs {
		if math.IsNaN(x) {
			return math.NaN()
		}
		if x > worst {
			worst = x
		}
	}
	return worst
}

// SharedStateTracer demonstrates §5.2 end-to-end: the tracer flags the
// tied embedding when a partition boundary separates it, and training
// without the mandated synchronization drifts from the reference.
func SharedStateTracer(x *Ctx) (*Table, error) {
	ref, err := engine.New(engine.Config{GPT: charGPT(), P: 1, D: 1, MicroBatch: 8,
		BatchSize: 32, LR: 3e-3, DataSeed: 35})
	if err != nil {
		return nil, err
	}
	ref.Losses(12)

	mk := func(disable bool) (*engine.Engine, error) {
		return engine.New(engine.Config{GPT: charGPT(), P: 3, D: 1, MicroBatch: 8,
			BatchSize: 32, LR: 3e-3, DataSeed: 35, DisableSharedSync: disable})
	}
	good, err := mk(false)
	if err != nil {
		return nil, err
	}
	good.Losses(12)
	bad, err := mk(true)
	if err != nil {
		return nil, err
	}
	bad.Losses(12)

	drift := func(e *engine.Engine) float64 {
		a, b := ref.Fingerprint(), e.Fingerprint()
		var worst float64
		for k, av := range a {
			bv := b[k]
			for i := range av {
				d := math.Abs(av[i] - bv[i])
				if d > worst {
					worst = d
				}
			}
		}
		return worst
	}
	t := &Table{
		Title:  "§5.2: tracer-mandated shared-state synchronization",
		Header: []string{"Run", "Tracer findings", "Max |Δparam| vs single-GPU reference"},
	}
	t.Add("3-stage pipeline, sync ON", fmt.Sprint(good.SharedParamNames()), fmt.Sprintf("%.2e", drift(good)))
	t.Add("3-stage pipeline, sync OFF", fmt.Sprint(bad.SharedParamNames()), fmt.Sprintf("%.2e", drift(bad)))
	t.Notes = append(t.Notes, "the tied embedding drifts without cross-partition allreduce — the bug class the tracer catches")
	return t, nil
}
