package experiments

import (
	"sync"
	"time"
)

// Report is the machine-readable record of one experiment execution,
// serialized by varuna-bench as BENCH_<id>.json so the repository's
// perf trajectory is tracked run over run.
type Report struct {
	// ID is the experiment's registry id.
	ID string `json:"id"`
	// Paper locates the reproduced result in the paper.
	Paper string `json:"paper"`
	// WallMS is the experiment's wall-clock runtime in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// OK reports whether the experiment completed without error.
	OK bool `json:"ok"`
	// Error holds the failure message when OK is false.
	Error string `json:"error,omitempty"`
	// Table is the rendered result (not serialized; the text artifact
	// is the table printed by the caller).
	Table *Table `json:"-"`
}

func runOne(e Entry, x *Ctx) Report {
	start := time.Now()
	t, err := e.Run(x)
	r := Report{
		ID:     e.ID,
		Paper:  e.Paper,
		WallMS: float64(time.Since(start).Microseconds()) / 1000,
		OK:     err == nil,
		Table:  t,
	}
	if err != nil {
		r.Error = err.Error()
	}
	return r
}

// RunOptions controls RunEntries execution.
type RunOptions struct {
	// Workers is the number of experiments run concurrently (values
	// below 1 mean 1).
	Workers int
	// Isolated gives every experiment its own Ctx, so results are
	// deterministic regardless of scheduling — at the price of
	// re-calibrating jobs a shared-Ctx run would reuse. Workers > 1
	// always isolates (a shared Ctx's testbed RNG is neither
	// goroutine-safe nor order-independent); Isolated with one worker
	// reproduces the parallel run's numbers serially, which is how a
	// 1-CPU machine gets the same semantics as everyone else.
	Isolated bool
}

// RunEntries executes the given experiments and returns their reports
// in entry order. onDone, when non-nil, receives each report in entry
// order as soon as it and all its predecessors have finished, so a
// serial run streams results as they complete. The sink is always
// invoked outside the runner's internal lock: a slow consumer delays
// the stream, never the experiments.
//
// workers <= 1 runs serially with one shared Ctx: calibrated jobs are
// reused across experiments. workers > 1 runs up to that many
// experiments concurrently, each with its own isolated Ctx (see
// RunOptions.Isolated for the determinism trade).
func RunEntries(entries []Entry, workers int, onDone func(Report)) []Report {
	return RunEntriesWith(entries, RunOptions{Workers: workers, Isolated: workers > 1}, onDone)
}

// RunEntriesWith is RunEntries with explicit isolation control.
func RunEntriesWith(entries []Entry, opts RunOptions, onDone func(Report)) []Report {
	reports := make([]Report, len(entries))
	if onDone == nil {
		onDone = func(Report) {}
	}
	workers := opts.Workers
	if workers > len(entries) {
		workers = len(entries)
	}
	if workers <= 1 {
		x := NewCtx()
		for i, e := range entries {
			if opts.Isolated {
				x = NewCtx()
			}
			reports[i] = runOne(e, x)
			onDone(reports[i])
		}
		return reports
	}

	var (
		mu       sync.Mutex
		done     = make([]bool, len(entries))
		frontier int
		next     int
		flushing bool
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(entries) {
					return
				}
				r := runOne(entries[i], NewCtx())
				mu.Lock()
				reports[i] = r
				done[i] = true
				// Flush the contiguous completed prefix in order. One
				// worker at a time drains it, releasing the lock around
				// each sink call so the other workers keep claiming and
				// running entries while a slow consumer prints; reports
				// completed mid-drain are picked up when the drainer
				// re-checks the frontier under the lock.
				if !flushing {
					flushing = true
					for frontier < len(entries) && done[frontier] {
						rep := reports[frontier]
						frontier++
						mu.Unlock()
						onDone(rep)
						mu.Lock()
					}
					flushing = false
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return reports
}
