package experiments

import (
	"fmt"
	"strings"

	"repro/internal/scenario"
	"repro/scenarios"
)

// MultiJob runs the committed multi-job scenario — the fleet arbiter's
// soak regime: three tenants with mixed objectives (a deadline job, a
// min-$/example job and a plain throughput job) share one volatile
// 24-hour spot market through the lease-based arbiter, with two
// scripted mass-reclaims forcing revocation cascades down the bid
// order and a mid-run price shock moving the $-surplus bids. The
// experiment errors if any arbiter or per-job invariant is violated,
// if no cascade ever fires (the mechanism under test never engaged),
// if a tenant is starved outright, or if the per-job tee-meter bills
// fail to sum to the shared pool bill.
func MultiJob(x *Ctx) (*Table, error) {
	data, err := scenarios.FS.ReadFile("multi-job.yaml")
	if err != nil {
		return nil, err
	}
	sc, err := scenario.Parse(data)
	if err != nil {
		return nil, err
	}
	res, err := scenario.RunFleet(sc)
	if err != nil {
		return nil, err
	}
	rep := res.Report

	t := &Table{
		Title:  fmt.Sprintf("Multi-job fleet: %s", sc.Description),
		Header: []string{"Job", "Objective", "Mini-batches", "Examples", "Morphs", "Preempts", "Dollars"},
	}
	for i, jr := range res.Jobs {
		s := jr.Stats
		t.Add(jr.Name, sc.Jobs[i].Objective,
			fmt.Sprint(s.MiniBatches),
			fmt.Sprintf("%.2fM", s.Examples/1e6),
			fmt.Sprint(s.Morphs),
			fmt.Sprint(s.Preemptions),
			fmt.Sprintf("$%.2f", rep.JobDollars[i]))
	}
	a := rep.Arbiter
	t.Notes = append(t.Notes,
		fmt.Sprintf("arbiter: %d pool events, %d leases (%d re-leases), %d revocations in %d cascades",
			a.PoolEvents, a.Leases, a.ReLeases, a.Revocations, a.Cascades),
		fmt.Sprintf("churn: %d market preemptions, %d scripted kills, %d voluntary releases",
			a.MarketPreempts, a.ScriptedKills, a.Releases),
		fmt.Sprintf("pool bill $%.2f; per-job bills sum to it exactly (tee meters)", rep.PoolDollars),
		"replays bit-identically; run it yourself: varuna-sim run multi-job")

	if len(rep.Violations) > 0 {
		return t, fmt.Errorf("multi-job: %d invariant violations: %s",
			len(rep.Violations), strings.Join(rep.Violations, "; "))
	}
	if a.Cascades < 1 {
		return t, fmt.Errorf("multi-job: no revocation cascade fired (%d revocations)", a.Revocations)
	}
	if a.Leases < len(res.Jobs) || a.ScriptedKills == 0 || a.MarketPreempts == 0 {
		return t, fmt.Errorf("multi-job: degenerate run: %d leases, %d scripted kills, %d market preemptions",
			a.Leases, a.ScriptedKills, a.MarketPreempts)
	}
	for i, jr := range res.Jobs {
		if jr.Stats.MiniBatches == 0 {
			return t, fmt.Errorf("multi-job: job %s was starved (0 mini-batches)", jr.Name)
		}
		if rep.JobDollars[i] <= 0 {
			return t, fmt.Errorf("multi-job: job %s billed nothing", jr.Name)
		}
	}
	return t, nil
}
