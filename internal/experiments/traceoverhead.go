package experiments

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/scenarios"
)

// TraceOverhead measures what the observability layer costs, pinning
// its two contracts:
//
//   - off is free: a run with nil observability hooks produces report
//     bytes identical to a plain run (0% divergence — the hot paths
//     are bit-identical, not just "close");
//   - on is cheap: full span recording plus the metrics registry adds
//     at most 5% to scenario wall time (median of alternating
//     traced/untraced executions of the same compiled inputs, which
//     cancels machine noise), and the exported trace is byte-stable
//     across replays.
//
// The experiment errors on either contract breaking, so the benchdiff
// gate catches an instrumentation regression the unit tests miss.
func TraceOverhead(x *Ctx) (*Table, error) {
	data, err := scenarios.FS.ReadFile("spot-dollars.yaml")
	if err != nil {
		return nil, err
	}

	run := func(observe bool) (simRep []byte, traceBytes []byte, spans int, wall time.Duration, err error) {
		sc, err := scenario.Parse(data)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		c, err := scenario.Compile(sc)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		var tr *obs.Tracer
		var met *obs.Metrics
		if observe {
			tr = obs.NewTracer()
			met = obs.NewMetrics()
		}
		c.Observe(tr, met)
		start := time.Now()
		res, err := c.Run("")
		wall = time.Since(start)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		rep, err := res.Report.JSON()
		if err != nil {
			return nil, nil, 0, 0, err
		}
		if observe {
			traceBytes, err = tr.ChromeTrace()
			if err != nil {
				return nil, nil, 0, 0, err
			}
			spans = tr.Len()
		}
		return rep, traceBytes, spans, wall, nil
	}

	// Plain baseline report (no Observe call at all).
	sc, err := scenario.Parse(data)
	if err != nil {
		return nil, err
	}
	plain, err := scenario.Run(sc, "")
	if err != nil {
		return nil, err
	}
	plainRep, err := plain.Report.JSON()
	if err != nil {
		return nil, err
	}

	const iters = 3
	var offWalls, onWalls []time.Duration
	var offRep, onRep, trace1, trace2 []byte
	var spans int
	for i := 0; i < iters; i++ {
		rep, _, _, w, err := run(false)
		if err != nil {
			return nil, err
		}
		offWalls = append(offWalls, w)
		offRep = rep
		rep, tb, n, w, err := run(true)
		if err != nil {
			return nil, err
		}
		onWalls = append(onWalls, w)
		onRep, spans = rep, n
		if trace1 == nil {
			trace1 = tb
		} else {
			trace2 = tb
		}
	}

	median := func(ds []time.Duration) time.Duration {
		s := append([]time.Duration(nil), ds...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[len(s)/2]
	}
	off, on := median(offWalls), median(onWalls)
	overhead := 100 * (float64(on) - float64(off)) / float64(off)

	t := &Table{
		Title:  "Tracing overhead: spot-dollars scenario, median of alternating runs",
		Header: []string{"Mode", "Median wall", "Spans", "Report bytes"},
	}
	t.Add("plain", "-", "0", fmt.Sprint(len(plainRep)))
	t.Add("observed-off", off.Round(time.Millisecond).String(), "0", fmt.Sprint(len(offRep)))
	t.Add("traced", on.Round(time.Millisecond).String(), fmt.Sprint(spans), fmt.Sprint(len(onRep)))
	t.Notes = append(t.Notes,
		fmt.Sprintf("traced overhead: %+.1f%% (gate: ≤5%%, %d spans recorded)", overhead, spans),
		"off-path divergence: 0 bytes (plain vs Observe(nil,nil) reports compared verbatim)",
		fmt.Sprintf("trace export: %d bytes, byte-stable across replays", len(trace1)))

	if !bytes.Equal(plainRep, offRep) {
		return t, fmt.Errorf("trace-overhead: observability off is not free: report bytes diverge")
	}
	if !bytes.Equal(trace1, trace2) {
		return t, fmt.Errorf("trace-overhead: exported trace is not byte-stable across replays")
	}
	if overhead > 5 {
		return t, fmt.Errorf("trace-overhead: tracing adds %.1f%% wall time (budget 5%%)", overhead)
	}
	return t, nil
}
