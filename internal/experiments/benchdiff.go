package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// BenchDelta is one experiment's comparison between a committed
// baseline BENCH_<id>.json report and the current run.
type BenchDelta struct {
	ID string
	// BaseMS and CurMS are the two wall-clock times; Ratio is
	// CurMS/BaseMS (0 when the baseline is missing).
	BaseMS, CurMS float64
	Ratio         float64
	// Status classifies the delta: "ok", "regression" (current run
	// slower than the tolerance allows), "failed" (current run has
	// ok=false), "missing" (present in the baseline, absent from the
	// current run) or "new" (no baseline yet — informational only).
	Status string
}

// Failed reports whether this delta should fail a CI gate.
func (d BenchDelta) Failed() bool {
	return d.Status == "regression" || d.Status == "failed" || d.Status == "missing"
}

// DiffReports compares a current set of timing reports against a
// committed baseline — the CI regression gate over the BENCH_*.json
// perf trajectory. An experiment regresses when
//
//	cur.wall_ms > tolerance·base.wall_ms + floorMS
//
// The multiplicative tolerance absorbs machine-to-machine speed
// differences; the additive floor keeps sub-millisecond experiments
// from tripping the gate on scheduling noise. Experiments present only
// in the current run are reported as "new" and never fail (committing
// the refreshed baseline adopts them). Deltas come back sorted by id;
// failures counts the gate-failing ones.
func DiffReports(base, cur []Report, tolerance, floorMS float64) (deltas []BenchDelta, failures int) {
	curByID := make(map[string]Report, len(cur))
	for _, r := range cur {
		curByID[r.ID] = r
	}
	seen := make(map[string]bool, len(base))
	for _, b := range base {
		seen[b.ID] = true
		d := BenchDelta{ID: b.ID, BaseMS: b.WallMS}
		c, ok := curByID[b.ID]
		switch {
		case !ok:
			d.Status = "missing"
		case !c.OK:
			d.Status = "failed"
			d.CurMS = c.WallMS
		default:
			d.CurMS = c.WallMS
			if b.WallMS > 0 {
				d.Ratio = c.WallMS / b.WallMS
			}
			d.Status = "ok"
			if c.WallMS > tolerance*b.WallMS+floorMS {
				d.Status = "regression"
			}
		}
		deltas = append(deltas, d)
	}
	for _, c := range cur {
		if seen[c.ID] {
			continue
		}
		d := BenchDelta{ID: c.ID, CurMS: c.WallMS, Status: "new"}
		if !c.OK {
			d.Status = "failed"
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].ID < deltas[j].ID })
	for _, d := range deltas {
		if d.Failed() {
			failures++
		}
	}
	return deltas, failures
}

// RenderDeltas formats a diff as an aligned text table.
func RenderDeltas(deltas []BenchDelta) string {
	t := &Table{
		Title:  "BENCH wall_ms diff vs baseline",
		Header: []string{"Experiment", "Base ms", "Current ms", "Ratio", "Status"},
	}
	for _, d := range deltas {
		ratio := "-"
		if d.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", d.Ratio)
		}
		t.Add(d.ID, f1(d.BaseMS), f1(d.CurMS), ratio, d.Status)
	}
	return strings.TrimRight(t.String(), "\n")
}
