package experiments

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"repro/internal/scenario"
	"repro/scenarios"
)

// TelemetryOverhead measures what continuous series sampling costs,
// pinning the telemetry layer's two contracts:
//
//   - off is free: a run without EnableTelemetry produces report bytes
//     identical to a plain run (the sampling hooks in the manager's
//     hot paths are bit-identical no-ops when the series set is nil);
//   - on is cheap: cadence sampling plus on-event samples and online
//     SLO aggregation adds at most 5% to scenario wall time (median of
//     alternating on/off executions, cancelling machine noise), and
//     the series CSV export is byte-stable across replays.
//
// The experiment errors on either contract breaking, so the benchdiff
// gate catches a telemetry regression the unit tests miss.
func TelemetryOverhead(x *Ctx) (*Table, error) {
	data, err := scenarios.FS.ReadFile("spot-dollars.yaml")
	if err != nil {
		return nil, err
	}

	run := func(sample bool) (rep []byte, csv []byte, points int, wall time.Duration, err error) {
		sc, err := scenario.Parse(data)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		c, err := scenario.Compile(sc)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		if sample {
			c.EnableTelemetry()
		}
		start := time.Now()
		res, err := c.Run("")
		wall = time.Since(start)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		rep, err = res.Report.JSON()
		if err != nil {
			return nil, nil, 0, 0, err
		}
		if sample {
			csv = c.Series.CSV()
			for _, n := range c.Series.Names() {
				points += c.Series.Len(n)
			}
		}
		return rep, csv, points, wall, nil
	}

	// Plain baseline report (no telemetry call at all).
	sc, err := scenario.Parse(data)
	if err != nil {
		return nil, err
	}
	plain, err := scenario.Run(sc, "")
	if err != nil {
		return nil, err
	}
	plainRep, err := plain.Report.JSON()
	if err != nil {
		return nil, err
	}

	// One discarded warmup pair, then the timed iterations: the first
	// executions pay allocator and cache warmup that would otherwise
	// land asymmetrically on the off side and fake an overhead.
	if _, _, _, _, err := run(false); err != nil {
		return nil, err
	}
	if _, _, _, _, err := run(true); err != nil {
		return nil, err
	}

	const iters = 5
	var offWalls, onWalls []time.Duration
	var offRep, onRep, csv1, csv2 []byte
	var points int
	for i := 0; i < iters; i++ {
		rep, _, _, w, err := run(false)
		if err != nil {
			return nil, err
		}
		offWalls = append(offWalls, w)
		offRep = rep
		rep, csv, n, w, err := run(true)
		if err != nil {
			return nil, err
		}
		onWalls = append(onWalls, w)
		onRep, points = rep, n
		if csv1 == nil {
			csv1 = csv
		} else {
			csv2 = csv
		}
	}

	median := func(ds []time.Duration) time.Duration {
		s := append([]time.Duration(nil), ds...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[len(s)/2]
	}
	off, on := median(offWalls), median(onWalls)
	overhead := 100 * (float64(on) - float64(off)) / float64(off)

	t := &Table{
		Title:  "Telemetry overhead: spot-dollars scenario, median of alternating runs",
		Header: []string{"Mode", "Median wall", "Points", "Report bytes"},
	}
	t.Add("plain", "-", "0", fmt.Sprint(len(plainRep)))
	t.Add("sampling-off", off.Round(time.Millisecond).String(), "0", fmt.Sprint(len(offRep)))
	t.Add("sampling-on", on.Round(time.Millisecond).String(), fmt.Sprint(points), fmt.Sprint(len(onRep)))
	t.Notes = append(t.Notes,
		fmt.Sprintf("sampling overhead: %+.1f%% (gate: ≤5%%, %d points recorded)", overhead, points),
		"off-path divergence: 0 bytes (plain vs sampling-off reports compared verbatim)",
		fmt.Sprintf("series export: %d bytes, byte-stable across replays", len(csv1)))

	if !bytes.Equal(plainRep, offRep) {
		return t, fmt.Errorf("telemetry-overhead: sampling off is not free: report bytes diverge")
	}
	if !bytes.Equal(csv1, csv2) {
		return t, fmt.Errorf("telemetry-overhead: series CSV is not byte-stable across replays")
	}
	if overhead > 5 {
		return t, fmt.Errorf("telemetry-overhead: sampling adds %.1f%% wall time (budget 5%%)", overhead)
	}
	return t, nil
}
