package experiments

import (
	"fmt"
	"strings"

	"repro/internal/autoconfig"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/manager"
	"repro/internal/model"
	"repro/internal/simtime"
	"repro/internal/spot"
	"repro/internal/testbed"
)

// Fig3Availability reproduces Figure 3: aggregate GPU availability when
// low-priority 1-GPU and 4-GPU VMs are requested/released over 16 hours.
func Fig3Availability(x *Ctx) (*Table, error) {
	horizon, probe := 16*simtime.Hour, 5*simtime.Minute
	one := spot.AvailabilityTrace(spot.NewMarket(1, 200, 42), 300, horizon, probe)
	four := spot.AvailabilityTrace(spot.NewMarket(4, 200, 42), 300, horizon, probe)

	t := &Table{
		Title:  "Figure 3: aggregate spot GPU availability over 16 hours",
		Header: []string{"VM size", "Mean GPUs", "Min", "Max"},
	}
	stats := func(tr []spot.Trace) (mean float64, lo, hi int) {
		lo, hi = tr[0].GPUs, tr[0].GPUs
		var sum float64
		for _, s := range tr {
			sum += float64(s.GPUs)
			if s.GPUs < lo {
				lo = s.GPUs
			}
			if s.GPUs > hi {
				hi = s.GPUs
			}
		}
		return sum / float64(len(tr)), lo, hi
	}
	m1, lo1, hi1 := stats(one)
	m4, lo4, hi4 := stats(four)
	t.Add("1-GPU VMs", f1(m1), fmt.Sprint(lo1), fmt.Sprint(hi1))
	t.Add("4-GPU VMs", f1(m4), fmt.Sprint(lo4), fmt.Sprint(hi4))
	t.Figure = sparkline("1-GPU", one, 300) + sparkline("4-GPU", four, 300)
	t.Notes = append(t.Notes, "Observation 4: 1-GPU VMs deliver materially more aggregate capacity")
	return t, nil
}

// sparkline renders an availability trace as a coarse text chart.
func sparkline(label string, tr []spot.Trace, maxGPUs int) string {
	const cols = 96
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s ", label)
	for c := 0; c < cols; c++ {
		idx := c * len(tr) / cols
		frac := float64(tr[idx].GPUs) / float64(maxGPUs)
		g := int(frac * float64(len(glyphs)-1))
		if g >= len(glyphs) {
			g = len(glyphs) - 1
		}
		if g < 0 {
			g = 0
		}
		b.WriteRune(glyphs[g])
	}
	b.WriteString("\n")
	return b.String()
}

// Fig8Morphing reproduces Figure 8: the 2.5B model training on a
// volatile 1-GPU spot fleet for 60 hours, with the manager morphing
// configurations as VMs come and go.
func Fig8Morphing(x *Ctx) (*Table, error) {
	spec := model.GPT2XL2B()
	cluster := hw.SpotCluster(hw.NC6v3, 150)
	job, err := x.sharedJob(spec, cluster, 8192, 54)
	if err != nil {
		return nil, err
	}
	mk := spot.NewMarket(1, 120, 55)
	points, stats, err := job.RunOnSpotMarket(mk, 150, 60*simtime.Hour, 56)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 8: 60-hour dynamic timeline, GPT-2 2.5B on spot 1-GPU VMs",
		Header: []string{"Time", "GPUs", "Config", "Total ex/s", "Ex/s/GPU", "Event"},
	}
	var exMin, exMax, perMin, perMax float64
	shown := 0
	for _, p := range points {
		if p.ExPerSec <= 0 || p.Config.GPUsUsed == 0 {
			continue
		}
		per := p.ExPerSec / float64(p.Config.GPUsUsed)
		if exMin == 0 || p.ExPerSec < exMin {
			exMin = p.ExPerSec
		}
		if p.ExPerSec > exMax {
			exMax = p.ExPerSec
		}
		if perMin == 0 || per < perMin {
			perMin = per
		}
		if per > perMax {
			perMax = per
		}
		if p.Event == "morph" || p.Event == "p" || shown < 4 {
			t.Add(fmt.Sprintf("%.1fh", p.At.Hours()), fmt.Sprint(p.GPUs),
				fmt.Sprintf("%dx%d", p.Config.P, p.Config.D),
				f1(p.ExPerSec), f2(per), p.Event)
			shown++
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("total throughput swings %.1fx while per-GPU throughput varies %.0f%% (paper: 5x vs 15%%)",
			exMax/exMin, 100*(perMax/perMin-1)),
		fmt.Sprintf("stats: %d mini-batches, %d morphs, %d replacements, %d preemptions, %d checkpoints, %d lost mini-batches, downtime %v",
			stats.MiniBatches, stats.Morphs, stats.Replacements, stats.Preemptions, stats.Checkpoints, stats.LostMiniBatches, stats.Downtime))
	return t, nil
}

// OneVsFourGPUVMs reproduces the §7.2 comparison: Varuna trains at
// nearly the same per-GPU rate on 1-GPU VMs (all traffic over
// ethernet) as on 4-GPU VMs, enabling Observation 4's capacity win.
func OneVsFourGPUVMs(x *Ctx) (*Table, error) {
	spec := model.GPT2XL2B()
	t := &Table{
		Title:  "§7.2: 1-GPU vs 4-GPU VMs, GPT-2 2.5B on 72 GPUs (9x8)",
		Header: []string{"VM size", "Ex/s/GPU"},
	}
	var vals []float64
	for _, vm := range []hw.VMType{hw.NC6v3, hw.NC24v3} {
		cluster := hw.SpotCluster(vm, 72)
		job, err := x.sharedJob(spec, cluster, 8192, 57)
		if err != nil {
			return nil, err
		}
		_, perGPU, err := varunaAt(job, 9, 8)
		if err != nil {
			return nil, err
		}
		vals = append(vals, perGPU)
		t.Add(vm.Name, f3(perGPU))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("gap: %.1f%% (paper: ~2%%, 1.77 vs 1.81 ex/s/GPU)", 100*(vals[1]/vals[0]-1)))
	return t, nil
}

// Table3PipelineDepth reproduces Table 3: sensitivity of the 2.5B
// model's throughput to pipeline depth at 36 and 100 GPUs.
func Table3PipelineDepth(x *Ctx) (*Table, error) {
	spec := model.GPT2XL2B()
	t := &Table{
		Title:  "Table 3: sensitivity to pipeline depth (GPT-2 2.5B)",
		Header: []string{"Num GPUs", "Config (PxD)", "Total ex/s", "Ex/s/GPU"},
	}
	for _, row := range []struct{ g, p, d int }{
		{36, 6, 6}, {36, 9, 4}, {36, 18, 2},
		{100, 6, 16}, {100, 9, 11}, {100, 18, 5},
	} {
		cluster := hw.SpotCluster(hw.NC6v3, row.g)
		job, err := x.sharedJob(spec, cluster, 8192, 58)
		if err != nil {
			return nil, err
		}
		c, err := job.Configure(row.p, row.d)
		if err != nil {
			return nil, err
		}
		ms, err := job.Measure(c)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprint(row.g), fmt.Sprintf("%dx%d", row.p, row.d),
			f2(ms.ExPerSec()), f2(ms.ExPerSec()/float64(c.GPUsUsed)))
	}
	t.Notes = append(t.Notes,
		"paper: 36 GPUs → 66.6/65.9/50.0 total ex/s; 100 GPUs → 155.5/164.3/99.0")
	return t, nil
}

// AblationStragglers measures the fail-stutter handling of §4.6: a
// fleet with one 35%-slow replica, with and without manager exclusion.
func AblationStragglers(x *Ctx) (*Table, error) {
	spec := model.GPT2XL2B()
	cluster := hw.SpotCluster(hw.NC6v3, 80)
	job, err := x.sharedJob(spec, cluster, 8192, 59)
	if err != nil {
		return nil, err
	}
	c, err := job.Configure(9, 8)
	if err != nil {
		return nil, err
	}
	tb := job.Testbed()
	healthy, err := tb.MeasureMiniBatch(jobCfg(job, c, nil))
	if err != nil {
		return nil, err
	}
	slowed, err := tb.MeasureMiniBatch(jobCfg(job, c, map[int]float64{3: 1.35}))
	if err != nil {
		return nil, err
	}
	// Exclusion: the manager drops the slow VM's pipeline; with 80
	// GPUs and 9x8=72 used there is a spare replica slot, so the job
	// keeps 9x8 on healthy VMs.
	excluded, err := tb.MeasureMiniBatch(jobCfg(job, c, nil))
	if err != nil {
		return nil, err
	}
	hb := map[int]float64{}
	for i := 0; i < 8; i++ {
		hb[i] = 1.0
	}
	hb[3] = 1.35
	flagged := manager.DetectStragglers(hb, 1.2)
	t := &Table{
		Title:  "Ablation: fail-stutter (straggler) handling, 2.5B at 9x8",
		Header: []string{"Scenario", "Mini-batch time", "Ex/s/GPU"},
	}
	per := func(ms simtime.Duration, ex int) string {
		return f2(float64(ex) / ms.Seconds() / float64(c.GPUsUsed))
	}
	t.Add("healthy fleet", healthy.MiniBatchTime.String(), per(healthy.MiniBatchTime, healthy.Examples))
	t.Add("one 35%-slow replica, kept", slowed.MiniBatchTime.String(), per(slowed.MiniBatchTime, slowed.Examples))
	t.Add("slow VM excluded by manager", excluded.MiniBatchTime.String(), per(excluded.MiniBatchTime, excluded.Examples))
	t.Notes = append(t.Notes, fmt.Sprintf("detector flagged replicas %v from heartbeat times", flagged))
	return t, nil
}

func jobCfg(job *core.Job, c autoconfig.Choice, slow map[int]float64) testbed.JobConfig {
	return testbed.JobConfig{
		Spec:      job.Spec,
		Stages:    c.Stages,
		M:         c.M,
		Nm:        c.Nm,
		D:         c.D,
		ExtraSlow: slow,
	}
}
