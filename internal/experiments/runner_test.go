package experiments

import (
	"fmt"
	"testing"
)

// lightEntries picks experiments that run in well under a second, so
// the runner paths get exercised without testbed calibration cost.
func lightEntries(t *testing.T) []Entry {
	t.Helper()
	var out []Entry
	for _, id := range []string{"fig3", "fig4"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		out = append(out, e)
	}
	return out
}

func TestRunEntriesSerialStreamsInOrder(t *testing.T) {
	entries := lightEntries(t)
	var order []string
	reports := RunEntries(entries, 1, func(r Report) { order = append(order, r.ID) })
	if len(reports) != len(entries) {
		t.Fatalf("%d reports for %d entries", len(reports), len(entries))
	}
	for i, e := range entries {
		if order[i] != e.ID || reports[i].ID != e.ID {
			t.Fatalf("order %v, want registry order", order)
		}
		if !reports[i].OK || reports[i].Table == nil {
			t.Fatalf("%s failed: %s", e.ID, reports[i].Error)
		}
		if reports[i].WallMS < 0 {
			t.Fatalf("%s: negative wall time", e.ID)
		}
	}
}

func TestRunEntriesParallelMatchesSerial(t *testing.T) {
	entries := lightEntries(t)
	serial := RunEntries(entries, 1, nil)
	var order []string
	parallel := RunEntries(entries, 4, func(r Report) { order = append(order, r.ID) })
	for i := range entries {
		if order[i] != entries[i].ID {
			t.Fatalf("parallel onDone order %v, want registry order", order)
		}
		if !parallel[i].OK {
			t.Fatalf("%s failed in parallel: %s", parallel[i].ID, parallel[i].Error)
		}
		// fig3/fig4 are pure simulation: isolated contexts must yield
		// the exact same tables as the serial shared context.
		if parallel[i].Table.String() != serial[i].Table.String() {
			t.Fatalf("%s diverged between serial and parallel runs", entries[i].ID)
		}
	}
}

func TestRunEntriesReportsErrors(t *testing.T) {
	entries := []Entry{{
		ID:    "boom",
		Paper: "none",
		Run:   func(*Ctx) (*Table, error) { return nil, fmt.Errorf("kaput") },
	}}
	reports := RunEntries(entries, 2, nil)
	if reports[0].OK || reports[0].Error != "kaput" {
		t.Fatalf("error not reported: %+v", reports[0])
	}
}
