package experiments

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// lightEntries picks experiments that run in well under a second, so
// the runner paths get exercised without testbed calibration cost.
func lightEntries(t *testing.T) []Entry {
	t.Helper()
	var out []Entry
	for _, id := range []string{"fig3", "fig4"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		out = append(out, e)
	}
	return out
}

func TestRunEntriesSerialStreamsInOrder(t *testing.T) {
	entries := lightEntries(t)
	var order []string
	reports := RunEntries(entries, 1, func(r Report) { order = append(order, r.ID) })
	if len(reports) != len(entries) {
		t.Fatalf("%d reports for %d entries", len(reports), len(entries))
	}
	for i, e := range entries {
		if order[i] != e.ID || reports[i].ID != e.ID {
			t.Fatalf("order %v, want registry order", order)
		}
		if !reports[i].OK || reports[i].Table == nil {
			t.Fatalf("%s failed: %s", e.ID, reports[i].Error)
		}
		if reports[i].WallMS < 0 {
			t.Fatalf("%s: negative wall time", e.ID)
		}
	}
}

func TestRunEntriesParallelMatchesSerial(t *testing.T) {
	entries := lightEntries(t)
	serial := RunEntries(entries, 1, nil)
	var order []string
	parallel := RunEntries(entries, 4, func(r Report) { order = append(order, r.ID) })
	for i := range entries {
		if order[i] != entries[i].ID {
			t.Fatalf("parallel onDone order %v, want registry order", order)
		}
		if !parallel[i].OK {
			t.Fatalf("%s failed in parallel: %s", parallel[i].ID, parallel[i].Error)
		}
		// fig3/fig4 are pure simulation: isolated contexts must yield
		// the exact same tables as the serial shared context.
		if parallel[i].Table.String() != serial[i].Table.String() {
			t.Fatalf("%s diverged between serial and parallel runs", entries[i].ID)
		}
	}
}

// TestRunEntriesSlowSinkDoesNotSerialize proves the onDone sink runs
// outside the runner's lock: while one worker is stuck in a slow sink
// call, the others must still be able to claim and start new entries.
// Before the fix the sink was invoked with the mutex held, so no
// entry could start during a sink call (claiming an index needs the
// lock) and a slow stdout consumer serialized the whole parallel run.
func TestRunEntriesSlowSinkDoesNotSerialize(t *testing.T) {
	const n = 8
	var (
		mu        sync.Mutex
		sinkSpans [][2]time.Time
		runStarts []time.Time
	)
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{
			ID:    fmt.Sprintf("e%d", i),
			Paper: "none",
			Run: func(*Ctx) (*Table, error) {
				mu.Lock()
				runStarts = append(runStarts, time.Now())
				mu.Unlock()
				time.Sleep(5 * time.Millisecond)
				return &Table{Title: "t"}, nil
			},
		}
	}
	slowSink := func(Report) {
		start := time.Now()
		time.Sleep(50 * time.Millisecond)
		mu.Lock()
		sinkSpans = append(sinkSpans, [2]time.Time{start, time.Now()})
		mu.Unlock()
	}
	reports := RunEntries(entries, 2, slowSink)
	for _, r := range reports {
		if !r.OK {
			t.Fatalf("%s failed: %s", r.ID, r.Error)
		}
	}
	// At least one entry must have STARTED while a sink call was in
	// flight (with a 5ms margin against scheduling races at the window
	// edges). With the sink under the lock this is impossible.
	margin := 5 * time.Millisecond
	overlaps := 0
	for _, start := range runStarts {
		for _, span := range sinkSpans {
			if start.After(span[0].Add(margin)) && start.Before(span[1].Add(-margin)) {
				overlaps++
			}
		}
	}
	if overlaps == 0 {
		t.Fatalf("no entry started during any of the %d slow sink calls: the sink serialized the run", len(sinkSpans))
	}
}

// TestRunEntriesWithIsolation pins the Ctx-sharing semantics the
// -parallel flag relies on: serial shared mode hands every entry the
// same Ctx, while Isolated mode — even with one worker, as on a 1-CPU
// machine resolving -parallel 0 — hands each entry its own.
func TestRunEntriesWithIsolation(t *testing.T) {
	seen := make(map[*Ctx]int)
	var mu sync.Mutex
	entries := []Entry{}
	for i := 0; i < 3; i++ {
		entries = append(entries, Entry{
			ID:    fmt.Sprintf("ctx%d", i),
			Paper: "none",
			Run: func(x *Ctx) (*Table, error) {
				mu.Lock()
				seen[x]++
				mu.Unlock()
				return &Table{Title: "t"}, nil
			},
		})
	}
	RunEntries(entries, 1, nil)
	if len(seen) != 1 {
		t.Fatalf("serial shared mode used %d contexts, want 1", len(seen))
	}
	seen = make(map[*Ctx]int)
	RunEntriesWith(entries, RunOptions{Workers: 1, Isolated: true}, nil)
	if len(seen) != len(entries) {
		t.Fatalf("isolated serial mode used %d contexts, want %d", len(seen), len(entries))
	}
	seen = make(map[*Ctx]int)
	RunEntriesWith(entries, RunOptions{Workers: 4, Isolated: true}, nil)
	if len(seen) != len(entries) {
		t.Fatalf("parallel mode used %d contexts, want %d", len(seen), len(entries))
	}
}

func TestRunEntriesReportsErrors(t *testing.T) {
	entries := []Entry{{
		ID:    "boom",
		Paper: "none",
		Run:   func(*Ctx) (*Table, error) { return nil, fmt.Errorf("kaput") },
	}}
	reports := RunEntries(entries, 2, nil)
	if reports[0].OK || reports[0].Error != "kaput" {
		t.Fatalf("error not reported: %+v", reports[0])
	}
}
