package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// testCtx is shared across the package tests, mirroring the job reuse
// of one serial varuna-bench invocation.
var testCtx = NewCtx()

// cell parses a numeric table cell ("1.23", "5.8x", "+9%").
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(strings.TrimPrefix(s, "+"), "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestTableString(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bbbb"}, Notes: []string{"n"}}
	tb.Add("1", "2")
	out := tb.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "note: n") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) < 20 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Run == nil || e.Paper == "" {
			t.Fatalf("malformed entry %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("fig4"); !ok {
		t.Fatal("ByID(fig4) missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID must reject unknown ids")
	}
}

func TestMultiJobExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet soak")
	}
	tb, err := MultiJob(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 3 {
		t.Fatalf("want >=3 tenant rows, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if mb := cell(t, row[2]); mb <= 0 {
			t.Fatalf("tenant %s shows no training: %v", row[0], row)
		}
	}
}

func TestFig4Schedules(t *testing.T) {
	tb, err := Fig4Schedules(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	varuna := cell(t, tb.Rows[0][1])
	gpipe := cell(t, tb.Rows[1][1])
	if varuna >= gpipe {
		t.Fatalf("Varuna makespan %v must beat GPipe %v", varuna, gpipe)
	}
	// Figure 4's strips show Varuna's last stage alternating F/B.
	if !strings.Contains(tb.Figure, "F1 B1 F2 B2") {
		t.Fatalf("missing alternating last stage:\n%s", tb.Figure)
	}
	// And Varuna needs fewer recomputes (none on the last stage).
	if cell(t, tb.Rows[0][2]) >= cell(t, tb.Rows[1][2]) {
		t.Fatal("Varuna must recompute less than GPipe")
	}
}

func TestFig3Availability(t *testing.T) {
	tb, err := Fig3Availability(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	one := cell(t, tb.Rows[0][1])
	four := cell(t, tb.Rows[1][1])
	if one <= four {
		t.Fatalf("1-GPU mean %v must exceed 4-GPU mean %v", one, four)
	}
}

func TestFig9Convergence(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	tb, err := Fig9Convergence(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	base := cell(t, tb.Rows[0][3])
	big := cell(t, tb.Rows[1][3])
	morph := cell(t, tb.Rows[2][3])
	if big > base*1.25 {
		t.Fatalf("16x batch held-out loss %v too far above baseline %v", big, base)
	}
	if morph > big*1.01 || morph < big*0.99 {
		t.Fatalf("morphing changed the outcome: %v vs %v", morph, big)
	}
}

func TestFig10TwoBW(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	tb, err := Fig10TwoBW(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	syncFinal := cell(t, tb.Rows[0][1])
	staleFinal := cell(t, tb.Rows[1][1])
	if !(staleFinal != staleFinal /* NaN */ || staleFinal > syncFinal*1.5) {
		t.Fatalf("stale updates should degrade: sync %v stale %v", syncFinal, staleFinal)
	}
}

func TestSharedStateTracer(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	tb, err := SharedStateTracer(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.Rows[0][1], "embedding.W") {
		t.Fatalf("tracer did not flag tied embedding: %v", tb.Rows[0])
	}
	goodDrift := cell(t, tb.Rows[0][2])
	badDrift := cell(t, tb.Rows[1][2])
	if badDrift < 1e3*goodDrift {
		t.Fatalf("unsynced drift %v should dwarf synced %v", badDrift, goodDrift)
	}
}

func TestTable6Pipelines(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy testbed experiment")
	}
	tb, err := Table6Pipelines(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		varuna := cell(t, row[1])
		deepspeed := cell(t, row[2])
		if varuna <= deepspeed {
			t.Errorf("%s: Varuna %v must beat DeepSpeed %v", row[0], varuna, deepspeed)
		}
		if row[4] != "OOM" {
			t.Errorf("%s: PipeDream must OOM, got %v", row[0], row[4])
		}
	}
}

func TestTable7SimAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy testbed experiment")
	}
	tb, err := Table7SimAccuracy(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Fatalf("%d rows, want 12", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if e := cell(t, row[4]); e > 12 {
			t.Errorf("%s %s: simulator error %.1f%% too high", row[0], row[1], e)
		}
	}
}

func TestFig5Ratio(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy testbed experiment")
	}
	tb, err := Fig5GPT8B(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		ratio := cell(t, row[5])
		if ratio < 5 {
			t.Errorf("G=%s: Varuna/Megatron commodity ratio %.1f, expected order-of-magnitude (paper 18x)", row[0], ratio)
		}
		varunaLP := cell(t, row[1])
		megHC := cell(t, row[4])
		if varunaLP < megHC*0.8 {
			t.Errorf("G=%s: Varuna(LP) %.3f should rival Megatron(HC) %.3f", row[0], varunaLP, megHC)
		}
	}
}

func TestPlannerCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy sweep experiment")
	}
	tb, err := PlannerCaching(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	// The cached sweep must rebuild nothing.
	if tb.Rows[1][3] != "0" || tb.Rows[1][4] != "0" {
		t.Fatalf("cached sweep recomputed: %v", tb.Rows[1])
	}
	if !strings.Contains(strings.Join(tb.Notes, "\n"), "bit-identical to first: true") {
		t.Fatalf("cached sweep not bit-identical:\n%v", tb.Notes)
	}
	// Wall-clock acceptance: the cached sweep must be at least 2x
	// faster (in practice it is orders of magnitude; 2x keeps the
	// assertion robust on loaded CI machines).
	cold := cell(t, tb.Rows[0][1])
	warm := cell(t, tb.Rows[1][1])
	if warm*2 > cold {
		t.Fatalf("cached sweep %.1fms not 2x faster than cold %.1fms", warm, cold)
	}
}
