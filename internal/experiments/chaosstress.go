package experiments

import (
	"fmt"
	"strings"

	"repro/internal/scenario"
	"repro/scenarios"
)

// ChaosStress runs the committed chaos-stress scenario — the seeded
// soak regime behind the scenario DSL: a 1200-GPU-target spot fleet
// churning through 1000+ VM allocations over twelve hours while the
// chaos generator layers Poisson preemptions, correlated
// mass-preemption bursts, sub-threshold stragglers, fail-stutter
// degradation, network-degradation episodes and price shocks on top
// of the market's own dynamics. The experiment errors if the run
// breaks any robustness invariant (lost progress, double billing, a
// clock running backwards), if the fleet never reaches soak scale, or
// if chaos starves training entirely — the acceptance gate that the
// manager stays internally consistent under sustained abuse.
func ChaosStress(x *Ctx) (*Table, error) {
	data, err := scenarios.FS.ReadFile("chaos-stress.yaml")
	if err != nil {
		return nil, err
	}
	sc, err := scenario.Parse(data)
	if err != nil {
		return nil, err
	}
	res, err := scenario.Run(sc, "")
	if err != nil {
		return nil, err
	}
	rep, s := res.Report, res.Stats

	t := &Table{
		Title:  fmt.Sprintf("Chaos-stress: %s", sc.Description),
		Header: []string{"Metric", "Value"},
	}
	t.Add("horizon", fmt.Sprintf("%.1fh", rep.HorizonHours))
	t.Add("market events", fmt.Sprint(rep.MarketEvents))
	t.Add("scripted events", fmt.Sprintf("%d (%d skipped)", rep.ScriptEvents, rep.SkippedEvents))
	t.Add("VM allocations", fmt.Sprint(s.Allocations))
	t.Add("preemptions", fmt.Sprint(s.Preemptions))
	t.Add("morphs / holds", fmt.Sprintf("%d / %d", s.Morphs, s.Holds))
	t.Add("mini-batches", fmt.Sprintf("%d (%.2fM examples, %d lost)", s.MiniBatches, s.Examples/1e6, s.LostMiniBatches))
	t.Add("stragglers excluded", fmt.Sprint(s.StragglersExcluded))
	t.Add("downtime", fmt.Sprintf("%v (%.1f%% of horizon)", s.Downtime, 100*rep.DowntimeFrac))
	t.Add("recovery", fmt.Sprintf("%d acked, mean %.0fs, max %.0fs", rep.Recovery.Acknowledged, rep.Recovery.MeanSeconds, rep.Recovery.MaxSeconds))
	t.Add("dollars", fmt.Sprintf("$%.0f = $%.0f compute + $%.0f reconfig + $%.0f idle",
		s.DollarsSpent, s.DollarsCompute, s.DollarsReconfig, s.DollarsIdle))
	t.Add("invariants", fmt.Sprintf("%d violations", len(rep.Violations)))
	t.Notes = append(t.Notes,
		"expanded from scenarios/chaos-stress.yaml by the seeded chaos generator; replays bit-identically",
		"run it yourself: varuna-sim run chaos-stress")

	if len(rep.Violations) > 0 {
		return t, fmt.Errorf("chaos-stress: %d invariant violations: %s",
			len(rep.Violations), strings.Join(rep.Violations, "; "))
	}
	if s.Allocations < 1000 {
		return t, fmt.Errorf("chaos-stress: soak never reached scale: %d allocations < 1000", s.Allocations)
	}
	if s.Preemptions < 100 || s.MiniBatches == 0 || s.DollarsSpent <= 0 {
		return t, fmt.Errorf("chaos-stress: degenerate run: %d preemptions, %d mini-batches, $%.2f",
			s.Preemptions, s.MiniBatches, s.DollarsSpent)
	}
	return t, nil
}
