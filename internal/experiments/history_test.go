package experiments

import (
	"path/filepath"
	"testing"
)

func TestNewHistoryEntrySummarizes(t *testing.T) {
	e := NewHistoryEntry([]Report{
		{ID: "a", WallMS: 100, OK: true},
		{ID: "b", WallMS: 300, OK: true},
		{ID: "c", WallMS: 200, OK: true},
		{ID: "bad", WallMS: 9999, OK: false}, // excluded
	})
	if len(e.Runs) != 3 || e.Runs["b"] != 300 {
		t.Fatalf("runs %v", e.Runs)
	}
	if e.P50 != 200 || e.Max != 300 || e.P99 != 300 {
		t.Fatalf("summary %+v", e)
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	if hist, err := LoadHistory(path); err != nil || hist != nil {
		t.Fatalf("missing file: hist=%v err=%v", hist, err)
	}
	e1 := NewHistoryEntry([]Report{{ID: "a", WallMS: 100, OK: true}})
	e2 := NewHistoryEntry([]Report{{ID: "a", WallMS: 120, OK: true}})
	for _, e := range []HistoryEntry{e1, e2} {
		if err := AppendHistory(path, e); err != nil {
			t.Fatal(err)
		}
	}
	hist, err := LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || hist[0].Runs["a"] != 100 || hist[1].Runs["a"] != 120 {
		t.Fatalf("history %+v", hist)
	}
}

func TestDriftFlagsSlowCreep(t *testing.T) {
	var hist []HistoryEntry
	for i := 0; i < 5; i++ {
		hist = append(hist, HistoryEntry{Runs: map[string]float64{"a": 100, "b": 50}})
	}
	cur := HistoryEntry{Runs: map[string]float64{"a": 250, "b": 55}}
	msgs := Drift(hist, cur, 2.0)
	if len(msgs) != 1 {
		t.Fatalf("drift %v", msgs)
	}
	if msgs[0][:2] != "a:" {
		t.Fatalf("drift flagged wrong experiment: %v", msgs)
	}
}

func TestDriftSkipsThinHistory(t *testing.T) {
	hist := []HistoryEntry{
		{Runs: map[string]float64{"a": 100}},
		{Runs: map[string]float64{"a": 100}},
	}
	cur := HistoryEntry{Runs: map[string]float64{"a": 1000}}
	if msgs := Drift(hist, cur, 2.0); msgs != nil {
		t.Fatalf("2-sample history should not flag: %v", msgs)
	}
}
