package experiments

import (
	"fmt"
	"reflect"
	"time"

	"repro/internal/autoconfig"
	"repro/internal/hw"
	"repro/internal/model"
)

// PlannerCaching measures the morph-decision hot path across repeated
// sweeps: the §4.6 manager re-runs the §4.4 simulator sweep on every
// fleet change, and §7.2 requires that decision to be far cheaper than
// the work it reschedules. Two consecutive G=128 sweeps of the 8.3B
// model run through one Planner — the second is served from the
// lifetime (spec, p, m, d) cost cache and must be both much faster and
// bit-identical to the first.
func PlannerCaching(x *Ctx) (*Table, error) {
	spec := model.GPT2Megatron8B()
	cluster := hw.SpotCluster(hw.NC6v3, 300)
	job, err := x.sharedJob(spec, cluster, 8192, 21)
	if err != nil {
		return nil, err
	}
	// A fresh Planner, deliberately not the job's own: the experiment
	// times the cold/warm contrast, so sweep 1 must really be cold.
	pl := autoconfig.NewPlanner(job.Inputs())

	start := time.Now()
	first, err := pl.Sweep(128)
	if err != nil {
		return nil, err
	}
	coldMS := float64(time.Since(start).Microseconds()) / 1000
	afterCold := pl.Stats()

	start = time.Now()
	second, err := pl.Sweep(128)
	if err != nil {
		return nil, err
	}
	warmMS := float64(time.Since(start).Microseconds()) / 1000
	s := pl.Stats()

	identical := reflect.DeepEqual(first, second)
	recomputes := s.CostComputes - afterCold.CostComputes
	reruns := s.SimAnchorRuns - afterCold.SimAnchorRuns

	t := &Table{
		Title:  "Planner: cross-sweep cost caching, 8.3B sweep at G=128",
		Header: []string{"Sweep", "Wall ms", "Candidates", "StageCosts builds", "Anchor sims"},
	}
	t.Add("1 (cold)", f1(coldMS), fmt.Sprint(len(first)), fmt.Sprint(afterCold.CostComputes), fmt.Sprint(afterCold.SimAnchorRuns))
	t.Add("2 (cached)", f1(warmMS), fmt.Sprint(len(second)), fmt.Sprint(recomputes), fmt.Sprint(reruns))
	speedup := 0.0
	if warmMS > 0 {
		speedup = coldMS / warmMS
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("second sweep bit-identical to first: %v", identical),
		fmt.Sprintf("second sweep %.0fx faster; cost cache hit rate %.0f%% (%d hits, %d misses)",
			speedup, 100*s.HitRate(), s.CostHits, s.CostMisses),
		"the §4.6 manager keeps one Planner per job, so every morph after the first at a given fleet size pays neither partition costs nor anchor simulations")
	if !identical {
		return t, fmt.Errorf("planner: cached sweep diverged from cold sweep")
	}
	if recomputes != 0 || reruns != 0 {
		return t, fmt.Errorf("planner: cached sweep recomputed (%d StageCosts, %d anchor sims)", recomputes, reruns)
	}
	return t, nil
}
