package experiments

// Entry is one runnable experiment.
type Entry struct {
	// ID is the short name used by `varuna-bench -exp <id>`.
	ID string
	// Paper locates the result in the paper.
	Paper string
	// Run executes the experiment against the given context.
	Run func(x *Ctx) (*Table, error)
}

// All lists every experiment, in paper order.
func All() []Entry {
	return []Entry{
		{ID: "fig3", Paper: "Figure 3 (spot availability)", Run: Fig3Availability},
		{ID: "fig4", Paper: "Figure 4 (schedule comparison)", Run: Fig4Schedules},
		{ID: "table3", Paper: "Table 3 (pipeline depth)", Run: Table3PipelineDepth},
		{ID: "fig5", Paper: "Figure 5 (8.3B vs Megatron)", Run: Fig5GPT8B},
		{ID: "fig6", Paper: "Figure 6 (2.5B vs Megatron)", Run: Fig6GPT2B},
		{ID: "fig7", Paper: "Figure 7 (20B Gantt chart)", Run: Fig7Gantt},
		{ID: "table4", Paper: "Table 4 (20B models)", Run: Table4TwentyB},
		{ID: "bert200b", Paper: "§7.1.1 (BERT-large, 200B)", Run: BERTLargeAnd200B},
		{ID: "scaling", Paper: "§7.1.3 (scaling)", Run: Scaling},
		{ID: "table5", Paper: "Table 5 (vs GPipe)", Run: Table5GPipe},
		{ID: "table6", Paper: "Table 6 (pipeline systems)", Run: Table6Pipelines},
		{ID: "table7", Paper: "Table 7 (simulator accuracy)", Run: Table7SimAccuracy},
		{ID: "simspeed", Paper: "§7.2 (simulator runtime)", Run: SimulatorSpeed},
		{ID: "planner", Paper: "§7.2 (morph decision caching)", Run: PlannerCaching},
		{ID: "fig8", Paper: "Figure 8 (60h morphing)", Run: Fig8Morphing},
		{ID: "restart-cost", Paper: "§4.6/§7.2 (reconfiguration cost ablation)", Run: RestartCost},
		{ID: "spot-dollars", Paper: "§1/§7.2 (dollar-cost objectives)", Run: SpotDollars},
		{ID: "vmsize", Paper: "§7.2 (1-GPU vs 4-GPU VMs)", Run: OneVsFourGPUVMs},
		{ID: "fig9", Paper: "Figure 9 (convergence)", Run: Fig9Convergence},
		{ID: "fig10", Paper: "Figure 10 (stale updates)", Run: Fig10TwoBW},
		{ID: "tracer", Paper: "§5.2 (shared-state tracer)", Run: SharedStateTracer},
		{ID: "abl-opportunistic", Paper: "ablation (§3.2 opportunism)", Run: AblationOpportunistic},
		{ID: "abl-microbatch", Paper: "ablation (§4.1 micro-batch)", Run: AblationMicroBatch},
		{ID: "abl-laststage", Paper: "ablation (§3.2 last-stage packing)", Run: AblationLastStagePacking},
		{ID: "abl-straggler", Paper: "ablation (§4.6 fail-stutter)", Run: AblationStragglers},
		{ID: "chaos-stress", Paper: "robustness (scenario DSL chaos soak)", Run: ChaosStress},
		{ID: "multi-job", Paper: "robustness (fleet arbiter multi-tenant soak)", Run: MultiJob},
		{ID: "zone-failover", Paper: "robustness (§4.5 failure-domain failover drill)", Run: ZoneFailover},
		{ID: "trace-overhead", Paper: "observability (span tracing cost gate)", Run: TraceOverhead},
		{ID: "telemetry-overhead", Paper: "observability (continuous series sampling cost gate)", Run: TelemetryOverhead},
	}
}

// ByID finds an experiment; ok is false for unknown ids.
func ByID(id string) (Entry, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}
