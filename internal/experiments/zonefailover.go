package experiments

import (
	"fmt"
	"strings"

	"repro/internal/scenario"
	"repro/scenarios"
)

// ZoneFailover runs the committed zone-failover drill both ways: once
// as committed (2-way zone-spread §4.5 checkpoint replication), once
// with the checkpoint block stripped. The drill loses a whole
// availability zone to a correlated mass preemption mid-run; with
// replication on, a copy of every shard survives outside the lost zone
// and the job pays only a restart-model-priced cross-zone fetch — zero
// lost-progress violations. With it off, the same seed discards the
// entire run's progress at the outage. The experiment reports both
// outcomes side by side and errors unless the contrast holds, making
// the replication layer's value (and cost) a regression-gated number.
func ZoneFailover(x *Ctx) (*Table, error) {
	data, err := scenarios.FS.ReadFile("zone-failover.yaml")
	if err != nil {
		return nil, err
	}
	on, err := scenario.Parse(data)
	if err != nil {
		return nil, err
	}
	off, err := scenario.Parse(data)
	if err != nil {
		return nil, err
	}
	off.Checkpoint = scenario.CheckpointSpec{}

	resOn, err := scenario.Run(on, "")
	if err != nil {
		return nil, err
	}
	resOff, err := scenario.Run(off, "")
	if err != nil {
		return nil, err
	}
	so, sf := resOn.Stats, resOff.Stats

	t := &Table{
		Title:  fmt.Sprintf("Zone failover: %s", on.Description),
		Header: []string{"Metric", "Replication on (k=2, zone)", "Replication off"},
	}
	t.Add("mini-batches kept", fmt.Sprint(so.MiniBatches), fmt.Sprint(sf.MiniBatches))
	t.Add("mini-batches lost", fmt.Sprint(so.LostMiniBatches), fmt.Sprint(sf.LostMiniBatches))
	t.Add("examples", fmt.Sprintf("%.2fM", so.Examples/1e6), fmt.Sprintf("%.2fM", sf.Examples/1e6))
	t.Add("failovers", fmt.Sprint(so.Failovers), fmt.Sprint(sf.Failovers))
	t.Add("unrecoverable outages", fmt.Sprint(so.UnrecoverableOutages), fmt.Sprint(sf.UnrecoverableOutages))
	t.Add("failover downtime", fmt.Sprint(so.FailoverDowntime), fmt.Sprint(sf.FailoverDowntime))
	t.Add("total downtime", fmt.Sprint(so.Downtime), fmt.Sprint(sf.Downtime))
	t.Add("invariant violations", fmt.Sprint(len(resOn.Report.Violations)), fmt.Sprint(len(resOff.Report.Violations)))
	t.Notes = append(t.Notes,
		"one committed seed, one zone-1 outage at 6h; both runs replay bit-identically",
		"run it yourself: varuna-sim run zone-failover")

	if so.Failovers != 1 || so.UnrecoverableOutages != 0 {
		return t, fmt.Errorf("zone-failover: replicated run must fail over exactly once, got %d failovers / %d unrecoverable",
			so.Failovers, so.UnrecoverableOutages)
	}
	if len(resOn.Report.Violations) != 0 {
		return t, fmt.Errorf("zone-failover: replicated run violated invariants: %s",
			strings.Join(resOn.Report.Violations, "; "))
	}
	if so.MiniBatches <= 0 || so.FailoverDowntime <= 0 {
		return t, fmt.Errorf("zone-failover: degenerate replicated run: %d mini-batches, %v failover downtime",
			so.MiniBatches, so.FailoverDowntime)
	}
	if sf.UnrecoverableOutages != 1 {
		return t, fmt.Errorf("zone-failover: unreplicated run must lose its checkpoints, got %d unrecoverable outages",
			sf.UnrecoverableOutages)
	}
	lost := false
	for _, v := range resOff.Report.Violations {
		if strings.Contains(v, "lost progress") {
			lost = true
		}
	}
	if !lost {
		return t, fmt.Errorf("zone-failover: unreplicated run must report the lost-progress violation, got %v",
			resOff.Report.Violations)
	}
	return t, nil
}
