package experiments

import (
	"fmt"

	"repro/internal/gantt"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// Fig4Schedules reproduces Figure 4: Varuna's micro-batch schedule
// contrasted against GPipe for a 4-stage pipeline with 5 micro-batches
// (B = 2F, R = F), including the one-time-unit makespan advantage.
func Fig4Schedules(x *Ctx) (*Table, error) {
	costs := sim.UnitCosts(4, simtime.Millisecond)
	varunaOrders, err := sim.VarunaOrders(4, 5, costs)
	if err != nil {
		return nil, err
	}
	gpipe, err := schedule.GPipe(4, 5)
	if err != nil {
		return nil, err
	}
	varunaRes, err := sim.Run(sim.Config{Depth: 4, Micros: 5, Policy: schedule.Varuna, Costs: costs})
	if err != nil {
		return nil, err
	}
	gpipeRes, err := sim.Run(sim.Config{Depth: 4, Micros: 5, Policy: schedule.GPipeP, Orders: gpipe.Orders, Costs: costs})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 4: Varuna vs GPipe schedule (4 stages, 5 micro-batches, B=2F)",
		Header: []string{"Schedule", "Makespan (units of F)", "Recomputes"},
	}
	unit := float64(simtime.Millisecond)
	vs := &schedule.Schedule{Depth: 4, Micros: 5, Orders: varunaOrders.Orders}
	t.Add("Varuna", f1(float64(varunaRes.PipelineSpan)/unit), fmt.Sprint(vs.RecomputeCount()))
	t.Add("GPipe", f1(float64(gpipeRes.PipelineSpan)/unit), fmt.Sprint(gpipe.RecomputeCount()))
	t.Figure = "(a) Varuna schedule\n" + gantt.OrderStrips(varunaOrders) +
		"\n(b) GPipe schedule\n" + gantt.OrderStrips(gpipe)
	t.Notes = append(t.Notes,
		"paper: Varuna completes one F-unit earlier, skips all last-stage recomputes, and intersperses forwards for jitter slack")
	return t, nil
}

// Fig7Gantt reproduces Figure 7: the task timeline of one Varuna
// mini-batch on the 20B model in its 49x6 configuration (one replica
// shown).
func Fig7Gantt(x *Ctx) (*Table, error) {
	spec := model.GPT2Twenty20B()
	cluster := hw.SpotCluster(hw.NC6v3, 294)
	job, err := x.sharedJob(spec, cluster, 8192, 44)
	if err != nil {
		return nil, err
	}
	c, err := job.Configure(49, 6)
	if err != nil {
		return nil, err
	}
	// Render a shortened mini-batch (every micro-batch beyond ~3 per
	// stage looks identical in steady state) for a readable chart.
	short := c
	short.Nm = 12
	ms, err := job.Measure(short)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 7: one Varuna mini-batch on GPT-2 20B, 49x6 (replica 0, first 12 micro-batches)",
		Header: []string{"Metric", "Value"},
	}
	t.Add("pipeline bubble fraction", f3(ms.Bubble))
	t.Add("mini-batch time (12 micro-batches)", ms.MiniBatchTime.String())
	t.Figure = gantt.Render(ms.Trace, 49, 110)
	t.Notes = append(t.Notes, "paper shows forwards (red), backwards (green), recompute (orange) and the final stage-wise 6-way allreduce")
	return t, nil
}

// Table5GPipe reproduces Table 5: Varuna vs GPipe on BERT-72 inside a
// single 4-GPU node at micro-batch 16 and 32, plus the simulated 8.3B
// comparison at 1x / 1.5x / 2x slower networks.
func Table5GPipe(x *Ctx) (*Table, error) {
	t := &Table{
		Title:  "Table 5: Varuna vs GPipe (ex/s/GPU), mini-batch 8192",
		Header: []string{"Workload", "Varuna", "GPipe", "Varuna advantage"},
	}

	bert := model.BERT72()
	cluster := hw.SpotCluster(hw.NC24v3, 4)
	job, err := x.sharedJob(bert, cluster, 8192, 48)
	if err != nil {
		return nil, err
	}
	for _, m := range []int{16, 32} {
		c, err := job.Configure(4, 1)
		if err != nil {
			return nil, err
		}
		c.M = m
		c.Nm = 8192 / m
		c.Examples = 8192
		vms, err := job.Measure(c)
		if err != nil {
			return nil, err
		}
		gms, err := job.MeasureWithPolicy(c, schedule.GPipeP)
		if err != nil {
			return nil, err
		}
		v := vms.ExPerSec() / 4
		g := gms.ExPerSec() / 4
		t.Add(fmt.Sprintf("BERT-72 (m=%d)", m), f1(v), f1(g), fmt.Sprintf("%+.0f%%", 100*(v/g-1)))
	}

	// Simulated 8.3B at 19x3 with the calibrated simulator, slowing
	// the network 1x / 1.5x / 2x (§7.1.2 used exactly this method).
	spec := model.GPT2Megatron8B()
	lp := hw.SpotCluster(hw.NC6v3, 57)
	job8, err := x.sharedJob(spec, lp, 8192, 48)
	if err != nil {
		return nil, err
	}
	c8, err := job8.Configure(19, 3)
	if err != nil {
		return nil, err
	}
	costs, err := job8.Calibration().StageCosts(spec, c8.Stages, c8.M, c8.D, job8.Testbed().InterBoundaryFlags(19))
	if err != nil {
		return nil, err
	}
	for _, slow := range []float64{1, 1.5, 2} {
		sc := make([]sim.StageCosts, len(costs))
		copy(sc, costs)
		for i := range sc {
			sc[i].ActSend = simtime.Duration(float64(sc[i].ActSend) * slow)
			sc[i].GradSend = simtime.Duration(float64(sc[i].GradSend) * slow)
			sc[i].AllReduce = simtime.Duration(float64(sc[i].AllReduce) * slow)
		}
		jcv := job8.Calibration().Net.JitterCV
		vres, err := sim.Run(sim.Config{Depth: 19, Micros: c8.Nm, Policy: schedule.Varuna,
			Costs: sc, JitterCV: jcv, Rand: simtime.NewRand(7)})
		if err != nil {
			return nil, err
		}
		stash := spec.BlockActivationBytes() * int64(c8.M)
		chunk := sim.GPipeChunk(4<<30, stash, 19)
		gres, err := sim.RunChunked(sim.Config{Depth: 19, Micros: c8.Nm, Policy: schedule.GPipeP,
			Costs: sc, JitterCV: jcv, Rand: simtime.NewRand(7)}, chunk, schedule.GPipe)
		if err != nil {
			return nil, err
		}
		gpus := float64(19 * 3)
		v := float64(c8.Examples) / vres.Makespan.Seconds() / gpus
		g := float64(c8.Examples) / gres.Makespan.Seconds() / gpus
		t.Add(fmt.Sprintf("Simulated 8.3B (%.1fx slower net)", slow), f2(v), f2(g),
			fmt.Sprintf("%+.0f%%", 100*(v/g-1)))
	}
	t.Notes = append(t.Notes,
		"paper: BERT-72 +70%/+15% (m=16/32); simulated 8.3B +9%/+23%/+38% as the network slows 1x/1.5x/2x")
	return t, nil
}

// Table6Pipelines reproduces Table 6: Varuna vs DeepSpeed vs
// Megatron-1F1B vs PipeDream on 1-GPU commodity VMs, mini-batch 2400.
func Table6Pipelines(x *Ctx) (*Table, error) {
	t := &Table{
		Title:  "Table 6: pipeline systems on 1-GPU VMs (ex/s/GPU), mini-batch 2400",
		Header: []string{"Model (PxD)", "Varuna", "DeepSpeed", "Megatron-1F1B", "PipeDream"},
	}
	for _, w := range []struct {
		spec *model.Spec
		p, d int
	}{
		{model.GPT2Megatron8B(), 18, 4},
		{model.GPT2XL2B(), 9, 8},
	} {
		cluster := hw.SpotCluster(hw.NC6v3, w.p*w.d)
		job, err := x.sharedJob(w.spec, cluster, 2400, 49)
		if err != nil {
			return nil, err
		}
		c, err := job.Configure(w.p, w.d)
		if err != nil {
			return nil, err
		}
		gpus := float64(c.GPUsUsed)
		run := func(policy schedule.Policy) string {
			ms, err := job.MeasureWithPolicy(c, policy)
			if err != nil {
				return "err"
			}
			return f2(ms.ExPerSec() / gpus)
		}
		// PipeDream keeps P weight copies: check memory feasibility.
		pipedream := "OOM"
		if pipeDreamFits(w.spec, c.Stages, c.M, c.Nm, w.p) {
			ms, err := job.MeasureWithPolicy(c, schedule.PipeDreamP)
			if err == nil {
				pipedream = f2(ms.ExPerSec() / gpus)
			}
		}
		t.Add(fmt.Sprintf("%s (%dx%d)", w.spec.Name, w.p, w.d),
			run(schedule.Varuna), run(schedule.DeepSpeedP), run(schedule.Megatron1F1B), pipedream)
	}
	t.Notes = append(t.Notes,
		"paper: Varuna 0.59/1.5, DeepSpeed 0.47/1.24, Megatron-1F1B 0.52/1.31, PipeDream OOM on both")
	return t, nil
}

// pipeDreamFits checks PipeDream's memory demand: P weight copies and
// — because it has no mini-batch flush to recompute across — full
// activation storage for every in-flight micro-batch.
func pipeDreamFits(spec *model.Spec, stages []model.Stage, m, nm, p int) bool {
	for _, st := range stages {
		mm := model.MemoryModel{Spec: spec, Stage: st, WeightCopies: p, StoreAllActivations: true}
		if !mm.Fits(m, nm, p, int64(16)<<30) {
			return false
		}
	}
	return true
}
