package experiments

import (
	"fmt"
	"strings"

	"repro/internal/gantt"
	"repro/internal/hw"
	"repro/internal/manager"
	"repro/internal/model"
	"repro/internal/simtime"
	"repro/internal/spot"
	"repro/internal/testbed"
)

// RestartCost ablates reconfiguration pricing on the Figure 8 scenario:
// the same bursty 24-hour spot trace replayed under
//
//   - the paper's flat 4-minute constant per morph (§4.6 as written),
//   - restart.Model-priced downtime (checkpoint flush + state
//     redistribution + process restart, always morphing), and
//   - modeled pricing plus morph-or-hold (declining reconfigurations
//     whose downtime exceeds the discounted throughput gain before the
//     next expected fleet event).
//
// The trace, market and manager seeds are identical across runs, so
// every difference in the downtime columns is the pricing policy. The
// experiment errors if morph-or-hold fails to strictly reduce
// reconfiguration downtime versus always-morphing — the invariant the
// cost-aware decision exists to enforce.
func RestartCost(x *Ctx) (*Table, error) {
	spec := model.GPT2XL2B()
	cluster := hw.SpotCluster(hw.NC6v3, 150)
	job, err := x.sharedJob(spec, cluster, 8192, 54)
	if err != nil {
		return nil, err
	}
	horizon := 24 * simtime.Hour
	mk := spot.NewMarket(1, 120, 55)
	events := spot.EventTrace(mk, 150, horizon, 10*simtime.Minute)

	type run struct {
		name   string
		policy manager.MorphPolicy
		points []manager.TimelinePoint
		stats  manager.Stats
	}
	runs := []*run{
		{name: "constant 4min", policy: manager.PolicyConstant},
		{name: "modeled", policy: manager.PolicyModeled},
		{name: "morph-or-hold", policy: manager.PolicyMorphOrHold},
	}
	for _, r := range runs {
		opts := manager.DefaultOptions()
		opts.Policy = r.policy
		// Each policy gets a fresh, identically-seeded testbed: the
		// policies measure different (P, D) sets, so sharing one
		// testbed would hand later runs a shifted jitter stream and
		// the comparison would no longer isolate the pricing policy.
		// The calibrated inputs and the planner's caches are shared —
		// both are deterministic.
		tb := testbed.New(cluster, 58)
		mg := manager.NewWithPlanner(job.Inputs(), tb, job.Planner(), opts, 56)
		r.points, r.stats, err = mg.RunTimeline(events, horizon)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.name, err)
		}
	}

	t := &Table{
		Title:  "Reconfiguration cost: constant vs modeled vs morph-or-hold, 2.5B on the 24h Figure 8 trace",
		Header: []string{"Policy", "Morphs", "Repl", "Holds", "Morph downtime", "Total downtime", "Examples"},
	}
	for _, r := range runs {
		t.Add(r.name,
			fmt.Sprint(r.stats.Morphs), fmt.Sprint(r.stats.Replacements), fmt.Sprint(r.stats.Holds),
			r.stats.MorphDowntime.String(), r.stats.Downtime.String(),
			fmt.Sprintf("%.2fM", r.stats.Examples/1e6))
	}

	var fig strings.Builder
	for _, r := range runs {
		fmt.Fprintf(&fig, "%-14s %s\n", r.name, gantt.Strip(timelineSegs(r.points, horizon), simtime.Time(horizon), 96))
	}
	fig.WriteString("               █ training  ▒ reconfiguration downtime  · fleet down/idle\n")
	t.Figure = fig.String()

	constant, modeled, hold := runs[0].stats, runs[1].stats, runs[2].stats
	restarts := modeled.Morphs + modeled.Replacements
	avg := simtime.Duration(0)
	if restarts > 0 {
		avg = modeled.MorphDowntime / simtime.Duration(restarts)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("modeled price averages %v per restart vs the flat %v constant", avg, 4*simtime.Minute),
		fmt.Sprintf("morph-or-hold declined %d reconfigurations, cutting reconfiguration downtime %v → %v (constant policy: %v)",
			hold.Holds, modeled.MorphDowntime, hold.MorphDowntime, constant.MorphDowntime))
	if hold.MorphDowntime >= modeled.MorphDowntime {
		return t, fmt.Errorf("restart-cost: morph-or-hold downtime %v did not improve on always-morph %v",
			hold.MorphDowntime, modeled.MorphDowntime)
	}
	if hold.Holds == 0 {
		return t, fmt.Errorf("restart-cost: the bursty trace produced no hold decisions")
	}
	return t, nil
}

// timelineSegs converts a manager timeline into strip segments:
// training between points, the charged reconfiguration downtime before
// each morph point, idle after a dead-fleet point.
func timelineSegs(points []manager.TimelinePoint, horizon simtime.Duration) []gantt.Seg {
	var segs []gantt.Seg
	prev := simtime.Time(0)
	running := false
	for _, p := range points {
		start := p.At.Add(-p.Downtime)
		if running && start > prev {
			segs = append(segs, gantt.Seg{Start: prev, End: start, Glyph: '█'})
		}
		if p.Downtime > 0 {
			segs = append(segs, gantt.Seg{Start: start, End: p.At, Glyph: '▒'})
		}
		running = p.Event != "down"
		prev = p.At
	}
	if running && simtime.Time(horizon) > prev {
		segs = append(segs, gantt.Seg{Start: prev, End: simtime.Time(horizon), Glyph: '█'})
	}
	return segs
}
