package experiments

import (
	"fmt"
	"strings"

	"repro/internal/autoconfig"
	"repro/internal/hw"
	"repro/internal/manager"
	"repro/internal/model"
	"repro/internal/price"
	"repro/internal/simtime"
	"repro/internal/spot"
	"repro/internal/testbed"
)

// SpotDollars prices the Figure 8 scenario in dollars: the same
// bursty 24-hour spot trace under a stochastic mean-reverting price
// curve, replayed under all three morph objectives —
//
//   - max throughput (the paper's rule: dollars are only accounted),
//   - min $/example (idle capacity released, marginal replicas shed
//     through price spikes, morphs settled by dollar surplus), and
//   - deadline (a 50%-of-flat-out target by the horizon, bought as
//     cheaply as possible).
//
// The trace, curve and every seed are identical across runs, so the
// dollar columns differ only by objective. The experiment errors if
// min-$/example fails to spend strictly fewer dollars per example
// than max throughput — the invariant the objective exists to
// enforce — or if the deadline run misses its target.
//
// A closing note prices the same job across two VM kinds
// (cheap-but-volatile 1-GPU vs pricier-but-stable 4-GPU) with
// price.ChooseMarket, feeding it the per-kind preemption hazards a
// GapEstimator observes on each market's own trace.
func SpotDollars(x *Ctx) (*Table, error) {
	spec := model.GPT2XL2B()
	cluster := hw.SpotCluster(hw.NC6v3, 150)
	job, err := x.sharedJob(spec, cluster, 8192, 54)
	if err != nil {
		return nil, err
	}
	horizon := 24 * simtime.Hour
	mk := spot.NewMarket(1, 120, 55)
	events := spot.EventTrace(mk, 150, horizon, 10*simtime.Minute)
	curve, err := price.MeanReverting(price.MROptions{
		Mean: 2.40, Vol: 0.18, Reversion: 0.12, Horizon: horizon,
	}, 61)
	if err != nil {
		return nil, err
	}

	type run struct {
		name  string
		obj   autoconfig.Objective
		stats manager.Stats
	}
	runs := []*run{
		{name: "max-throughput", obj: autoconfig.Objective{Kind: autoconfig.ObjMaxThroughput}},
		{name: "min-$/example", obj: autoconfig.Objective{Kind: autoconfig.ObjMinDollarPerExample}},
		{name: "deadline (50%)", obj: autoconfig.Objective{Kind: autoconfig.ObjDeadline}},
	}
	for _, r := range runs {
		opts := manager.DefaultOptions()
		opts.Prices = curve
		opts.Objective = r.obj
		if r.obj.Kind == autoconfig.ObjDeadline {
			// Target 50% of what flat-out training achieved, due at
			// the horizon — runs[0] has already executed.
			opts.Objective.DeadlineAt = simtime.Time(horizon)
			opts.Objective.TargetExamples = 0.5 * runs[0].stats.Examples
		}
		// Fresh identically-seeded testbed per objective (the
		// objectives measure different (P, D) sets); shared planner
		// caches — both deterministic, as in the restart-cost
		// ablation.
		tb := testbed.New(cluster, 58)
		mg := manager.NewWithPlanner(job.Inputs(), tb, job.Planner(), opts, 56)
		_, stats, err := mg.RunTimeline(events, horizon)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.name, err)
		}
		r.stats = stats
	}

	t := &Table{
		Title:  "Dollar objectives: 2.5B on the 24h Figure 8 trace, mean-reverting spot price ($2.40/GPU·h mean)",
		Header: []string{"Objective", "Examples", "Dollars", "$/k-ex", "Compute$", "Reconfig$", "Idle$", "Holds", "Released"},
	}
	for _, r := range runs {
		s := r.stats
		t.Add(r.name,
			fmt.Sprintf("%.2fM", s.Examples/1e6),
			fmt.Sprintf("%.0f", s.DollarsSpent),
			fmt.Sprintf("%.2f", 1000*s.DollarsPerExample()),
			fmt.Sprintf("%.0f", s.DollarsCompute),
			fmt.Sprintf("%.0f", s.DollarsReconfig),
			fmt.Sprintf("%.0f", s.DollarsIdle),
			fmt.Sprint(s.Holds),
			fmt.Sprint(s.VMsReleased))
	}
	t.Figure = priceStrip(curve, horizon)

	thru, dollar, dead := runs[0].stats, runs[1].stats, runs[2].stats
	t.Notes = append(t.Notes,
		fmt.Sprintf("min-$/example buys examples at $%.2f/k vs $%.2f/k flat out (%.0f%% cheaper), releasing %d VMs across price spikes",
			1000*dollar.DollarsPerExample(), 1000*thru.DollarsPerExample(),
			100*(1-dollar.DollarsPerExample()/thru.DollarsPerExample()), dollar.VMsReleased),
		fmt.Sprintf("deadline run met %.2fM of its %.2fM target spending $%.0f vs $%.0f flat out",
			dead.Examples/1e6, 0.5*thru.Examples/1e6, dead.DollarsSpent, thru.DollarsSpent))
	if note, err := chooseMarketNote(job, curve, horizon); err == nil {
		t.Notes = append(t.Notes, note)
	} else {
		return t, err
	}

	if dollar.DollarsPerExample() >= thru.DollarsPerExample() {
		return t, fmt.Errorf("spot-dollars: min-$/example %.4g did not undercut max-throughput %.4g $/ex",
			dollar.DollarsPerExample(), thru.DollarsPerExample())
	}
	if dead.Examples < 0.5*thru.Examples {
		return t, fmt.Errorf("spot-dollars: deadline run missed its target: %.0f < %.0f",
			dead.Examples, 0.5*thru.Examples)
	}
	return t, nil
}

// chooseMarketNote prices the job across two VM kinds with
// ChooseMarket: a fresh copy of the 1-GPU market the run trained on
// (cheap, volatile) against a 4-GPU market (priced 25% higher, but
// preempted far less). Per-kind hazards come from GapEstimators fed
// each market's own 24-hour event trace — the "existing per-kind
// hazards" seam.
func chooseMarketNote(job jobForMarkets, curve *price.Curve, horizon simtime.Duration) (string, error) {
	oneGPU := spot.NewMarket(1, 120, 55)
	oneGPU.Prices = curve
	fourGPU := spot.NewMarket(4, 120, 57)
	fourGPU.MeanHold = 16 * simtime.Hour // dedicated blocks are reclaimed rarely
	stable, err := price.FromSteps([]price.Step{{At: 0, PerGPUHour: curve.Mean(0, simtime.Time(horizon)) * 1.25}})
	if err != nil {
		return "", err
	}
	fourGPU.Prices = stable
	c, err := job.BestConfig(144)
	if err != nil {
		return "", err
	}

	kinds := make([]price.Kind, 0, 2)
	for _, m := range []struct {
		mk   *spot.Market
		name string
	}{
		{oneGPU, "1-GPU volatile"},
		{fourGPU, "4-GPU stable"},
	} {
		gaps := spot.NewGapEstimator(30 * simtime.Minute)
		for _, e := range spot.EventTrace(m.mk, 144, horizon, 10*simtime.Minute) {
			gaps.ObserveKind(e.At, e.Kind)
		}
		// Restart price of the forced reconfiguration each preemption
		// triggers, at the chosen shape.
		kinds = append(kinds, m.mk.KindFor(m.name, 144, c.TotalExPerSec(), gaps,
			4*simtime.Minute))
	}
	best, scores := price.ChooseMarket(horizon, kinds)
	var b strings.Builder
	fmt.Fprintf(&b, "market chooser: ")
	for i, k := range kinds {
		if i > 0 {
			b.WriteString(" vs ")
		}
		fmt.Fprintf(&b, "%s $%.2f/kex", k.Name, 1000*scores[i])
	}
	fmt.Fprintf(&b, " → %s", kinds[best].Name)
	return b.String(), nil
}

// jobForMarkets is the core.Job slice chooseMarketNote needs.
type jobForMarkets interface {
	BestConfig(g int) (autoconfig.Choice, error)
}

// priceStrip renders the price curve as a coarse text chart over the
// horizon.
func priceStrip(c *price.Curve, horizon simtime.Duration) string {
	const cols = 96
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	lo, hi := c.At(0), c.At(0)
	for i := 0; i < cols; i++ {
		p := c.At(simtime.Time(int64(horizon) * int64(i) / cols))
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "$/GPU·h ")
	for i := 0; i < cols; i++ {
		p := c.At(simtime.Time(int64(horizon) * int64(i) / cols))
		g := 0
		if hi > lo {
			g = int((p - lo) / (hi - lo) * float64(len(glyphs)-1))
		}
		if g >= len(glyphs) {
			g = len(glyphs) - 1
		}
		if g < 0 {
			g = 0
		}
		b.WriteRune(glyphs[g])
	}
	fmt.Fprintf(&b, "  [%.2f–%.2f]\n", lo, hi)
	return b.String()
}
