package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Table7SimAccuracy reproduces Table 7: the parametric simulator's
// estimated mini-batch time against the measured ("actual") time for
// twelve configurations of the 8.3B and 2.5B models. The paper reports
// all errors within 5%.
func Table7SimAccuracy(x *Ctx) (*Table, error) {
	t := &Table{
		Title:  "Table 7: simulator estimates vs actual mini-batch times",
		Header: []string{"Model", "Config (PxD)", "Estimated (s)", "Actual (s)", "Error"},
	}
	type cfg struct {
		spec *model.Spec
		p, d int
	}
	cases := []cfg{
		{model.GPT2Megatron8B(), 36, 3},
		{model.GPT2Megatron8B(), 36, 2},
		{model.GPT2Megatron8B(), 36, 1},
		{model.GPT2Megatron8B(), 24, 4},
		{model.GPT2Megatron8B(), 24, 2},
		{model.GPT2Megatron8B(), 18, 6},
		{model.GPT2Megatron8B(), 18, 4},
		{model.GPT2Megatron8B(), 18, 3},
		{model.GPT2XL2B(), 27, 2},
		{model.GPT2XL2B(), 18, 3},
		{model.GPT2XL2B(), 9, 7},
		{model.GPT2XL2B(), 6, 10},
	}
	var worst float64
	for _, c := range cases {
		cluster := hw.SpotCluster(hw.NC6v3, c.p*c.d)
		job, err := x.sharedJob(c.spec, cluster, 8192, 50)
		if err != nil {
			return nil, err
		}
		choice, err := job.Configure(c.p, c.d)
		if err != nil {
			return nil, err
		}
		// The paper's Table 7 rows are real runs at small micro-batch
		// sizes; pin m=4 so estimate and measurement use the same
		// configuration the paper validated.
		choice.M = 4
		choice.Nm = (8192 + 4*c.d - 1) / (4 * c.d)
		choice.Examples = choice.M * choice.Nm * c.d
		est, err := job.Estimate(choice)
		if err != nil {
			return nil, err
		}
		// Average a few measured mini-batches, as a real validation
		// run would.
		var sum float64
		const reps = 3
		for r := 0; r < reps; r++ {
			ms, err := job.Measure(choice)
			if err != nil {
				return nil, err
			}
			sum += ms.MiniBatchTime.Seconds()
		}
		actual := sum / reps
		errFrac := math.Abs(est.Seconds()-actual) / actual
		if errFrac > worst {
			worst = errFrac
		}
		t.Add(c.spec.Name, fmt.Sprintf("%dx%d", c.p, c.d),
			f1(est.Seconds()), f1(actual), fmt.Sprintf("%.1f%%", errFrac*100))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("worst-case error %.1f%% (paper: within 5%%)", worst*100))
	return t, nil
}

// SimulatorSpeed reproduces the §7.2 simulator-runtime measurement:
// wall-clock time to simulate one full mini-batch of a 128-GPU,
// batch-8192 job at P=36/24/18. The paper reports 660/376/391 ms.
func SimulatorSpeed(x *Ctx) (*Table, error) {
	spec := model.GPT2Megatron8B()
	cluster := hw.SpotCluster(hw.NC6v3, 128)
	job, err := x.sharedJob(spec, cluster, 8192, 50)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "§7.2: simulator wall-clock runtime (128-GPU job, batch 8192)",
		Header: []string{"P", "D", "Nm", "Sim runtime"},
	}
	for _, p := range []int{36, 24, 18} {
		d := 128 / p
		choice, err := job.Configure(p, d)
		if err != nil {
			return nil, err
		}
		costs, err := job.Calibration().StageCosts(spec, choice.Stages, choice.M, choice.D,
			job.Testbed().InterBoundaryFlags(p))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := sim.Run(sim.Config{Depth: p, Micros: choice.Nm,
			Policy: schedule.Varuna, Costs: costs}); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		t.Add(fmt.Sprint(p), fmt.Sprint(d), fmt.Sprint(choice.Nm),
			fmt.Sprintf("%.0fms", float64(elapsed.Microseconds())/1000))
	}
	t.Notes = append(t.Notes, "paper: 660ms (P=36), 376ms (P=24), 391ms (P=18)")
	return t, nil
}

// AblationOpportunistic measures Varuna's opportunistic scheduling
// against the strict static-schedule replay under commodity jitter —
// the design choice behind Observation 3.
func AblationOpportunistic(x *Ctx) (*Table, error) {
	spec := model.GPT2Megatron8B()
	cluster := hw.SpotCluster(hw.NC6v3, 72)
	job, err := x.sharedJob(spec, cluster, 8192, 51)
	if err != nil {
		return nil, err
	}
	c, err := job.Configure(18, 4)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: opportunistic vs strict Varuna schedule (8.3B, 18x4)",
		Header: []string{"Variant", "Ex/s/GPU"},
	}
	run := func(policy schedule.Policy) (float64, error) {
		var sum float64
		const reps = 3
		for r := 0; r < reps; r++ {
			ms, err := job.MeasureWithPolicy(c, policy)
			if err != nil {
				return 0, err
			}
			sum += ms.ExPerSec() / float64(c.GPUsUsed)
		}
		return sum / reps, nil
	}
	opp, err := run(schedule.Varuna)
	if err != nil {
		return nil, err
	}
	strict, err := run(schedule.VarunaStrict)
	if err != nil {
		return nil, err
	}
	t.Add("rule-based + opportunistic (Varuna)", f3(opp))
	t.Add("static schedule, no deviation", f3(strict))
	t.Notes = append(t.Notes, "opportunism hides commodity-network jitter (§3.2)")
	return t, nil
}

// AblationMicroBatch reproduces the §4.1 observation that micro-batch
// size trades kernel efficiency against pipeline efficiency (m=8 is
// ~26% better than m=4 per example in BERT-large kernels).
func AblationMicroBatch(x *Ctx) (*Table, error) {
	spec := model.GPT2XL2B()
	cluster := hw.SpotCluster(hw.NC6v3, 63)
	job, err := x.sharedJob(spec, cluster, 8192, 52)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: micro-batch size at 9x7 (2.5B, batch 8192)",
		Header: []string{"m", "Nm", "Ex/s/GPU", "Kernel efficiency"},
	}
	cost := defaultCost()
	for _, m := range []int{1, 2, 4, 8, 16, 32} {
		c, err := job.Configure(9, 7)
		if err != nil {
			return nil, err
		}
		c.M = m
		c.Nm = 8192 / (m * 7)
		if c.Nm < 1 {
			c.Nm = 1
		}
		c.Examples = m * c.Nm * 7
		ms, err := job.Measure(c)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprint(m), fmt.Sprint(c.Nm),
			f2(ms.ExPerSec()/float64(c.GPUsUsed)), f3(cost.Efficiency(m)))
	}
	t.Notes = append(t.Notes, "kernel efficiency rises with m; pipeline bubble rises as Nm shrinks — morphing picks the balance")
	return t, nil
}

// AblationLastStagePacking measures the §3.2 design choice of packing
// the lm_head into the recompute-free last stage versus a flat split.
func AblationLastStagePacking(x *Ctx) (*Table, error) {
	spec := model.GPT2XL2B()
	cluster := hw.SpotCluster(hw.NC6v3, 63)
	job, err := x.sharedJob(spec, cluster, 8192, 53)
	if err != nil {
		return nil, err
	}
	c, err := job.Configure(9, 7)
	if err != nil {
		return nil, err
	}
	packed, err := job.Measure(c)
	if err != nil {
		return nil, err
	}
	flat := c
	stages, err := model.Partition(spec, job.CutPoints(), 9, false)
	if err != nil {
		return nil, err
	}
	flat.Stages = stages
	flatMs, err := job.Testbed().MeasureMiniBatch(testbed.JobConfig{
		Spec: spec, Stages: flat.Stages, M: flat.M, Nm: flat.Nm, D: flat.D})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation: last-stage packing (2.5B, 9x7)",
		Header: []string{"Partitioning", "Ex/s/GPU", "Imbalance (max/mean fwd)"},
	}
	t.Add("head packed into last stage (Varuna)", f2(packed.ExPerSec()/float64(c.GPUsUsed)), f3(model.MaxImbalance(c.Stages)))
	t.Add("flat compute balance", f2(flatMs.ExPerSec()/float64(c.GPUsUsed)), f3(model.MaxImbalance(flat.Stages)))
	return t, nil
}
