package experiments

import (
	"fmt"

	"repro/internal/autoconfig"
	"repro/internal/baselines"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/netsim"
)

// megatronOn evaluates the best Megatron configuration on a cluster
// and reports ex/s/GPU (0 with a note when infeasible).
func megatronOn(spec *model.Spec, cluster hw.Cluster, g, m, mTotal int) (float64, string) {
	fabric := netsim.New(1)
	if cluster.LowPriority {
		fabric = netsim.New(1.3)
	}
	cfg, tm, err := baselines.BestMegatron(spec, g, m, mTotal, cluster, fabric, defaultCost())
	if err != nil {
		return 0, err.Error()
	}
	ex := float64(mTotal) / tm.Seconds() / float64(cfg.GPUs())
	return ex, fmt.Sprintf("%d-way x %d", cfg.MP, cfg.D)
}

// varunaAt measures Varuna at an explicit P×D on a job's testbed.
func varunaAt(job jobLike, p, d int) (autoconfig.Choice, float64, error) {
	c, err := job.Configure(p, d)
	if err != nil {
		return autoconfig.Choice{}, 0, err
	}
	ms, err := job.Measure(c)
	if err != nil {
		return autoconfig.Choice{}, 0, err
	}
	return c, ms.ExPerSec() / float64(c.GPUsUsed), nil
}

// Fig5GPT8B reproduces Figure 5: Varuna vs Megatron on the GPT-2 8.3B
// model, on commodity low-priority VMs and on the hypercluster, at
// three fleet sizes. Mini-batch 8192; Varuna uses 18-deep pipelines
// (18x3, 18x7, 18x16 — 54/126/288 GPUs), as in the paper.
func Fig5GPT8B(x *Ctx) (*Table, error) {
	spec := model.GPT2Megatron8B()
	const mTotal = 8192
	t := &Table{
		Title:  "Figure 5: Varuna vs Megatron, GPT-2 8.3B (ex/s/GPU)",
		Header: []string{"GPUs", "Varuna(LP)", "Megatron(LP)", "Varuna(HC)", "Megatron(HC)", "Varuna-LP/Megatron-LP"},
	}
	hcCluster := hw.Hypercluster(16)
	hcJob, err := x.sharedJob(spec, hcCluster, mTotal, 42)
	if err != nil {
		return nil, err
	}
	for _, cfg := range []struct{ g, d int }{{64, 3}, {128, 7}, {300, 16}} {
		lpCluster := hw.SpotCluster(hw.NC24v3, cfg.g)
		lpJob, err := x.sharedJob(spec, lpCluster, mTotal, 42)
		if err != nil {
			return nil, err
		}
		_, varunaLP, err := varunaAt(lpJob, 18, cfg.d)
		if err != nil {
			return nil, err
		}
		megLP, _ := megatronOn(spec, lpCluster, cfg.g, 4, mTotal)
		hcG := cfg.g
		if hcG > hcCluster.NumGPUs() {
			hcG = hcCluster.NumGPUs()
		}
		_, varunaHC, err := varunaAt(hcJob, 18, hcG/18)
		if err != nil {
			return nil, err
		}
		megHC, _ := megatronOn(spec, hcCluster, hcG, 4, mTotal)
		ratio := 0.0
		if megLP > 0 {
			ratio = varunaLP / megLP
		}
		t.Add(fmt.Sprint(cfg.g), f3(varunaLP), f3(megLP), f3(varunaHC), f3(megHC), f1(ratio)+"x")
	}
	t.Notes = append(t.Notes,
		"paper: Varuna(LP) ≈ 0.56 ex/s/GPU, ~18x over Megatron(LP), and 17% above Megatron(HC)")
	return t, nil
}

// Fig6GPT2B reproduces Figure 6 for the 2.5B model (Varuna at 9x7,
// 9x14, 9x28).
func Fig6GPT2B(x *Ctx) (*Table, error) {
	spec := model.GPT2XL2B()
	const mTotal = 8192
	t := &Table{
		Title:  "Figure 6: Varuna vs Megatron, GPT-2 2.5B (ex/s/GPU)",
		Header: []string{"GPUs", "Varuna(LP)", "Megatron(LP)", "Varuna(HC)", "Megatron(HC)", "Varuna-LP/Megatron-LP"},
	}
	hcCluster := hw.Hypercluster(16)
	hcJob, err := x.sharedJob(spec, hcCluster, mTotal, 43)
	if err != nil {
		return nil, err
	}
	for _, cfg := range []struct{ g, d int }{{63, 7}, {126, 14}, {252, 28}} {
		lpCluster := hw.SpotCluster(hw.NC24v3, cfg.g)
		lpJob, err := x.sharedJob(spec, lpCluster, mTotal, 43)
		if err != nil {
			return nil, err
		}
		_, varunaLP, err := varunaAt(lpJob, 9, cfg.d)
		if err != nil {
			return nil, err
		}
		megLP, _ := megatronOn(spec, lpCluster, cfg.g, 4, mTotal)
		hcG := cfg.g
		if hcG > hcCluster.NumGPUs() {
			hcG = hcCluster.NumGPUs()
		}
		_, varunaHC, err := varunaAt(hcJob, 9, hcG/9)
		if err != nil {
			return nil, err
		}
		megHC, _ := megatronOn(spec, hcCluster, hcG, 4, mTotal)
		ratio := 0.0
		if megLP > 0 {
			ratio = varunaLP / megLP
		}
		t.Add(fmt.Sprint(cfg.g), f3(varunaLP), f3(megLP), f3(varunaHC), f3(megHC), f1(ratio)+"x")
	}
	t.Notes = append(t.Notes,
		"paper: Varuna 4.1x over Megatron on commodity VMs, within 4% of hypercluster Varuna")
	return t, nil
}

// Table4TwentyB reproduces Table 4: the 20B model. Varuna runs 49x6 on
// 294 low-priority GPUs and on the hypercluster; Megatron fits only a
// 19.2B variant at 16-way inside a DGX-2, and forcing 20B to 18-way
// crosses node boundaries and collapses.
func Table4TwentyB(x *Ctx) (*Table, error) {
	const mTotal = 8192
	t := &Table{
		Title:  "Table 4: 20B-parameter models (mini-batch 8192)",
		Header: []string{"System", "GPUs", "Ex/s/GPU", "TFlops/s/GPU"},
	}

	spec20 := model.GPT2Twenty20B()
	lp := hw.SpotCluster(hw.NC6v3, 294)
	lpJob, err := x.sharedJob(spec20, lp, mTotal, 44)
	if err != nil {
		return nil, err
	}
	_, vLP, err := varunaAt(lpJob, 49, 6)
	if err != nil {
		return nil, err
	}
	t.Add("20B Varuna (LP)", "294", f3(vLP), f1(tflopsPerGPU(spec20, vLP)))

	hc := hw.Hypercluster(16)
	spec19 := model.GPT2Twenty19B()
	fabric := netsim.New(1)
	meg19, err := baselines.MegatronTime(baselines.MegatronConfig{
		Spec: spec19, MP: 16, D: 16, M: 1, MTotal: mTotal}, hc, fabric, defaultCost())
	if err != nil {
		return nil, err
	}
	ex19 := float64(mTotal) / meg19.Seconds() / 256
	t.Add("19.2B Megatron (HC)", "256", f3(ex19), f1(tflopsPerGPU(spec19, ex19)))

	meg20, err := baselines.MegatronTime(baselines.MegatronConfig{
		Spec: spec20, MP: 18, D: 14, M: 1, MTotal: mTotal}, hc, fabric, defaultCost())
	if err != nil {
		return nil, err
	}
	ex20 := float64(mTotal) / meg20.Seconds() / float64(18*14)
	t.Add("20B Megatron (HC, 18-way forced)", "252", f3(ex20), f1(tflopsPerGPU(spec20, ex20)))

	hcJob, err := x.sharedJob(spec20, hc, mTotal, 44)
	if err != nil {
		return nil, err
	}
	// 32 stages keep each stage's 16·N/P state within a V100 while two
	// DGX-2s host one pipeline; sweeping all ~190 feasible depths of a
	// 20B model is minutes of simulation for a one-row table.
	best, err := hcJob.Configure(32, 8)
	if err != nil {
		return nil, err
	}
	ms, err := hcJob.Measure(best)
	if err != nil {
		return nil, err
	}
	vHC := ms.ExPerSec() / float64(best.GPUsUsed)
	t.Add("20B Varuna (HC)", fmt.Sprint(best.GPUsUsed), f3(vHC), f1(tflopsPerGPU(spec20, vHC)))

	t.Notes = append(t.Notes,
		"paper: Varuna(LP) 0.2 ex/s/GPU (25 TF), Megatron 19.2B(HC) 0.112 (14 TF), Megatron 20B forced 0.015 (1.9 TF), Varuna(HC) 0.257 (32.1 TF)")
	return t, nil
}

// BERTLargeAnd200B reproduces §7.1.1's prose results: BERT-large 4x8
// on 32 commodity GPUs vs the data-parallel DGX-1 baseline, and the
// 200B model at 102x1 with host-offloaded optimizer state.
func BERTLargeAnd200B(x *Ctx) (*Table, error) {
	t := &Table{
		Title:  "§7.1.1: BERT-large and the 200B model",
		Header: []string{"Workload", "Config", "Total ex/s", "Ex/s/GPU", "TFlops/s/GPU"},
	}

	bert := model.BERTLarge()
	cluster := hw.SpotCluster(hw.NC24v3, 32)
	job, err := x.sharedJob(bert, cluster, 32768, 45)
	if err != nil {
		return nil, err
	}
	c, perGPU, err := varunaAt(job, 4, 8)
	if err != nil {
		return nil, err
	}
	t.Add("BERT-large (Varuna, LP)", c.String(), f1(perGPU*32), f2(perGPU), f1(tflopsPerGPU(bert, perGPU)))

	dpTime, err := baselines.DataParallelTime(bert, 32, 8, 32768, cluster, netsim.New(1.3), defaultCost())
	if err != nil {
		return nil, err
	}
	dpPerGPU := 32768 / dpTime.Seconds() / 32
	t.Add("BERT-large (data-parallel)", "32-way DP", f1(dpPerGPU*32), f2(dpPerGPU), f1(tflopsPerGPU(bert, dpPerGPU)))

	b200 := model.GPT2TwoHundredB()
	lp := hw.SpotCluster(hw.NC6v3, 102)
	job200, err := x.sharedJob(b200, lp, 512, 46)
	if err != nil {
		return nil, err
	}
	// The 102x1 configuration only fits with optimizer state in host
	// RAM (§7.1.1), which the generic sweep does not assume; build the
	// choice explicitly and verify memory with offload accounted.
	stages, err := model.Partition(b200, job200.CutPoints(), 102, true)
	if err != nil {
		return nil, err
	}
	for _, st := range stages {
		mm := model.MemoryModel{Spec: b200, Stage: st, WeightCopies: 1, OffloadOptimizer: true}
		if !mm.Fits(1, 512, 102, 16<<30) {
			return nil, fmt.Errorf("200B stage %d does not fit even with offload", st.Index)
		}
	}
	cfg := autoconfig.Choice{P: 102, D: 1, M: 1, Nm: 512, Stages: stages, GPUsUsed: 102, Examples: 512}
	jc := job200.Testbed()
	ms, err := jc.MeasureMiniBatch(offload102(job200, cfg))
	if err != nil {
		return nil, err
	}
	perGPU200 := ms.ExPerSec() / 102
	t.Add("GPT-2 200B (Varuna, LP)", "102x1 m=1 (optimizer in host RAM)",
		f2(ms.ExPerSec()), f3(perGPU200), f1(tflopsPerGPU(b200, perGPU200)))

	t.Notes = append(t.Notes,
		"paper: BERT-large 710 ex/s on 32 LP GPUs (DGX-1 baseline 700); 200B runs 0.022 ex/s/GPU = 27.3 TFlops/s/GPU")
	return t, nil
}

// Scaling reproduces the §7.1.3 scaling claim: per-GPU throughput of
// the 8.3B model drops only a few percent from 54 to 288 GPUs.
func Scaling(x *Ctx) (*Table, error) {
	spec := model.GPT2Megatron8B()
	t := &Table{
		Title:  "§7.1.3 Scaling: GPT-2 8.3B per-GPU throughput vs fleet size",
		Header: []string{"GPUs", "Config", "Ex/s/GPU", "TFlops/s/GPU", "vs 54 GPUs"},
	}
	var base float64
	for _, cfg := range []struct{ g, d int }{{54, 3}, {126, 7}, {288, 16}} {
		cluster := hw.SpotCluster(hw.NC6v3, cfg.g)
		job, err := x.sharedJob(spec, cluster, 8192, 47)
		if err != nil {
			return nil, err
		}
		c, perGPU, err := varunaAt(job, 18, cfg.d)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = perGPU
		}
		t.Add(fmt.Sprint(cfg.g), c.String(), f3(perGPU), f1(tflopsPerGPU(spec, perGPU)),
			fmt.Sprintf("%+.1f%%", 100*(perGPU/base-1)))
	}
	t.Notes = append(t.Notes, "paper: 5.1x more GPUs cost only ~7.5% per-GPU throughput")
	return t, nil
}
