// Package checkpoint implements Varuna's continuous checkpointing
// (§4.5): model state is written per layer, sharded across data-parallel
// replicas (replicas hold identical state, so each writes a disjoint
// slice of the layers), at mini-batch boundaries for cross-stage
// consistency. Because every layer is an independent object, a job can
// resume under a *different* pipeline depth: the new stage→layer
// mapping just loads whichever layers it now owns.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// LayerState is one layer's training state: parameters and optimizer
// moments, stored as float64 for exactness.
type LayerState struct {
	// Layer is the model-wide layer index.
	Layer int
	// Params, M, V are parameter values and Adam moments.
	Params, M, V []float64
}

// Bytes reports the serialized size of the layer's state: every value
// is stored as a float64. This is the per-layer unit the restart cost
// model prices flushes and redistribution in.
func (ls LayerState) Bytes() int64 {
	return 8 * int64(len(ls.Params)+len(ls.M)+len(ls.V))
}

// Manifest records a consistent checkpoint: which mini-batch it
// reflects and which layers it contains.
type Manifest struct {
	// Step is the last completed mini-batch.
	Step int
	// Layers lists the layer indices present.
	Layers []int
	// LayerBytes, when present, is aligned with Layers and records each
	// layer's serialized state size — the per-layer byte accounting
	// restart.NewModelFromManifest prices checkpoint flushes and
	// post-morph state redistribution from when a real checkpoint
	// exists (the manager's simulated timeline derives the same sizes
	// analytically from the model spec). Older manifests omit it.
	LayerBytes []int64 `json:"LayerBytes,omitempty"`
	// NumLayers is the model's total layer count.
	NumLayers int
}

// TotalBytes sums the per-layer state sizes; 0 when the manifest
// predates byte accounting.
func (m Manifest) TotalBytes() int64 {
	var n int64
	for _, b := range m.LayerBytes {
		n += b
	}
	return n
}

// BytesFor reports the recorded state size of one layer, or 0 when the
// manifest has no byte accounting for it.
func (m Manifest) BytesFor(layer int) int64 {
	for i, l := range m.Layers {
		if l == layer && i < len(m.LayerBytes) {
			return m.LayerBytes[i]
		}
	}
	return 0
}

// Store is a checkpoint destination. Implementations must be usable
// from multiple shards writing disjoint layers.
type Store interface {
	// PutLayer persists one layer's state for the given step.
	PutLayer(step int, ls LayerState) error
	// GetLayer loads one layer's state for the given step.
	GetLayer(step, layer int) (LayerState, error)
	// PutManifest marks a step complete.
	PutManifest(m Manifest) error
	// Latest returns the newest complete manifest, or ok=false.
	Latest() (Manifest, bool, error)
	// BytesWritten reports the cumulative layer-state bytes persisted
	// through this store — the observable behind flush-cost modeling.
	BytesWritten() int64
}

// normalizeManifest validates the byte accounting and sorts the
// (layer, bytes) pairs by layer index so manifests compare and
// serialize deterministically.
func normalizeManifest(m Manifest) (Manifest, error) {
	if len(m.LayerBytes) != 0 && len(m.LayerBytes) != len(m.Layers) {
		return Manifest{}, fmt.Errorf("checkpoint: manifest has %d layers but %d byte entries",
			len(m.Layers), len(m.LayerBytes))
	}
	mm := m
	mm.Layers = append([]int(nil), m.Layers...)
	mm.LayerBytes = append([]int64(nil), m.LayerBytes...)
	idx := make([]int, len(mm.Layers))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return mm.Layers[idx[a]] < mm.Layers[idx[b]] })
	layers := make([]int, len(idx))
	for i, j := range idx {
		layers[i] = mm.Layers[j]
	}
	mm.Layers = layers
	if len(mm.LayerBytes) != 0 {
		bytes := make([]int64, len(idx))
		for i, j := range idx {
			bytes[i] = mm.LayerBytes[j]
		}
		mm.LayerBytes = bytes
	}
	return mm, nil
}

// MemStore is an in-memory Store, used by the manager simulation and
// tests.
type MemStore struct {
	layers   map[int]map[int]LayerState
	manifest *Manifest
	written  int64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{layers: make(map[int]map[int]LayerState)}
}

// PutLayer implements Store.
func (s *MemStore) PutLayer(step int, ls LayerState) error {
	if s.layers[step] == nil {
		s.layers[step] = make(map[int]LayerState)
	}
	s.layers[step][ls.Layer] = cloneLayer(ls)
	s.written += ls.Bytes()
	return nil
}

// GetLayer implements Store.
func (s *MemStore) GetLayer(step, layer int) (LayerState, error) {
	ls, ok := s.layers[step][layer]
	if !ok {
		return LayerState{}, &ErrShardUnavailable{Step: step, Layer: layer}
	}
	return cloneLayer(ls), nil
}

// PutManifest implements Store.
func (s *MemStore) PutManifest(m Manifest) error {
	for _, l := range m.Layers {
		if _, ok := s.layers[m.Step][l]; !ok {
			return fmt.Errorf("checkpoint: manifest for step %d references missing layer %d", m.Step, l)
		}
	}
	mm, err := normalizeManifest(m)
	if err != nil {
		return err
	}
	s.manifest = &mm
	return nil
}

// Latest implements Store.
func (s *MemStore) Latest() (Manifest, bool, error) {
	if s.manifest == nil {
		return Manifest{}, false, nil
	}
	return *s.manifest, true, nil
}

// BytesWritten implements Store.
func (s *MemStore) BytesWritten() int64 { return s.written }

func cloneLayer(ls LayerState) LayerState {
	return LayerState{
		Layer:  ls.Layer,
		Params: append([]float64(nil), ls.Params...),
		M:      append([]float64(nil), ls.M...),
		V:      append([]float64(nil), ls.V...),
	}
}

// ShardLayers assigns the layers of one pipeline stage to its D
// replicas for checkpoint writing: replica r of a stage writes every
// D-th layer, so the write bandwidth scales with D and no layer is
// written twice (§4.5: "we shard the checkpointing across replicas").
func ShardLayers(stageLayers []int, d, replica int) []int {
	if d < 1 || replica < 0 || replica >= d {
		return nil
	}
	var out []int
	for i, l := range stageLayers {
		if i%d == replica {
			out = append(out, l)
		}
	}
	return out
}

// Coverage verifies that the union of shard assignments covers every
// layer exactly once.
func Coverage(stageLayers []int, d int) error {
	seen := make(map[int]int)
	for r := 0; r < d; r++ {
		for _, l := range ShardLayers(stageLayers, d, r) {
			seen[l]++
		}
	}
	for _, l := range stageLayers {
		if seen[l] != 1 {
			return fmt.Errorf("checkpoint: layer %d written %d times", l, seen[l])
		}
	}
	return nil
}

// FileStore persists layers as little-endian binary blobs under a
// directory, mirroring Varuna's local-SSD checkpoint path. The
// manifest is a JSON file written last (write-then-rename) so a crash
// mid-checkpoint leaves the previous manifest intact.
type FileStore struct {
	Dir string

	written int64
}

// NewFileStore creates the directory if needed.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &FileStore{Dir: dir}, nil
}

func (s *FileStore) layerPath(step, layer int) string {
	return filepath.Join(s.Dir, fmt.Sprintf("step%08d-layer%05d.bin", step, layer))
}

// PutLayer implements Store.
func (s *FileStore) PutLayer(step int, ls LayerState) error {
	f, err := os.CreateTemp(s.Dir, "layer-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	if err := writeLayer(f, ls); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, s.layerPath(step, ls.Layer)); err != nil {
		return err
	}
	s.written += ls.Bytes()
	return nil
}

// BytesWritten implements Store.
func (s *FileStore) BytesWritten() int64 { return s.written }

func writeLayer(f *os.File, ls LayerState) error {
	hdr := []int64{int64(ls.Layer), int64(len(ls.Params)), int64(len(ls.M)), int64(len(ls.V))}
	if err := binary.Write(f, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	for _, arr := range [][]float64{ls.Params, ls.M, ls.V} {
		if err := binary.Write(f, binary.LittleEndian, arr); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	return nil
}

// GetLayer implements Store.
func (s *FileStore) GetLayer(step, layer int) (LayerState, error) {
	f, err := os.Open(s.layerPath(step, layer))
	if os.IsNotExist(err) {
		return LayerState{}, &ErrShardUnavailable{Step: step, Layer: layer}
	}
	if err != nil {
		return LayerState{}, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	var hdr [4]int64
	if err := binary.Read(f, binary.LittleEndian, &hdr); err != nil {
		return LayerState{}, fmt.Errorf("checkpoint: %w", err)
	}
	ls := LayerState{
		Layer:  int(hdr[0]),
		Params: make([]float64, hdr[1]),
		M:      make([]float64, hdr[2]),
		V:      make([]float64, hdr[3]),
	}
	for _, arr := range [][]float64{ls.Params, ls.M, ls.V} {
		if err := binary.Read(f, binary.LittleEndian, arr); err != nil {
			return LayerState{}, fmt.Errorf("checkpoint: %w", err)
		}
	}
	return ls, nil
}

func (s *FileStore) manifestPath() string { return filepath.Join(s.Dir, "manifest.json") }

// PutManifest implements Store.
func (s *FileStore) PutManifest(m Manifest) error {
	mm, err := normalizeManifest(m)
	if err != nil {
		return err
	}
	data, err := json.Marshal(mm)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := s.manifestPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return os.Rename(tmp, s.manifestPath())
}

// Latest implements Store.
func (s *FileStore) Latest() (Manifest, bool, error) {
	data, err := os.ReadFile(s.manifestPath())
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, fmt.Errorf("checkpoint: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("checkpoint: %w", err)
	}
	return m, true, nil
}

// Resume loads the full model state (all layers) from the latest
// manifest, regardless of the pipeline mapping that wrote it. The
// caller redistributes layers to its new stages.
func Resume(s Store) (int, map[int]LayerState, error) {
	m, ok, err := s.Latest()
	if err != nil {
		return 0, nil, err
	}
	if !ok {
		return 0, nil, nil // fresh start
	}
	out := make(map[int]LayerState, len(m.Layers))
	for _, l := range m.Layers {
		ls, err := s.GetLayer(m.Step, l)
		if err != nil {
			return 0, nil, err
		}
		out[l] = ls
	}
	return m.Step, out, nil
}

// EqualState reports whether two layer states match exactly.
func EqualState(a, b LayerState) bool {
	eq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] && !(math.IsNaN(x[i]) && math.IsNaN(y[i])) {
				return false
			}
		}
		return true
	}
	return a.Layer == b.Layer && eq(a.Params, b.Params) && eq(a.M, b.M) && eq(a.V, b.V)
}
