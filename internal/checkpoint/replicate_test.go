package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hw"
)

func rlayer(idx int, vals ...float64) LayerState {
	return LayerState{Layer: idx, Params: vals, M: vals, V: vals}
}

func TestErrShardUnavailableTyped(t *testing.T) {
	s := NewMemStore()
	_, err := s.GetLayer(3, 7)
	var shard *ErrShardUnavailable
	if !errors.As(err, &shard) {
		t.Fatalf("MemStore miss = %T, want *ErrShardUnavailable", err)
	}
	if shard.Step != 3 || shard.Layer != 7 {
		t.Fatalf("shard error carries step=%d layer=%d", shard.Step, shard.Layer)
	}
	if !IsShardUnavailable(err) {
		t.Fatal("IsShardUnavailable must match")
	}
	if IsShardUnavailable(errors.New("io error")) {
		t.Fatal("IsShardUnavailable must not match generic errors")
	}
}

func TestFileStoreMissingShardTyped(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = fs.GetLayer(1, 0)
	if !IsShardUnavailable(err) {
		t.Fatalf("FileStore miss = %v, want ErrShardUnavailable", err)
	}
}

func TestFileStoreCorruptShardIsNotUnavailable(t *testing.T) {
	// A truncated blob must surface as a generic (corrupt) error so
	// failover does not silently fall through to a stale replica.
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.PutLayer(1, rlayer(0, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	path := fs.layerPath(1, 0)
	if err := os.WriteFile(path, []byte{0x01, 0x02}, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = fs.GetLayer(1, 0)
	if err == nil || IsShardUnavailable(err) {
		t.Fatalf("corrupt shard error = %v, must be generic", err)
	}
}

func TestFileStorePartialWriteRecovery(t *testing.T) {
	// A crash mid-PutLayer leaves only a temp file; the named shard
	// path must not exist and the store must still report the shard
	// as unavailable, while a crash mid-manifest leaves the previous
	// manifest intact.
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.PutLayer(1, rlayer(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := fs.PutManifest(Manifest{Step: 1, Layers: []int{0}, NumLayers: 1}); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn write: an abandoned temp blob plus a torn
	// manifest temp file.
	if err := os.WriteFile(filepath.Join(dir, "layer-dead1"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fs.manifestPath()+".tmp", []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, ok, err := fs.Latest()
	if err != nil || !ok || m.Step != 1 {
		t.Fatalf("Latest after torn write = (%v, %v, %v), want step 1", m, ok, err)
	}
	if _, err := fs.GetLayer(2, 0); !IsShardUnavailable(err) {
		t.Fatalf("unflushed step must be unavailable, got %v", err)
	}
}

func TestFileStoreMissingManifest(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Latest on an empty dir is a clean fresh start, not an error.
	if _, ok, err := fs.Latest(); ok || err != nil {
		t.Fatalf("empty dir Latest = (ok=%v, err=%v), want fresh start", ok, err)
	}
	// Layers without a manifest still resume fresh.
	if err := fs.PutLayer(1, rlayer(0, 1)); err != nil {
		t.Fatal(err)
	}
	step, state, err := Resume(fs)
	if err != nil || step != 0 || state != nil {
		t.Fatalf("Resume without manifest = (%d, %v, %v), want fresh", step, state, err)
	}
}

func TestPolicyPlace(t *testing.T) {
	p := Policy{Replicas: 2, Spread: hw.DomainZone}
	if !p.Enabled() {
		t.Fatal("k=2 policy must be enabled")
	}
	if (Policy{}).Enabled() || (Policy{Replicas: 1}).Enabled() {
		t.Fatal("k<=1 policies must be disabled")
	}
	domains := []int{0, 1, 2, 3}
	places := p.Place(6, domains)
	if len(places) != 6 {
		t.Fatalf("placements = %d, want 6", len(places))
	}
	for i, repl := range places {
		if len(repl) != 2 {
			t.Fatalf("shard %d has %d replicas", i, len(repl))
		}
		if repl[0] == repl[1] {
			t.Fatalf("shard %d replicas share domain %d (anti-affinity violated)", i, repl[0])
		}
	}
	// Primaries rotate so load spreads.
	if places[0][0] == places[1][0] {
		t.Fatal("consecutive shards must rotate primary domains")
	}
	// k > domain count dedups to the domain count.
	big := Policy{Replicas: 5}.Place(1, []int{0, 1})
	if len(big[0]) != 2 {
		t.Fatalf("over-replicated placement = %v, want 2 distinct domains", big[0])
	}
	if (Policy{Replicas: 2}).Place(0, domains) != nil || (Policy{Replicas: 2}).Place(3, nil) != nil {
		t.Fatal("degenerate placements must be nil")
	}
}

func TestReplicatedFallback(t *testing.T) {
	a, b := NewMemStore(), NewMemStore()
	r := NewReplicated(a, b)
	ls := rlayer(0, 1, 2)
	if err := r.PutLayer(1, ls); err != nil {
		t.Fatal(err)
	}
	if err := r.PutManifest(Manifest{Step: 1, Layers: []int{0}, NumLayers: 1}); err != nil {
		t.Fatal(err)
	}
	// Kill replica a (zone loss): reads fall through to b.
	r.Stores[0] = NewMemStore()
	got, err := r.GetLayer(1, 0)
	if err != nil || !EqualState(got, ls) {
		t.Fatalf("fallback read = (%v, %v)", got, err)
	}
	step, state, err := Resume(r)
	if err != nil || step != 1 || !EqualState(state[0], ls) {
		t.Fatalf("Resume over replicas = (%d, %v, %v)", step, state, err)
	}
	// Both replicas gone: typed unavailable.
	r.Stores[1] = NewMemStore()
	if _, err := r.GetLayer(1, 0); !IsShardUnavailable(err) {
		t.Fatalf("all-missing read = %v, want ErrShardUnavailable", err)
	}
}

func TestReplicatedLatestNewestWins(t *testing.T) {
	a, b := NewMemStore(), NewMemStore()
	for step := 1; step <= 2; step++ {
		if err := a.PutLayer(step, rlayer(0, float64(step))); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.PutManifest(Manifest{Step: 2, Layers: []int{0}, NumLayers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.PutLayer(1, rlayer(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.PutManifest(Manifest{Step: 1, Layers: []int{0}, NumLayers: 1}); err != nil {
		t.Fatal(err)
	}
	r := NewReplicated(a, b)
	m, ok, err := r.Latest()
	if err != nil || !ok || m.Step != 2 {
		t.Fatalf("Latest across replicas = (%v, %v, %v), want step 2", m, ok, err)
	}
	if r.BytesWritten() != a.BytesWritten()+b.BytesWritten() {
		t.Fatal("BytesWritten must sum replicas")
	}
}

func TestReplicaRoundTripEquality(t *testing.T) {
	// Satellite: replica round-trip through FileStores preserves state
	// bit-for-bit under EqualState.
	fa, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fb, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplicated(fa, fb)
	want := map[int]LayerState{
		0: rlayer(0, 1.5, -2.25, 3.125),
		1: rlayer(1, 0.1, 0.2),
	}
	for _, ls := range want {
		if err := r.PutLayer(4, ls); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.PutManifest(Manifest{Step: 4, Layers: []int{0, 1}, NumLayers: 2}); err != nil {
		t.Fatal(err)
	}
	for _, solo := range []Store{fa, fb} {
		step, state, err := Resume(solo)
		if err != nil || step != 4 {
			t.Fatalf("replica resume = (%d, %v)", step, err)
		}
		for l, ls := range want {
			if !EqualState(state[l], ls) {
				t.Fatalf("replica layer %d state differs", l)
			}
		}
	}
}
