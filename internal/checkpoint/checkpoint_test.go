package checkpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func layer(i int, seed float64) LayerState {
	n := 8
	ls := LayerState{Layer: i, Params: make([]float64, n), M: make([]float64, n), V: make([]float64, n)}
	for j := range ls.Params {
		ls.Params[j] = seed + float64(j)
		ls.M[j] = seed * 0.1
		ls.V[j] = seed * 0.01
	}
	return ls
}

func testStoreRoundTrip(t *testing.T, s Store) {
	t.Helper()
	for i := 0; i < 4; i++ {
		if err := s.PutLayer(7, layer(i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutManifest(Manifest{Step: 7, Layers: []int{0, 1, 2, 3}, NumLayers: 4}); err != nil {
		t.Fatal(err)
	}
	m, ok, err := s.Latest()
	if err != nil || !ok {
		t.Fatalf("Latest: %v ok=%v", err, ok)
	}
	if m.Step != 7 || len(m.Layers) != 4 {
		t.Fatalf("manifest %+v", m)
	}
	got, err := s.GetLayer(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualState(got, layer(2, 2)) {
		t.Fatal("layer 2 corrupted on round trip")
	}
	if _, err := s.GetLayer(7, 99); err == nil {
		t.Fatal("missing layer must error")
	}
}

func TestMemStoreRoundTrip(t *testing.T) { testStoreRoundTrip(t, NewMemStore()) }

func TestLayerStateBytes(t *testing.T) {
	ls := layer(0, 1) // 8 params + 8 m + 8 v, one float64 each
	if got := ls.Bytes(); got != 24*8 {
		t.Fatalf("Bytes() = %d, want %d", got, 24*8)
	}
	if got := (LayerState{}).Bytes(); got != 0 {
		t.Fatalf("empty layer Bytes() = %d", got)
	}
}

// testByteAccounting pins the per-layer byte plumbing the restart cost
// model prices from: stores count written bytes, manifests carry
// per-layer sizes sorted with their layers.
func testByteAccounting(t *testing.T, s Store) {
	t.Helper()
	if s.BytesWritten() != 0 {
		t.Fatalf("fresh store reports %d bytes written", s.BytesWritten())
	}
	var want int64
	for i := 0; i < 3; i++ {
		ls := layer(i, float64(i))
		want += ls.Bytes()
		if err := s.PutLayer(1, ls); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.BytesWritten(); got != want {
		t.Fatalf("BytesWritten = %d, want %d", got, want)
	}
	// Manifest byte entries must align with layers; deliberately out of
	// order to check co-sorting.
	per := layer(0, 0).Bytes()
	err := s.PutManifest(Manifest{
		Step: 1, Layers: []int{2, 0, 1}, LayerBytes: []int64{per + 2, per, per + 1}, NumLayers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, ok, err := s.Latest()
	if err != nil || !ok {
		t.Fatalf("Latest: %v ok=%v", err, ok)
	}
	for i, l := range m.Layers {
		if l != i {
			t.Fatalf("layers not sorted: %v", m.Layers)
		}
		if m.LayerBytes[i] != per+int64(i) {
			t.Fatalf("layer %d bytes %d did not follow its layer through the sort (%v)", l, m.LayerBytes[i], m.LayerBytes)
		}
	}
	if got := m.TotalBytes(); got != 3*per+3 {
		t.Fatalf("TotalBytes = %d, want %d", got, 3*per+3)
	}
	if got := m.BytesFor(1); got != per+1 {
		t.Fatalf("BytesFor(1) = %d, want %d", got, per+1)
	}
	if got := m.BytesFor(9); got != 0 {
		t.Fatalf("BytesFor(missing) = %d, want 0", got)
	}
	// A mismatched byte vector must be rejected.
	err = s.PutManifest(Manifest{Step: 1, Layers: []int{0, 1}, LayerBytes: []int64{per}, NumLayers: 3})
	if err == nil {
		t.Fatal("manifest with misaligned LayerBytes must fail")
	}
}

func TestMemStoreByteAccounting(t *testing.T) { testByteAccounting(t, NewMemStore()) }

func TestFileStoreByteAccounting(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testByteAccounting(t, fs)
}

func TestFileStoreRoundTrip(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStoreRoundTrip(t, fs)
}

func TestMemStoreManifestRequiresLayers(t *testing.T) {
	s := NewMemStore()
	if err := s.PutManifest(Manifest{Step: 1, Layers: []int{0}}); err == nil {
		t.Fatal("manifest over missing layers must fail")
	}
}

func TestMemStoreIsolation(t *testing.T) {
	// Mutating a loaded layer must not corrupt the store.
	s := NewMemStore()
	orig := layer(0, 1)
	if err := s.PutLayer(1, orig); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetLayer(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got.Params[0] = 999
	again, err := s.GetLayer(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.Params[0] == 999 {
		t.Fatal("store aliased caller memory")
	}
}

func TestShardCoverage(t *testing.T) {
	layers := []int{3, 4, 5, 6, 7, 8, 9}
	for d := 1; d <= 8; d++ {
		if err := Coverage(layers, d); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
	if ShardLayers(layers, 0, 0) != nil {
		t.Fatal("d=0 must yield nothing")
	}
	if ShardLayers(layers, 2, 5) != nil {
		t.Fatal("replica out of range must yield nothing")
	}
}

func TestShardCoverageProperty(t *testing.T) {
	if err := quick.Check(func(n, d uint8) bool {
		layers := make([]int, int(n%40)+1)
		for i := range layers {
			layers[i] = i * 3
		}
		return Coverage(layers, int(d%8)+1) == nil
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestShardBalance(t *testing.T) {
	layers := make([]int, 24)
	for i := range layers {
		layers[i] = i
	}
	for _, d := range []int{2, 3, 4, 6} {
		for r := 0; r < d; r++ {
			got := len(ShardLayers(layers, d, r))
			if got != 24/d {
				t.Fatalf("d=%d r=%d: shard size %d, want %d", d, r, got, 24/d)
			}
		}
	}
}

func TestResumeAcrossDifferentDepth(t *testing.T) {
	// §4.5: per-layer checkpoints let the morpher resume under a
	// different layers-to-stages mapping. Write as 4 stages, read all
	// layers back as 2 stages.
	s := NewMemStore()
	const numLayers = 12
	var all []int
	for l := 0; l < numLayers; l++ {
		if err := s.PutLayer(3, layer(l, float64(l)*1.5)); err != nil {
			t.Fatal(err)
		}
		all = append(all, l)
	}
	if err := s.PutManifest(Manifest{Step: 3, Layers: all, NumLayers: numLayers}); err != nil {
		t.Fatal(err)
	}
	step, state, err := Resume(s)
	if err != nil {
		t.Fatal(err)
	}
	if step != 3 || len(state) != numLayers {
		t.Fatalf("resume step=%d layers=%d", step, len(state))
	}
	for l := 0; l < numLayers; l++ {
		if !EqualState(state[l], layer(l, float64(l)*1.5)) {
			t.Fatalf("layer %d state mismatch after resume", l)
		}
	}
}

func TestResumeFreshStart(t *testing.T) {
	step, state, err := Resume(NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	if step != 0 || state != nil {
		t.Fatal("empty store must resume fresh")
	}
}

func TestFileStoreCrashSafety(t *testing.T) {
	// A newer step's layers without a manifest must not change Latest.
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStoreRoundTrip(t, fs)
	if err := fs.PutLayer(8, layer(0, 9)); err != nil {
		t.Fatal(err)
	}
	m, ok, err := fs.Latest()
	if err != nil || !ok || m.Step != 7 {
		t.Fatalf("Latest after partial write: %+v ok=%v err=%v", m, ok, err)
	}
}

func TestEqualState(t *testing.T) {
	a := layer(1, 2)
	if !EqualState(a, a) {
		t.Fatal("self equality")
	}
	b := layer(1, 2)
	b.Params[0] = 42
	if EqualState(a, b) {
		t.Fatal("different params must differ")
	}
	c := layer(2, 2)
	if EqualState(a, c) {
		t.Fatal("different layer index must differ")
	}
	n1 := LayerState{Layer: 0, Params: []float64{math.NaN()}}
	n2 := LayerState{Layer: 0, Params: []float64{math.NaN()}}
	if !EqualState(n1, n2) {
		t.Fatal("NaN state must compare equal to itself")
	}
}
