package checkpoint

import (
	"errors"
	"fmt"

	"repro/internal/hw"
)

// ErrShardUnavailable reports that a checkpoint shard is missing from
// a store — a replica never received it or its domain is gone. It is
// distinct from a corrupt-store error (truncated or unreadable blob):
// failover retries other replicas on a missing shard but must surface
// corruption to the caller.
type ErrShardUnavailable struct {
	Step, Layer int
}

// Error implements error.
func (e *ErrShardUnavailable) Error() string {
	return fmt.Sprintf("checkpoint: step %d layer %d unavailable", e.Step, e.Layer)
}

// IsShardUnavailable reports whether err wraps an ErrShardUnavailable.
func IsShardUnavailable(err error) bool {
	var e *ErrShardUnavailable
	return errors.As(err, &e)
}

// Policy is a checkpoint replication policy: each shard is written to
// Replicas stores placed in distinct failure domains at the Spread
// level. The zero value disables replication (one copy, as before).
type Policy struct {
	// Replicas is the copy count per shard; <= 1 means no replication.
	Replicas int
	// Spread is the anti-affinity level: no two replicas of a shard
	// share a domain at this level (DomainZone survives a zone loss).
	Spread hw.DomainLevel
}

// Enabled reports whether the policy adds redundancy.
func (p Policy) Enabled() bool { return p.Replicas > 1 }

// Place assigns replica domains for n shards over the given domain
// ids with ring anti-affinity: shard i's replicas land on
// domains[(i+j) % len(domains)] for j < Replicas, so consecutive
// shards rotate their primary domain and no shard keeps two copies in
// one domain (unless Replicas exceeds the domain count, in which case
// placements dedup to every domain).
func (p Policy) Place(n int, domains []int) [][]int {
	if n <= 0 || len(domains) == 0 {
		return nil
	}
	k := p.Replicas
	if k < 1 {
		k = 1
	}
	if k > len(domains) {
		k = len(domains)
	}
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		repl := make([]int, k)
		for j := 0; j < k; j++ {
			repl[j] = domains[(i+j)%len(domains)]
		}
		out[i] = repl
	}
	return out
}

// Replicated fans a checkpoint stream out to several stores — one per
// replica domain — and reads back from whichever replicas survive.
// Writes go to every store; reads fall through missing shards to the
// next replica and only fail when all replicas are missing (or any is
// corrupt, which is surfaced immediately).
type Replicated struct {
	Stores []Store
}

// NewReplicated wraps the given replica stores.
func NewReplicated(stores ...Store) *Replicated {
	return &Replicated{Stores: stores}
}

// PutLayer implements Store: the shard is pushed to every replica.
func (r *Replicated) PutLayer(step int, ls LayerState) error {
	for _, s := range r.Stores {
		if err := s.PutLayer(step, ls); err != nil {
			return err
		}
	}
	return nil
}

// GetLayer implements Store: replicas are tried in order; a missing
// shard falls through to the next replica, corruption is fatal.
func (r *Replicated) GetLayer(step, layer int) (LayerState, error) {
	for _, s := range r.Stores {
		ls, err := s.GetLayer(step, layer)
		if err == nil {
			return ls, nil
		}
		if !IsShardUnavailable(err) {
			return LayerState{}, err
		}
	}
	return LayerState{}, &ErrShardUnavailable{Step: step, Layer: layer}
}

// PutManifest implements Store.
func (r *Replicated) PutManifest(m Manifest) error {
	for _, s := range r.Stores {
		if err := s.PutManifest(m); err != nil {
			return err
		}
	}
	return nil
}

// Latest implements Store: the newest manifest across replicas wins,
// so a replica that missed the final checkpoint round cannot roll the
// job back behind a surviving newer copy.
func (r *Replicated) Latest() (Manifest, bool, error) {
	var best Manifest
	found := false
	for _, s := range r.Stores {
		m, ok, err := s.Latest()
		if err != nil {
			return Manifest{}, false, err
		}
		if ok && (!found || m.Step > best.Step) {
			best, found = m, true
		}
	}
	return best, found, nil
}

// BytesWritten implements Store: total bytes across replicas, so the
// flush-cost observable reflects the replication amplification.
func (r *Replicated) BytesWritten() int64 {
	var n int64
	for _, s := range r.Stores {
		n += s.BytesWritten()
	}
	return n
}
