package price

import (
	"math"
	"testing"

	"repro/internal/simtime"
)

// randCurve builds one of the three curve families from the seed —
// the property tests should hold on any curve, not just constants.
func randCurve(t *testing.T, rng *simtime.Rand) *Curve {
	t.Helper()
	switch rng.Intn(3) {
	case 0:
		return Constant(0.5 + 3*rng.Float64())
	case 1:
		steps := []Step{{At: 0, PerGPUHour: 1 + rng.Float64()}}
		at := simtime.Time(0)
		for i := 0; i < 1+rng.Intn(6); i++ {
			at = at.Add(simtime.Duration(1+rng.Intn(120)) * simtime.Minute)
			steps = append(steps, Step{At: at, PerGPUHour: 0.2 + 4*rng.Float64()})
		}
		c, err := FromSteps(steps)
		if err != nil {
			t.Fatalf("FromSteps: %v", err)
		}
		return c
	default:
		c, err := MeanReverting(MROptions{
			Mean: 1 + 2*rng.Float64(), Vol: 0.3 * rng.Float64(),
			Reversion: 0.2, Step: 15 * simtime.Minute, Horizon: 48 * simtime.Hour,
		}, int64(rng.Intn(1<<30)))
		if err != nil {
			t.Fatalf("MeanReverting: %v", err)
		}
		return c
	}
}

// charge is one randomly drawn Charge call.
type charge struct {
	b        Bucket
	from, to simtime.Time
	gpus     int
}

func randCharges(rng *simtime.Rand, n int) []charge {
	out := make([]charge, 0, n)
	cursor := simtime.Time(0)
	for i := 0; i < n; i++ {
		from := cursor
		if rng.Intn(4) == 0 {
			// Occasionally jump backwards or charge a degenerate span:
			// the meter must tolerate overlapping and empty spans.
			from = simtime.Time(rng.Intn(48*3600)) * simtime.Time(simtime.Second)
		}
		span := simtime.Duration(rng.Intn(3*3600)) * simtime.Second
		to := from.Add(span)
		cursor = to
		out = append(out, charge{
			b:    Bucket(rng.Intn(int(NumBuckets))),
			from: from,
			to:   to,
			gpus: rng.Intn(300) - 10, // sometimes zero or negative
		})
	}
	return out
}

// TestMeterProperties drives random span sequences over random curves
// and checks the meter's algebraic invariants after every charge:
// bucket sums equal the total exactly (same accumulators, same
// summation order), and spend never decreases (curves are
// non-negative, so no charge can refund).
func TestMeterProperties(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := simtime.NewRand(seed)
		m := NewMeter(randCurve(t, rng))
		prev := 0.0
		for i, c := range randCharges(rng, 200) {
			m.Charge(c.b, c.from, c.to, c.gpus)
			sum := m.InBucket(Compute) + m.InBucket(Reconfig) + m.InBucket(Idle)
			if sum != m.Total() {
				t.Fatalf("seed %d charge %d: bucket sum %v != total %v", seed, i, sum, m.Total())
			}
			if m.Total() < prev {
				t.Fatalf("seed %d charge %d: total decreased %v -> %v", seed, i, prev, m.Total())
			}
			if c.gpus <= 0 || c.to <= c.from {
				if m.Total() != prev {
					t.Fatalf("seed %d charge %d: degenerate span changed the bill", seed, i)
				}
			}
			prev = m.Total()
		}
	}
}

// TestMeterStateRoundTripMidSequence exports the meter at random
// points mid-sequence, imports into a fresh meter, and replays the
// remaining charges on both: every accumulator must stay bit-identical
// the whole way — the warm-resume property restart relies on.
func TestMeterStateRoundTripMidSequence(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := simtime.NewRand(seed + 1000)
		curve := randCurve(t, rng)
		m := NewMeter(curve)
		charges := randCharges(rng, 150)
		cut := 1 + rng.Intn(len(charges)-1)
		for _, c := range charges[:cut] {
			m.Charge(c.b, c.from, c.to, c.gpus)
		}
		data, err := m.ExportState()
		if err != nil {
			t.Fatalf("seed %d: export: %v", seed, err)
		}
		restored := NewMeter(curve)
		if err := restored.ImportState(data); err != nil {
			t.Fatalf("seed %d: import: %v", seed, err)
		}
		bits := func(m *Meter, b Bucket) uint64 { return math.Float64bits(m.InBucket(b)) }
		for b := Compute; b < NumBuckets; b++ {
			if bits(m, b) != bits(restored, b) {
				t.Fatalf("seed %d: bucket %v not bit-identical after round-trip: %x vs %x",
					seed, b, bits(m, b), bits(restored, b))
			}
		}
		// The restored meter must continue bit-identically, not just
		// match at the snapshot.
		for i, c := range charges[cut:] {
			m.Charge(c.b, c.from, c.to, c.gpus)
			restored.Charge(c.b, c.from, c.to, c.gpus)
			for b := Compute; b < NumBuckets; b++ {
				if bits(m, b) != bits(restored, b) {
					t.Fatalf("seed %d: bucket %v diverged %d charges after resume", seed, b, i)
				}
			}
		}
	}
}

// TestTeeMeterSharedBill checks the fleet billing contract: every
// charge lands in the job's own meter and, mirrored as the exact same
// float, in the pool meter. One job tees bit-identically; several jobs
// sum to the pool bill up to float association order.
func TestTeeMeterSharedBill(t *testing.T) {
	rng := simtime.NewRand(7)
	curve := randCurve(t, rng)

	// Single tee: pool accumulates the identical charge stream, so it
	// matches the job meter bit-for-bit.
	pool := NewMeter(curve)
	job := NewTeeMeter(curve, pool)
	for _, c := range randCharges(rng, 100) {
		job.Charge(c.b, c.from, c.to, c.gpus)
	}
	for b := Compute; b < NumBuckets; b++ {
		if math.Float64bits(job.InBucket(b)) != math.Float64bits(pool.InBucket(b)) {
			t.Fatalf("single-tee bucket %v: job %v != pool %v", b, job.InBucket(b), pool.InBucket(b))
		}
	}

	// Several jobs interleaved: per-job bills sum to the pool bill
	// (the grouping differs, so compare within float tolerance).
	pool = NewMeter(curve)
	jobs := []*Meter{NewTeeMeter(curve, pool), NewTeeMeter(curve, pool), NewTeeMeter(curve, pool)}
	for _, c := range randCharges(rng, 300) {
		jobs[rng.Intn(len(jobs))].Charge(c.b, c.from, c.to, c.gpus)
	}
	var sum float64
	for _, j := range jobs {
		sum += j.Total()
	}
	if diff := math.Abs(sum - pool.Total()); diff > 1e-9*math.Max(1, pool.Total()) {
		t.Fatalf("per-job bills %v do not sum to pool bill %v (diff %v)", sum, pool.Total(), diff)
	}
	if pool.Total() <= 0 {
		t.Fatal("pool accumulated nothing")
	}

	// A tee meter's exported state is its own bill only.
	data, err := jobs[0].ExportState()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	fresh := NewMeter(curve)
	if err := fresh.ImportState(data); err != nil {
		t.Fatalf("import: %v", err)
	}
	if math.Float64bits(fresh.Total()) != math.Float64bits(jobs[0].Total()) {
		t.Fatal("tee meter state must round-trip the job's own bill")
	}
}
