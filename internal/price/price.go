// Package price models the dollar side of spot training. Varuna's
// pitch is *low-cost* training on preemptible VMs, but throughput
// alone does not decide cost: spot prices move with the same
// datacenter load cycle that drives availability, so the economic
// value of a GPU-hour changes while a job runs. This package supplies
// the three pieces the decision stack needs to reason in dollars:
//
//   - Curve: the per-VM-kind spot price as a step function over
//     simulated time (constant, traced, or stochastic mean-reverting;
//     deterministic under seed),
//   - Meter: integration of fleet-size × price over a manager
//     timeline into dollars, attributed to compute, reconfiguration
//     downtime and idle-capacity buckets,
//   - ChooseMarket: an expected-$-per-example comparison across VM
//     kinds (cheap-but-volatile vs pricier-but-stable), fed by the
//     per-kind hazards the spot.GapEstimator observes.
//
// Everything here is a pure deterministic function of its inputs, so
// decisions built on top stay memoizable and timelines stay
// bit-reproducible.
package price

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// Step is one breakpoint of a price curve: from At (inclusive) the
// price is PerGPUHour dollars per GPU-hour, until the next step.
type Step struct {
	At         simtime.Time `json:"at"`
	PerGPUHour float64      `json:"per_gpu_hour"`
}

// Curve is a right-continuous step function of spot price over
// simulated time, in dollars per GPU-hour. The zero curve (no steps)
// prices everything at zero.
type Curve struct {
	steps []Step
}

// Constant builds a flat curve at the given dollars per GPU-hour.
func Constant(perGPUHour float64) *Curve {
	return &Curve{steps: []Step{{At: 0, PerGPUHour: perGPUHour}}}
}

// FromSteps builds a curve from an explicit price trace (e.g. a
// recorded spot price history). Steps must be in strictly increasing
// time order with non-negative prices; before the first step the first
// step's price applies.
func FromSteps(steps []Step) (*Curve, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("price: empty trace")
	}
	for i, s := range steps {
		if s.PerGPUHour < 0 {
			return nil, fmt.Errorf("price: negative price %v at step %d", s.PerGPUHour, i)
		}
		if i > 0 && s.At <= steps[i-1].At {
			return nil, fmt.Errorf("price: steps must be strictly increasing in time (step %d)", i)
		}
	}
	return &Curve{steps: append([]Step(nil), steps...)}, nil
}

// MROptions parameterizes a mean-reverting (discretized
// Ornstein–Uhlenbeck) price process — the standard shape of spot price
// series: excursions away from a long-run mean that decay back, with
// occasional spikes when capacity tightens.
type MROptions struct {
	// Mean is the long-run price in dollars per GPU-hour.
	Mean float64
	// Vol is the per-step shock scale as a fraction of Mean
	// (e.g. 0.15 = 15% of the mean per step).
	Vol float64
	// Reversion is the per-step pull back toward Mean (0 < r <= 1;
	// higher reverts faster).
	Reversion float64
	// Floor clamps the price from below (defaults to Mean/4 when 0:
	// spot prices never reach zero — the provider sets a reserve).
	Floor float64
	// Step is the repricing interval (defaults to 10 minutes).
	Step simtime.Duration
	// Horizon is how far the generated curve extends; past it the last
	// price holds.
	Horizon simtime.Duration
}

// MeanReverting generates a stochastic mean-reverting price curve,
// deterministic under seed: the same (opts, seed) pair always yields
// the same steps.
func MeanReverting(opts MROptions, seed int64) (*Curve, error) {
	if opts.Mean <= 0 {
		return nil, fmt.Errorf("price: mean-reverting curve needs Mean > 0")
	}
	if opts.Reversion <= 0 || opts.Reversion > 1 {
		return nil, fmt.Errorf("price: Reversion must be in (0, 1]")
	}
	if opts.Horizon <= 0 {
		return nil, fmt.Errorf("price: mean-reverting curve needs a Horizon")
	}
	step := opts.Step
	if step <= 0 {
		step = 10 * simtime.Minute
	}
	floor := opts.Floor
	if floor <= 0 {
		floor = opts.Mean / 4
	}
	rng := simtime.NewRand(seed)
	x := opts.Mean
	var steps []Step
	for t := simtime.Time(0); t <= simtime.Time(opts.Horizon); t = t.Add(step) {
		steps = append(steps, Step{At: t, PerGPUHour: x})
		x += opts.Reversion*(opts.Mean-x) + opts.Vol*opts.Mean*rng.NormFloat64()
		if x < floor {
			x = floor
		}
	}
	return &Curve{steps: steps}, nil
}

// At reports the price in dollars per GPU-hour at instant t.
func (c *Curve) At(t simtime.Time) float64 {
	if c == nil || len(c.steps) == 0 {
		return 0
	}
	// First step at or after t+1: the active step is the one before.
	i := sort.Search(len(c.steps), func(i int) bool { return c.steps[i].At > t })
	if i == 0 {
		return c.steps[0].PerGPUHour
	}
	return c.steps[i-1].PerGPUHour
}

// Integrate reports ∫ price dt over [from, to] for one GPU, in
// dollars (i.e. dollars per GPU-hour × hours). Stepwise-exact and
// O(log steps + overlap): only the steps overlapping the window are
// visited, in time order, so long traced curves (a real price
// history at minute resolution) stay cheap to meter thousands of
// times per timeline.
func (c *Curve) Integrate(from, to simtime.Time) float64 {
	if c == nil || len(c.steps) == 0 || to <= from {
		return 0
	}
	// First step that could overlap: the one active at from (the
	// first step's price extends backward before its At).
	i := sort.Search(len(c.steps), func(i int) bool { return c.steps[i].At > from })
	if i > 0 {
		i--
	}
	var dollars float64
	for ; i < len(c.steps) && c.steps[i].At < to; i++ {
		start := simtime.Max(c.steps[i].At, from)
		if i == 0 {
			start = from // first step's price extends backward
		}
		end := simtime.Time(1<<63 - 1)
		if i+1 < len(c.steps) {
			end = c.steps[i+1].At
		}
		b := simtime.Min(end, to)
		if b > start {
			dollars += c.steps[i].PerGPUHour * b.Sub(start).Seconds() / 3600
		}
	}
	return dollars
}

// Scaled returns a copy of the curve with every price in [from, to)
// multiplied by factor — a capacity-crunch price shock (factor > 1) or
// a promotional dip (factor < 1), layered over whatever shape the base
// curve has. Breakpoints are inserted at the window edges so the base
// curve is untouched outside it. Scaling the zero curve returns nil.
func (c *Curve) Scaled(from, to simtime.Time, factor float64) (*Curve, error) {
	if factor < 0 {
		return nil, fmt.Errorf("price: negative shock factor %v", factor)
	}
	if to <= from {
		return nil, fmt.Errorf("price: shock window [%v, %v) is empty", from, to)
	}
	if c == nil || len(c.steps) == 0 {
		return nil, nil
	}
	var steps []Step
	push := func(at simtime.Time, p float64) {
		if n := len(steps); n > 0 {
			if steps[n-1].At == at {
				steps[n-1].PerGPUHour = p
				return
			}
			if steps[n-1].PerGPUHour == p {
				return
			}
		}
		steps = append(steps, Step{At: at, PerGPUHour: p})
	}
	// The first step's price extends backward, so a window starting
	// before it shocks that backward extension too.
	if from < c.steps[0].At {
		push(from, c.steps[0].PerGPUHour*factor)
		if to < c.steps[0].At {
			push(to, c.steps[0].PerGPUHour)
		}
	}
	for i, s := range c.steps {
		end := simtime.Time(1<<63 - 1)
		if i+1 < len(c.steps) {
			end = c.steps[i+1].At
		}
		at := s.At
		if at < from && end > from {
			push(at, s.PerGPUHour)
			at = from
		}
		in := at >= from && at < to
		p := s.PerGPUHour
		if in {
			p *= factor
		}
		push(at, p)
		if in && end > to {
			push(to, s.PerGPUHour)
		}
	}
	return &Curve{steps: steps}, nil
}

// Mean reports the time-weighted average price over [from, to] in
// dollars per GPU-hour.
func (c *Curve) Mean(from, to simtime.Time) float64 {
	if to <= from {
		return c.At(from)
	}
	return c.Integrate(from, to) / (to.Sub(from).Seconds() / 3600)
}

// Constant reports whether the curve never changes price — the case
// in which dollar objectives cannot shift spend across time.
func (c *Curve) Constant() bool {
	if c == nil || len(c.steps) <= 1 {
		return true
	}
	first := c.steps[0].PerGPUHour
	for _, s := range c.steps[1:] {
		if s.PerGPUHour != first {
			return false
		}
	}
	return true
}

// Steps returns a copy of the curve's breakpoints (for plotting and
// serialization).
func (c *Curve) Steps() []Step {
	if c == nil {
		return nil
	}
	return append([]Step(nil), c.steps...)
}
