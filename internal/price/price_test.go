package price

import (
	"math"
	"testing"

	"repro/internal/simtime"
)

func TestConstantCurve(t *testing.T) {
	c := Constant(2.5)
	if got := c.At(0); got != 2.5 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(simtime.Time(100 * simtime.Hour)); got != 2.5 {
		t.Fatalf("At(100h) = %v", got)
	}
	if !c.Constant() {
		t.Fatal("Constant() must report true")
	}
	// One GPU for two hours at $2.5/GPU·h = $5.
	got := c.Integrate(0, simtime.Time(2*simtime.Hour))
	if math.Abs(got-5) > 1e-12 {
		t.Fatalf("Integrate = %v, want 5", got)
	}
	if m := c.Mean(0, simtime.Time(7*simtime.Hour)); math.Abs(m-2.5) > 1e-12 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestFromStepsValidation(t *testing.T) {
	if _, err := FromSteps(nil); err == nil {
		t.Fatal("empty trace must fail")
	}
	if _, err := FromSteps([]Step{{At: 0, PerGPUHour: -1}}); err == nil {
		t.Fatal("negative price must fail")
	}
	if _, err := FromSteps([]Step{{At: 5, PerGPUHour: 1}, {At: 5, PerGPUHour: 2}}); err == nil {
		t.Fatal("non-increasing steps must fail")
	}
}

func TestStepCurveAtAndIntegrate(t *testing.T) {
	h := simtime.Time(simtime.Hour)
	c, err := FromSteps([]Step{
		{At: 1 * h, PerGPUHour: 1},
		{At: 2 * h, PerGPUHour: 3},
		{At: 4 * h, PerGPUHour: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Constant() {
		t.Fatal("stepped curve must not report Constant")
	}
	// Before the first step the first price applies.
	if got := c.At(0); got != 1 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(2 * h); got != 3 {
		t.Fatalf("At(2h) = %v (right-continuous)", got)
	}
	if got := c.At(10 * h); got != 2 {
		t.Fatalf("At(10h) = %v (last price holds)", got)
	}
	// [0h, 5h]: 2h at $1 + 2h at $3 + 1h at $2 = $10.
	got := c.Integrate(0, 5*h)
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("Integrate = %v, want 10", got)
	}
	// Window inside one step.
	got = c.Integrate(2*h+h/2, 3*h)
	if math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("partial-step Integrate = %v, want 1.5", got)
	}
	// Degenerate and reversed windows integrate to zero.
	if c.Integrate(3*h, 3*h) != 0 || c.Integrate(4*h, 3*h) != 0 {
		t.Fatal("empty window must integrate to 0")
	}
}

func TestIntegrateAdditive(t *testing.T) {
	c, err := MeanReverting(MROptions{Mean: 2, Vol: 0.2, Reversion: 0.3, Horizon: 24 * simtime.Hour}, 7)
	if err != nil {
		t.Fatal(err)
	}
	a := simtime.Time(90 * simtime.Minute)
	b := simtime.Time(13*simtime.Hour + 17*simtime.Minute)
	mid := simtime.Time(5 * simtime.Hour)
	whole := c.Integrate(a, b)
	split := c.Integrate(a, mid) + c.Integrate(mid, b)
	if math.Abs(whole-split) > 1e-9 {
		t.Fatalf("Integrate not additive: %v vs %v", whole, split)
	}
}

func TestMeanRevertingDeterministicAndBounded(t *testing.T) {
	opts := MROptions{Mean: 3, Vol: 0.25, Reversion: 0.2, Horizon: 48 * simtime.Hour}
	a, err := MeanReverting(opts, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeanReverting(opts, 42)
	if err != nil {
		t.Fatal(err)
	}
	as, bs := a.Steps(), b.Steps()
	if len(as) == 0 || len(as) != len(bs) {
		t.Fatalf("step counts differ: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("step %d differs under the same seed: %+v vs %+v", i, as[i], bs[i])
		}
	}
	for i, s := range as {
		if s.PerGPUHour < opts.Mean/4 {
			t.Fatalf("step %d price %v below the default floor", i, s.PerGPUHour)
		}
	}
	other, err := MeanReverting(opts, 43)
	if err != nil {
		t.Fatal(err)
	}
	if same := func() bool {
		os := other.Steps()
		for i := range as {
			if as[i] != os[i] {
				return false
			}
		}
		return true
	}(); same {
		t.Fatal("different seeds must give different curves")
	}
	// The long-run average stays near the mean.
	m := a.Mean(0, simtime.Time(48*simtime.Hour))
	if m < opts.Mean*0.6 || m > opts.Mean*1.4 {
		t.Fatalf("48h mean %v too far from %v", m, opts.Mean)
	}
}

func TestMeanRevertingValidation(t *testing.T) {
	if _, err := MeanReverting(MROptions{Mean: 0, Reversion: 0.5, Horizon: simtime.Hour}, 1); err == nil {
		t.Fatal("Mean <= 0 must fail")
	}
	if _, err := MeanReverting(MROptions{Mean: 1, Reversion: 0, Horizon: simtime.Hour}, 1); err == nil {
		t.Fatal("Reversion = 0 must fail")
	}
	if _, err := MeanReverting(MROptions{Mean: 1, Reversion: 0.5}, 1); err == nil {
		t.Fatal("missing horizon must fail")
	}
}

func TestNilCurveIsFree(t *testing.T) {
	var c *Curve
	if c.At(0) != 0 || c.Integrate(0, simtime.Time(simtime.Hour)) != 0 {
		t.Fatal("nil curve must price at zero")
	}
	if !c.Constant() {
		t.Fatal("nil curve is constant")
	}
}

func TestMeterBuckets(t *testing.T) {
	h := simtime.Time(simtime.Hour)
	m := NewMeter(Constant(2))
	m.Charge(Compute, 0, h, 10)            // 10 GPU·h at $2 = $20
	m.Charge(Idle, 0, h, 3)                // $6
	m.Charge(Reconfig, h, h+h/2, 13)       // 6.5 GPU·h = $13
	m.Charge(Compute, 2*h, 2*h, 5)         // empty span: free
	m.Charge(Compute, 3*h, 2*h, 5)         // reversed span: free
	m.Charge(Compute, 2*h, 3*h, 0)         // no GPUs: free
	(*Meter)(nil).Charge(Compute, 0, h, 5) // nil meter: no-op
	if got := m.InBucket(Compute); math.Abs(got-20) > 1e-9 {
		t.Fatalf("compute = %v", got)
	}
	if got := m.InBucket(Idle); math.Abs(got-6) > 1e-9 {
		t.Fatalf("idle = %v", got)
	}
	if got := m.InBucket(Reconfig); math.Abs(got-13) > 1e-9 {
		t.Fatalf("reconfig = %v", got)
	}
	if got := m.Total(); math.Abs(got-39) > 1e-9 {
		t.Fatalf("total = %v", got)
	}
	if (*Meter)(nil).Total() != 0 {
		t.Fatal("nil meter totals zero")
	}
}

func TestMeterStateRoundTripBitIdentical(t *testing.T) {
	c, err := MeanReverting(MROptions{Mean: 2.7, Vol: 0.3, Reversion: 0.25, Horizon: 24 * simtime.Hour}, 9)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMeter(c)
	// Accrue awkward fractions so the accumulators are full-precision
	// floats, not round numbers.
	at := simtime.Time(0)
	for i := 0; i < 57; i++ {
		next := at.Add(simtime.Duration(13*simtime.Minute + simtime.Duration(i)*7*simtime.Second))
		m.Charge(Bucket(i%int(NumBuckets)), at, next, 7+i%11)
		at = next
	}
	data, err := m.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewMeter(c)
	if err := fresh.ImportState(data); err != nil {
		t.Fatal(err)
	}
	for b := Bucket(0); b < NumBuckets; b++ {
		if fresh.InBucket(b) != m.InBucket(b) {
			t.Fatalf("%v not bit-identical after round trip: %v vs %v",
				b, fresh.InBucket(b), m.InBucket(b))
		}
	}
	if fresh.Total() != m.Total() {
		t.Fatalf("total not bit-identical: %v vs %v", fresh.Total(), m.Total())
	}
	if err := fresh.ImportState([]byte(`{"version": 99}`)); err == nil {
		t.Fatal("unknown version must fail")
	}
	if err := fresh.ImportState([]byte(`{`)); err == nil {
		t.Fatal("bad JSON must fail")
	}
}

func TestChooseMarket(t *testing.T) {
	horizon := 24 * simtime.Hour
	// Cheap but volatile: preempted every 2h, each costing 10min.
	cheap := Kind{
		Name: "1-GPU spot", Curve: Constant(1.0), GPUs: 100, ExPerSec: 100,
		PreemptEvery: 2 * simtime.Hour, RestartCost: 10 * simtime.Minute,
	}
	// Pricier but stable: preempted every 24h.
	stable := Kind{
		Name: "4-GPU spot", Curve: Constant(1.5), GPUs: 100, ExPerSec: 100,
		PreemptEvery: 24 * simtime.Hour, RestartCost: 10 * simtime.Minute,
	}
	best, scores := ChooseMarket(horizon, []Kind{cheap, stable})
	// cheap: $1·100·24 / (100·(120/130)·86400); stable uptime ~0.993.
	// The 50% price premium outweighs the ~7% uptime loss.
	if best != 0 {
		t.Fatalf("best = %d (scores %v), want the cheap kind", best, scores)
	}
	// Make preemptions ruinous: each one costs 1.5h of paid downtime.
	cheap.RestartCost = 90 * simtime.Minute
	best, scores = ChooseMarket(horizon, []Kind{cheap, stable})
	// cheap uptime = 2/(3.5) ≈ 0.57 → effective $/ex up ~1.75x.
	if best != 1 {
		t.Fatalf("best = %d (scores %v), want the stable kind", best, scores)
	}
	if scores[0] <= scores[1] {
		t.Fatalf("scores misordered: %v", scores)
	}
	// A kind that produces nothing scores +Inf and never wins.
	dead := Kind{Name: "dead", Curve: Constant(0.01), GPUs: 1, ExPerSec: 0}
	best, scores = ChooseMarket(horizon, []Kind{dead, stable})
	if best != 1 || !math.IsInf(scores[0], 1) {
		t.Fatalf("dead kind must lose: best %d scores %v", best, scores)
	}
	if best, _ := ChooseMarket(horizon, nil); best != -1 {
		t.Fatal("empty slate must report -1")
	}
}
