package price

import (
	"encoding/json"
	"fmt"

	"repro/internal/simtime"
)

// Bucket labels what a span of paid GPU-time bought.
type Bucket int

const (
	// Compute is GPU-time spent training (GPUs the running
	// configuration actually uses).
	Compute Bucket = iota
	// Reconfig is GPU-time paid while the job was stopped for a
	// reconfiguration or a checkpoint stall — the downtime the
	// morph-or-hold decision prices.
	Reconfig
	// Idle is GPU-time paid for capacity the running configuration
	// could not use: the fleet remainder a P×D shape strands, flagged
	// stragglers still held, and whole-fleet gaps with nothing
	// running.
	Idle
	// NumBuckets bounds the bucket enum.
	NumBuckets
)

// String names the bucket.
func (b Bucket) String() string {
	switch b {
	case Compute:
		return "compute"
	case Reconfig:
		return "reconfig"
	case Idle:
		return "idle"
	default:
		return fmt.Sprintf("Bucket(%d)", int(b))
	}
}

// Meter integrates fleet-size × price into dollars over a manager
// timeline. Each Charge call prices one span of held GPUs against the
// curve and attributes the spend to a bucket; the running totals are
// a deterministic function of the charge sequence, so identically
// replayed timelines meter identically (bit-for-bit — the property
// the warm-resume state round-trip relies on).
type Meter struct {
	curve   *Curve
	dollars [NumBuckets]float64
	tee     *Meter
}

// NewMeter builds a meter over the given price curve.
func NewMeter(c *Curve) *Meter { return &Meter{curve: c} }

// NewTeeMeter builds a per-job meter that mirrors every charge into a
// shared pool meter: each job reads its own bill off its meter while
// the pool meter accumulates the fleet-wide bill — per-job metering
// under a shared bill. The mirrored amount is the exact float computed
// for the job's own accumulator, so the pool total is the sum of the
// same charges the jobs saw (in fleet-wide chronological order).
// Export/Import snapshot only the job's own accumulators.
func NewTeeMeter(c *Curve, pool *Meter) *Meter { return &Meter{curve: c, tee: pool} }

// Curve reports the curve the meter prices against.
func (m *Meter) Curve() *Curve { return m.curve }

// Charge accrues gpus GPUs held over [from, to] into bucket.
func (m *Meter) Charge(bucket Bucket, from, to simtime.Time, gpus int) {
	if m == nil || gpus <= 0 || to <= from {
		return
	}
	amt := float64(gpus) * m.curve.Integrate(from, to)
	m.dollars[bucket] += amt
	if m.tee != nil {
		m.tee.dollars[bucket] += amt
	}
}

// Total reports the dollars accrued across all buckets.
func (m *Meter) Total() float64 {
	if m == nil {
		return 0
	}
	var t float64
	for _, d := range m.dollars {
		t += d
	}
	return t
}

// InBucket reports the dollars accrued to one bucket.
func (m *Meter) InBucket(b Bucket) float64 {
	if m == nil {
		return 0
	}
	return m.dollars[b]
}

// MeterState is the serializable snapshot of a meter's accumulators —
// what restart persists alongside the planner state so a
// killed-and-restarted manager resumes its cost accounting instead of
// restarting the bill from zero.
type MeterState struct {
	Version  int     `json:"version"`
	Compute  float64 `json:"compute_dollars"`
	Reconfig float64 `json:"reconfig_dollars"`
	Idle     float64 `json:"idle_dollars"`
}

// meterStateVersion guards the on-disk format.
const meterStateVersion = 1

// ExportState snapshots the accumulated dollars as JSON. Go's float64
// JSON encoding is shortest-round-trip, so an export/import cycle
// reproduces every accumulator bit-identically. It implements
// restart.StateCarrier.
func (m *Meter) ExportState() ([]byte, error) {
	return json.MarshalIndent(MeterState{
		Version:  meterStateVersion,
		Compute:  m.dollars[Compute],
		Reconfig: m.dollars[Reconfig],
		Idle:     m.dollars[Idle],
	}, "", "  ")
}

// ImportState restores accumulators snapshotted by ExportState.
func (m *Meter) ImportState(data []byte) error {
	var st MeterState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("price: meter state: %w", err)
	}
	if st.Version != meterStateVersion {
		return fmt.Errorf("price: meter state version %d, want %d", st.Version, meterStateVersion)
	}
	m.dollars[Compute] = st.Compute
	m.dollars[Reconfig] = st.Reconfig
	m.dollars[Idle] = st.Idle
	return nil
}
