package price

import (
	"math"

	"repro/internal/simtime"
)

// Kind describes one candidate VM market for ChooseMarket: a price
// curve plus the preemption economics of holding a fleet there. The
// hazard inputs are exactly what the decision stack already tracks —
// PreemptEvery is the per-kind EWMA gap a spot.GapEstimator reports
// for preemption events (or a market's analytic hazard before any are
// observed), and RestartCost is the restart.Model price of the forced
// reconfiguration each preemption triggers, plus the expected rollback
// loss.
type Kind struct {
	// Name labels the VM kind ("1-GPU spot", "4-GPU spot").
	Name string
	// Curve is the kind's spot price.
	Curve *Curve
	// GPUs is the fleet size the job would hold on this kind.
	GPUs int
	// ExPerSec is the job's steady-state throughput at that fleet.
	ExPerSec float64
	// PreemptEvery is the expected gap between preemption events
	// (spot.GapEstimator.ExpectedOf(spot.Preempt)).
	PreemptEvery simtime.Duration
	// RestartCost is the expected downtime plus rollback loss paid per
	// preemption.
	RestartCost simtime.Duration
}

// DollarsPerExample reports the kind's expected training cost over
// [0, horizon]: mean-price dollars for the held fleet, divided by the
// examples the job produces at its uptime-discounted throughput. Each
// expected preemption window of length PreemptEvery ends with
// RestartCost of paid-but-unproductive time, so the uptime fraction is
// PreemptEvery / (PreemptEvery + RestartCost). +Inf when the kind
// produces no examples at all.
func (k Kind) DollarsPerExample(horizon simtime.Duration) float64 {
	hours := horizon.Seconds() / 3600
	dollars := k.Curve.Mean(0, simtime.Time(horizon)) * float64(k.GPUs) * hours
	uptime := 1.0
	if k.PreemptEvery > 0 {
		uptime = float64(k.PreemptEvery) / float64(k.PreemptEvery+k.RestartCost)
	}
	examples := k.ExPerSec * uptime * horizon.Seconds()
	if examples <= 0 {
		return math.Inf(1)
	}
	return dollars / examples
}

// ChooseMarket picks the VM kind minimizing expected dollars per
// example over the horizon — the cheap-but-volatile vs
// pricier-but-stable trade. Scores come back aligned with kinds; ties
// go to the earlier kind, and best is -1 only for an empty slate. A
// pure function of its inputs: re-evaluating as the GapEstimator's
// hazards drift re-decides deterministically.
func ChooseMarket(horizon simtime.Duration, kinds []Kind) (best int, scores []float64) {
	best = -1
	scores = make([]float64, len(kinds))
	for i, k := range kinds {
		scores[i] = k.DollarsPerExample(horizon)
		if best < 0 || scores[i] < scores[best] {
			best = i
		}
	}
	return best, scores
}
