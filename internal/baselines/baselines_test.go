package baselines

import (
	"testing"

	"repro/internal/compute"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/netsim"
)

var (
	cost   = compute.Default()
	fabric = netsim.New(1.3)
)

func TestMegatronMemoryBoundary(t *testing.T) {
	// Table 4: Megatron fits 19.2B at 16-way on 16GB V100s but not 20B.
	gpuMem := int64(16) << 30
	if !MegatronMemoryFeasible(model.GPT2Twenty19B().Params(), 16, gpuMem) {
		t.Fatal("19.2B must fit 16-way")
	}
	if MegatronMemoryFeasible(model.GPT2Twenty20B().Params(), 16, gpuMem) {
		t.Fatal("20B must NOT fit 16-way")
	}
	if !MegatronMemoryFeasible(model.GPT2Twenty20B().Params(), 32, gpuMem) {
		t.Fatal("20B must fit 32-way")
	}
	// 8.3B runs 8-way (the paper's Megatron baseline).
	if !MegatronMemoryFeasible(model.GPT2Megatron8B().Params(), 8, gpuMem) {
		t.Fatal("8.3B must fit 8-way")
	}
}

func TestMegatronTrafficMatchesPaper(t *testing.T) {
	// Observation 1: intra-layer traffic ≈ 2.4 GB/example/GPU for the
	// 2.5B model (54 layers × 6 allreduces × 2·(d−1)/d ≈ 2 × 4·S·H bytes).
	spec := model.GPT2XL2B()
	payload := float64(2 * spec.SeqLen * spec.Hidden) // S×H fp16 tensor
	wirePerAR := payload * 2 * 7 / 8                  // ring factor at mp=8
	total := wirePerAR * 6 * float64(spec.NumLayers)
	gb := total / (1 << 30)
	if gb < 2.0 || gb > 3.0 {
		t.Fatalf("intra-layer traffic %.2f GB/example, paper says ≈2.4", gb)
	}
}

func TestMegatronCommodityCollapse(t *testing.T) {
	// Figure 5's 18x: Megatron 8-way on 4-GPU commodity VMs forces
	// intra-layer allreduce over ethernet, collapsing throughput
	// relative to the same config on a DGX-2's NVLink.
	spec := model.GPT2Megatron8B()
	c := MegatronConfig{Spec: spec, MP: 8, D: 8, M: 4, MTotal: 8192}
	spotT, err := MegatronTime(c, hw.SpotCluster(hw.NC24v3, 64), fabric, cost)
	if err != nil {
		t.Fatal(err)
	}
	hcT, err := MegatronTime(c, hw.Hypercluster(4), netsim.New(1), cost)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(spotT) / float64(hcT)
	if ratio < 5 {
		t.Fatalf("commodity/hypercluster ratio %.1f — expected an order-of-magnitude collapse", ratio)
	}
}

func TestMegatron18WayCliff(t *testing.T) {
	// Table 4: forcing 20B onto the hypercluster needs >16-way
	// partitioning, which crosses DGX-2 boundaries and drops
	// performance ~10x versus 16-way of the 19.2B model.
	hc := hw.Hypercluster(16)
	f := netsim.New(1)
	ok19, err := MegatronTime(MegatronConfig{Spec: model.GPT2Twenty19B(), MP: 16, D: 16, M: 1, MTotal: 8192}, hc, f, cost)
	if err != nil {
		t.Fatal(err)
	}
	forced20, err := MegatronTime(MegatronConfig{Spec: model.GPT2Twenty20B(), MP: 32, D: 8, M: 1, MTotal: 8192}, hc, f, cost)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports ~10x (0.112 → 0.015 ex/s/GPU); our fabric
	// model reproduces the cliff's direction at a smaller magnitude
	// (IB is "only" 7x slower than NVLink here), so assert ≥2x.
	ratio := float64(forced20) / float64(ok19)
	if ratio < 2 {
		t.Fatalf("cross-node intra-layer must collapse: ratio %.1f", ratio)
	}
}

func TestMegatronErrors(t *testing.T) {
	spec := model.GPT2Megatron8B()
	if _, err := MegatronTime(MegatronConfig{Spec: spec, MP: 0, D: 1, M: 1, MTotal: 64}, hw.Hypercluster(1), fabric, cost); err == nil {
		t.Fatal("MP=0 must fail")
	}
	// 8.3B OOMs at 2-way.
	if _, err := MegatronTime(MegatronConfig{Spec: spec, MP: 2, D: 1, M: 1, MTotal: 64}, hw.Hypercluster(1), fabric, cost); err == nil {
		t.Fatal("8.3B at 2-way must OOM")
	}
}

func TestDataParallelBERT(t *testing.T) {
	// BERT-large fits a single GPU; data parallel works and scales.
	spec := model.BERTLarge()
	cluster := hw.SpotCluster(hw.NC24v3, 32)
	t32, err := DataParallelTime(spec, 32, 8, 32768, cluster, fabric, cost)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := DataParallelTime(spec, 8, 8, 32768, cluster, fabric, cost)
	if err != nil {
		t.Fatal(err)
	}
	if t32 >= t8 {
		t.Fatalf("more GPUs must be faster: 32 GPUs %v vs 8 GPUs %v", t32, t8)
	}
	// Throughput plausibility: paper reports ~700 ex/s for BERT-large
	// pretraining at seq 512 on 32 GPUs (Varuna 4x8 = 710).
	exps := 32768 / t32.Seconds()
	if exps < 200 || exps > 3000 {
		t.Fatalf("BERT-large DP throughput %.0f ex/s implausible", exps)
	}
}

func TestDataParallelOOM(t *testing.T) {
	// 2.5B cannot data-parallel on 16GB GPUs (needs 40GB of state).
	if _, err := DataParallelTime(model.GPT2XL2B(), 8, 4, 8192, hw.SpotCluster(hw.NC6v3, 8), fabric, cost); err == nil {
		t.Fatal("2.5B pure data parallel must OOM")
	}
	if _, err := DataParallelTime(model.BERTLarge(), 0, 4, 8192, hw.SpotCluster(hw.NC6v3, 8), fabric, cost); err == nil {
		t.Fatal("G=0 must fail")
	}
}

func TestBestMegatronPicksNodeLocal(t *testing.T) {
	// On the hypercluster, the best 8.3B config keeps the instance
	// inside one DGX-2 (mp ≤ 16).
	best, tm, err := BestMegatron(model.GPT2Megatron8B(), 256, 4, 8192, hw.Hypercluster(16), netsim.New(1), cost)
	if err != nil {
		t.Fatal(err)
	}
	if best.MP > 16 {
		t.Fatalf("best MP %d crosses DGX-2 boundary", best.MP)
	}
	if tm <= 0 {
		t.Fatal("time must be positive")
	}
	// Infeasible everywhere → error.
	if _, _, err := BestMegatron(model.GPT2TwoHundredB(), 8, 1, 512, hw.SpotCluster(hw.NC6v3, 8), fabric, cost); err == nil {
		t.Fatal("200B on 8 GPUs must be infeasible")
	}
}

func TestVarunaBeatsMegatronOnHypercluster(t *testing.T) {
	// §7.1.1: even on the hypercluster, Varuna's pipeline parallelism
	// outperforms intra-layer Megatron (25-48%). Compare mini-batch
	// times for the 8.3B model on 256 hypercluster GPUs.
	hc := hw.Hypercluster(16)
	f := netsim.New(1)
	_, megT, err := BestMegatron(model.GPT2Megatron8B(), 256, 4, 8192, hc, f, cost)
	if err != nil {
		t.Fatal(err)
	}
	// Rough Varuna equivalent from the paper's hypercluster ex/s/GPU
	// is exercised end-to-end in the experiments package; here just
	// assert Megatron's hypercluster time is in a sane band so the
	// comparison there is meaningful.
	exPerSecPerGPU := 8192 / megT.Seconds() / 256
	if exPerSecPerGPU < 0.1 || exPerSecPerGPU > 2.0 {
		t.Fatalf("Megatron HC %.3f ex/s/GPU outside plausible band (paper: 0.48)", exPerSecPerGPU)
	}
}
