// Package baselines implements the comparison systems of the paper's
// evaluation: Megatron-style intra-layer (tensor) model parallelism
// combined with data parallelism, and plain data-parallel training.
// The cost model encodes the paper's own arithmetic from Observation 1:
// intra-layer partitioning performs two synchronous allreduces per
// layer in each of the forward, backward and recompute passes, moving
// 2·hiddenSize·sequenceLength 16-bit floats per allreduce per example —
// ≈2.4 GB per example per GPU for the 2.5B model, ~300× the pipeline-
// parallel boundary traffic.
package baselines

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/simtime"
)

// MegatronConfig is one intra-layer + data-parallel configuration.
type MegatronConfig struct {
	// Spec is the model.
	Spec *model.Spec
	// MP is the tensor-parallel width (GPUs per model instance).
	MP int
	// D is the data-parallel width (model replicas).
	D int
	// M is the per-instance micro-batch size.
	M int
	// MTotal is the global mini-batch size.
	MTotal int
}

// GPUs reports the configuration's GPU count.
func (c MegatronConfig) GPUs() int { return c.MP * c.D }

// MegatronMemoryFeasible reports whether a model fits at tensor-
// parallel width mp on a gpuMem-byte device. Megatron shards parameters,
// gradients and optimizer state mp ways and checkpoints activations;
// the effective footprint is ≈12 bytes per on-device parameter plus a
// working reserve. This reproduces Table 4's boundary: 19.2B fits
// 16-way on 16 GB, 20B does not.
func MegatronMemoryFeasible(params int64, mp int, gpuMem int64) bool {
	perGPU := params / int64(mp)
	need := perGPU*12 + 2_500_000_000 // ~2.3 GiB working reserve
	return need <= gpuMem
}

// MegatronTime estimates one mini-batch (iteration) time of Megatron
// on the given cluster. The intra-layer allreduces ride the link
// joining the mp GPUs of one instance (NVLink inside a DGX-2, PCIe
// inside a 4-GPU VM, ethernet when an instance spans VMs); the
// data-parallel gradient allreduce crosses nodes.
func MegatronTime(c MegatronConfig, cluster hw.Cluster, fabric netsim.Fabric, cost compute.CostModel) (simtime.Duration, error) {
	if c.MP < 1 || c.D < 1 || c.M < 1 {
		return 0, fmt.Errorf("baselines: bad megatron config %+v", c)
	}
	if !MegatronMemoryFeasible(c.Spec.Params(), c.MP, cluster.VM.GPU.MemoryBytes) {
		return 0, fmt.Errorf("baselines: %s OOM at %d-way model parallelism", c.Spec.Name, c.MP)
	}
	exPerInstance := (c.MTotal + c.D - 1) / c.D

	// Compute: forward + backward + recompute = 4× forward, split mp
	// ways at reduced kernel efficiency (the per-GPU GEMMs shrink as
	// the split widens).
	split := cost
	split.IntraLayerPenalty = intraPenalty(c.MP)
	flops := 4 * c.Spec.FwdFlopsPerExample() * float64(exPerInstance) / float64(c.MP)
	computeT := split.RawKernelTime(flops, c.M) +
		simtime.Duration(int64(cost.LaunchOverhead)*int64(exPerInstance/maxInt(c.M, 1)+1))

	// Intra-layer allreduces: 2 per layer per pass × 3 passes over an
	// S×H fp16 activation tensor per example. Each ring member then
	// moves ≈2·(S·H) halves on the wire — the paper's "2 × hiddenSize
	// × sequenceLength 16-bit floats" per allreduce. Synchronous.
	link := instanceLink(cluster, c.MP)
	perAR := int64(2) * int64(c.Spec.SeqLen) * int64(c.Spec.Hidden) * int64(c.M)
	arOnce := fabric.AllReduce(perAR, c.MP, link, 1)
	micros := (exPerInstance + c.M - 1) / c.M
	count := 6 * c.Spec.NumLayers * micros
	intraT := simtime.Duration(int64(arOnce) * int64(count))

	// Data-parallel gradient allreduce across instances.
	var dpT simtime.Duration
	if c.D > 1 {
		gradBytes := c.Spec.Params() / int64(c.MP) * model.BytesPerParam
		dpT = fabric.AllReduce(gradBytes, c.D, cluster.Inter, cluster.VM.GPUs)
	}

	opt := cost.OptimizerForParams(c.Spec.Params()/int64(c.MP), false)
	return computeT + intraT + dpT + opt, nil
}

// instanceLink picks the link carrying intra-layer allreduces: the
// VM-internal link when the instance fits in one VM, the inter-node
// link otherwise. This is the cliff that makes intra-layer partitioning
// collapse on commodity VMs (Figure 5) and on >16-way splits even in
// hyperclusters (Table 4).
func instanceLink(cluster hw.Cluster, mp int) hw.Link {
	if mp <= cluster.VM.GPUs {
		return cluster.VM.Intra
	}
	return cluster.Inter
}

// MegatronExPerSecPerGPU is the headline metric for Figures 5 and 6.
func MegatronExPerSecPerGPU(c MegatronConfig, cluster hw.Cluster, fabric netsim.Fabric, cost compute.CostModel) (float64, error) {
	t, err := MegatronTime(c, cluster, fabric, cost)
	if err != nil {
		return 0, err
	}
	return float64(c.MTotal) / t.Seconds() / float64(c.GPUs()), nil
}

// DataParallelTime estimates one mini-batch of plain data-parallel
// training (the BERT-large baseline): every GPU holds the full model,
// computes its share, then allreduces all gradients.
func DataParallelTime(spec *model.Spec, g, m, mTotal int, cluster hw.Cluster, fabric netsim.Fabric, cost compute.CostModel) (simtime.Duration, error) {
	if g < 1 {
		return 0, fmt.Errorf("baselines: no GPUs")
	}
	state := spec.Params() * model.BytesPerParamState
	if state+(2<<30) > cluster.VM.GPU.MemoryBytes {
		return 0, fmt.Errorf("baselines: %s does not fit one GPU for data parallelism", spec.Name)
	}
	exPerGPU := (mTotal + g - 1) / g
	flops := 4 * spec.FwdFlopsPerExample() * float64(exPerGPU)
	computeT := cost.RawKernelTime(flops, m) +
		simtime.Duration(int64(cost.LaunchOverhead)*int64(exPerGPU/maxInt(m, 1)+1))
	ar := fabric.AllReduce(spec.Params()*model.BytesPerParam, g, cluster.Inter, cluster.VM.GPUs)
	opt := cost.OptimizerForParams(spec.Params(), false)
	return computeT + ar + opt, nil
}

// BestMegatron sweeps tensor-parallel widths (powers of two up to the
// cluster) and returns the fastest feasible configuration for g GPUs.
func BestMegatron(spec *model.Spec, g, m, mTotal int, cluster hw.Cluster, fabric netsim.Fabric, cost compute.CostModel) (MegatronConfig, simtime.Duration, error) {
	var best MegatronConfig
	var bestT simtime.Duration
	found := false
	for mp := 1; mp <= g; mp *= 2 {
		d := g / mp
		if d < 1 {
			break
		}
		c := MegatronConfig{Spec: spec, MP: mp, D: d, M: m, MTotal: mTotal}
		t, err := MegatronTime(c, cluster, fabric, cost)
		if err != nil {
			continue
		}
		if !found || t < bestT {
			best, bestT, found = c, t, true
		}
	}
	if !found {
		return MegatronConfig{}, 0, fmt.Errorf("baselines: no feasible megatron config for %s on %d GPUs", spec.Name, g)
	}
	return best, bestT, nil
}

// intraPenalty models GEMM efficiency loss as a layer's matrices are
// split mp ways: each halving of the per-GPU matmul sheds ~6% of
// achievable flops.
func intraPenalty(mp int) float64 {
	p := 1.0
	for w := 2; w <= mp; w *= 2 {
		p *= 0.94
	}
	if p < 0.5 {
		p = 0.5
	}
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
