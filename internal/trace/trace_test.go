package trace

import (
	"strings"
	"testing"

	"repro/internal/nn"
)

func layersAndStages(t *testing.T, p int) ([]nn.Layer, []int) {
	t.Helper()
	layers := nn.BuildGPT(nn.GPTConfig{Vocab: 16, Dim: 8, SeqLen: 4, Layers: 4, MLPMult: 2, Seed: 1})
	n := len(layers)
	stageOf := make([]int, n)
	for l := range stageOf {
		stageOf[l] = l * p / n
	}
	return layers, stageOf
}

func TestDryRunFindsTiedEmbedding(t *testing.T) {
	layers, stageOf := layersAndStages(t, 3)
	report, err := DryRun(layers, stageOf)
	if err != nil {
		t.Fatal(err)
	}
	names := report.SharedParamNames()
	if len(names) != 1 || names[0] != "embedding.W" {
		t.Fatalf("tracer found %v, want [embedding.W]", names)
	}
	f := report.Findings[0]
	if len(f.Stages) != 2 || f.Stages[0] != 0 || f.Stages[1] != 2 {
		t.Fatalf("stages = %v, want [0 2]", f.Stages)
	}
	if !strings.Contains(f.Reason, "tied copies") {
		t.Fatalf("reason = %q", f.Reason)
	}
	if f.String() == "" {
		t.Fatal("finding must render")
	}
}

func TestDryRunSingleStageClean(t *testing.T) {
	layers, _ := layersAndStages(t, 1)
	stageOf := make([]int, len(layers))
	report, err := DryRun(layers, stageOf)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Findings) != 0 {
		t.Fatalf("single partition flagged %v", report.Findings)
	}
}

func TestDryRunShapeError(t *testing.T) {
	layers, _ := layersAndStages(t, 2)
	if _, err := DryRun(layers, []int{0}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestDryRunUntiedClean(t *testing.T) {
	// An untied model partitioned across stages has no findings: the
	// head owns its own weights.
	layers := nn.BuildGPT(nn.GPTConfig{Vocab: 16, Dim: 8, SeqLen: 4, Layers: 2, MLPMult: 2, Seed: 1})
	// Replace the tied head with an independent linear of the same shape.
	rngLayers := nn.BuildGPT(nn.GPTConfig{Vocab: 16, Dim: 8, SeqLen: 4, Layers: 2, MLPMult: 2, Seed: 2})
	_ = rngLayers
	stageOf := []int{0, 0, 1, 1}
	// Drop the lm_head (index 3 is head; keep blocks only + embedding).
	sub := layers[:3]
	report, err := DryRun(sub, stageOf[:3])
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Findings) != 0 {
		t.Fatalf("headless model flagged %v", report.Findings)
	}
}

func TestScanGlobals(t *testing.T) {
	globals := []GlobalState{
		{Name: "nvlamb.global_norm", ReadsAllLayers: true},
		{Name: "apex.loss_scale", ReadsAllLayers: true},
		{Name: "lr_schedule.step", ReadsAllLayers: false},
	}
	found := ScanGlobals(globals, []int{0, 0, 1, 1, 2})
	if len(found) != 2 {
		t.Fatalf("found %v, want the two all-layer reductions", found)
	}
	for _, f := range found {
		if len(f.Stages) != 3 {
			t.Fatalf("stages = %v, want all three", f.Stages)
		}
	}
	// Single partition: nothing to synchronize.
	if got := ScanGlobals(globals, []int{0, 0, 0}); got != nil {
		t.Fatalf("single stage flagged %v", got)
	}
}
