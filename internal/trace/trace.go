// Package trace implements Varuna's cross-partition dependency tracer
// (§5.2). The paper instruments PyTorch so that every tensor created
// during a dry run is tagged with the cut-point (partition) it belongs
// to; any function that then touches tensors from more than one
// partition — or tensors created outside the model, like an optimizer's
// global norm or APEX's loss scale — is flagged as hidden cross-
// partition state that must be synchronized.
//
// Here the same idea runs over the nn layer graph: a dry run executes
// the partitioned model in one process, tagging every parameter and
// activation with its stage, and records each observed violation. The
// engine consumes the findings to build its §6 "second process group"
// for shared-state allreduce.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/nn"
)

// Ownership tags a tensor with the partition that created it.
type Ownership int

// Common is the tag for tensors created outside any partition (§5.2:
// "any tensors that are unmarked during the run are also considered
// common").
const Common Ownership = -1

// Finding is one detected cross-partition dependency.
type Finding struct {
	// Tensor names the offending tensor (parameter name or synthetic
	// activation id).
	Tensor string
	// Stages lists the partitions that touched it, ascending.
	Stages []int
	// Reason explains the detection.
	Reason string
}

// String renders the finding.
func (f Finding) String() string {
	return fmt.Sprintf("%s touched by stages %v (%s)", f.Tensor, f.Stages, f.Reason)
}

// Report is the tracer's output: the list of tensors the user must
// mark as shared so Varuna synchronizes them every mini-batch.
type Report struct {
	Findings []Finding
}

// SharedParamNames lists the parameter names that need a cross-stage
// allreduce, sorted and deduplicated.
func (r Report) SharedParamNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range r.Findings {
		if !seen[f.Tensor] {
			seen[f.Tensor] = true
			out = append(out, f.Tensor)
		}
	}
	sort.Strings(out)
	return out
}

// DryRun executes the tracer over a partitioned layer sequence:
// stageOf[l] gives the stage owning layer l. Parameters are tagged by
// the stage of the first layer that exposes them; a parameter exposed
// again by a layer on a different stage is a cross-partition
// dependency — exactly how tied embeddings surface. Parameters marked
// Shared by construction but observed on a single stage are reported
// as benign (no finding).
func DryRun(layers []nn.Layer, stageOf []int) (Report, error) {
	if len(layers) != len(stageOf) {
		return Report{}, fmt.Errorf("trace: %d layers but %d stage tags", len(layers), len(stageOf))
	}
	type seenAt struct {
		stages map[int]bool
		ptr    map[*nn.Param]bool
	}
	params := map[string]*seenAt{}
	var order []string
	for l, layer := range layers {
		st := stageOf[l]
		for _, p := range layer.Params() {
			s, ok := params[p.Name]
			if !ok {
				s = &seenAt{stages: map[int]bool{}, ptr: map[*nn.Param]bool{}}
				params[p.Name] = s
				order = append(order, p.Name)
			}
			s.stages[st] = true
			s.ptr[p] = true
		}
	}
	var report Report
	for _, name := range order {
		s := params[name]
		if len(s.stages) <= 1 {
			continue
		}
		stages := make([]int, 0, len(s.stages))
		for st := range s.stages {
			stages = append(stages, st)
		}
		sort.Ints(stages)
		reason := "same parameter exposed by layers on different partitions"
		if len(s.ptr) > 1 {
			reason = "tied copies of one logical parameter live on different partitions"
		}
		report.Findings = append(report.Findings, Finding{Tensor: name, Stages: stages, Reason: reason})
	}
	return report, nil
}

// GlobalState describes optimizer- or library-level tensors computed
// across partitions (the paper's NVLAMB global norm and APEX loss-scale
// examples). Register them so ScanGlobals can flag the ones a
// partitioned run would compute inconsistently.
type GlobalState struct {
	// Name identifies the global tensor ("nvlamb.global_norm").
	Name string
	// ReadsAllLayers marks reductions over every layer's state.
	ReadsAllLayers bool
}

// ScanGlobals flags registered globals that read layers from more than
// one stage under the given partitioning — these need a pipeline-group
// allreduce just like shared weights.
func ScanGlobals(globals []GlobalState, stageOf []int) []Finding {
	stages := map[int]bool{}
	for _, s := range stageOf {
		stages[s] = true
	}
	if len(stages) <= 1 {
		return nil
	}
	all := make([]int, 0, len(stages))
	for s := range stages {
		all = append(all, s)
	}
	sort.Ints(all)
	var out []Finding
	for _, g := range globals {
		if g.ReadsAllLayers {
			out = append(out, Finding{
				Tensor: g.Name,
				Stages: all,
				Reason: "global reduction over layers spanning partitions",
			})
		}
	}
	return out
}
