package scenario

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simtime"
	"repro/scenarios"
)

const miniFleet = `
version: 1
name: mini-fleet
fleet:
  horizon: 8h
  vm-gpus: 1
  victim-seed: 19
market:
  base-capacity: 120
  seed: 7
prices:
  kind: mean-reverting
  mean: 2.40
  vol: 0.18
  reversion: 0.12
  seed: 107
jobs:
  - name: deadline
    cluster-gpus: 48
    seed: 11
    manager-seed: 13
    target-gpus: 40
    min-gpus: 16
    priority: 1.5
    objective: deadline
    deadline-at: 8h
    target-examples: 2e6
  - name: batch
    cluster-gpus: 48
    target-gpus: 24
events:
  - at: 2h
    kind: preempt
    count: 8
  - at: 3h
    kind: price-shock
    factor: 1.5
    duration: 30m
`

func TestParseFleetScenario(t *testing.T) {
	sc, err := Parse([]byte(miniFleet))
	if err != nil {
		t.Fatal(err)
	}
	f := sc.Fleet
	if f == nil || f.Horizon != 8*simtime.Hour || f.VMGPUs != 1 || f.VictimSeed != 19 {
		t.Fatalf("bad fleet spec: %+v", f)
	}
	if len(sc.Jobs) != 2 {
		t.Fatalf("want 2 jobs, got %+v", sc.Jobs)
	}
	j := sc.Jobs[0]
	if j.Name != "deadline" || j.Objective != "deadline" || j.MinGPUs != 16 ||
		j.Priority != 1.5 || j.DeadlineAt != 8*simtime.Hour || j.TargetExamples != 2e6 {
		t.Fatalf("bad job[0]: %+v", j)
	}
	// Per-job defaults mirror the single-job block's.
	j = sc.Jobs[1]
	if j.Model != "GPT2-2.5B" || j.Batch != 8192 || j.Seed != 1 ||
		j.ManagerSeed != 1 || j.Priority != 1 || j.Objective != "max-throughput" {
		t.Fatalf("bad job[1] defaults: %+v", j)
	}
}

func TestParseFleetStrict(t *testing.T) {
	for _, tc := range []struct{ name, old, new, want string }{
		{"job-block", "market:", "job:\n  cluster-gpus: 8\nmarket:", `fleet mode: the "job" block is not allowed`},
		{"run-block", "market:", "run:\n  horizon: 1h\nmarket:", `fleet mode: the "run" block is not allowed`},
		{"chaos-block", "market:", "chaos:\n  seed: 3\nmarket:", `fleet mode: the "chaos" block is not allowed`},
		{"no-horizon", "horizon: 8h", "horizon: 0", "fleet.horizon: required"},
		{"bad-vm", "vm-gpus: 1", "vm-gpus: 2", "fleet.vm-gpus: must be 1 or 4"},
		{"no-name", "name: batch", "priority: 1", "jobs[1].name: required"},
		{"dup-name", "name: batch", "name: deadline", `jobs[1].name: duplicate "deadline"`},
		{"no-cluster", "  - name: batch\n    cluster-gpus: 48\n", "  - name: batch\n", "jobs[1].cluster-gpus: required"},
		{"bad-min", "min-gpus: 16", "min-gpus: 41", "jobs[0].min-gpus: 41 outside [0, target-gpus]"},
		{"bad-kind", "kind: preempt\n    count: 8", "kind: straggler\n    factor: 1.12", "fleet mode supports only preempt, price-shock and zone-outage"},
		{"vm-pin", "kind: preempt\n    count: 8", "kind: preempt\n    count: 8\n    vm: 3", "vm pinning is not supported in fleet mode"},
		{"bad-count", "count: 8", "count: 0", "count must be positive"},
		{"late-event", "at: 3h", "at: 9h", "outside [0, horizon]"},
		{"unknown-key", "victim-seed: 19", "victim-seed: 19\n  bogus: 1", `unknown key "fleet.bogus"`},
	} {
		doc := strings.Replace(miniFleet, tc.old, tc.new, 1)
		if doc == miniFleet {
			t.Fatalf("%s: replacement %q not found", tc.name, tc.old)
		}
		if _, err := Parse([]byte(doc)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want %q", tc.name, err, tc.want)
		}
	}
	// A priced objective without a prices block is rejected.
	doc := strings.Replace(miniFleet, "kind: mean-reverting", "kind: none", 1)
	if _, err := Parse([]byte(doc)); err == nil || !strings.Contains(err.Error(), `objective "deadline" needs a prices block`) {
		t.Errorf("priced objective without prices: got %v", err)
	}
	// No jobs at all.
	doc = miniFleet[:strings.Index(miniFleet, "jobs:")] + "jobs: []\n"
	if _, err := Parse([]byte(doc)); err == nil || !strings.Contains(err.Error(), "fleet mode needs at least one job") {
		t.Errorf("empty jobs: got %v", err)
	}
}

// TestMultiJobDeterministic runs the committed multi-job soak twice and
// pins the ISSUE acceptance gate: three tenants with mixed objectives,
// at least one revocation cascade, zero invariant violations, and a
// byte-identical report on replay.
func TestMultiJobDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-job soak is slow; skipped with -short")
	}
	data, err := scenarios.FS.ReadFile("multi-job.yaml")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *FleetResult {
		sc, err := Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunFleet(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()

	rep := a.Report
	if len(rep.Jobs) < 3 {
		t.Fatalf("want >=3 jobs, got %d", len(rep.Jobs))
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("invariant violations: %v", rep.Violations)
	}
	if rep.Arbiter.Cascades < 1 {
		t.Fatalf("want >=1 revocation cascade, got %d", rep.Arbiter.Cascades)
	}
	for i, jr := range a.Jobs {
		if jr.Stats.MiniBatches == 0 {
			t.Errorf("job %s never trained", jr.Name)
		}
		if rep.JobDollars[i] <= 0 {
			t.Errorf("job %s billed nothing", jr.Name)
		}
	}

	aj, err := a.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatal("multi-job replay is not byte-identical")
	}
}
