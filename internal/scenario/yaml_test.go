package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/simtime"
)

func TestParseYAMLNesting(t *testing.T) {
	doc := `
# comment
a: 1
b:
  c: two words  # trailing comment
  d:
    e: "quoted # not a comment"
list:
  - 1.5
  - 2.5
maps:
  - at: 2h
    kind: preempt
  - at: 3h
flow: [1.05, 1.18]
`
	n, err := parseYAML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]ynode{
		"a": "1",
		"b": map[string]ynode{
			"c": "two words",
			"d": map[string]ynode{"e": "quoted # not a comment"},
		},
		"list": []ynode{"1.5", "2.5"},
		"maps": []ynode{
			map[string]ynode{"at": "2h", "kind": "preempt"},
			map[string]ynode{"at": "3h"},
		},
		"flow": []ynode{"1.05", "1.18"},
	}
	if !reflect.DeepEqual(n, want) {
		t.Fatalf("parsed\n%#v\nwant\n%#v", n, want)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	for _, tc := range []struct{ name, doc, want string }{
		{"tab", "a:\n\tb: 1", "tab in indentation"},
		{"dup", "a: 1\na: 2", "duplicate key"},
		{"item-in-map", "a: 1\n- b", "list item inside a map"},
		{"key-in-list", "l:\n  - a\n  b: 1", "map key inside a list"},
		{"bad-entry", "just some words", "expected `key: value`"},
		{"unquoted", `a: "open`, "unterminated quote"},
	} {
		if _, err := parseYAML([]byte(tc.doc)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestParseDuration(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want simtime.Duration
	}{
		{"0", 0},
		{"500ms", 500 * simtime.Millisecond},
		{"90s", 90 * simtime.Second},
		{"10m", 10 * simtime.Minute},
		{"24h", 24 * simtime.Hour},
		{"1.5h", 90 * simtime.Minute},
	} {
		got, err := parseDuration(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("parseDuration(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "10", "3d", "h", "1.5"} {
		if _, err := parseDuration(bad); err == nil {
			t.Errorf("parseDuration(%q) should fail", bad)
		}
	}
}

const miniScenario = `
version: 1
name: mini
job:
  model: GPT2-2.5B
  cluster-gpus: 48
  seed: 11
market:
  base-capacity: 40
  seed: 12
run:
  target-gpus: 48
  horizon: 6h
  manager-seed: 13
  gap-prior: market
  measure-stragglers: true
prices:
  kind: mean-reverting
  mean: 2.40
  vol: 0.18
  reversion: 0.12
  seed: 14
events:
  - at: 1h
    kind: preempt
    count: 4
  - at: 2h
    kind: straggler
    factor: 1.12
  - at: 3h
    kind: net-degrade
    factor: 1.6
    duration: 20m
  - at: 4h
    kind: price-shock
    factor: 2.0
    duration: 30m
chaos:
  seed: 21
  preempts-per-hour: 4
  burst-every: 2h
  burst-size: 6
  stragglers-per-hour: 1
  degrades-per-hour: 1
`

func TestParseScenario(t *testing.T) {
	sc, err := Parse([]byte(miniScenario))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "mini" || sc.Job.ClusterGPUs != 48 || sc.Run.Horizon != 6*simtime.Hour {
		t.Fatalf("bad decode: %+v", sc)
	}
	if len(sc.Events) != 4 || sc.Events[0].Count != 4 || sc.Events[2].Duration != 20*simtime.Minute {
		t.Fatalf("bad events: %+v", sc.Events)
	}
	if sc.Chaos == nil || sc.Chaos.StragglerFactor != [2]float64{1.05, 1.18} {
		t.Fatalf("bad chaos defaults: %+v", sc.Chaos)
	}
	if sc.Run.HeartbeatEvery != -1 {
		t.Fatalf("heartbeat default should stay unset, got %v", sc.Run.HeartbeatEvery)
	}
}

func TestParseScenarioStrict(t *testing.T) {
	for _, tc := range []struct{ name, old, new, want string }{
		{"unknown-key", "manager-seed: 13", "manager-seed: 13\n  bogus: 1", `unknown key "run.bogus"`},
		{"bad-version", "version: 1", "version: 2", "unsupported version"},
		{"bad-kind", "kind: straggler", "kind: slowpoke", "not one of"},
		{"bad-factor", "factor: 1.12", "factor: 0.9", "factor must exceed 1"},
		{"bad-bool", "measure-stragglers: true", "measure-stragglers: yes", "not true/false"},
	} {
		doc := strings.Replace(miniScenario, tc.old, tc.new, 1)
		if doc == miniScenario {
			t.Fatalf("%s: replacement %q not found", tc.name, tc.old)
		}
		if _, err := Parse([]byte(doc)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want %q", tc.name, err, tc.want)
		}
	}
	// Dollar objectives and price shocks need a prices block.
	doc := strings.Replace(miniScenario, "kind: mean-reverting", "kind: none", 1)
	if _, err := Parse([]byte(doc)); err == nil || !strings.Contains(err.Error(), "needs a prices block") {
		t.Errorf("price-shock without prices: got %v", err)
	}
}

func TestChaosExpandDeterministic(t *testing.T) {
	c := &Chaos{
		Seed:              7,
		PreemptsPerHour:   10,
		BurstEvery:        2 * simtime.Hour,
		BurstSize:         5,
		StragglersPerHour: 1,
		StragglerFactor:   [2]float64{1.05, 1.18},
		NetEvery:          3 * simtime.Hour,
		NetFactor:         [2]float64{1.3, 2},
		NetDuration:       30 * simtime.Minute,
	}
	a := c.Expand(8 * simtime.Hour)
	b := c.Expand(8 * simtime.Hour)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec+seed expanded differently")
	}
	if len(a) == 0 {
		t.Fatal("no events generated")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
	}
	c.Seed = 8
	if reflect.DeepEqual(a, c.Expand(8*simtime.Hour)) {
		t.Fatal("different seeds expanded identically")
	}
}
