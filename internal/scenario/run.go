package scenario

import (
	"fmt"

	"repro/internal/manager"
	"repro/internal/obs"
	"repro/internal/price"
	"repro/internal/restart"
)

// Result is one scenario execution: the raw manager timeline and
// stats, plus the structured report with invariant checks.
type Result struct {
	Compiled *Compiled
	Points   []manager.TimelinePoint
	Stats    manager.Stats
	Report   *Report
}

// Run compiles and executes a scenario. stateDir, when non-empty,
// warm-starts the planner cache and the cost meter from
// <dir>/planner-state.json (if present) and persists both after the
// run — the kill-and-resume discipline varuna-morph uses, so a
// scenario interrupted and re-run continues its cumulative bill and
// skips the cold planner sweep.
func Run(sc *Scenario, stateDir string) (*Result, error) {
	c, err := Compile(sc)
	if err != nil {
		return nil, err
	}
	return c.Run(stateDir)
}

// Run executes an already-compiled scenario. Repeated calls replay
// bit-identically apart from planner-cache warmth, which changes cost
// but never decisions.
func (c *Compiled) Run(stateDir string) (*Result, error) {
	sc := c.Scenario
	opts := c.Opts
	planner := c.Job.Planner()
	var meter *price.Meter
	var sections restart.Sections
	if stateDir != "" {
		sections = restart.Sections{restart.SectionPlanner: planner}
		if opts.Prices != nil {
			meter = price.NewMeter(opts.Prices)
			sections[restart.SectionMeter] = meter
		}
		if _, err := restart.LoadSections(stateDir, sections); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		if meter != nil {
			opts.Meter = meter
		}
	}
	if c.trace != nil {
		opts.Trace = c.trace
		opts.TraceTrack = c.trace.Track("job:" + sc.Name)
	}
	if c.met != nil {
		opts.Metrics = c.met
	}
	if c.Series != nil {
		opts.Series = c.Series
		opts.SampleEvery = telemetrySampleEvery(sc)
		attachBreachHooks(c.Monitors, c.trace, c.met)
	}
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	mg := manager.NewWithPlanner(c.Job.Inputs(), c.TB, planner, opts, sc.Run.ManagerSeed)
	mg.Degrade = c.Degrade
	mg.NetDegrade = c.NetSched
	mg.ObjChange = c.ObjSched
	mg.Outages = c.Outages
	points, stats, err := mg.RunTimeline(c.Events, c.Horizon)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	if stateDir != "" {
		if err := restart.SaveSections(stateDir, sections); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	}
	if c.met != nil {
		c.met.Gauge("planner.cost_hit_rate", planner.Stats().HitRate())
		if opts.Prices != nil || opts.Meter != nil {
			c.met.Gauge("dollars.total", stats.DollarsSpent)
			c.met.Gauge("dollars.compute", stats.DollarsCompute)
			c.met.Gauge("dollars.reconfig", stats.DollarsReconfig)
			c.met.Gauge("dollars.idle", stats.DollarsIdle)
		}
	}
	report := buildReport(c, points, stats)
	report.SLOs, report.Violations = sloResults(c.Monitors, report.Violations)
	if c.met != nil {
		snap := c.met.Snapshot(obs.SimOnly)
		report.Obs = &snap
	}
	return &Result{
		Compiled: c,
		Points:   points,
		Stats:    stats,
		Report:   report,
	}, nil
}
