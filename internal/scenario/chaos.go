package scenario

import (
	"sort"

	"repro/internal/simtime"
)

// Expand generates the concrete event script a chaos spec describes:
// Poisson arrivals for the rate-based streams (preemptions, straggler
// and fail-stutter onsets), jittered periodic episodes for bursts,
// network degradation and price shocks. Every stream draws from its
// own seed-derived generator, so adding one stream never reshuffles
// another and the same (spec, horizon) pair always expands to the
// same script — the property deterministic replay rests on. Victims
// are left unpinned (VM -1); the compiler resolves them against the
// fleet actually alive at each instant.
func (c *Chaos) Expand(horizon simtime.Duration) []Event {
	var out []Event

	// Poisson streams: exponential gaps at the requested rate.
	poisson := func(seedOff int64, perHour float64, mk func(rng *simtime.Rand, at simtime.Duration) Event) {
		if perHour <= 0 {
			return
		}
		rng := simtime.NewRand(c.Seed + seedOff)
		mean := simtime.Duration(float64(simtime.Hour) / perHour)
		for t := rng.Exp(mean); t < horizon; t += rng.Exp(mean) {
			out = append(out, mk(rng, t))
		}
	}
	// Periodic streams: the nominal period with ±10% jitter per gap.
	periodic := func(seedOff int64, every simtime.Duration, mk func(rng *simtime.Rand, at simtime.Duration) Event) {
		if every <= 0 {
			return
		}
		rng := simtime.NewRand(c.Seed + seedOff)
		for t := rng.Jitter(every, 0.1); t < horizon; t += rng.Jitter(every, 0.1) {
			out = append(out, mk(rng, t))
		}
	}
	uniform := func(rng *simtime.Rand, r [2]float64) float64 {
		return r[0] + (r[1]-r[0])*rng.Float64()
	}

	poisson(0, c.PreemptsPerHour, func(rng *simtime.Rand, at simtime.Duration) Event {
		return Event{At: at, Kind: "preempt", Count: 1, VM: -1}
	})
	if c.BurstSize > 0 {
		periodic(1, c.BurstEvery, func(rng *simtime.Rand, at simtime.Duration) Event {
			return Event{At: at, Kind: "preempt", Count: c.BurstSize, VM: -1}
		})
	}
	poisson(2, c.StragglersPerHour, func(rng *simtime.Rand, at simtime.Duration) Event {
		return Event{At: at, Kind: "straggler", VM: -1, Factor: uniform(rng, c.StragglerFactor)}
	})
	poisson(3, c.DegradesPerHour, func(rng *simtime.Rand, at simtime.Duration) Event {
		return Event{At: at, Kind: "degrade", VM: -1, Factor: uniform(rng, c.DegradeFactor)}
	})
	periodic(4, c.NetEvery, func(rng *simtime.Rand, at simtime.Duration) Event {
		return Event{At: at, Kind: "net-degrade", Factor: uniform(rng, c.NetFactor), Duration: c.NetDuration}
	})
	periodic(5, c.ShockEvery, func(rng *simtime.Rand, at simtime.Duration) Event {
		return Event{At: at, Kind: "price-shock", Factor: c.ShockFactor, Duration: c.ShockDuration}
	})
	// Correlated domain outages ride their own streams (offsets 6/7) so
	// enabling them never reshuffles the older chaos draws. Domains stay
	// unpinned (-1): the compiler draws one holding live VMs.
	periodic(6, c.ZoneOutageEvery, func(rng *simtime.Rand, at simtime.Duration) Event {
		return Event{At: at, Kind: "zone-outage", Domain: -1}
	})
	periodic(7, c.RackOutageEvery, func(rng *simtime.Rand, at simtime.Duration) Event {
		return Event{At: at, Kind: "rack-outage", Domain: -1}
	})

	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
