package scenario

import (
	"fmt"
	"strings"
)

// The scenario loader reads a small YAML subset — enough for the
// declarative scenario format, hand-written because the repository
// takes no dependencies. Supported: indentation-nested maps (spaces
// only), `- ` block lists (including lists of inline maps), inline
// flow lists `[a, b]`, `#` comments, double-quoted scalars. Every
// scalar parses to a string; the typed decode in scenario.go owns
// conversions. Unsupported YAML (anchors, multi-line scalars, tabs,
// flow maps) is rejected with a line-numbered error.

// ynode is one parsed node: map[string]ynode, []ynode, or string.
type ynode any

type yline struct {
	indent int
	text   string
	num    int
}

type yparser struct {
	lines []yline
	pos   int
}

func parseYAML(data []byte) (ynode, error) {
	var lines []yline
	for i, raw := range strings.Split(string(data), "\n") {
		text, err := stripComment(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		if strings.TrimSpace(text) == "" {
			continue
		}
		indent := 0
		for _, r := range text {
			if r == '\t' {
				return nil, fmt.Errorf("line %d: tab in indentation (use spaces)", i+1)
			}
			if r != ' ' {
				break
			}
			indent++
		}
		lines = append(lines, yline{indent: indent, text: strings.TrimSpace(text), num: i + 1})
	}
	if len(lines) == 0 {
		return map[string]ynode{}, nil
	}
	p := &yparser{lines: lines}
	n, err := p.block()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("line %d: unexpected indentation", p.lines[p.pos].num)
	}
	return n, nil
}

// stripComment removes a trailing `# ...` comment, respecting
// double-quoted strings.
func stripComment(s string) (string, error) {
	inQuote := false
	for i, r := range s {
		switch {
		case r == '"':
			inQuote = !inQuote
		case r == '#' && !inQuote:
			if i == 0 || s[i-1] == ' ' || s[i-1] == '\t' {
				return s[:i], nil
			}
		}
	}
	if inQuote {
		return "", fmt.Errorf("unterminated quote")
	}
	return s, nil
}

func isItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func (p *yparser) block() (ynode, error) {
	if isItem(p.lines[p.pos].text) {
		return p.list(p.lines[p.pos].indent)
	}
	return p.mapping(p.lines[p.pos].indent)
}

func (p *yparser) mapping(ind int) (ynode, error) {
	m := map[string]ynode{}
	for p.pos < len(p.lines) && p.lines[p.pos].indent == ind {
		ln := p.lines[p.pos]
		if isItem(ln.text) {
			return nil, fmt.Errorf("line %d: list item inside a map", ln.num)
		}
		key, rest, err := splitKey(ln.text, ln.num)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", ln.num, key)
		}
		p.pos++
		switch {
		case rest != "":
			m[key] = scalarOrFlow(rest)
		case p.pos < len(p.lines) && p.lines[p.pos].indent > ind:
			v, err := p.block()
			if err != nil {
				return nil, err
			}
			m[key] = v
		default:
			m[key] = ""
		}
	}
	if p.pos < len(p.lines) && p.lines[p.pos].indent > ind {
		return nil, fmt.Errorf("line %d: unexpected indentation", p.lines[p.pos].num)
	}
	return m, nil
}

func (p *yparser) list(ind int) (ynode, error) {
	var out []ynode
	for p.pos < len(p.lines) && p.lines[p.pos].indent == ind {
		ln := p.lines[p.pos]
		if !isItem(ln.text) {
			return nil, fmt.Errorf("line %d: map key inside a list", ln.num)
		}
		content := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		if content == "" {
			// `-` alone: the item is the nested block below.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= ind {
				return nil, fmt.Errorf("line %d: empty list item", ln.num)
			}
			v, err := p.block()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		if key, rest, ok := tryKey(content); ok {
			// `- key: value` starts an inline map; continuation entries
			// follow at deeper indentation.
			m := map[string]ynode{}
			if rest != "" {
				m[key] = scalarOrFlow(rest)
			} else {
				m[key] = ""
			}
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > ind && !isItem(p.lines[p.pos].text) {
				cont, err := p.mapping(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				for k, v := range cont.(map[string]ynode) {
					if _, dup := m[k]; dup {
						return nil, fmt.Errorf("line %d: duplicate key %q", ln.num, k)
					}
					m[k] = v
				}
			}
			out = append(out, m)
			continue
		}
		out = append(out, scalarOrFlow(content))
		p.pos++
	}
	return out, nil
}

// splitKey parses `key: value` or `key:`.
func splitKey(text string, num int) (key, rest string, err error) {
	key, rest, ok := tryKey(text)
	if !ok {
		return "", "", fmt.Errorf("line %d: expected `key: value`, got %q", num, text)
	}
	return key, rest, nil
}

// tryKey reports whether text is a map entry: a key followed by `:`
// at end of text or `: `.
func tryKey(text string) (key, rest string, ok bool) {
	i := strings.Index(text, ":")
	if i <= 0 {
		return "", "", false
	}
	if i+1 < len(text) && text[i+1] != ' ' {
		return "", "", false
	}
	key = strings.TrimSpace(text[:i])
	if key == "" || strings.ContainsAny(key, " \"[]") {
		return "", "", false
	}
	return key, strings.TrimSpace(text[i+1:]), true
}

// scalarOrFlow parses a scalar value or an inline `[a, b, c]` list.
func scalarOrFlow(s string) ynode {
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []ynode{}
		}
		parts := strings.Split(inner, ",")
		out := make([]ynode, len(parts))
		for i, p := range parts {
			out[i] = ynode(unquote(strings.TrimSpace(p)))
		}
		return out
	}
	return ynode(unquote(s))
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}
