package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/scenarios"
)

func loadZoneFailover(t *testing.T) *Scenario {
	t.Helper()
	data, err := scenarios.FS.ReadFile("zone-failover.yaml")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestZoneFailoverDrill runs the committed zone-failover drill: with
// 2-way zone-spread replication the job survives losing a whole
// availability zone — exactly one failover, zero unrecoverable
// outages, zero invariant violations — and the run replays to
// bit-identical timeline, stats and report bytes.
func TestZoneFailoverDrill(t *testing.T) {
	res, err := Run(loadZoneFailover(t), "")
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Failovers != 1 || s.UnrecoverableOutages != 0 {
		t.Fatalf("failovers=%d unrecoverable=%d, want 1/0", s.Failovers, s.UnrecoverableOutages)
	}
	if s.FailoverDowntime <= 0 {
		t.Fatal("failover must pay cross-zone fetch downtime")
	}
	if s.MiniBatches <= 0 || s.Examples <= 0 {
		t.Fatalf("progress must survive the outage: %+v", s)
	}
	if len(res.Report.Violations) != 0 {
		t.Fatalf("replicated drill must be violation-free, got %v", res.Report.Violations)
	}
	foundFailover := false
	for _, p := range res.Points {
		if p.Event == "failover" {
			foundFailover = true
		}
		if p.Event == "outage-loss" {
			t.Fatal("replicated run must not report outage-loss")
		}
	}
	if !foundFailover {
		t.Fatal("timeline must record the failover point")
	}

	replay, err := Run(loadZoneFailover(t), "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Stats, replay.Stats) {
		t.Fatalf("drill stats diverged:\n%+v\n%+v", res.Stats, replay.Stats)
	}
	if !reflect.DeepEqual(res.Points, replay.Points) {
		t.Fatal("drill timelines diverged")
	}
	ja, err := res.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := replay.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatal("drill report bytes diverged")
	}
}

// TestZoneFailoverWithoutReplicationLosesProgress re-runs the same
// seeded drill with the checkpoint block stripped: the only copies of
// the §4.5 shards die with zone 1, so the run reports exactly one
// unrecoverable outage and the lost-progress invariant violation —
// the quantified cost of running without replication. The loss path
// must itself replay deterministically.
func TestZoneFailoverWithoutReplicationLosesProgress(t *testing.T) {
	run := func() *Result {
		sc := loadZoneFailover(t)
		sc.Checkpoint = CheckpointSpec{}
		res, err := Run(sc, "")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	s := res.Stats
	if s.UnrecoverableOutages != 1 || s.Failovers != 0 {
		t.Fatalf("unrecoverable=%d failovers=%d, want 1/0", s.UnrecoverableOutages, s.Failovers)
	}
	found := false
	for _, v := range res.Report.Violations {
		if strings.Contains(v, "lost progress") {
			found = true
		}
	}
	if !found {
		t.Fatalf("report must flag the lost-progress violation, got %v", res.Report.Violations)
	}
	foundLoss := false
	for _, p := range res.Points {
		if p.Event == "outage-loss" {
			foundLoss = true
		}
	}
	if !foundLoss {
		t.Fatal("timeline must record the outage-loss point")
	}

	replay := run()
	if !reflect.DeepEqual(res.Stats, replay.Stats) {
		t.Fatalf("loss-path stats diverged:\n%+v\n%+v", res.Stats, replay.Stats)
	}
	if !reflect.DeepEqual(res.Points, replay.Points) {
		t.Fatal("loss-path timelines diverged")
	}
}
