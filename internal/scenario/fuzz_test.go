package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/scenarios"
)

// seedCommitted adds every committed scenario file to the corpus, so
// the fuzzer starts from real, full-featured documents (including the
// fleet-mode one) instead of discovering the grammar from scratch.
func seedCommitted(f *testing.F) {
	entries, err := scenarios.FS.ReadDir(".")
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".yaml") {
			continue
		}
		data, err := scenarios.FS.ReadFile(e.Name())
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
}

// FuzzParseYAML drives the YAML-subset parser: it must never panic,
// and a successful parse must be deterministic.
func FuzzParseYAML(f *testing.F) {
	seedCommitted(f)
	f.Add([]byte("a: 1\nb:\n  c: two\nlist:\n  - 1\n  - k: v\nflow: [1, 2]\n"))
	f.Add([]byte("a: \"quoted # not a comment\"\n"))
	f.Add([]byte("- top level item\n"))
	f.Add([]byte("a:\n\tb: tab\n"))
	f.Add([]byte("deep:\n  deeper:\n    deepest:\n      leaf: 1\n"))
	f.Add([]byte("job:\n  topology:\n    zones: 4\nevents:\n  - kind: zone-outage\n    domain: 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		n1, err1 := parseYAML(data)
		n2, err2 := parseYAML(data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if !reflect.DeepEqual(n1, n2) {
			t.Fatalf("nondeterministic parse:\n%#v\nvs\n%#v", n1, n2)
		}
	})
}

// FuzzParse drives the full strict decoder (parse, decode, validate):
// it must never panic, errors must be deterministic, and a document
// that decodes must decode to the same scenario every time.
func FuzzParse(f *testing.F) {
	seedCommitted(f)
	f.Add([]byte(miniScenario))
	f.Add([]byte(miniFleet))
	f.Add([]byte("version: 1\nname: x\njob:\n  cluster-gpus: 8\nmarket:\n  base-capacity: 10\nrun:\n  target-gpus: 8\n  horizon: 1h\n"))
	f.Add([]byte("version: 1\nfleet:\n  horizon: 1h\njobs:\n  - name: a\n"))
	f.Add([]byte("version: 1\nname: t\njob:\n  cluster-gpus: 8\n  topology:\n    zones: 4\n    racks-per-zone: 2\n    nodes-per-rack: 2\ncheckpoint:\n  replicas: 2\n  spread: rack\nmarket:\n  base-capacity: 10\nrun:\n  target-gpus: 8\n  horizon: 2h\nevents:\n  - at: 1h\n    kind: rack-outage\nchaos:\n  seed: 5\n  zone-outage-every: 45m\n  rack-outage-every: 90m\n"))
	f.Add([]byte("version: 1\nname: fz\nfleet:\n  horizon: 2h\n  zones: 4\nmarket:\n  base-capacity: 10\njobs:\n  - name: a\n    cluster-gpus: 8\n    target-gpus: 8\nevents:\n  - at: 1h\n    kind: zone-outage\n    domain: 2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc1, err1 := Parse(data)
		sc2, err2 := Parse(data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if sc1 == nil {
			t.Fatal("nil scenario without error")
		}
		if !reflect.DeepEqual(sc1, sc2) {
			t.Fatalf("nondeterministic decode:\n%#v\nvs\n%#v", sc1, sc2)
		}
		// A decoded scenario is exactly one of single-job or fleet mode:
		// a fleet spec always comes with a validated jobs list, and a
		// single-job scenario never carries one.
		if (sc1.Fleet != nil) != (len(sc1.Jobs) > 0) {
			t.Fatalf("fleet spec and jobs list disagree: %+v", sc1)
		}
	})
}
