// Package scenario is the declarative front door to the Varuna
// simulator: a versioned file format describing a training job, a spot
// market, an adversarial event script (preemption bursts, stragglers,
// fail-stutter degradation, network degradation, price shocks, deadline
// changes) and a seeded chaos generator that expands compact rate
// specs into concrete events. A scenario compiles into the exact
// inputs the manager (§4.6) already consumes — a spot.Event stream
// plus the manager's Degrade/NetDegrade/ObjChange schedules — so the
// same file with the same seeds replays to a bit-identical timeline,
// stats and dollar meter, and a structured report checks the
// robustness invariants (no lost progress, no double billing) after
// every run.
//
//	sc, _ := scenario.Load("scenarios/chaos-stress.yaml")
//	res, _ := scenario.Run(sc, "")
//	fmt.Println(res.Report.Summary())
package scenario

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// Version is the scenario format version this package reads.
const Version = 1

// Scenario is one parsed scenario file.
type Scenario struct {
	// Name identifies the scenario in reports and golden files.
	Name string
	// Description is free-form documentation.
	Description string
	// Job describes the training job (model, cluster, batch, seed).
	Job JobSpec
	// Market describes the spot market the fleet rides.
	Market MarketSpec
	// Run tunes the manager run (horizon, seeds, policy, objective).
	Run RunSpec
	// Prices optionally attaches a spot price curve.
	Prices PriceSpec
	// Events is the explicit scripted event list, in file order.
	Events []Event
	// Chaos, when present, generates additional events from rates.
	Chaos *Chaos
	// Fleet, when present, switches the scenario to multi-job fleet
	// mode: Jobs share one market through the fleet arbiter, and the
	// Job/Run blocks are not used.
	Fleet *FleetSpec
	// Jobs is the fleet-mode tenant list.
	Jobs []FleetJobSpec
	// Checkpoint configures §4.5 checkpoint replication across failure
	// domains (single-job mode only; requires a job topology).
	Checkpoint CheckpointSpec
	// Telemetry, when present, enables continuous series sampling for
	// plain `varuna-sim run` (the exporter commands enable it
	// regardless).
	Telemetry *TelemetrySpec
	// SLOs is the declarative monitor list; a non-empty list implies
	// telemetry.
	SLOs []SLOSpec
}

// TelemetrySpec configures continuous series sampling (the
// `telemetry:` block).
type TelemetrySpec struct {
	// SampleEvery is the periodic sampling cadence (default 1m;
	// events always sample regardless).
	SampleEvery simtime.Duration
	// Ring caps each series' retained points (default
	// obs.DefaultSeriesCap).
	Ring int
}

// SLOSpec is one declarative SLO rule (the `slos:` list): an
// expression like "recovery-p99 < 120s" evaluated online over the
// sampled series, with optional rolling and burn-rate windows.
type SLOSpec struct {
	// Name identifies the rule in reports ("" defaults to the
	// expression's left-hand side).
	Name string
	// Expr is "<series>[-agg] <op> <threshold>" (obs.ParseSLOExpr).
	Expr string
	// Window bounds the rolling aggregation window (0 = unbounded).
	Window simtime.Duration
	// For is the burn window: how long a violation must persist
	// before it breaches.
	For simtime.Duration
	// Mode is "warn" (default: report only) or "enforce" (a breach
	// fails the run like an invariant violation).
	Mode string
	// Job scopes the rule to one fleet job (required in fleet mode,
	// forbidden in single-job mode).
	Job string
}

// TopologySpec arranges the job's cluster into failure domains (the
// `job.topology:` block). Zero value means flat — the pre-topology
// model, bit-identical to scenarios without the block.
type TopologySpec struct {
	// Zones is the availability-zone count; >= 2 defines a topology.
	Zones int
	// RacksPerZone and NodesPerRack shape the inner tiers (default 1).
	RacksPerZone int
	NodesPerRack int
	// ZonesPerRegion groups zones into regions (0 = one region
	// spanning every zone). Must divide into >= 2 regions to enable
	// region-outage events and region-spread checkpoints.
	ZonesPerRegion int
}

// Defined reports whether the spec names more than one failure domain.
func (t TopologySpec) Defined() bool { return t.Zones > 1 }

// Regions is the region count the spec defines (1 when flat or when
// zones-per-region is unset).
func (t TopologySpec) Regions() int {
	if !t.Defined() || t.ZonesPerRegion <= 0 {
		return 1
	}
	return (t.Zones + t.ZonesPerRegion - 1) / t.ZonesPerRegion
}

// CheckpointSpec configures checkpoint replication (the `checkpoint:`
// block): every shard is written to Replicas distinct domains at the
// Spread level, so losing one whole domain leaves a live copy.
type CheckpointSpec struct {
	// Replicas is the copy count; <= 1 disables replication.
	Replicas int
	// Spread is the anti-affinity level: "zone" (default), "rack" or
	// "region".
	Spread string
}

// FleetSpec parameterizes a multi-job fleet run (the `fleet:` block).
type FleetSpec struct {
	// Horizon is the simulated duration.
	Horizon simtime.Duration
	// VMGPUs is the shared spot VM size (1 or 4 GPUs).
	VMGPUs int
	// VictimSeed seeds the scripted reclaims' victim draws. 0 derives
	// it from the market seed.
	VictimSeed int64
	// Zones spreads the shared pool's VMs round-robin over this many
	// availability zones (id % zones); >= 2 enables zone-outage events.
	// 0 (default) keeps the pool flat.
	Zones int
}

// FleetJobSpec is one tenant in a fleet-mode scenario.
type FleetJobSpec struct {
	// Name labels the job in reports and audits.
	Name string
	// Model is a model-zoo name ("GPT2-2.5B").
	Model string
	// ClusterGPUs sizes the job's testbed resource pool.
	ClusterGPUs int
	// Batch is the global mini-batch size.
	Batch int
	// Seed seeds job calibration; ManagerSeed the manager's streams.
	Seed        int64
	ManagerSeed int64
	// TargetGPUs is the capacity the job bids for; MinGPUs its
	// guaranteed floor (restored by revocation cascades).
	TargetGPUs int
	MinGPUs    int
	// Priority is the job's base bid.
	Priority float64
	// GapPrior selects the morph-or-hold stable-window prior ("default"
	// or "market"), as in RunSpec.
	GapPrior string
	// Objective/DeadlineAt/TargetExamples select the job's objective,
	// with RunSpec semantics (DeadlineAt 0 means the fleet horizon).
	Objective      string
	DeadlineAt     simtime.Duration
	TargetExamples float64
}

// JobSpec names the model and resource pool.
type JobSpec struct {
	// Model is a model-zoo name ("GPT2-2.5B").
	Model string
	// VMGPUs is the spot VM size (1 or 4 GPUs).
	VMGPUs int
	// ClusterGPUs sizes the testbed resource pool.
	ClusterGPUs int
	// Batch is the global mini-batch size.
	Batch int
	// Seed seeds job calibration and the job's own testbed.
	Seed int64
	// Topology arranges the cluster into failure domains; zero = flat.
	Topology TopologySpec
}

// MarketSpec parameterizes the spot market generating the base event
// trace.
type MarketSpec struct {
	// BaseCapacity is the market's mean spare capacity in VMs.
	BaseCapacity int
	// Seed seeds the market's stochastic capacity process.
	Seed int64
	// MeanHold optionally overrides the mean VM hold time.
	MeanHold simtime.Duration
	// Probe is the allocation-probe cadence (default 10m).
	Probe simtime.Duration
}

// RunSpec tunes the manager run.
type RunSpec struct {
	// TargetGPUs is the fleet size the manager keeps requesting.
	TargetGPUs int
	// Horizon is the simulated duration.
	Horizon simtime.Duration
	// ManagerSeed seeds the manager's stochastic streams.
	ManagerSeed int64
	// Testbed selects the cluster the manager measures on: "job" (the
	// job's own calibrated testbed, the elastic-experiment wiring) or
	// "fresh" (a new identically-parameterized testbed seeded with
	// TestbedSeed, the ablation wiring).
	Testbed string
	// TestbedSeed seeds a "fresh" testbed.
	TestbedSeed int64
	// GapPrior selects the morph-or-hold stable-window prior:
	// "default" (the manager's 30m fallback) or "market" (the market's
	// analytic expected-next-event hazard).
	GapPrior string
	// Policy is the reconfiguration pricing policy: "morph-or-hold"
	// (default), "modeled" or "constant".
	Policy string
	// Objective selects what morphs optimize: "max-throughput"
	// (default), "min-dollar-per-example" or "deadline".
	Objective string
	// DeadlineAt and TargetExamples parameterize the deadline
	// objective (DeadlineAt 0 means the horizon).
	DeadlineAt     simtime.Duration
	TargetExamples float64
	// MeasureStragglers wires unflagged slow VMs into segment
	// measurements (manager.Options.MeasureStragglers).
	MeasureStragglers bool
	// HeartbeatEvery overrides the mid-segment heartbeat cadence when
	// >= 0 (-1, the unset default, keeps the manager default).
	HeartbeatEvery simtime.Duration
	// VictimSeed seeds scripted/chaos victim selection (which live VM
	// a preemption or degradation hits). 0 derives it from the chaos
	// seed, or the market seed when no chaos block is present.
	VictimSeed int64
}

// PriceSpec attaches a spot price curve.
type PriceSpec struct {
	// Kind is "none" (default), "constant" or "mean-reverting".
	Kind string
	// PerGPUHour prices a constant curve.
	PerGPUHour float64
	// Mean/Vol/Reversion/Floor/Step parameterize a mean-reverting
	// curve (price.MROptions).
	Mean, Vol, Reversion, Floor float64
	Step                        simtime.Duration
	// Horizon bounds the generated curve (0 = the run horizon).
	Horizon simtime.Duration
	// Seed seeds a mean-reverting curve.
	Seed int64
}

// Event is one scripted adversarial event. Kind selects which fields
// apply.
type Event struct {
	// At is the event instant, relative to run start.
	At simtime.Duration
	// Kind is one of "preempt", "straggler", "degrade", "net-degrade",
	// "price-shock", "objective", "zone-outage", "rack-outage",
	// "region-outage".
	Kind string
	// Count sizes a preemption burst (default 1).
	Count int
	// VM pins the victim VM id; -1 (default) picks a live VM with the
	// victim seed.
	VM int
	// Domain pins the failure domain a zone/rack/region-outage takes
	// out; -1 (default) draws a domain holding live VMs with the victim
	// seed. Fleet mode requires an explicit domain.
	Domain int
	// Factor is the slowdown (straggler/degrade/net-degrade) or price
	// multiplier (price-shock).
	Factor float64
	// Duration bounds a net-degrade or price-shock episode; 0 means
	// until the horizon.
	Duration simtime.Duration
	// Objective/DeadlineAt/TargetExamples re-target the manager (kind
	// "objective"), with the same semantics as RunSpec.
	Objective      string
	DeadlineAt     simtime.Duration
	TargetExamples float64
}

// Chaos is the compact seeded chaos spec: rates and shapes the
// generator expands into a concrete event script before compilation.
type Chaos struct {
	// Seed drives every generated stream; same spec + seed → same
	// events.
	Seed int64
	// PreemptsPerHour adds Poisson single-VM preemptions.
	PreemptsPerHour float64
	// BurstEvery/BurstSize add correlated mass-preemptions of
	// BurstSize VMs roughly every BurstEvery (±10% jitter).
	BurstEvery simtime.Duration
	BurstSize  int
	// StragglersPerHour adds Poisson sub-threshold straggler onsets
	// with factors uniform in StragglerFactor ([lo, hi]; default
	// [1.05, 1.18] — below the detection threshold).
	StragglersPerHour float64
	StragglerFactor   [2]float64
	// DegradesPerHour adds Poisson fail-stutter onsets with factors
	// uniform in DegradeFactor (default [1.25, 1.45] — above the
	// detection threshold, caught by heartbeats).
	DegradesPerHour float64
	DegradeFactor   [2]float64
	// NetEvery/NetFactor/NetDuration add periodic network-degradation
	// episodes.
	NetEvery    simtime.Duration
	NetFactor   [2]float64
	NetDuration simtime.Duration
	// ShockEvery/ShockFactor/ShockDuration add periodic price shocks.
	ShockEvery    simtime.Duration
	ShockFactor   float64
	ShockDuration simtime.Duration
	// ZoneOutageEvery/RackOutageEvery add periodic correlated
	// mass-preemptions of one whole failure domain (seeded domain
	// draws). Both require a job topology.
	ZoneOutageEvery simtime.Duration
	RackOutageEvery simtime.Duration
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return sc, nil
}

// Parse parses scenario file bytes, validating strictly: unknown keys,
// unknown kinds and out-of-range values are errors, so a typo cannot
// silently weaken a robustness scenario.
func Parse(data []byte) (*Scenario, error) {
	root, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	top, ok := root.(map[string]ynode)
	if !ok {
		return nil, fmt.Errorf("top level must be a map")
	}
	d := &decoder{}
	t := d.section(top, "")

	if v := t.str("version", ""); v != strconv.Itoa(Version) {
		return nil, fmt.Errorf("unsupported version %q (want %d)", v, Version)
	}
	sc := &Scenario{
		Name:        t.str("name", ""),
		Description: t.str("description", ""),
	}

	_, hasFleet := t.m["fleet"]
	_, hasJobs := t.m["jobs"]
	if hasFleet || hasJobs {
		// Fleet mode: N jobs share one market through the arbiter. The
		// single-job blocks are rejected outright — their settings live
		// per job in jobs[].
		for _, k := range []string{"job", "run", "chaos", "checkpoint"} {
			if _, ok := t.m[k]; ok {
				t.used[k] = true
				d.errf("fleet mode: the %q block is not allowed (per-job settings live in jobs[])", k)
			}
		}
		fs := d.section(t.child("fleet"), "fleet")
		sc.Fleet = &FleetSpec{
			Horizon:    fs.dur("horizon", 0),
			VMGPUs:     fs.num("vm-gpus", 1),
			VictimSeed: fs.seed("victim-seed", 0),
			Zones:      fs.num("zones", 0),
		}
		fs.done()
		for i, jn := range t.list("jobs") {
			jm, ok := jn.(map[string]ynode)
			if !ok {
				d.errf("jobs[%d]: each job must be a map", i)
				continue
			}
			js := d.section(jm, fmt.Sprintf("jobs[%d]", i))
			sc.Jobs = append(sc.Jobs, FleetJobSpec{
				Name:           js.str("name", ""),
				Model:          js.str("model", "GPT2-2.5B"),
				ClusterGPUs:    js.num("cluster-gpus", 0),
				Batch:          js.num("batch", 8192),
				Seed:           js.seed("seed", 1),
				ManagerSeed:    js.seed("manager-seed", 1),
				TargetGPUs:     js.num("target-gpus", 0),
				MinGPUs:        js.num("min-gpus", 0),
				Priority:       js.float("priority", 1),
				GapPrior:       js.enum("gap-prior", "default", "default", "market"),
				Objective:      js.enum("objective", "max-throughput", "max-throughput", "min-dollar-per-example", "deadline"),
				DeadlineAt:     js.dur("deadline-at", 0),
				TargetExamples: js.float("target-examples", 0),
			})
			js.done()
		}
	} else {
		j := d.section(t.child("job"), "job")
		sc.Job = JobSpec{
			Model:       j.str("model", "GPT2-2.5B"),
			VMGPUs:      j.num("vm-gpus", 1),
			ClusterGPUs: j.num("cluster-gpus", 0),
			Batch:       j.num("batch", 8192),
			Seed:        j.seed("seed", 1),
		}
		if tn := j.child("topology"); tn != nil {
			ts := d.section(tn, "job.topology")
			sc.Job.Topology = TopologySpec{
				Zones:          ts.num("zones", 0),
				RacksPerZone:   ts.num("racks-per-zone", 1),
				NodesPerRack:   ts.num("nodes-per-rack", 1),
				ZonesPerRegion: ts.num("zones-per-region", 0),
			}
			ts.done()
		}
		j.done()

		if cn := t.child("checkpoint"); cn != nil {
			cs := d.section(cn, "checkpoint")
			sc.Checkpoint = CheckpointSpec{
				Replicas: cs.num("replicas", 0),
				Spread:   cs.enum("spread", "zone", "zone", "rack", "region"),
			}
			cs.done()
		}
	}

	m := d.section(t.child("market"), "market")
	sc.Market = MarketSpec{
		BaseCapacity: m.num("base-capacity", 0),
		Seed:         m.seed("seed", 1),
		MeanHold:     m.dur("mean-hold", 0),
		Probe:        m.dur("probe", 10*simtime.Minute),
	}
	m.done()

	if sc.Fleet == nil {
		r := d.section(t.child("run"), "run")
		sc.Run = RunSpec{
			TargetGPUs:        r.num("target-gpus", 0),
			Horizon:           r.dur("horizon", 0),
			ManagerSeed:       r.seed("manager-seed", 1),
			Testbed:           r.enum("testbed", "job", "job", "fresh"),
			TestbedSeed:       r.seed("testbed-seed", 1),
			GapPrior:          r.enum("gap-prior", "default", "default", "market"),
			Policy:            r.enum("policy", "morph-or-hold", "morph-or-hold", "modeled", "constant"),
			Objective:         r.enum("objective", "max-throughput", "max-throughput", "min-dollar-per-example", "deadline"),
			DeadlineAt:        r.dur("deadline-at", 0),
			TargetExamples:    r.float("target-examples", 0),
			MeasureStragglers: r.boolean("measure-stragglers", false),
			HeartbeatEvery:    r.dur("heartbeat-every", -1),
			VictimSeed:        r.seed("victim-seed", 0),
		}
		r.done()
	}

	if p := t.child("prices"); p != nil {
		ps := d.section(p, "prices")
		sc.Prices = PriceSpec{
			Kind:       ps.enum("kind", "none", "none", "constant", "mean-reverting"),
			PerGPUHour: ps.float("per-gpu-hour", 0),
			Mean:       ps.float("mean", 0),
			Vol:        ps.float("vol", 0),
			Reversion:  ps.float("reversion", 0),
			Floor:      ps.float("floor", 0),
			Step:       ps.dur("step", 0),
			Horizon:    ps.dur("horizon", 0),
			Seed:       ps.seed("seed", 1),
		}
		ps.done()
	} else {
		sc.Prices.Kind = "none"
	}

	if evs := t.list("events"); evs != nil {
		for i, en := range evs {
			em, ok := en.(map[string]ynode)
			if !ok {
				d.errf("events[%d]: each event must be a map", i)
				continue
			}
			es := d.section(em, fmt.Sprintf("events[%d]", i))
			ev := Event{
				At:   es.dur("at", 0),
				Kind: es.enum("kind", "", "preempt", "straggler", "degrade", "net-degrade", "price-shock", "objective", "zone-outage", "rack-outage", "region-outage"),
			}
			switch ev.Kind {
			case "preempt":
				ev.Count = es.num("count", 1)
				ev.VM = es.num("vm", -1)
			case "zone-outage", "rack-outage", "region-outage":
				ev.Domain = es.num("domain", -1)
			case "straggler", "degrade":
				ev.VM = es.num("vm", -1)
				ev.Factor = es.float("factor", 0)
			case "net-degrade", "price-shock":
				ev.Factor = es.float("factor", 0)
				ev.Duration = es.dur("duration", 0)
			case "objective":
				ev.Objective = es.enum("objective", "", "max-throughput", "min-dollar-per-example", "deadline")
				ev.DeadlineAt = es.dur("deadline-at", 0)
				ev.TargetExamples = es.float("target-examples", 0)
			}
			es.done()
			sc.Events = append(sc.Events, ev)
		}
	}

	if cn := t.child("chaos"); cn != nil && sc.Fleet == nil {
		cs := d.section(cn, "chaos")
		sc.Chaos = &Chaos{
			Seed:              cs.seed("seed", 1),
			PreemptsPerHour:   cs.float("preempts-per-hour", 0),
			BurstEvery:        cs.dur("burst-every", 0),
			BurstSize:         cs.num("burst-size", 0),
			StragglersPerHour: cs.float("stragglers-per-hour", 0),
			StragglerFactor:   cs.frange("straggler-factor", [2]float64{1.05, 1.18}),
			DegradesPerHour:   cs.float("degrades-per-hour", 0),
			DegradeFactor:     cs.frange("degrade-factor", [2]float64{1.25, 1.45}),
			NetEvery:          cs.dur("net-every", 0),
			NetFactor:         cs.frange("net-factor", [2]float64{1.5, 1.5}),
			NetDuration:       cs.dur("net-duration", 30*simtime.Minute),
			ShockEvery:        cs.dur("shock-every", 0),
			ShockFactor:       cs.float("shock-factor", 2),
			ShockDuration:     cs.dur("shock-duration", 45*simtime.Minute),
			ZoneOutageEvery:   cs.dur("zone-outage-every", 0),
			RackOutageEvery:   cs.dur("rack-outage-every", 0),
		}
		cs.done()
	}

	if tn := t.child("telemetry"); tn != nil {
		ts := d.section(tn, "telemetry")
		sc.Telemetry = &TelemetrySpec{
			SampleEvery: ts.dur("sample-every", simtime.Minute),
			Ring:        ts.num("ring", 0),
		}
		ts.done()
	}
	if sls := t.list("slos"); sls != nil {
		for i, sn := range sls {
			sm, ok := sn.(map[string]ynode)
			if !ok {
				d.errf("slos[%d]: each rule must be a map", i)
				continue
			}
			ss := d.section(sm, fmt.Sprintf("slos[%d]", i))
			sc.SLOs = append(sc.SLOs, SLOSpec{
				Name:   ss.str("name", ""),
				Expr:   ss.str("expr", ""),
				Window: ss.dur("window", 0),
				For:    ss.dur("for", 0),
				Mode:   ss.enum("mode", "warn", "warn", "enforce"),
				Job:    ss.str("job", ""),
			})
			ss.done()
		}
	}
	t.done()

	if d.err() == nil {
		d.validate(sc)
	}
	if err := d.err(); err != nil {
		return nil, err
	}
	return sc, nil
}

// validate cross-checks the decoded scenario.
func (d *decoder) validate(sc *Scenario) {
	if sc.Name == "" {
		d.errf("name: required")
	}
	if sc.Market.BaseCapacity < 1 {
		d.errf("market.base-capacity: required and positive")
	}
	switch sc.Prices.Kind {
	case "constant":
		if sc.Prices.PerGPUHour <= 0 {
			d.errf("prices.per-gpu-hour: required and positive for a constant curve")
		}
	case "mean-reverting":
		if sc.Prices.Mean <= 0 {
			d.errf("prices.mean: required and positive for a mean-reverting curve")
		}
	}
	d.validateTelemetry(sc)
	if sc.Fleet != nil {
		d.validateFleet(sc)
		return
	}
	if sc.Job.ClusterGPUs < 1 {
		d.errf("job.cluster-gpus: required and positive")
	}
	if sc.Job.VMGPUs != 1 && sc.Job.VMGPUs != 4 {
		d.errf("job.vm-gpus: must be 1 or 4, got %d", sc.Job.VMGPUs)
	}
	if sc.Job.Batch < 1 {
		d.errf("job.batch: must be positive")
	}
	if sc.Run.TargetGPUs < 1 {
		d.errf("run.target-gpus: required and positive")
	}
	if sc.Run.Horizon <= 0 {
		d.errf("run.horizon: required and positive")
	}
	topo := sc.Job.Topology
	if topo.Zones == 1 || topo.Zones < 0 {
		d.errf("job.topology.zones: must be >= 2 (or omit the block for a flat cluster), got %d", topo.Zones)
	}
	if topo.Zones != 0 && (topo.RacksPerZone < 1 || topo.NodesPerRack < 1) {
		d.errf("job.topology: racks-per-zone and nodes-per-rack must be positive")
	}
	if topo.ZonesPerRegion < 0 || topo.ZonesPerRegion > topo.Zones {
		d.errf("job.topology.zones-per-region: %d outside [0, zones]", topo.ZonesPerRegion)
	} else if topo.ZonesPerRegion > 0 && !topo.Defined() {
		d.errf("job.topology.zones-per-region: needs zones >= 2")
	}
	if sc.Checkpoint.Replicas < 0 {
		d.errf("checkpoint.replicas: must be non-negative, got %d", sc.Checkpoint.Replicas)
	}
	if sc.Checkpoint.Replicas > 1 && !topo.Defined() {
		d.errf("checkpoint.replicas: replication needs a job.topology block with zones >= 2")
	}
	if sc.Checkpoint.Spread == "region" && topo.Regions() < 2 {
		d.errf("checkpoint.spread: \"region\" needs job.topology.zones-per-region defining >= 2 regions")
	}
	priced := sc.Prices.Kind != "none"
	if sc.Run.Objective != "max-throughput" && !priced {
		d.errf("run.objective %q needs a prices block", sc.Run.Objective)
	}
	for i, ev := range sc.Events {
		at := fmt.Sprintf("events[%d] (%s)", i, ev.Kind)
		if ev.At < 0 || ev.At > sc.Run.Horizon {
			d.errf("%s: at %v outside [0, horizon]", at, ev.At)
		}
		switch ev.Kind {
		case "preempt":
			if ev.Count < 1 {
				d.errf("%s: count must be positive", at)
			}
		case "straggler", "degrade":
			if ev.Factor <= 1 {
				d.errf("%s: factor must exceed 1", at)
			}
		case "net-degrade":
			if ev.Factor < 1 {
				d.errf("%s: factor must be >= 1", at)
			}
		case "price-shock":
			if ev.Factor <= 0 {
				d.errf("%s: factor must be positive", at)
			}
			if !priced {
				d.errf("%s: needs a prices block", at)
			}
		case "objective":
			if ev.Objective != "max-throughput" && !priced {
				d.errf("%s: objective %q needs a prices block", at, ev.Objective)
			}
		case "zone-outage":
			if !topo.Defined() {
				d.errf("%s: needs a job.topology block with zones >= 2", at)
			} else if ev.Domain >= topo.Zones {
				d.errf("%s: domain %d outside [0, zones)", at, ev.Domain)
			}
		case "rack-outage":
			if !topo.Defined() {
				d.errf("%s: needs a job.topology block with zones >= 2", at)
			} else if ev.Domain >= topo.Zones*topo.RacksPerZone {
				d.errf("%s: domain %d outside [0, zones*racks-per-zone)", at, ev.Domain)
			}
		case "region-outage":
			if topo.Regions() < 2 {
				d.errf("%s: needs job.topology.zones-per-region defining >= 2 regions", at)
			} else if ev.Domain >= topo.Regions() {
				d.errf("%s: domain %d outside [0, regions)", at, ev.Domain)
			}
		}
	}
	if c := sc.Chaos; c != nil {
		if c.ShockEvery > 0 && !priced {
			d.errf("chaos.shock-every: needs a prices block")
		}
		if (c.ZoneOutageEvery > 0 || c.RackOutageEvery > 0) && !topo.Defined() {
			d.errf("chaos outage streams need a job.topology block with zones >= 2")
		}
		for _, rg := range []struct {
			name string
			r    [2]float64
		}{
			{"straggler-factor", c.StragglerFactor},
			{"degrade-factor", c.DegradeFactor},
			{"net-factor", c.NetFactor},
		} {
			if rg.r[0] > rg.r[1] || rg.r[0] < 1 {
				d.errf("chaos.%s: want [lo, hi] with 1 <= lo <= hi, got %v", rg.name, rg.r)
			}
		}
	}
}

// validateFleet cross-checks a fleet-mode scenario. Fleet runs accept
// only the event kinds the arbiter can arbitrate deterministically:
// scripted preemptions (seeded victim draws from the shared pool) and
// compile-time price shocks. Per-VM degradations and objective changes
// would need per-job victim routing the fleet does not define yet.
func (d *decoder) validateFleet(sc *Scenario) {
	priced := sc.Prices.Kind != "none"
	f := sc.Fleet
	if f.Horizon <= 0 {
		d.errf("fleet.horizon: required and positive")
	}
	if f.VMGPUs != 1 && f.VMGPUs != 4 {
		d.errf("fleet.vm-gpus: must be 1 or 4, got %d", f.VMGPUs)
	}
	if f.Zones == 1 || f.Zones < 0 {
		d.errf("fleet.zones: must be >= 2 (or omit for a flat pool), got %d", f.Zones)
	}
	if len(sc.Jobs) == 0 {
		d.errf("jobs: fleet mode needs at least one job")
	}
	names := map[string]bool{}
	for i, j := range sc.Jobs {
		at := fmt.Sprintf("jobs[%d]", i)
		if j.Name == "" {
			d.errf("%s.name: required", at)
		} else if names[j.Name] {
			d.errf("%s.name: duplicate %q", at, j.Name)
		}
		names[j.Name] = true
		if j.ClusterGPUs < 1 {
			d.errf("%s.cluster-gpus: required and positive", at)
		}
		if j.Batch < 1 {
			d.errf("%s.batch: must be positive", at)
		}
		if j.TargetGPUs < 1 {
			d.errf("%s.target-gpus: required and positive", at)
		}
		if j.MinGPUs < 0 || j.MinGPUs > j.TargetGPUs {
			d.errf("%s.min-gpus: %d outside [0, target-gpus]", at, j.MinGPUs)
		}
		if j.Objective != "max-throughput" && !priced {
			d.errf("%s.objective %q needs a prices block", at, j.Objective)
		}
	}
	for i, ev := range sc.Events {
		at := fmt.Sprintf("events[%d] (%s)", i, ev.Kind)
		if ev.At < 0 || ev.At > f.Horizon {
			d.errf("%s: at %v outside [0, horizon]", at, ev.At)
		}
		switch ev.Kind {
		case "preempt":
			if ev.Count < 1 {
				d.errf("%s: count must be positive", at)
			}
			if ev.VM >= 0 {
				d.errf("%s: vm pinning is not supported in fleet mode (victims are seeded draws)", at)
			}
		case "price-shock":
			if ev.Factor <= 0 {
				d.errf("%s: factor must be positive", at)
			}
			if !priced {
				d.errf("%s: needs a prices block", at)
			}
		case "zone-outage":
			if f.Zones < 2 {
				d.errf("%s: needs fleet.zones >= 2", at)
			} else if ev.Domain < 0 || ev.Domain >= f.Zones {
				d.errf("%s: fleet mode requires an explicit domain in [0, zones)", at)
			}
		default:
			d.errf("%s: fleet mode supports only preempt, price-shock and zone-outage events", at)
		}
	}
}

// sloSeries is the whitelist of series base names the manager samples
// (per-job in fleet mode). An SLO expression's left-hand side must
// resolve to one of these after the aggregate suffix is stripped.
var sloSeries = map[string]bool{
	"gpus":              true,
	"throughput":        true,
	"dollars":           true,
	"dollars-per-kex":   true,
	"downtime-fraction": true,
	"idle-fraction":     true,
	"recovery":          true,
}

// validateTelemetry cross-checks the telemetry and slos blocks, which
// are shared between single-job and fleet modes.
func (d *decoder) validateTelemetry(sc *Scenario) {
	if ts := sc.Telemetry; ts != nil {
		if ts.SampleEvery < simtime.Second {
			d.errf("telemetry.sample-every: must be >= 1s, got %v", ts.SampleEvery)
		}
		if ts.Ring < 0 {
			d.errf("telemetry.ring: must be non-negative, got %d", ts.Ring)
		}
	}
	priced := sc.Prices.Kind != "none"
	jobs := map[string]bool{}
	for _, j := range sc.Jobs {
		jobs[j.Name] = true
	}
	names := map[string]bool{}
	for i, sl := range sc.SLOs {
		at := fmt.Sprintf("slos[%d]", i)
		if sl.Expr == "" {
			d.errf("%s.expr: required", at)
			continue
		}
		series, _, _, _, err := obs.ParseSLOExpr(sl.Expr)
		if err != nil {
			d.errf("%s.expr: %v", at, err)
			continue
		}
		if !sloSeries[series] {
			d.errf("%s.expr: unknown series %q (known: dollars, dollars-per-kex, downtime-fraction, gpus, idle-fraction, recovery, throughput)", at, series)
		}
		if (series == "dollars" || series == "dollars-per-kex") && !priced {
			d.errf("%s.expr: series %q needs a prices block", at, series)
		}
		name := sl.EffectiveName()
		if names[name] {
			d.errf("%s: duplicate rule name %q", at, name)
		}
		names[name] = true
		if sl.Window < 0 || sl.For < 0 {
			d.errf("%s: window and for must be non-negative", at)
		}
		if sc.Fleet == nil {
			if sl.Job != "" {
				d.errf("%s.job: only valid in fleet mode", at)
			}
		} else if sl.Job == "" {
			d.errf("%s.job: required in fleet mode (series are per-job)", at)
		} else if !jobs[sl.Job] {
			d.errf("%s.job: no job named %q", at, sl.Job)
		}
	}
}

// EffectiveName is the rule's report name: Name, defaulting to the
// expression's left-hand side (e.g. "recovery-p99").
func (s SLOSpec) EffectiveName() string {
	if s.Name != "" {
		return s.Name
	}
	if f := strings.Fields(s.Expr); len(f) > 0 {
		return f[0]
	}
	return s.Expr
}

// decoder accumulates strict-decode errors across sections.
type decoder struct {
	errs []string
}

func (d *decoder) errf(format string, args ...any) {
	d.errs = append(d.errs, fmt.Sprintf(format, args...))
}

func (d *decoder) err() error {
	if len(d.errs) == 0 {
		return nil
	}
	return fmt.Errorf("%s", strings.Join(d.errs, "; "))
}

// section wraps one map node with typed, used-key-tracked accessors.
type section struct {
	d    *decoder
	name string
	m    map[string]ynode
	used map[string]bool
}

func (d *decoder) section(n ynode, name string) *section {
	s := &section{d: d, name: name, used: map[string]bool{}}
	switch v := n.(type) {
	case nil:
		s.m = map[string]ynode{}
	case map[string]ynode:
		s.m = v
	default:
		d.errf("%s: must be a map", name)
		s.m = map[string]ynode{}
	}
	return s
}

func (s *section) key(k string) string {
	if s.name == "" {
		return k
	}
	return s.name + "." + k
}

func (s *section) scalar(k string) (string, bool) {
	s.used[k] = true
	n, ok := s.m[k]
	if !ok {
		return "", false
	}
	str, ok := n.(string)
	if !ok {
		s.d.errf("%s: must be a scalar", s.key(k))
		return "", false
	}
	return str, true
}

// child returns a nested node without type-checking it (the caller
// wraps it in a section or list).
func (s *section) child(k string) ynode {
	s.used[k] = true
	return s.m[k]
}

func (s *section) list(k string) []ynode {
	s.used[k] = true
	n, ok := s.m[k]
	if !ok {
		return nil
	}
	l, ok := n.([]ynode)
	if !ok {
		s.d.errf("%s: must be a list", s.key(k))
		return nil
	}
	return l
}

func (s *section) str(k, def string) string {
	v, ok := s.scalar(k)
	if !ok {
		return def
	}
	return v
}

func (s *section) enum(k, def string, allowed ...string) string {
	v := s.str(k, def)
	for _, a := range allowed {
		if v == a {
			return v
		}
	}
	s.d.errf("%s: %q not one of %v", s.key(k), v, allowed)
	return def
}

func (s *section) num(k string, def int) int {
	v, ok := s.scalar(k)
	if !ok {
		return def
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		s.d.errf("%s: %q is not an integer", s.key(k), v)
		return def
	}
	return i
}

func (s *section) seed(k string, def int64) int64 {
	v, ok := s.scalar(k)
	if !ok {
		return def
	}
	i, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		s.d.errf("%s: %q is not an integer", s.key(k), v)
		return def
	}
	return i
}

func (s *section) float(k string, def float64) float64 {
	v, ok := s.scalar(k)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		s.d.errf("%s: %q is not a number", s.key(k), v)
		return def
	}
	return f
}

func (s *section) boolean(k string, def bool) bool {
	v, ok := s.scalar(k)
	if !ok {
		return def
	}
	switch v {
	case "true":
		return true
	case "false":
		return false
	}
	s.d.errf("%s: %q is not true/false", s.key(k), v)
	return def
}

func (s *section) dur(k string, def simtime.Duration) simtime.Duration {
	v, ok := s.scalar(k)
	if !ok {
		return def
	}
	d, err := parseDuration(v)
	if err != nil {
		s.d.errf("%s: %v", s.key(k), err)
		return def
	}
	return d
}

func (s *section) frange(k string, def [2]float64) [2]float64 {
	s.used[k] = true
	n, ok := s.m[k]
	if !ok {
		return def
	}
	l, ok := n.([]ynode)
	if !ok || len(l) != 2 {
		s.d.errf("%s: must be [lo, hi]", s.key(k))
		return def
	}
	var out [2]float64
	for i, e := range l {
		str, _ := e.(string)
		f, err := strconv.ParseFloat(str, 64)
		if err != nil {
			s.d.errf("%s: %q is not a number", s.key(k), str)
			return def
		}
		out[i] = f
	}
	return out
}

// done flags unknown keys in the section.
func (s *section) done() {
	var unknown []string
	for k := range s.m {
		if !s.used[k] {
			unknown = append(unknown, s.key(k))
		}
	}
	sort.Strings(unknown)
	for _, k := range unknown {
		s.d.errf("unknown key %q", k)
	}
}

// parseDuration parses single-unit durations: "90s", "10m", "24h",
// "1.5h", "500ms", "0".
func parseDuration(s string) (simtime.Duration, error) {
	if s == "0" {
		return 0, nil
	}
	units := []struct {
		suffix string
		unit   simtime.Duration
	}{
		{"ms", simtime.Millisecond},
		{"s", simtime.Second},
		{"m", simtime.Minute},
		{"h", simtime.Hour},
	}
	for _, u := range units {
		if !strings.HasSuffix(s, u.suffix) {
			continue
		}
		num := strings.TrimSuffix(s, u.suffix)
		f, err := strconv.ParseFloat(num, 64)
		if err != nil {
			break
		}
		return simtime.Duration(f*float64(u.unit) + 0.5), nil
	}
	return 0, fmt.Errorf("%q is not a duration (use e.g. 30s, 10m, 1.5h)", s)
}
