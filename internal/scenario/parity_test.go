package scenario

import (
	"reflect"
	"testing"

	"repro/internal/autoconfig"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/manager"
	"repro/internal/model"
	"repro/internal/price"
	"repro/internal/simtime"
	"repro/internal/spot"
	"repro/internal/testbed"
	"repro/scenarios"
)

// The three migrated experiments must reproduce the legacy Go paths
// bit-identically: the scenario file is a re-expression of the same
// run, not an approximation. Each test executes the legacy wiring
// exactly as internal/experiments does and compares the full timeline
// and stats against the committed scenario file.

func runCommitted(t *testing.T, file string) *Result {
	t.Helper()
	data, err := scenarios.FS.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, "")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func requireParity(t *testing.T, res *Result, points []manager.TimelinePoint, stats manager.Stats) {
	t.Helper()
	if !reflect.DeepEqual(res.Stats, stats) {
		t.Errorf("stats diverge from the legacy path:\nscenario %+v\nlegacy   %+v", res.Stats, stats)
	}
	if !reflect.DeepEqual(res.Points, points) {
		t.Errorf("timeline diverges from the legacy path: %d vs %d points", len(res.Points), len(points))
	}
	if len(res.Report.Violations) != 0 {
		t.Errorf("invariant violations: %v", res.Report.Violations)
	}
}

func TestElasticParity(t *testing.T) {
	job, err := core.NewJob(model.GPT2XL2B(), hw.SpotCluster(hw.NC6v3, 150), 8192, 54)
	if err != nil {
		t.Fatal(err)
	}
	mk := spot.NewMarket(1, 120, 55)
	points, stats, err := job.RunOnSpotMarket(mk, 150, 60*simtime.Hour, 56)
	if err != nil {
		t.Fatal(err)
	}
	requireParity(t, runCommitted(t, "elastic.yaml"), points, stats)
}

func TestRestartCostParity(t *testing.T) {
	cluster := hw.SpotCluster(hw.NC6v3, 150)
	job, err := core.NewJob(model.GPT2XL2B(), cluster, 8192, 54)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 24 * simtime.Hour
	events := spot.EventTrace(spot.NewMarket(1, 120, 55), 150, horizon, 10*simtime.Minute)
	mg := manager.NewWithPlanner(job.Inputs(), testbed.New(cluster, 58), job.Planner(), manager.DefaultOptions(), 56)
	points, stats, err := mg.RunTimeline(events, horizon)
	if err != nil {
		t.Fatal(err)
	}
	requireParity(t, runCommitted(t, "restart-cost.yaml"), points, stats)
}

func TestSpotDollarsParity(t *testing.T) {
	cluster := hw.SpotCluster(hw.NC6v3, 150)
	job, err := core.NewJob(model.GPT2XL2B(), cluster, 8192, 54)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 24 * simtime.Hour
	events := spot.EventTrace(spot.NewMarket(1, 120, 55), 150, horizon, 10*simtime.Minute)
	curve, err := price.MeanReverting(price.MROptions{
		Mean: 2.40, Vol: 0.18, Reversion: 0.12, Horizon: horizon,
	}, 61)
	if err != nil {
		t.Fatal(err)
	}
	opts := manager.DefaultOptions()
	opts.Prices = curve
	opts.Objective = autoconfig.Objective{Kind: autoconfig.ObjMinDollarPerExample}
	mg := manager.NewWithPlanner(job.Inputs(), testbed.New(cluster, 58), job.Planner(), opts, 56)
	points, stats, err := mg.RunTimeline(events, horizon)
	if err != nil {
		t.Fatal(err)
	}
	requireParity(t, runCommitted(t, "spot-dollars.yaml"), points, stats)
}

// TestFleetCollapseParity runs each committed single-job scenario
// through the fleet arbiter's single-tenant collapse and requires the
// result — timeline, stats and the rendered report bytes — to be
// bit-identical to the direct path. The arbiter is a superset of the
// direct market wiring, never a reinterpretation of it.
func TestFleetCollapseParity(t *testing.T) {
	for _, file := range []string{"elastic.yaml", "restart-cost.yaml", "spot-dollars.yaml"} {
		t.Run(file, func(t *testing.T) {
			data, err := scenarios.FS.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := Parse(data)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := Run(sc, "")
			if err != nil {
				t.Fatal(err)
			}
			sc2, err := Parse(data)
			if err != nil {
				t.Fatal(err)
			}
			via, err := RunViaFleet(sc2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(via.Points, direct.Points) {
				t.Errorf("timeline diverges through the fleet arbiter: %d vs %d points", len(via.Points), len(direct.Points))
			}
			if !reflect.DeepEqual(via.Stats, direct.Stats) {
				t.Errorf("stats diverge through the fleet arbiter:\nfleet  %+v\ndirect %+v", via.Stats, direct.Stats)
			}
			dj, err := direct.Report.JSON()
			if err != nil {
				t.Fatal(err)
			}
			vj, err := via.Report.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(dj) != string(vj) {
				t.Errorf("report bytes diverge through the fleet arbiter:\nfleet:\n%s\ndirect:\n%s", vj, dj)
			}
		})
	}
}
