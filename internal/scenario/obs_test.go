package scenario

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/scenarios"
)

// loadCommitted parses a committed scenario file.
func loadCommitted(t *testing.T, name string) *Scenario {
	t.Helper()
	data, err := scenarios.FS.ReadFile(name + ".yaml")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestObserveNilIdentical pins the off-is-free contract at the report
// level: attaching nil observability hooks changes nothing — the
// report bytes are identical to a plain, unobserved run.
func TestObserveNilIdentical(t *testing.T) {
	plain, err := Run(loadCommitted(t, "elastic"), "")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(loadCommitted(t, "elastic"))
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(nil, nil)
	observed, err := c.Run("")
	if err != nil {
		t.Fatal(err)
	}
	a, err := plain.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := observed.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Observe(nil, nil) changed the report bytes")
	}
	if observed.Report.Obs != nil {
		t.Fatal("unobserved run grew an obs snapshot")
	}
}

// TestTimelineSingleStream pins the single-ordered-stream property:
// every timeline point — morphs, holds, downs, checkpoints, samples
// and release-carrying points alike — goes through the one emit path,
// so the trace's "timeline" instants mirror the point stream 1:1 in
// order, name and simulated instant. An event kind bypassing that path
// (the old Released/hold drift) shifts the streams apart and fails
// here.
func TestTimelineSingleStream(t *testing.T) {
	c, err := Compile(loadCommitted(t, "spot-dollars"))
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	c.Observe(tr, nil)
	res, err := c.Run("")
	if err != nil {
		t.Fatal(err)
	}

	var stream []obs.Span
	for _, sp := range tr.Spans() {
		if sp.Cat == "timeline" {
			stream = append(stream, sp)
		}
	}
	if len(stream) != len(res.Points) {
		t.Fatalf("trace saw %d timeline events, point stream has %d", len(stream), len(res.Points))
	}
	sawReleased, sawHold := false, false
	for i, sp := range stream {
		p := res.Points[i]
		want := p.Event
		if want == "" {
			want = "sample"
		}
		if sp.Name != want || sp.Start != p.At {
			t.Fatalf("stream drift at %d: trace %q@%v vs point %q@%v", i, sp.Name, sp.Start, p.Event, p.At)
		}
		if p.Event == "hold" {
			sawHold = true
		}
		if p.Released > 0 {
			sawReleased = true
			ok := false
			for _, a := range sp.Args {
				if a.Key == "released" && a.Val == int64(p.Released) {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("point %d released %d VMs but its trace instant says %+v", i, p.Released, sp.Args)
			}
		}
	}
	if !sawHold || !sawReleased {
		t.Fatalf("spot-dollars run exercised hold=%v released=%v; the drift regression needs both", sawHold, sawReleased)
	}
}

// runTracedMultiJob executes the committed multi-job fleet soak with
// tracing on and returns the trace bytes plus the report bytes.
func runTracedMultiJob(t *testing.T) (*obs.Tracer, []byte, []byte) {
	t.Helper()
	c, err := CompileFleet(loadCommitted(t, "multi-job"))
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	met := obs.NewMetrics()
	c.Observe(tr, met)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Violations) != 0 {
		t.Fatalf("violations: %v", res.Report.Violations)
	}
	trace, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := res.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return tr, trace, rep
}

// TestMultiJobTraceChain is the tentpole acceptance gate: the traced
// committed multi-job run must contain a walkable causal chain from a
// restart phase back through the morph decision and the preemption to
// the market/arbiter event that caused it — including at least one
// chain through a revocation cascade — and both the exported trace and
// the report must be byte-stable across two fresh runs.
func TestMultiJobTraceChain(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-job soak is slow; skipped with -short")
	}
	tr, trace1, rep1 := runTracedMultiJob(t)

	// Track layout: control tracks first, then one per job.
	tracks := tr.Tracks()
	if len(tracks) < 4 || tracks[0] != "market" || tracks[1] != "arbiter" {
		t.Fatalf("track layout %v", tracks)
	}

	// Walk every restart-phase span's ancestry and classify what the
	// chains connect.
	names := func(chain []obs.Span) map[string]bool {
		m := map[string]bool{}
		for _, sp := range chain {
			m[sp.Cat+"/"+sp.Name] = true
		}
		return m
	}
	var viaMarket, viaCascade, restarts int
	for _, sp := range tr.Spans() {
		if sp.Cat != "restart" {
			continue
		}
		restarts++
		chain := tr.Chain(sp.ID)
		if chain[len(chain)-1].Parent != 0 {
			t.Fatalf("restart span %d chain does not reach a root", sp.ID)
		}
		n := names(chain)
		if !n["manager/decision"] {
			t.Fatalf("restart span %d not under a morph decision: %v", sp.ID, n)
		}
		if n["fleet/preempt"] && (n["market/reclaim"] || n["market/scripted-reclaim"]) {
			viaMarket++
		}
		if n["fleet/preempt"] && n["arbiter/revoke"] && n["arbiter/cascade"] {
			viaCascade++
		}
	}
	if restarts == 0 {
		t.Fatal("no restart phases recorded")
	}
	if viaMarket == 0 {
		t.Fatal("no restart chain reaches a market preemption")
	}
	if viaCascade == 0 {
		t.Fatal("no restart chain passes through a revocation cascade")
	}

	// Byte-stability across a fresh replay: trace and report alike
	// (the report embeds the SimOnly metrics snapshot).
	_, trace2, rep2 := runTracedMultiJob(t)
	if !bytes.Equal(trace1, trace2) {
		t.Fatal("exported trace differs across replays")
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatal("observed report differs across replays")
	}
}
