package scenario

import (
	"fmt"
	"strconv"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// telemetryDeclared reports whether the scenario asks for continuous
// sampling: an explicit telemetry block, or any SLO rule (monitors
// need the series to watch).
func telemetryDeclared(sc *Scenario) bool {
	return sc.Telemetry != nil || len(sc.SLOs) > 0
}

// telemetryRing is the configured per-series ring capacity (0 = the
// obs default).
func telemetryRing(sc *Scenario) int {
	if sc.Telemetry != nil {
		return sc.Telemetry.Ring
	}
	return 0
}

// telemetrySampleEvery is the configured sampling cadence (0 = the
// manager default).
func telemetrySampleEvery(sc *Scenario) simtime.Duration {
	if sc.Telemetry != nil {
		return sc.Telemetry.SampleEvery
	}
	return 0
}

// buildMonitors compiles the scenario's SLO rules into online
// evaluators watching ss. In fleet mode each rule watches its job's
// prefixed series ("<job>/<series>"). Expressions were validated at
// parse time, so a parse failure here is a programming error.
func buildMonitors(sc *Scenario, ss *obs.SeriesSet) []*obs.Monitor {
	var ms []*obs.Monitor
	for _, sl := range sc.SLOs {
		series, agg, op, th, err := obs.ParseSLOExpr(sl.Expr)
		if err != nil {
			panic(fmt.Sprintf("scenario %s: unvalidated SLO %q: %v", sc.Name, sl.Expr, err))
		}
		if sl.Job != "" {
			series = sl.Job + "/" + series
		}
		m := &obs.Monitor{
			Name:      sl.EffectiveName(),
			Expr:      sl.Expr,
			Series:    series,
			Agg:       agg,
			Op:        op,
			Threshold: th,
			Window:    sl.Window,
			For:       sl.For,
			Enforce:   sl.Mode == "enforce",
			Job:       sl.Job,
		}
		ss.Watch(series, m.Observe)
		ms = append(ms, m)
	}
	return ms
}

// attachBreachHooks wires each monitor's OnBreach to the run's
// observability sinks: a typed breach counter and an instant on a
// lazily-created "slo" trace track (created on first breach, so
// breach-free traces keep their exact track layout). Nil-safe in both
// sinks.
func attachBreachHooks(monitors []*obs.Monitor, tr *obs.Tracer, met *obs.Metrics) {
	if len(monitors) == 0 || (tr == nil && met == nil) {
		return
	}
	var trk obs.TrackID
	haveTrk := false
	for _, m := range monitors {
		m := m
		m.OnBreach = func(at simtime.Time, v float64) {
			met.Count("slo.breach."+m.Name, 1)
			if tr.Enabled() {
				if !haveTrk {
					trk = tr.Track("slo")
					haveTrk = true
				}
				id := tr.Instant(trk, 0, at, "slo", m.Name)
				tr.SetArgs(id,
					obs.Str("expr", m.Expr),
					obs.Str("value", strconv.FormatFloat(v, 'g', -1, 64)))
			}
		}
	}
}

// sloResults collects every monitor's outcome and appends enforce-mode
// breaches to violations (the existing nonzero-exit path), returning
// the report section and the augmented violation list.
func sloResults(monitors []*obs.Monitor, violations []string) ([]obs.SLOResult, []string) {
	if len(monitors) == 0 {
		return nil, violations
	}
	var out []obs.SLOResult
	for _, m := range monitors {
		r := m.Result()
		out = append(out, r)
		if m.Enforce && !r.OK {
			violations = append(violations, fmt.Sprintf(
				"slo %s (%q) breached %d time(s), worst %g", r.Name, m.Expr, r.Breaches, r.Worst))
		}
	}
	return out, violations
}
