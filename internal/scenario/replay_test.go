package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/price"
	"repro/internal/restart"
	"repro/scenarios"
)

func mustParse(t *testing.T, doc string) *Scenario {
	t.Helper()
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestReplayBitIdentical is the core determinism property: the same
// scenario file replays to a bit-identical timeline, stats and report
// bytes. CI runs this under -race as well.
func TestReplayBitIdentical(t *testing.T) {
	a, err := Run(mustParse(t, miniScenario), "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mustParse(t, miniScenario), "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Errorf("stats differ across replays:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if !reflect.DeepEqual(a.Points, b.Points) {
		t.Errorf("timelines differ across replays")
	}
	ja, err := a.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Errorf("report bytes differ across replays:\n%s\n%s", ja, jb)
	}
	if a.Stats.Preemptions == 0 || a.Stats.MiniBatches == 0 {
		t.Errorf("degenerate run: %+v", a.Stats)
	}
	if len(a.Report.Violations) != 0 {
		t.Errorf("invariant violations: %v", a.Report.Violations)
	}
}

// Different seeds must actually change the run — a chaos harness whose
// seed does nothing tests nothing.
func TestDifferentSeedsDiffer(t *testing.T) {
	base, err := Run(mustParse(t, miniScenario), "")
	if err != nil {
		t.Fatal(err)
	}
	for _, swap := range []struct{ old, new string }{
		{"seed: 21", "seed: 22"}, // chaos seed
		{"seed: 12", "seed: 15"}, // market seed
	} {
		doc := strings.Replace(miniScenario, swap.old, swap.new, 1)
		if doc == miniScenario {
			t.Fatalf("replacement %q not found", swap.old)
		}
		res, err := Run(mustParse(t, doc), "")
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(res.Stats, base.Stats) {
			t.Errorf("seed change %q → %q left stats identical", swap.old, swap.new)
		}
	}
}

// TestKillResumeState checks the -state discipline: after a run, the
// persisted planner and meter reload bit-exactly, and a resumed run
// continues the cumulative bill instead of restarting it.
func TestKillResumeState(t *testing.T) {
	dir := t.TempDir()
	sc := mustParse(t, miniScenario)
	first, err := Run(sc, dir)
	if err != nil {
		t.Fatal(err)
	}
	saved, err := os.ReadFile(filepath.Join(dir, restart.StateFile))
	if err != nil {
		t.Fatal(err)
	}

	// Restore into fresh carriers and re-save: the round trip must be
	// byte-identical (planner and meter restore bit-exactly).
	c2, err := Compile(mustParse(t, miniScenario))
	if err != nil {
		t.Fatal(err)
	}
	meter := price.NewMeter(c2.Opts.Prices)
	sections := restart.Sections{
		restart.SectionPlanner: c2.Job.Planner(),
		restart.SectionMeter:   meter,
	}
	found, err := restart.LoadSections(dir, sections)
	if err != nil {
		t.Fatal(err)
	}
	if !found[restart.SectionPlanner] || !found[restart.SectionMeter] {
		t.Fatalf("missing sections: %v", found)
	}
	dir2 := t.TempDir()
	if err := restart.SaveSections(dir2, sections); err != nil {
		t.Fatal(err)
	}
	resaved, err := os.ReadFile(filepath.Join(dir2, restart.StateFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, resaved) {
		t.Error("state round trip is not byte-identical")
	}
	if got, want := meter.Total(), first.Stats.DollarsSpent; !close9(got, want) {
		t.Errorf("restored meter total %.9f, want first run's bill %.9f", got, want)
	}

	// A resumed run on the same state dir continues the bill: the
	// meter on disk afterwards carries both runs, while the resumed
	// run's own stats stay base-excluded.
	second, err := c2.Run(dir)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	data, err := os.ReadFile(filepath.Join(dir, restart.StateFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	cum := price.NewMeter(c2.Opts.Prices)
	if err := cum.ImportState(doc[restart.SectionMeter]); err != nil {
		t.Fatal(err)
	}
	if got, want := cum.Total(), first.Stats.DollarsSpent+second.Stats.DollarsSpent; !close9(got, want) {
		t.Errorf("cumulative meter %.9f, want %.9f (both runs)", got, want)
	}
	// Warm planner caches must not change decisions: the resumed
	// replay matches the cold one bit-identically — except the three
	// dollar-bucket splits, which accumulate on the warm meter's
	// nonzero base and so differ in the last ulp ((base+x)-base ≠ x).
	// Those are compared with tolerance; everything else exactly.
	fs, ss := first.Stats, second.Stats
	for _, pair := range [][2]float64{
		{fs.DollarsCompute, ss.DollarsCompute},
		{fs.DollarsReconfig, ss.DollarsReconfig},
		{fs.DollarsIdle, ss.DollarsIdle},
	} {
		if !close9(pair[0], pair[1]) {
			t.Errorf("warm-state dollar bucket diverged: %.12f vs %.12f", pair[0], pair[1])
		}
	}
	fs.DollarsCompute, fs.DollarsReconfig, fs.DollarsIdle = 0, 0, 0
	ss.DollarsCompute, ss.DollarsReconfig, ss.DollarsIdle = 0, 0, 0
	if !reflect.DeepEqual(fs, ss) {
		t.Errorf("warm-state replay diverged:\n%+v\n%+v", fs, ss)
	}
}

func close9(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}

// TestChaosStress runs the committed ≥1000-VM chaos soak twice: it
// must complete with a structured report, zero invariant violations,
// exercise every chaos stream, and replay bit-identically (stats —
// the full point-by-point comparison is covered by the cheaper replay
// test above).
func TestChaosStress(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos-stress soak skipped in -short")
	}
	res := runCommitted(t, "chaos-stress.yaml")
	s := res.Stats
	if s.Allocations < 1000 {
		t.Errorf("chaos-stress should churn ≥1000 VMs, got %d allocations", s.Allocations)
	}
	if s.Preemptions < 100 || s.MiniBatches == 0 || s.DollarsSpent <= 0 {
		t.Errorf("degenerate soak: %+v", s)
	}
	if res.Compiled.ScriptEvents == 0 {
		t.Error("chaos expansion produced no events")
	}
	if len(res.Report.Violations) != 0 {
		t.Errorf("invariant violations: %v", res.Report.Violations)
	}
	if _, err := res.Report.JSON(); err != nil {
		t.Fatal(err)
	}
	replay := runCommitted(t, "chaos-stress.yaml")
	if !reflect.DeepEqual(res.Stats, replay.Stats) {
		t.Errorf("chaos-stress replay diverged:\n%+v\n%+v", res.Stats, replay.Stats)
	}
}

// The committed scenario files must all parse and compile-validate —
// a smoke over everything in scenarios/, so a file edit cannot land
// broken.
func TestCommittedScenariosParse(t *testing.T) {
	entries, err := scenarios.FS.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 4 {
		t.Fatalf("expected ≥4 committed scenarios, found %d", len(entries))
	}
	for _, e := range entries {
		data, err := scenarios.FS.ReadFile(e.Name())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(data); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
}
