package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/manager"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/spot"
)

// Report is the structured outcome of a scenario run: progress,
// decisions, dollars, recovery latencies and the robustness-invariant
// checks. It marshals to stable JSON (struct field order), so a
// bit-identical replay emits byte-identical report files.
type Report struct {
	Scenario    string `json:"scenario"`
	Version     int    `json:"version"`
	Description string `json:"description,omitempty"`

	HorizonHours float64 `json:"horizon_hours"`
	// MarketEvents counts the merged fleet events delivered to the
	// manager; ScriptEvents the scripted+chaos events compiled in;
	// SkippedEvents the ones dropped for want of a live victim.
	MarketEvents  int `json:"market_events"`
	ScriptEvents  int `json:"script_events"`
	SkippedEvents int `json:"skipped_events"`
	TimelineLen   int `json:"timeline_len"`

	Stats manager.Stats `json:"stats"`

	// DowntimeFrac is total downtime over the horizon.
	DowntimeFrac float64 `json:"downtime_frac"`

	// Recovery summarizes preemption→decision latencies: how long the
	// manager took to re-decide after each preemption it applied.
	Recovery RecoveryStats `json:"recovery"`

	// Violations lists failed robustness invariants (lost progress,
	// double billing, a clock running backwards) plus enforce-mode SLO
	// breaches. Empty means the run is internally consistent.
	Violations []string `json:"violations"`

	// SLOs is the per-rule outcome of the scenario's declarative SLO
	// monitors. Absent — and the report bytes unchanged — when the
	// scenario declares none.
	SLOs []obs.SLOResult `json:"slo,omitempty"`

	// Obs is the deterministic (SimOnly) metrics-registry snapshot of
	// an observed run: simulated-time histograms, counters and gauges,
	// with the wall-clock self-profiling section excluded so replays
	// stay byte-identical. Absent — and the report bytes unchanged —
	// when the run was not observed.
	Obs *obs.Snap `json:"obs,omitempty"`
}

// RecoveryStats aggregates preemption recovery latencies.
type RecoveryStats struct {
	// Acknowledged counts preemption instants followed by a manager
	// decision point; Unacknowledged the rest (preemptions of
	// voluntarily released VMs never reach the manager and land here).
	Acknowledged   int     `json:"acknowledged"`
	Unacknowledged int     `json:"unacknowledged"`
	MeanSeconds    float64 `json:"mean_seconds"`
	MaxSeconds     float64 `json:"max_seconds"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Summary renders the human-readable run summary.
func (r *Report) Summary() string {
	var b strings.Builder
	s := r.Stats
	fmt.Fprintf(&b, "scenario %s: %.1fh horizon, %d market events, %d scripted (%d skipped)\n",
		r.Scenario, r.HorizonHours, r.MarketEvents, r.ScriptEvents, r.SkippedEvents)
	fmt.Fprintf(&b, "progress:  %d mini-batches (%.2fM examples), %d lost to rollbacks, %d checkpoints\n",
		s.MiniBatches, s.Examples/1e6, s.LostMiniBatches, s.Checkpoints)
	fmt.Fprintf(&b, "decisions: %d morphs, %d replacements, %d holds, %d stragglers excluded, %d VMs released\n",
		s.Morphs, s.Replacements, s.Holds, s.StragglersExcluded, s.VMsReleased)
	fmt.Fprintf(&b, "fleet:     %d allocations, %d preemptions\n", s.Allocations, s.Preemptions)
	fmt.Fprintf(&b, "downtime:  %v total (%v reconfiguration) — %.1f%% of the horizon\n",
		s.Downtime, s.MorphDowntime, 100*r.DowntimeFrac)
	if s.DollarsSpent > 0 {
		fmt.Fprintf(&b, "dollars:   $%.2f = $%.2f compute + $%.2f reconfig + $%.2f idle ($%.2f per 1k examples)\n",
			s.DollarsSpent, s.DollarsCompute, s.DollarsReconfig, s.DollarsIdle, 1000*s.DollarsPerExample())
	}
	if s.Failovers > 0 || s.UnrecoverableOutages > 0 {
		fmt.Fprintf(&b, "outages:   %d failover(s) costing %v, %d unrecoverable\n",
			s.Failovers, s.FailoverDowntime, s.UnrecoverableOutages)
	}
	if r.Recovery.Acknowledged > 0 {
		fmt.Fprintf(&b, "recovery:  %d preemptions acknowledged (mean %.0fs, max %.0fs), %d unacknowledged\n",
			r.Recovery.Acknowledged, r.Recovery.MeanSeconds, r.Recovery.MaxSeconds, r.Recovery.Unacknowledged)
	}
	for _, s := range r.SLOs {
		status := "OK"
		if !s.OK {
			status = fmt.Sprintf("BREACHED %dx (worst %g)", s.Breaches, s.Worst)
		}
		fmt.Fprintf(&b, "slo %-24s %s [%s] — %s\n", s.Name+":", s.Expr, s.Mode, status)
	}
	if len(r.Violations) == 0 {
		b.WriteString("invariants: OK\n")
	} else {
		fmt.Fprintf(&b, "invariants: %d VIOLATIONS\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  - %s\n", v)
		}
	}
	if r.Obs != nil && len(r.Obs.Histograms) > 0 {
		b.WriteString("obs:\n")
		b.WriteString(r.Obs.Summary())
	}
	return b.String()
}

func buildReport(c *Compiled, points []manager.TimelinePoint, stats manager.Stats) *Report {
	r := &Report{
		Scenario:      c.Scenario.Name,
		Version:       Version,
		Description:   c.Scenario.Description,
		HorizonHours:  simtime.Time(c.Horizon).Hours(),
		MarketEvents:  len(c.Events),
		ScriptEvents:  c.ScriptEvents,
		SkippedEvents: c.Skipped,
		TimelineLen:   len(points),
		Stats:         stats,
		Violations:    []string{},
	}
	if c.Horizon > 0 {
		r.DowntimeFrac = stats.Downtime.Seconds() / c.Horizon.Seconds()
	}
	r.Recovery = recoveryStats(c.Events, points, c.met)
	r.Violations = append(r.Violations, checkInvariants(points, stats)...)
	return r
}

// recoveryStats measures, for each preemption instant the trace
// delivered, the latency until the manager's next decision point
// (morph, replacement, hold, or declaring the fleet down). Each
// acknowledged latency is additionally observed into met (nil-safe)
// as the "manager.recovery_us" histogram.
func recoveryStats(events []spot.Event, points []manager.TimelinePoint, met *obs.Metrics) RecoveryStats {
	decision := func(e string) bool {
		return e == "morph" || e == "p" || e == "hold" || e == "down"
	}
	var rs RecoveryStats
	var sum float64
	pi := 0
	lastAt := simtime.Time(-1)
	for _, ev := range events {
		if ev.Kind != spot.Preempt || ev.At == lastAt {
			continue // one recovery per instant: a burst is one decision
		}
		lastAt = ev.At
		for pi < len(points) && (points[pi].At < ev.At || !decision(points[pi].Event)) {
			pi++
		}
		if pi >= len(points) {
			rs.Unacknowledged++
			continue
		}
		lat := points[pi].At.Sub(ev.At).Seconds()
		met.Observe("manager.recovery_us", float64(points[pi].At.Sub(ev.At)))
		rs.Acknowledged++
		sum += lat
		if lat > rs.MaxSeconds {
			rs.MaxSeconds = lat
		}
	}
	if rs.Acknowledged > 0 {
		rs.MeanSeconds = sum / float64(rs.Acknowledged)
	}
	return rs
}

// checkInvariants verifies the robustness properties every run must
// hold, whatever the scenario throws at the manager: a monotone
// clock, monotone cumulative spend whose buckets sum to the total (no
// double billing, no lost billing), and non-negative progress
// counters (no lost progress beyond what rollbacks account).
func checkInvariants(points []manager.TimelinePoint, stats manager.Stats) []string {
	var out []string
	prevAt := simtime.Time(0)
	prevDollars := 0.0
	for i, p := range points {
		if p.At < prevAt {
			out = append(out, fmt.Sprintf("clock ran backwards at point %d: %v < %v", i, p.At, prevAt))
		}
		prevAt = p.At
		if p.DollarsSpent < prevDollars-1e-9 {
			out = append(out, fmt.Sprintf("cumulative dollars shrank at point %d: %.9f < %.9f", i, p.DollarsSpent, prevDollars))
		}
		if p.DollarsSpent > prevDollars {
			prevDollars = p.DollarsSpent
		}
	}
	if stats.DollarsSpent < prevDollars-1e-9 {
		out = append(out, fmt.Sprintf("final bill %.9f below last timeline point %.9f", stats.DollarsSpent, prevDollars))
	}
	bucketSum := stats.DollarsCompute + stats.DollarsReconfig + stats.DollarsIdle
	if diff := math.Abs(bucketSum - stats.DollarsSpent); diff > 1e-6*math.Max(1, stats.DollarsSpent) {
		out = append(out, fmt.Sprintf("dollar buckets sum to %.9f but total is %.9f (double/lost billing)", bucketSum, stats.DollarsSpent))
	}
	if stats.Examples < 0 || stats.MiniBatches < 0 || stats.LostMiniBatches < 0 {
		out = append(out, fmt.Sprintf("negative progress counters: %.0f examples, %d mini-batches, %d lost",
			stats.Examples, stats.MiniBatches, stats.LostMiniBatches))
	}
	if stats.MorphDowntime+stats.FailoverDowntime > stats.Downtime || stats.Downtime < 0 {
		out = append(out, fmt.Sprintf("downtime accounting inconsistent: %v reconfiguration + %v failover > %v total",
			stats.MorphDowntime, stats.FailoverDowntime, stats.Downtime))
	}
	if stats.MiniBatches > 0 && stats.Examples <= 0 {
		out = append(out, "mini-batches completed but no examples counted (lost progress)")
	}
	if stats.UnrecoverableOutages > 0 {
		out = append(out, fmt.Sprintf("lost progress: %d domain outage(s) destroyed every checkpoint replica (%d mini-batches discarded)",
			stats.UnrecoverableOutages, stats.LostMiniBatches))
	}
	return out
}
