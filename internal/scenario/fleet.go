package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/manager"
	"repro/internal/obs"
	"repro/internal/price"
	"repro/internal/simtime"
	"repro/internal/spot"
)

// CompiledFleet is a fleet-mode scenario resolved into the arbiter's
// inputs: the shared market, one configured manager per job (each with
// its own tee meter charging a shared pool bill), the arbiter options
// and the price curve with compile-time shocks applied. Compilation is
// deterministic, so a replay of the compiled run is bit-identical.
type CompiledFleet struct {
	Scenario *Scenario
	Market   *spot.Market
	Jobs     []*fleet.Job
	Opts     fleet.Options
	Curve    *price.Curve
	// PoolMeter is the shared fleet bill; JobMeters[i] is job i's tee
	// meter (each charge lands on both). Nil without a prices block.
	PoolMeter *price.Meter
	JobMeters []*price.Meter
	Horizon   simtime.Duration
	// ScriptEvents counts the scripted events compiled in.
	ScriptEvents int

	// Series and Monitors are the continuous-telemetry state: created
	// at CompileFleet when the scenario declares a telemetry or slos
	// block, or forced on by EnableTelemetry. Both nil otherwise.
	Series   *obs.SeriesSet
	Monitors []*obs.Monitor

	// trace/met are the observability hooks Observe attaches; both nil
	// (fully disabled, bit-identical output) by default.
	trace *obs.Tracer
	met   *obs.Metrics
}

// EnableTelemetry creates the fleet's series set (sampled per job
// under a "<job>/" prefix) and attaches the scenario's SLO monitors.
// Idempotent.
func (c *CompiledFleet) EnableTelemetry() {
	if c.Series != nil {
		return
	}
	c.Series = obs.NewSeriesSet(telemetryRing(c.Scenario))
	c.Monitors = buildMonitors(c.Scenario, c.Series)
}

// Observe attaches a tracer and/or metrics registry to the compiled
// fleet before Run — the arbiter, the market and every job's manager
// record into them (one trace track per job, after the market and
// arbiter control tracks). Either may be nil; with both nil the run is
// byte-identical to an unobserved one.
func (c *CompiledFleet) Observe(tr *obs.Tracer, m *obs.Metrics) {
	c.trace = tr
	c.met = m
}

// CompileFleet resolves a fleet-mode scenario: calibrates every job,
// builds the shared market and price curve (price-shock events apply
// at compile time), and assembles the arbiter options. Gap priors are
// read from the market's analytic hazard before the arbiter touches
// it, the same discipline the single-job path uses.
func CompileFleet(sc *Scenario) (*CompiledFleet, error) {
	if sc.Fleet == nil {
		return nil, fmt.Errorf("scenario %s: not a fleet scenario", sc.Name)
	}
	hz := sc.Fleet.Horizon
	curve, err := buildCurve(sc, hz)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	// Price shocks are compile-time in fleet mode: the curve every job
	// bids and bills against already includes them.
	for _, ev := range sc.Events {
		if ev.Kind != "price-shock" {
			continue
		}
		at := simtime.Time(ev.At)
		end := simtime.Time(hz)
		if ev.Duration > 0 && at.Add(ev.Duration) < end {
			end = at.Add(ev.Duration)
		}
		curve, err = curve.Scaled(at, end, ev.Factor)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	}

	vm := hw.NC6v3
	if sc.Fleet.VMGPUs == 4 {
		vm = hw.NC24v3
	}
	mk := spot.NewMarket(sc.Fleet.VMGPUs, sc.Market.BaseCapacity, sc.Market.Seed)
	if sc.Market.MeanHold > 0 {
		mk.MeanHold = sc.Market.MeanHold
	}

	c := &CompiledFleet{Scenario: sc, Market: mk, Curve: curve, Horizon: hz, ScriptEvents: len(sc.Events)}
	if curve != nil {
		c.PoolMeter = price.NewMeter(curve)
	}
	for _, js := range sc.Jobs {
		spec, ok := specByName(js.Model)
		if !ok {
			return nil, fmt.Errorf("scenario %s: job %q: unknown model %q", sc.Name, js.Name, js.Model)
		}
		cluster := hw.SpotCluster(vm, js.ClusterGPUs)
		job, err := core.NewJob(spec, cluster, js.Batch, js.Seed)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: job %q: %w", sc.Name, js.Name, err)
		}
		opts := manager.DefaultOptions()
		opts.Objective = objectiveFor(js.Objective, js.DeadlineAt, js.TargetExamples, hz)
		if js.GapPrior == "market" {
			vms := (js.TargetGPUs + mk.GPUsPerVM - 1) / mk.GPUsPerVM
			opts.EventGapPrior = mk.ExpectedNextEvent(0, vms)
		}
		var sub *price.Meter
		if curve != nil {
			sub = price.NewTeeMeter(curve, c.PoolMeter)
			opts.Prices = curve
			opts.Meter = sub
		}
		mg := manager.NewWithPlanner(job.Inputs(), job.Testbed(), job.Planner(), opts, js.ManagerSeed)
		c.Jobs = append(c.Jobs, &fleet.Job{
			Name:       js.Name,
			Mgr:        mg,
			TargetGPUs: js.TargetGPUs,
			MinGPUs:    js.MinGPUs,
			Priority:   js.Priority,
			Objective:  opts.Objective,
		})
		c.JobMeters = append(c.JobMeters, sub)
	}

	var pre []fleet.ScriptedPreempt
	var outs []fleet.ScriptedOutage
	for _, ev := range sc.Events {
		switch ev.Kind {
		case "preempt":
			pre = append(pre, fleet.ScriptedPreempt{At: simtime.Time(ev.At), Count: ev.Count})
		case "zone-outage":
			outs = append(outs, fleet.ScriptedOutage{At: simtime.Time(ev.At), Zone: ev.Domain})
		}
	}
	vseed := sc.Fleet.VictimSeed
	if vseed == 0 {
		vseed = sc.Market.Seed + 104729
	}
	c.Opts = fleet.Options{
		Horizon:    hz,
		Probe:      sc.Market.Probe,
		Prices:     curve,
		Preempts:   pre,
		Zones:      sc.Fleet.Zones,
		Outages:    outs,
		VictimSeed: vseed,
	}
	if telemetryDeclared(sc) {
		c.EnableTelemetry()
	}
	return c, nil
}

// FleetJobRun is one job's outcome within a fleet run.
type FleetJobRun struct {
	Name   string
	Points []manager.TimelinePoint
	Stats  manager.Stats
	Events []spot.Event
	// Report is the job's own single-job-shaped report, built from its
	// delivered event stream and timeline exactly as a direct run's
	// report would be.
	Report *Report
}

// FleetResult is one fleet scenario execution.
type FleetResult struct {
	Compiled *CompiledFleet
	Jobs     []FleetJobRun
	Audit    *fleet.Audit
	Report   *FleetReport
}

// RunFleet compiles and executes a fleet-mode scenario.
func RunFleet(sc *Scenario) (*FleetResult, error) {
	c, err := CompileFleet(sc)
	if err != nil {
		return nil, err
	}
	return c.Run()
}

// Run executes an already-compiled fleet scenario. Repeated calls on
// freshly-compiled inputs replay bit-identically.
func (c *CompiledFleet) Run() (*FleetResult, error) {
	sc := c.Scenario
	opts := c.Opts
	opts.Trace, opts.Metrics = c.trace, c.met
	if c.Series != nil {
		opts.Series = c.Series
		opts.SampleEvery = telemetrySampleEvery(sc)
		attachBreachHooks(c.Monitors, c.trace, c.met)
	}
	res, err := fleet.Run(c.Market, c.Jobs, opts)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	out := &FleetResult{Compiled: c, Audit: res.Audit}
	for i, jr := range res.Jobs {
		synth := &Compiled{
			Scenario: &Scenario{Name: sc.Name + "/" + jr.Name, Description: sc.Description},
			Horizon:  c.Horizon,
			Events:   jr.Events,
			met:      c.met,
		}
		synth.ScriptEvents = c.ScriptEvents
		out.Jobs = append(out.Jobs, FleetJobRun{
			Name:   jr.Name,
			Points: jr.Points,
			Stats:  jr.Stats,
			Events: jr.Events,
			Report: buildReport(synth, jr.Points, jr.Stats),
		})
		if c.met != nil {
			c.met.Gauge("planner."+jr.Name+".cost_hit_rate", c.Jobs[i].Mgr.Plan.Stats().HitRate())
			if i < len(c.JobMeters) && c.JobMeters[i] != nil {
				c.met.Gauge("dollars."+jr.Name+".total", c.JobMeters[i].Total())
				c.met.Gauge("dollars."+jr.Name+".compute", c.JobMeters[i].InBucket(price.Compute))
				c.met.Gauge("dollars."+jr.Name+".reconfig", c.JobMeters[i].InBucket(price.Reconfig))
				c.met.Gauge("dollars."+jr.Name+".idle", c.JobMeters[i].InBucket(price.Idle))
			}
		}
	}
	if c.met != nil && c.PoolMeter != nil {
		c.met.Gauge("dollars.pool", c.PoolMeter.Total())
	}
	out.Report = buildFleetReport(c, out)
	out.Report.SLOs, out.Report.Violations = sloResults(c.Monitors, out.Report.Violations)
	if c.met != nil {
		snap := c.met.Snapshot(obs.SimOnly)
		out.Report.Obs = &snap
	}
	return out, nil
}

// FleetReport is the structured outcome of a fleet run: one
// single-job-shaped report per tenant, the arbiter's lease ledger, the
// shared pool bill and the aggregated invariant violations. It
// marshals to stable JSON, so a bit-identical replay emits
// byte-identical report files.
type FleetReport struct {
	Scenario    string `json:"scenario"`
	Version     int    `json:"version"`
	Description string `json:"description,omitempty"`

	HorizonHours float64 `json:"horizon_hours"`

	Jobs    []*Report     `json:"jobs"`
	Arbiter ArbiterReport `json:"arbiter"`

	// PoolDollars is the shared fleet bill (zero without prices);
	// JobDollars the per-job tee-meter bills, which must sum to it.
	PoolDollars float64   `json:"pool_dollars"`
	JobDollars  []float64 `json:"job_dollars"`

	// Violations aggregates the arbiter audit's structural violations,
	// every job's report violations, the shared-bill sum check and
	// enforce-mode SLO breaches.
	Violations []string `json:"violations"`

	// SLOs is the per-rule outcome of the scenario's declarative SLO
	// monitors (each rule scoped to one job's series). Absent — and
	// the report bytes unchanged — when the scenario declares none.
	SLOs []obs.SLOResult `json:"slo,omitempty"`

	// Obs is the deterministic (SimOnly) metrics-registry snapshot of
	// an observed run — wall-clock self-profiling excluded, so replays
	// stay byte-identical. Absent (and the report bytes unchanged)
	// when the run was not observed.
	Obs *obs.Snap `json:"obs,omitempty"`
}

// ArbiterReport summarizes the arbiter's lease ledger.
type ArbiterReport struct {
	PoolEvents     int `json:"pool_events"`
	Leases         int `json:"leases"`
	Revocations    int `json:"revocations"`
	Releases       int `json:"releases"`
	ReLeases       int `json:"re_leases"`
	MarketPreempts int `json:"market_preempts"`
	ScriptedKills  int `json:"scripted_kills"`
	// ZoneOutages counts scripted zone outages; omitted (keeping older
	// fleet report bytes unchanged) when zero.
	ZoneOutages int `json:"zone_outages,omitempty"`
	Cascades    int `json:"cascades"`
}

func buildFleetReport(c *CompiledFleet, res *FleetResult) *FleetReport {
	sc := c.Scenario
	a := res.Audit
	r := &FleetReport{
		Scenario:     sc.Name,
		Version:      Version,
		Description:  sc.Description,
		HorizonHours: simtime.Time(c.Horizon).Hours(),
		Arbiter: ArbiterReport{
			PoolEvents:     a.PoolEvents,
			Leases:         a.Leases,
			Revocations:    a.Revocations,
			Releases:       a.Releases,
			ReLeases:       a.ReLeases,
			MarketPreempts: a.MarketPreempts,
			ScriptedKills:  a.ScriptedKills,
			ZoneOutages:    a.ZoneOutages,
			Cascades:       len(a.Cascades),
		},
		JobDollars: []float64{},
		Violations: []string{},
	}
	for _, v := range a.Violations {
		r.Violations = append(r.Violations, "arbiter: "+v)
	}
	for i, jr := range res.Jobs {
		r.Jobs = append(r.Jobs, jr.Report)
		for _, v := range jr.Report.Violations {
			r.Violations = append(r.Violations, fmt.Sprintf("job %s: %s", jr.Name, v))
		}
		var spent float64
		if i < len(c.JobMeters) && c.JobMeters[i] != nil {
			spent = c.JobMeters[i].Total()
		}
		r.JobDollars = append(r.JobDollars, spent)
	}
	if c.PoolMeter != nil {
		r.PoolDollars = c.PoolMeter.Total()
		var sum float64
		for _, d := range r.JobDollars {
			sum += d
		}
		if diff := math.Abs(sum - r.PoolDollars); diff > 1e-6*math.Max(1, r.PoolDollars) {
			r.Violations = append(r.Violations,
				fmt.Sprintf("job bills sum to %.9f but the pool bill is %.9f (shared-bill mismatch)", sum, r.PoolDollars))
		}
	}
	return r
}

// JSON renders the fleet report as indented JSON.
func (r *FleetReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Summary renders the human-readable fleet run summary.
func (r *FleetReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet %s: %.1fh horizon, %d jobs\n", r.Scenario, r.HorizonHours, len(r.Jobs))
	a := r.Arbiter
	fmt.Fprintf(&b, "arbiter:   %d pool events, %d leases (%d re-leases), %d revocations in %d cascades\n",
		a.PoolEvents, a.Leases, a.ReLeases, a.Revocations, a.Cascades)
	fmt.Fprintf(&b, "           %d market preemptions, %d scripted kills, %d voluntary releases\n",
		a.MarketPreempts, a.ScriptedKills, a.Releases)
	for i, jr := range r.Jobs {
		s := jr.Stats
		fmt.Fprintf(&b, "job %-12s %d mini-batches (%.2fM examples), %d morphs, %d preemptions",
			strings.TrimPrefix(jr.Scenario, r.Scenario+"/")+":", s.MiniBatches, s.Examples/1e6, s.Morphs, s.Preemptions)
		if i < len(r.JobDollars) && r.JobDollars[i] > 0 {
			fmt.Fprintf(&b, ", $%.2f", r.JobDollars[i])
		}
		b.WriteString("\n")
	}
	if r.PoolDollars > 0 {
		fmt.Fprintf(&b, "pool bill: $%.2f\n", r.PoolDollars)
	}
	for _, s := range r.SLOs {
		status := "OK"
		if !s.OK {
			status = fmt.Sprintf("BREACHED %dx (worst %g)", s.Breaches, s.Worst)
		}
		fmt.Fprintf(&b, "slo %-24s %s [%s, job %s] — %s\n", s.Name+":", s.Expr, s.Mode, s.Job, status)
	}
	if len(r.Violations) == 0 {
		b.WriteString("invariants: OK\n")
	} else {
		fmt.Fprintf(&b, "invariants: %d VIOLATIONS\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  - %s\n", v)
		}
	}
	if r.Obs != nil && len(r.Obs.Histograms) > 0 {
		b.WriteString("obs:\n")
		b.WriteString(r.Obs.Summary())
	}
	return b.String()
}

// RunViaFleet executes a single-job scenario through the fleet
// arbiter instead of the direct market path. With one tenant and no
// scripted events the arbiter collapses to the pretraced direct path,
// so the result — timeline, stats and report bytes — is bit-identical
// to Run's; the scenario parity tests pin exactly that. Scenarios
// with scripted or chaos events are rejected: their victim-resolution
// semantics belong to the single-job compiler.
func RunViaFleet(sc *Scenario) (*Result, error) {
	if sc.Fleet != nil {
		return nil, fmt.Errorf("scenario %s: already a fleet scenario; use RunFleet", sc.Name)
	}
	if len(sc.Events) > 0 || sc.Chaos != nil {
		return nil, fmt.Errorf("scenario %s: scripted/chaos events cannot run via the fleet collapse", sc.Name)
	}
	c, mk, curve, err := compileSingle(sc)
	if err != nil {
		return nil, err
	}
	if err := c.Opts.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	mg := manager.NewWithPlanner(c.Job.Inputs(), c.TB, c.Job.Planner(), c.Opts, sc.Run.ManagerSeed)
	res, err := fleet.Run(mk, []*fleet.Job{{
		Name:       sc.Name,
		Mgr:        mg,
		TargetGPUs: sc.Run.TargetGPUs,
		Objective:  c.Opts.Objective,
	}}, fleet.Options{Horizon: sc.Run.Horizon, Probe: sc.Market.Probe, Prices: curve})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	jr := res.Jobs[0]
	c.Events = jr.Events
	return &Result{
		Compiled: c,
		Points:   jr.Points,
		Stats:    jr.Stats,
		Report:   buildReport(c, jr.Points, jr.Stats),
	}, nil
}
