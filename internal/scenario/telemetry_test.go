package scenario

import (
	"bytes"
	"strings"
	"testing"

	"repro/scenarios"
)

// TestTelemetryReplayBitIdentical extends the core determinism
// property to the telemetry layer: a scenario with sampling and SLO
// monitors enabled replays to bit-identical report bytes AND
// bit-identical series export bytes. Monitors observe online, so a
// nondeterministic sample order would show up here.
func TestTelemetryReplayBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scenario telemetry replay skipped in -short")
	}
	run := func() (rep, csv []byte) {
		t.Helper()
		data, err := scenarios.FS.ReadFile("region-failover.yaml")
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(mustParse(t, string(data)))
		if err != nil {
			t.Fatal(err)
		}
		if c.Series == nil {
			t.Fatal("region-failover declares telemetry but compiled without a series set")
		}
		res, err := c.Run("")
		if err != nil {
			t.Fatal(err)
		}
		rep, err = res.Report.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Report.SLOs) != 4 {
			t.Fatalf("expected 4 SLO results, got %d", len(res.Report.SLOs))
		}
		for _, r := range res.Report.SLOs {
			if r.Samples == 0 {
				t.Errorf("slo %s observed no samples", r.Name)
			}
		}
		return rep, c.Series.CSV()
	}
	rep1, csv1 := run()
	rep2, csv2 := run()
	if !bytes.Equal(rep1, rep2) {
		t.Error("telemetry-enabled report bytes differ across replays")
	}
	if !bytes.Equal(csv1, csv2) {
		t.Error("series CSV bytes differ across replays")
	}
	if len(csv1) == 0 {
		t.Error("empty series export")
	}
}

// TestSLOBreachEnforced pins the committed breach fixture: the
// enforce-mode rule must breach, land in the report's slo section,
// and surface as a violation (the CLI's nonzero-exit path).
func TestSLOBreachEnforced(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scenario breach replay skipped in -short")
	}
	data, err := scenarios.FS.ReadFile("slo-breach.yaml")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mustParse(t, string(data)), "")
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, r := range res.Report.SLOs {
		if r.Name == "gpu-floor" {
			found = true
			if r.OK || r.Breaches == 0 {
				t.Errorf("gpu-floor should breach, got %+v", r)
			}
			if r.Mode != "enforce" {
				t.Errorf("gpu-floor mode = %q, want enforce", r.Mode)
			}
		}
	}
	if !found {
		t.Fatal("gpu-floor missing from report slo section")
	}
	var violated bool
	for _, v := range res.Report.Violations {
		if strings.Contains(v, "gpu-floor") {
			violated = true
		}
	}
	if !violated {
		t.Errorf("enforce breach not in violations: %v", res.Report.Violations)
	}
}

// TestTelemetryValidation walks the strict-decode rejections of the
// telemetry, slos and region blocks.
func TestTelemetryValidation(t *testing.T) {
	cases := []struct {
		name, add, want string
	}{
		{"bad-expr", "slos:\n  - expr: \"gpus frobnicate 3\"\n", "slos[0].expr"},
		{"unknown-series", "slos:\n  - expr: \"entropy-p99 < 3\"\n", "unknown series"},
		{"missing-expr", "slos:\n  - name: x\n", "expr: required"},
		{"job-in-single", "slos:\n  - expr: \"gpus >= 0\"\n    job: a\n", "only valid in fleet mode"},
		{"dup-name", "slos:\n  - expr: \"gpus >= 0\"\n  - name: gpus\n    expr: \"gpus-min >= 0\"\n", "duplicate rule name"},
		{"bad-mode", "slos:\n  - expr: \"gpus >= 0\"\n    mode: panic\n", "mode"},
		{"sample-too-fast", "telemetry:\n  sample-every: 10ms\n", "sample-every"},
		{"negative-ring", "telemetry:\n  ring: -1\n", "ring"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(miniScenario + tc.add))
			if err == nil {
				t.Fatalf("%s: expected parse error", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
			}
		})
	}

	// dollars series require a prices block: strip it from the mini
	// scenario and the rule must be rejected.
	noPrices := strings.Split(miniScenario, "prices:")[0]
	if _, err := Parse([]byte(noPrices + "slos:\n  - expr: \"dollars < 100\"\n")); err == nil ||
		!strings.Contains(err.Error(), "needs a prices block") {
		t.Errorf("dollars without prices: got %v", err)
	}

	// Region validation: outages and spreads need zones-per-region.
	base := strings.Replace(miniScenario,
		"  cluster-gpus: 48\n",
		"  cluster-gpus: 48\n  topology:\n    zones: 4\n    racks-per-zone: 2\n    nodes-per-rack: 8\n", 1)
	if base == miniScenario {
		t.Fatal("topology splice failed")
	}
	// Events must be spliced into the existing events list, not
	// appended after the chaos block.
	withEvent := func(doc, item string) string {
		out := strings.Replace(doc, "chaos:", item+"chaos:", 1)
		if out == doc {
			t.Fatal("event splice failed")
		}
		return out
	}
	regionCases := []struct {
		name, doc, want string
	}{
		{"outage-needs-regions",
			withEvent(base, "  - at: 5h\n    kind: region-outage\n    domain: 0\n"),
			"zones-per-region"},
		{"zpr-too-big",
			strings.Replace(base, "nodes-per-rack: 8\n", "nodes-per-rack: 8\n    zones-per-region: 9\n", 1),
			"outside [0, zones]"},
		{"spread-needs-regions",
			base + "checkpoint:\n  replicas: 2\n  spread: region\n",
			"spread"},
	}
	for _, tc := range regionCases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("expected parse error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// And the happy path: two regions, a region outage and a full slos
	// block parse clean.
	good := withEvent(strings.Replace(base, "nodes-per-rack: 8\n", "nodes-per-rack: 8\n    zones-per-region: 2\n", 1),
		"  - at: 5h\n    kind: region-outage\n    domain: 1\n") +
		"checkpoint:\n  replicas: 2\n  spread: region\n" +
		"telemetry:\n  sample-every: 30s\n  ring: 512\n" +
		"slos:\n  - expr: \"recovery-p99 < 600s\"\n    window: 2h\n  - expr: \"gpus-mean >= 10\"\n    for: 1h\n    mode: enforce\n"
	sc := mustParse(t, good)
	if sc.Job.Topology.Regions() != 2 {
		t.Errorf("Regions() = %d, want 2", sc.Job.Topology.Regions())
	}
	if len(sc.SLOs) != 2 || sc.SLOs[0].EffectiveName() != "recovery-p99" {
		t.Errorf("slos parsed wrong: %+v", sc.SLOs)
	}
	if _, err := Compile(sc); err != nil {
		t.Fatal(err)
	}
}
