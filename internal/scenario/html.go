package scenario

import (
	"fmt"
	"html"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// HTML renders the run as a self-contained report page: the summary,
// the SLO outcomes and one inline SVG sparkline per sampled series.
// No external assets, deterministic bytes — a bit-identical replay
// produces a byte-identical page.
func (r *Result) HTML() []byte {
	return htmlReport(r.Report.Scenario, r.Report.Summary(), r.Report.SLOs, r.Compiled.Series)
}

// HTML renders the fleet run as a self-contained report page, with
// every job's series (under its "<job>/" prefix) sparklined.
func (r *FleetResult) HTML() []byte {
	return htmlReport(r.Report.Scenario, r.Report.Summary(), r.Report.SLOs, r.Compiled.Series)
}

const (
	sparkW = 640
	sparkH = 80
)

func htmlReport(name, summary string, slos []obs.SLOResult, ss *obs.SeriesSet) []byte {
	var b strings.Builder
	b.WriteString("<!doctype html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>varuna-sim: %s</title>\n", html.EscapeString(name))
	b.WriteString(`<style>
body { font-family: sans-serif; margin: 2em; max-width: 60em; }
pre { background: #f6f6f6; padding: 1em; overflow-x: auto; }
table { border-collapse: collapse; }
th, td { border: 1px solid #ccc; padding: 0.3em 0.6em; text-align: left; }
.ok { color: #0a0; } .breach { color: #c00; font-weight: bold; }
svg { background: #fafafa; border: 1px solid #ddd; }
.meta { color: #666; font-size: 0.85em; }
</style>
</head><body>
`)
	fmt.Fprintf(&b, "<h1>scenario %s</h1>\n", html.EscapeString(name))
	b.WriteString("<h2>Summary</h2>\n<pre>")
	b.WriteString(html.EscapeString(summary))
	b.WriteString("</pre>\n")

	if len(slos) > 0 {
		b.WriteString("<h2>SLOs</h2>\n<table>\n<tr><th>rule</th><th>expression</th><th>mode</th><th>samples</th><th>breaches</th><th>worst</th><th>status</th></tr>\n")
		for _, s := range slos {
			status, class := "OK", "ok"
			if !s.OK {
				status, class = "BREACHED", "breach"
			}
			rule := s.Name
			if s.Job != "" {
				rule = s.Job + ": " + rule
			}
			fmt.Fprintf(&b, "<tr><td>%s</td><td><code>%s</code></td><td>%s</td><td>%d</td><td>%d</td><td>%s</td><td class=\"%s\">%s</td></tr>\n",
				html.EscapeString(rule), html.EscapeString(s.Expr), s.Mode,
				s.Samples, s.Breaches, htmlFloat(s.Worst), class, status)
		}
		b.WriteString("</table>\n")
	}

	if ss.Enabled() && len(ss.Names()) > 0 {
		b.WriteString("<h2>Series</h2>\n")
		for _, sname := range ss.Names() {
			pts := ss.Points(sname)
			sum, _ := ss.Summary(sname)
			fmt.Fprintf(&b, "<h3>%s</h3>\n", html.EscapeString(sname))
			fmt.Fprintf(&b, "<p class=\"meta\">%d points (%d evicted) — min %s, mean %s, p50 %s, p99 %s, max %s, last %s</p>\n",
				sum.Count, sum.Dropped, htmlFloat(sum.Min), htmlFloat(sum.Mean),
				htmlFloat(sum.P50), htmlFloat(sum.P99), htmlFloat(sum.Max), htmlFloat(sum.Last))
			b.WriteString(sparkline(pts))
		}
	}
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}

// sparkline renders the series as an inline SVG polyline, scaled to
// the series' own time and value range.
func sparkline(pts []obs.Point) string {
	if len(pts) == 0 {
		return ""
	}
	t0, tN := pts[0].At, pts[len(pts)-1].At
	vMin, vMax := pts[0].V, pts[0].V
	for _, p := range pts {
		if p.V < vMin {
			vMin = p.V
		}
		if p.V > vMax {
			vMax = p.V
		}
	}
	var coords []string
	for _, p := range pts {
		x := 0.0
		if tN > t0 {
			x = float64(p.At.Sub(t0)) / float64(tN.Sub(t0)) * sparkW
		}
		y := sparkH / 2.0
		if vMax > vMin {
			y = sparkH - (p.V-vMin)/(vMax-vMin)*sparkH
		}
		coords = append(coords, fmt.Sprintf("%.1f,%.1f", x, y))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">\n", sparkW, sparkH, sparkW, sparkH)
	fmt.Fprintf(&b, "<polyline fill=\"none\" stroke=\"#36c\" stroke-width=\"1.5\" points=\"%s\"/>\n", strings.Join(coords, " "))
	fmt.Fprintf(&b, "</svg>\n<p class=\"meta\">%s → %s</p>\n",
		htmlHours(t0), htmlHours(tN))
	return b.String()
}

func htmlFloat(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

func htmlHours(t simtime.Time) string {
	return strconv.FormatFloat(t.Hours(), 'f', 2, 64) + "h"
}
