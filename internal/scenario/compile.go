package scenario

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/autoconfig"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/manager"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/price"
	"repro/internal/simtime"
	"repro/internal/spot"
	"repro/internal/testbed"
)

// Compiled is a scenario resolved into the exact inputs the manager
// consumes: a calibrated job, the testbed to measure on, the merged
// spot-event stream (market churn plus scripted/chaos preemptions),
// the manager's options and its Degrade/NetDegrade/ObjChange
// schedules. Compilation is deterministic: the same scenario always
// compiles to the same inputs, so a replay of the compiled run is
// bit-identical.
type Compiled struct {
	Scenario *Scenario
	Job      *core.Job
	TB       *testbed.Testbed
	Events   []spot.Event
	Opts     manager.Options
	Degrade  []manager.Degradation
	NetSched []manager.NetDegradation
	ObjSched []manager.ObjectiveChange
	Outages  []manager.DomainOutage
	Horizon  simtime.Duration
	// Skipped counts scripted/chaos events dropped because no live VM
	// was available to victimize at their instant.
	Skipped int
	// ScriptEvents counts the scripted+chaos events applied (after
	// chaos expansion, before victim resolution).
	ScriptEvents int

	// Series and Monitors are the continuous-telemetry state: created
	// at Compile when the scenario declares a telemetry or slos block,
	// or forced on by EnableTelemetry (the exporter commands). Both nil
	// — the zero-alloc disabled path, byte-identical output — otherwise.
	Series   *obs.SeriesSet
	Monitors []*obs.Monitor

	// trace/met are the observability hooks Observe attaches; both nil
	// (fully disabled, bit-identical output) by default.
	trace *obs.Tracer
	met   *obs.Metrics
}

// EnableTelemetry creates the series set and attaches the scenario's
// SLO monitors. Compile calls it when the scenario declares telemetry;
// the exporter commands call it to force sampling on scenarios that do
// not. Idempotent.
func (c *Compiled) EnableTelemetry() {
	if c.Series != nil {
		return
	}
	c.Series = obs.NewSeriesSet(telemetryRing(c.Scenario))
	c.Monitors = buildMonitors(c.Scenario, c.Series)
}

// Observe attaches a tracer and/or metrics registry to the compiled
// scenario before Run: spans land on the tracer, registry metrics
// (including the "wall."-prefixed self-profiling) on the registry, and
// the report gains the deterministic (SimOnly) snapshot. Either may be
// nil. With both nil the run is byte-identical to an unobserved one.
func (c *Compiled) Observe(tr *obs.Tracer, m *obs.Metrics) {
	c.trace = tr
	c.met = m
}

// specByName resolves a model-zoo name case-insensitively, accepting
// the "gpt2-" shorthand varuna-sim uses.
func specByName(name string) (*model.Spec, bool) {
	for _, s := range model.Zoo() {
		if strings.EqualFold(s.Name, name) ||
			strings.EqualFold(strings.ReplaceAll(s.Name, "GPT2-", "gpt2-"), name) {
			return s, true
		}
	}
	return nil, false
}

func objectiveFor(name string, deadlineAt simtime.Duration, targetExamples float64, horizon simtime.Duration) autoconfig.Objective {
	switch name {
	case "min-dollar-per-example":
		return autoconfig.Objective{Kind: autoconfig.ObjMinDollarPerExample}
	case "deadline":
		dl := deadlineAt
		if dl <= 0 {
			dl = horizon
		}
		return autoconfig.Objective{
			Kind:           autoconfig.ObjDeadline,
			DeadlineAt:     simtime.Time(dl),
			TargetExamples: targetExamples,
		}
	default:
		return autoconfig.Objective{Kind: autoconfig.ObjMaxThroughput}
	}
}

// compileSingle resolves everything that precedes trace generation —
// job calibration, testbed choice, price curve, manager options and
// the market in its pristine (un-traced) state. Compile continues
// from here by generating the base trace; the fleet parity path hands
// the pristine market to the arbiter instead, whose single-job
// collapse generates the identical trace itself.
func compileSingle(sc *Scenario) (*Compiled, *spot.Market, *price.Curve, error) {
	spec, ok := specByName(sc.Job.Model)
	if !ok {
		return nil, nil, nil, fmt.Errorf("scenario %s: unknown model %q", sc.Name, sc.Job.Model)
	}
	vm := hw.NC6v3
	if sc.Job.VMGPUs == 4 {
		vm = hw.NC24v3
	}
	cluster := hw.SpotCluster(vm, sc.Job.ClusterGPUs)
	if t := sc.Job.Topology; t.Defined() {
		cluster.Topo = hw.SpotTopology(t.Zones, t.RacksPerZone, t.NodesPerRack)
		cluster.Topo.ZonesPerRegion = t.ZonesPerRegion
	}
	job, err := core.NewJob(spec, cluster, sc.Job.Batch, sc.Job.Seed)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}

	c := &Compiled{Scenario: sc, Job: job, Horizon: sc.Run.Horizon}
	switch sc.Run.Testbed {
	case "fresh":
		c.TB = testbed.New(cluster, sc.Run.TestbedSeed)
	default:
		c.TB = job.Testbed()
	}

	// Price curve, with scripted/chaos shocks layered on. Shock
	// windows that overlap compound multiplicatively.
	curve, err := buildCurve(sc, sc.Run.Horizon)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}

	// Manager options.
	opts := manager.DefaultOptions()
	switch sc.Run.Policy {
	case "modeled":
		opts.Policy = manager.PolicyModeled
	case "constant":
		opts.Policy = manager.PolicyConstant
	}
	opts.Objective = objectiveFor(sc.Run.Objective, sc.Run.DeadlineAt, sc.Run.TargetExamples, sc.Run.Horizon)
	opts.MeasureStragglers = sc.Run.MeasureStragglers
	if sc.Run.HeartbeatEvery >= 0 {
		opts.HeartbeatEvery = sc.Run.HeartbeatEvery
	}
	opts.Prices = curve
	if sc.Checkpoint.Replicas > 1 {
		spread := hw.DomainZone
		switch sc.Checkpoint.Spread {
		case "rack":
			spread = hw.DomainRack
		case "region":
			spread = hw.DomainRegion
		}
		opts.Replication = checkpoint.Policy{Replicas: sc.Checkpoint.Replicas, Spread: spread}
	}

	// Market: the analytic gap prior must be read before the trace is
	// generated (trace generation advances the market's state), the
	// same order core.RunOnSpotMarketOpts uses.
	mk := spot.NewMarket(sc.Job.VMGPUs, sc.Market.BaseCapacity, sc.Market.Seed)
	if sc.Market.MeanHold > 0 {
		mk.MeanHold = sc.Market.MeanHold
	}
	if sc.Run.GapPrior == "market" {
		vms := (sc.Run.TargetGPUs + mk.GPUsPerVM - 1) / mk.GPUsPerVM
		opts.EventGapPrior = mk.ExpectedNextEvent(0, vms)
	}
	c.Opts = opts
	return c, mk, curve, nil
}

// Compile resolves a scenario: calibrates the job, generates the
// market's base event trace, expands the chaos spec, resolves victims
// against the live fleet, and assembles manager options. The job
// calibration dominates the cost; everything else is cheap.
func Compile(sc *Scenario) (*Compiled, error) {
	c, mk, curve, err := compileSingle(sc)
	if err != nil {
		return nil, err
	}
	base := spot.EventTrace(mk, sc.Run.TargetGPUs, sc.Run.Horizon, sc.Market.Probe)

	// Script: explicit events plus the expanded chaos spec, merged in
	// time order (scripted events win ties, in file order).
	script := append([]Event(nil), sc.Events...)
	if sc.Chaos != nil {
		script = append(script, sc.Chaos.Expand(sc.Run.Horizon)...)
	}
	sort.SliceStable(script, func(i, j int) bool { return script[i].At < script[j].At })
	c.ScriptEvents = len(script)

	if err := c.merge(base, script, curve); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	if telemetryDeclared(sc) {
		c.EnableTelemetry()
	}
	return c, nil
}

func buildCurve(sc *Scenario, runHorizon simtime.Duration) (*price.Curve, error) {
	var curve *price.Curve
	var err error
	switch sc.Prices.Kind {
	case "none":
		return nil, nil
	case "constant":
		curve = price.Constant(sc.Prices.PerGPUHour)
	case "mean-reverting":
		hz := sc.Prices.Horizon
		if hz <= 0 {
			hz = runHorizon
		}
		curve, err = price.MeanReverting(price.MROptions{
			Mean:      sc.Prices.Mean,
			Vol:       sc.Prices.Vol,
			Reversion: sc.Prices.Reversion,
			Floor:     sc.Prices.Floor,
			Step:      sc.Prices.Step,
			Horizon:   hz,
		}, sc.Prices.Seed)
		if err != nil {
			return nil, err
		}
	}
	return curve, nil
}

// merge interleaves the market's base trace with the scripted events,
// tracking the live fleet so victim picks land on VMs that actually
// exist at each instant, and drops market preemptions of VMs the
// script already killed. The market's precomputed trace does not
// re-grow to replace scripted kills — a scripted mass-preemption is
// capacity the provider reclaimed on top of its own churn.
func (c *Compiled) merge(base []spot.Event, script []Event, curve *price.Curve) error {
	sc := c.Scenario
	var topo hw.Topology
	if t := sc.Job.Topology; t.Defined() {
		topo = hw.SpotTopology(t.Zones, t.RacksPerZone, t.NodesPerRack)
		topo.ZonesPerRegion = t.ZonesPerRegion
	}
	seed := sc.Run.VictimSeed
	if seed == 0 {
		if sc.Chaos != nil {
			seed = sc.Chaos.Seed + 104729
		} else {
			seed = sc.Market.Seed + 104729
		}
	}
	rng := simtime.NewRand(seed)

	live := map[int]int{} // vm id → gpus
	dead := map[int]bool{}
	liveIDs := func() []int {
		ids := make([]int, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		return ids
	}
	// Network episodes become a max-of-active-factors step function so
	// overlapping episodes compose instead of the first restore
	// cancelling a still-running one.
	type netEp struct {
		at, end simtime.Time
		factor  float64
	}
	var netEps []netEp

	bi := 0
	apply := func(upTo simtime.Time) {
		for bi < len(base) && base[bi].At <= upTo {
			ev := base[bi]
			bi++
			switch ev.Kind {
			case spot.Alloc:
				live[ev.VM] = ev.GPUs
			case spot.Preempt:
				if dead[ev.VM] {
					continue // script killed it first; not a fleet event anymore
				}
				delete(live, ev.VM)
			}
			c.Events = append(c.Events, ev)
		}
	}
	for _, ev := range script {
		at := simtime.Time(ev.At)
		apply(at)
		switch ev.Kind {
		case "preempt":
			for k := 0; k < ev.Count; k++ {
				ids := liveIDs()
				if len(ids) == 0 {
					c.Skipped++
					break
				}
				vm := ev.VM
				if vm < 0 || live[vm] == 0 {
					vm = ids[rng.Intn(len(ids))]
				}
				c.Events = append(c.Events, spot.Event{At: at, Kind: spot.Preempt, VM: vm, GPUs: live[vm]})
				delete(live, vm)
				dead[vm] = true
			}
		case "zone-outage", "rack-outage", "region-outage":
			// A correlated mass preemption of one whole failure domain:
			// every live VM mapped there dies at the instant, and the
			// manager additionally settles checkpoint survivability via
			// the paired DomainOutage record.
			level := hw.DomainZone
			switch ev.Kind {
			case "rack-outage":
				level = hw.DomainRack
			case "region-outage":
				level = hw.DomainRegion
			}
			if !topo.Defined() {
				c.Skipped++
				continue
			}
			dom := ev.Domain
			if dom < 0 {
				domSet := map[int]bool{}
				for _, id := range liveIDs() {
					domSet[topo.DomainOfVM(id, level)] = true
				}
				if len(domSet) == 0 {
					c.Skipped++
					continue
				}
				doms := make([]int, 0, len(domSet))
				for d := range domSet {
					doms = append(doms, d)
				}
				sort.Ints(doms)
				dom = doms[rng.Intn(len(doms))]
			}
			killed := 0
			for _, id := range liveIDs() {
				if topo.DomainOfVM(id, level) != dom {
					continue
				}
				c.Events = append(c.Events, spot.Event{At: at, Kind: spot.Preempt, VM: id, GPUs: live[id]})
				delete(live, id)
				dead[id] = true
				killed++
			}
			if killed == 0 {
				c.Skipped++
			}
			c.Outages = append(c.Outages, manager.DomainOutage{At: at, Level: level, Domain: dom})
		case "straggler", "degrade":
			ids := liveIDs()
			if len(ids) == 0 {
				c.Skipped++
				continue
			}
			vm := ev.VM
			if vm < 0 || live[vm] == 0 {
				vm = ids[rng.Intn(len(ids))]
			}
			c.Degrade = append(c.Degrade, manager.Degradation{VM: vm, At: at, Factor: ev.Factor})
		case "net-degrade":
			end := simtime.Time(c.Horizon)
			if ev.Duration > 0 && at.Add(ev.Duration) < end {
				end = at.Add(ev.Duration)
			}
			netEps = append(netEps, netEp{at: at, end: end, factor: ev.Factor})
		case "price-shock":
			end := simtime.Time(c.Horizon)
			if ev.Duration > 0 && at.Add(ev.Duration) < end {
				end = at.Add(ev.Duration)
			}
			shocked, err := curve.Scaled(at, end, ev.Factor)
			if err != nil {
				return err
			}
			curve, c.Opts.Prices = shocked, shocked
		case "objective":
			c.ObjSched = append(c.ObjSched, manager.ObjectiveChange{
				At:        at,
				Objective: objectiveFor(ev.Objective, ev.DeadlineAt, ev.TargetExamples, c.Horizon),
			})
		}
	}
	apply(simtime.Time(c.Horizon))

	// Flatten network episodes into factor-change entries.
	if len(netEps) > 0 {
		cuts := map[simtime.Time]bool{}
		for _, ep := range netEps {
			cuts[ep.at] = true
			cuts[ep.end] = true
		}
		times := make([]simtime.Time, 0, len(cuts))
		for t := range cuts {
			times = append(times, t)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		cur := 1.0
		for _, t := range times {
			f := 1.0
			for _, ep := range netEps {
				if ep.at <= t && t < ep.end && ep.factor > f {
					f = ep.factor
				}
			}
			if f != cur {
				c.NetSched = append(c.NetSched, manager.NetDegradation{At: t, Factor: f})
				cur = f
			}
		}
	}
	return nil
}
