package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/scenarios"
)

// goldenReport runs a committed scenario the way `varuna-sim run
// -json` does (single-job or fleet as declared) and returns the
// report bytes as they would land on disk: JSON plus the CLI's
// trailing newline.
func goldenReport(t *testing.T, file string) []byte {
	t.Helper()
	data, err := scenarios.FS.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	var rep []byte
	if sc.Fleet != nil {
		res, err := RunFleet(sc)
		if err != nil {
			t.Fatal(err)
		}
		rep, err = res.Report.JSON()
		if err != nil {
			t.Fatal(err)
		}
	} else {
		res, err := Run(sc, "")
		if err != nil {
			t.Fatal(err)
		}
		rep, err = res.Report.JSON()
		if err != nil {
			t.Fatal(err)
		}
	}
	return append(rep, '\n')
}

// TestGoldenReportsUnchanged pins the telemetry layer's off-path
// contract at the report level: every committed scenario that
// predates the telemetry/SLO blocks must still produce report bytes
// identical to the goldens captured before the layer existed. A
// diff here means sampling hooks leaked into undeclared runs.
func TestGoldenReportsUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scenario golden replays skipped in -short")
	}
	goldens, err := filepath.Glob(filepath.Join("testdata", "goldens", "*.report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(goldens) < 6 {
		t.Fatalf("expected ≥6 golden reports, found %d", len(goldens))
	}
	for _, golden := range goldens {
		name := strings.TrimSuffix(filepath.Base(golden), ".report.json")
		t.Run(name, func(t *testing.T) {
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			got := goldenReport(t, name+".yaml")
			if !bytes.Equal(got, want) {
				t.Errorf("%s report diverged from pre-telemetry golden (%d vs %d bytes)", name, len(got), len(want))
			}
		})
	}
}
