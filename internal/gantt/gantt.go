// Package gantt renders pipeline execution traces as text Gantt charts
// (the Figure 7 visualization) and schedule order strips (Figure 4).
package gantt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// taskRune maps a task kind to its chart glyph: forward '▒' (red in
// the paper), backward '█' (green), recompute '░' (orange).
func taskRune(k schedule.Kind) rune {
	switch k {
	case schedule.Forward:
		return '▒'
	case schedule.Backward:
		return '█'
	case schedule.Recompute:
		return '░'
	default:
		return '?'
	}
}

// Render draws the trace as one row per stage over width columns,
// earliest stage on top. Idle time is '·'.
func Render(trace []sim.TaskSpan, depth int, width int) string {
	if width < 10 {
		width = 10
	}
	var end simtime.Time
	for _, s := range trace {
		if s.End > end {
			end = s.End
		}
	}
	if end == 0 {
		return ""
	}
	rows := make([][]rune, depth)
	for i := range rows {
		rows[i] = []rune(strings.Repeat("·", width))
	}
	for _, s := range trace {
		lo := int(int64(s.Start) * int64(width) / int64(end))
		hi := int(int64(s.End) * int64(width) / int64(end))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		r := taskRune(s.Task.Kind)
		for c := lo; c < hi; c++ {
			rows[s.Stage][c] = r
		}
	}
	var b strings.Builder
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "S%-3d %s\n", i+1, string(rows[i]))
	}
	fmt.Fprintf(&b, "     0%s%v\n", strings.Repeat(" ", width-10), simtime.Duration(end))
	fmt.Fprintf(&b, "     ▒ forward  █ backward  ░ recompute  · idle\n")
	return b.String()
}

// OrderStrips renders the per-stage task orders the way Figure 4
// prints them (S1 at the bottom).
func OrderStrips(s *schedule.Schedule) string {
	var b strings.Builder
	for st := s.Depth - 1; st >= 0; st-- {
		fmt.Fprintf(&b, "S%d %s\n", st+1, s.Orders[st])
	}
	return b.String()
}

// CSV emits the trace as "stage,kind,micro,start_us,end_us" rows for
// external plotting, sorted by start time.
func CSV(trace []sim.TaskSpan) string {
	sorted := append([]sim.TaskSpan(nil), trace...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].Stage < sorted[j].Stage
	})
	var b strings.Builder
	b.WriteString("stage,kind,micro,start_us,end_us\n")
	for _, s := range sorted {
		fmt.Fprintf(&b, "%d,%s,%d,%d,%d\n", s.Stage, s.Task.Kind, s.Task.Micro+1, int64(s.Start), int64(s.End))
	}
	return b.String()
}

// Seg is one labeled interval of a wall-clock timeline strip.
type Seg struct {
	Start, End simtime.Time
	Glyph      rune
}

// Strip renders intervals onto one width-column row covering [0, end]
// — the single-row Gantt used for morphing-timeline ablations (uptime
// vs reconfiguration downtime vs dead fleet). Later segments overwrite
// earlier ones; uncovered columns stay '·'.
func Strip(segs []Seg, end simtime.Time, width int) string {
	if width < 10 {
		width = 10
	}
	if end <= 0 {
		return strings.Repeat("·", width)
	}
	row := []rune(strings.Repeat("·", width))
	for _, s := range segs {
		if s.End <= s.Start || s.End <= 0 {
			continue
		}
		lo := int(int64(s.Start) * int64(width) / int64(end))
		hi := int(int64(s.End) * int64(width) / int64(end))
		if lo < 0 {
			lo = 0 // segment begins before the strip: clamp, don't drop
		}
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		for c := lo; c < hi; c++ {
			row[c] = s.Glyph
		}
	}
	return string(row)
}

// Utilization summarizes per-stage busy fractions of a trace.
func Utilization(trace []sim.TaskSpan, depth int) []float64 {
	busy := make([]simtime.Duration, depth)
	var end simtime.Time
	for _, s := range trace {
		busy[s.Stage] += s.End.Sub(s.Start)
		if s.End > end {
			end = s.End
		}
	}
	out := make([]float64, depth)
	if end == 0 {
		return out
	}
	for i, b := range busy {
		out[i] = float64(b) / float64(end)
	}
	return out
}
