package gantt

import (
	"strings"
	"testing"

	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/simtime"
)

func trace(t *testing.T) ([]sim.TaskSpan, int) {
	t.Helper()
	res, err := sim.Run(sim.Config{
		Depth: 4, Micros: 5, Policy: schedule.Varuna,
		Costs: sim.UnitCosts(4, simtime.Millisecond), CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace, 4
}

func TestRenderShape(t *testing.T) {
	tr, depth := trace(t)
	out := Render(tr, depth, 60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != depth+2 {
		t.Fatalf("got %d lines, want %d rows + axis + legend", len(lines), depth+2)
	}
	if !strings.HasPrefix(lines[0], "S1") || !strings.HasPrefix(lines[3], "S4") {
		t.Fatalf("row labels wrong:\n%s", out)
	}
	// Last stage never recomputes under Varuna.
	if strings.ContainsRune(lines[3], '░') {
		t.Fatalf("S4 shows recompute:\n%s", out)
	}
	// Other stages do.
	if !strings.ContainsRune(lines[0], '░') {
		t.Fatalf("S1 shows no recompute:\n%s", out)
	}
	if Render(nil, 2, 40) != "" {
		t.Fatal("empty trace must render empty")
	}
	// Narrow widths clamp rather than panic.
	if Render(tr, depth, 1) == "" {
		t.Fatal("narrow render must still work")
	}
}

func TestOrderStrips(t *testing.T) {
	s, err := schedule.GPipe(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := OrderStrips(s)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	// Figure 4 layout: S3 on top, S1 at the bottom.
	if !strings.HasPrefix(lines[0], "S3") || !strings.HasPrefix(lines[2], "S1") {
		t.Fatalf("strip order wrong:\n%s", out)
	}
	if !strings.Contains(lines[2], "F1 F2 B2 R1 B1") {
		t.Fatalf("S1 order wrong:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tr, _ := trace(t)
	out := CSV(tr)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "stage,kind,micro,start_us,end_us" {
		t.Fatal("header wrong")
	}
	if len(lines) != len(tr)+1 {
		t.Fatalf("%d rows for %d spans", len(lines)-1, len(tr))
	}
	// Sorted by start time.
	prev := int64(-1)
	for _, line := range lines[1:] {
		var stage, micro int
		var kind string
		var start, end int64
		if _, err := fmtSscanf(line, &stage, &kind, &micro, &start, &end); err != nil {
			t.Fatalf("bad row %q: %v", line, err)
		}
		if start < prev {
			t.Fatal("rows not sorted by start")
		}
		prev = start
		if end <= start {
			t.Fatal("empty span in CSV")
		}
	}
}

// fmtSscanf parses a CSV row.
func fmtSscanf(line string, stage *int, kind *string, micro *int, start, end *int64) (int, error) {
	parts := strings.Split(line, ",")
	if len(parts) != 5 {
		return 0, errBad(line)
	}
	var err error
	*stage, err = atoi(parts[0])
	if err != nil {
		return 0, err
	}
	*kind = parts[1]
	*micro, err = atoi(parts[2])
	if err != nil {
		return 0, err
	}
	s, err := atoi(parts[3])
	if err != nil {
		return 0, err
	}
	e, err := atoi(parts[4])
	if err != nil {
		return 0, err
	}
	*start, *end = int64(s), int64(e)
	return 5, nil
}

type errBad string

func (e errBad) Error() string { return "bad row: " + string(e) }

func atoi(s string) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errBad(s)
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}

func TestUtilization(t *testing.T) {
	tr, depth := trace(t)
	u := Utilization(tr, depth)
	if len(u) != depth {
		t.Fatal("length")
	}
	for i, v := range u {
		if v <= 0 || v > 1 {
			t.Fatalf("stage %d utilization %v out of range", i, v)
		}
	}
	if z := Utilization(nil, 2); z[0] != 0 || z[1] != 0 {
		t.Fatal("empty trace utilization must be zero")
	}
}
