package gantt

import (
	"strings"
	"testing"

	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/simtime"
)

func trace(t *testing.T) ([]sim.TaskSpan, int) {
	t.Helper()
	res, err := sim.Run(sim.Config{
		Depth: 4, Micros: 5, Policy: schedule.Varuna,
		Costs: sim.UnitCosts(4, simtime.Millisecond), CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace, 4
}

func TestRenderShape(t *testing.T) {
	tr, depth := trace(t)
	out := Render(tr, depth, 60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != depth+2 {
		t.Fatalf("got %d lines, want %d rows + axis + legend", len(lines), depth+2)
	}
	if !strings.HasPrefix(lines[0], "S1") || !strings.HasPrefix(lines[3], "S4") {
		t.Fatalf("row labels wrong:\n%s", out)
	}
	// Last stage never recomputes under Varuna.
	if strings.ContainsRune(lines[3], '░') {
		t.Fatalf("S4 shows recompute:\n%s", out)
	}
	// Other stages do.
	if !strings.ContainsRune(lines[0], '░') {
		t.Fatalf("S1 shows no recompute:\n%s", out)
	}
	if Render(nil, 2, 40) != "" {
		t.Fatal("empty trace must render empty")
	}
	// Narrow widths clamp rather than panic.
	if Render(tr, depth, 1) == "" {
		t.Fatal("narrow render must still work")
	}
}

func TestOrderStrips(t *testing.T) {
	s, err := schedule.GPipe(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := OrderStrips(s)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	// Figure 4 layout: S3 on top, S1 at the bottom.
	if !strings.HasPrefix(lines[0], "S3") || !strings.HasPrefix(lines[2], "S1") {
		t.Fatalf("strip order wrong:\n%s", out)
	}
	if !strings.Contains(lines[2], "F1 F2 B2 R1 B1") {
		t.Fatalf("S1 order wrong:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tr, _ := trace(t)
	out := CSV(tr)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "stage,kind,micro,start_us,end_us" {
		t.Fatal("header wrong")
	}
	if len(lines) != len(tr)+1 {
		t.Fatalf("%d rows for %d spans", len(lines)-1, len(tr))
	}
	// Sorted by start time.
	prev := int64(-1)
	for _, line := range lines[1:] {
		var stage, micro int
		var kind string
		var start, end int64
		if _, err := fmtSscanf(line, &stage, &kind, &micro, &start, &end); err != nil {
			t.Fatalf("bad row %q: %v", line, err)
		}
		if start < prev {
			t.Fatal("rows not sorted by start")
		}
		prev = start
		if end <= start {
			t.Fatal("empty span in CSV")
		}
	}
}

// fmtSscanf parses a CSV row.
func fmtSscanf(line string, stage *int, kind *string, micro *int, start, end *int64) (int, error) {
	parts := strings.Split(line, ",")
	if len(parts) != 5 {
		return 0, errBad(line)
	}
	var err error
	*stage, err = atoi(parts[0])
	if err != nil {
		return 0, err
	}
	*kind = parts[1]
	*micro, err = atoi(parts[2])
	if err != nil {
		return 0, err
	}
	s, err := atoi(parts[3])
	if err != nil {
		return 0, err
	}
	e, err := atoi(parts[4])
	if err != nil {
		return 0, err
	}
	*start, *end = int64(s), int64(e)
	return 5, nil
}

type errBad string

func (e errBad) Error() string { return "bad row: " + string(e) }

func atoi(s string) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errBad(s)
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}

func TestUtilization(t *testing.T) {
	tr, depth := trace(t)
	u := Utilization(tr, depth)
	if len(u) != depth {
		t.Fatal("length")
	}
	for i, v := range u {
		if v <= 0 || v > 1 {
			t.Fatalf("stage %d utilization %v out of range", i, v)
		}
	}
	if z := Utilization(nil, 2); z[0] != 0 || z[1] != 0 {
		t.Fatal("empty trace utilization must be zero")
	}
}

// TestStripGolden pins Strip's exact rendering: segment projection,
// later-segment overwrite, sub-column widening, clamping of segments
// that start before the strip, and the all-idle fallbacks.
func TestStripGolden(t *testing.T) {
	segs := []Seg{
		{Start: 0, End: 10, Glyph: '█'},  // [0,10) of 40 → cols 0-4
		{Start: 10, End: 12, Glyph: '▒'}, // thin → widened to 1 col
		{Start: 20, End: 40, Glyph: '█'}, // back half
		{Start: 30, End: 34, Glyph: '░'}, // overwrites part of it
		{Start: -4, End: 2, Glyph: 'x'},  // clamped, overwrites col 0
		{Start: 16, End: 14, Glyph: '?'}, // inverted: dropped
	}
	got := Strip(segs, 40, 20)
	want := "x████▒····█████░░███"
	if got != want {
		t.Fatalf("Strip drifted:\n got %q\nwant %q", got, want)
	}
	if got := Strip(nil, 40, 20); got != strings.Repeat("·", 20) {
		t.Fatalf("empty strip %q", got)
	}
	if got := Strip(segs, 0, 20); got != strings.Repeat("·", 20) {
		t.Fatalf("zero-horizon strip %q", got)
	}
	// Narrow widths clamp to 10 columns rather than collapse.
	if got := Strip(segs, 40, 3); len([]rune(got)) != 10 {
		t.Fatalf("narrow strip %q", got)
	}
}

// parseCSV inverts CSV back into spans (stage/kind/micro/start/end).
func parseCSV(t *testing.T, s string) []sim.TaskSpan {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	var out []sim.TaskSpan
	for _, line := range lines[1:] {
		var stage, micro int
		var kind string
		var start, end int64
		if _, err := fmtSscanf(line, &stage, &kind, &micro, &start, &end); err != nil {
			t.Fatalf("bad row %q: %v", line, err)
		}
		var k schedule.Kind
		switch kind {
		case schedule.Forward.String():
			k = schedule.Forward
		case schedule.Backward.String():
			k = schedule.Backward
		case schedule.Recompute.String():
			k = schedule.Recompute
		default:
			t.Fatalf("unknown kind %q in %q", kind, line)
		}
		out = append(out, sim.TaskSpan{
			Stage: stage,
			Task:  schedule.Task{Kind: k, Micro: micro - 1},
			Start: simtime.Time(start),
			End:   simtime.Time(end),
		})
	}
	return out
}

// TestCSVRoundTrip runs a traced pipeline simulation, exports it as
// CSV, parses that back and re-exports: the round trip must be
// lossless (identical bytes) and the recovered spans must re-render
// the identical Gantt chart.
func TestCSVRoundTrip(t *testing.T) {
	tr, depth := trace(t)
	out := CSV(tr)
	back := parseCSV(t, out)
	if len(back) != len(tr) {
		t.Fatalf("round trip lost spans: %d -> %d", len(tr), len(back))
	}
	if again := CSV(back); again != out {
		t.Fatal("CSV(parse(CSV(trace))) is not byte-identical")
	}
	if Render(back, depth, 60) != Render(tr, depth, 60) {
		t.Fatal("recovered spans render a different chart")
	}
	u1, u2 := Utilization(tr, depth), Utilization(back, depth)
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatalf("stage %d utilization drifted: %v vs %v", i, u1[i], u2[i])
		}
	}
}
