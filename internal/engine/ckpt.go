package engine

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/nn"
)

// Save writes a consistent checkpoint at the current mini-batch
// boundary: one checkpoint.LayerState per model layer, holding the
// concatenated parameter values and Adam moments. Writing is sharded
// the way §4.5 describes — replica r persists every D-th of its
// stage's layers — which exercises the sharding assignment even though
// replicas hold identical state in sync mode.
func (e *Engine) Save(store checkpoint.Store) error {
	numLayers := e.cfg.GPT.Layers + 2
	var manifest []int
	var layerBytes []int64
	for s := 0; s < e.cfg.P; s++ {
		stageLayers := e.stageLayerIndices(s)
		for r := 0; r < e.cfg.D; r++ {
			for _, l := range checkpoint.ShardLayers(stageLayers, e.cfg.D, r) {
				ls := e.layerState(r, s, l)
				if err := store.PutLayer(e.step, ls); err != nil {
					return err
				}
				manifest = append(manifest, l)
				layerBytes = append(layerBytes, ls.Bytes())
			}
		}
	}
	if len(manifest) != numLayers {
		return fmt.Errorf("engine: checkpoint covered %d of %d layers", len(manifest), numLayers)
	}
	return store.PutManifest(checkpoint.Manifest{
		Step: e.step, Layers: manifest, LayerBytes: layerBytes, NumLayers: numLayers,
	})
}

// stageLayerIndices lists the global layer indices owned by stage s.
func (e *Engine) stageLayerIndices(s int) []int {
	var out []int
	for l, st := range e.layerStages {
		if st == s {
			out = append(out, l)
		}
	}
	return out
}

// layerAt returns replica r's layer object for global layer l and its
// owning stage.
func (e *Engine) layerAt(r, l int) (nn.Layer, *stage) {
	s := e.layerStages[l]
	st := e.replicas[r][s]
	// Position of l within the stage.
	pos := 0
	for ll := 0; ll < l; ll++ {
		if e.layerStages[ll] == s {
			pos++
		}
	}
	return st.layers[pos], st
}

// layerState snapshots one layer from replica r, stage s.
func (e *Engine) layerState(r, s, l int) checkpoint.LayerState {
	layer, st := e.layerAt(r, l)
	ls := checkpoint.LayerState{Layer: l}
	for _, p := range layer.Params() {
		m, v := st.opt.State(p)
		ls.Params = append(ls.Params, p.Value...)
		ls.M = append(ls.M, m...)
		ls.V = append(ls.V, v...)
	}
	return ls
}

// Resume builds a fresh engine under cfg (possibly a different P×D —
// the §4.5 morphing resume) and loads the latest checkpoint from
// store. With no checkpoint present it is equivalent to New.
func Resume(cfg Config, store checkpoint.Store) (*Engine, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	step, state, err := checkpoint.Resume(store)
	if err != nil {
		return nil, err
	}
	if state == nil {
		return e, nil
	}
	if len(state) != cfg.GPT.Layers+2 {
		return nil, fmt.Errorf("engine: checkpoint has %d layers, model needs %d", len(state), cfg.GPT.Layers+2)
	}
	for r := 0; r < cfg.D; r++ {
		for l, ls := range state {
			if err := e.loadLayer(r, l, ls); err != nil {
				return nil, err
			}
		}
	}
	e.step = step
	for _, stages := range e.replicas {
		for _, st := range stages {
			st.opt.SetStep(step)
		}
	}
	return e, nil
}

// loadLayer restores one layer of replica r from a snapshot.
func (e *Engine) loadLayer(r, l int, ls checkpoint.LayerState) error {
	layer, st := e.layerAt(r, l)
	off := 0
	for _, p := range layer.Params() {
		n := len(p.Value)
		if off+n > len(ls.Params) {
			return fmt.Errorf("engine: layer %d snapshot too small", l)
		}
		copy(p.Value, ls.Params[off:off+n])
		m, v := st.opt.State(p)
		copy(m, ls.M[off:off+n])
		copy(v, ls.V[off:off+n])
		off += n
	}
	if off != len(ls.Params) {
		return fmt.Errorf("engine: layer %d snapshot has %d extra values", l, len(ls.Params)-off)
	}
	return nil
}

// Fingerprint returns a deep copy of replica 0's parameters keyed by
// "layerIdx/paramName", for state-equality assertions in tests.
func (e *Engine) Fingerprint() map[string][]float64 {
	out := make(map[string][]float64)
	for l := range e.layerStages {
		layer, _ := e.layerAt(0, l)
		for _, p := range layer.Params() {
			key := fmt.Sprintf("%d/%s", l, p.Name)
			out[key] = append([]float64(nil), p.Value...)
		}
	}
	return out
}
