package engine

import (
	"repro/internal/nn"
)

// Messages between pipeline stages.
type fwdMsg struct {
	micro int
	x     *nn.Matrix
}

type bwdMsg struct {
	micro int
	dy    *nn.Matrix
}

// runPipeline streams nm micro-batches through this replica's stage
// goroutines and returns the replica's examples-weighted mean loss.
// Gradients accumulate into the stages' params; the caller reduces and
// applies them.
//
// Stage behaviour follows Varuna's memory discipline: non-final stages
// stash only their micro-batch *input* and drop forward contexts
// (gradient checkpointing); before a backward they recompute the
// forward from the stash (§3.1). The final stage backwards each
// micro-batch straight after its forward, so it never recomputes
// (§3.2). Backwards are preferred over forwards whenever both are
// pending (rule 3), which also bounds the stash.
func (e *Engine) runPipeline(stages []*stage, inputs, targets *nn.Matrix, nm int) float64 {
	p := len(stages)
	m := e.cfg.MicroBatch

	actCh := make([]chan fwdMsg, p+1)
	gradCh := make([]chan bwdMsg, p)
	for i := range actCh {
		actCh[i] = make(chan fwdMsg, nm)
	}
	for i := range gradCh {
		gradCh[i] = make(chan bwdMsg, nm)
	}

	// Feed the first stage.
	go func() {
		for k := 0; k < nm; k++ {
			actCh[0] <- fwdMsg{micro: k, x: sliceRows(inputs, k*m, m)}
		}
	}()

	lossCh := make(chan float64, 1)
	stageDone := make(chan struct{}, p)
	for s := 0; s < p; s++ {
		s := s
		go func() {
			if s == p-1 {
				lossCh <- e.runLastStage(stages[s], actCh[s], gradCh[s], targets, nm)
			} else {
				e.runMidStage(stages[s], actCh[s], actCh[s+1], gradCh[s], gradCh[s+1], nm)
			}
			stageDone <- struct{}{}
		}()
	}
	loss := <-lossCh
	for s := 0; s < p; s++ {
		<-stageDone
	}
	return loss
}

// runMidStage executes a non-final stage: forward with checkpointing,
// recompute-then-backward, backward-first scheduling.
func (e *Engine) runMidStage(st *stage, actIn, actOut chan fwdMsg, gradOut, gradIn chan bwdMsg, nm int) {
	stash := make(map[int]*nn.Matrix)
	fwdDone, bwdDone := 0, 0
	for bwdDone < nm {
		// Rule 3: drain ready backwards first.
		select {
		case g := <-gradIn:
			e.stageBackward(st, stash, g, gradOut)
			bwdDone++
			continue
		default:
		}
		if fwdDone < nm {
			select {
			case g := <-gradIn:
				e.stageBackward(st, stash, g, gradOut)
				bwdDone++
			case f := <-actIn:
				stash[f.micro] = f.x
				y := stageForward(st, f.x, false)
				actOut <- fwdMsg{micro: f.micro, x: y}
				fwdDone++
			}
		} else {
			g := <-gradIn
			e.stageBackward(st, stash, g, gradOut)
			bwdDone++
		}
	}
}

// runLastStage executes the final stage: forward, loss, immediate
// backward (activations still hot — no recompute), returning the
// examples-weighted mean loss.
func (e *Engine) runLastStage(st *stage, actIn chan fwdMsg, gradOut chan bwdMsg, targets *nn.Matrix, nm int) float64 {
	m := e.cfg.MicroBatch
	var lossSum float64
	for done := 0; done < nm; done++ {
		f := <-actIn
		h := f.x
		ctxs := make([]nn.Ctx, len(st.layers))
		for i, l := range st.layers {
			h, ctxs[i] = l.Forward(h)
		}
		tgt := sliceRows(targets, f.micro*m, m)
		loss, dl := nn.SoftmaxCrossEntropy(h, tgt, e.cfg.BatchSize)
		lossSum += loss
		dy := dl
		for i := len(st.layers) - 1; i >= 0; i-- {
			dy = st.layers[i].Backward(ctxs[i], dy)
		}
		if st.idx > 0 {
			gradOut <- bwdMsg{micro: f.micro, dy: dy}
		}
		if e.cfg.Mode == StalePerMicro {
			st.opt.Step(st.params)
		}
	}
	return lossSum / float64(nm)
}

// stageBackward recomputes the stage's forward from the stashed input,
// then backpropagates, releasing the stash slot.
func (e *Engine) stageBackward(st *stage, stash map[int]*nn.Matrix, g bwdMsg, gradOut chan bwdMsg) {
	x := stash[g.micro]
	delete(stash, g.micro)
	// Recompute: rebuild contexts from the stashed input (§3.1).
	h := x
	ctxs := make([]nn.Ctx, len(st.layers))
	for i, l := range st.layers {
		h, ctxs[i] = l.Forward(h)
	}
	dy := g.dy
	for i := len(st.layers) - 1; i >= 0; i-- {
		dy = st.layers[i].Backward(ctxs[i], dy)
	}
	if st.idx > 0 {
		gradOut <- bwdMsg{micro: g.micro, dy: dy}
	}
	if e.cfg.Mode == StalePerMicro {
		st.opt.Step(st.params)
	}
}

// stageForward runs the stage's layers, keeping contexts only when
// keepCtx is set (unused for checkpointed stages).
func stageForward(st *stage, x *nn.Matrix, keepCtx bool) *nn.Matrix {
	h := x
	for _, l := range st.layers {
		h, _ = l.Forward(h)
	}
	return h
}
