package engine

import (
	"math"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/nn"
)

func tinyGPT() nn.GPTConfig {
	return nn.GPTConfig{Vocab: 16, Dim: 16, SeqLen: 8, Layers: 4, MLPMult: 2, Seed: 123}
}

func cfgFor(p, d, m, batch int) Config {
	return Config{GPT: tinyGPT(), P: p, D: d, MicroBatch: m, BatchSize: batch, LR: 3e-3, DataSeed: 7}
}

func mustEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func maxRelDiff(a, b map[string][]float64) float64 {
	var worst float64
	for k, av := range a {
		bv := b[k]
		for i := range av {
			d := math.Abs(av[i] - bv[i])
			s := math.Abs(av[i]) + math.Abs(bv[i]) + 1e-12
			if r := d / s; r > worst {
				worst = r
			}
		}
	}
	return worst
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(cfgFor(0, 1, 2, 8)); err == nil {
		t.Fatal("P=0 must fail")
	}
	if _, err := New(cfgFor(2, 2, 3, 8)); err == nil {
		t.Fatal("indivisible batch must fail")
	}
	if _, err := New(cfgFor(12, 1, 2, 8)); err == nil {
		t.Fatal("P beyond layer count must fail")
	}
}

func TestSplitLayers(t *testing.T) {
	got := splitLayers(6, 3)
	want := []int{0, 0, 1, 1, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitLayers = %v", got)
		}
	}
	// Remainder goes to early stages.
	got = splitLayers(7, 3)
	want = []int{0, 0, 0, 1, 1, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitLayers(7,3) = %v", got)
		}
	}
}

func TestLossDecreases(t *testing.T) {
	e := mustEngine(t, cfgFor(3, 1, 4, 16))
	losses := e.Losses(40)
	first := (losses[0] + losses[1] + losses[2]) / 3
	last := (losses[37] + losses[38] + losses[39]) / 3
	if last >= first*0.85 {
		t.Fatalf("loss did not decrease: first %.4f last %.4f", first, last)
	}
	for _, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatal("loss not finite")
		}
	}
}

func TestMorphingInvariance(t *testing.T) {
	// The §4.2 correctness-preserving property, verified with real
	// arithmetic: for fixed M_total, every (P, D, m) configuration
	// produces the same loss trajectory and the same parameters, up
	// to float64 reassociation noise.
	ref := mustEngine(t, cfgFor(1, 1, 16, 16))
	refLoss := ref.Losses(5)
	refFP := ref.Fingerprint()
	for _, shape := range []struct{ p, d, m int }{
		{2, 1, 8}, {3, 1, 4}, {6, 1, 2}, {1, 2, 8}, {2, 2, 4}, {3, 4, 2}, {6, 2, 1},
	} {
		e := mustEngine(t, Config{GPT: tinyGPT(), P: shape.p, D: shape.d,
			MicroBatch: shape.m, BatchSize: 16, LR: 3e-3, DataSeed: 7})
		losses := e.Losses(5)
		for i := range refLoss {
			if math.Abs(losses[i]-refLoss[i]) > 1e-6*(1+math.Abs(refLoss[i])) {
				t.Fatalf("%dx%d m=%d: loss[%d] = %.12f vs reference %.12f",
					shape.p, shape.d, shape.m, i, losses[i], refLoss[i])
			}
		}
		if diff := maxRelDiff(refFP, e.Fingerprint()); diff > 1e-6 {
			t.Fatalf("%dx%d m=%d: params diverged from reference by %.2e",
				shape.p, shape.d, shape.m, diff)
		}
	}
}

func TestTracerFindsTiedWeights(t *testing.T) {
	// Tied embeddings land on different stages whenever P ≥ 2.
	multi := mustEngine(t, cfgFor(3, 1, 4, 16))
	got := multi.SharedParamNames()
	if len(got) != 1 || got[0] != "embedding.W" {
		t.Fatalf("tracer found %v, want [embedding.W]", got)
	}
	// On a single stage nothing crosses a partition boundary.
	single := mustEngine(t, cfgFor(1, 1, 4, 16))
	if names := single.SharedParamNames(); len(names) != 0 {
		t.Fatalf("P=1 flagged %v", names)
	}
}

func TestSharedSyncMattersForCorrectness(t *testing.T) {
	// Ablation of §5.2: disabling the tracer-mandated sync makes the
	// tied-embedding copies drift, diverging from the single-GPU
	// reference. With sync they match it.
	ref := mustEngine(t, cfgFor(1, 1, 8, 16))
	ref.Losses(8)
	refFP := ref.Fingerprint()

	good := mustEngine(t, cfgFor(3, 1, 8, 16))
	good.Losses(8)
	if d := maxRelDiff(refFP, good.Fingerprint()); d > 1e-6 {
		t.Fatalf("synced run diverged by %.2e", d)
	}

	bad := mustEngine(t, Config{GPT: tinyGPT(), P: 3, D: 1, MicroBatch: 8,
		BatchSize: 16, LR: 3e-3, DataSeed: 7, DisableSharedSync: true})
	bad.Losses(8)
	if d := maxRelDiff(refFP, bad.Fingerprint()); d < 1e-6 {
		t.Fatal("unsynced tied weights should have drifted but did not")
	}
}

func TestCheckpointResumeSameShape(t *testing.T) {
	store := checkpoint.NewMemStore()
	a := mustEngine(t, cfgFor(3, 2, 4, 16))
	a.Losses(4)
	if err := a.Save(store); err != nil {
		t.Fatal(err)
	}
	b, err := Resume(cfgFor(3, 2, 4, 16), store)
	if err != nil {
		t.Fatal(err)
	}
	if b.StepCount() != 4 {
		t.Fatalf("resumed step = %d", b.StepCount())
	}
	if d := maxRelDiff(a.Fingerprint(), b.Fingerprint()); d != 0 {
		t.Fatalf("resume must restore exactly, diff %.2e", d)
	}
	// Continued training matches the original continuing.
	la := a.Losses(3)
	lb := b.Losses(3)
	for i := range la {
		if math.Abs(la[i]-lb[i]) > 1e-12 {
			t.Fatalf("post-resume loss[%d] %.15f vs %.15f", i, la[i], lb[i])
		}
	}
}

func TestMorphingResumeAcrossShapes(t *testing.T) {
	// The full §4.5 story: train at 6x1, checkpoint, resume at 2x3
	// (different depth AND width), continue — the trajectory matches
	// an un-morphed run within float tolerance.
	straight := mustEngine(t, cfgFor(6, 1, 2, 12))
	wantLosses := straight.Losses(8)

	store := checkpoint.NewMemStore()
	first := mustEngine(t, cfgFor(6, 1, 2, 12))
	gotLosses := first.Losses(4)
	if err := first.Save(store); err != nil {
		t.Fatal(err)
	}
	second, err := Resume(Config{GPT: tinyGPT(), P: 2, D: 3, MicroBatch: 2,
		BatchSize: 12, LR: 3e-3, DataSeed: 7}, store)
	if err != nil {
		t.Fatal(err)
	}
	gotLosses = append(gotLosses, second.Losses(4)...)
	for i := range wantLosses {
		if math.Abs(gotLosses[i]-wantLosses[i]) > 1e-6*(1+math.Abs(wantLosses[i])) {
			t.Fatalf("morphed trajectory diverges at step %d: %.12f vs %.12f",
				i, gotLosses[i], wantLosses[i])
		}
	}
}

func TestStaleUpdatesHurt(t *testing.T) {
	// Figure 10's mechanism: PipeDream-style per-micro-batch updates
	// (stale weights, fwd/bwd version mismatch) train worse than
	// sync-SGD at the same nominal learning rate, and can blow up.
	sync := mustEngine(t, Config{GPT: tinyGPT(), P: 4, D: 1, MicroBatch: 2,
		BatchSize: 32, LR: 3e-2, DataSeed: 7})
	syncLosses := sync.Losses(30)

	stale := mustEngine(t, Config{GPT: tinyGPT(), P: 4, D: 1, MicroBatch: 2,
		BatchSize: 32, LR: 3e-2, DataSeed: 7, Mode: StalePerMicro})
	staleLosses := stale.Losses(30)

	syncEnd := avg(syncLosses[25:])
	staleEnd := avg(staleLosses[25:])
	if !(math.IsNaN(staleEnd) || staleEnd > syncEnd*2) {
		t.Fatalf("stale updates should diverge: sync %.4f vs stale %.4f", syncEnd, staleEnd)
	}
	for _, l := range syncLosses {
		if math.IsNaN(l) {
			t.Fatal("sync training must stay finite")
		}
	}
}

func TestLargeBatchEquivalence(t *testing.T) {
	// The Figure 9 substitution: 4× batch with 4× fewer iterations
	// (same examples) reaches a comparable held-out loss to the small
	// batch baseline. The paper shows this for 16×/2.5B; we verify the
	// same property at engine scale.
	small := mustEngine(t, Config{GPT: tinyGPT(), P: 2, D: 1, MicroBatch: 4,
		BatchSize: 8, LR: 2e-3, DataSeed: 7})
	small.Losses(128)
	smallEval := small.Eval(4)

	big := mustEngine(t, Config{GPT: tinyGPT(), P: 2, D: 1, MicroBatch: 4,
		BatchSize: 32, LR: 4e-3, DataSeed: 7})
	big.Losses(32) // 4x fewer iterations, same examples
	bigEval := big.Eval(4)

	if bigEval > smallEval*1.15 {
		t.Fatalf("large-batch run much worse: %.4f vs %.4f", bigEval, smallEval)
	}
}

func TestEvalDoesNotPerturbTraining(t *testing.T) {
	a := mustEngine(t, cfgFor(2, 1, 4, 8))
	b := mustEngine(t, cfgFor(2, 1, 4, 8))
	a.Losses(3)
	b.Losses(3)
	b.Eval(2)
	la := a.Losses(2)
	lb := b.Losses(2)
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("Eval must not change training state or data stream")
		}
	}
}

func TestDeterminismSameConfig(t *testing.T) {
	a := mustEngine(t, cfgFor(3, 2, 4, 16))
	b := mustEngine(t, cfgFor(3, 2, 4, 16))
	la := a.Losses(4)
	lb := b.Losses(4)
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("identical configs must train identically: %.15f vs %.15f", la[i], lb[i])
		}
	}
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestTwoBWDelayedUpdates(t *testing.T) {
	// 2BW at a stable learning rate still trains (it converged on BERT
	// in its paper), but its one-step-stale updates lag sync-SGD and at
	// aggressive rates destabilize like Figure 10.
	mk := func(mode Mode, lr float64) []float64 {
		e := mustEngine(t, Config{GPT: tinyGPT(), P: 4, D: 1, MicroBatch: 2,
			BatchSize: 32, LR: lr, DataSeed: 7, Mode: mode})
		return e.Losses(30)
	}
	syncL := mk(Sync, 3e-3)
	twoBW := mk(TwoBW, 3e-3)
	// Both finite and learning at a gentle LR.
	if math.IsNaN(twoBW[29]) || twoBW[29] > twoBW[0] {
		t.Fatalf("2BW failed to learn at small LR: %v → %v", twoBW[0], twoBW[29])
	}
	// 2BW's first update is delayed: step 2's loss equals step 1's
	// (weights unchanged until the parked gradient lands).
	if twoBW[0] != syncL[0] {
		t.Fatal("step 1 must match (no update applied yet either way)")
	}
	// At an aggressive LR, staleness hurts where sync stays stable.
	syncHot := mk(Sync, 3e-2)
	twoBWHot := mk(TwoBW, 3e-2)
	if !(math.IsNaN(twoBWHot[29]) || avg(twoBWHot[25:]) > avg(syncHot[25:])) {
		t.Fatalf("2BW at hot LR should trail sync: %v vs %v", avg(twoBWHot[25:]), avg(syncHot[25:]))
	}
}
