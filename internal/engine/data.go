package engine

import (
	"math/rand"

	"repro/internal/nn"
)

// batch generates the global mini-batch for the current step. The
// content is a function of (DataSeed, step) only — never of the
// topology — so two engines with different (P, D, m) see byte-identical
// data, which is what makes the morphing-invariance property testable.
//
// The synthetic corpus is a noisy affine token chain: the next token is
// (7·t + 3) mod V with probability 0.9 and uniform otherwise. A small
// transformer learns it quickly, giving convergence curves with clear
// signal (the Figure 9 substitution).
func (e *Engine) batch() (inputs, targets *nn.Matrix) {
	rng := rand.New(rand.NewSource(e.cfg.DataSeed ^ int64(e.step)*0x9e3779b9))
	b := e.cfg.BatchSize
	t := e.cfg.GPT.SeqLen
	v := e.cfg.GPT.Vocab
	inputs = nn.NewMatrix(b, t)
	targets = nn.NewMatrix(b, t)
	for i := 0; i < b; i++ {
		tok := rng.Intn(v)
		for j := 0; j < t; j++ {
			inputs.Set(i, j, float64(tok))
			next := (7*tok + 3) % v
			if rng.Float64() < 0.1 {
				next = rng.Intn(v)
			}
			targets.Set(i, j, float64(next))
			tok = next
		}
	}
	return inputs, targets
}

// Eval reports the mean loss over nBatches held-out batches without
// touching gradients or the step counter. The held-out stream is
// seeded away from the training stream.
func (e *Engine) Eval(nBatches int) float64 {
	saveStep := e.step
	defer func() { e.step = saveStep }()
	var sum float64
	for k := 0; k < nBatches; k++ {
		e.step = -(k + 1) // negative steps → disjoint from training data
		inputs, targets := e.batch()
		sum += e.evalBatch(inputs, targets)
	}
	return sum / float64(nBatches)
}

// evalBatch runs a pure forward pass on replica 0's full pipeline.
func (e *Engine) evalBatch(inputs, targets *nn.Matrix) float64 {
	h := inputs
	for _, st := range e.replicas[0] {
		for _, l := range st.layers {
			h, _ = l.Forward(h)
		}
	}
	loss, _ := nn.SoftmaxCrossEntropy(h, targets, inputs.Rows)
	return loss
}
