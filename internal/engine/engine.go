// Package engine is a real pipeline + data-parallel training executor:
// it partitions an nn model at cut-points into P stages, replicates the
// pipeline D ways, streams micro-batches through goroutine stages
// connected by channels (backward preferred, activations recomputed
// from stashed stage inputs exactly as §3.1 prescribes), accumulates
// gradients across Nm micro-batches, allreduces across replicas, and
// synchronizes tracer-flagged shared parameters across stages (§5.2).
//
// Unlike the analytical testbed, everything here is genuine float64
// arithmetic. The engine exists to validate Varuna's semantic claims:
//
//   - Correctness-preserving morphing (§4.2): for a fixed global batch
//     size, any (P, D, m) configuration computes the same gradients, so
//     the loss trajectory is invariant under reconfiguration.
//   - Tied weights across partitions stay consistent only when the
//     tracer-mandated synchronization runs.
//   - Per-layer checkpoints restore exactly, under a different P×D.
//   - Stale-update pipelines (PipeDream-style) damage convergence
//     (Figure 10), while sync-SGD does not.
package engine

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/trace"
)

// Mode selects the update discipline.
type Mode int

const (
	// Sync is synchronous SGD: gradients apply at mini-batch
	// boundaries (Varuna, GPipe).
	Sync Mode = iota
	// StalePerMicro applies each stage's update immediately after
	// every micro-batch backward, giving PipeDream-style weight
	// staleness and forward/backward version mismatch.
	StalePerMicro
	// TwoBW models PipeDream-2BW: gradients accumulate over the
	// mini-batch as in sync-SGD, but each update applies one
	// mini-batch late (the second buffered weight version), so every
	// gradient is computed against weights one update stale.
	TwoBW
)

// Config describes one training setup.
type Config struct {
	// GPT is the model architecture.
	GPT nn.GPTConfig
	// P is pipeline depth (≤ number of layers), D data-parallel width.
	P, D int
	// MicroBatch is m; BatchSize is the global M_total. BatchSize must
	// be divisible by MicroBatch·D.
	MicroBatch, BatchSize int
	// LR is the Adam learning rate.
	LR float64
	// Mode selects sync or stale updates.
	Mode Mode
	// DisableSharedSync skips the tracer-mandated cross-stage
	// synchronization of tied weights — the bug Varuna's tracer
	// prevents. For ablation only.
	DisableSharedSync bool
	// DataSeed drives the synthetic corpus; independent of topology.
	DataSeed int64
}

func (c Config) validate() error {
	if c.P < 1 || c.D < 1 || c.MicroBatch < 1 || c.BatchSize < 1 {
		return fmt.Errorf("engine: bad shape P=%d D=%d m=%d B=%d", c.P, c.D, c.MicroBatch, c.BatchSize)
	}
	if c.BatchSize%(c.MicroBatch*c.D) != 0 {
		return fmt.Errorf("engine: batch %d not divisible by m·D = %d", c.BatchSize, c.MicroBatch*c.D)
	}
	if c.P > c.GPT.Layers+2 {
		return fmt.Errorf("engine: P=%d exceeds %d layers", c.P, c.GPT.Layers+2)
	}
	return nil
}

// stage owns a contiguous slice of layers on one "device".
type stage struct {
	idx    int
	layers []nn.Layer
	opt    *nn.Adam
	params []*nn.Param
}

// Engine is a live training job.
type Engine struct {
	cfg      Config
	replicas [][]*stage // [D][P]
	// layerStages[l] is the stage index owning global layer l.
	layerStages []int
	step        int
	rng         *rand.Rand
	// pending holds 2BW's parked gradients awaiting delayed application.
	pending map[*nn.Param][]float64
}

// New builds the engine: every replica constructs the model from the
// same seed (identical initial weights, as a broadcast would ensure)
// and slices it into P stages.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, rng: rand.New(rand.NewSource(cfg.DataSeed))}
	numLayers := cfg.GPT.Layers + 2
	e.layerStages = splitLayers(numLayers, cfg.P)
	for r := 0; r < cfg.D; r++ {
		layers := nn.BuildGPT(cfg.GPT)
		stages := make([]*stage, cfg.P)
		for s := 0; s < cfg.P; s++ {
			stages[s] = &stage{idx: s, opt: nn.NewAdam(cfg.LR)}
		}
		for l, li := range layers {
			s := e.layerStages[l]
			stages[s].layers = append(stages[s].layers, li)
			stages[s].params = append(stages[s].params, li.Params()...)
		}
		e.replicas = append(e.replicas, stages)
	}
	return e, nil
}

// splitLayers assigns numLayers contiguous layers to p stages as evenly
// as possible, biasing the remainder toward early stages so the final
// stage (which skips recompute) stays light.
func splitLayers(numLayers, p int) []int {
	out := make([]int, numLayers)
	base := numLayers / p
	rem := numLayers % p
	l := 0
	for s := 0; s < p; s++ {
		n := base
		if s < rem {
			n++
		}
		for i := 0; i < n && l < numLayers; i++ {
			out[l] = s
			l++
		}
	}
	return out
}

// SharedParamNames reports the tracer's findings for this partition:
// parameters touched from more than one stage, which must be
// allreduced across the pipeline group every mini-batch (§5.2). The
// detection is a trace.DryRun over replica 0's partitioned layers.
func (e *Engine) SharedParamNames() []string {
	var layers []nn.Layer
	var stageOf []int
	for l := range e.layerStages {
		layer, _ := e.layerAt(0, l)
		layers = append(layers, layer)
		stageOf = append(stageOf, e.layerStages[l])
	}
	report, err := trace.DryRun(layers, stageOf)
	if err != nil {
		return nil
	}
	return report.SharedParamNames()
}

// Step runs one mini-batch and returns the global mean loss.
func (e *Engine) Step() float64 {
	inputs, targets := e.batch()
	perReplica := e.cfg.BatchSize / e.cfg.D
	nm := perReplica / e.cfg.MicroBatch

	lossCh := make(chan float64, e.cfg.D)
	for r := 0; r < e.cfg.D; r++ {
		r := r
		lo := r * perReplica
		go func() {
			lossCh <- e.runPipeline(e.replicas[r],
				sliceRows(inputs, lo, perReplica),
				sliceRows(targets, lo, perReplica),
				nm)
		}()
	}
	var lossSum float64
	for r := 0; r < e.cfg.D; r++ {
		lossSum += <-lossCh
	}

	switch e.cfg.Mode {
	case Sync:
		e.reduceAndStep()
	case TwoBW:
		e.reduceDelayed()
	}
	e.step++
	return lossSum / float64(e.cfg.D)
}

// reduceDelayed implements 2BW's double-buffered updates: this
// mini-batch's reduced gradients are parked, and the previous
// mini-batch's parked gradients are applied instead — every update
// lands one step stale.
func (e *Engine) reduceDelayed() {
	// Reduce exactly as sync would, but capture instead of applying.
	e.reduceGradients()
	current := make(map[*nn.Param][]float64)
	for _, stages := range e.replicas {
		for _, st := range stages {
			for _, p := range st.params {
				current[p] = append([]float64(nil), p.Grad...)
				p.ZeroGrad()
			}
		}
	}
	if e.pending != nil {
		for _, stages := range e.replicas {
			for _, st := range stages {
				for _, p := range st.params {
					copy(p.Grad, e.pending[p])
				}
				st.opt.Step(st.params)
			}
		}
	}
	e.pending = current
}

// reduceAndStep implements the two process groups of §6: gradients of
// every parameter are summed across data-parallel replicas, and
// tracer-flagged shared parameters are additionally summed across the
// stages of each pipeline; then every stage applies its optimizer.
func (e *Engine) reduceAndStep() {
	e.reduceGradients()
	for _, stages := range e.replicas {
		for _, st := range stages {
			st.opt.Step(st.params)
		}
	}
}

// reduceGradients performs the replica and shared-state allreduces,
// leaving summed gradients in place.
func (e *Engine) reduceGradients() {
	// Group parameter instances by name across replicas and stages.
	// Ordinary params appear once per replica; shared params once per
	// holding stage per replica.
	type group struct{ instances []*nn.Param }
	groups := make(map[string]*group)
	var order []string
	for _, stages := range e.replicas {
		for _, st := range stages {
			for _, p := range st.params {
				g, ok := groups[p.Name]
				if !ok {
					g = &group{}
					groups[p.Name] = g
					order = append(order, p.Name)
				}
				g.instances = append(g.instances, p)
			}
		}
	}
	for _, name := range order {
		g := groups[name]
		first := g.instances[0]
		crossStage := first.Shared && !e.cfg.DisableSharedSync
		if len(g.instances) == 1 {
			continue
		}
		if !crossStage && e.cfg.D == 1 {
			continue
		}
		// Which instances participate: shared params sync across all
		// holders; ordinary params only across replicas (they appear
		// once per replica anyway).
		parts := g.instances
		if !crossStage && first.Shared {
			// Tracer sync disabled: reduce within replicas only, i.e.
			// each stage's copy sees only its replica-ring sum. Group
			// instances by stage position.
			e.reduceSharedPerStage(g.instances)
			continue
		}
		sum := make([]float64, len(first.Grad))
		for _, p := range parts {
			for i, v := range p.Grad {
				sum[i] += v
			}
		}
		for _, p := range parts {
			copy(p.Grad, sum)
		}
	}
}

// reduceSharedPerStage models the buggy behaviour the tracer prevents:
// each stage's copy of a shared parameter only syncs with its own
// data-parallel ring, so the embedding and lm_head copies drift apart.
func (e *Engine) reduceSharedPerStage(instances []*nn.Param) {
	// Instances are ordered replica-major, stage order consistent:
	// group by position within replica.
	perReplica := len(instances) / e.cfg.D
	for pos := 0; pos < perReplica; pos++ {
		sum := make([]float64, len(instances[0].Grad))
		for r := 0; r < e.cfg.D; r++ {
			p := instances[r*perReplica+pos]
			for i, v := range p.Grad {
				sum[i] += v
			}
		}
		for r := 0; r < e.cfg.D; r++ {
			copy(instances[r*perReplica+pos].Grad, sum)
		}
	}
}

// Losses runs n mini-batches and returns the loss sequence.
func (e *Engine) Losses(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = e.Step()
	}
	return out
}

// StepCount reports completed mini-batches.
func (e *Engine) StepCount() int { return e.step }

// sliceRows views rows [lo, lo+n) of m.
func sliceRows(m *nn.Matrix, lo, n int) *nn.Matrix {
	return &nn.Matrix{Rows: n, Cols: m.Cols, Data: m.Data[lo*m.Cols : (lo+n)*m.Cols]}
}
