package hw

import "testing"

func TestLinkKindString(t *testing.T) {
	if LinkEthernet.String() != "ethernet" || LinkNVLink.String() != "nvlink" {
		t.Fatal("LinkKind names wrong")
	}
	if LinkKind(99).String() != "LinkKind(99)" {
		t.Fatal("unknown LinkKind formatting wrong")
	}
}

func TestLinkOrdering(t *testing.T) {
	// Sanity: bandwidth hierarchy matches reality.
	if !(Ethernet10G.BandwidthBps < PCIe3.BandwidthBps &&
		PCIe3.BandwidthBps < IB200G.BandwidthBps &&
		IB200G.BandwidthBps < NVLink.BandwidthBps) {
		t.Fatal("link bandwidth hierarchy violated")
	}
	if Ethernet10G.JitterCV <= NVLink.JitterCV {
		t.Fatal("commodity ethernet must have more jitter than NVLink")
	}
}

func TestSpotClusterShapes(t *testing.T) {
	c := SpotCluster(NC6v3, 300)
	if c.Nodes != 300 || c.NumGPUs() != 300 {
		t.Fatalf("1-GPU cluster: nodes=%d gpus=%d", c.Nodes, c.NumGPUs())
	}
	c4 := SpotCluster(NC24v3, 300)
	if c4.Nodes != 75 || c4.NumGPUs() != 300 {
		t.Fatalf("4-GPU cluster: nodes=%d gpus=%d", c4.Nodes, c4.NumGPUs())
	}
	if !c.LowPriority {
		t.Fatal("spot cluster must be low priority")
	}
	// Ragged GPU counts round the node count up.
	if SpotCluster(NC24v3, 294).Nodes != 74 {
		t.Fatal("ragged cluster must round nodes up")
	}
}

func TestLinkBetween(t *testing.T) {
	c := SpotCluster(NC24v3, 16)
	if got := c.LinkBetween(0, 3); got.Kind != LinkPCIe {
		t.Fatalf("same-node link = %v, want pcie", got.Kind)
	}
	if got := c.LinkBetween(0, 4); got.Kind != LinkEthernet {
		t.Fatalf("cross-node link = %v, want ethernet", got.Kind)
	}
	hc := Hypercluster(16)
	if got := hc.LinkBetween(0, 15); got.Kind != LinkNVLink {
		t.Fatalf("within DGX-2 = %v, want nvlink", got.Kind)
	}
	if got := hc.LinkBetween(0, 16); got.Kind != LinkInfiniband {
		t.Fatalf("across DGX-2 = %v, want infiniband", got.Kind)
	}
}

func TestCostRatio(t *testing.T) {
	// Low-pri per-GPU-hour should be ~5x cheaper than the dedicated
	// hypercluster per-GPU-hour.
	spot := SpotCluster(NC6v3, 1).GPUHourCost()
	hc := Hypercluster(1).GPUHourCost()
	ratio := hc / spot
	if ratio < 4 || ratio > 7 {
		t.Fatalf("dedicated/spot cost ratio = %.2f, want ≈5", ratio)
	}
}

func TestHyperclusterGPUs(t *testing.T) {
	hc := Hypercluster(16)
	if hc.NumGPUs() != 256 {
		t.Fatalf("16 DGX-2 = %d GPUs, want 256", hc.NumGPUs())
	}
}
