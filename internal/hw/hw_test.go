package hw

import "testing"

func TestLinkKindString(t *testing.T) {
	if LinkEthernet.String() != "ethernet" || LinkNVLink.String() != "nvlink" {
		t.Fatal("LinkKind names wrong")
	}
	if LinkKind(99).String() != "LinkKind(99)" {
		t.Fatal("unknown LinkKind formatting wrong")
	}
}

func TestLinkOrdering(t *testing.T) {
	// Sanity: bandwidth hierarchy matches reality.
	if !(Ethernet10G.BandwidthBps < PCIe3.BandwidthBps &&
		PCIe3.BandwidthBps < IB200G.BandwidthBps &&
		IB200G.BandwidthBps < NVLink.BandwidthBps) {
		t.Fatal("link bandwidth hierarchy violated")
	}
	if Ethernet10G.JitterCV <= NVLink.JitterCV {
		t.Fatal("commodity ethernet must have more jitter than NVLink")
	}
}

func TestSpotClusterShapes(t *testing.T) {
	c := SpotCluster(NC6v3, 300)
	if c.Nodes != 300 || c.NumGPUs() != 300 {
		t.Fatalf("1-GPU cluster: nodes=%d gpus=%d", c.Nodes, c.NumGPUs())
	}
	c4 := SpotCluster(NC24v3, 300)
	if c4.Nodes != 75 || c4.NumGPUs() != 300 {
		t.Fatalf("4-GPU cluster: nodes=%d gpus=%d", c4.Nodes, c4.NumGPUs())
	}
	if !c.LowPriority {
		t.Fatal("spot cluster must be low priority")
	}
	// Ragged GPU counts round the node count up.
	if SpotCluster(NC24v3, 294).Nodes != 74 {
		t.Fatal("ragged cluster must round nodes up")
	}
}

func TestLinkBetween(t *testing.T) {
	c := SpotCluster(NC24v3, 16)
	if got := c.LinkBetween(0, 3); got.Kind != LinkPCIe {
		t.Fatalf("same-node link = %v, want pcie", got.Kind)
	}
	if got := c.LinkBetween(0, 4); got.Kind != LinkEthernet {
		t.Fatalf("cross-node link = %v, want ethernet", got.Kind)
	}
	hc := Hypercluster(16)
	if got := hc.LinkBetween(0, 15); got.Kind != LinkNVLink {
		t.Fatalf("within DGX-2 = %v, want nvlink", got.Kind)
	}
	if got := hc.LinkBetween(0, 16); got.Kind != LinkInfiniband {
		t.Fatalf("across DGX-2 = %v, want infiniband", got.Kind)
	}
}

func TestLinkBetweenOutOfRange(t *testing.T) {
	// Out-of-range ranks must never be billed as intra-node traffic:
	// -1/4 == 0 under Go's truncating division, so before the guard a
	// negative rank aliased onto node 0.
	c := SpotCluster(NC24v3, 16)
	cases := [][2]int{{-1, 0}, {0, -1}, {-4, -4}, {16, 0}, {0, 16}, {100, 100}}
	for _, tc := range cases {
		if got := c.LinkBetween(tc[0], tc[1]); got != c.Inter {
			t.Fatalf("LinkBetween(%d,%d) = %v, want outermost (Inter) for flat cluster", tc[0], tc[1], got.Kind)
		}
	}
	// With a topology the outermost defined link is charged instead.
	tc := c
	tc.Topo = SpotTopology(4, 2, 2)
	if got := tc.LinkBetween(-1, 0); got.Kind != LinkWAN {
		t.Fatalf("topo out-of-range link = %v, want wan", got.Kind)
	}
}

func TestLinkBetweenTopology(t *testing.T) {
	// 4 zones x 2 racks x 2 nodes x 4 GPUs = 64 GPUs. Static packing:
	// node = rank/4, rack = node/2, zone = rack/2.
	c := SpotCluster(NC24v3, 64)
	c.Topo = SpotTopology(4, 2, 2)
	tests := []struct {
		name string
		a, b int
		kind LinkKind
	}{
		{"same node", 0, 3, LinkPCIe},
		{"same rack, different node", 0, 4, LinkEthernet},
		{"same zone, different rack", 0, 8, LinkEthernet}, // CrossRack = Ethernet10G
		{"different zone", 0, 16, LinkWAN},                // CrossZone = ZoneWAN
		{"far zones", 0, 48, LinkWAN},
	}
	for _, tt := range tests {
		if got := c.LinkBetween(tt.a, tt.b); got.Kind != tt.kind {
			t.Fatalf("%s: LinkBetween(%d,%d) = %v, want %v", tt.name, tt.a, tt.b, got.Kind, tt.kind)
		}
	}
	// Symmetry across every pair class.
	for _, tt := range tests {
		ab, ba := c.LinkBetween(tt.a, tt.b), c.LinkBetween(tt.b, tt.a)
		if ab != ba {
			t.Fatalf("%s: asymmetric link %v vs %v", tt.name, ab.Kind, ba.Kind)
		}
	}
	// Flat clusters are untouched by the rewrite.
	flat := SpotCluster(NC24v3, 64)
	if flat.LinkBetween(0, 3).Kind != LinkPCIe || flat.LinkBetween(0, 60).Kind != LinkEthernet {
		t.Fatal("flat cluster link classes changed")
	}
}

func TestDomainMappings(t *testing.T) {
	topo := SpotTopology(4, 2, 2)
	// Rank packing: 16 GPUs per zone (2 racks x 2 nodes x 4 GPUs).
	c := SpotCluster(NC24v3, 64)
	c.Topo = topo
	if z := c.DomainOfRank(0, DomainZone); z != 0 {
		t.Fatalf("rank 0 zone = %d", z)
	}
	if z := c.DomainOfRank(16, DomainZone); z != 1 {
		t.Fatalf("rank 16 zone = %d", z)
	}
	if z := c.DomainOfRank(63, DomainZone); z != 3 {
		t.Fatalf("rank 63 zone = %d", z)
	}
	if c.DomainOfRank(-1, DomainZone) != -1 {
		t.Fatal("negative rank must map to no domain")
	}
	// VM-id mapping is round-robin so zone spread is stationary under
	// churn, and the rack mapping refines the zone mapping.
	for id := 0; id < 32; id++ {
		if topo.DomainOfVM(id, DomainZone) != id%4 {
			t.Fatalf("vm %d zone mapping not round-robin", id)
		}
		if topo.DomainOfVM(id, DomainRack)%4 != topo.DomainOfVM(id, DomainZone) {
			t.Fatalf("vm %d rack mapping inconsistent with zone", id)
		}
	}
	if n := topo.NumDomains(DomainZone); n != 4 {
		t.Fatalf("NumDomains(zone) = %d", n)
	}
	if n := topo.NumDomains(DomainRack); n != 8 {
		t.Fatalf("NumDomains(rack) = %d", n)
	}
	// Undefined topologies report no domains and map everything to 0.
	var flat Topology
	if flat.Defined() || flat.NumDomains(DomainZone) != 0 || flat.DomainOfVM(7, DomainZone) != 0 {
		t.Fatal("flat topology must be inert")
	}
}

func TestCrossLinkFallback(t *testing.T) {
	c := SpotCluster(NC24v3, 64)
	// Topology with only zones defined: cross-rack and cross-region
	// fall back inward.
	c.Topo = Topology{Zones: 2, CrossZone: ZoneWAN}
	if got := c.CrossLink(DomainRack); got != c.Inter {
		t.Fatalf("undefined cross-rack must fall back to Inter, got %v", got.Kind)
	}
	if got := c.CrossLink(DomainZone); got != ZoneWAN {
		t.Fatalf("cross-zone = %v, want wan", got.Kind)
	}
	if got := c.CrossLink(DomainRegion); got != ZoneWAN {
		t.Fatalf("undefined cross-region must fall back to cross-zone, got %v", got.Kind)
	}
}

func TestCostRatio(t *testing.T) {
	// Low-pri per-GPU-hour should be ~5x cheaper than the dedicated
	// hypercluster per-GPU-hour.
	spot := SpotCluster(NC6v3, 1).GPUHourCost()
	hc := Hypercluster(1).GPUHourCost()
	ratio := hc / spot
	if ratio < 4 || ratio > 7 {
		t.Fatalf("dedicated/spot cost ratio = %.2f, want ≈5", ratio)
	}
}

func TestHyperclusterGPUs(t *testing.T) {
	hc := Hypercluster(16)
	if hc.NumGPUs() != 256 {
		t.Fatalf("16 DGX-2 = %d GPUs, want 256", hc.NumGPUs())
	}
}
