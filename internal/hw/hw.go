// Package hw is the hardware catalogue for the Varuna testbed. It
// describes GPUs, VM shapes and network links with the parameters the
// paper's evaluation environment exposes: V100 GPUs in Azure NC6_v3
// (1-GPU) and NC24_v3 (4-GPU) low-priority VMs on 10 Gbps ethernet, and
// a "hypercluster" of DGX-2 nodes (16 V100s on NVLink) joined by
// 200 Gbps Infiniband.
package hw

import (
	"fmt"

	"repro/internal/simtime"
)

// GPU describes an accelerator model.
type GPU struct {
	Name string
	// MemoryBytes is the usable device memory.
	MemoryBytes int64
	// PeakFlops is the peak mixed-precision throughput in FLOP/s.
	PeakFlops float64
}

// V100 is the Nvidia Volta 100 with 16 GB used throughout the paper.
var V100 = GPU{
	Name:        "V100-16GB",
	MemoryBytes: 16 << 30,
	PeakFlops:   125e12, // tensor-core fp16 peak
}

// LinkKind identifies a class of interconnect.
type LinkKind int

// Interconnect classes, slowest to fastest.
const (
	LinkEthernet LinkKind = iota // commodity datacenter ethernet
	LinkPCIe                     // intra-node PCIe between GPUs
	LinkInfiniband
	LinkNVLink
	LinkWAN // metro or long-haul fiber between zones/regions
)

// String names the link kind.
func (k LinkKind) String() string {
	switch k {
	case LinkEthernet:
		return "ethernet"
	case LinkPCIe:
		return "pcie"
	case LinkInfiniband:
		return "infiniband"
	case LinkNVLink:
		return "nvlink"
	case LinkWAN:
		return "wan"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// Link describes one interconnect class.
type Link struct {
	Kind LinkKind
	// BandwidthBps is the achievable point-to-point bandwidth in
	// bytes per second (not bits).
	BandwidthBps float64
	// Latency is the one-way base latency.
	Latency simtime.Duration
	// JitterCV is the coefficient of variation applied to transfer
	// times; commodity networks have high jitter, NVLink almost none.
	JitterCV float64
}

// Standard links. Ethernet is 10 Gb/s line rate with ~70% achievable
// goodput through bottleneck switches (the paper notes VMs "have no
// other locality" and may cross multiple oversubscribed switch levels).
var (
	Ethernet10G = Link{Kind: LinkEthernet, BandwidthBps: 0.70 * 10e9 / 8, Latency: 500 * simtime.Microsecond, JitterCV: 0.25}
	PCIe3       = Link{Kind: LinkPCIe, BandwidthBps: 12e9, Latency: 10 * simtime.Microsecond, JitterCV: 0.02}
	IB200G      = Link{Kind: LinkInfiniband, BandwidthBps: 0.85 * 200e9 / 8, Latency: 5 * simtime.Microsecond, JitterCV: 0.02}
	NVLink      = Link{Kind: LinkNVLink, BandwidthBps: 150e9, Latency: 2 * simtime.Microsecond, JitterCV: 0.01}
)

// VMType describes a virtual machine shape.
type VMType struct {
	Name     string
	GPUs     int
	GPU      GPU
	Intra    Link // link between GPUs of the same VM
	HourCost float64
}

// Azure VM shapes from the paper's experimental setup. Low-priority
// prices are roughly 5x below dedicated.
var (
	// NC6v3 is the 1-GPU V100 VM.
	NC6v3 = VMType{Name: "NC6_v3", GPUs: 1, GPU: V100, Intra: Ethernet10G, HourCost: 0.612}
	// NC24v3 is the 4-GPU V100 VM; GPUs inside share PCIe.
	NC24v3 = VMType{Name: "NC24_v3", GPUs: 4, GPU: V100, Intra: PCIe3, HourCost: 2.448}
	// DGX2 is a hypercluster node: 16 V100s on NVLink.
	DGX2 = VMType{Name: "DGX-2", GPUs: 16, GPU: V100, Intra: NVLink, HourCost: 12.24 * 5}
)

// Cluster describes a homogeneous pool of VMs plus the inter-node link.
type Cluster struct {
	Name  string
	VM    VMType
	Nodes int
	Inter Link
	// LowPriority marks spot capacity subject to preemption.
	LowPriority bool
	// Topo arranges the nodes into failure domains; the zero value
	// keeps the flat single-pool model.
	Topo Topology
}

// NumGPUs reports the total GPU count.
func (c Cluster) NumGPUs() int { return c.Nodes * c.VM.GPUs }

// GPUHourCost reports the per-GPU-hour dollar cost.
func (c Cluster) GPUHourCost() float64 { return c.VM.HourCost / float64(c.VM.GPUs) }

// LinkBetween reports the link joining two GPU ranks under the
// cluster's node packing (rank / VM.GPUs identifies the node). Out of
// range ranks are conservatively charged the outermost defined link:
// integer division truncates toward zero, so without the guard a rank
// of -1 would land on node 0 and be billed as intra-node traffic.
func (c Cluster) LinkBetween(rankA, rankB int) Link {
	if rankA < 0 || rankB < 0 || rankA >= c.NumGPUs() || rankB >= c.NumGPUs() {
		return c.CrossLink(DomainRegion)
	}
	nodeA, nodeB := rankA/c.VM.GPUs, rankB/c.VM.GPUs
	if nodeA == nodeB {
		return c.VM.Intra
	}
	t := c.Topo
	if !t.Defined() {
		return c.Inter
	}
	if t.domainOfNode(nodeA, DomainRack) == t.domainOfNode(nodeB, DomainRack) {
		return c.Inter
	}
	if t.domainOfNode(nodeA, DomainZone) == t.domainOfNode(nodeB, DomainZone) {
		return c.CrossLink(DomainRack)
	}
	if t.domainOfNode(nodeA, DomainRegion) == t.domainOfNode(nodeB, DomainRegion) {
		return c.CrossLink(DomainZone)
	}
	return c.CrossLink(DomainRegion)
}

// SpotCluster builds the paper's commodity setting: nGPUs spread over
// low-priority VMs of the given shape on 10 GbE.
func SpotCluster(vm VMType, nGPUs int) Cluster {
	nodes := (nGPUs + vm.GPUs - 1) / vm.GPUs
	return Cluster{
		Name:        fmt.Sprintf("spot-%s-%dgpu", vm.Name, nGPUs),
		VM:          vm,
		Nodes:       nodes,
		Inter:       Ethernet10G,
		LowPriority: true,
	}
}

// Hypercluster builds the paper's dedicated setting: DGX-2 nodes on
// 200 Gbps Infiniband.
func Hypercluster(nodes int) Cluster {
	return Cluster{
		Name:  fmt.Sprintf("hypercluster-%dxDGX2", nodes),
		VM:    DGX2,
		Nodes: nodes,
		Inter: IB200G,
	}
}
