package hw

import (
	"fmt"

	"repro/internal/simtime"
)

// DomainLevel identifies one tier of the failure-domain hierarchy,
// innermost to outermost. A failure at a level takes out every GPU in
// the named domain at that level: a node failure kills the GPUs on one
// VM, a zone outage kills every VM mapped to that zone.
type DomainLevel int

// Failure-domain levels, innermost first.
const (
	DomainGPU DomainLevel = iota // a single GPU rank
	DomainNode
	DomainRack
	DomainZone
	DomainRegion
)

// String names the domain level.
func (l DomainLevel) String() string {
	switch l {
	case DomainGPU:
		return "gpu"
	case DomainNode:
		return "node"
	case DomainRack:
		return "rack"
	case DomainZone:
		return "zone"
	case DomainRegion:
		return "region"
	default:
		return fmt.Sprintf("DomainLevel(%d)", int(l))
	}
}

// ParseDomainLevel resolves a level name ("node", "rack", "zone",
// "region") to its DomainLevel.
func ParseDomainLevel(s string) (DomainLevel, error) {
	switch s {
	case "gpu":
		return DomainGPU, nil
	case "node":
		return DomainNode, nil
	case "rack":
		return DomainRack, nil
	case "zone":
		return DomainZone, nil
	case "region":
		return DomainRegion, nil
	}
	return 0, fmt.Errorf("hw: unknown domain level %q", s)
}

// Wide-area links joining the outer failure domains. Cross-rack traffic
// stays on datacenter ethernet; cross-zone hops ride a metro fiber ring
// with millisecond latency; cross-region transfers cross a WAN backbone.
var (
	ZoneWAN   = Link{Kind: LinkWAN, BandwidthBps: 0.60 * 5e9 / 8, Latency: 2 * simtime.Millisecond, JitterCV: 0.30}
	RegionWAN = Link{Kind: LinkWAN, BandwidthBps: 0.40 * 2e9 / 8, Latency: 30 * simtime.Millisecond, JitterCV: 0.40}
)

// Topology arranges a cluster's nodes into nested failure domains:
// nodes pack into racks, racks into zones, zones into regions. The
// zero value means "flat" — a single undifferentiated pool where the
// cluster's Inter link joins every pair of nodes, exactly the model
// the repo used before topologies existed.
type Topology struct {
	// Zones is the number of availability zones. Zones <= 1 leaves
	// the topology flat.
	Zones int
	// NodesPerRack and RacksPerZone shape the inner tiers; zero
	// values collapse the tier (every node in a zone shares one
	// rack).
	NodesPerRack int
	RacksPerZone int
	// ZonesPerRegion groups zones into regions; zero means all zones
	// share one region.
	ZonesPerRegion int
	// CrossRack, CrossZone and CrossRegion are the links joining
	// nodes in different domains at each level. Zero-valued links
	// fall back to the next-inner defined link (ultimately the
	// cluster's Inter link).
	CrossRack   Link
	CrossZone   Link
	CrossRegion Link
}

// Defined reports whether the topology names more than one failure
// domain; undefined topologies keep the flat-cluster behavior.
func (t Topology) Defined() bool { return t.Zones > 1 }

// domainOfNode maps a node index to its domain at the given level
// under static packing: consecutive nodes fill a rack, consecutive
// racks fill a zone, zones wrap round-robin so any node count spreads
// across all zones.
func (t Topology) domainOfNode(node int, level DomainLevel) int {
	if node < 0 {
		return -1
	}
	switch level {
	case DomainNode:
		return node
	}
	npr := t.NodesPerRack
	if npr <= 0 {
		npr = 1
	}
	rack := node / npr
	if level == DomainRack {
		return rack
	}
	rpz := t.RacksPerZone
	if rpz <= 0 {
		rpz = 1
	}
	zone := (rack / rpz) % t.Zones
	if level == DomainZone {
		return zone
	}
	zpr := t.ZonesPerRegion
	if zpr <= 0 {
		zpr = t.Zones
	}
	return zone / zpr
}

// DomainOfVM maps a market VM id to its domain at the given level.
// VM ids are spread round-robin across zones so that the zone mix of
// a leased pool stays stationary as VMs churn: vm id % Zones is the
// zone, and racks subdivide each zone the same way.
func (t Topology) DomainOfVM(id int, level DomainLevel) int {
	if !t.Defined() || id < 0 {
		return 0
	}
	switch level {
	case DomainGPU, DomainNode:
		return id
	case DomainRack:
		rpz := t.RacksPerZone
		if rpz <= 0 {
			rpz = 1
		}
		return id % (t.Zones * rpz)
	case DomainZone:
		return id % t.Zones
	default: // DomainRegion
		zpr := t.ZonesPerRegion
		if zpr <= 0 {
			zpr = t.Zones
		}
		return (id % t.Zones) / zpr
	}
}

// NumDomains reports how many distinct domains exist at a level for
// VM-id mapping purposes (0 for undefined topologies).
func (t Topology) NumDomains(level DomainLevel) int {
	if !t.Defined() {
		return 0
	}
	switch level {
	case DomainRack:
		rpz := t.RacksPerZone
		if rpz <= 0 {
			rpz = 1
		}
		return t.Zones * rpz
	case DomainZone:
		return t.Zones
	case DomainRegion:
		zpr := t.ZonesPerRegion
		if zpr <= 0 {
			zpr = t.Zones
		}
		return (t.Zones + zpr - 1) / zpr
	default:
		return 0
	}
}

// SpotTopology builds a standard zoned spot topology: racks of
// ethernet-joined nodes inside each zone, zones joined by a metro WAN
// ring, all in one region.
func SpotTopology(zones, racksPerZone, nodesPerRack int) Topology {
	return Topology{
		Zones:        zones,
		NodesPerRack: nodesPerRack,
		RacksPerZone: racksPerZone,
		CrossRack:    Ethernet10G,
		CrossZone:    ZoneWAN,
		CrossRegion:  RegionWAN,
	}
}

// CrossLink reports the link charged for traffic crossing domains at
// the given level, falling back inward through defined links and
// ultimately to the cluster's Inter link.
func (c Cluster) CrossLink(level DomainLevel) Link {
	t := c.Topo
	if !t.Defined() {
		return c.Inter
	}
	pick := func(l Link, fallback Link) Link {
		if l.BandwidthBps > 0 {
			return l
		}
		return fallback
	}
	rack := pick(t.CrossRack, c.Inter)
	zone := pick(t.CrossZone, rack)
	region := pick(t.CrossRegion, zone)
	switch level {
	case DomainGPU:
		return c.VM.Intra
	case DomainNode:
		return c.Inter
	case DomainRack:
		return rack
	case DomainZone:
		return zone
	default:
		return region
	}
}

// DomainOfRank maps a GPU rank to its failure domain at the given
// level under the cluster's static node packing.
func (c Cluster) DomainOfRank(rank int, level DomainLevel) int {
	if rank < 0 {
		return -1
	}
	if level == DomainGPU {
		return rank
	}
	node := rank / c.VM.GPUs
	if !c.Topo.Defined() {
		if level == DomainNode {
			return node
		}
		return 0
	}
	return c.Topo.domainOfNode(node, level)
}
