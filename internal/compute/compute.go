// Package compute models GPU kernel execution time for pipeline stages.
// Forward time follows the standard flops accounting (≈2 FLOPs per
// parameter per token), backward is twice forward, and recompute equals
// forward (§2: gradient checkpointing "adds about 33% overhead").
// Achieved efficiency rises with micro-batch size and saturates, which
// reproduces the paper's observation that in BERT-large m=8 performs
// ≈26% better per example than m=4 (§4.1).
package compute

import (
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/simtime"
)

// CostModel converts stage work into kernel time on a given GPU.
type CostModel struct {
	// GPU is the device executing the work.
	GPU hw.GPU
	// MaxEfficiency is the fraction of peak flops achieved by large,
	// well-shaped kernels. ~0.45 is typical for fp16 transformers on V100.
	MaxEfficiency float64
	// HalfSatBatch is the micro-batch size at which efficiency reaches
	// half of MaxEfficiency.
	HalfSatBatch float64
	// LaunchOverhead is fixed per-task overhead (kernel launches,
	// optimizer glue) added to every forward/backward/recompute call.
	LaunchOverhead simtime.Duration
	// IntraLayerPenalty scales efficiency down when a layer's matmuls
	// are split across devices (tensor parallelism shrinks the
	// per-device GEMM). 1.0 means no split.
	IntraLayerPenalty float64
}

// Default is the calibrated V100 cost model used across experiments.
func Default() CostModel {
	return CostModel{
		GPU:               hw.V100,
		MaxEfficiency:     0.45,
		HalfSatBatch:      2.0,
		LaunchOverhead:    300 * simtime.Microsecond,
		IntraLayerPenalty: 1.0,
	}
}

// Efficiency reports achieved fraction of peak flops at micro-batch
// size m.
func (c CostModel) Efficiency(m int) float64 {
	if m < 1 {
		m = 1
	}
	eff := c.MaxEfficiency * float64(m) / (float64(m) + c.HalfSatBatch)
	if c.IntraLayerPenalty > 0 && c.IntraLayerPenalty < 1 {
		eff *= c.IntraLayerPenalty
	}
	return eff
}

// RawKernelTime converts a flop count into kernel time at micro-batch
// size m, with no launch overhead — the quantity a profiler isolates.
func (c CostModel) RawKernelTime(flops float64, m int) simtime.Duration {
	eff := c.Efficiency(m)
	sec := flops / (c.GPU.PeakFlops * eff)
	return simtime.FromSeconds(sec)
}

// timeForFlops converts a flop count into kernel time.
func (c CostModel) timeForFlops(flops float64, m int) simtime.Duration {
	return c.RawKernelTime(flops, m) + c.LaunchOverhead
}

// Forward reports the forward-pass time of a stage for one micro-batch
// of size m.
func (c CostModel) Forward(st model.Stage, m int) simtime.Duration {
	return c.timeForFlops(st.FwdFlops*float64(m), m)
}

// Backward reports the backward-pass time (2× forward compute).
func (c CostModel) Backward(st model.Stage, m int) simtime.Duration {
	return c.timeForFlops(2*st.FwdFlops*float64(m), m)
}

// Recompute reports the activation-recomputation time, equal to the
// forward pass (§3.1).
func (c CostModel) Recompute(st model.Stage, m int) simtime.Duration {
	return c.Forward(st, m)
}

// OpForward reports the forward time of a single op, used by the
// cut-point profiler.
func (c CostModel) OpForward(op model.Op, m int) simtime.Duration {
	return c.timeForFlops(op.FwdFlops*float64(m), m)
}

// OptimizerStep reports the weight-update time for a stage: an
// element-wise pass over parameters and optimizer state, memory-bound.
// With hostOffload the state crosses PCIe both ways (the 200B
// configuration, §7.1.1).
func (c CostModel) OptimizerStep(st model.Stage, hostOffload bool) simtime.Duration {
	return c.OptimizerForParams(st.Params, hostOffload)
}

// OptimizerForParams reports the weight-update time for n parameters.
func (c CostModel) OptimizerForParams(n int64, hostOffload bool) simtime.Duration {
	bytes := float64(n) * model.BytesPerParamState
	// On-device HBM sweep at ~900 GB/s read+write.
	t := simtime.FromSeconds(2 * bytes / 900e9)
	if hostOffload {
		// Round trip over PCIe at ~12 GB/s.
		t += simtime.FromSeconds(2 * bytes / 12e9)
	}
	return t + c.LaunchOverhead
}
