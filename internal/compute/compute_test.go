package compute

import (
	"testing"

	"repro/internal/model"
	"repro/internal/simtime"
)

func stageFor(t *testing.T, s *model.Spec, p int) model.Stage {
	t.Helper()
	k := s.NumLayers - 1
	if k < p-1 {
		k = p - 1
	}
	cuts, err := model.FindCutPoints(s, k)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := model.Partition(s, cuts, p, true)
	if err != nil {
		t.Fatal(err)
	}
	return stages[p/2]
}

func TestEfficiencyMonotoneSaturating(t *testing.T) {
	c := Default()
	prev := 0.0
	for m := 1; m <= 64; m *= 2 {
		e := c.Efficiency(m)
		if e <= prev {
			t.Fatalf("efficiency not increasing at m=%d", m)
		}
		if e > c.MaxEfficiency {
			t.Fatalf("efficiency %v above max %v", e, c.MaxEfficiency)
		}
		prev = e
	}
	if c.Efficiency(0) != c.Efficiency(1) {
		t.Fatal("m<1 must clamp to 1")
	}
}

func TestMicroBatchEfficiencyMatchesPaper(t *testing.T) {
	// §4.1: "in BERT-large, m=8 performs 26% better than m=4"
	// (per-example throughput). Our curve should land in that region.
	c := Default()
	gain := c.Efficiency(8) / c.Efficiency(4)
	if gain < 1.1 || gain > 1.4 {
		t.Fatalf("eff(8)/eff(4) = %.3f, want ≈1.26", gain)
	}
}

func TestBackwardTwiceForward(t *testing.T) {
	st := stageFor(t, model.GPT2XL2B(), 9)
	c := Default()
	f := c.Forward(st, 4) - c.LaunchOverhead
	b := c.Backward(st, 4) - c.LaunchOverhead
	ratio := float64(b) / float64(f)
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("backward/forward = %.3f, want 2", ratio)
	}
	if c.Recompute(st, 4) != c.Forward(st, 4) {
		t.Fatal("recompute must equal forward")
	}
}

func TestForwardScalesWithMicroBatch(t *testing.T) {
	st := stageFor(t, model.GPT2XL2B(), 9)
	c := Default()
	f4 := c.Forward(st, 4)
	f8 := c.Forward(st, 8)
	// Twice the work at higher efficiency: time grows, but less than 2x.
	if f8 <= f4 {
		t.Fatal("larger micro-batch cannot be faster in absolute time")
	}
	if float64(f8) >= 2*float64(f4) {
		t.Fatal("larger micro-batch must be more efficient per example")
	}
}

func TestIntraLayerPenalty(t *testing.T) {
	st := stageFor(t, model.GPT2XL2B(), 9)
	whole := Default()
	split := Default()
	split.IntraLayerPenalty = 0.8
	if split.Forward(st, 4) <= whole.Forward(st, 4) {
		t.Fatal("intra-layer split must slow kernels down")
	}
}

func TestWholeModelThroughputPlausible(t *testing.T) {
	// Sanity-check absolute throughput scale: a 2.5B model across 9
	// stages at m=4 should put per-GPU useful throughput in the
	// low-single-digit ex/s range (paper: ~1.5-1.8 ex/s/GPU incl.
	// pipeline overheads).
	s := model.GPT2XL2B()
	cuts, err := model.FindCutPoints(s, 53)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := model.Partition(s, cuts, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	c := Default()
	var perStage simtime.Duration
	for _, st := range stages {
		d := c.Forward(st, 4) + c.Backward(st, 4) + c.Recompute(st, 4)
		if d > perStage {
			perStage = d
		}
	}
	// Steady-state pipeline: one micro-batch of 4 examples per stage-time.
	exPerSec := 4 / perStage.Seconds() / 9 // per GPU
	if exPerSec < 0.5 || exPerSec > 6 {
		t.Fatalf("per-GPU throughput %.2f ex/s implausible for 2.5B", exPerSec)
	}
}

func TestOptimizerStep(t *testing.T) {
	st := stageFor(t, model.GPT2TwoHundredB(), 102)
	c := Default()
	onDev := c.OptimizerStep(st, false)
	offload := c.OptimizerStep(st, true)
	if offload <= onDev {
		t.Fatal("host offload must cost more than on-device update")
	}
	if onDev <= 0 {
		t.Fatal("optimizer step must take time")
	}
}
