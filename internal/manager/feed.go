package manager

import (
	"repro/internal/simtime"
	"repro/internal/spot"
)

// Feed supplies fleet events to a timeline run. The historical manager
// consumed a pregenerated []spot.Event; a Feed generalizes that to a
// live source — the fleet arbiter leases and revokes VMs while the
// timeline runs, and its revocations arrive through the same interface
// as market preemptions, indistinguishable at this layer.
type Feed interface {
	// Pop returns the next event due at or before now, consuming it.
	// The manager calls Pop at the top of every control-loop step, so
	// a live feed can also treat it as the job's progress heartbeat:
	// an event popped here has been observed by the control loop
	// before the step completes.
	Pop(now simtime.Time) (spot.Event, bool)
	// NextAt reports when the feed wants the control loop to wake
	// next: the next queued event for a pregenerated trace, or the
	// next arbiter probe tick for a live feed. ok == false means the
	// feed is exhausted (no further events will ever arrive).
	NextAt(now simtime.Time) (simtime.Time, bool)
	// Release tells the feed the job voluntarily returned a VM to the
	// market at the given instant (a dollar objective shedding
	// uneconomical capacity). A pregenerated trace ignores it — the
	// release is a one-way door there — while the arbiter returns the
	// VM to circulation for other jobs.
	Release(vm int, at simtime.Time)
	// Driven reports whether the feed wakes the control loop on its
	// own cadence (a live arbiter) rather than only at queued event
	// times. Driven feeds produce eventless wakes while the job is
	// down; the control loop skips the futile morph attempt those
	// would otherwise trigger.
	Driven() bool
}

// sliceFeed adapts a pregenerated event trace to the Feed interface —
// the classic single-job path, bit-identical to the historical
// index-walk over the slice.
type sliceFeed struct {
	events []spot.Event
	idx    int
}

func (f *sliceFeed) Pop(now simtime.Time) (spot.Event, bool) {
	if f.idx < len(f.events) && f.events[f.idx].At <= now {
		ev := f.events[f.idx]
		f.idx++
		return ev, true
	}
	return spot.Event{}, false
}

func (f *sliceFeed) NextAt(simtime.Time) (simtime.Time, bool) {
	if f.idx < len(f.events) {
		return f.events[f.idx].At, true
	}
	return 0, false
}

func (f *sliceFeed) Release(int, simtime.Time) {}

func (f *sliceFeed) Driven() bool { return false }
