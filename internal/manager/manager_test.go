package manager

import (
	"reflect"
	"testing"

	"repro/internal/autoconfig"
	"repro/internal/calibrate"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/simtime"
	"repro/internal/spot"
	"repro/internal/testbed"
)

func TestDetectStragglers(t *testing.T) {
	hb := map[int]float64{1: 1.0, 2: 1.02, 3: 0.98, 4: 1.35, 5: 1.01}
	got := DetectStragglers(hb, 1.2)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("stragglers = %v, want [4]", got)
	}
	// Too few reports: no flags.
	if DetectStragglers(map[int]float64{1: 1, 2: 9}, 1.2) != nil {
		t.Fatal("2 reports must not flag")
	}
	// Healthy fleet: no flags.
	if got := DetectStragglers(map[int]float64{1: 1, 2: 1.01, 3: 0.99, 4: 1.02}, 1.2); len(got) != 0 {
		t.Fatalf("healthy fleet flagged: %v", got)
	}
}

func TestDetectStragglersMultiple(t *testing.T) {
	hb := map[int]float64{}
	for i := 0; i < 20; i++ {
		hb[i] = 1.0 + float64(i%3)*0.01
	}
	hb[7] = 1.4
	hb[13] = 1.3
	got := DetectStragglers(hb, 1.2)
	if len(got) != 2 || got[0] != 7 || got[1] != 13 {
		t.Fatalf("stragglers = %v, want [7 13]", got)
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptions()
	bad.CheckpointEvery = 0
	if bad.Validate() == nil {
		t.Fatal("CheckpointEvery=0 must fail")
	}
	bad = DefaultOptions()
	bad.StragglerThreshold = 0.9
	if bad.Validate() == nil {
		t.Fatal("threshold<1 must fail")
	}
	bad = DefaultOptions()
	bad.Policy = MorphPolicy(9)
	if bad.Validate() == nil {
		t.Fatal("unknown policy must fail")
	}
	bad = DefaultOptions()
	bad.Policy = PolicyConstant
	bad.ConstOverhead = 0
	if bad.Validate() == nil {
		t.Fatal("constant policy without an overhead must fail")
	}
}

func managerFor(t *testing.T) *Manager {
	return managerWith(t, DefaultOptions(), nil)
}

// managerWith builds a manager with explicit options and, when plan is
// non-nil, a caller-supplied Planner.
func managerWith(t *testing.T, opts Options, plan *autoconfig.Planner) *Manager {
	t.Helper()
	cluster := hw.SpotCluster(hw.NC6v3, 150)
	tb := testbed.New(cluster, 31)
	spec := model.GPT2XL2B()
	params, err := calibrate.Run(spec, tb, calibrate.Options{
		MicroSizes:  []int{4, 8},
		GPUsPerNode: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := model.FindCutPoints(spec, 53)
	if err != nil {
		t.Fatal(err)
	}
	in := autoconfig.Inputs{
		Spec:        spec,
		Cuts:        cuts,
		Params:      params,
		GPUMem:      16 << 30,
		MTotal:      8192,
		GPUsPerNode: 1,
	}
	if plan == nil {
		return New(in, tb, opts, 77)
	}
	plan.SetInputs(in)
	return NewWithPlanner(in, tb, plan, opts, 77)
}

func TestRunTimelineMorphsWithFleet(t *testing.T) {
	mg := managerFor(t)
	mk := spot.NewMarket(1, 120, 55)
	events := spot.EventTrace(mk, 150, 12*simtime.Hour, 10*simtime.Minute)
	points, stats, err := mg.RunTimeline(events, 12*simtime.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no timeline points")
	}
	if stats.MiniBatches <= 0 || stats.Examples <= 0 {
		t.Fatalf("no training happened: %+v", stats)
	}
	if stats.Morphs == 0 {
		t.Fatal("a 12-hour spot run must morph at least once")
	}
	if stats.Preemptions == 0 {
		t.Fatal("trace should contain preemptions")
	}
	if stats.Checkpoints == 0 {
		t.Fatal("continuous checkpointing never ran")
	}
	// Time monotone; GPUs never negative.
	for i := 1; i < len(points); i++ {
		if points[i].At < points[i-1].At {
			t.Fatal("timeline must be monotone")
		}
		if points[i].GPUs < 0 {
			t.Fatal("negative GPUs")
		}
	}
}

func TestTimelinePerGPUStability(t *testing.T) {
	// Figure 8's takeaway: total throughput swings with the fleet
	// (up to 5x) while per-GPU throughput stays within a much
	// tighter band (~15%). Check the per-GPU spread across morphs is
	// far smaller than the total spread.
	mg := managerFor(t)
	mk := spot.NewMarket(1, 120, 99)
	events := spot.EventTrace(mk, 150, 24*simtime.Hour, 10*simtime.Minute)
	points, _, err := mg.RunTimeline(events, 24*simtime.Hour)
	if err != nil {
		t.Fatal(err)
	}
	var totMin, totMax, perMin, perMax float64
	n := 0
	for _, p := range points {
		if p.ExPerSec <= 0 || p.GPUs <= 0 || p.Config.GPUsUsed == 0 {
			continue
		}
		per := p.ExPerSec / float64(p.Config.GPUsUsed)
		if n == 0 {
			totMin, totMax, perMin, perMax = p.ExPerSec, p.ExPerSec, per, per
		}
		n++
		totMin = min(totMin, p.ExPerSec)
		totMax = max(totMax, p.ExPerSec)
		perMin = min(perMin, per)
		perMax = max(perMax, per)
	}
	if n < 3 {
		t.Skip("not enough morph segments to compare")
	}
	totSpread := totMax / totMin
	perSpread := perMax / perMin
	if perSpread >= totSpread {
		t.Fatalf("per-GPU spread %.2f must be tighter than total spread %.2f", perSpread, totSpread)
	}
	if perSpread > 1.8 {
		t.Fatalf("per-GPU throughput spread %.2f too wide (paper: ~15%%)", perSpread)
	}
}

func TestPreemptionRollsBackToCheckpoint(t *testing.T) {
	mg := managerFor(t)
	// Hand-built trace: a stable fleet, then one preemption.
	var events []spot.Event
	for i := 0; i < 72; i++ {
		events = append(events, spot.Event{At: 0, Kind: spot.Alloc, VM: i, GPUs: 1})
	}
	events = append(events, spot.Event{At: simtime.Time(4 * simtime.Hour), Kind: spot.Preempt, VM: 3, GPUs: 1})
	_, stats, err := mg.RunTimeline(events, 8*simtime.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Preemptions != 1 {
		t.Fatalf("preemptions = %d", stats.Preemptions)
	}
	if stats.LostMiniBatches < 0 || stats.LostMiniBatches >= mg.Opts.CheckpointEvery {
		t.Fatalf("lost work %d outside [0, CheckpointEvery)", stats.LostMiniBatches)
	}
	if stats.Examples <= 0 {
		t.Fatal("training made no progress")
	}
}

// TestTimelineCappedPlannerBitIdentical is the eviction golden test at
// system level: replaying a 24-hour morphing timeline through a
// Planner with pathologically tight cache bounds must reproduce the
// default-planner timeline bit for bit — eviction may only cost
// recomputation, never change a decision.
func TestTimelineCappedPlannerBitIdentical(t *testing.T) {
	run := func(plan *autoconfig.Planner) ([]TimelinePoint, Stats) {
		mg := managerWith(t, DefaultOptions(), plan)
		mk := spot.NewMarket(1, 120, 99)
		events := spot.EventTrace(mk, 150, 24*simtime.Hour, 10*simtime.Minute)
		points, stats, err := mg.RunTimeline(events, 24*simtime.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return points, stats
	}
	wantPoints, wantStats := run(nil)
	tight := autoconfig.NewPlannerCapped(autoconfig.Inputs{}, 2, 1)
	gotPoints, gotStats := run(tight)
	if gotStats != wantStats {
		t.Fatalf("capped planner changed stats:\nwant %+v\ngot  %+v", wantStats, gotStats)
	}
	if len(gotPoints) != len(wantPoints) {
		t.Fatalf("timeline lengths differ: %d vs %d", len(wantPoints), len(gotPoints))
	}
	for i := range wantPoints {
		if !reflect.DeepEqual(wantPoints[i], gotPoints[i]) {
			t.Fatalf("point %d diverged:\nwant %+v\ngot  %+v", i, wantPoints[i], gotPoints[i])
		}
	}
	ts := tight.Stats()
	if ts.CostEvictions == 0 || ts.DecisionEvictions == 0 {
		t.Fatalf("tight caps must rotate across a 24h timeline: %+v", ts)
	}
}

// TestPolicyDowntimeOrdering replays one trace under all three pricing
// policies: modeled pricing must undercut the flat 4-minute constant
// on this small model, and morph-or-hold must hold at least once and
// never reconfigure longer than always-morphing.
func TestPolicyDowntimeOrdering(t *testing.T) {
	run := func(p MorphPolicy) Stats {
		opts := DefaultOptions()
		opts.Policy = p
		mg := managerWith(t, opts, nil)
		mk := spot.NewMarket(1, 120, 55)
		events := spot.EventTrace(mk, 150, 12*simtime.Hour, 10*simtime.Minute)
		_, stats, err := mg.RunTimeline(events, 12*simtime.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	constant := run(PolicyConstant)
	modeled := run(PolicyModeled)
	hold := run(PolicyMorphOrHold)
	if constant.Holds != 0 || modeled.Holds != 0 {
		t.Fatalf("only morph-or-hold may hold: constant %d, modeled %d", constant.Holds, modeled.Holds)
	}
	if hold.Holds == 0 {
		t.Fatal("a 12h spot trace must produce at least one hold decision")
	}
	if modeled.MorphDowntime >= constant.MorphDowntime {
		t.Fatalf("modeled reconfiguration %v must undercut the 4-minute constant's %v",
			modeled.MorphDowntime, constant.MorphDowntime)
	}
	if hold.MorphDowntime >= modeled.MorphDowntime {
		t.Fatalf("morph-or-hold %v must undercut always-morph %v", hold.MorphDowntime, modeled.MorphDowntime)
	}
	for _, s := range []Stats{constant, modeled, hold} {
		if s.MorphDowntime > s.Downtime {
			t.Fatalf("reconfiguration downtime %v exceeds total %v", s.MorphDowntime, s.Downtime)
		}
	}
}

func TestTimelineDeterminism(t *testing.T) {
	run := func() Stats {
		mg := managerFor(t)
		mk := spot.NewMarket(1, 120, 5)
		events := spot.EventTrace(mk, 140, 6*simtime.Hour, 10*simtime.Minute)
		_, stats, err := mg.RunTimeline(events, 6*simtime.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seeds must give identical stats:\n%+v\n%+v", a, b)
	}
}
