package manager

import (
	"reflect"
	"testing"

	"repro/internal/autoconfig"
	"repro/internal/price"
	"repro/internal/simtime"
	"repro/internal/spot"
)

// volatileCurve is the non-constant price curve the dollar golden
// tests run under: mean-reverting around $2.40/GPU·h with pronounced
// excursions, deterministic under its seed.
func volatileCurve(t *testing.T, horizon simtime.Duration) *price.Curve {
	t.Helper()
	c, err := price.MeanReverting(price.MROptions{
		Mean: 2.40, Vol: 0.18, Reversion: 0.12, Horizon: horizon,
	}, 61)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// scrubDollars zeroes the dollar-accounting fields so a priced run
// can be compared against an unpriced one field-for-field.
func scrubDollars(s Stats) Stats {
	s.DollarsSpent, s.DollarsCompute, s.DollarsReconfig, s.DollarsIdle = 0, 0, 0, 0
	return s
}

// TestConstantCurveMaxThroughputBitIdentical is the zero-behavior
// acceptance test: attaching a price curve under the default
// max-throughput objective must only *account* — every decision,
// event and counter matches the unpriced run bit for bit, and the
// dollar fields are the one addition.
func TestConstantCurveMaxThroughputBitIdentical(t *testing.T) {
	mk := spot.NewMarket(1, 120, 55)
	horizon := 12 * simtime.Hour
	events := spot.EventTrace(mk, 150, horizon, 10*simtime.Minute)

	run := func(curve *price.Curve) ([]TimelinePoint, Stats) {
		opts := DefaultOptions()
		opts.Prices = curve
		mg := managerWith(t, opts, nil)
		points, stats, err := mg.RunTimeline(events, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return points, stats
	}
	freePoints, freeStats := run(nil)
	paidPoints, paidStats := run(price.Constant(2.40))

	if scrubDollars(paidStats) != freeStats {
		t.Fatalf("constant curve changed behavior:\nfree %+v\npaid %+v", freeStats, scrubDollars(paidStats))
	}
	if len(paidPoints) != len(freePoints) {
		t.Fatalf("point counts differ: %d vs %d", len(freePoints), len(paidPoints))
	}
	for i := range freePoints {
		p := paidPoints[i]
		if p.DollarsSpent <= 0 && p.At > 0 {
			t.Fatalf("point %d carries no cumulative spend: %+v", i, p)
		}
		p.DollarsSpent = 0
		if !reflect.DeepEqual(p, freePoints[i]) {
			t.Fatalf("point %d diverged:\nfree %+v\npaid %+v", i, freePoints[i], p)
		}
	}
	if paidStats.DollarsSpent <= 0 {
		t.Fatal("no dollars accounted")
	}
	if got := paidStats.DollarsCompute + paidStats.DollarsReconfig + paidStats.DollarsIdle; got != paidStats.DollarsSpent {
		t.Fatalf("buckets %v don't sum to total %v", got, paidStats.DollarsSpent)
	}
	if paidStats.VMsReleased != 0 {
		t.Fatal("max-throughput must never release VMs")
	}
	if paidStats.DollarsPerExample() <= 0 {
		t.Fatal("no $/example")
	}
	// Sanity: total spend is bounded by pricing the full target fleet
	// for the whole horizon.
	ceiling := 2.40 * 150 * horizon.Seconds() / 3600
	if paidStats.DollarsSpent > ceiling {
		t.Fatalf("spend %v exceeds the full-fleet ceiling %v", paidStats.DollarsSpent, ceiling)
	}
}

// TestMinDollarSpendsLessPerExample is the tentpole acceptance golden:
// on the same trace under a non-constant curve, the min-$/example
// objective must realize strictly cheaper examples than max
// throughput — by releasing idle capacity, shedding marginal replicas
// through price spikes, and holding when a morph's dollars don't pay.
func TestMinDollarSpendsLessPerExample(t *testing.T) {
	mk := spot.NewMarket(1, 120, 55)
	horizon := 24 * simtime.Hour
	events := spot.EventTrace(mk, 150, horizon, 10*simtime.Minute)
	curve := volatileCurve(t, horizon)

	run := func(obj autoconfig.Objective) Stats {
		opts := DefaultOptions()
		opts.Prices = curve
		opts.Objective = obj
		mg := managerWith(t, opts, nil)
		_, stats, err := mg.RunTimeline(events, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	thru := run(autoconfig.Objective{Kind: autoconfig.ObjMaxThroughput})
	dollar := run(autoconfig.Objective{Kind: autoconfig.ObjMinDollarPerExample})

	t.Logf("max-throughput: %.2fM ex, $%.0f, $%.2f/kex, released %d",
		thru.Examples/1e6, thru.DollarsSpent, 1000*thru.DollarsPerExample(), thru.VMsReleased)
	t.Logf("min-dollar:     %.2fM ex, $%.0f, $%.2f/kex, released %d",
		dollar.Examples/1e6, dollar.DollarsSpent, 1000*dollar.DollarsPerExample(), dollar.VMsReleased)

	if dollar.Examples <= 0 || thru.Examples <= 0 {
		t.Fatal("a run made no progress")
	}
	if dollar.DollarsPerExample() >= thru.DollarsPerExample() {
		t.Fatalf("min-dollar $/ex %.6g must undercut max-throughput %.6g",
			dollar.DollarsPerExample(), thru.DollarsPerExample())
	}
	if dollar.VMsReleased == 0 {
		t.Fatal("the dollar objective never shrank the fleet")
	}
	if thru.VMsReleased != 0 {
		t.Fatal("max-throughput must not release")
	}
	if dollar.DollarsSpent >= thru.DollarsSpent {
		t.Fatalf("min-dollar total $%.0f should undercut max-throughput $%.0f", dollar.DollarsSpent, thru.DollarsSpent)
	}
}

// TestDeadlineObjectiveMeetsTargetCheaper: a deadline at a reachable
// target must be met while spending fewer dollars than flat-out
// training — ahead of schedule, the manager buys cheaper examples.
func TestDeadlineObjectiveMeetsTargetCheaper(t *testing.T) {
	mk := spot.NewMarket(1, 120, 55)
	horizon := 12 * simtime.Hour
	events := spot.EventTrace(mk, 150, horizon, 10*simtime.Minute)
	curve := volatileCurve(t, horizon)

	run := func(obj autoconfig.Objective) Stats {
		opts := DefaultOptions()
		opts.Prices = curve
		opts.Objective = obj
		mg := managerWith(t, opts, nil)
		_, stats, err := mg.RunTimeline(events, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	thru := run(autoconfig.Objective{Kind: autoconfig.ObjMaxThroughput})
	target := 0.5 * thru.Examples
	dead := run(autoconfig.Objective{
		Kind:           autoconfig.ObjDeadline,
		DeadlineAt:     simtime.Time(horizon),
		TargetExamples: target,
	})
	t.Logf("deadline: %.2fM ex (target %.2fM), $%.0f vs flat-out $%.0f",
		dead.Examples/1e6, target/1e6, dead.DollarsSpent, thru.DollarsSpent)
	if dead.Examples < target {
		t.Fatalf("deadline missed: %.0f < %.0f", dead.Examples, target)
	}
	if dead.DollarsSpent >= thru.DollarsSpent {
		t.Fatalf("deadline run spent $%.0f, no cheaper than flat-out $%.0f", dead.DollarsSpent, thru.DollarsSpent)
	}
}

// TestHoldDiscountCalibrationDirection goldens the calibrated
// preempt-next discount (the ROADMAP item replacing the fixed ½): on
// a preemption-dominated trace the hazard ratio prices the
// post-downtime window below ½, so hold decisions can only become
// more frequent, never less.
func TestHoldDiscountCalibrationDirection(t *testing.T) {
	// A tight market: the pool is smaller than the target, so
	// preemptions cluster while allocations trickle — gap_preempt
	// well under gap_alloc.
	mk := spot.NewMarket(1, 90, 55)
	horizon := 24 * simtime.Hour
	events := spot.EventTrace(mk, 150, horizon, 10*simtime.Minute)

	run := func(legacy bool) Stats {
		mg := managerWith(t, DefaultOptions(), nil)
		SetLegacyHoldDiscount(mg, legacy)
		_, stats, err := mg.RunTimeline(events, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	legacy := run(true)
	calibrated := run(false)
	t.Logf("holds: legacy ½ %d, calibrated %d", legacy.Holds, calibrated.Holds)
	if calibrated.Holds < legacy.Holds {
		t.Fatalf("calibrated discount reduced holds on a bursty trace: %d < %d",
			calibrated.Holds, legacy.Holds)
	}
	if calibrated.Holds == 0 {
		t.Fatal("bursty trace produced no holds at all")
	}
}

// TestDegradingVMCaughtMidSegment is the fail-stutter fix scenario: a
// VM that starts stuttering in the middle of a stable segment must be
// flagged by a periodic heartbeat check, excluded, and the mini-batch
// time re-measured — before the next fleet event, not at it.
func TestDegradingVMCaughtMidSegment(t *testing.T) {
	// Stable hand-built fleet: 72 VMs at t=0, next fleet event at 6h.
	var events []spot.Event
	for i := 0; i < 72; i++ {
		events = append(events, spot.Event{At: 0, Kind: spot.Alloc, VM: i, GPUs: 1})
	}
	events = append(events, spot.Event{At: simtime.Time(6 * simtime.Hour), Kind: spot.Preempt, VM: 5, GPUs: 1})
	horizon := 8 * simtime.Hour
	degradeAt := simtime.Time(2 * simtime.Hour)

	run := func(degrade bool) ([]TimelinePoint, Stats) {
		mg := managerWith(t, DefaultOptions(), nil)
		if degrade {
			mg.Degrade = []Degradation{{VM: 3, At: degradeAt, Factor: 1.5}}
		}
		points, stats, err := mg.RunTimeline(events, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return points, stats
	}
	basePoints, baseStats := run(false)
	degPoints, degStats := run(true)

	morphsBetween := func(points []TimelinePoint) []TimelinePoint {
		var out []TimelinePoint
		for _, p := range points {
			if p.At > degradeAt && p.At < simtime.Time(6*simtime.Hour) &&
				(p.Event == "morph" || p.Event == "p") {
				out = append(out, p)
			}
		}
		return out
	}
	if extra := morphsBetween(basePoints); len(extra) != 0 {
		t.Fatalf("healthy run reconfigured mid-segment: %+v", extra)
	}
	caught := morphsBetween(degPoints)
	if len(caught) == 0 {
		t.Fatal("degrading VM not caught before the next fleet event")
	}
	// Caught within roughly one heartbeat interval of the onset.
	limit := degradeAt.Add(2 * DefaultOptions().HeartbeatEvery)
	if caught[0].At > limit {
		t.Fatalf("caught at %v, later than one heartbeat interval after onset (%v)", caught[0].At, limit)
	}
	if degStats.StragglersExcluded != baseStats.StragglersExcluded+1 {
		t.Fatalf("exclusions: %d with degradation vs %d without, want +1",
			degStats.StragglersExcluded, baseStats.StragglersExcluded)
	}
}

// TestHeartbeatDisabledMatchesMorphSegmentsOnly: HeartbeatEvery = 0
// restores the legacy morph-segments-only detection — a degrading VM
// survives until the next fleet event.
func TestHeartbeatDisabledMatchesMorphSegmentsOnly(t *testing.T) {
	var events []spot.Event
	for i := 0; i < 72; i++ {
		events = append(events, spot.Event{At: 0, Kind: spot.Alloc, VM: i, GPUs: 1})
	}
	events = append(events, spot.Event{At: simtime.Time(6 * simtime.Hour), Kind: spot.Preempt, VM: 5, GPUs: 1})
	opts := DefaultOptions()
	opts.HeartbeatEvery = 0
	mg := managerWith(t, opts, nil)
	mg.Degrade = []Degradation{{VM: 3, At: simtime.Time(2 * simtime.Hour), Factor: 1.5}}
	points, _, err := mg.RunTimeline(events, 8*simtime.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.At > simtime.Time(2*simtime.Hour) && p.At < simtime.Time(6*simtime.Hour) &&
			(p.Event == "morph" || p.Event == "p") {
			t.Fatalf("disabled heartbeats still caught the VM mid-segment: %+v", p)
		}
	}
}

// TestValidateDollarOptions pins the new option checks.
func TestValidateDollarOptions(t *testing.T) {
	bad := DefaultOptions()
	bad.HeartbeatEvery = -simtime.Minute
	if bad.Validate() == nil {
		t.Fatal("negative HeartbeatEvery must fail")
	}
	bad = DefaultOptions()
	bad.Objective = autoconfig.Objective{Kind: autoconfig.ObjMinDollarPerExample}
	if bad.Validate() == nil {
		t.Fatal("dollar objective without prices must fail")
	}
	bad.Prices = price.Constant(2)
	if err := bad.Validate(); err != nil {
		t.Fatal(err)
	}
	bad = DefaultOptions()
	bad.Objective = autoconfig.Objective{Kind: autoconfig.ObjDeadline}
	bad.Prices = price.Constant(2)
	if bad.Validate() == nil {
		t.Fatal("deadline objective without a target must fail")
	}
}
