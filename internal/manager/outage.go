package manager

import (
	"sort"

	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/restart"
	"repro/internal/simtime"
)

// DomainOutage schedules a correlated mass preemption scoped to one
// failure domain: at At, every VM mapped to Domain at Level is gone.
// The scenario compiler pairs each outage with the per-VM Preempt
// events that empty the domain; the manager's job here is the
// checkpoint-survivability accounting — whether the §4.5 shards still
// exist somewhere after the domain vanished, and what resuming from
// the surviving replicas costs.
type DomainOutage struct {
	At     simtime.Time
	Level  hw.DomainLevel
	Domain int
}

// recordCheckpointDomains snapshots which failure domains hold the
// checkpoint just written: the live VMs' domains at each tracked
// level. With replication on, Policy.Place spreads every shard over
// min(Replicas, |domains|) of these; with it off, each shard lives
// only in its writer's domain. No-op on flat clusters.
func (r *timelineRun) recordCheckpointDomains() {
	topo := r.mg.RM.Cluster.Topo
	if !topo.Defined() {
		return
	}
	doms := map[hw.DomainLevel]map[int]bool{
		hw.DomainRack:   make(map[int]bool),
		hw.DomainZone:   make(map[int]bool),
		hw.DomainRegion: make(map[int]bool),
	}
	for id := range r.live {
		doms[hw.DomainRack][topo.DomainOfVM(id, hw.DomainRack)] = true
		doms[hw.DomainZone][topo.DomainOfVM(id, hw.DomainZone)] = true
		doms[hw.DomainRegion][topo.DomainOfVM(id, hw.DomainRegion)] = true
	}
	r.ckptDoms = doms
}

// applyOutagesDue settles the checkpoint-survivability of every domain
// outage due by now. Three outcomes:
//
//   - vacuous: no checkpoint exists (ckptDoms == nil) or the lost
//     domain held no shards — the preemption rollback already
//     accounted every loss there is.
//   - failover: the replication policy spread shards at or above the
//     outage level across ≥ 2 domains, so every shard survives in
//     some other domain. The job pays the restart-model-priced
//     cross-domain fetch (restart.Model.Failover) as downtime and
//     keeps its progress.
//   - unrecoverable: shards lived only in the lost domain. All
//     progress is discarded — the quantified cost of running without
//     replication that the zone-failover drill reports.
func (r *timelineRun) applyOutagesDue() {
	for r.outIdx < len(r.outs) && r.outs[r.outIdx].At <= r.now {
		o := r.outs[r.outIdx]
		r.outIdx++
		var ospan obs.SpanID
		if r.tr.Enabled() {
			ospan = r.tr.Instant(r.trk, r.cause, r.now, "fleet", "outage")
			r.tr.SetArgs(ospan,
				obs.Str("level", o.Level.String()),
				obs.I64("domain", int64(o.Domain)))
			r.cause = ospan
		}
		doms := r.ckptDoms[o.Level]
		if r.ckptDoms == nil || !doms[o.Domain] {
			continue // vacuous: nothing durable was in the lost domain
		}
		p := r.mg.Opts.Replication
		spreadDoms := r.ckptDoms[p.Spread]
		if p.Enabled() && p.Spread >= o.Level && len(spreadDoms) >= 2 {
			r.failover(o, ospan)
			continue
		}
		// Unrecoverable: the only copies of some shards died with the
		// domain. The job keeps running on survivors but from scratch.
		r.stats.LostMiniBatches += r.stats.MiniBatches
		r.stats.Examples = 0
		r.stats.MiniBatches = 0
		r.stats.UnrecoverableOutages++
		r.ckptDoms = nil
		if r.tr.Enabled() {
			id := r.tr.Instant(r.trk, ospan, r.now, "manager", "outage-loss")
			r.tr.SetArgs(id, obs.I64("lost_minibatches", int64(r.stats.LostMiniBatches)))
		}
		r.emit(ospan, TimelinePoint{
			At: r.now, GPUs: r.usableGPUs(), Event: "outage-loss",
			DollarsSpent: r.dollars(),
		})
	}
}

// failover restarts the job from the surviving replicated shards: the
// lost domain's copies are struck from the placement record and the
// cross-domain full-state fetch is charged as downtime at the restart
// model's price.
func (r *timelineRun) failover(o DomainOutage, ospan obs.SpanID) {
	delete(r.ckptDoms[o.Level], o.Domain)
	topo := r.mg.RM.Cluster.Topo
	switch o.Level {
	case hw.DomainZone:
		// Zone loss takes its racks too (rack ids refine zone ids:
		// rack % zones == zone under the round-robin VM mapping).
		for rack := range r.ckptDoms[hw.DomainRack] {
			if topo.Zones > 0 && rack%topo.Zones == o.Domain {
				delete(r.ckptDoms[hw.DomainRack], rack)
			}
		}
	case hw.DomainRegion:
		// Region loss cascades through its zones (zone / zones-per-
		// region == region) and their racks.
		zpr := topo.ZonesPerRegion
		if zpr <= 0 {
			zpr = topo.Zones
		}
		if zpr > 0 {
			for zone := range r.ckptDoms[hw.DomainZone] {
				if zone/zpr == o.Domain {
					delete(r.ckptDoms[hw.DomainZone], zone)
				}
			}
			for rack := range r.ckptDoms[hw.DomainRack] {
				if topo.Zones > 0 && (rack%topo.Zones)/zpr == o.Domain {
					delete(r.ckptDoms[hw.DomainRack], rack)
				}
			}
		}
	}
	r.stats.Failovers++
	var down simtime.Duration
	if r.running {
		costs := r.mg.RM.Failover(restart.Assignment{Stages: r.current.Stages, D: r.current.D})
		down = costs.Total()
		if down > 0 {
			var fspan obs.SpanID
			if r.tr.Enabled() {
				fspan = r.tr.Begin(r.trk, ospan, r.now, "manager", "failover")
				r.tr.SetArgs(fspan,
					obs.Str("level", o.Level.String()),
					obs.I64("domain", int64(o.Domain)))
				restart.TracePhases(r.tr, r.trk, fspan, r.now, costs)
			}
			r.chargeDowntime(r.now.Add(down))
			r.stats.Downtime += down
			r.stats.FailoverDowntime += down
			r.met.Observe("manager.failover_downtime_us", float64(down))
			r.now = r.now.Add(down)
			if r.tr.Enabled() {
				r.tr.End(fspan, r.now)
				r.cause = fspan
			}
		}
	}
	r.emit(ospan, TimelinePoint{
		At: r.now, GPUs: r.usableGPUs(), Event: "failover", Downtime: down,
		DollarsSpent: r.dollars(),
	})
}

// sortOutages orders the outage schedule for the run.
func sortOutages(outs []DomainOutage) []DomainOutage {
	if len(outs) == 0 {
		return nil
	}
	s := append([]DomainOutage(nil), outs...)
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
	return s
}
