package manager

import (
	"reflect"
	"testing"

	"repro/internal/autoconfig"
	"repro/internal/calibrate"
	"repro/internal/checkpoint"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/simtime"
	"repro/internal/spot"
	"repro/internal/testbed"
)

// managerZoned builds a manager on a 4-zone topology cluster.
func managerZoned(t *testing.T, repl checkpoint.Policy) *Manager {
	t.Helper()
	cluster := hw.SpotCluster(hw.NC6v3, 80)
	cluster.Topo = hw.SpotTopology(4, 2, 5)
	tb := testbed.New(cluster, 31)
	spec := model.GPT2XL2B()
	params, err := calibrate.Run(spec, tb, calibrate.Options{
		MicroSizes:  []int{4, 8},
		GPUsPerNode: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := model.FindCutPoints(spec, 53)
	if err != nil {
		t.Fatal(err)
	}
	in := autoconfig.Inputs{
		Spec:        spec,
		Cuts:        cuts,
		Params:      params,
		GPUMem:      16 << 30,
		MTotal:      8192,
		GPUsPerNode: 1,
	}
	opts := DefaultOptions()
	opts.Replication = repl
	return New(in, tb, opts, 77)
}

// zoneOutageTrace allocates n 1-GPU VMs at t=0 and kills every VM in
// the zone (id % 4 == zone) at the given instant, mirroring what the
// scenario compiler emits for a zone-outage event.
func zoneOutageTrace(n, zone int, at simtime.Time) ([]spot.Event, []DomainOutage) {
	var events []spot.Event
	for i := 0; i < n; i++ {
		events = append(events, spot.Event{At: 0, Kind: spot.Alloc, VM: i, GPUs: 1})
	}
	for i := zone; i < n; i += 4 {
		events = append(events, spot.Event{At: at, Kind: spot.Preempt, VM: i, GPUs: 1})
	}
	return events, []DomainOutage{{At: at, Level: hw.DomainZone, Domain: zone}}
}

func TestZoneOutageFailsOverWithReplication(t *testing.T) {
	mg := managerZoned(t, checkpoint.Policy{Replicas: 2, Spread: hw.DomainZone})
	at := simtime.Time(4 * simtime.Hour)
	events, outs := zoneOutageTrace(64, 1, at)
	mg.Outages = outs
	points, stats, err := mg.RunTimeline(events, 8*simtime.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failovers != 1 || stats.UnrecoverableOutages != 0 {
		t.Fatalf("failovers=%d unrecoverable=%d, want 1/0", stats.Failovers, stats.UnrecoverableOutages)
	}
	if stats.FailoverDowntime <= 0 {
		t.Fatal("failover must cost cross-zone fetch downtime")
	}
	// Progress survives: only the uncheckpointed tail rolls back, never
	// the whole run.
	if stats.LostMiniBatches >= mg.Opts.CheckpointEvery {
		t.Fatalf("lost %d mini-batches, want < CheckpointEvery (%d)", stats.LostMiniBatches, mg.Opts.CheckpointEvery)
	}
	if stats.Examples <= 0 || stats.MiniBatches <= 0 {
		t.Fatal("job must keep its progress across the failover")
	}
	foundFailover := false
	for _, p := range points {
		if p.Event == "failover" {
			foundFailover = true
		}
		if p.Event == "outage-loss" {
			t.Fatal("replicated run must not report outage-loss")
		}
	}
	if !foundFailover {
		t.Fatal("timeline must record the failover point")
	}
}

func TestZoneOutageDiscardsProgressWithoutReplication(t *testing.T) {
	mg := managerZoned(t, checkpoint.Policy{})
	at := simtime.Time(4 * simtime.Hour)
	events, outs := zoneOutageTrace(64, 1, at)
	mg.Outages = outs
	points, stats, err := mg.RunTimeline(events, 8*simtime.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if stats.UnrecoverableOutages != 1 || stats.Failovers != 0 {
		t.Fatalf("unrecoverable=%d failovers=%d, want 1/0", stats.UnrecoverableOutages, stats.Failovers)
	}
	// Hours of checkpointed work die with the zone.
	if stats.LostMiniBatches < mg.Opts.CheckpointEvery {
		t.Fatalf("lost %d mini-batches, want at least one checkpoint interval", stats.LostMiniBatches)
	}
	foundLoss := false
	for _, p := range points {
		if p.Event == "outage-loss" {
			foundLoss = true
		}
	}
	if !foundLoss {
		t.Fatal("timeline must record the outage-loss point")
	}
}

func TestOutageVacuousOnFlatCluster(t *testing.T) {
	// Without a topology there are no failure domains: the schedule is
	// inert and the run matches a plain preemption trace.
	mg := managerFor(t)
	at := simtime.Time(4 * simtime.Hour)
	events, outs := zoneOutageTrace(64, 1, at)
	mg.Outages = outs
	_, stats, err := mg.RunTimeline(events, 8*simtime.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failovers != 0 || stats.UnrecoverableOutages != 0 || stats.FailoverDowntime != 0 {
		t.Fatalf("flat cluster outage stats must stay zero: %+v", stats)
	}
}

func TestOutageTimelineDeterministic(t *testing.T) {
	run := func() ([]TimelinePoint, Stats) {
		mg := managerZoned(t, checkpoint.Policy{Replicas: 2, Spread: hw.DomainZone})
		at := simtime.Time(3 * simtime.Hour)
		events, outs := zoneOutageTrace(64, 2, at)
		mg.Outages = outs
		points, stats, err := mg.RunTimeline(events, 6*simtime.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return points, stats
	}
	p1, s1 := run()
	p2, s2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("stats diverged:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("timelines diverged")
	}
}
