// Package manager implements the Varuna manager (§4.6): a control
// plane that tracks the spot-VM fleet through heartbeats, detects
// preemptions (missed heartbeats) and fail-stutter VMs (per-micro-batch
// compute-time outliers), grows the cluster through the provisioning
// API, and triggers job morphing whenever the usable GPU set changes.
// It also drives continuous checkpointing so that a preempted job
// resumes from the last mini-batch boundary.
package manager

import (
	"fmt"
	"sort"

	"repro/internal/autoconfig"
	"repro/internal/checkpoint"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/price"
	"repro/internal/restart"
	"repro/internal/simtime"
	"repro/internal/spot"
	"repro/internal/testbed"
)

// MorphPolicy selects how the manager prices reconfiguration downtime
// and whether it may decline an unprofitable morph.
type MorphPolicy int

const (
	// PolicyMorphOrHold prices each candidate reconfiguration with the
	// restart cost model and holds the current configuration when the
	// modeled downtime exceeds the discounted steady-state throughput
	// gain (the default).
	PolicyMorphOrHold MorphPolicy = iota
	// PolicyModeled always reconfigures on fleet changes but charges
	// the restart-model price instead of a constant.
	PolicyModeled
	// PolicyConstant charges the flat ConstOverhead per morph — the
	// paper's original accounting, kept for the restart-cost ablation.
	PolicyConstant
)

// String names the policy.
func (p MorphPolicy) String() string {
	switch p {
	case PolicyMorphOrHold:
		return "morph-or-hold"
	case PolicyModeled:
		return "modeled"
	case PolicyConstant:
		return "constant"
	default:
		return fmt.Sprintf("MorphPolicy(%d)", int(p))
	}
}

// Options tunes the §4.6 manager: checkpoint cadence, reconfiguration
// pricing and the fail-stutter detection threshold.
type Options struct {
	// CheckpointEvery is the checkpoint cadence in mini-batches.
	CheckpointEvery int
	// CheckpointOverhead is the stall per checkpoint (local SSD write;
	// cloud upload happens in the background, §4.5).
	CheckpointOverhead simtime.Duration
	// StragglerThreshold flags a VM whose compute heartbeat exceeds
	// the fleet median by this factor (§4.6 reports ~30% stutters).
	StragglerThreshold float64
	// Policy selects reconfiguration pricing: restart-model based
	// (with or without the hold option) or the legacy flat constant.
	Policy MorphPolicy
	// ConstOverhead is the flat per-morph downtime charged under
	// PolicyConstant (the paper's ~4-minute figure); ignored by the
	// modeled policies.
	ConstOverhead simtime.Duration
	// EventGapPrior seeds the fleet-event gap estimator before any
	// gap has been observed — the assumed stable-window length of the
	// first morph-or-hold decisions. Zero defers to the caller:
	// core.RunOnSpotMarketOpts seeds it from the market's analytic
	// hazard (spot.Market.ExpectedNextEvent); a bare RunTimeline falls
	// back to DefaultEventGapPrior.
	EventGapPrior simtime.Duration
	// HeartbeatEvery is the cadence at which the manager re-examines
	// compute heartbeats *between* fleet events. Historically the
	// fail-stutter detector only ran when the fleet changed, so a VM
	// degrading mid-segment stayed invisible until the next
	// allocation or preemption; periodic heartbeat checks surface the
	// anomaly within one interval, exclude the VM and re-measure the
	// mini-batch time. Zero disables mid-segment checks (the legacy
	// morph-segments-only behavior).
	HeartbeatEvery simtime.Duration
	// Prices is the spot price curve dollars are accounted against.
	// Nil disables cost accounting entirely (no meter, zero Dollars
	// fields) — the pre-dollar behavior.
	Prices *price.Curve
	// Meter, when non-nil, carries the cost accounting across runs: a
	// warm-resumed manager passes the meter restored by
	// restart.LoadSections so cumulative dollars continue instead of
	// restarting from zero. Nil builds a fresh meter from Prices.
	Meter *price.Meter
	// Objective selects what morph decisions optimize. The zero value
	// (max throughput) reproduces the pre-dollar decision rule
	// bit-identically; the dollar objectives additionally release
	// fleet capacity the chosen configuration cannot use and need a
	// price curve to decide against.
	Objective autoconfig.Objective
	// Trace, when non-nil, records the run's causal spans: fleet-event
	// instants (parented on the arbiter span that caused them via
	// spot.Event.Cause), morph decisions, restart phases, heartbeat
	// checks and training segments, all on TraceTrack. Nil (the
	// default) disables tracing with zero cost — the run is
	// bit-identical and allocation-identical to an uninstrumented one.
	Trace *obs.Tracer
	// TraceTrack is the obs track this run's spans land on (one track
	// per job in a fleet trace). Zero registers a default "job" track.
	TraceTrack obs.TrackID
	// Metrics, when non-nil, receives the run's registry metrics:
	// simulated morph-downtime histograms and (via the Planner
	// observer) wall-clock sweep self-profiling.
	Metrics *obs.Metrics
	// Series, when non-nil, receives the run's continuous telemetry:
	// GPU count, throughput, cumulative dollars and $-per-kex,
	// downtime and idle fractions sampled on the SampleEvery cadence
	// plus at every timeline event, and per-recovery latencies at each
	// post-preemption decision. Nil (the default) disables sampling
	// with zero cost — the run is bit-identical to an unsampled one.
	Series *obs.SeriesSet
	// SeriesPrefix prefixes every series name this run records —
	// "<job>/" in fleet mode, so N jobs share one SeriesSet without
	// colliding.
	SeriesPrefix string
	// SampleEvery is the cadence of periodic series samples. Zero
	// defaults to DefaultSampleEvery when Series is set.
	SampleEvery simtime.Duration
	// Replication is the checkpoint replication policy (§4.5 extended
	// across failure domains): shards are pushed to Replicas domains
	// spread at the policy's anti-affinity level, each checkpoint pays
	// the cross-domain push priced by restart.Model.ReplicationOverhead,
	// and a domain outage that would otherwise discard all progress
	// fails over to the surviving replicas instead. The zero value —
	// and any cluster without a defined topology — keeps the historical
	// single-copy behavior bit-identically.
	Replication checkpoint.Policy
	// MeasureStragglers wires the held fleet's unflagged slow VMs into
	// every segment measurement as testbed.JobConfig.ExtraSlow, so a
	// degrading VM shows up in the *measured* mini-batch time — not
	// just in its heartbeat pace. Sub-threshold stragglers (too mild
	// for StragglerThreshold to flag) then visibly slow the segment,
	// and a heartbeat check whose slow set drifted re-measures the
	// segment in place. Off by default: the historical manager
	// measured every segment as if the surviving fleet were healthy,
	// and scenario runs opt in.
	MeasureStragglers bool
}

// DefaultEventGapPrior is the stable-window assumption used when
// neither the caller nor a market supplied one.
const DefaultEventGapPrior = 30 * simtime.Minute

// DefaultSampleEvery is the periodic series-sampling cadence used when
// Options.Series is set without an explicit Options.SampleEvery.
const DefaultSampleEvery = simtime.Minute

// DefaultOptions mirrors the deployment described in the paper, with
// reconfiguration downtime priced by the restart cost model rather
// than the paper's flat 4-minute constant.
func DefaultOptions() Options {
	return Options{
		CheckpointEvery:    8,
		CheckpointOverhead: 15 * simtime.Second,
		StragglerThreshold: 1.20,
		Policy:             PolicyMorphOrHold,
		ConstOverhead:      4 * simtime.Minute,
		HeartbeatEvery:     10 * simtime.Minute,
	}
}

// DetectStragglers returns the VM ids whose reported per-micro-batch
// compute time exceeds threshold × fleet median — the fail-stutter
// correction of §4.6. Needs at least 3 reports to be meaningful.
func DetectStragglers(heartbeats map[int]float64, threshold float64) []int {
	if len(heartbeats) < 3 {
		return nil
	}
	times := make([]float64, 0, len(heartbeats))
	for _, t := range heartbeats {
		times = append(times, t)
	}
	sort.Float64s(times)
	median := times[len(times)/2]
	var out []int
	for id, t := range heartbeats {
		if t > threshold*median {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// TimelinePoint is one sample of the training timeline (Figure 8).
type TimelinePoint struct {
	At simtime.Time
	// GPUs usable at this moment (excluding flagged stragglers).
	GPUs int
	// Config is the active P×D choice (zero if the job is down).
	Config autoconfig.Choice
	// ExPerSec is the whole-job throughput of the running segment.
	ExPerSec float64
	// Event labels what happened: "morph", "p" (replacement without
	// config change, as in Figure 8), "hold" (fleet changed but the
	// cost-aware decision kept the running config), "checkpoint",
	// "down", "".
	Event string
	// Downtime is the reconfiguration downtime charged at this event
	// (zero for hold/checkpoint/down points).
	Downtime simtime.Duration
	// DollarsSpent is this run's cumulative spend at this point (zero
	// when no price curve is configured; a warm meter's pre-restart
	// bill is excluded).
	DollarsSpent float64
	// Released counts VMs voluntarily returned to the market at this
	// decision — the shrink a dollar objective applies when held
	// capacity is uneconomical.
	Released int
}

// Stats summarizes a timeline run — the aggregate counters behind the
// Figure 8 narrative (morphs vs replacements, preemptions, rollback
// losses, downtime).
type Stats struct {
	// Examples is the total training examples processed.
	Examples float64
	// MiniBatches is completed mini-batch count.
	MiniBatches int
	// Morphs counts configuration changes; Replacements counts
	// morph events that kept the same P×D.
	Morphs, Replacements int
	// Preemptions and Allocations count fleet events.
	Preemptions, Allocations int
	// Checkpoints counts completed checkpoints; LostMiniBatches is
	// work discarded by preemption rollbacks.
	Checkpoints     int
	LostMiniBatches int
	// StragglersExcluded counts VMs removed for fail-stutter.
	StragglersExcluded int
	// Holds counts fleet changes where the cost-aware decision kept
	// the current configuration running instead of morphing.
	Holds int
	// Downtime is time spent not training (morphing, restarting,
	// checkpoint stalls).
	Downtime simtime.Duration
	// MorphDowntime is the reconfiguration share of Downtime —
	// stop + flush + redistribution + restart (or the flat constant
	// under PolicyConstant), excluding checkpoint stalls.
	MorphDowntime simtime.Duration
	// DollarsSpent is what THIS run spent (all buckets); the
	// per-bucket splits attribute it to training compute,
	// reconfiguration/checkpoint downtime and idle capacity. All four
	// stay zero when no price curve is configured. A warm meter
	// passed in via Options.Meter keeps the whole-job cumulative bill
	// on the meter itself — these fields exclude the pre-restart
	// spend so DollarsPerExample divides like for like.
	DollarsSpent    float64
	DollarsCompute  float64
	DollarsReconfig float64
	DollarsIdle     float64
	// VMsReleased counts VMs a dollar objective voluntarily returned
	// to the market (idle remainders, flagged stragglers, and
	// marginal replicas shed during price spikes).
	VMsReleased int
	// Failovers counts domain outages survived by restarting from
	// replicated checkpoint shards in other failure domains;
	// FailoverDowntime is the cross-domain fetch time those restarts
	// cost (included in Downtime). UnrecoverableOutages counts domain
	// outages that destroyed the only copies of checkpoint state and
	// discarded all progress. All three stay zero — and absent from
	// report JSON — on flat clusters.
	Failovers            int              `json:",omitempty"`
	UnrecoverableOutages int              `json:",omitempty"`
	FailoverDowntime     simtime.Duration `json:",omitempty"`
}

// DollarsPerExample is the run's realized training cost: this run's
// spend over this run's examples (zero before any example).
func (s Stats) DollarsPerExample() float64 {
	if s.Examples <= 0 {
		return 0
	}
	return s.DollarsSpent / s.Examples
}

// Manager replays a spot-market event trace against a testbed-backed
// job, morphing as the fleet changes (§4.6, Figure 8).
type Manager struct {
	// In is the morphing input set (spec, cut-points, calibration).
	In autoconfig.Inputs
	// TB is the ground-truth cluster that measures each segment.
	TB *testbed.Testbed
	// Opts tunes checkpoint cadence, morph overhead and straggler
	// detection.
	Opts Options
	// Plan owns the morph decisions and their lifetime caches: the
	// (spec, p, m, d) cost cache and the per-fleet-size decision memo
	// that make repeated sweeps across the Figure-8 timeline cheap.
	Plan *autoconfig.Planner
	// RM prices each reconfiguration from checkpoint bytes, the P×D
	// shape delta and the cluster fabric (internal/restart). Built for
	// the job's spec on the testbed's cluster by New; replace before a
	// run to model different hardware.
	RM *restart.Model
	// Degrade, NetDegrade and ObjChange are the manager's scenario
	// event schedules — the public injection API the scenario harness
	// (internal/scenario) compiles its event scripts into. Each slice
	// is applied in time order during RunTimeline; all three are
	// deterministic (no randomness beyond the manager's own seeded
	// streams), so a timeline replayed with the same schedules is
	// bit-identical.
	//
	// Degrade marks VMs whose compute pace degrades at a given
	// instant: fail-stutter onset (§4.6) when the factor exceeds
	// StragglerThreshold (caught by a heartbeat check within one
	// interval), or a sub-threshold straggler that survives detection
	// and — with Options.MeasureStragglers — drags the measured
	// mini-batch time instead.
	Degrade []Degradation
	// NetDegrade schedules network-degradation episodes: from each
	// entry's instant the inter-stage sends and allreduces of every
	// measurement take Factor× their healthy time (a later entry with
	// Factor 1 restores health). The running segment is re-measured in
	// place when an episode starts or ends.
	NetDegrade []NetDegradation
	// ObjChange re-targets the manager mid-run (a deadline pulled in,
	// a switch from throughput to dollar economics): at each entry's
	// instant the objective is swapped and the manager immediately
	// re-decides its configuration, as if the fleet had changed.
	// Non-throughput objectives require a price curve, like
	// Options.Objective.
	ObjChange []ObjectiveChange
	// Outages schedules correlated domain losses (zone-outage,
	// rack-outage): the scenario compiler pairs each entry with the
	// Preempt events that empty the domain, and the manager settles
	// whether the checkpoint survived (see DomainOutage). Requires a
	// cluster with a defined topology to have any effect.
	Outages []DomainOutage

	rng *simtime.Rand
	// hbRng draws the measurement noise of *periodic* heartbeat
	// samples. It is a separate stream from rng on purpose: the
	// morph-time straggler check keeps its historical draws, so
	// enabling or disabling mid-segment checks cannot shift the main
	// stream and silently re-randomize an otherwise identical
	// timeline.
	hbRng *simtime.Rand
	// legacyHoldDiscount pins the preempt-next hold discount to the
	// historical fixed ½ instead of the hazard-calibrated ratio —
	// test-only, to golden the direction the calibration moves hold
	// counts.
	legacyHoldDiscount bool
}

// Degradation marks a VM that starts fail-stuttering mid-run: from At
// on, its compute heartbeats read Factor× the healthy pace (1.35 =
// 35% slower, the magnitude §4.6 reports).
type Degradation struct {
	VM     int
	At     simtime.Time
	Factor float64
}

// NetDegradation marks a network-degradation onset: from At on, every
// network cost in segment measurements (activation/gradient sends,
// allreduces) is scaled by Factor. Factor 1 (or 0) restores a healthy
// fabric; the latest due entry wins.
type NetDegradation struct {
	At     simtime.Time
	Factor float64
}

// ObjectiveChange swaps the manager's optimization target at an
// instant — the scenario lever behind mid-run deadline changes.
type ObjectiveChange struct {
	At        simtime.Time
	Objective autoconfig.Objective
}

// New builds a manager with its own Planner for in.
func New(in autoconfig.Inputs, tb *testbed.Testbed, opts Options, seed int64) *Manager {
	return NewWithPlanner(in, tb, autoconfig.NewPlanner(in), opts, seed)
}

// NewWithPlanner builds a manager that plans through an existing
// Planner. Callers that keep a job-lifetime Planner (core.Job) pass it
// here so cache state survives across timeline replays.
func NewWithPlanner(in autoconfig.Inputs, tb *testbed.Testbed, plan *autoconfig.Planner, opts Options, seed int64) *Manager {
	rm := restart.NewModel(in.Spec, tb.Cluster)
	// Ground state redistribution in the testbed's own fabric, not a
	// parallel reconstruction of its contention rule: if the testbed's
	// network model is ever tuned, the restart price moves with it.
	rm.Fabric = tb.Fabric
	rm.Replication = opts.Replication
	return &Manager{
		In: in, TB: tb, Opts: opts, Plan: plan,
		RM:    rm,
		rng:   simtime.NewRand(seed),
		hbRng: simtime.NewRand(seed + 7919),
	}
}

// vmInfo tracks one live VM.
type vmInfo struct {
	gpus  int
	speed float64 // hidden fail-stutter factor
	slow  bool    // flagged by the manager
}

// timelineRun is the state of one RunTimeline replay. The control
// plane runs as an event loop on the simulated clock, like every
// other time-driven component in the system: each step applies the
// spot events due now, morphs or trains, and schedules its own
// continuation through the event queue's ScheduleCall path (the step
// callback is bound once per run, so the loop adds no per-step
// closures).
type timelineRun struct {
	mg     *Manager
	feed   Feed
	hz     simtime.Time
	q      *simtime.EventQueue
	onStep func(a, b int32)
	// gaps estimates the time to the next fleet event from the events
	// already applied — the spot-derived horizon of each morph-or-hold
	// decision.
	gaps *spot.GapEstimator

	points  []TimelinePoint
	stats   Stats
	live    map[int]*vmInfo
	now     simtime.Time
	current autoconfig.Choice
	running bool
	// sinceCkpt counts mini-batches since the last checkpoint (lost
	// on preemption).
	sinceCkpt int
	mbTime    simtime.Duration
	// Morph decisions are memoized by the Planner; the measured
	// mini-batch time per executed configuration is cached here (one
	// testbed measurement characterizes a stable segment). Only clean
	// measurements — healthy network, no measured stragglers — enter
	// the caches; exCur mirrors the running segment's throughput
	// whether or not it was cacheable.
	mbCache map[[2]int]simtime.Duration
	exCache map[[2]int]float64
	exCur   float64

	// meter accounts dollars over the timeline (nil without a price
	// curve); acc is the last metered instant — every clock advance
	// charges [acc, now] into a bucket, so the metered spans tile
	// [0, horizon] exactly. meanRate is the curve's horizon-mean
	// price, the reference the dollar objectives compare the current
	// price against.
	meter    *price.Meter
	acc      simtime.Time
	meanRate float64
	// baseDollars snapshots the meter at run start: a warm meter
	// (Options.Meter, restored across a restart) arrives with the
	// prior bill already on it, and this run's Stats and points
	// report only what THIS replay spent — $/example must divide
	// this-run dollars by this-run examples.
	baseDollars [price.NumBuckets]float64
	baseTotal   float64
	// released marks VMs voluntarily returned to the market: their
	// later trace preemptions are no longer ours to observe or pay
	// for.
	released map[int]bool
	// degs is the sorted mid-segment degradation schedule; degIdx the
	// next entry to apply. nextHB is the next periodic heartbeat
	// check.
	degs   []Degradation
	degIdx int
	nextHB simtime.Time
	// nets/objs are the sorted network-degradation and
	// objective-change schedules; netSlow is the factor currently in
	// force (1 = healthy) and obj the objective currently in force.
	// lastSlowFP fingerprints the straggler set the running segment
	// was measured with, so a heartbeat check can tell when the
	// measured pace went stale.
	nets       []NetDegradation
	netIdx     int
	netSlow    float64
	objs       []ObjectiveChange
	objIdx     int
	obj        autoconfig.Objective
	lastSlowFP string
	// outs is the sorted domain-outage schedule; outIdx the next entry
	// to settle. ckptDoms records which failure domains held shards of
	// the last durable checkpoint (nil until one exists, and again
	// after an unrecoverable loss); only maintained on topology-defined
	// clusters.
	outs     []DomainOutage
	outIdx   int
	ckptDoms map[hw.DomainLevel]map[int]bool

	// tr/trk/met mirror Options.Trace/TraceTrack/Metrics (nil-safe).
	// segSpan is the open training-segment span; cause is the latest
	// fleet-event instant, pending adoption as the next decision's
	// parent — the link that makes "which preemption triggered which
	// morph" a walkable chain.
	tr      *obs.Tracer
	trk     obs.TrackID
	met     *obs.Metrics
	segSpan obs.SpanID
	cause   obs.SpanID

	// series mirrors Options.Series (nil-safe, nil = sampling off).
	// sNames holds the prefixed series names precomputed at start so
	// sampling never rebuilds strings; nextSample is the next cadence
	// tick and sampleEvery the cadence. paidGPUSec/idleGPUSec
	// accumulate the gpu-seconds behind the idle-fraction signal, and
	// pendingPre queues preemption instants awaiting their next
	// decision point — the online mirror of the report's recovery
	// accounting.
	series      *obs.SeriesSet
	sNames      seriesNames
	nextSample  simtime.Time
	sampleEvery simtime.Duration
	paidGPUSec  float64
	idleGPUSec  float64
	pendingPre  []simtime.Time
}

// seriesNames precomputes the prefixed names of the per-run series.
type seriesNames struct {
	gpus, throughput, dollars, perKex, downFrac, idleFrac, recovery string
}

func newSeriesNames(prefix string) seriesNames {
	return seriesNames{
		gpus:       prefix + "gpus",
		throughput: prefix + "throughput",
		dollars:    prefix + "dollars",
		perKex:     prefix + "dollars-per-kex",
		downFrac:   prefix + "downtime-fraction",
		idleFrac:   prefix + "idle-fraction",
		recovery:   prefix + "recovery",
	}
}

// sample records one value per registered signal at the given instant,
// evaluated against the run's current state.
func (r *timelineRun) sample(at simtime.Time) {
	g := 0.0
	ex := 0.0
	if r.running {
		ex = r.exCur
	}
	g = float64(r.usableGPUs())
	r.series.Record(r.sNames.gpus, at, g)
	r.series.Record(r.sNames.throughput, at, ex)
	if r.meter != nil {
		d := r.dollars()
		r.series.Record(r.sNames.dollars, at, d)
		if r.stats.Examples > 0 {
			r.series.Record(r.sNames.perKex, at, d/r.stats.Examples*1000)
		}
	}
	if at > 0 {
		r.series.Record(r.sNames.downFrac, at, r.stats.Downtime.Seconds()/at.Seconds())
	}
	if r.paidGPUSec > 0 {
		r.series.Record(r.sNames.idleFrac, at, r.idleGPUSec/r.paidGPUSec)
	}
}

// catchupSamples emits every cadence tick due at or before the current
// clock. Tick values reflect the state at the instant the loop crosses
// them — piecewise evaluation at loop boundaries, which is exact for
// the piecewise-constant signals sampled here.
func (r *timelineRun) catchupSamples() {
	for r.nextSample <= r.now {
		r.sample(r.nextSample)
		r.nextSample = r.nextSample.Add(r.sampleEvery)
	}
}

// drainRecoveries resolves queued preemption instants against a
// decision point: each pending preemption at or before the decision
// records one recovery-latency sample (seconds from preemption to the
// decision that re-planned the job).
func (r *timelineRun) drainRecoveries(at simtime.Time) {
	n := 0
	for _, pre := range r.pendingPre {
		if pre > at {
			break
		}
		r.series.Record(r.sNames.recovery, at, at.Sub(pre).Seconds())
		n++
	}
	if n > 0 {
		r.pendingPre = r.pendingPre[n:]
	}
}

// emit records one timeline point — the single ordered path every
// event kind goes through (morph/p/hold/checkpoint/down/net/straggler
// and plain samples alike), so the point stream and the trace see the
// same events in the same order. parent links the point's trace
// instant into the causal chain (the decision span for decision
// outcomes, the training segment for in-segment events).
func (r *timelineRun) emit(parent obs.SpanID, p TimelinePoint) {
	r.points = append(r.points, p)
	if r.series != nil {
		// On-event sampling: every timeline event lands a sample, and a
		// decision outcome resolves the recovery latency of the
		// preemptions it answered. Cadence ticks the clock jumped over
		// are emitted first so each series stays chronological.
		r.catchupSamples()
		switch p.Event {
		case "morph", "p", "hold", "down":
			r.drainRecoveries(p.At)
		}
		r.sample(p.At)
	}
	if !r.tr.Enabled() {
		return
	}
	name := p.Event
	if name == "" {
		name = "sample"
	}
	id := r.tr.Instant(r.trk, parent, p.At, "timeline", name)
	args := make([]obs.Arg, 0, 5)
	args = append(args, obs.I64("gpus", int64(p.GPUs)))
	if p.Config.P > 0 {
		args = append(args, obs.I64("P", int64(p.Config.P)), obs.I64("D", int64(p.Config.D)))
	}
	if p.Downtime > 0 {
		args = append(args, obs.I64("downtime_us", int64(p.Downtime)))
	}
	if p.Released > 0 {
		args = append(args, obs.I64("released", int64(p.Released)))
	}
	r.tr.SetArgs(id, args...)
}

// openSegment starts the resumed-training-segment span after a
// decision (morph, replacement or hold) left the job running.
func (r *timelineRun) openSegment(parent obs.SpanID) {
	if !r.tr.Enabled() {
		return
	}
	r.segSpan = r.tr.Begin(r.trk, parent, r.now, "manager", "train")
	r.tr.SetArgs(r.segSpan,
		obs.I64("P", int64(r.current.P)),
		obs.I64("D", int64(r.current.D)))
}

// tracePlan records the planner consultation under a decision span:
// one instant carrying the sweep and cache-activity deltas this
// decision cost (all deterministic counters — wall-clock sweep latency
// lives in the Metrics registry, never in the trace).
func (r *timelineRun) tracePlan(dspan obs.SpanID, before autoconfig.PlannerStats) {
	if !r.tr.Enabled() {
		return
	}
	after := r.mg.Plan.Stats()
	id := r.tr.Instant(r.trk, dspan, r.now, "planner", "sweep")
	r.tr.SetArgs(id,
		obs.I64("sweeps", int64(after.Sweeps-before.Sweeps)),
		obs.I64("cost_hits", int64(after.CostHits-before.CostHits)),
		obs.I64("cost_misses", int64(after.CostMisses-before.CostMisses)),
		obs.I64("decision_hits", int64(after.DecisionHits-before.DecisionHits)),
		obs.I64("decision_misses", int64(after.DecisionMisses-before.DecisionMisses)))
}

// paidGPUs sums the held fleet — everything the job pays for,
// flagged stragglers included (excluded from training, not from the
// bill, unless a dollar objective released them).
func (r *timelineRun) paidGPUs() int {
	g := 0
	for _, vm := range r.live {
		g += vm.gpus
	}
	return g
}

// chargeTraining meters [acc, to] as a training span: the running
// configuration's GPUs bill as compute, the held remainder as idle.
func (r *timelineRun) chargeTraining(to simtime.Time) {
	if (r.meter != nil || r.series != nil) && to > r.acc {
		pay := r.paidGPUs()
		used := 0
		if r.running {
			used = r.current.GPUsUsed
			if used > pay {
				used = pay
			}
		}
		if r.meter != nil {
			r.meter.Charge(price.Compute, r.acc, to, used)
			r.meter.Charge(price.Idle, r.acc, to, pay-used)
		}
		if r.series != nil {
			dur := to.Sub(r.acc).Seconds()
			r.paidGPUSec += dur * float64(pay)
			r.idleGPUSec += dur * float64(pay-used)
		}
	}
	if to > r.acc {
		r.acc = to
	}
}

// chargeDowntime meters [acc, to] as reconfiguration or checkpoint
// downtime: the whole held fleet is paid, nothing trains.
func (r *timelineRun) chargeDowntime(to simtime.Time) {
	if r.meter != nil && to > r.acc {
		r.meter.Charge(price.Reconfig, r.acc, to, r.paidGPUs())
	}
	if r.series != nil && to > r.acc {
		// Reconfiguration holds the whole fleet without training it, but
		// it is productive downtime, not idleness: only the paid total
		// accrues.
		r.paidGPUSec += to.Sub(r.acc).Seconds() * float64(r.paidGPUs())
	}
	if to > r.acc {
		r.acc = to
	}
}

// chargeIdle meters [acc, to] as idle: capacity held while nothing
// runs (a dead fleet waiting for allocations).
func (r *timelineRun) chargeIdle(to simtime.Time) {
	if r.meter != nil && to > r.acc {
		r.meter.Charge(price.Idle, r.acc, to, r.paidGPUs())
	}
	if r.series != nil && to > r.acc {
		dur := to.Sub(r.acc).Seconds()
		pay := float64(r.paidGPUs())
		r.paidGPUSec += dur * pay
		r.idleGPUSec += dur * pay
	}
	if to > r.acc {
		r.acc = to
	}
}

// dollars reports this run's cumulative spend for timeline points.
func (r *timelineRun) dollars() float64 { return r.meter.Total() - r.baseTotal }

// econ snapshots the economic context of a decision at the current
// instant.
func (r *timelineRun) econ() autoconfig.Econ {
	ec := autoconfig.Econ{
		Now:             r.now,
		DoneExamples:    r.stats.Examples,
		CheckpointEvery: r.mg.Opts.CheckpointEvery,
	}
	if r.meter != nil {
		ec.PerGPUHour = r.meter.Curve().At(r.now)
		ec.MeanPerGPUHour = r.meanRate
	}
	if r.gaps.KindObservations(spot.Preempt) > 0 {
		ec.PreemptEvery = r.gaps.ExpectedOf(spot.Preempt)
	}
	return ec
}

// releaseExcess returns held VMs a dollar objective cannot use to the
// market: every flagged straggler (paid, useless), then surplus
// healthy VMs — largest ids first, deterministic — until usable
// capacity matches the target configuration. Released VMs stop
// billing immediately and their future trace preemptions are ignored
// (they are the provider's problem now). A precomputed event trace
// cannot re-grant a released VM, but later allocations are fresh VMs
// and regrow the fleet as usual; the feed is notified so a live
// arbiter can return the capacity to circulation for other jobs.
func (r *timelineRun) releaseExcess(target int) int {
	ids := make([]int, 0, len(r.live))
	for id := range r.live {
		ids = append(ids, id)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ids)))
	usable := r.usableGPUs()
	released := 0
	for _, id := range ids {
		vm := r.live[id]
		if !vm.slow {
			if usable-vm.gpus < target {
				continue
			}
			usable -= vm.gpus
		}
		delete(r.live, id)
		r.released[id] = true
		r.feed.Release(id, r.now)
		released++
	}
	r.stats.VMsReleased += released
	return released
}

// applyDegradations applies every scheduled degradation due by now to
// the VMs still held.
func (r *timelineRun) applyDegradations() {
	for r.degIdx < len(r.degs) && r.degs[r.degIdx].At <= r.now {
		d := r.degs[r.degIdx]
		r.degIdx++
		if vm, ok := r.live[d.VM]; ok && d.Factor > vm.speed {
			vm.speed = d.Factor
		}
	}
}

// measuredSlow maps the held fleet's unflagged slow VMs onto replica
// indices for a d-wide configuration — the ExtraSlow set a segment
// measurement executes with under Options.MeasureStragglers. Healthy
// and slow VMs are ranked together by id (deterministic) and assigned
// replicas round-robin; a replica keeps the worst factor mapped onto
// it. Flagged stragglers are already excluded from training and never
// slow a measurement; what this surfaces is exactly the sub-threshold
// degradation the detector lets through.
func (r *timelineRun) measuredSlow(d int) map[int]float64 {
	if !r.mg.Opts.MeasureStragglers || d < 1 {
		return nil
	}
	ids := make([]int, 0, len(r.live))
	for id, vm := range r.live {
		if !vm.slow {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	var out map[int]float64
	for i, id := range ids {
		if s := r.live[id].speed; s > 1 {
			if out == nil {
				out = make(map[int]float64)
			}
			rep := i % d
			if s > out[rep] {
				out[rep] = s
			}
		}
	}
	return out
}

// slowFP fingerprints a measured-straggler set so heartbeat checks can
// detect drift since the last measurement.
func slowFP(m map[int]float64) string {
	if len(m) == 0 {
		return ""
	}
	reps := make([]int, 0, len(m))
	for rep := range m {
		reps = append(reps, rep)
	}
	sort.Ints(reps)
	var b []byte
	for _, rep := range reps {
		b = fmt.Appendf(b, "%d:%g;", rep, m[rep])
	}
	return string(b)
}

// applyNetDue advances the network-degradation schedule to the current
// instant and reports whether the in-force factor changed.
func (r *timelineRun) applyNetDue() bool {
	changed := false
	for r.netIdx < len(r.nets) && r.nets[r.netIdx].At <= r.now {
		f := r.nets[r.netIdx].Factor
		r.netIdx++
		if f <= 0 {
			f = 1
		}
		if f != r.netSlow {
			r.netSlow = f
			changed = true
		}
	}
	return changed
}

// applyObjDue advances the objective-change schedule to the current
// instant and reports whether the objective moved.
func (r *timelineRun) applyObjDue() bool {
	changed := false
	for r.objIdx < len(r.objs) && r.objs[r.objIdx].At <= r.now {
		r.obj = r.objs[r.objIdx].Objective
		r.objIdx++
		changed = true
	}
	return changed
}

// remeasure re-executes the running configuration on the testbed with
// the current straggler and network state and records a timeline point
// labeled event — the mid-segment path scenario conditions take into
// the *measured* mini-batch time (straggler onset below the detection
// threshold, a degrading network) without a reconfiguration.
func (r *timelineRun) remeasure(event string) bool {
	choice := r.current
	slow := r.measuredSlow(choice.D)
	ms, err := r.mg.TB.MeasureMiniBatch(testbed.JobConfig{
		Spec:      r.mg.In.Spec,
		Stages:    choice.Stages,
		M:         choice.M,
		Nm:        choice.Nm,
		D:         choice.D,
		ExtraSlow: slow,
		NetSlow:   r.netSlow,
		NoTrace:   true,
	})
	if err != nil {
		r.running = false
		return false
	}
	r.mbTime, r.exCur = ms.MiniBatchTime, ms.ExPerSec()
	r.lastSlowFP = slowFP(slow)
	r.emit(r.segSpan, TimelinePoint{
		At: r.now, GPUs: r.usableGPUs(), Config: choice, ExPerSec: r.exCur,
		Event: event, DollarsSpent: r.dollars(),
	})
	return true
}

// sampleStragglers runs one fail-stutter sweep: sample a compute
// heartbeat per healthy VM (in sorted-id order, so the id→noise-draw
// pairing — and hence the flagged set — is deterministic), flag
// outliers and report how many VMs were newly excluded. The noise
// source is a parameter because the two call sites own different
// streams: morph-time checks draw from the manager's main rng (the
// historical behavior), periodic heartbeat checks from the dedicated
// hbRng so their presence cannot shift the main stream.
func (r *timelineRun) sampleStragglers(rng *simtime.Rand) int {
	ids := make([]int, 0, len(r.live))
	for id, vm := range r.live {
		if !vm.slow {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	hb := make(map[int]float64, len(ids))
	for _, id := range ids {
		hb[id] = r.live[id].speed * (1 + 0.02*rng.NormFloat64())
	}
	flagged := DetectStragglers(hb, r.mg.Opts.StragglerThreshold)
	for _, id := range flagged {
		r.live[id].slow = true
		r.stats.StragglersExcluded++
	}
	return len(flagged)
}

// heartbeatCheck is the mid-segment fail-stutter sweep on the
// dedicated heartbeat noise stream.
func (r *timelineRun) heartbeatCheck() int {
	return r.sampleStragglers(r.mg.hbRng)
}

// usableGPUs sums the fleet, excluding flagged stragglers.
func (r *timelineRun) usableGPUs() int {
	g := 0
	for _, vm := range r.live {
		if !vm.slow {
			g += vm.gpus
		}
	}
	return g
}

// flagStragglers runs the morph-time fail-stutter sweep on the
// manager's main noise stream.
func (r *timelineRun) flagStragglers() int {
	return r.sampleStragglers(r.mg.rng)
}

// morph reacts to a fleet change. Fleet sizes are quantized (rounded
// down, ~2% steps) before the sweep: a one-GPU delta never changes the
// best configuration materially, and quantization keeps the Planner's
// decision memo hot across the constant single-VM churn of a spot
// fleet.
//
// Downtime is priced by the restart cost model (stop + checkpoint
// flush + state redistribution + process restart) — or the legacy
// constant under PolicyConstant — and under PolicyMorphOrHold a
// voluntary reconfiguration that would not pay for itself before the
// next expected fleet event is declined and the job keeps training in
// its current shape. forced marks fleet changes the running config
// cannot survive (a preemption broke a pipeline): those always
// restart. A freshly flagged fail-stutter VM forces a restart the same
// way — excluding a straggler from a running pipeline IS a
// reconfiguration, so holding through one would credit the exclusion
// for free.
func (r *timelineRun) morph(label string, forced bool) {
	if r.flagStragglers() > 0 {
		forced = true
	}
	g := r.usableGPUs()
	if q := g / 50; q > 0 {
		g -= g % (q + 1)
	}
	// Work completed since the last checkpoint must be flushed before
	// state can move; a preemption path arrives with sinceCkpt already
	// rolled back to 0, so nothing (spurious) is flushed there.
	dirty := r.running && r.sinceCkpt > 0

	// A decision interrupts the running segment; the fleet-event
	// instant that triggered it (r.cause) becomes the decision's
	// parent, completing the market → arbiter → manager chain.
	r.tr.End(r.segSpan, r.now)
	r.segSpan = 0
	var dspan obs.SpanID
	var pstat autoconfig.PlannerStats
	if r.tr.Enabled() {
		dspan = r.tr.Begin(r.trk, r.cause, r.now, "manager", "decision")
		r.tr.SetArgs(dspan, obs.Str("label", label), obs.I64("gpus", int64(g)))
		pstat = r.mg.Plan.Stats()
	}
	r.cause = 0

	obj := r.obj
	var choice autoconfig.Choice
	var costs restart.Costs
	var down simtime.Duration
	var err error
	switch {
	case r.mg.Opts.Policy == PolicyConstant:
		// The paper's flat-constant ablation predates the dollar
		// objectives and ignores them: always the throughput-best.
		choice, err = r.mg.Plan.Best(g)
		down = r.mg.Opts.ConstOverhead
	case r.mg.Opts.Policy == PolicyMorphOrHold && r.running && !forced:
		hz := autoconfig.Horizon{Until: r.gaps.Expected()}
		if k, ok := r.gaps.NextKind(); ok && k == spot.Preempt {
			hz.PreemptNext = true
			// Mid-burst the pooled gap overstates the stable window:
			// the preemption track's own cadence is the tighter bound.
			if pre := r.gaps.ExpectedOf(spot.Preempt); pre < hz.Until {
				hz.Until = pre
			}
			// Calibrate the hold discount from the per-kind hazard
			// ratio once both tracks have observed gaps: the window
			// fraction an allocation (rather than the forecast
			// preemption) would arrive first in. Reclaim bursts push
			// it below the legacy ½; balanced traffic reproduces it.
			if !r.mg.legacyHoldDiscount &&
				r.gaps.KindObservations(spot.Alloc) > 0 && r.gaps.KindObservations(spot.Preempt) > 0 {
				ga := r.gaps.ExpectedOf(spot.Alloc)
				gp := r.gaps.ExpectedOf(spot.Preempt)
				d := float64(gp) / float64(gp+ga)
				if d < 0.1 {
					d = 0.1
				}
				if d > 0.9 {
					d = 0.9
				}
				hz.HoldDiscount = d
			}
		}
		var dec autoconfig.MorphDecision
		dec, err = r.mg.Plan.BestOrHoldObjective(g, r.current, true, r.mg.RM, hz, dirty, obj, r.econ())
		if err == nil && !dec.Morph {
			released := 0
			if obj.Shrinks() {
				released = r.releaseExcess(obj.RetainGPUs(r.current.GPUsUsed, r.econ()))
			}
			r.stats.Holds++
			r.tracePlan(dspan, pstat)
			r.tr.End(dspan, r.now)
			r.openSegment(dspan)
			r.emit(dspan, TimelinePoint{
				At: r.now, GPUs: g, Config: r.current,
				ExPerSec:     r.exCur,
				Event:        "hold",
				DollarsSpent: r.dollars(),
				Released:     released,
			})
			return
		}
		choice, costs = dec.Choice, dec.Costs
		down = costs.Total()
	default:
		// PolicyModeled, a cold start, or a forced restart: morph to
		// the objective's best and charge the modeled price.
		choice, err = r.mg.Plan.BestFor(g, obj, r.econ())
		if err == nil {
			var old restart.Assignment
			if r.running {
				old = restart.Assignment{Stages: r.current.Stages, D: r.current.D}
			}
			costs = r.mg.RM.Price(old, restart.Assignment{Stages: choice.Stages, D: choice.D}, dirty)
			down = costs.Total()
		}
	}
	r.tracePlan(dspan, pstat)
	if err != nil {
		r.running = false
		r.emit(dspan, TimelinePoint{At: r.now, GPUs: g, Event: "down", DollarsSpent: r.dollars()})
		r.tr.End(dspan, r.now)
		return
	}
	released := 0
	if obj.Shrinks() {
		// The release takes effect at the decision instant, so the
		// downtime below bills the shrunken fleet.
		released = r.releaseExcess(obj.RetainGPUs(choice.GPUsUsed, r.econ()))
	}
	r.chargeDowntime(r.now.Add(down))
	r.stats.Downtime += down
	r.stats.MorphDowntime += down
	if r.tr.Enabled() && down > 0 {
		if costs.Total() > 0 {
			restart.TracePhases(r.tr, r.trk, dspan, r.now, costs)
		} else {
			// PolicyConstant has no phase breakdown: one flat span.
			id := r.tr.Begin(r.trk, dspan, r.now, "restart", "const")
			r.tr.End(id, r.now.Add(down))
		}
	}
	r.met.Observe("manager.morph_downtime_us", float64(down))
	r.now = r.now.Add(down)
	if dirty {
		// The morph's flush persisted everything since the last
		// checkpoint (that is what the Flush phase priced, and what the
		// constant's bundled overhead always included): the new segment
		// resumes from this mini-batch boundary, not the old cadence.
		r.sinceCkpt = 0
		r.recordCheckpointDomains()
	}
	if r.running && choice.P == r.current.P && choice.D == r.current.D {
		label = "p" // replacement, no config change (Figure 8)
		r.stats.Replacements++
	} else {
		r.stats.Morphs++
	}
	r.current = choice
	r.running = true
	// One measured mini-batch characterizes the segment. The manager
	// only reads summary metrics, so the measurement skips trace
	// collection.
	key := [2]int{choice.P, choice.D}
	slow := r.measuredSlow(choice.D)
	clean := len(slow) == 0 && r.netSlow == 1
	if mb, ok := r.mbCache[key]; clean && ok {
		r.mbTime, r.exCur = mb, r.exCache[key]
	} else {
		ms, err := r.mg.TB.MeasureMiniBatch(testbed.JobConfig{
			Spec:      r.mg.In.Spec,
			Stages:    choice.Stages,
			M:         choice.M,
			Nm:        choice.Nm,
			D:         choice.D,
			ExtraSlow: slow,
			NetSlow:   r.netSlow,
			NoTrace:   true,
		})
		if err != nil {
			r.running = false
			r.tr.End(dspan, r.now)
			return
		}
		if clean {
			r.mbCache[key] = ms.MiniBatchTime
			r.exCache[key] = ms.ExPerSec()
		}
		r.mbTime, r.exCur = ms.MiniBatchTime, ms.ExPerSec()
	}
	r.lastSlowFP = slowFP(slow)
	r.tr.End(dspan, r.now)
	r.openSegment(dspan)
	r.emit(dspan, TimelinePoint{
		At: r.now, GPUs: g, Config: choice, ExPerSec: r.exCur,
		Event: label, Downtime: down,
		DollarsSpent: r.dollars(), Released: released,
	})
}

// applyEvent mutates the fleet for one spot event; it reports whether
// the event was a preemption (which forces a checkpoint rollback).
func (r *timelineRun) applyEvent(e spot.Event) bool {
	switch e.Kind {
	case spot.Alloc:
		speed := 1.0
		if r.mg.rng.Float64() < 0.05 { // ~1 in 20 VMs fail-stutters
			speed = 1.25 + 0.15*r.mg.rng.Float64()
		}
		r.live[e.VM] = &vmInfo{gpus: e.GPUs, speed: speed}
		r.stats.Allocations++
		return false
	case spot.Preempt:
		delete(r.live, e.VM)
		r.stats.Preemptions++
		return true
	}
	return false
}

// reschedule queues the next step at the run's current clock; past the
// horizon the loop simply stops scheduling and the queue drains.
func (r *timelineRun) reschedule() {
	if r.now < r.hz {
		r.q.ScheduleCall(r.now, r.onStep, 0, 0)
	}
}

// step is one iteration of the manager's control loop: apply all spot
// events due now (batching simultaneous arrivals into one morph), roll
// back on preemption, morph when the fleet changed, otherwise train
// until the next event or the horizon.
func (r *timelineRun) step(int32, int32) {
	r.applyDegradations()
	netChanged := r.applyNetDue()
	objChanged := r.applyObjDue()
	fleetChanged := false
	preempted := false
	for {
		ev, ok := r.feed.Pop(r.now)
		if !ok {
			break
		}
		if ev.Kind == spot.Preempt && r.released[ev.VM] {
			// A VM we already returned to the market: the provider
			// reclaiming it is no longer our fleet event.
			continue
		}
		r.gaps.ObserveKind(ev.At, ev.Kind)
		pre := r.applyEvent(ev)
		if r.tr.Enabled() {
			name := "alloc"
			if pre {
				name = "preempt"
			}
			id := r.tr.Instant(r.trk, obs.SpanID(ev.Cause), r.now, "fleet", name)
			r.tr.SetArgs(id, obs.I64("vm", int64(ev.VM)), obs.I64("gpus", int64(ev.GPUs)))
			// The decision this step ends in parents on the most telling
			// event: the latest preemption, else the first arrival.
			if pre || r.cause == 0 {
				r.cause = id
			}
		}
		preempted = preempted || pre
		fleetChanged = true
	}
	if preempted && r.series != nil {
		// One recovery per preemption instant: simultaneous events batch
		// into one step, so one queue entry covers the burst. The next
		// decision emit resolves it into a recovery-latency sample.
		r.pendingPre = append(r.pendingPre, r.now)
	}
	if preempted && r.running {
		if r.tr.Enabled() && r.sinceCkpt > 0 {
			id := r.tr.Instant(r.trk, r.cause, r.now, "manager", "rollback")
			r.tr.SetArgs(id, obs.I64("lost_minibatches", int64(r.sinceCkpt)))
		}
		// Roll back to the last checkpoint.
		r.stats.LostMiniBatches += r.sinceCkpt
		r.stats.Examples -= float64(r.sinceCkpt * r.current.Examples)
		r.stats.MiniBatches -= r.sinceCkpt
		r.sinceCkpt = 0
	}
	r.applyOutagesDue()
	if !fleetChanged && !netChanged && !objChanged && !r.running && r.feed.Driven() {
		// An eventless wake while the job is down: driven feeds wake
		// the loop every arbiter tick, so without a fleet or schedule
		// change there is nothing to re-decide — idle forward to the
		// next wake instead of re-attempting (and re-logging) a morph
		// that cannot succeed any better than last time. Unreachable
		// on pregenerated traces, which only wake the loop at event
		// times.
		if at, ok := r.feed.NextAt(r.now); ok {
			at = simtime.Max(r.now, at)
			r.chargeIdle(at)
			r.now = at
			r.reschedule()
		}
		return
	}
	if fleetChanged || !r.running {
		r.morphAndReschedule(preempted)
		return
	}
	if objChanged {
		// A scheduled objective change re-decides immediately — the whole
		// point of a deadline pull-in is that holding is no longer safe.
		r.morphAndReschedule(false)
		return
	}
	if netChanged && !r.remeasure("net") {
		return
	}

	// Train until the next event (or wake, for a driven feed) or the
	// horizon.
	next := r.hz
	if at, ok := r.feed.NextAt(r.now); ok && at < next {
		next = at
	}
	for r.now < next {
		r.now = r.now.Add(r.mbTime)
		if r.series != nil && r.nextSample <= r.now {
			r.catchupSamples()
		}
		r.stats.MiniBatches++
		r.stats.Examples += float64(r.current.Examples)
		r.sinceCkpt++
		if r.sinceCkpt >= r.mg.Opts.CheckpointEvery {
			r.chargeTraining(r.now)
			// A replicated checkpoint also pays the cross-domain shard
			// push (zero with replication off or on flat clusters).
			stall := r.mg.Opts.CheckpointOverhead +
				r.mg.RM.ReplicationOverhead(restart.Assignment{Stages: r.current.Stages, D: r.current.D})
			r.now = r.now.Add(stall)
			r.chargeDowntime(r.now)
			r.stats.Downtime += stall
			r.stats.Checkpoints++
			r.sinceCkpt = 0
			r.recordCheckpointDomains()
			r.emit(r.segSpan, TimelinePoint{
				At: r.now, GPUs: r.usableGPUs(), Config: r.current,
				ExPerSec:     float64(r.current.Examples) / r.mbTime.Seconds(),
				Event:        "checkpoint",
				DollarsSpent: r.dollars(),
			})
		}
		// Periodic heartbeat check between fleet events: a VM whose
		// compute pace degraded mid-segment is flagged here, within
		// one interval of the onset, instead of surviving undetected
		// until the next allocation or preemption. A flag forces a
		// reconfiguration (excluding a VM from a running pipeline IS
		// one) and invalidates the segment's cached measurement so
		// the testbed re-measures the mini-batch time.
		if r.mg.Opts.HeartbeatEvery > 0 && r.now >= r.nextHB {
			r.nextHB = r.now.Add(r.mg.Opts.HeartbeatEvery)
			r.applyDegradations()
			if flagged := r.heartbeatCheck(); flagged > 0 {
				if r.tr.Enabled() {
					id := r.tr.Instant(r.trk, r.segSpan, r.now, "manager", "heartbeat")
					r.tr.SetArgs(id, obs.I64("flagged", int64(flagged)))
					// A flagged fail-stutter VM is what forces the
					// reconfiguration below: the heartbeat is its cause.
					r.cause = id
				}
				r.chargeTraining(r.now)
				key := [2]int{r.current.P, r.current.D}
				delete(r.mbCache, key)
				delete(r.exCache, key)
				r.morphAndReschedule(true)
				return
			}
			// Sub-threshold drift: the sweep flagged nothing, but under
			// MeasureStragglers the set of slow-but-tolerated VMs may
			// still have changed since the segment was measured, and the
			// measured mini-batch time must follow it.
			if r.mg.Opts.MeasureStragglers {
				if fp := slowFP(r.measuredSlow(r.current.D)); fp != r.lastSlowFP {
					r.chargeTraining(r.now)
					if !r.remeasure("straggler") {
						return
					}
				}
			}
		}
		// Scheduled conditions land at mini-batch boundaries mid-segment:
		// an objective change forces a fresh decision, a network change
		// re-measures the running configuration in place.
		if r.applyObjDue() {
			r.chargeTraining(r.now)
			r.morphAndReschedule(false)
			return
		}
		if r.applyNetDue() {
			r.chargeTraining(r.now)
			if !r.remeasure("net") {
				return
			}
		}
	}
	r.chargeTraining(r.now)
	r.reschedule()
}

// morphAndReschedule runs one reconfiguration and queues the loop's
// continuation; with nothing usable it bills the gap as idle and
// fast-forwards to the next fleet event.
func (r *timelineRun) morphAndReschedule(forced bool) {
	r.morph("morph", forced)
	if !r.running {
		if at, ok := r.feed.NextAt(r.now); ok {
			at = simtime.Max(r.now, at)
			r.chargeIdle(at)
			r.now = at
			r.reschedule()
		}
		return
	}
	r.reschedule()
}

// RunTimeline replays events until horizon and returns the timeline and
// statistics. Fleet changes trigger morphing; a preemption additionally
// rolls the job back to the last checkpoint. Throughput within a stable
// segment is measured once on the testbed and reused; morph decisions
// come from the manager's Planner, whose caches persist across the
// whole timeline (and across timelines, if the caller shares one
// Planner between runs).
func (mg *Manager) RunTimeline(events []spot.Event, horizon simtime.Duration) ([]TimelinePoint, Stats, error) {
	run, err := mg.StartOn(new(simtime.EventQueue), &sliceFeed{events: events}, horizon)
	if err != nil {
		return nil, Stats{}, err
	}
	run.r.q.Run(0)
	points, stats := run.Finish()
	return points, stats, nil
}

// Run is a timeline replay in flight on a shared event queue — the
// handle the fleet arbiter holds per job. The control loop schedules
// itself through the queue; when the queue drains past the horizon,
// Finish publishes the timeline and statistics.
type Run struct {
	r        *timelineRun
	finished bool
}

// StartOn builds a timeline run against the given feed and schedules
// its first control-loop step on q, without running the queue. Several
// runs can share one queue — each schedules only its own continuation,
// and equal-time callbacks fire in scheduling order — which is how the
// arbiter co-simulates N jobs and its own probe loop on one clock.
func (mg *Manager) StartOn(q *simtime.EventQueue, feed Feed, horizon simtime.Duration) (*Run, error) {
	prior := mg.Opts.EventGapPrior
	if prior <= 0 {
		prior = DefaultEventGapPrior
	}
	r := &timelineRun{
		mg:       mg,
		feed:     feed,
		hz:       simtime.Time(horizon),
		q:        q,
		gaps:     spot.NewGapEstimator(prior),
		live:     make(map[int]*vmInfo),
		mbCache:  make(map[[2]int]simtime.Duration),
		exCache:  make(map[[2]int]float64),
		released: make(map[int]bool),
		tr:       mg.Opts.Trace,
		trk:      mg.Opts.TraceTrack,
		met:      mg.Opts.Metrics,
	}
	if r.tr.Enabled() && r.trk == 0 {
		r.trk = r.tr.Track("job")
	}
	if r.met.Enabled() {
		mg.Plan.SetObserver(r.met)
	}
	if mg.Opts.Series.Enabled() {
		r.series = mg.Opts.Series
		r.sNames = newSeriesNames(mg.Opts.SeriesPrefix)
		r.sampleEvery = mg.Opts.SampleEvery
		if r.sampleEvery <= 0 {
			r.sampleEvery = DefaultSampleEvery
		}
		r.nextSample = simtime.Time(r.sampleEvery)
	}
	switch {
	case mg.Opts.Meter != nil:
		// A warm meter carries cumulative spend across manager
		// restarts (restored by restart.LoadSections).
		r.meter = mg.Opts.Meter
	case mg.Opts.Prices != nil:
		r.meter = price.NewMeter(mg.Opts.Prices)
	}
	if r.meter != nil {
		r.meanRate = r.meter.Curve().Mean(0, simtime.Time(horizon))
		for b := price.Bucket(0); b < price.NumBuckets; b++ {
			r.baseDollars[b] = r.meter.InBucket(b)
		}
		r.baseTotal = r.meter.Total()
	}
	if len(mg.Degrade) > 0 {
		r.degs = append(r.degs, mg.Degrade...)
		sort.SliceStable(r.degs, func(i, j int) bool { return r.degs[i].At < r.degs[j].At })
	}
	r.netSlow = 1
	r.obj = mg.Opts.Objective
	if len(mg.NetDegrade) > 0 {
		r.nets = append(r.nets, mg.NetDegrade...)
		sort.SliceStable(r.nets, func(i, j int) bool { return r.nets[i].At < r.nets[j].At })
	}
	if len(mg.ObjChange) > 0 {
		for _, oc := range mg.ObjChange {
			if err := oc.Objective.Validate(); err != nil {
				return nil, fmt.Errorf("manager: scheduled objective at %v: %w", oc.At, err)
			}
			if oc.Objective.Kind != autoconfig.ObjMaxThroughput && r.meter == nil {
				return nil, fmt.Errorf("manager: scheduled objective %v at %v needs a price curve", oc.Objective.Kind, oc.At)
			}
		}
		r.objs = append(r.objs, mg.ObjChange...)
		sort.SliceStable(r.objs, func(i, j int) bool { return r.objs[i].At < r.objs[j].At })
	}
	r.outs = sortOutages(mg.Outages)
	r.nextHB = simtime.Time(mg.Opts.HeartbeatEvery)
	r.onStep = r.step
	r.reschedule()
	return &Run{r: r}, nil
}

// ExamplesDone reports the examples trained so far — live progress the
// arbiter reads mid-run to compute deadline-urgency bids.
func (ru *Run) ExamplesDone() float64 { return ru.r.stats.Examples }

// Finish publishes the run's timeline and statistics after the shared
// queue has drained: it bills any unmetered tail and folds the meter
// totals into Stats. Idempotent.
func (ru *Run) Finish() ([]TimelinePoint, Stats) {
	r := ru.r
	if ru.finished {
		return r.points, r.stats
	}
	ru.finished = true
	r.tr.End(r.segSpan, r.now)
	if r.stats.Examples < 0 {
		r.stats.Examples = 0
	}
	if (r.meter != nil || r.series != nil) && r.acc < r.hz {
		// Bill any unmetered tail (a dead fleet outliving its last
		// event).
		r.chargeIdle(r.hz)
	}
	if r.meter != nil {
		r.stats.DollarsSpent = r.meter.Total() - r.baseTotal
		r.stats.DollarsCompute = r.meter.InBucket(price.Compute) - r.baseDollars[price.Compute]
		r.stats.DollarsReconfig = r.meter.InBucket(price.Reconfig) - r.baseDollars[price.Reconfig]
		r.stats.DollarsIdle = r.meter.InBucket(price.Idle) - r.baseDollars[price.Idle]
	}
	if r.series != nil {
		// Emit any cadence ticks between the last event and the horizon,
		// then close every series with a final sample at the horizon.
		if r.now < r.hz {
			r.now = r.hz
		}
		r.catchupSamples()
		r.sample(r.hz)
	}
	return r.points, r.stats
}

// Validate sanity-checks options.
func (o Options) Validate() error {
	if o.CheckpointEvery < 1 {
		return fmt.Errorf("manager: CheckpointEvery must be ≥ 1")
	}
	if o.StragglerThreshold <= 1 {
		return fmt.Errorf("manager: StragglerThreshold must exceed 1")
	}
	if o.Policy < PolicyMorphOrHold || o.Policy > PolicyConstant {
		return fmt.Errorf("manager: unknown morph policy %d", int(o.Policy))
	}
	if o.Policy == PolicyConstant && o.ConstOverhead <= 0 {
		return fmt.Errorf("manager: PolicyConstant needs ConstOverhead > 0")
	}
	if o.HeartbeatEvery < 0 {
		return fmt.Errorf("manager: HeartbeatEvery must be >= 0")
	}
	if err := o.Objective.Validate(); err != nil {
		return err
	}
	if o.Objective.Kind != autoconfig.ObjMaxThroughput && o.Prices == nil && o.Meter == nil {
		return fmt.Errorf("manager: objective %v needs a price curve (Options.Prices or Options.Meter)", o.Objective.Kind)
	}
	return nil
}
