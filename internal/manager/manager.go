// Package manager implements the Varuna manager (§4.6): a control
// plane that tracks the spot-VM fleet through heartbeats, detects
// preemptions (missed heartbeats) and fail-stutter VMs (per-micro-batch
// compute-time outliers), grows the cluster through the provisioning
// API, and triggers job morphing whenever the usable GPU set changes.
// It also drives continuous checkpointing so that a preempted job
// resumes from the last mini-batch boundary.
package manager

import (
	"fmt"
	"sort"

	"repro/internal/autoconfig"
	"repro/internal/simtime"
	"repro/internal/spot"
	"repro/internal/testbed"
)

// Options tunes the manager.
type Options struct {
	// CheckpointEvery is the checkpoint cadence in mini-batches.
	CheckpointEvery int
	// MorphOverhead is the downtime of one reconfiguration: stopping
	// tasks, re-partitioning, loading the checkpoint shards.
	MorphOverhead simtime.Duration
	// CheckpointOverhead is the stall per checkpoint (local SSD write;
	// cloud upload happens in the background, §4.5).
	CheckpointOverhead simtime.Duration
	// StragglerThreshold flags a VM whose compute heartbeat exceeds
	// the fleet median by this factor (§4.6 reports ~30% stutters).
	StragglerThreshold float64
}

// DefaultOptions mirrors the deployment described in the paper.
func DefaultOptions() Options {
	return Options{
		CheckpointEvery:    8,
		MorphOverhead:      4 * simtime.Minute,
		CheckpointOverhead: 15 * simtime.Second,
		StragglerThreshold: 1.20,
	}
}

// DetectStragglers returns the VM ids whose reported per-micro-batch
// compute time exceeds threshold × fleet median — the fail-stutter
// correction of §4.6. Needs at least 3 reports to be meaningful.
func DetectStragglers(heartbeats map[int]float64, threshold float64) []int {
	if len(heartbeats) < 3 {
		return nil
	}
	times := make([]float64, 0, len(heartbeats))
	for _, t := range heartbeats {
		times = append(times, t)
	}
	sort.Float64s(times)
	median := times[len(times)/2]
	var out []int
	for id, t := range heartbeats {
		if t > threshold*median {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// TimelinePoint is one sample of the training timeline (Figure 8).
type TimelinePoint struct {
	At simtime.Time
	// GPUs usable at this moment (excluding flagged stragglers).
	GPUs int
	// Config is the active P×D choice (zero if the job is down).
	Config autoconfig.Choice
	// ExPerSec is the whole-job throughput of the running segment.
	ExPerSec float64
	// Event labels what happened: "morph", "p" (replacement without
	// config change, as in Figure 8), "checkpoint", "down", "".
	Event string
}

// Stats summarizes a timeline run.
type Stats struct {
	// Examples is the total training examples processed.
	Examples float64
	// MiniBatches is completed mini-batch count.
	MiniBatches int
	// Morphs counts configuration changes; Replacements counts
	// morph events that kept the same P×D.
	Morphs, Replacements int
	// Preemptions and Allocations count fleet events.
	Preemptions, Allocations int
	// Checkpoints counts completed checkpoints; LostMiniBatches is
	// work discarded by preemption rollbacks.
	Checkpoints     int
	LostMiniBatches int
	// StragglersExcluded counts VMs removed for fail-stutter.
	StragglersExcluded int
	// Downtime is time spent not training (morphing, restarting).
	Downtime simtime.Duration
}

// Manager replays a spot-market event trace against a testbed-backed
// job, morphing as the fleet changes.
type Manager struct {
	In   autoconfig.Inputs
	TB   *testbed.Testbed
	Opts Options

	rng *simtime.Rand
}

// New builds a manager.
func New(in autoconfig.Inputs, tb *testbed.Testbed, opts Options, seed int64) *Manager {
	return &Manager{In: in, TB: tb, Opts: opts, rng: simtime.NewRand(seed)}
}

// vmInfo tracks one live VM.
type vmInfo struct {
	gpus  int
	speed float64 // hidden fail-stutter factor
	slow  bool    // flagged by the manager
}

// RunTimeline replays events until horizon and returns the timeline and
// statistics. Fleet changes trigger morphing; a preemption additionally
// rolls the job back to the last checkpoint. Throughput within a stable
// segment is measured once on the testbed and reused.
func (mg *Manager) RunTimeline(events []spot.Event, horizon simtime.Duration) ([]TimelinePoint, Stats, error) {
	var (
		points  []TimelinePoint
		stats   Stats
		live    = make(map[int]*vmInfo)
		now     simtime.Time
		evIdx   int
		current autoconfig.Choice
		running bool
		// mini-batches since last checkpoint (lost on preemption)
		sinceCkpt int
		mbTime    simtime.Duration
		// Spot fleets revisit the same sizes constantly; cache the
		// morph decision per usable-GPU count and the measured
		// mini-batch time per configuration.
		choiceCache = make(map[int]autoconfig.Choice)
		choiceFail  = make(map[int]bool)
		mbCache     = make(map[[2]int]simtime.Duration)
		exCache     = make(map[[2]int]float64)
	)

	usableGPUs := func() int {
		g := 0
		for _, vm := range live {
			if !vm.slow {
				g += vm.gpus
			}
		}
		return g
	}

	// flagStragglers runs the fail-stutter detector over simulated
	// compute heartbeats.
	flagStragglers := func() {
		hb := make(map[int]float64, len(live))
		for id, vm := range live {
			if vm.slow {
				continue
			}
			hb[id] = vm.speed * (1 + 0.02*mg.rng.NormFloat64())
		}
		for _, id := range DetectStragglers(hb, mg.Opts.StragglerThreshold) {
			live[id].slow = true
			stats.StragglersExcluded++
		}
	}

	// morph reconfigures to the current usable fleet. Fleet sizes are
	// quantized (rounded down, ~2% steps) before the sweep: a one-GPU
	// delta never changes the best configuration materially, and
	// quantization keeps the decision cache hot across the constant
	// single-VM churn of a spot fleet.
	morph := func(label string) {
		flagStragglers()
		g := usableGPUs()
		if q := g / 50; q > 0 {
			g -= g % (q + 1)
		}
		stats.Downtime += mg.Opts.MorphOverhead
		now = now.Add(mg.Opts.MorphOverhead)
		choice, ok := choiceCache[g]
		if !ok && !choiceFail[g] {
			var err error
			choice, err = autoconfig.Best(mg.In, g)
			if err != nil {
				choiceFail[g] = true
			} else {
				choiceCache[g] = choice
			}
		}
		if choiceFail[g] {
			running = false
			points = append(points, TimelinePoint{At: now, GPUs: g, Event: "down"})
			return
		}
		if running && choice.P == current.P && choice.D == current.D {
			label = "p" // replacement, no config change (Figure 8)
			stats.Replacements++
		} else {
			stats.Morphs++
		}
		current = choice
		running = true
		// One measured mini-batch characterizes the segment.
		key := [2]int{choice.P, choice.D}
		if _, ok := mbCache[key]; !ok {
			ms, err := mg.TB.MeasureMiniBatch(testbed.JobConfig{
				Spec:   mg.In.Spec,
				Stages: choice.Stages,
				M:      choice.M,
				Nm:     choice.Nm,
				D:      choice.D,
			})
			if err != nil {
				running = false
				return
			}
			mbCache[key] = ms.MiniBatchTime
			exCache[key] = ms.ExPerSec()
		}
		mbTime = mbCache[key]
		points = append(points, TimelinePoint{
			At: now, GPUs: g, Config: choice, ExPerSec: exCache[key], Event: label,
		})
	}

	applyEvent := func(e spot.Event) bool {
		switch e.Kind {
		case spot.Alloc:
			speed := 1.0
			if mg.rng.Float64() < 0.05 { // ~1 in 20 VMs fail-stutters
				speed = 1.25 + 0.15*mg.rng.Float64()
			}
			live[e.VM] = &vmInfo{gpus: e.GPUs, speed: speed}
			stats.Allocations++
			return false
		case spot.Preempt:
			delete(live, e.VM)
			stats.Preemptions++
			return true
		}
		return false
	}

	hz := simtime.Time(horizon)
	for now < hz {
		// Apply all events due now; batch arrivals into one morph.
		fleetChanged := false
		preempted := false
		for evIdx < len(events) && events[evIdx].At <= now {
			pre := applyEvent(events[evIdx])
			preempted = preempted || pre
			fleetChanged = true
			evIdx++
		}
		if preempted && running {
			// Roll back to the last checkpoint.
			stats.LostMiniBatches += sinceCkpt
			stats.Examples -= float64(sinceCkpt * current.Examples)
			stats.MiniBatches -= sinceCkpt
			sinceCkpt = 0
		}
		if fleetChanged || !running {
			morph("morph")
			if !running {
				// Nothing usable: fast-forward to the next event.
				if evIdx < len(events) {
					now = simtime.Max(now, events[evIdx].At)
					continue
				}
				break
			}
			continue
		}

		// Train until the next event or horizon.
		next := hz
		if evIdx < len(events) && events[evIdx].At < next {
			next = events[evIdx].At
		}
		for now < next {
			now = now.Add(mbTime)
			stats.MiniBatches++
			stats.Examples += float64(current.Examples)
			sinceCkpt++
			if sinceCkpt >= mg.Opts.CheckpointEvery {
				now = now.Add(mg.Opts.CheckpointOverhead)
				stats.Downtime += mg.Opts.CheckpointOverhead
				stats.Checkpoints++
				sinceCkpt = 0
				points = append(points, TimelinePoint{
					At: now, GPUs: usableGPUs(), Config: current,
					ExPerSec: float64(current.Examples) / mbTime.Seconds(),
					Event:    "checkpoint",
				})
			}
		}
	}
	if stats.Examples < 0 {
		stats.Examples = 0
	}
	return points, stats, nil
}

// Validate sanity-checks options.
func (o Options) Validate() error {
	if o.CheckpointEvery < 1 {
		return fmt.Errorf("manager: CheckpointEvery must be ≥ 1")
	}
	if o.StragglerThreshold <= 1 {
		return fmt.Errorf("manager: StragglerThreshold must exceed 1")
	}
	return nil
}
