package manager

// SetLegacyHoldDiscount pins the preempt-next hold discount to the
// historical fixed ½ (test-only): the calibration golden test runs
// the same trace both ways and checks the hold count only moves in
// the expected direction.
func SetLegacyHoldDiscount(mg *Manager, v bool) { mg.legacyHoldDiscount = v }
