package sim

import "repro/internal/simtime"

// EstimateMakespanSerial exposes the serial-anchor estimation path so
// tests can pin the parallel-anchor EstimateMakespan to bit-identical
// output.
func EstimateMakespanSerial(cfg Config) (simtime.Duration, error) {
	return estimateMakespan(cfg, false)
}
