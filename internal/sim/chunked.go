package sim

import (
	"fmt"
	"runtime"

	"repro/internal/schedule"
	"repro/internal/simtime"
)

// RunChunked executes a mini-batch in memory-bounded chunks with a full
// pipeline drain between chunks. This is how GPipe-style schedules run
// large micro-batch counts in practice: all-forward-then-all-backward
// stashes one input activation per in-flight micro-batch, so the
// mini-batch is split into chunks that fit device memory and the
// pipeline flushes between them. Each flush re-pays the fill/drain
// bubble, and on slow networks the per-hop activation latency in the
// fill phase is fully exposed — the mechanism behind GPipe's growing
// gap to Varuna in Table 5.
//
// gen builds the schedule for one chunk (e.g. schedule.GPipe). The
// allreduce and optimizer step are paid once, after the last chunk.
func RunChunked(cfg Config, chunk int, gen func(depth, micros int) (*schedule.Schedule, error)) (Result, error) {
	if chunk < 1 {
		return Result{}, fmt.Errorf("sim: chunk %d < 1", chunk)
	}
	if cfg.Policy.Rule {
		return Result{}, fmt.Errorf("sim: chunked execution needs a strict policy")
	}
	total := Result{}
	remaining := cfg.Micros
	var offset simtime.Time
	var busy simtime.Duration
	for remaining > 0 {
		n := chunk
		if n > remaining {
			n = remaining
		}
		s, err := gen(cfg.Depth, n)
		if err != nil {
			return Result{}, err
		}
		sub := cfg
		sub.Micros = n
		sub.Orders = s.Orders
		res, err := Run(sub)
		if err != nil {
			return Result{}, err
		}
		busy += res.Busy
		for _, span := range res.Trace {
			span.Start = span.Start.Add(simtime.Duration(offset))
			span.End = span.End.Add(simtime.Duration(offset))
			total.Trace = append(total.Trace, span)
		}
		total.OpportunisticRuns += res.OpportunisticRuns
		total.StageEnds = make([]simtime.Time, len(res.StageEnds))
		for i, end := range res.StageEnds {
			total.StageEnds[i] = end.Add(simtime.Duration(offset))
		}
		offset = offset.Add(res.PipelineSpan)
		remaining -= n
	}
	total.PipelineSpan = simtime.Duration(offset)
	// Allreduce and optimizer once, after the final chunk: the slowest
	// stage bounds the tail.
	var tail simtime.Duration
	for s := 0; s < cfg.Depth; s++ {
		t := cfg.Costs[s].AllReduce + cfg.Costs[s].Optimizer
		if cfg.Policy.NoFlush {
			t = cfg.Costs[s].Optimizer
		}
		if t > tail {
			tail = t
		}
	}
	total.Makespan = total.PipelineSpan + tail
	total.Busy = busy
	if total.PipelineSpan > 0 {
		whole := total.PipelineSpan * simtime.Duration(cfg.Depth)
		total.BubbleFrac = 1 - float64(busy)/float64(whole)
	}
	return total, nil
}

// EstimateMakespan predicts the mini-batch time of cfg, exploiting the
// pipeline's steady state to stay fast for large micro-batch counts:
// beyond Nm = 8·P the schedule is periodic, so the simulator runs two
// anchor points (4·P and 8·P micro-batches) and extrapolates linearly.
// This keeps Varuna's auto-configuration sweep at sub-second cost per
// configuration regardless of batch size — the §7.2 requirement that
// the simulator "react to change in spot VM availability" in hundreds
// of milliseconds.
//
// When the configuration is deterministic (no jitter source), the two
// anchor simulations run concurrently: the deepest candidate of a
// morph sweep is the sweep's critical path (its anchors are the
// largest Nm), so splitting them across cores cuts morph decision
// latency without changing the result — each anchor is an independent
// mean-parameter simulation, and the extrapolation is bit-identical to
// the serial evaluation order.
func EstimateMakespan(cfg Config) (simtime.Duration, error) {
	return estimateMakespan(cfg, true)
}

// estimateMakespan is EstimateMakespan with the anchor-parallelism
// knob explicit; tests pin parallel == serial.
func estimateMakespan(cfg Config, parallel bool) (simtime.Duration, error) {
	if cfg.Depth < 1 {
		return 0, fmt.Errorf("sim: bad depth %d", cfg.Depth)
	}
	// Estimation only needs the makespan: always take the no-trace
	// fast path, whatever the caller's Config says.
	cfg.CollectTrace = false
	anchor := 8 * cfg.Depth
	if cfg.Micros <= anchor || cfg.Micros < 16 {
		res, err := Run(cfg)
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}
	half := cfg
	half.Micros = anchor / 2
	full := cfg
	full.Micros = anchor
	var (
		r1, r2     Result
		err1, err2 error
	)
	// A shared jitter source would make concurrent runs race (and
	// reorder the draws), so only deterministic configs fan out.
	if parallel && cfg.Rand == nil && runtime.GOMAXPROCS(0) > 1 {
		done := make(chan struct{})
		go func() {
			defer close(done)
			r1, err1 = Run(half)
		}()
		r2, err2 = Run(full)
		<-done
	} else {
		r1, err1 = Run(half)
		r2, err2 = Run(full)
	}
	if err1 != nil {
		return 0, err1
	}
	if err2 != nil {
		return 0, err2
	}
	perMicro := float64(r2.Makespan-r1.Makespan) / float64(anchor-anchor/2)
	return r2.Makespan + simtime.Duration(perMicro*float64(cfg.Micros-anchor)+0.5), nil
}

// GPipeChunk picks the memory-feasible chunk size for GPipe on a device
// with stashBudget bytes available for input-activation stash, given
// the per-micro-batch stash size. It never goes below the pipeline
// depth (GPipe needs at least P micro-batches in flight to fill the
// pipeline).
func GPipeChunk(stashBudget, stashPerMicro int64, depth int) int {
	if stashPerMicro <= 0 {
		return depth
	}
	c := int(stashBudget / stashPerMicro)
	if c < depth {
		c = depth
	}
	return c
}
