package sim

import (
	"fmt"
	"runtime"

	"repro/internal/schedule"
	"repro/internal/simtime"
)

// RunChunked executes a mini-batch in memory-bounded chunks with a full
// pipeline drain between chunks. This is how GPipe-style schedules run
// large micro-batch counts in practice: all-forward-then-all-backward
// stashes one input activation per in-flight micro-batch, so the
// mini-batch is split into chunks that fit device memory and the
// pipeline flushes between them. Each flush re-pays the fill/drain
// bubble, and on slow networks the per-hop activation latency in the
// fill phase is fully exposed — the mechanism behind GPipe's growing
// gap to Varuna in Table 5.
//
// gen builds the schedule for one chunk (e.g. schedule.GPipe). The
// allreduce and optimizer step are paid once, after the last chunk.
func RunChunked(cfg Config, chunk int, gen func(depth, micros int) (*schedule.Schedule, error)) (Result, error) {
	if chunk < 1 {
		return Result{}, fmt.Errorf("sim: chunk %d < 1", chunk)
	}
	if cfg.Policy.Rule {
		return Result{}, fmt.Errorf("sim: chunked execution needs a strict policy")
	}
	total := Result{}
	remaining := cfg.Micros
	var offset simtime.Time
	var busy simtime.Duration
	for remaining > 0 {
		n := chunk
		if n > remaining {
			n = remaining
		}
		s, err := gen(cfg.Depth, n)
		if err != nil {
			return Result{}, err
		}
		sub := cfg
		sub.Micros = n
		sub.Orders = s.Orders
		res, err := Run(sub)
		if err != nil {
			return Result{}, err
		}
		busy += res.Busy
		for _, span := range res.Trace {
			span.Start = span.Start.Add(simtime.Duration(offset))
			span.End = span.End.Add(simtime.Duration(offset))
			total.Trace = append(total.Trace, span)
		}
		total.OpportunisticRuns += res.OpportunisticRuns
		total.StageEnds = make([]simtime.Time, len(res.StageEnds))
		for i, end := range res.StageEnds {
			total.StageEnds[i] = end.Add(simtime.Duration(offset))
		}
		offset = offset.Add(res.PipelineSpan)
		remaining -= n
	}
	total.PipelineSpan = simtime.Duration(offset)
	// Allreduce and optimizer once, after the final chunk: the slowest
	// stage bounds the tail.
	var tail simtime.Duration
	for s := 0; s < cfg.Depth; s++ {
		t := cfg.Costs[s].AllReduce + cfg.Costs[s].Optimizer
		if cfg.Policy.NoFlush {
			t = cfg.Costs[s].Optimizer
		}
		if t > tail {
			tail = t
		}
	}
	total.Makespan = total.PipelineSpan + tail
	total.Busy = busy
	if total.PipelineSpan > 0 {
		whole := total.PipelineSpan * simtime.Duration(cfg.Depth)
		total.BubbleFrac = 1 - float64(busy)/float64(whole)
	}
	return total, nil
}

// EstimateMakespan predicts the mini-batch time of cfg.
//
// Deterministic configurations (no jitter source) are exact: the
// steady-state cycle detector (steadystate.go) makes a full-Nm run
// cost O(warm-up + drain) events regardless of Nm, so the estimate is
// the bit-exact makespan a brute-force simulation of all Nm
// micro-batches produces — no extrapolation error. This keeps Varuna's
// auto-configuration sweep at sub-second cost per configuration for
// any batch size, the §7.2 requirement that the simulator "react to
// change in spot VM availability" in hundreds of milliseconds.
//
// Jittered configurations keep the two-anchor path: beyond Nm = 8·P
// the schedule is periodic in expectation, so the simulator runs two
// anchor points (4·P and 8·P micro-batches) and extrapolates linearly.
// The anchors run concurrently when the configuration is deterministic
// but has the detector disabled (a shared jitter source would race and
// reorder its draws, so jittered anchors stay serial).
func EstimateMakespan(cfg Config) (simtime.Duration, error) {
	return estimateMakespan(cfg, true)
}

// estimateMakespan is EstimateMakespan with the anchor-parallelism
// knob explicit; tests pin parallel == serial.
func estimateMakespan(cfg Config, parallel bool) (simtime.Duration, error) {
	if cfg.Depth < 1 {
		return 0, fmt.Errorf("sim: bad depth %d", cfg.Depth)
	}
	// Estimation only needs the makespan: always take the no-trace
	// fast path, whatever the caller's Config says.
	cfg.CollectTrace = false
	if steadyStateEligible(&cfg) {
		// The cycle detector can arm, making the full-Nm run cheap:
		// return the exact makespan instead of an extrapolation. A
		// deterministic config the detector must refuse (the
		// strict-opportunistic hybrid) stays on the anchor path below —
		// exactness there would cost a full O(Nm) event-driven run.
		res, err := Run(cfg)
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}
	anchor := 8 * cfg.Depth
	if cfg.Micros <= anchor || cfg.Micros < 16 {
		res, err := Run(cfg)
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}
	half := cfg
	half.Micros = anchor / 2
	full := cfg
	full.Micros = anchor
	var (
		r1, r2     Result
		err1, err2 error
	)
	// A shared jitter source would make concurrent runs race (and
	// reorder the draws), so only deterministic configs fan out.
	if parallel && cfg.Rand == nil && runtime.GOMAXPROCS(0) > 1 {
		done := make(chan struct{})
		go func() {
			defer close(done)
			r1, err1 = Run(half)
		}()
		r2, err2 = Run(full)
		<-done
	} else {
		r1, err1 = Run(half)
		r2, err2 = Run(full)
	}
	if err1 != nil {
		return 0, err1
	}
	if err2 != nil {
		return 0, err2
	}
	perMicro := float64(r2.Makespan-r1.Makespan) / float64(anchor-anchor/2)
	return r2.Makespan + simtime.Duration(perMicro*float64(cfg.Micros-anchor)+0.5), nil
}

// GPipeChunk picks the memory-feasible chunk size for GPipe on a device
// with stashBudget bytes available for input-activation stash, given
// the per-micro-batch stash size. It never goes below the pipeline
// depth (GPipe needs at least P micro-batches in flight to fill the
// pipeline).
func GPipeChunk(stashBudget, stashPerMicro int64, depth int) int {
	if stashPerMicro <= 0 {
		return depth
	}
	c := int(stashBudget / stashPerMicro)
	if c < depth {
		c = depth
	}
	return c
}
