// Package sim is Varuna's parametrized event-driven simulator (§4.4)
// and the pipeline executor underlying the testbed. Given the
// calibrated primitive parameters of Table 2 — per-stage forward,
// backward and recompute times, activation/gradient transfer times and
// per-stage allreduce times — it simulates one full mini-batch (Nm
// micro-batches followed by the data-parallel allreduce) for a concrete
// (P, D, m, Nm) configuration and reports the estimated
// time-per-mini-batch, plus a task-level trace for Gantt rendering
// (Figure 7).
//
// The executor implements both scheduling families the paper compares:
//
//   - Rule-based (Varuna, §3.2): backward preferred when ready
//     (constraint 3), recompute scheduled just-in-time so it completes
//     as the gradient arrives (constraint 1), a stage that recomputed
//     waits for the matching backward (constraint 2), and when the due
//     task's inputs are missing the stage opportunistically runs
//     another ready task (work conservation under jitter).
//   - Strict orders (GPipe, 1F1B, DeepSpeed): the stage follows a fixed
//     task list, stalling whenever the next task's inputs are missing.
//
// The simulate-and-decide loop is Varuna's morphing hot path (§7.2):
// the executor is pooled across invocations, all per-stage bookkeeping
// lives in flat backing arrays reused run to run, and every event goes
// through the event queue's allocation-free ScheduleCall path. With
// CollectTrace off (the default for EstimateMakespan) a steady-state
// simulation performs no per-task allocations at all.
package sim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/schedule"
	"repro/internal/simtime"
)

// StageCosts carries the calibrated parameters of one pipeline stage
// (Table 2), folded to a concrete micro-batch size m.
type StageCosts struct {
	// Fwd, Bwd, Rec are compute times per micro-batch.
	Fwd, Bwd, Rec simtime.Duration
	// ActSend is the time to move the stage's output activations to
	// the next stage (latency + serialization).
	ActSend simtime.Duration
	// GradSend is the time to move input gradients to the previous
	// stage.
	GradSend simtime.Duration
	// AllReduce is the data-parallel gradient allreduce for this
	// stage's parameters over its replica ring.
	AllReduce simtime.Duration
	// Optimizer is the weight-update time after the allreduce.
	Optimizer simtime.Duration
}

// Config describes one simulated mini-batch execution.
type Config struct {
	// Depth is the pipeline depth P.
	Depth int
	// Micros is the number of micro-batches Nm.
	Micros int
	// Policy selects the scheduling discipline.
	Policy schedule.Policy
	// Orders holds the static per-stage task orders for strict
	// policies. Ignored in rule mode.
	Orders []schedule.Order
	// Costs holds per-stage calibrated parameters (len Depth).
	Costs []StageCosts
	// JitterCV applies multiplicative jitter to every network
	// transfer; 0 simulates with means (the parametric estimate).
	JitterCV float64
	// ComputeJitterCV jitters kernel times. GPU kernels are far more
	// stable than commodity networks; the testbed uses ~0.02. 0 means
	// deterministic compute.
	ComputeJitterCV float64
	// Rand supplies jitter samples; required when either jitter is set.
	Rand *simtime.Rand
	// SpeedFactor optionally slows individual stages (fail-stutter
	// modelling); nil means all stages run at full speed. A factor of
	// 1.3 makes the stage 30% slower.
	SpeedFactor []float64
	// MaxInFlight caps forwarded-but-not-backwarded micro-batches per
	// stage in rule mode (activation stash memory). 0 means 2·Depth.
	MaxInFlight int
	// CollectTrace records the per-task TaskSpan trace in the Result.
	// It defaults to off — the makespan-only fast path used by
	// EstimateMakespan and the autoconfig sweep — and must be set by
	// callers that render Gantt charts or derive static orders. All
	// summary metrics (Makespan, PipelineSpan, StageEnds, BubbleFrac)
	// are identical with the trace on or off.
	CollectTrace bool
	// DisableSteadyState turns off the steady-state cycle detector
	// (steadystate.go), forcing every deterministic run through full
	// event-by-event execution. The detector is bit-identical to brute
	// force by construction (and pinned so by the golden tests), so
	// this knob exists for those tests and for debugging, not tuning.
	DisableSteadyState bool
}

// TaskSpan is one executed task in the trace.
type TaskSpan struct {
	Stage      int
	Task       schedule.Task
	Start, End simtime.Time
}

// Result summarizes a simulated mini-batch.
type Result struct {
	// Makespan is the full mini-batch time including the allreduce
	// and optimizer step.
	Makespan simtime.Duration
	// PipelineSpan is the time until the last backward completes.
	PipelineSpan simtime.Duration
	// Trace lists every executed task in start order. Empty unless
	// Config.CollectTrace was set.
	Trace []TaskSpan
	// StageEnds records when each stage finished its last backward —
	// the point its data-parallel allreduce can begin.
	StageEnds []simtime.Time
	// Busy is the summed task time across all stages up to the
	// pipeline span — the complement of BubbleFrac, available even
	// when the trace is off.
	Busy simtime.Duration
	// BubbleFrac is idle stage-time divided by total stage-time up to
	// the pipeline span.
	BubbleFrac float64
	// OpportunisticRuns counts tasks run out of static order to hide
	// jitter (rule mode only).
	OpportunisticRuns int
}

const never = simtime.Time(math.MaxInt64)

type stageState struct {
	idx  int
	busy bool

	actArrival    []simtime.Time // activation availability per micro
	gradArrival   []simtime.Time
	gradAnnounce  []simtime.Time // predicted gradient arrival (known at upstream B start)
	fwdDone       []bool
	recDone       []bool
	bwdDone       []bool
	fwdSenderEnd  []simtime.Time // for SyncComm: when sender finished computing
	gradSenderEnd []simtime.Time

	hot       int    // micro whose activations are still resident (-1 none)
	locked    int    // micro we recomputed for and must backward next (-1 none)
	nextFwd   int    // next micro to forward (rule mode)
	inFlight  int    // forwarded but not yet backwarded
	orderPos  int    // strict mode position
	orderDone []bool // strict mode: executed order entries (incl. pulled-forward)
	hasRec    []bool // strict mode: order contains a recompute for micro m
	bwdLeft   int
	bwdLow    int // lowest micro not yet backwarded (cursor over bwdDone)
	fwdHi     int // 1 + highest micro forwarded so far
	busySum   simtime.Duration
	lastBwd   simtime.Time
	wakeAt    simtime.Time // pending scheduled wake (dedupe)
}

// executor simulates one mini-batch. Instances are pooled: all
// per-stage bookkeeping slices point into the flat timeBuf/boolBuf/
// orderBuf backing arrays, which are resized (not reallocated) between
// runs, and the event callbacks are bound once per instance so the
// event queue never wraps a fresh closure on the hot path.
type executor struct {
	cfg    Config
	q      simtime.EventQueue
	stages []stageState
	trace  []TaskSpan
	opport int
	ss     steadyState

	timeBuf  []simtime.Time
	boolBuf  []bool
	orderBuf []bool

	onEvent func(a, b int32)
	onShift func(a, b int32) (int32, int32)
}

// Event kinds on the executor's single dispatch callback. The kind
// rides in the high bits of the first argument (evA) so that pending
// events are self-describing: the steady-state detector can both
// fingerprint the queue and shift the micro indices buried in event
// arguments when it fast-forwards whole periods.
const (
	evTry int32 = iota
	evComplete
	evActArrive
	evGradArrive
	evWake
)

// evA packs an event kind and a stage index into the first callback
// argument (validate bounds Depth below 1<<16).
func evA(kind int32, stage int) int32 { return kind<<16 | int32(stage) }

var execPool = sync.Pool{New: func() any { return newExecutor() }}

func newExecutor() *executor {
	e := &executor{}
	e.onEvent = func(a, b int32) {
		s := int(a & (1<<16 - 1))
		switch a >> 16 {
		case evTry:
			e.try(s)
		case evComplete:
			t := schedule.Task{Kind: schedule.Kind(b >> 24), Micro: int(b & (1<<24 - 1))}
			e.complete(&e.stages[s], t, e.q.Now())
		case evActArrive:
			e.stages[s].actArrival[b] = e.q.Now()
			e.try(s)
		case evGradArrive:
			e.stages[s].gradArrival[b] = e.q.Now()
			e.try(s)
		case evWake:
			st := &e.stages[s]
			if st.wakeAt == e.q.Now() {
				st.wakeAt = never
			}
			e.try(s)
		}
	}
	e.onShift = e.shiftEventArgs
	return e
}

// packTask encodes a task for the two-int32 event-callback channel.
func packTask(t schedule.Task) int32 { return int32(t.Kind)<<24 | int32(t.Micro) }

// grab carves n slots off buf, growing it as needed. Slices carved
// before a growth keep aliasing the old backing array — harmless,
// since every carved slice is private to one stage.
func grab[T any](buf *[]T, n int) []T {
	s := *buf
	off := len(s)
	if cap(s)-off < n {
		grown := make([]T, off, 2*(off+n))
		copy(grown, s)
		s = grown
	}
	s = s[:off+n]
	*buf = s
	return s[off : off+n : off+n]
}

// reset prepares the pooled executor for a new run of cfg.
func (e *executor) reset(cfg Config) {
	e.cfg = cfg
	e.opport = 0
	e.q.Reset()
	e.timeBuf = e.timeBuf[:0]
	e.boolBuf = e.boolBuf[:0]
	e.orderBuf = e.orderBuf[:0]
	e.trace = nil
	if cfg.CollectTrace {
		e.trace = make([]TaskSpan, 0, 3*cfg.Depth*cfg.Micros)
	}
	if cap(e.stages) < cfg.Depth {
		e.stages = make([]stageState, cfg.Depth)
	} else {
		e.stages = e.stages[:cfg.Depth]
	}
	nm := cfg.Micros
	for s := 0; s < cfg.Depth; s++ {
		st := &e.stages[s]
		*st = stageState{
			idx:           s,
			actArrival:    grab(&e.timeBuf, nm),
			gradArrival:   grab(&e.timeBuf, nm),
			gradAnnounce:  grab(&e.timeBuf, nm),
			fwdSenderEnd:  grab(&e.timeBuf, nm),
			gradSenderEnd: grab(&e.timeBuf, nm),
			fwdDone:       grab(&e.boolBuf, nm),
			recDone:       grab(&e.boolBuf, nm),
			bwdDone:       grab(&e.boolBuf, nm),
			hot:           -1,
			locked:        -1,
			bwdLeft:       nm,
			bwdLow:        0,
			fwdHi:         0,
			wakeAt:        never,
		}
		for m := 0; m < nm; m++ {
			st.gradArrival[m] = never
			st.gradAnnounce[m] = never
			st.fwdSenderEnd[m] = never
			st.gradSenderEnd[m] = never
			st.fwdDone[m] = false
			st.recDone[m] = false
			st.bwdDone[m] = false
			if s == 0 {
				st.actArrival[m] = 0
				st.fwdSenderEnd[m] = 0
			} else {
				st.actArrival[m] = never
			}
		}
		if !cfg.Policy.Rule {
			st.orderDone = grab(&e.orderBuf, len(cfg.Orders[s]))
			for i := range st.orderDone {
				st.orderDone[i] = false
			}
			st.hasRec = grab(&e.boolBuf, nm)
			for m := range st.hasRec {
				st.hasRec[m] = false
			}
			for _, t := range cfg.Orders[s] {
				if t.Kind == schedule.Recompute {
					st.hasRec[t.Micro] = true
				}
			}
		}
	}
	e.ss.reset(e)
}

// release returns the executor to the pool, dropping every reference
// into caller-owned state (costs, orders, rand, trace).
func (e *executor) release() {
	e.cfg = Config{}
	e.trace = nil
	execPool.Put(e)
}

// Run simulates one mini-batch under cfg.
func Run(cfg Config) (Result, error) {
	if err := validate(&cfg); err != nil {
		return Result{}, err
	}
	e := execPool.Get().(*executor)
	defer e.release()
	return e.run(cfg)
}

// run executes one validated mini-batch on this executor.
func (e *executor) run(cfg Config) (Result, error) {
	e.reset(cfg)
	for s := 0; s < cfg.Depth; s++ {
		e.q.ScheduleCall(0, e.onEvent, evA(evTry, s), 0)
	}
	e.q.Run(0)

	res := Result{Trace: e.trace, OpportunisticRuns: e.opport, StageEnds: make([]simtime.Time, cfg.Depth)}
	e.trace = nil // ownership moves to the caller
	var pipeEnd, fullEnd simtime.Time
	var busy simtime.Duration
	for i := range e.stages {
		st := &e.stages[i]
		if st.bwdLeft > 0 {
			return Result{}, fmt.Errorf("sim: deadlock — stage %d has %d backwards pending", st.idx, st.bwdLeft)
		}
		res.StageEnds[i] = st.lastBwd
		pipeEnd = simtime.Max(pipeEnd, st.lastBwd)
		busy += st.busySum
	}
	for s := range e.stages {
		end := e.stages[s].lastBwd
		if !e.cfg.Policy.NoFlush {
			end = end.Add(e.netDur(e.cfg.Costs[s].AllReduce))
		}
		end = end.Add(e.dur(e.cfg.Costs[s].Optimizer, s))
		fullEnd = simtime.Max(fullEnd, end)
	}
	res.PipelineSpan = simtime.Duration(pipeEnd)
	res.Makespan = simtime.Duration(fullEnd)
	res.Busy = busy
	if pipeEnd > 0 {
		total := simtime.Duration(pipeEnd) * simtime.Duration(cfg.Depth)
		res.BubbleFrac = 1 - float64(busy)/float64(total)
	}
	return res, nil
}

func validate(cfg *Config) error {
	if cfg.Depth < 1 || cfg.Micros < 1 {
		return fmt.Errorf("sim: bad shape depth=%d micros=%d", cfg.Depth, cfg.Micros)
	}
	if cfg.Micros >= 1<<24 {
		return fmt.Errorf("sim: %d micro-batches exceeds the executor's 2^24 limit", cfg.Micros)
	}
	if cfg.Depth >= 1<<16 {
		return fmt.Errorf("sim: depth %d exceeds the executor's 2^16 limit", cfg.Depth)
	}
	if len(cfg.Costs) != cfg.Depth {
		return fmt.Errorf("sim: %d cost entries for depth %d", len(cfg.Costs), cfg.Depth)
	}
	if (cfg.JitterCV > 0 || cfg.ComputeJitterCV > 0) && cfg.Rand == nil {
		return fmt.Errorf("sim: jitter requested without a random source")
	}
	if cfg.SpeedFactor != nil && len(cfg.SpeedFactor) != cfg.Depth {
		return fmt.Errorf("sim: %d speed factors for depth %d", len(cfg.SpeedFactor), cfg.Depth)
	}
	if !cfg.Policy.Rule {
		if len(cfg.Orders) != cfg.Depth {
			return fmt.Errorf("sim: strict policy %q needs %d orders, got %d", cfg.Policy.Name, cfg.Depth, len(cfg.Orders))
		}
		s := &schedule.Schedule{Depth: cfg.Depth, Micros: cfg.Micros, Orders: cfg.Orders}
		if err := s.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 2 * cfg.Depth
	}
	return nil
}

// dur applies compute jitter and per-stage speed factors to a mean
// kernel duration.
func (e *executor) dur(mean simtime.Duration, stage int) simtime.Duration {
	d := mean
	if e.cfg.SpeedFactor != nil {
		d = simtime.Duration(float64(d)*e.cfg.SpeedFactor[stage] + 0.5)
	}
	if e.cfg.ComputeJitterCV > 0 {
		d = e.cfg.Rand.Jitter(d, e.cfg.ComputeJitterCV)
	}
	return d
}

// netDur applies jitter to a transfer time (no speed factor — the
// network does not care which GPU is slow).
func (e *executor) netDur(mean simtime.Duration) simtime.Duration {
	if e.cfg.JitterCV > 0 {
		return e.cfg.Rand.Jitter(mean, e.cfg.JitterCV)
	}
	return mean
}

// try attempts to start work on stage s; called whenever the stage
// completes a task or a new input arrives.
func (e *executor) try(s int) {
	st := &e.stages[s]
	if st.busy || st.bwdLeft == 0 {
		return
	}
	now := e.q.Now()
	if e.cfg.Policy.Rule {
		e.tryRule(st, now)
	} else {
		e.tryStrict(st, now)
	}
}

// start executes task t on stage st beginning now.
func (e *executor) start(st *stageState, t schedule.Task, now simtime.Time, extra simtime.Duration) {
	c := e.cfg.Costs[st.idx]
	var mean simtime.Duration
	switch t.Kind {
	case schedule.Forward:
		mean = c.Fwd
	case schedule.Backward:
		mean = c.Bwd
	case schedule.Recompute:
		mean = c.Rec
	}
	d := e.dur(mean, st.idx) + extra
	end := now.Add(d)
	st.busy = true
	st.busySum += d
	if t.Kind == schedule.Forward && t.Micro >= st.fwdHi {
		st.fwdHi = t.Micro + 1
	}
	if e.cfg.CollectTrace {
		e.trace = append(e.trace, TaskSpan{Stage: st.idx, Task: t, Start: now, End: end})
	}

	// Gradient-arrival announcement: the moment a backward starts, its
	// completion (and hence the gradient's arrival upstream) is known,
	// letting the upstream stage schedule a just-in-time recompute
	// (§3.2 constraint 1).
	if t.Kind == schedule.Backward && st.idx > 0 {
		up := &e.stages[st.idx-1]
		xfer := e.netDur(c.GradSend)
		arr := end.Add(xfer)
		up.gradAnnounce[t.Micro] = arr
		up.gradSenderEnd[t.Micro] = end
		e.q.ScheduleCall(arr, e.onEvent, evA(evGradArrive, up.idx), int32(t.Micro))
		// Wake upstream now so it can plan the recompute.
		e.q.ScheduleCall(now, e.onEvent, evA(evTry, up.idx), 0)
	}

	e.q.ScheduleCall(end, e.onEvent, evA(evComplete, st.idx), packTask(t))
}

func (e *executor) complete(st *stageState, t schedule.Task, end simtime.Time) {
	st.busy = false
	switch t.Kind {
	case schedule.Forward:
		st.fwdDone[t.Micro] = true
		st.hot = t.Micro
		st.inFlight++
		if st.idx < e.cfg.Depth-1 {
			down := &e.stages[st.idx+1]
			xfer := e.netDur(e.cfg.Costs[st.idx].ActSend)
			arr := end.Add(xfer)
			down.fwdSenderEnd[t.Micro] = end
			e.q.ScheduleCall(arr, e.onEvent, evA(evActArrive, down.idx), int32(t.Micro))
		} else {
			// Last stage: loss computed, gradient available locally.
			st.gradArrival[t.Micro] = end
			st.gradAnnounce[t.Micro] = end
			st.gradSenderEnd[t.Micro] = end
		}
	case schedule.Recompute:
		st.recDone[t.Micro] = true
		st.hot = t.Micro
		st.locked = t.Micro
	case schedule.Backward:
		st.bwdDone[t.Micro] = true
		st.bwdLeft--
		st.inFlight--
		st.lastBwd = end
		for st.bwdLow < e.cfg.Micros && st.bwdDone[st.bwdLow] {
			st.bwdLow++
		}
		if st.locked == t.Micro {
			st.locked = -1
		}
		if st.hot == t.Micro {
			st.hot = -1 // activations consumed
		}
		// Steady-state boundary: one stage-0 backward completes per
		// pipeline period, so this is where the cycle detector
		// fingerprints (and, on a repeat, fast-forwards) the run.
		if st.idx == 0 && e.ss.armed {
			e.ss.boundary(e, end)
		}
	}
	e.try(st.idx)
}

// backwardReady reports whether B(micro) can start now on st.
func (e *executor) backwardReady(st *stageState, micro int, now simtime.Time) bool {
	if !st.fwdDone[micro] || st.bwdDone[micro] {
		return false
	}
	if !st.recDone[micro] && st.hot != micro {
		return false
	}
	if e.cfg.Policy.SyncComm {
		return st.gradSenderEnd[micro] <= now
	}
	return st.gradArrival[micro] <= now
}

// syncExtra reports the receive time charged to the stage itself under
// SyncComm policies: the fraction of the transfer not hidden under
// compute (1−OverlapFrac).
func (e *executor) syncExtra(st *stageState, t schedule.Task) simtime.Duration {
	if !e.cfg.Policy.SyncComm {
		return 0
	}
	frac := 1 - e.cfg.Policy.OverlapFrac
	if frac <= 0 {
		return 0
	}
	var xfer simtime.Duration
	switch t.Kind {
	case schedule.Forward:
		if st.idx == 0 {
			return 0
		}
		xfer = e.netDur(e.cfg.Costs[st.idx-1].ActSend)
	case schedule.Backward:
		if st.idx == e.cfg.Depth-1 {
			return 0
		}
		xfer = e.netDur(e.cfg.Costs[st.idx+1].GradSend)
	default:
		return 0
	}
	return simtime.Duration(float64(xfer)*frac + 0.5)
}

// wake schedules a retry at t, deduplicating earlier wakes.
func (e *executor) wake(st *stageState, t simtime.Time) {
	if t == never || t <= e.q.Now() {
		return
	}
	if st.wakeAt != never && st.wakeAt <= t {
		return
	}
	st.wakeAt = t
	e.q.ScheduleCall(t, e.onEvent, evA(evWake, st.idx), 0)
}
