// Package sim is Varuna's parametrized event-driven simulator (§4.4)
// and the pipeline executor underlying the testbed. Given the
// calibrated primitive parameters of Table 2 — per-stage forward,
// backward and recompute times, activation/gradient transfer times and
// per-stage allreduce times — it simulates one full mini-batch (Nm
// micro-batches followed by the data-parallel allreduce) for a concrete
// (P, D, m, Nm) configuration and reports the estimated
// time-per-mini-batch, plus a task-level trace for Gantt rendering
// (Figure 7).
//
// The executor implements both scheduling families the paper compares:
//
//   - Rule-based (Varuna, §3.2): backward preferred when ready
//     (constraint 3), recompute scheduled just-in-time so it completes
//     as the gradient arrives (constraint 1), a stage that recomputed
//     waits for the matching backward (constraint 2), and when the due
//     task's inputs are missing the stage opportunistically runs
//     another ready task (work conservation under jitter).
//   - Strict orders (GPipe, 1F1B, DeepSpeed): the stage follows a fixed
//     task list, stalling whenever the next task's inputs are missing.
package sim

import (
	"fmt"
	"math"

	"repro/internal/schedule"
	"repro/internal/simtime"
)

// StageCosts carries the calibrated parameters of one pipeline stage
// (Table 2), folded to a concrete micro-batch size m.
type StageCosts struct {
	// Fwd, Bwd, Rec are compute times per micro-batch.
	Fwd, Bwd, Rec simtime.Duration
	// ActSend is the time to move the stage's output activations to
	// the next stage (latency + serialization).
	ActSend simtime.Duration
	// GradSend is the time to move input gradients to the previous
	// stage.
	GradSend simtime.Duration
	// AllReduce is the data-parallel gradient allreduce for this
	// stage's parameters over its replica ring.
	AllReduce simtime.Duration
	// Optimizer is the weight-update time after the allreduce.
	Optimizer simtime.Duration
}

// Config describes one simulated mini-batch execution.
type Config struct {
	// Depth is the pipeline depth P.
	Depth int
	// Micros is the number of micro-batches Nm.
	Micros int
	// Policy selects the scheduling discipline.
	Policy schedule.Policy
	// Orders holds the static per-stage task orders for strict
	// policies. Ignored in rule mode.
	Orders []schedule.Order
	// Costs holds per-stage calibrated parameters (len Depth).
	Costs []StageCosts
	// JitterCV applies multiplicative jitter to every network
	// transfer; 0 simulates with means (the parametric estimate).
	JitterCV float64
	// ComputeJitterCV jitters kernel times. GPU kernels are far more
	// stable than commodity networks; the testbed uses ~0.02. 0 means
	// deterministic compute.
	ComputeJitterCV float64
	// Rand supplies jitter samples; required when either jitter is set.
	Rand *simtime.Rand
	// SpeedFactor optionally slows individual stages (fail-stutter
	// modelling); nil means all stages run at full speed. A factor of
	// 1.3 makes the stage 30% slower.
	SpeedFactor []float64
	// MaxInFlight caps forwarded-but-not-backwarded micro-batches per
	// stage in rule mode (activation stash memory). 0 means 2·Depth.
	MaxInFlight int
}

// TaskSpan is one executed task in the trace.
type TaskSpan struct {
	Stage      int
	Task       schedule.Task
	Start, End simtime.Time
}

// Result summarizes a simulated mini-batch.
type Result struct {
	// Makespan is the full mini-batch time including the allreduce
	// and optimizer step.
	Makespan simtime.Duration
	// PipelineSpan is the time until the last backward completes.
	PipelineSpan simtime.Duration
	// Trace lists every executed task in start order.
	Trace []TaskSpan
	// StageEnds records when each stage finished its last backward —
	// the point its data-parallel allreduce can begin.
	StageEnds []simtime.Time
	// BubbleFrac is idle stage-time divided by total stage-time up to
	// the pipeline span.
	BubbleFrac float64
	// OpportunisticRuns counts tasks run out of static order to hide
	// jitter (rule mode only).
	OpportunisticRuns int
}

const never = simtime.Time(math.MaxInt64)

type stageState struct {
	idx  int
	busy bool

	actArrival    []simtime.Time // activation availability per micro
	gradArrival   []simtime.Time
	gradAnnounce  []simtime.Time // predicted gradient arrival (known at upstream B start)
	fwdDone       []bool
	recDone       []bool
	bwdDone       []bool
	fwdSenderEnd  []simtime.Time // for SyncComm: when sender finished computing
	gradSenderEnd []simtime.Time

	hot       int    // micro whose activations are still resident (-1 none)
	locked    int    // micro we recomputed for and must backward next (-1 none)
	nextFwd   int    // next micro to forward (rule mode)
	inFlight  int    // forwarded but not yet backwarded
	orderPos  int    // strict mode position
	orderDone []bool // strict mode: executed order entries (incl. pulled-forward)
	hasRec    []bool // strict mode: order contains a recompute for micro m
	bwdLeft   int
	busySum   simtime.Duration
	lastBwd   simtime.Time
	wakeAt    simtime.Time // pending scheduled wake (dedupe)
}

type executor struct {
	cfg    Config
	q      simtime.EventQueue
	stages []*stageState
	trace  []TaskSpan
	opport int
}

// Run simulates one mini-batch under cfg.
func Run(cfg Config) (Result, error) {
	if err := validate(&cfg); err != nil {
		return Result{}, err
	}
	e := &executor{cfg: cfg}
	e.stages = make([]*stageState, cfg.Depth)
	for s := 0; s < cfg.Depth; s++ {
		st := &stageState{
			idx:           s,
			actArrival:    fillTimes(cfg.Micros, never),
			gradArrival:   fillTimes(cfg.Micros, never),
			gradAnnounce:  fillTimes(cfg.Micros, never),
			fwdSenderEnd:  fillTimes(cfg.Micros, never),
			gradSenderEnd: fillTimes(cfg.Micros, never),
			fwdDone:       make([]bool, cfg.Micros),
			recDone:       make([]bool, cfg.Micros),
			bwdDone:       make([]bool, cfg.Micros),
			hot:           -1,
			locked:        -1,
			bwdLeft:       cfg.Micros,
			wakeAt:        never,
		}
		if s == 0 {
			for m := 0; m < cfg.Micros; m++ {
				st.actArrival[m] = 0
				st.fwdSenderEnd[m] = 0
			}
		}
		if !cfg.Policy.Rule {
			st.orderDone = make([]bool, len(cfg.Orders[s]))
			st.hasRec = make([]bool, cfg.Micros)
			for _, t := range cfg.Orders[s] {
				if t.Kind == schedule.Recompute {
					st.hasRec[t.Micro] = true
				}
			}
		}
		e.stages[s] = st
	}
	for s := range e.stages {
		s := s
		e.q.Schedule(0, func() { e.try(s) })
	}
	e.q.Run(0)

	res := Result{Trace: e.trace, OpportunisticRuns: e.opport, StageEnds: make([]simtime.Time, cfg.Depth)}
	var pipeEnd, fullEnd simtime.Time
	var busy simtime.Duration
	for i, st := range e.stages {
		if st.bwdLeft > 0 {
			return Result{}, fmt.Errorf("sim: deadlock — stage %d has %d backwards pending", st.idx, st.bwdLeft)
		}
		res.StageEnds[i] = st.lastBwd
		pipeEnd = simtime.Max(pipeEnd, st.lastBwd)
		busy += st.busySum
	}
	for s, st := range e.stages {
		end := st.lastBwd
		if !e.cfg.Policy.NoFlush {
			end = end.Add(e.netDur(e.cfg.Costs[s].AllReduce))
		}
		end = end.Add(e.dur(e.cfg.Costs[s].Optimizer, s))
		fullEnd = simtime.Max(fullEnd, end)
	}
	res.PipelineSpan = simtime.Duration(pipeEnd)
	res.Makespan = simtime.Duration(fullEnd)
	if pipeEnd > 0 {
		total := simtime.Duration(pipeEnd) * simtime.Duration(cfg.Depth)
		res.BubbleFrac = 1 - float64(busy)/float64(total)
	}
	return res, nil
}

func validate(cfg *Config) error {
	if cfg.Depth < 1 || cfg.Micros < 1 {
		return fmt.Errorf("sim: bad shape depth=%d micros=%d", cfg.Depth, cfg.Micros)
	}
	if len(cfg.Costs) != cfg.Depth {
		return fmt.Errorf("sim: %d cost entries for depth %d", len(cfg.Costs), cfg.Depth)
	}
	if (cfg.JitterCV > 0 || cfg.ComputeJitterCV > 0) && cfg.Rand == nil {
		return fmt.Errorf("sim: jitter requested without a random source")
	}
	if cfg.SpeedFactor != nil && len(cfg.SpeedFactor) != cfg.Depth {
		return fmt.Errorf("sim: %d speed factors for depth %d", len(cfg.SpeedFactor), cfg.Depth)
	}
	if !cfg.Policy.Rule {
		if len(cfg.Orders) != cfg.Depth {
			return fmt.Errorf("sim: strict policy %q needs %d orders, got %d", cfg.Policy.Name, cfg.Depth, len(cfg.Orders))
		}
		s := &schedule.Schedule{Depth: cfg.Depth, Micros: cfg.Micros, Orders: cfg.Orders}
		if err := s.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 2 * cfg.Depth
	}
	return nil
}

func fillTimes(n int, v simtime.Time) []simtime.Time {
	t := make([]simtime.Time, n)
	for i := range t {
		t[i] = v
	}
	return t
}

// dur applies compute jitter and per-stage speed factors to a mean
// kernel duration.
func (e *executor) dur(mean simtime.Duration, stage int) simtime.Duration {
	d := mean
	if e.cfg.SpeedFactor != nil {
		d = simtime.Duration(float64(d)*e.cfg.SpeedFactor[stage] + 0.5)
	}
	if e.cfg.ComputeJitterCV > 0 {
		d = e.cfg.Rand.Jitter(d, e.cfg.ComputeJitterCV)
	}
	return d
}

// netDur applies jitter to a transfer time (no speed factor — the
// network does not care which GPU is slow).
func (e *executor) netDur(mean simtime.Duration) simtime.Duration {
	if e.cfg.JitterCV > 0 {
		return e.cfg.Rand.Jitter(mean, e.cfg.JitterCV)
	}
	return mean
}

// try attempts to start work on stage s; called whenever the stage
// completes a task or a new input arrives.
func (e *executor) try(s int) {
	st := e.stages[s]
	if st.busy || st.bwdLeft == 0 {
		return
	}
	now := e.q.Now()
	if e.cfg.Policy.Rule {
		e.tryRule(st, now)
	} else {
		e.tryStrict(st, now)
	}
}

// start executes task t on stage st beginning now.
func (e *executor) start(st *stageState, t schedule.Task, now simtime.Time, extra simtime.Duration) {
	c := e.cfg.Costs[st.idx]
	var mean simtime.Duration
	switch t.Kind {
	case schedule.Forward:
		mean = c.Fwd
	case schedule.Backward:
		mean = c.Bwd
	case schedule.Recompute:
		mean = c.Rec
	}
	d := e.dur(mean, st.idx) + extra
	end := now.Add(d)
	st.busy = true
	st.busySum += d
	e.trace = append(e.trace, TaskSpan{Stage: st.idx, Task: t, Start: now, End: end})

	// Gradient-arrival announcement: the moment a backward starts, its
	// completion (and hence the gradient's arrival upstream) is known,
	// letting the upstream stage schedule a just-in-time recompute
	// (§3.2 constraint 1).
	if t.Kind == schedule.Backward && st.idx > 0 {
		up := e.stages[st.idx-1]
		xfer := e.netDur(c.GradSend)
		arr := end.Add(xfer)
		up.gradAnnounce[t.Micro] = arr
		up.gradSenderEnd[t.Micro] = end
		m := t.Micro
		e.q.Schedule(arr, func() {
			up.gradArrival[m] = arr
			e.try(up.idx)
		})
		// Wake upstream now so it can plan the recompute.
		e.q.Schedule(now, func() { e.try(up.idx) })
	}

	e.q.Schedule(end, func() { e.complete(st, t, end) })
}

func (e *executor) complete(st *stageState, t schedule.Task, end simtime.Time) {
	st.busy = false
	switch t.Kind {
	case schedule.Forward:
		st.fwdDone[t.Micro] = true
		st.hot = t.Micro
		st.inFlight++
		if st.idx < e.cfg.Depth-1 {
			down := e.stages[st.idx+1]
			xfer := e.netDur(e.cfg.Costs[st.idx].ActSend)
			arr := end.Add(xfer)
			m := t.Micro
			down.fwdSenderEnd[m] = end
			e.q.Schedule(arr, func() {
				down.actArrival[m] = arr
				e.try(down.idx)
			})
		} else {
			// Last stage: loss computed, gradient available locally.
			st.gradArrival[t.Micro] = end
			st.gradAnnounce[t.Micro] = end
			st.gradSenderEnd[t.Micro] = end
		}
	case schedule.Recompute:
		st.recDone[t.Micro] = true
		st.hot = t.Micro
		st.locked = t.Micro
	case schedule.Backward:
		st.bwdDone[t.Micro] = true
		st.bwdLeft--
		st.inFlight--
		st.lastBwd = end
		if st.locked == t.Micro {
			st.locked = -1
		}
		if st.hot == t.Micro {
			st.hot = -1 // activations consumed
		}
	}
	e.try(st.idx)
}

// backwardReady reports whether B(micro) can start now on st.
func (e *executor) backwardReady(st *stageState, micro int, now simtime.Time) bool {
	if !st.fwdDone[micro] || st.bwdDone[micro] {
		return false
	}
	if !st.recDone[micro] && st.hot != micro {
		return false
	}
	if e.cfg.Policy.SyncComm {
		return st.gradSenderEnd[micro] <= now
	}
	return st.gradArrival[micro] <= now
}

// syncExtra reports the receive time charged to the stage itself under
// SyncComm policies: the fraction of the transfer not hidden under
// compute (1−OverlapFrac).
func (e *executor) syncExtra(st *stageState, t schedule.Task) simtime.Duration {
	if !e.cfg.Policy.SyncComm {
		return 0
	}
	frac := 1 - e.cfg.Policy.OverlapFrac
	if frac <= 0 {
		return 0
	}
	var xfer simtime.Duration
	switch t.Kind {
	case schedule.Forward:
		if st.idx == 0 {
			return 0
		}
		xfer = e.netDur(e.cfg.Costs[st.idx-1].ActSend)
	case schedule.Backward:
		if st.idx == e.cfg.Depth-1 {
			return 0
		}
		xfer = e.netDur(e.cfg.Costs[st.idx+1].GradSend)
	default:
		return 0
	}
	return simtime.Duration(float64(xfer)*frac + 0.5)
}

// wake schedules a retry at t, deduplicating earlier wakes.
func (e *executor) wake(st *stageState, t simtime.Time) {
	if t == never || t <= e.q.Now() {
		return
	}
	if st.wakeAt != never && st.wakeAt <= t {
		return
	}
	st.wakeAt = t
	s := st.idx
	e.q.Schedule(t, func() {
		if e.stages[s].wakeAt == t {
			e.stages[s].wakeAt = never
		}
		e.try(s)
	})
}
