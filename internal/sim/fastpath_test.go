package sim

import (
	"testing"

	"repro/internal/schedule"
	"repro/internal/simtime"
)

// benchCosts18 is the P=18 shape of the 128-GPU 8.3B job that §7.2
// times: realistic per-stage kernel and transfer costs.
func benchCosts18() []StageCosts {
	costs := make([]StageCosts, 18)
	for i := range costs {
		costs[i] = StageCosts{
			Fwd: 40 * simtime.Millisecond, Bwd: 80 * simtime.Millisecond,
			Rec: 40 * simtime.Millisecond, ActSend: 5 * simtime.Millisecond,
			GradSend: 5 * simtime.Millisecond, AllReduce: 200 * simtime.Millisecond,
			Optimizer: 10 * simtime.Millisecond,
		}
	}
	return costs
}

// sameSummary compares every summary metric of two results; the golden
// requirement is that the no-trace fast path changes nothing but the
// trace itself.
func sameSummary(t *testing.T, traced, fast Result) {
	t.Helper()
	if fast.Makespan != traced.Makespan {
		t.Errorf("Makespan: fast %v, traced %v", fast.Makespan, traced.Makespan)
	}
	if fast.PipelineSpan != traced.PipelineSpan {
		t.Errorf("PipelineSpan: fast %v, traced %v", fast.PipelineSpan, traced.PipelineSpan)
	}
	if fast.BubbleFrac != traced.BubbleFrac {
		t.Errorf("BubbleFrac: fast %v, traced %v", fast.BubbleFrac, traced.BubbleFrac)
	}
	if fast.Busy != traced.Busy {
		t.Errorf("Busy: fast %v, traced %v", fast.Busy, traced.Busy)
	}
	if fast.OpportunisticRuns != traced.OpportunisticRuns {
		t.Errorf("OpportunisticRuns: fast %d, traced %d", fast.OpportunisticRuns, traced.OpportunisticRuns)
	}
	if len(fast.StageEnds) != len(traced.StageEnds) {
		t.Fatalf("StageEnds length: fast %d, traced %d", len(fast.StageEnds), len(traced.StageEnds))
	}
	for i := range fast.StageEnds {
		if fast.StageEnds[i] != traced.StageEnds[i] {
			t.Errorf("StageEnds[%d]: fast %v, traced %v", i, fast.StageEnds[i], traced.StageEnds[i])
		}
	}
	if len(fast.Trace) != 0 {
		t.Errorf("fast path recorded %d trace spans, want 0", len(fast.Trace))
	}
	if len(traced.Trace) == 0 {
		t.Error("traced path recorded no spans")
	}
}

func TestNoTraceGoldenRulePolicy(t *testing.T) {
	for _, shape := range []struct{ p, nm int }{{1, 4}, {4, 5}, {6, 48}, {18, 100}} {
		cfg := Config{Depth: shape.p, Micros: shape.nm, Policy: schedule.Varuna, Costs: UnitCosts(shape.p, unit)}
		traced := cfg
		traced.CollectTrace = true
		sameSummary(t, mustRun(t, traced), mustRun(t, cfg))
	}
}

func TestNoTraceGoldenRuleWithJitter(t *testing.T) {
	// Jitter exercises the wake/opportunism machinery; the RNG streams
	// must stay aligned between the traced and no-trace paths.
	for seed := int64(0); seed < 5; seed++ {
		cfg := Config{
			Depth: 6, Micros: 24, Policy: schedule.Varuna, Costs: benchCosts18()[:6],
			JitterCV: 0.4, ComputeJitterCV: 0.02, Rand: simtime.NewRand(seed),
		}
		traced := cfg
		traced.CollectTrace = true
		traced.Rand = simtime.NewRand(seed)
		sameSummary(t, mustRun(t, traced), mustRun(t, cfg))
	}
}

func TestNoTraceGoldenStrictPolicies(t *testing.T) {
	depth, micros := 4, 16
	gpipe, err := schedule.GPipe(depth, micros)
	if err != nil {
		t.Fatal(err)
	}
	ofob, err := schedule.OneFOneB(depth, micros)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		policy schedule.Policy
		orders []schedule.Order
	}{
		{schedule.GPipeP, gpipe.Orders},
		{schedule.Megatron1F1B, ofob.Orders},
		{schedule.DeepSpeedP, ofob.Orders},
		{schedule.PipeDreamP, ofob.Orders},
	}
	for _, c := range cases {
		cfg := Config{Depth: depth, Micros: micros, Policy: c.policy, Orders: c.orders, Costs: benchCosts18()[:depth]}
		traced := cfg
		traced.CollectTrace = true
		sameSummary(t, mustRun(t, traced), mustRun(t, cfg))
	}
}

func TestNoTraceGoldenChunked(t *testing.T) {
	cfg := Config{Depth: 4, Micros: 20, Policy: schedule.GPipeP, Costs: UnitCosts(4, unit)}
	traced := cfg
	traced.CollectTrace = true
	a, err := RunChunked(traced, 5, schedule.GPipe)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChunked(cfg, 5, schedule.GPipe)
	if err != nil {
		t.Fatal(err)
	}
	sameSummary(t, a, b)
}

func TestPooledExecutorIsolation(t *testing.T) {
	// Back-to-back runs of different shapes through the pool must not
	// leak state: re-running a config gives bit-identical results.
	shapes := []struct{ p, nm int }{{18, 100}, {2, 3}, {6, 48}, {1, 1}, {10, 7}}
	first := make([]Result, len(shapes))
	for i, s := range shapes {
		first[i] = mustRun(t, Config{Depth: s.p, Micros: s.nm, Policy: schedule.Varuna, Costs: UnitCosts(s.p, unit)})
	}
	for i, s := range shapes {
		again := mustRun(t, Config{Depth: s.p, Micros: s.nm, Policy: schedule.Varuna, Costs: UnitCosts(s.p, unit)})
		if again.Makespan != first[i].Makespan || again.BubbleFrac != first[i].BubbleFrac {
			t.Fatalf("shape %dx%d drifted across pool reuse: %v vs %v", s.p, s.nm, again.Makespan, first[i].Makespan)
		}
	}
}

func TestMicrosLimit(t *testing.T) {
	if _, err := Run(Config{Depth: 1, Micros: 1 << 24, Policy: schedule.Varuna, Costs: UnitCosts(1, unit)}); err == nil {
		t.Fatal("Nm at the 2^24 packing limit must be rejected")
	}
}

// BenchmarkRunRuleNoTrace is the acceptance benchmark: the P=18,
// Nm=100 rule-policy simulation on the makespan-only fast path. The
// seed (traced, closure-per-event, unpooled) implementation measured
// 2979836 ns/op and 21803 allocs/op on this config.
func BenchmarkRunRuleNoTrace(b *testing.B) {
	cfg := Config{Depth: 18, Micros: 100, Policy: schedule.Varuna, Costs: benchCosts18()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunRuleTraced is the same simulation with the trace on, to
// keep the cost of CollectTrace visible.
func BenchmarkRunRuleTraced(b *testing.B) {
	cfg := Config{Depth: 18, Micros: 100, Policy: schedule.Varuna, Costs: benchCosts18(), CollectTrace: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
