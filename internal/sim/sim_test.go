package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/schedule"
	"repro/internal/simtime"
)

const unit = simtime.Millisecond

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func gpipeConfig(t *testing.T, depth, micros int) Config {
	t.Helper()
	s, err := schedule.GPipe(depth, micros)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Depth: depth, Micros: micros, Policy: schedule.GPipeP, Orders: s.Orders, Costs: UnitCosts(depth, unit), CollectTrace: true}
}

func TestVarunaBeatsGPipeFigure4(t *testing.T) {
	// Figure 4: for 4 stages and 5 micro-batches with B=2F, Varuna's
	// schedule completes ahead of GPipe ("uses 1 less time unit").
	varuna := mustRun(t, Config{Depth: 4, Micros: 5, Policy: schedule.Varuna, Costs: UnitCosts(4, unit)})
	gpipe := mustRun(t, gpipeConfig(t, 4, 5))
	if varuna.PipelineSpan >= gpipe.PipelineSpan {
		t.Fatalf("Varuna %v must beat GPipe %v", varuna.PipelineSpan, gpipe.PipelineSpan)
	}
	// The gap should be about one unit (F duration).
	gap := gpipe.PipelineSpan - varuna.PipelineSpan
	if gap < unit/2 || gap > 3*unit {
		t.Fatalf("gap %v, want ≈1 unit", gap)
	}
}

func TestVarunaLastStageNoRecompute(t *testing.T) {
	// §3.2: "the last stage (S4) in Varuna does not perform any
	// recompute".
	res := mustRun(t, Config{Depth: 4, Micros: 5, Policy: schedule.Varuna, Costs: UnitCosts(4, unit), CollectTrace: true})
	for _, span := range res.Trace {
		if span.Stage == 3 && span.Task.Kind == schedule.Recompute {
			t.Fatalf("last stage ran %v", span.Task)
		}
	}
}

func TestVarunaLastStageAlternates(t *testing.T) {
	s, err := VarunaOrders(4, 5, UnitCosts(4, unit))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Orders[3].String(); got != "F1 B1 F2 B2 F3 B3 F4 B4 F5 B5" {
		t.Fatalf("last stage order = %s", got)
	}
}

func TestVarunaOrdersInterspersedForwards(t *testing.T) {
	// §3.2: "forward passes are interspersed in Varuna throughout the
	// schedule (see stage 3)" — the penultimate stage must run some
	// backward before its last forward.
	s, err := VarunaOrders(4, 5, UnitCosts(4, unit))
	if err != nil {
		t.Fatal(err)
	}
	o := s.Orders[2]
	firstB, lastF := -1, -1
	for i, task := range o {
		if task.Kind == schedule.Backward && firstB == -1 {
			firstB = i
		}
		if task.Kind == schedule.Forward {
			lastF = i
		}
	}
	if firstB == -1 || lastF < firstB {
		t.Fatalf("stage 2 order %s has no interspersed forwards", o)
	}
}

func TestVarunaOrdersValidate(t *testing.T) {
	for _, shape := range []struct{ d, nm int }{{2, 2}, {4, 5}, {4, 16}, {8, 3}, {6, 24}, {1, 4}} {
		s, err := VarunaOrders(shape.d, shape.nm, UnitCosts(shape.d, unit))
		if err != nil {
			t.Fatalf("%dx%d: %v", shape.d, shape.nm, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%dx%d: %v", shape.d, shape.nm, err)
		}
	}
}

func TestStrictGPipeExecution(t *testing.T) {
	res := mustRun(t, gpipeConfig(t, 4, 5))
	// Lower bound: last stage does 5F+5B+4R = 5+10+4 = 19 units plus
	// 3 units of fill. GPipe must take at least that.
	if res.PipelineSpan < 22*unit {
		t.Fatalf("GPipe span %v implausibly fast", res.PipelineSpan)
	}
	// All tasks executed: 4 stages × (5F + 5B) + 3 stages... recompute
	// count from the schedule.
	wantTasks := 4*10 + 16
	if len(res.Trace) != wantTasks {
		t.Fatalf("trace has %d tasks, want %d", len(res.Trace), wantTasks)
	}
}

func TestDeterminismWithJitter(t *testing.T) {
	run := func() Result {
		return mustRun(t, Config{
			Depth: 4, Micros: 8, Policy: schedule.Varuna, CollectTrace: true,
			Costs: UnitCosts(4, unit), JitterCV: 0.3, Rand: simtime.NewRand(99),
		})
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || len(a.Trace) != len(b.Trace) {
		t.Fatal("same seed must give identical runs")
	}
}

func TestMoreMicroBatchesAmortizeBubble(t *testing.T) {
	// Observation 3 / GPipe theory: bubble fraction shrinks as Nm grows.
	few := mustRun(t, Config{Depth: 6, Micros: 6, Policy: schedule.Varuna, Costs: UnitCosts(6, unit)})
	many := mustRun(t, Config{Depth: 6, Micros: 48, Policy: schedule.Varuna, Costs: UnitCosts(6, unit)})
	if many.BubbleFrac >= few.BubbleFrac {
		t.Fatalf("bubble with Nm=48 (%.3f) must be below Nm=6 (%.3f)", many.BubbleFrac, few.BubbleFrac)
	}
	if many.BubbleFrac > 0.25 {
		t.Fatalf("bubble %.3f too high at Nm=48", many.BubbleFrac)
	}
}

func TestSyncCommSlower(t *testing.T) {
	depth, micros := 4, 8
	costs := UnitCosts(depth, unit)
	for i := range costs {
		costs[i].ActSend = unit / 2 // substantial transfers
		costs[i].GradSend = unit / 2
	}
	s, err := schedule.OneFOneB(depth, micros)
	if err != nil {
		t.Fatal(err)
	}
	async := mustRun(t, Config{Depth: depth, Micros: micros, Policy: schedule.Megatron1F1B, Orders: s.Orders, Costs: costs})
	sync := mustRun(t, Config{Depth: depth, Micros: micros, Policy: schedule.DeepSpeedP, Orders: s.Orders, Costs: costs})
	if sync.PipelineSpan <= async.PipelineSpan {
		t.Fatalf("sync comm %v must be slower than overlapped %v", sync.PipelineSpan, async.PipelineSpan)
	}
}

func TestVarunaToleratesJitterBetterThanGPipe(t *testing.T) {
	// Observation 3 / Table 5: as the network gets slower and noisier,
	// the gap between Varuna and memory-chunked GPipe widens.
	depth, micros := 4, 32
	costsAt := func(slow float64) []StageCosts {
		costs := UnitCosts(depth, unit)
		for i := range costs {
			costs[i].ActSend = simtime.Duration(float64(unit) * slow / 2)
			costs[i].GradSend = simtime.Duration(float64(unit) * slow / 2)
		}
		return costs
	}
	const reps = 20
	varunaMean := func(slow float64) float64 {
		var sum float64
		for r := int64(0); r < reps; r++ {
			res := mustRun(t, Config{Depth: depth, Micros: micros, Policy: schedule.Varuna,
				Costs: costsAt(slow), JitterCV: 0.4, Rand: simtime.NewRand(1 + r)})
			sum += float64(res.PipelineSpan)
		}
		return sum / reps
	}
	gpipeMean := func(slow float64) float64 {
		var sum float64
		for r := int64(0); r < reps; r++ {
			res, err := RunChunked(Config{Depth: depth, Micros: micros, Policy: schedule.GPipeP,
				Costs: costsAt(slow), JitterCV: 0.4, Rand: simtime.NewRand(1 + r)}, 8, schedule.GPipe)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(res.PipelineSpan)
		}
		return sum / reps
	}
	gapAt := func(slow float64) float64 { return gpipeMean(slow) / varunaMean(slow) }
	fast, slowNet := gapAt(0.2), gapAt(2.0)
	if fast < 1.0 {
		t.Fatalf("GPipe/Varuna ratio %v < 1 on fast net", fast)
	}
	if slowNet <= fast {
		t.Fatalf("gap must widen on slow nets: fast %.3f, slow %.3f", fast, slowNet)
	}
}

func TestRunChunkedBasics(t *testing.T) {
	cfg := Config{Depth: 4, Micros: 20, Policy: schedule.GPipeP, Costs: UnitCosts(4, unit), CollectTrace: true}
	whole, err := RunChunked(cfg, 20, schedule.GPipe)
	if err != nil {
		t.Fatal(err)
	}
	split, err := RunChunked(cfg, 5, schedule.GPipe)
	if err != nil {
		t.Fatal(err)
	}
	if split.PipelineSpan <= whole.PipelineSpan {
		t.Fatalf("4 chunks (%v) must be slower than 1 (%v): extra fill/drain", split.PipelineSpan, whole.PipelineSpan)
	}
	// Every forward and backward executed exactly once across chunks
	// (recompute counts differ: each chunk's last micro stays hot).
	count := func(res Result, k schedule.Kind) int {
		n := 0
		for _, span := range res.Trace {
			if span.Task.Kind == k {
				n++
			}
		}
		return n
	}
	for _, k := range []schedule.Kind{schedule.Forward, schedule.Backward} {
		if count(split, k) != 80 || count(whole, k) != 80 {
			t.Fatalf("%v counts: split %d whole %d, want 80", k, count(split, k), count(whole, k))
		}
	}
	if _, err := RunChunked(cfg, 0, schedule.GPipe); err == nil {
		t.Fatal("chunk 0 must fail")
	}
	if _, err := RunChunked(Config{Depth: 2, Micros: 4, Policy: schedule.Varuna, Costs: UnitCosts(2, unit)}, 2, schedule.GPipe); err == nil {
		t.Fatal("rule policy must be rejected")
	}
}

func TestGPipeChunk(t *testing.T) {
	if got := GPipeChunk(100, 10, 4); got != 10 {
		t.Fatalf("chunk = %d, want 10", got)
	}
	if got := GPipeChunk(10, 10, 4); got != 4 {
		t.Fatalf("chunk below depth must clamp: %d", got)
	}
	if got := GPipeChunk(100, 0, 4); got != 4 {
		t.Fatalf("zero stash per micro must clamp to depth: %d", got)
	}
}

func TestOpportunisticPullForward(t *testing.T) {
	// A strict Varuna-order replay with deviation enabled must pull
	// forwards while gradients are late, and win under heavy jitter.
	depth, micros := 4, 16
	orders, err := VarunaOrders(depth, micros, UnitCosts(depth, unit))
	if err != nil {
		t.Fatal(err)
	}
	costs := UnitCosts(depth, unit)
	for i := range costs {
		costs[i].ActSend = unit
		costs[i].GradSend = unit
	}
	strictPolicy := schedule.Policy{Name: "varuna-static"}
	devPolicy := schedule.Policy{Name: "varuna-static+opportunism", Opportunistic: true}
	var strictSum, devSum float64
	var opport int
	const reps = 25
	for r := int64(0); r < reps; r++ {
		strict := mustRun(t, Config{Depth: depth, Micros: micros, Policy: strictPolicy, Orders: orders.Orders, Costs: costs, JitterCV: 0.5, Rand: simtime.NewRand(100 + r)})
		dev := mustRun(t, Config{Depth: depth, Micros: micros, Policy: devPolicy, Orders: orders.Orders, Costs: costs, JitterCV: 0.5, Rand: simtime.NewRand(100 + r)})
		strictSum += float64(strict.PipelineSpan)
		devSum += float64(dev.PipelineSpan)
		opport += dev.OpportunisticRuns
	}
	if opport == 0 {
		t.Fatal("deviation never triggered under heavy jitter")
	}
	if devSum > strictSum*1.02 {
		t.Fatalf("opportunism hurt: dev %.0f vs strict %.0f", devSum, strictSum)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Depth: 0, Micros: 1, Policy: schedule.Varuna}); err == nil {
		t.Fatal("depth 0 must fail")
	}
	if _, err := Run(Config{Depth: 2, Micros: 2, Policy: schedule.Varuna, Costs: UnitCosts(1, unit)}); err == nil {
		t.Fatal("cost length mismatch must fail")
	}
	if _, err := Run(Config{Depth: 2, Micros: 2, Policy: schedule.Varuna, Costs: UnitCosts(2, unit), JitterCV: 0.5}); err == nil {
		t.Fatal("jitter without rand must fail")
	}
	if _, err := Run(Config{Depth: 2, Micros: 2, Policy: schedule.GPipeP, Costs: UnitCosts(2, unit)}); err == nil {
		t.Fatal("strict policy without orders must fail")
	}
	if _, err := Run(Config{Depth: 2, Micros: 2, Policy: schedule.Varuna, Costs: UnitCosts(2, unit), SpeedFactor: []float64{1}}); err == nil {
		t.Fatal("speed factor length mismatch must fail")
	}
}

func TestStragglerSlowsPipeline(t *testing.T) {
	base := mustRun(t, Config{Depth: 4, Micros: 8, Policy: schedule.Varuna, Costs: UnitCosts(4, unit)})
	slow := mustRun(t, Config{Depth: 4, Micros: 8, Policy: schedule.Varuna, Costs: UnitCosts(4, unit), SpeedFactor: []float64{1, 1.5, 1, 1}})
	if float64(slow.PipelineSpan) < 1.2*float64(base.PipelineSpan) {
		t.Fatalf("30%%+ straggler barely moved span: %v vs %v", slow.PipelineSpan, base.PipelineSpan)
	}
}

func TestMakespanIncludesAllReduce(t *testing.T) {
	costs := UnitCosts(4, unit)
	for i := range costs {
		costs[i].AllReduce = 10 * unit
		costs[i].Optimizer = unit
	}
	res := mustRun(t, Config{Depth: 4, Micros: 5, Policy: schedule.Varuna, Costs: costs})
	if res.Makespan < res.PipelineSpan+11*unit {
		t.Fatalf("makespan %v must include allreduce+optimizer after span %v", res.Makespan, res.PipelineSpan)
	}
}

func TestNoFlushSkipsAllReduce(t *testing.T) {
	costs := UnitCosts(4, 5)
	for i := range costs {
		costs[i].AllReduce = 50 * unit
	}
	s, err := schedule.OneFOneB(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, Config{Depth: 4, Micros: 5, Policy: schedule.PipeDreamP, Orders: s.Orders, Costs: costs})
	if res.Makespan >= res.PipelineSpan+50*unit {
		t.Fatal("NoFlush policy must not pay the allreduce")
	}
}

func TestRandomShapesNeverDeadlock(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(func(d, nm, seed uint8) bool {
		depth := int(d%10) + 1
		micros := int(nm%32) + 1
		// Rule-based Varuna.
		if _, err := Run(Config{Depth: depth, Micros: micros, Policy: schedule.Varuna,
			Costs: UnitCosts(depth, unit), JitterCV: 0.3, Rand: simtime.NewRand(int64(seed))}); err != nil {
			return false
		}
		// Strict 1F1B.
		s, err := schedule.OneFOneB(depth, micros)
		if err != nil {
			return false
		}
		if _, err := Run(Config{Depth: depth, Micros: micros, Policy: schedule.Megatron1F1B,
			Orders: s.Orders, Costs: UnitCosts(depth, unit), JitterCV: 0.3, Rand: simtime.NewRand(int64(seed))}); err != nil {
			return false
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestTraceWellFormed(t *testing.T) {
	res := mustRun(t, Config{Depth: 4, Micros: 8, Policy: schedule.Varuna, Costs: UnitCosts(4, unit), CollectTrace: true})
	var lastEnd [4]simtime.Time
	for _, span := range res.Trace {
		if span.End <= span.Start {
			t.Fatalf("empty span %+v", span)
		}
		if span.Start < lastEnd[span.Stage] {
			t.Fatalf("overlapping tasks on stage %d", span.Stage)
		}
		lastEnd[span.Stage] = span.End
	}
}

func TestSingleStagePipeline(t *testing.T) {
	// Degenerate P=1: pure gradient accumulation, F then B per micro.
	res := mustRun(t, Config{Depth: 1, Micros: 4, Policy: schedule.Varuna, Costs: UnitCosts(1, unit), CollectTrace: true})
	if len(res.Trace) != 8 {
		t.Fatalf("P=1 trace = %d tasks, want 8 (4F+4B)", len(res.Trace))
	}
	if res.BubbleFrac > 0.01 {
		t.Fatalf("P=1 must have no bubble, got %.3f", res.BubbleFrac)
	}
}

func countTasks(res Result, k schedule.Kind) map[int]int {
	out := map[int]int{}
	for _, span := range res.Trace {
		if span.Task.Kind == k {
			out[span.Stage*1000+span.Task.Micro]++
		}
	}
	return out
}

func TestWorkConservationProperty(t *testing.T) {
	// Every (stage, micro) pair runs exactly one forward and one
	// backward, across random shapes, jitter levels and policies.
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(func(d, nm, seed uint8, jitter bool) bool {
		depth := int(d%8) + 1
		micros := int(nm%24) + 1
		var cv float64
		var rng *simtime.Rand
		if jitter {
			cv = 0.35
			rng = simtime.NewRand(int64(seed))
		}
		check := func(res Result) bool {
			for _, k := range []schedule.Kind{schedule.Forward, schedule.Backward} {
				counts := countTasks(res, k)
				if len(counts) != depth*micros {
					return false
				}
				for _, c := range counts {
					if c != 1 {
						return false
					}
				}
			}
			// Recompute at most once per (stage, micro).
			for _, c := range countTasks(res, schedule.Recompute) {
				if c > 1 {
					return false
				}
			}
			return true
		}
		res, err := Run(Config{Depth: depth, Micros: micros, Policy: schedule.Varuna, CollectTrace: true,
			Costs: UnitCosts(depth, unit), JitterCV: cv, Rand: rng})
		if err != nil || !check(res) {
			return false
		}
		o, err := schedule.OneFOneB(depth, micros)
		if err != nil {
			return false
		}
		res2, err := Run(Config{Depth: depth, Micros: micros, Policy: schedule.Megatron1F1B, CollectTrace: true,
			Orders: o.Orders, Costs: UnitCosts(depth, unit), JitterCV: cv, Rand: rng})
		return err == nil && check(res2)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestEstimateMakespanExtrapolation(t *testing.T) {
	// Steady-state extrapolation must track the exact simulation
	// closely for large micro-batch counts.
	depth := 6
	costs := UnitCosts(depth, unit)
	exact, err := Run(Config{Depth: depth, Micros: 200, Policy: schedule.Varuna, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateMakespan(Config{Depth: depth, Micros: 200, Policy: schedule.Varuna, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	diff := float64(est-exact.Makespan) / float64(exact.Makespan)
	if diff < -0.05 || diff > 0.05 {
		t.Fatalf("extrapolated %v vs exact %v (%.1f%%)", est, exact.Makespan, diff*100)
	}
	// Small Nm takes the exact path.
	small, err := EstimateMakespan(Config{Depth: depth, Micros: 8, Policy: schedule.Varuna, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	exactSmall, err := Run(Config{Depth: depth, Micros: 8, Policy: schedule.Varuna, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	if small != exactSmall.Makespan {
		t.Fatal("small Nm must use the exact simulation")
	}
	if _, err := EstimateMakespan(Config{Depth: 0}); err == nil {
		t.Fatal("bad depth must fail")
	}
}

func TestComputeJitterSeparate(t *testing.T) {
	// Network jitter must not perturb kernels and vice versa.
	costs := UnitCosts(4, unit)
	netOnly := mustRun(t, Config{Depth: 4, Micros: 8, Policy: schedule.Varuna,
		Costs: costs, JitterCV: 0.4, Rand: simtime.NewRand(3)})
	deterministic := mustRun(t, Config{Depth: 4, Micros: 8, Policy: schedule.Varuna, Costs: costs})
	// With tiny transfer times (unit/100) the net jitter barely moves
	// the makespan; compute jitter would move it a lot.
	ratio := float64(netOnly.PipelineSpan) / float64(deterministic.PipelineSpan)
	if ratio > 1.05 {
		t.Fatalf("network jitter on tiny transfers moved makespan %.3fx — leaking into kernels?", ratio)
	}
	compute := mustRun(t, Config{Depth: 4, Micros: 8, Policy: schedule.Varuna,
		Costs: costs, ComputeJitterCV: 0.4, Rand: simtime.NewRand(3)})
	if compute.PipelineSpan == deterministic.PipelineSpan {
		t.Fatal("compute jitter had no effect")
	}
}
