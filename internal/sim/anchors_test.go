package sim

import (
	"runtime"
	"testing"

	"repro/internal/schedule"
	"repro/internal/simtime"
)

// TestParallelAnchorsBitIdentical is the acceptance test for anchor
// parallelism: for every shape — below the anchor cutoff, at it, and
// deep into extrapolation territory — EstimateMakespan with concurrent
// anchor runs must return exactly the estimate of the serial anchor
// order.
func TestParallelAnchorsBitIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev == 1 {
		// Force the parallel branch even on a 1-CPU container; the
		// result must still be identical.
		runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(prev)
	}
	for _, shape := range []struct{ p, nm int }{
		{1, 4}, {4, 16}, {4, 33}, {6, 48}, {6, 1000}, {18, 100}, {18, 4096}, {72, 1024},
	} {
		base := benchCosts18()
		costs := make([]StageCosts, shape.p)
		for i := range costs {
			costs[i] = base[i%len(base)]
		}
		cfg := Config{Depth: shape.p, Micros: shape.nm, Policy: schedule.Varuna, Costs: costs}
		serial, serr := EstimateMakespanSerial(cfg)
		parallel, perr := EstimateMakespan(cfg)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("P=%d Nm=%d: error mismatch serial=%v parallel=%v", shape.p, shape.nm, serr, perr)
		}
		if serial != parallel {
			t.Fatalf("P=%d Nm=%d: parallel anchors diverged: serial %v, parallel %v",
				shape.p, shape.nm, serial, parallel)
		}
	}
}

// TestParallelAnchorsJitteredStaysSerial pins the guard: a config with
// a jitter source must not fan out (the shared Rand would race and its
// draw order would change), and the estimate must match the serial
// reference computed with an identically-seeded source.
func TestParallelAnchorsJitteredStaysSerial(t *testing.T) {
	mk := func(seed int64) Config {
		return Config{
			Depth: 6, Micros: 128, Policy: schedule.Varuna, Costs: benchCosts18()[:6],
			JitterCV: 0.3, ComputeJitterCV: 0.02, Rand: simtime.NewRand(seed),
		}
	}
	for seed := int64(0); seed < 3; seed++ {
		serial, err := EstimateMakespanSerial(mk(seed))
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := EstimateMakespan(mk(seed))
		if err != nil {
			t.Fatal(err)
		}
		if serial != parallel {
			t.Fatalf("seed %d: jittered estimate drifted: serial %v, parallel %v", seed, serial, parallel)
		}
	}
}
