package sim

import (
	"math/rand"
	"testing"

	"repro/internal/schedule"
	"repro/internal/simtime"
)

// runDirect executes cfg on a fresh (unpooled) executor so tests can
// inspect the steady-state detector afterwards.
func runDirect(t *testing.T, cfg Config) (*executor, Result) {
	t.Helper()
	if err := validate(&cfg); err != nil {
		t.Fatal(err)
	}
	e := newExecutor()
	res, err := e.run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, res
}

// sameResult requires two results to agree on every summary metric —
// the bit-identity contract of the steady-state fast path.
func sameResult(t *testing.T, label string, fast, brute Result) {
	t.Helper()
	if fast.Makespan != brute.Makespan {
		t.Errorf("%s: Makespan fast %v, brute %v", label, fast.Makespan, brute.Makespan)
	}
	if fast.PipelineSpan != brute.PipelineSpan {
		t.Errorf("%s: PipelineSpan fast %v, brute %v", label, fast.PipelineSpan, brute.PipelineSpan)
	}
	if fast.Busy != brute.Busy {
		t.Errorf("%s: Busy fast %v, brute %v", label, fast.Busy, brute.Busy)
	}
	if fast.BubbleFrac != brute.BubbleFrac {
		t.Errorf("%s: BubbleFrac fast %v, brute %v", label, fast.BubbleFrac, brute.BubbleFrac)
	}
	if fast.OpportunisticRuns != brute.OpportunisticRuns {
		t.Errorf("%s: OpportunisticRuns fast %d, brute %d", label, fast.OpportunisticRuns, brute.OpportunisticRuns)
	}
	if len(fast.StageEnds) != len(brute.StageEnds) {
		t.Fatalf("%s: StageEnds length fast %d, brute %d", label, len(fast.StageEnds), len(brute.StageEnds))
	}
	for i := range fast.StageEnds {
		if fast.StageEnds[i] != brute.StageEnds[i] {
			t.Errorf("%s: StageEnds[%d] fast %v, brute %v", label, i, fast.StageEnds[i], brute.StageEnds[i])
		}
	}
}

// fastVsBrute runs cfg with the detector armed and disabled and pins
// the two results identical. It reports whether the fast path actually
// fired (so callers can assert coverage, not just agreement).
func fastVsBrute(t *testing.T, label string, cfg Config) bool {
	t.Helper()
	brute := cfg
	brute.DisableSteadyState = true
	bruteRes, err := Run(brute)
	if err != nil {
		t.Fatalf("%s: brute: %v", label, err)
	}
	e, fastRes := runDirect(t, cfg)
	sameResult(t, label, fastRes, bruteRes)
	return e.ss.fired
}

// TestSteadyStateGoldenRuleGrid is the acceptance golden: across a
// P×Nm grid of rule-mode configurations — skewed costs, both rule
// policies — the fast-forwarded run must be bit-identical to brute
// force, and must actually fire once Nm clears the warm-up horizon.
func TestSteadyStateGoldenRuleGrid(t *testing.T) {
	skewed := func(p int) []StageCosts {
		base := benchCosts18()
		costs := make([]StageCosts, p)
		for i := range costs {
			costs[i] = base[i%len(base)]
			// Break uniformity so periods are not degenerate.
			costs[i].Fwd += simtime.Duration(i%3) * simtime.Millisecond
			costs[i].Bwd += simtime.Duration(i%5) * simtime.Millisecond
		}
		return costs
	}
	fired := 0
	for _, p := range []int{1, 2, 3, 4, 6, 18} {
		for _, nm := range []int{1, 4, 8, 17, 64, 100, 257, 1000} {
			for _, policy := range []schedule.Policy{schedule.Varuna, schedule.VarunaStrict} {
				cfg := Config{Depth: p, Micros: nm, Policy: policy, Costs: skewed(p)}
				if fastVsBrute(t, policy.Name+"-skewed", cfg) {
					fired++
				}
				cfg.Costs = UnitCosts(p, unit)
				if fastVsBrute(t, policy.Name+"-unit", cfg) {
					fired++
				}
			}
		}
	}
	if fired == 0 {
		t.Fatal("the fast path never fired across the whole grid — golden tests are vacuous")
	}
}

// TestSteadyStateGoldenStrictPolicies pins the strict-order fast path
// (and its order-periodicity cap) across every strict policy the
// evaluation compares, including SyncComm charging and no-flush.
func TestSteadyStateGoldenStrictPolicies(t *testing.T) {
	fired := 0
	for _, shape := range []struct{ p, nm int }{{2, 64}, {4, 16}, {4, 200}, {6, 500}} {
		gpipe, err := schedule.GPipe(shape.p, shape.nm)
		if err != nil {
			t.Fatal(err)
		}
		ofob, err := schedule.OneFOneB(shape.p, shape.nm)
		if err != nil {
			t.Fatal(err)
		}
		cases := []struct {
			policy schedule.Policy
			orders []schedule.Order
		}{
			{schedule.GPipeP, gpipe.Orders},
			{schedule.Megatron1F1B, ofob.Orders},
			{schedule.DeepSpeedP, ofob.Orders},
			{schedule.PipeDreamP, ofob.Orders},
		}
		for _, c := range cases {
			cfg := Config{
				Depth: shape.p, Micros: shape.nm, Policy: c.policy,
				Orders: c.orders, Costs: benchCosts18()[:shape.p],
			}
			if fastVsBrute(t, c.policy.Name, cfg) {
				fired++
			}
		}
	}
	if fired == 0 {
		t.Fatal("the fast path never fired for any strict policy")
	}
}

// TestSteadyStateGoldenSpeedFactor covers fail-stutter modelling: a
// straggling stage stretches the period but the run stays periodic,
// and the fast path must reproduce it exactly.
func TestSteadyStateGoldenSpeedFactor(t *testing.T) {
	for _, p := range []int{3, 6} {
		sf := make([]float64, p)
		for i := range sf {
			sf[i] = 1
		}
		sf[p/2] = 1.3
		cfg := Config{
			Depth: p, Micros: 300, Policy: schedule.Varuna,
			Costs: benchCosts18()[:p], SpeedFactor: sf,
		}
		if !fastVsBrute(t, "speedfactor", cfg) {
			t.Errorf("P=%d: fast path did not fire on a straggler config", p)
		}
	}
}

// TestSteadyStateGoldenMaxInFlight sweeps the activation-stash cap
// through its boundaries (1, 2, P, the 2·P default): the cap changes
// the steady-state pattern, not its existence.
func TestSteadyStateGoldenMaxInFlight(t *testing.T) {
	p := 4
	for _, mif := range []int{1, 2, p, 0 /* default 2·P */} {
		cfg := Config{
			Depth: p, Micros: 257, Policy: schedule.Varuna,
			Costs: benchCosts18()[:p], MaxInFlight: mif,
		}
		if !fastVsBrute(t, "maxinflight", cfg) {
			t.Errorf("MaxInFlight=%d: fast path did not fire", mif)
		}
	}
}

// TestSteadyStateBelowWarmup: when Nm is inside the warm-up horizon
// the detector must never fire — there is no steady state to skip —
// and the result is still exact (it is just the brute-force run).
func TestSteadyStateBelowWarmup(t *testing.T) {
	for _, shape := range []struct{ p, nm int }{{4, 1}, {4, 4}, {6, 7}, {18, 18}} {
		cfg := Config{Depth: shape.p, Micros: shape.nm, Policy: schedule.Varuna, Costs: benchCosts18()[:shape.p]}
		e, _ := runDirect(t, cfg)
		if e.ss.fired {
			t.Errorf("P=%d Nm=%d: detector fired below the warm-up horizon", shape.p, shape.nm)
		}
	}
	// And agreement still holds trivially.
	for _, shape := range []struct{ p, nm int }{{4, 4}, {18, 18}} {
		cfg := Config{Depth: shape.p, Micros: shape.nm, Policy: schedule.Varuna, Costs: benchCosts18()[:shape.p]}
		fastVsBrute(t, "below-warmup", cfg)
	}
}

// TestSteadyStateBypassedWithJitter: any jitter source disarms the
// detector entirely — a jittered run is not periodic and must go
// through full event-driven execution.
func TestSteadyStateBypassedWithJitter(t *testing.T) {
	cases := []Config{
		{Depth: 4, Micros: 100, Policy: schedule.Varuna, Costs: benchCosts18()[:4],
			JitterCV: 0.3, Rand: simtime.NewRand(1)},
		{Depth: 4, Micros: 100, Policy: schedule.Varuna, Costs: benchCosts18()[:4],
			ComputeJitterCV: 0.02, Rand: simtime.NewRand(1)},
		// A Rand alone (no CVs) draws nothing, but the contract is
		// "Rand set ⇒ bypass": determinism is not worth auditing at
		// run time.
		{Depth: 4, Micros: 100, Policy: schedule.Varuna, Costs: benchCosts18()[:4],
			Rand: simtime.NewRand(1)},
	}
	for i, cfg := range cases {
		e, _ := runDirect(t, cfg)
		if e.ss.armed || e.ss.fired {
			t.Errorf("case %d: detector ran on a jittered/Rand config (armed=%v fired=%v)",
				i, e.ss.armed, e.ss.fired)
		}
	}
	// CollectTrace also bypasses: skipped periods would record no spans.
	e, _ := runDirect(t, Config{Depth: 4, Micros: 100, Policy: schedule.Varuna,
		Costs: benchCosts18()[:4], CollectTrace: true})
	if e.ss.armed || e.ss.fired {
		t.Error("detector ran on a traced config")
	}
}

// TestSteadyStateEstimateExact: for deterministic configurations the
// estimate is no longer an extrapolation — it must equal a brute-force
// full-Nm run to the microsecond.
func TestSteadyStateEstimateExact(t *testing.T) {
	for _, shape := range []struct{ p, nm int }{{1, 50}, {4, 33}, {6, 1000}, {18, 100}, {18, 4096}} {
		base := benchCosts18()
		costs := make([]StageCosts, shape.p)
		for i := range costs {
			costs[i] = base[i%len(base)]
		}
		cfg := Config{Depth: shape.p, Micros: shape.nm, Policy: schedule.Varuna, Costs: costs}
		est, err := EstimateMakespan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		brute := cfg
		brute.DisableSteadyState = true
		res, err := Run(brute)
		if err != nil {
			t.Fatal(err)
		}
		if est != res.Makespan {
			t.Errorf("P=%d Nm=%d: estimate %v != brute-force makespan %v",
				shape.p, shape.nm, est, res.Makespan)
		}
	}
}

// TestSteadyStateFuzz is the property test: random deterministic
// configurations — shape, costs, stash caps, stragglers, policies —
// must agree between fast-forwarded and brute-force execution, always.
func TestSteadyStateFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	iters := 150
	if testing.Short() {
		iters = 40
	}
	fired := 0
	for i := 0; i < iters; i++ {
		p := 1 + rng.Intn(12)
		nm := 1 + rng.Intn(400)
		costs := make([]StageCosts, p)
		for s := range costs {
			costs[s] = StageCosts{
				Fwd:       simtime.Duration(1+rng.Intn(50)) * simtime.Millisecond,
				Bwd:       simtime.Duration(1+rng.Intn(90)) * simtime.Millisecond,
				Rec:       simtime.Duration(1+rng.Intn(50)) * simtime.Millisecond,
				ActSend:   simtime.Duration(rng.Intn(20)) * simtime.Millisecond,
				GradSend:  simtime.Duration(rng.Intn(20)) * simtime.Millisecond,
				AllReduce: simtime.Duration(rng.Intn(300)) * simtime.Millisecond,
				Optimizer: simtime.Duration(rng.Intn(30)) * simtime.Millisecond,
			}
		}
		cfg := Config{Depth: p, Micros: nm, Costs: costs}
		if rng.Intn(3) == 0 {
			sf := make([]float64, p)
			for s := range sf {
				sf[s] = 1 + 0.5*rng.Float64()
			}
			cfg.SpeedFactor = sf
		}
		if rng.Intn(3) == 0 {
			cfg.MaxInFlight = 1 + rng.Intn(2*p)
		}
		label := "fuzz-rule"
		switch rng.Intn(4) {
		case 0:
			cfg.Policy = schedule.Varuna
		case 1:
			cfg.Policy = schedule.VarunaStrict
		case 2:
			s, err := schedule.OneFOneB(p, nm)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Orders = s.Orders
			cfg.Policy = []schedule.Policy{schedule.Megatron1F1B, schedule.DeepSpeedP, schedule.PipeDreamP}[rng.Intn(3)]
			label = "fuzz-" + cfg.Policy.Name
		case 3:
			s, err := schedule.GPipe(p, nm)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Orders = s.Orders
			cfg.Policy = schedule.GPipeP
			label = "fuzz-gpipe"
		}
		if fastVsBrute(t, label, cfg) {
			fired++
		}
		if t.Failed() {
			t.Fatalf("iteration %d diverged: %+v shape P=%d Nm=%d policy=%s", i, cfg, p, nm, cfg.Policy.Name)
		}
	}
	if fired == 0 {
		t.Fatal("fuzz never exercised the fast path")
	}
	t.Logf("fast path fired on %d/%d fuzz configs", fired, iters)
}

// TestSteadyStatePooledRunsStayIsolated re-runs mixed shapes through
// the public pooled Run with detection on: reused detector buffers
// must not leak state between runs.
func TestSteadyStatePooledRunsStayIsolated(t *testing.T) {
	shapes := []struct{ p, nm int }{{6, 300}, {2, 3}, {6, 300}, {1, 100}, {4, 257}, {6, 300}}
	var first Result
	for i, s := range shapes {
		cfg := Config{Depth: s.p, Micros: s.nm, Policy: schedule.Varuna, Costs: UnitCosts(s.p, unit)}
		res := mustRun(t, cfg)
		if s.p == 6 && s.nm == 300 {
			if i == 0 {
				first = res
			} else if res.Makespan != first.Makespan || res.Busy != first.Busy {
				t.Fatalf("run %d: repeated shape drifted across pool reuse: %v vs %v", i, res.Makespan, first.Makespan)
			}
		}
	}
}

// BenchmarkRunRuleDeepNm is the Nm-independence acceptance benchmark:
// with steady-state fast-forwarding, ten times the micro-batches must
// cost roughly what BenchmarkRunRuleNoTrace does, not ten times more.
func BenchmarkRunRuleDeepNm(b *testing.B) {
	cfg := Config{Depth: 18, Micros: 1000, Policy: schedule.Varuna, Costs: benchCosts18()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunRuleNoTraceBrute is the detection-disabled reference for
// the two benchmarks above: the cost of simulating every event.
func BenchmarkRunRuleNoTraceBrute(b *testing.B) {
	cfg := Config{Depth: 18, Micros: 100, Policy: schedule.Varuna, Costs: benchCosts18(), DisableSteadyState: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
