package sim

import (
	"math"

	"repro/internal/simtime"
)

// Steady-state cycle detection.
//
// The paper observes (§4.4) that the pipeline schedule is periodic in
// steady state: once every stage has filled, the executor repeats the
// same relative pattern of tasks once per micro-batch until the drain.
// A deterministic run (no jitter source) therefore only has three
// distinct phases — warm-up, a long exactly-repeating middle, and the
// drain — and simulating the middle event by event is wasted work that
// grows linearly with Nm. §7.2 needs the simulate-and-decide loop to
// answer in hundreds of milliseconds regardless of batch size, so the
// executor detects the repetition online and fast-forwards over it
// arithmetically.
//
// Detection works on canonical relative fingerprints taken at "period
// boundaries" — each completion of a stage-0 backward, which happens
// exactly once per micro-batch in steady state. A fingerprint records
// everything the executor's future depends on, normalized so that two
// shift-equivalent states compare equal:
//
//   - micro-batch indices relative to m0, the lowest backward still
//     outstanding on any stage;
//   - times relative to the current clock, with all past instants
//     collapsed into one class (the executor only ever compares past
//     times against "now", so their exact values are dead state);
//   - the pending event queue in deterministic firing order, with the
//     micro indices inside event arguments normalized the same way
//     (simtime.EventQueue.SnapshotPending).
//
// Two equal fingerprints at boundaries i < j prove the execution is
// periodic with period (Δm, Δt) = (m0_j − m0_i, now_j − now_i): from
// boundary j on, every further Δm micro-batches replay the same events
// shifted by Δt. The executor then jumps k whole periods at once —
// advancing the clock, pending-event timestamps and micro arguments,
// per-stage cursors, busy sums and the opportunistic counter by exact
// integer arithmetic — and resumes event-driven execution for the
// drain. k is chosen so the forward frontier stays strictly below Nm
// through every skipped period, which is what makes the fast path
// bit-identical to brute force (pinned by the golden tests in
// steadystate_test.go).
//
// Detection is Brent-style with one materialized snapshot: the
// reference is re-captured on a geometric schedule of boundary
// ordinals (×1.5), and every other boundary only *streams* the live
// executor state against the reference vector, bailing at the first
// mismatch. Costs follow from that split. A boundary that does not
// match — every boundary of the warm-up, and all of them in the rare
// deep-pipeline regimes whose relative phase precesses without exactly
// repeating — costs O(first difference), and the vector is laid out so
// differences surface early: the cheap discriminating scalars
// (per-stage cursors, in-flight counts, pending-event offsets) come
// before the expensive per-micro windows. Only the O(log) reference
// captures and the single successful match walk the full state. Two
// more trims keep even those cheap: while the pipeline is filling, the
// live window (hi − m0) differs from the previous boundary's, and such
// a boundary cannot match any stored fingerprint (the window length
// leads the vector), so it is skipped outright; and each stage's
// per-micro window starts at its own backward cursor — everything
// below it is constant given the cursor itself. None of this trades
// exactness: a skipped or early-exited boundary only delays detection,
// and a reported match has compared the complete canonical state.
//
// A run is eligible only when it is deterministic — no Rand, no jitter
// CVs — and not collecting a trace (skipped periods record no spans).
// Strict-policy runs are eligible too, with two extra guards: the
// fingerprint includes a window of upcoming order entries (the stage's
// position in its task list is part of the state), and before
// fast-forwarding the detector verifies the order content is actually
// periodic across the whole skipped range, capping k where it is not
// (GPipe's all-forwards phase, drain tails). Strict-and-opportunistic
// combinations are ineligible: the opportunistic scan can read
// unboundedly far ahead in the order, which a bounded fingerprint
// cannot pin. No in-repo policy uses that combination.
type steadyState struct {
	armed bool
	fired bool // a fast-forward was applied this run

	boundaries  int // comparable (non-skipped) boundaries seen so far
	nextRebuild int // boundary ordinal at which the reference is re-captured
	lastWin     int // live-window size at the previous boundary (-1: none)

	ref   ssSnap
	evBuf []simtime.PendingEvent

	shiftM int // micro shift applied by shiftEventArgs during a fast-forward
}

// ssSnap is one boundary snapshot: the canonical relative state vector
// plus the absolute side-state a fast-forward needs to turn "same
// relative state" into exact per-period deltas.
type ssSnap struct {
	valid  bool
	vec    []int64
	m0     int
	now    simtime.Time
	opport int
	busy   []simtime.Duration // per-stage busySum
	pos    []int              // per-stage orderPos
}

// Canonical-time sentinels. All past instants collapse into ssPast:
// the executor only compares past times against the current clock, so
// two states that differ only in how long ago an input arrived behave
// identically.
const (
	ssNever = int64(math.MaxInt64)
	ssPast  = int64(-1)
	ssNone  = int64(-2) // hot/locked: no micro
)

// steadyStateEligible reports whether the detector can arm for cfg:
// deterministic, traceless, not disabled, and not a
// strict-opportunistic hybrid. estimateMakespan keys off the same
// predicate — a config the detector cannot accelerate keeps the
// anchor-extrapolation estimate instead of silently paying a full-Nm
// event-driven run.
func steadyStateEligible(cfg *Config) bool {
	return cfg.Rand == nil && cfg.JitterCV == 0 && cfg.ComputeJitterCV == 0 &&
		!cfg.CollectTrace && !cfg.DisableSteadyState &&
		(cfg.Policy.Rule || !cfg.Policy.Opportunistic)
}

// reset arms the detector for a new run when the configuration is
// eligible.
func (ss *steadyState) reset(e *executor) {
	ss.armed = steadyStateEligible(&e.cfg)
	ss.boundaries = 0
	ss.nextRebuild = 1
	ss.lastWin = -1
	ss.ref.valid = false
	ss.fired = false
	ss.shiftM = 0
}

// boundary runs at every stage-0 backward completion: stream the live
// state against the reference fingerprint, fast-forwarding on a match
// and re-capturing the reference on the geometric schedule otherwise.
func (ss *steadyState) boundary(e *executor, now simtime.Time) {
	nm := e.cfg.Micros
	m0 := e.stages[0].bwdLow
	hi := 0
	for i := range e.stages {
		st := &e.stages[i]
		if st.bwdLow < m0 {
			m0 = st.bwdLow
		}
		if st.fwdHi > hi {
			hi = st.fwdHi
		}
	}
	// Fast-forwarding k periods needs the forward frontier to stay
	// strictly below Nm throughout (hi + k·Δm ≤ Nm−1 with Δm ≥ 1, see
	// fastForward); once the frontier reaches the tail no whole period
	// can ever be skipped again — the frontier only grows — so stop
	// paying for detection.
	if hi >= nm-1 {
		ss.armed = false
		return
	}
	// Fill phase: the window just changed size, so this boundary cannot
	// match any stored fingerprint — skip it entirely.
	if win := hi - m0; win != ss.lastWin {
		ss.lastWin = win
		return
	}
	if ss.ref.valid {
		eq, fingerprintable := ss.liveEquals(e, now, m0, hi)
		if !fingerprintable {
			// A closure-style event is pending: the queue cannot be
			// fingerprinted, so the run is not provably periodic.
			ss.armed = false
			return
		}
		if eq {
			ss.fastForward(e, now, m0, hi)
			if ss.fired {
				ss.armed = false
				return
			}
			// The jump was declined — the frontier cap allowed no whole
			// period, or the strict order content ahead is not periodic
			// (capStrict). Drop the stale reference so the rebuild
			// schedule recaptures in the current phase instead of
			// re-walking the same full match every period; detection
			// stays armed for a later phase that is periodic.
			ss.ref.valid = false
		}
	}
	ss.boundaries++
	if ss.boundaries >= ss.nextRebuild {
		if !ss.capture(e, now, m0, hi) {
			ss.armed = false
			return
		}
		// ×1.5 geometric re-capture: within ~half an onset of steady
		// state the reference lands inside the periodic regime, and the
		// next Δb boundaries of cheap streaming compares find the match.
		ss.nextRebuild = ss.nextRebuild*3/2 + 1
	}
}

// capture materializes the canonical fingerprint of the current state
// into the reference snapshot, reporting false when the event queue
// holds an unfingerprintable (closure-style) event. Layout (mirrored
// exactly by liveEquals): the live-window length, every stage's scalar
// cursors, the per-micro windows, the strict-policy order windows, and
// the pending-event queue last. Scalars lead so that streaming
// comparisons against a drifting state exit early; the queue trails so
// that only a boundary whose direct state already matches pays for the
// snapshot-and-sort of SnapshotPending.
func (ss *steadyState) capture(e *executor, now simtime.Time, m0, hi int) bool {
	s := &ss.ref
	s.valid = false
	s.m0 = m0
	s.now = now
	s.opport = e.opport
	s.busy = s.busy[:0]
	s.pos = s.pos[:0]
	v := s.vec[:0]
	v = append(v, int64(hi-m0))
	syncComm := e.cfg.Policy.SyncComm
	strict := !e.cfg.Policy.Rule
	for i := range e.stages {
		st := &e.stages[i]
		s.busy = append(s.busy, st.busySum)
		s.pos = append(s.pos, st.orderPos)
		// nextFwd is the rule-mode forward cursor; strict stages leave
		// it at zero, where normalizing by m0 would (wrongly) make the
		// fingerprint drift.
		nextFwd := int64(0)
		if !strict {
			nextFwd = int64(st.nextFwd - m0)
		}
		v = append(v,
			int64(st.bwdLow-m0),
			nextFwd,
			int64(st.fwdHi-m0),
			int64(st.inFlight),
			boolBit(st.busy),
			relMicro(st.hot, m0),
			relMicro(st.locked, m0),
			relTime(st.wakeAt, now),
		)
	}
	for i := range e.stages {
		st := &e.stages[i]
		// Micros below this stage's own backward cursor are fully
		// processed here: their bits are all-set and their instants all
		// past — constants, given the bwdLow cursor recorded above — so
		// the window starts at the stage's cursor, not at the global m0.
		for m := st.bwdLow; m < hi; m++ {
			bits := boolBit(st.fwdDone[m]) | boolBit(st.recDone[m])<<1 | boolBit(st.bwdDone[m])<<2
			v = append(v, bits,
				relTime(st.actArrival[m], now),
				relTime(st.gradArrival[m], now),
				relTime(st.gradAnnounce[m], now))
			if syncComm {
				v = append(v,
					relTime(st.fwdSenderEnd[m], now),
					relTime(st.gradSenderEnd[m], now))
			}
		}
		if strict {
			// The stage's relative position in its task list is part of
			// the state: record the upcoming order window (entry kinds,
			// micros relative to m0, done flags). 3·window + 8 entries
			// comfortably cover one period's consumption plus the
			// completion lag of the entry currently executing.
			order := e.cfg.Orders[st.idx]
			w := 3*(hi-m0) + 8
			if rem := len(order) - st.orderPos; rem < w {
				w = rem
			}
			v = append(v, int64(w))
			for j := 0; j < w; j++ {
				t := order[st.orderPos+j]
				v = append(v,
					int64(t.Kind),
					int64(t.Micro-m0),
					boolBit(st.orderDone[st.orderPos+j]))
			}
		}
	}
	evs, ok := e.q.SnapshotPending(ss.evBuf)
	ss.evBuf = evs
	if !ok {
		s.vec = v
		return false
	}
	v = append(v, int64(len(evs)))
	for _, ev := range evs {
		// Pending events are never in the past (the queue clamps), so
		// At−now is the exact relative offset. The first argument
		// carries (kind, stage) — both absolute invariants of the run —
		// and the second carries a micro index for the three
		// micro-addressed kinds, normalized like every other index.
		v = append(v, int64(ev.At-now), int64(ev.A), relEvB(ev, m0))
	}
	s.vec = v
	s.valid = true
	return true
}

// liveEquals streams the canonical fingerprint of the current state
// against the reference vector, in exactly capture's emission order,
// and reports whether they are identical, plus whether the state was
// fingerprintable at all (false when the queue holds a closure-style
// event — checked only once the direct state matches, since the queue
// snapshot is the one non-free piece). A mismatch returns at the first
// differing value — during warm-up and phase drift that is almost
// always within the leading scalar section — so the per-boundary cost
// of watching for the cycle is O(1)-ish, not O(state).
func (ss *steadyState) liveEquals(e *executor, now simtime.Time, m0, hi int) (eq, fingerprintable bool) {
	v := ss.ref.vec
	i := 0
	match := func(x int64) bool {
		if i >= len(v) || v[i] != x {
			return false
		}
		i++
		return true
	}
	if !match(int64(hi - m0)) {
		return false, true
	}
	syncComm := e.cfg.Policy.SyncComm
	strict := !e.cfg.Policy.Rule
	for si := range e.stages {
		st := &e.stages[si]
		nextFwd := int64(0)
		if !strict {
			nextFwd = int64(st.nextFwd - m0)
		}
		if !match(int64(st.bwdLow-m0)) || !match(nextFwd) ||
			!match(int64(st.fwdHi-m0)) || !match(int64(st.inFlight)) ||
			!match(boolBit(st.busy)) || !match(relMicro(st.hot, m0)) ||
			!match(relMicro(st.locked, m0)) || !match(relTime(st.wakeAt, now)) {
			return false, true
		}
	}
	for si := range e.stages {
		st := &e.stages[si]
		for m := st.bwdLow; m < hi; m++ {
			bits := boolBit(st.fwdDone[m]) | boolBit(st.recDone[m])<<1 | boolBit(st.bwdDone[m])<<2
			if !match(bits) || !match(relTime(st.actArrival[m], now)) ||
				!match(relTime(st.gradArrival[m], now)) || !match(relTime(st.gradAnnounce[m], now)) {
				return false, true
			}
			if syncComm && (!match(relTime(st.fwdSenderEnd[m], now)) || !match(relTime(st.gradSenderEnd[m], now))) {
				return false, true
			}
		}
		if strict {
			order := e.cfg.Orders[st.idx]
			w := 3*(hi-m0) + 8
			if rem := len(order) - st.orderPos; rem < w {
				w = rem
			}
			if !match(int64(w)) {
				return false, true
			}
			for j := 0; j < w; j++ {
				t := order[st.orderPos+j]
				if !match(int64(t.Kind)) || !match(int64(t.Micro-m0)) ||
					!match(boolBit(st.orderDone[st.orderPos+j])) {
					return false, true
				}
			}
		}
	}
	// The direct state matches: only now pay for the queue snapshot.
	evs, ok := e.q.SnapshotPending(ss.evBuf)
	ss.evBuf = evs
	if !ok {
		return false, false
	}
	if !match(int64(len(evs))) {
		return false, true
	}
	for _, ev := range evs {
		if !match(int64(ev.At-now)) || !match(int64(ev.A)) || !match(relEvB(ev, m0)) {
			return false, true
		}
	}
	return i == len(v), true
}

// relEvB normalizes the second callback argument of a pending event:
// a micro index for the three micro-addressed kinds, opaque payload
// otherwise.
func relEvB(ev simtime.PendingEvent, m0 int) int64 {
	switch ev.A >> 16 {
	case evComplete, evActArrive, evGradArrive:
		return int64(ev.B) - int64(m0)
	}
	return int64(ev.B)
}

// fastForward applies k whole periods in O(P · window) arithmetic: the
// clock, every pending event (timestamp and micro arguments), every
// per-stage cursor and per-micro state window, busy sums and the
// opportunistic counter advance by exactly what k periods of
// event-driven execution would have produced. The reference snapshot
// is the earlier matched state; the per-period deltas are "now minus
// reference".
func (ss *steadyState) fastForward(e *executor, now simtime.Time, m0, hi int) {
	ref := &ss.ref
	dm := m0 - ref.m0
	dt := now.Sub(ref.now)
	if dm < 1 || dt < 1 {
		return
	}
	nm := e.cfg.Micros
	// Keep the forward frontier strictly below Nm through every skipped
	// period: during period j the executor touches micros below
	// hi + (j+1)·Δm, and a stage must still see nextFwd < Nm at every
	// instant for its decisions to replay shift-identically.
	k := (nm - 1 - hi) / dm
	if k < 1 {
		return
	}
	if !e.cfg.Policy.Rule {
		k = ss.capStrict(e, k, dm)
		if k < 1 {
			return
		}
	}
	kdm := k * dm
	kdt := simtime.Duration(k) * simtime.Duration(dt)

	ss.shiftM = kdm
	e.q.ShiftPending(kdt, e.onShift)
	for i := range e.stages {
		st := &e.stages[i]
		busyDelta := st.busySum - ref.busy[i]
		// Shift the live per-micro window up by k·Δm (descending copy —
		// source and destination overlap when the skip is shorter than
		// the window).
		for m := hi - 1 + kdm; m >= st.bwdLow+kdm; m-- {
			src := m - kdm
			st.fwdDone[m] = st.fwdDone[src]
			st.recDone[m] = st.recDone[src]
			st.bwdDone[m] = st.bwdDone[src]
			st.actArrival[m] = shiftTime(st.actArrival[src], kdt)
			st.gradArrival[m] = shiftTime(st.gradArrival[src], kdt)
			st.gradAnnounce[m] = shiftTime(st.gradAnnounce[src], kdt)
			st.fwdSenderEnd[m] = shiftTime(st.fwdSenderEnd[src], kdt)
			st.gradSenderEnd[m] = shiftTime(st.gradSenderEnd[src], kdt)
		}
		// Micros skipped by the jump are fully processed; their timing
		// state is dead (only bwdDone is ever consulted once a micro's
		// backward is complete).
		for m := st.bwdLow; m < st.bwdLow+kdm; m++ {
			st.fwdDone[m] = true
			st.recDone[m] = true
			st.bwdDone[m] = true
		}
		if !e.cfg.Policy.Rule {
			c := st.orderPos - ref.pos[i]
			kc := k * c
			for j := len(st.orderDone) - 1; j >= st.orderPos+kc; j-- {
				st.orderDone[j] = st.orderDone[j-kc]
			}
			for j := st.orderPos; j < st.orderPos+kc; j++ {
				st.orderDone[j] = true
			}
			st.orderPos += kc
		}
		st.bwdLow += kdm
		st.nextFwd += kdm
		st.fwdHi += kdm
		st.bwdLeft -= kdm
		if st.hot >= 0 {
			st.hot += kdm
		}
		if st.locked >= 0 {
			st.locked += kdm
		}
		if st.wakeAt != never {
			st.wakeAt = st.wakeAt.Add(kdt)
		}
		st.lastBwd = st.lastBwd.Add(kdt)
		st.busySum += simtime.Duration(k) * busyDelta
	}
	e.opport += k * (e.opport - ref.opport)
	ss.fired = true
}

// capStrict bounds k for strict policies by how far the order content
// is actually periodic: entry j+c must be entry j advanced by Δm for
// every entry the skipped periods would consume (plus a cushion for
// the in-period read-ahead), where c is the per-period entry
// consumption observed between the reference and the match. GPipe's
// all-forward phase and every drain tail fail the check and cap k —
// usually to zero, which simply declines the jump.
func (ss *steadyState) capStrict(e *executor, k, dm int) int {
	for i := range e.stages {
		st := &e.stages[i]
		order := e.cfg.Orders[st.idx]
		c := st.orderPos - ss.ref.pos[i]
		if c < 1 {
			return 0
		}
		cushion := c + 8
		limit := st.orderPos + k*c + cushion
		if limit > len(order) {
			limit = len(order)
		}
		for j := ss.ref.pos[i]; j+c < limit; j++ {
			if order[j+c].Kind != order[j].Kind || order[j+c].Micro != order[j].Micro+dm {
				kMax := (j + c - cushion - st.orderPos) / c
				if kMax < k {
					k = kMax
				}
				break
			}
		}
		if k < 1 {
			return 0
		}
	}
	return k
}

// shiftEventArgs advances the micro index inside a pending event's
// arguments by the current fast-forward shift. Completion events pack
// the task kind above bit 24, and micros stay below 2^24, so a plain
// add keeps the kind intact for all three micro-addressed event kinds.
func (e *executor) shiftEventArgs(a, b int32) (int32, int32) {
	switch a >> 16 {
	case evComplete, evActArrive, evGradArrive:
		return a, b + int32(e.ss.shiftM)
	}
	return a, b
}

// relTime canonicalizes an absolute instant against the current clock:
// never stays a sentinel, the future keeps its exact offset, and the
// whole past collapses into one class.
func relTime(t, now simtime.Time) int64 {
	if t == never {
		return ssNever
	}
	if t < now {
		return ssPast
	}
	return int64(t - now)
}

// relMicro canonicalizes a micro index (or the -1 "none" sentinel).
func relMicro(m, m0 int) int64 {
	if m < 0 {
		return ssNone
	}
	return int64(m - m0)
}

// shiftTime advances an instant by d, preserving the never sentinel.
func shiftTime(t simtime.Time, d simtime.Duration) simtime.Time {
	if t == never {
		return t
	}
	return t.Add(d)
}

func boolBit(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
