package sim

import (
	"repro/internal/schedule"
	"repro/internal/simtime"
)

// tryRule implements Varuna's scheduling rules (§3.2) online:
//
//  1. Just-in-time recompute: R(m) at stage k starts so that it
//     completes as the gradient from stage k+1's B(m) arrives. The
//     arrival is announced the moment the upstream backward starts,
//     exactly as a real implementation can piggyback a
//     "backward started" notification on the pipeline channel.
//  2. After a recompute, the stage unconditionally waits for the
//     matching backward: running anything else would double activation
//     memory.
//  3. Backward is preferred whenever one is ready.
//
// Because decisions are made online against actual arrivals, the
// policy is intrinsically work-conserving under jitter — this is the
// "opportunistically schedules another ready task" behaviour of §3.2.
// The strict ablation instead freezes the order this policy produces
// under mean timings and replays it verbatim (see VarunaOrders).
func (e *executor) tryRule(st *stageState, now simtime.Time) {
	// Rule 2: committed to a backward after recompute.
	if st.locked >= 0 {
		if e.backwardReady(st, st.locked, now) {
			e.start(st, schedule.Task{Kind: schedule.Backward, Micro: st.locked}, now, e.syncExtra(st, schedule.Task{Kind: schedule.Backward}))
			return
		}
		e.wake(st, st.gradAnnounce[st.locked])
		return
	}

	// Rule 3: prefer a ready backward (lowest micro first — gradients
	// arrive in order, and bwdLow tracks the lowest outstanding one).
	if m := st.bwdLow; m < e.cfg.Micros && e.backwardReady(st, m, now) {
		e.start(st, schedule.Task{Kind: schedule.Backward, Micro: m}, now, e.syncExtra(st, schedule.Task{Kind: schedule.Backward}))
		return
	}

	// Rule 1: just-in-time recompute for the next due backward. The
	// gradient's arrival is announced when the upstream backward
	// starts; from then on the recompute is "due" — it must finish by
	// the arrival (t − t′ > Tf is a lower bound on lead time), and an
	// idle stage runs it immediately rather than waiting for the last
	// possible slot.
	next := e.nextBackward(st)
	recMean := e.scaled(e.cfg.Costs[st.idx].Rec, st.idx)
	var recBy simtime.Time = never
	recDue := false
	if next >= 0 && st.fwdDone[next] && !st.recDone[next] && st.hot != next {
		if ann := st.gradAnnounce[next]; ann != never {
			recDue = true
			recBy = ann.Add(-recMean)
		}
	}

	// Forward, if one is ready and either it completes before the
	// recompute deadline (work conservation that never displaces rule
	// 1), or the downstream pipeline is at risk of starving: the
	// stage's forward lead over its backward frontier must cover the
	// stages below it, else the last stage runs dry and the whole
	// pipeline stalls to refill. A slightly late recompute costs one
	// bounded delay; a starved pipeline costs a full drain.
	if st.nextFwd < e.cfg.Micros && st.inFlight < e.cfg.MaxInFlight {
		m := st.nextFwd
		arrived := st.actArrival[m] <= now
		if e.cfg.Policy.SyncComm {
			arrived = st.fwdSenderEnd[m] <= now
		}
		if arrived {
			fwdMean := e.scaled(e.cfg.Costs[st.idx].Fwd, st.idx)
			fits := recBy == never || now.Add(fwdMean) <= recBy
			lead := st.nextFwd - next
			if next < 0 {
				lead = e.cfg.Micros
			}
			starving := lead < e.cfg.Depth-st.idx
			if fits || starving {
				if recBy == never && next >= 0 && st.fwdDone[next] {
					// A backward is pending but its gradient has not
					// even been announced: this forward is the §3.2
					// opportunistic deviation hiding upstream jitter.
					e.opport++
				}
				st.nextFwd++
				e.start(st, schedule.Task{Kind: schedule.Forward, Micro: m}, now, e.syncExtra(st, schedule.Task{Kind: schedule.Forward}))
				return
			}
		}
	}

	// No forward fits: if the recompute is due, run it now so the
	// backward can start the instant its gradient lands.
	if recDue {
		e.start(st, schedule.Task{Kind: schedule.Recompute, Micro: next}, now, 0)
		return
	}

	// Nothing runnable: sleep until the next known arrival.
	if next >= 0 {
		e.wake(st, st.gradAnnounce[next])
	}
}

// scaled applies the per-stage straggler factor to a mean duration.
func (e *executor) scaled(d simtime.Duration, stage int) simtime.Duration {
	if e.cfg.SpeedFactor == nil {
		return d
	}
	return simtime.Duration(float64(d)*e.cfg.SpeedFactor[stage] + 0.5)
}

// nextBackward reports the lowest micro-batch still awaiting backward.
// The bwdLow cursor is maintained on every backward completion, so
// this is O(1) regardless of how many micro-batches are already done.
func (e *executor) nextBackward(st *stageState) int {
	if st.bwdLow < e.cfg.Micros {
		return st.bwdLow
	}
	return -1
}

// tryStrict follows a fixed per-stage order. Without Opportunistic the
// stage stalls whenever the next task's inputs are missing (GPipe,
// 1F1B, DeepSpeed, Varuna-strict ablation). With Opportunistic, a
// stalled stage pulls the next forward in the order whose input has
// arrived — the paper's deviation when "the gradients for m may not
// have arrived yet".
func (e *executor) tryStrict(st *stageState, now simtime.Time) {
	order := e.cfg.Orders[st.idx]
	for st.orderPos < len(order) && st.orderDone[st.orderPos] {
		st.orderPos++
	}
	if st.orderPos >= len(order) {
		return
	}
	pos := st.orderPos
	t := order[pos]
	if e.taskReady(st, t, now) {
		st.orderDone[pos] = true
		e.start(st, t, now, e.syncExtra(st, t))
		return
	}
	if t.Kind == schedule.Backward {
		// If the gradient is here but the activations were evicted by
		// an out-of-order task, recover with an extra recompute — the
		// price of deviation, charged honestly.
		m := t.Micro
		gradOK := st.gradArrival[m] <= now
		if e.cfg.Policy.SyncComm {
			gradOK = st.gradSenderEnd[m] <= now
		}
		if gradOK && st.fwdDone[m] && !st.recDone[m] && st.hot != m {
			e.start(st, schedule.Task{Kind: schedule.Recompute, Micro: m}, now, 0)
			return
		}
		e.wake(st, st.gradAnnounce[m])
	}

	if !e.cfg.Policy.Opportunistic || st.locked >= 0 {
		return
	}
	// Deviation: pull the next un-run forward whose input has arrived —
	// unless running it would evict hot activations that a pending
	// backward still needs (that backward has no recompute scheduled).
	if st.hot >= 0 && !st.bwdDone[st.hot] && !st.hasRec[st.hot] {
		return
	}
	for i := pos + 1; i < len(order); i++ {
		if st.orderDone[i] || order[i].Kind != schedule.Forward {
			continue
		}
		if st.inFlight >= e.cfg.MaxInFlight {
			return
		}
		if e.taskReady(st, order[i], now) {
			st.orderDone[i] = true
			e.opport++
			e.start(st, order[i], now, e.syncExtra(st, order[i]))
		}
		return // only the first pending forward can be pulled
	}
}

// taskReady reports whether t's inputs are available on st at now.
func (e *executor) taskReady(st *stageState, t schedule.Task, now simtime.Time) bool {
	switch t.Kind {
	case schedule.Forward:
		if e.cfg.Policy.SyncComm {
			return st.fwdSenderEnd[t.Micro] <= now
		}
		return st.actArrival[t.Micro] <= now
	case schedule.Backward:
		return e.backwardReady(st, t.Micro, now)
	default: // Recompute uses only the local input stash
		return true
	}
}

// VarunaOrders derives Varuna's static schedule for the given costs by
// executing the rule-based policy with mean timings (no jitter) and
// recording the per-stage task order. This is the offline schedule a
// stage sticks to absent jitter (§3.2).
func VarunaOrders(depth, micros int, costs []StageCosts) (*schedule.Schedule, error) {
	res, err := Run(Config{
		Depth:        depth,
		Micros:       micros,
		Policy:       schedule.Varuna,
		Costs:        costs,
		CollectTrace: true,
	})
	if err != nil {
		return nil, err
	}
	s := &schedule.Schedule{Depth: depth, Micros: micros, Orders: make([]schedule.Order, depth)}
	for _, span := range res.Trace {
		s.Orders[span.Stage] = append(s.Orders[span.Stage], span.Task)
	}
	return s, nil
}

// UnitCosts builds the uniform-stage costs used for schedule-shape
// comparisons like Figure 4: forward and recompute take unit time,
// backward twice that, with negligible transfer time.
func UnitCosts(depth int, unit simtime.Duration) []StageCosts {
	costs := make([]StageCosts, depth)
	for i := range costs {
		costs[i] = StageCosts{Fwd: unit, Bwd: 2 * unit, Rec: unit, ActSend: unit / 100, GradSend: unit / 100}
	}
	return costs
}
