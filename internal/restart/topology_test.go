package restart

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/simtime"
)

func topoModel(t *testing.T, gpus int) *Model {
	t.Helper()
	cluster := hw.SpotCluster(hw.NC24v3, gpus)
	cluster.Topo = hw.SpotTopology(4, 2, 2)
	return NewModel(model.BERTLarge(), cluster)
}

func flatModel(t *testing.T, gpus int) *Model {
	t.Helper()
	return NewModel(model.BERTLarge(), hw.SpotCluster(hw.NC24v3, gpus))
}

func TestFlatPricingUntouchedByTopologyCode(t *testing.T) {
	// A model built on a flat cluster must price identically to the
	// pre-topology code: redistributeTime, not redistributeTimeTopo,
	// and no replication terms.
	m := flatModel(t, 64)
	n := len(m.LayerBytes)
	old := Assignment{Stages: EvenStages(n, 4), D: 4}
	new := Assignment{Stages: EvenStages(n, 8), D: 4}
	got := m.Price(old, new, true)
	want := Costs{
		Stop:         m.StopTime,
		Flush:        m.flushTime(old),
		Redistribute: m.redistributeTime(old, new),
		Restart:      m.RestartTime,
	}
	if got != want {
		t.Fatalf("flat price = %v, want %v", got, want)
	}
	if m.ReplicationOverhead(old) != 0 {
		t.Fatal("flat cluster must have zero replication overhead")
	}
	if (m.Failover(new) != Costs{}) {
		t.Fatal("flat cluster must have zero failover cost")
	}
}

func TestTopoRedistributePricesAtMostFlat(t *testing.T) {
	// Nearest-replica fetches over a topology can only improve on the
	// flat model's everything-over-Inter price when the cross links
	// are no slower than Inter, and must stay deterministic.
	mTopo := topoModel(t, 64)
	mFlat := flatModel(t, 64)
	n := len(mTopo.LayerBytes)
	old := Assignment{Stages: EvenStages(n, 4), D: 4}
	new := Assignment{Stages: EvenStages(n, 8), D: 4}
	topo := mTopo.Price(old, new, false)
	if topo.Redistribute == 0 {
		t.Fatal("reshape must move state")
	}
	again := mTopo.Price(old, new, false)
	if topo != again {
		t.Fatal("topology pricing must be deterministic")
	}
	// Same-shape replacement still redistributes nothing.
	if c := mTopo.Price(old, old, false); c.Redistribute != 0 {
		t.Fatalf("identity morph redistribute = %v, want 0", c.Redistribute)
	}
	// Cold start (no holders) falls back to the flat Inter price.
	coldTopo := mTopo.Price(Assignment{}, new, false)
	coldFlat := mFlat.Price(Assignment{}, new, false)
	if coldTopo.Redistribute != coldFlat.Redistribute {
		t.Fatalf("cold-start topo = %v, flat = %v", coldTopo.Redistribute, coldFlat.Redistribute)
	}
}

func TestReplicationOverhead(t *testing.T) {
	m := topoModel(t, 64)
	n := len(m.LayerBytes)
	a := Assignment{Stages: EvenStages(n, 4), D: 4}
	if m.ReplicationOverhead(a) != 0 {
		t.Fatal("overhead must be zero with replication off")
	}
	m.Replication = checkpoint.Policy{Replicas: 2, Spread: hw.DomainZone}
	k2 := m.ReplicationOverhead(a)
	if k2 <= 0 {
		t.Fatal("k=2 push must cost time")
	}
	m.Replication.Replicas = 3
	if k3 := m.ReplicationOverhead(a); k3 != 2*k2 {
		t.Fatalf("k=3 push = %v, want 2x k=2 (%v)", k3, 2*k2)
	}
	// The push rides the spread-level cross link: zone spread pays the
	// WAN, rack spread pays the cheaper cross-rack link.
	m.Replication = checkpoint.Policy{Replicas: 2, Spread: hw.DomainRack}
	rack := m.ReplicationOverhead(a)
	if rack >= k2 {
		t.Fatalf("rack-spread push (%v) must be cheaper than zone-spread (%v)", rack, k2)
	}
	// With replication on, a dirty flush is bounded below by the push.
	old := Assignment{Stages: EvenStages(n, 4), D: 4}
	m.Replication = checkpoint.Policy{Replicas: 2, Spread: hw.DomainZone}
	c := m.Price(old, a, true)
	if c.Flush < m.ReplicationOverhead(old) {
		t.Fatalf("dirty flush %v below replica push %v", c.Flush, m.ReplicationOverhead(old))
	}
}

func TestFailoverPricing(t *testing.T) {
	m := topoModel(t, 64)
	n := len(m.LayerBytes)
	a := Assignment{Stages: EvenStages(n, 4), D: 3}
	if (m.Failover(a) != Costs{}) {
		t.Fatal("failover without replication must be free (nothing to fail over to)")
	}
	m.Replication = checkpoint.Policy{Replicas: 2, Spread: hw.DomainZone}
	c := m.Failover(a)
	if c.Stop != m.StopTime || c.Restart != m.RestartTime {
		t.Fatalf("failover fixed phases = %v", c)
	}
	if c.Redistribute <= 0 {
		t.Fatal("failover must pay a cross-zone fetch")
	}
	// The fetch moves full stage state over the WAN — strictly more
	// than a same-shape morph, which moves nothing.
	if morph := m.Price(a, a, false); c.Redistribute <= morph.Redistribute {
		t.Fatal("failover fetch must exceed identity-morph redistribution")
	}
	if (m.Failover(Assignment{}) != Costs{}) {
		t.Fatal("empty failover must be free")
	}
	_ = simtime.Second
}
