package restart_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/autoconfig"
	"repro/internal/calibrate"
	"repro/internal/checkpoint"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/restart"
	"repro/internal/simtime"
	"repro/internal/testbed"
)

// syntheticModel builds a hand-checkable cost model: four 800-byte
// layers, 800 B/s everywhere, no latency, no contention — so every
// golden duration below is integer seconds computable on paper.
func syntheticModel() *restart.Model {
	return &restart.Model{
		LayerBytes:  []int64{800, 800, 800, 800},
		FlushBps:    800,
		Fabric:      netsim.New(1),
		Link:        hw.Link{Kind: hw.LinkEthernet, BandwidthBps: 800, Latency: 0, JitterCV: 0},
		StopTime:    5 * simtime.Second,
		RestartTime: 30 * simtime.Second,
	}
}

func stages(bounds ...[2]int) []model.Stage {
	out := make([]model.Stage, len(bounds))
	for i, b := range bounds {
		out[i] = model.Stage{Index: i, FirstOp: b[0], LastOp: b[1]}
	}
	return out
}

// TestPriceGolden pins the modeled morph cost for known (bytes, P×D
// old→new, bandwidth) tuples.
func TestPriceGolden(t *testing.T) {
	m := syntheticModel()
	p2 := stages([2]int{0, 1}, [2]int{2, 3})
	p4 := stages([2]int{0, 0}, [2]int{1, 1}, [2]int{2, 2}, [2]int{3, 3})

	cases := []struct {
		name     string
		old, new restart.Assignment
		dirty    bool
		want     restart.Costs
	}{
		{
			// Deepen 2x1 → 4x1. Flush: each old replica writes its full
			// 1600 B stage at 800 B/s = 2s. Redistribution is
			// source-bound: every fetch is 800 B (1s), but old rank 1 is
			// the lone holder serving ops 2 and 3 to the two fresh
			// ranks — 1600 B uploaded at 800 B/s = 2s.
			name:  "deepen 2x1 to 4x1, dirty",
			old:   restart.Assignment{Stages: p2, D: 1},
			new:   restart.Assignment{Stages: p4, D: 1},
			dirty: true,
			want: restart.Costs{
				Stop:         5 * simtime.Second,
				Flush:        2 * simtime.Second,
				Redistribute: 2 * simtime.Second,
				Restart:      30 * simtime.Second,
			},
		},
		{
			// Widen 2x1 → 2x2, clean. Survivors keep their stages; the
			// two fresh ranks each fetch a full 1600 B stage = 2s.
			name: "widen 2x1 to 2x2, clean",
			old:  restart.Assignment{Stages: p2, D: 1},
			new:  restart.Assignment{Stages: p2, D: 2},
			want: restart.Costs{
				Stop:         5 * simtime.Second,
				Redistribute: 2 * simtime.Second,
				Restart:      30 * simtime.Second,
			},
		},
		{
			// Cold start into 2x2: no stop, no flush; every rank fetches
			// its full stage from storage (1600 B = 2s).
			name: "cold start into 2x2",
			new:  restart.Assignment{Stages: p2, D: 2},
			want: restart.Costs{
				Redistribute: 2 * simtime.Second,
				Restart:      30 * simtime.Second,
			},
		},
		{
			// Pure replacement: same shape prices with zero
			// redistribution and, clean, zero flush.
			name: "replacement 2x2, clean",
			old:  restart.Assignment{Stages: p2, D: 2},
			new:  restart.Assignment{Stages: p2, D: 2},
			want: restart.Costs{
				Stop:    5 * simtime.Second,
				Restart: 30 * simtime.Second,
			},
		},
		{
			// Dirty replacement at D=2: checkpoint sharding splits the
			// 1600 B stage across two replicas → 800 B = 1s flush.
			name:  "replacement 2x2, dirty",
			old:   restart.Assignment{Stages: p2, D: 2},
			new:   restart.Assignment{Stages: p2, D: 2},
			dirty: true,
			want: restart.Costs{
				Stop:    5 * simtime.Second,
				Flush:   1 * simtime.Second,
				Restart: 30 * simtime.Second,
			},
		},
	}
	for _, tc := range cases {
		got := m.Price(tc.old, tc.new, tc.dirty)
		if got != tc.want {
			t.Errorf("%s:\n got  %+v\n want %+v", tc.name, got, tc.want)
		}
	}
}

// TestReplacementIsRedistributionFree is the property test: for every
// partition depth of a real model, a same-shape (P, D) replacement
// prices at exactly the redistribution-free restart cost.
func TestReplacementIsRedistributionFree(t *testing.T) {
	spec := model.GPT2XL2B()
	cluster := hw.SpotCluster(hw.NC6v3, 64)
	m := restart.NewModel(spec, cluster)
	cuts, err := model.FindCutPoints(spec, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 5, 9, 18, 32} {
		st, err := model.Partition(spec, cuts, p, true)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		for _, d := range []int{1, 2, 7} {
			a := restart.Assignment{Stages: st, D: d}
			for _, dirty := range []bool{false, true} {
				c := m.Price(a, a, dirty)
				if c.Redistribute != 0 {
					t.Fatalf("P=%d D=%d dirty=%v: replacement redistributed %v", p, d, dirty, c.Redistribute)
				}
				wantFlush := c.Flush != 0
				if wantFlush != dirty {
					t.Fatalf("P=%d D=%d: flush %v under dirty=%v", p, d, c.Flush, dirty)
				}
				if got, want := c.Total(), m.StopTime+c.Flush+m.RestartTime; got != want {
					t.Fatalf("P=%d D=%d: total %v, want restart-only %v", p, d, got, want)
				}
			}
		}
	}
}

// TestPriceScalesWithShapeDelta checks the gradient the constant could
// never express: a bigger reshape of the same model moves more state
// and must cost strictly more than a small one.
func TestPriceScalesWithShapeDelta(t *testing.T) {
	spec := model.GPT2XL2B()
	m := restart.NewModel(spec, hw.SpotCluster(hw.NC6v3, 128))
	cuts, err := model.FindCutPoints(spec, 31)
	if err != nil {
		t.Fatal(err)
	}
	part := func(p int) []model.Stage {
		st, err := model.Partition(spec, cuts, p, true)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		return st
	}
	from := restart.Assignment{Stages: part(16), D: 4}
	small := m.Price(from, restart.Assignment{Stages: part(15), D: 4}, false)
	big := m.Price(from, restart.Assignment{Stages: part(4), D: 16}, false)
	if big.Redistribute <= small.Redistribute {
		t.Fatalf("16x4→4x16 redistribution %v not above 16x4→15x4 %v", big.Redistribute, small.Redistribute)
	}
	// Dirty flush is bounded by the largest per-replica shard, which
	// shrinks as D grows.
	d4 := m.Price(from, from, true).Flush
	wide := restart.Assignment{Stages: part(16), D: 8}
	d8 := m.Price(wide, wide, true).Flush
	if d8 >= d4 {
		t.Fatalf("flush at D=8 (%v) should undercut D=4 (%v): sharding splits the write", d8, d4)
	}
}

// TestModelFromManifest ties the pricing model to the checkpoint's own
// byte accounting: a manifest-built model prices from the recorded
// sizes, with absent layers priced as zero.
func TestModelFromManifest(t *testing.T) {
	man := checkpoint.Manifest{Step: 3, Layers: []int{0, 2}, LayerBytes: []int64{100, 300}, NumLayers: 3}
	m := restart.NewModelFromManifest(man, hw.SpotCluster(hw.NC6v3, 4))
	if want := []int64{100, 0, 300}; !reflect.DeepEqual(m.LayerBytes, want) {
		t.Fatalf("LayerBytes = %v, want %v", m.LayerBytes, want)
	}
	if got := m.TotalStateBytes(); got != man.TotalBytes() {
		t.Fatalf("model total %d != manifest total %d", got, man.TotalBytes())
	}
}

// TestEvenStages pins the contiguous layer→stage reconstruction used
// to cost checkpoints of jobs that are not running.
func TestEvenStages(t *testing.T) {
	st := restart.EvenStages(6, 3)
	want := []model.Stage{
		{Index: 0, FirstOp: 0, LastOp: 1},
		{Index: 1, FirstOp: 2, LastOp: 3},
		{Index: 2, FirstOp: 4, LastOp: 5},
	}
	if !reflect.DeepEqual(st, want) {
		t.Fatalf("EvenStages(6,3) = %+v", st)
	}
	if got := restart.EvenStages(5, 9); len(got) != 5 {
		t.Fatalf("more stages than layers must clamp: %d", len(got))
	}
}

// plannerFor builds a small real Planner through exported APIs only
// (restart_test cannot use autoconfig's internal helpers).
func plannerFor(t *testing.T) (autoconfig.Inputs, *autoconfig.Planner) {
	t.Helper()
	cluster := hw.SpotCluster(hw.NC6v3, 100)
	tb := testbed.New(cluster, 31)
	spec := model.GPT2XL2B()
	params, err := calibrate.Run(spec, tb, calibrate.Options{MicroSizes: []int{4, 8}, GPUsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := model.FindCutPoints(spec, 53)
	if err != nil {
		t.Fatal(err)
	}
	in := autoconfig.Inputs{
		Spec: spec, Cuts: cuts, Params: params,
		GPUMem: 16 << 30, MTotal: 8192, GPUsPerNode: 1,
	}
	return in, autoconfig.NewPlanner(in)
}

// TestPlannerStateRoundTrip is the kill-and-restart acceptance test: a
// planner warmed by real sweeps is persisted with SaveState, a fresh
// planner (the "restarted manager") loads it, and replaying the same
// decisions performs zero cost-cache recomputations while returning
// bit-identical choices.
func TestPlannerStateRoundTrip(t *testing.T) {
	in, pl := plannerFor(t)
	var want []autoconfig.Choice
	for _, g := range []int{72, 96, 100} {
		c, err := pl.Best(g)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, c)
	}
	if _, err := pl.Best(2); err == nil {
		t.Fatal("2 GPUs must be infeasible")
	}
	dir := t.TempDir()
	if err := restart.SaveState(dir, pl); err != nil {
		t.Fatal(err)
	}

	// The restarted manager: a cold planner for the same job.
	fresh := autoconfig.NewPlanner(in)
	ok, err := restart.LoadState(dir, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("saved state not found")
	}
	var got []autoconfig.Choice
	for _, g := range []int{72, 96, 100} {
		c, err := fresh.Best(g)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, c)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("warm-resumed decisions diverged\nwant %+v\ngot  %+v", want, got)
	}
	if _, err := fresh.Best(2); err == nil {
		t.Fatal("memoized infeasibility must survive the round trip")
	}
	s := fresh.Stats()
	if s.Sweeps != 0 || s.CostComputes != 0 || s.SimAnchorRuns != 0 {
		t.Fatalf("warm resume recomputed: %+v", s)
	}
	// A fleet size the saved planner never decided still sweeps, and
	// rides the imported cost entries where candidates overlap.
	if _, err := fresh.Best(98); err != nil {
		t.Fatal(err)
	}
	if s := fresh.Stats(); s.Sweeps != 1 {
		t.Fatalf("new fleet size must sweep once, stats %+v", s)
	}
}

// TestLoadStateMissing distinguishes a cold start from a corrupt one.
func TestLoadStateMissing(t *testing.T) {
	_, pl := plannerFor(t)
	ok, err := restart.LoadState(t.TempDir(), pl)
	if err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v, want cold start", ok, err)
	}
}

// TestImportStateRejectsOtherModel keeps one job's partition costs from
// ever warming another's — a different model, and equally a different
// batch size of the same model (memoized Nm/Examples bake M_total in).
func TestImportStateRejectsOtherModel(t *testing.T) {
	in, pl := plannerFor(t)
	if _, err := pl.Best(72); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := restart.SaveState(dir, pl); err != nil {
		t.Fatal(err)
	}

	halved := in
	halved.MTotal = in.MTotal / 2
	if _, err := restart.LoadState(dir, autoconfig.NewPlanner(halved)); err == nil {
		t.Fatal("state for M_total=8192 must not import into an M_total=4096 planner")
	}
	data, err := os.ReadFile(filepath.Join(dir, restart.StateFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty state file")
	}

	cluster := hw.SpotCluster(hw.NC6v3, 100)
	tb := testbed.New(cluster, 31)
	other := model.GPT2Megatron8B()
	params, err := calibrate.Run(other, tb, calibrate.Options{MicroSizes: []int{4, 8}, GPUsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := model.FindCutPoints(other, 53)
	if err != nil {
		t.Fatal(err)
	}
	fresh := autoconfig.NewPlanner(autoconfig.Inputs{
		Spec: other, Cuts: cuts, Params: params,
		GPUMem: 16 << 30, MTotal: 8192, GPUsPerNode: 1,
	})
	if _, err := restart.LoadState(dir, fresh); err == nil {
		t.Fatal("state for 2.5B must not import into an 8.3B planner")
	}
}
