package restart

import (
	"repro/internal/checkpoint"
	"repro/internal/hw"
	"repro/internal/simtime"
)

// This file prices reconfigurations on clusters with a defined failure
// -domain topology. The flat paths in restart.go stay byte-for-byte
// untouched: every function here is reached only when
// m.Cluster.Topo.Defined() (and, for replication terms, when the
// policy is enabled), so flat clusters keep their historical prices.

// crossLink is the link shards cross when pushed to (or fetched from)
// replicas spread at the policy's anti-affinity level.
func (m *Model) crossLink(level hw.DomainLevel) hw.Link {
	if !m.Cluster.Topo.Defined() {
		return m.Link
	}
	return m.Cluster.CrossLink(level)
}

// worstShard is the largest per-slot checkpoint shard of the
// assignment — the §4.5 sharded write that bounds flush time.
func (m *Model) worstShard(a Assignment) int64 {
	var worst int64
	for _, st := range a.Stages {
		ops := stageOps(st)
		for r := 0; r < a.D; r++ {
			var shard int64
			for _, l := range checkpoint.ShardLayers(ops, a.D, r) {
				if l < len(m.LayerBytes) {
					shard += m.LayerBytes[l]
				}
			}
			if shard > worst {
				worst = shard
			}
		}
	}
	return worst
}

// ReplicationOverhead prices the extra network time one checkpoint
// round spends pushing shards to the (Replicas-1) cross-domain
// replicas. Pushes to different replicas serialize on the writer's
// uplink, so the bound is (k-1) transfers of the worst shard over the
// cross-domain link. Zero when replication is off or the cluster has
// no topology to spread over.
func (m *Model) ReplicationOverhead(a Assignment) simtime.Duration {
	if !m.Replication.Enabled() || !m.Cluster.Topo.Defined() || a.Empty() {
		return 0
	}
	worst := m.worstShard(a)
	if worst == 0 {
		return 0
	}
	link := m.crossLink(m.Replication.Spread)
	per := m.Fabric.PointToPoint(worst, link)
	return simtime.Duration(int64(m.Replication.Replicas-1)) * per
}

// Failover prices restarting from surviving replicated checkpoint
// state after an entire failure domain is lost: the job quiesces,
// every new (stage, replica) slot fetches its full stage state from a
// replica across the spread-level link (nothing local survives in the
// lost domain's slots, and cross-domain fetches dominate), and the
// processes re-warm. Returns zero costs when replication is off —
// there is nothing to fail over to.
func (m *Model) Failover(new Assignment) Costs {
	var c Costs
	if new.Empty() || !m.Replication.Enabled() || !m.Cluster.Topo.Defined() {
		return c
	}
	var maxFetch int64
	for _, st := range new.Stages {
		if b := m.rangeBytes(st.FirstOp, st.LastOp, 1, 0); b > maxFetch {
			maxFetch = b
		}
	}
	c.Stop = m.StopTime
	c.Redistribute = m.Fabric.PointToPoint(maxFetch, m.crossLink(m.Replication.Spread))
	c.Restart = m.RestartTime
	return c
}

// redistributeTimeTopo prices the old→new state movement over the
// actual failure-domain paths. Like the flat version, slots keep
// their flat rank across the morph (replica-major: rank = replica·P +
// stage) and a slot fetches only layers outside its old range — but
// each fetch now rides the link class joining the fetcher's rank to
// the nearest (fastest-linked) old rank holding the layer, so a morph
// that can satisfy its fetches rack-locally prices below one that
// must cross zones. Transfers on distinct link classes of one fetcher
// serialize on its NIC; the result is the slower of the busiest
// fetcher and the busiest server.
func (m *Model) redistributeTimeTopo(old, new Assignment) simtime.Duration {
	// holders[i] lists the old ranks holding layer i; slot w trains on
	// GPU rank w under the cluster's static packing.
	var holders [][]int
	if !old.Empty() {
		holders = make([][]int, len(m.LayerBytes))
		for w := 0; w < old.workers(); w++ {
			st := old.Stages[w%len(old.Stages)]
			for i := st.FirstOp; i <= st.LastOp && i < len(holders); i++ {
				holders[i] = append(holders[i], w)
			}
		}
	}
	type load struct {
		bytes map[hw.Link]int64
	}
	serve := make(map[int]*load)
	var maxTime simtime.Duration
	for w := 0; w < new.workers(); w++ {
		ns := new.Stages[w%len(new.Stages)]
		exFirst, exLast := 1, 0
		if !old.Empty() && w < old.workers() {
			os := old.Stages[w%len(old.Stages)]
			exFirst, exLast = os.FirstOp, os.LastOp
		}
		rank := w
		fetch := load{bytes: make(map[hw.Link]int64)}
		for i := ns.FirstOp; i <= ns.LastOp && i < len(m.LayerBytes); i++ {
			if i >= exFirst && i <= exLast {
				continue
			}
			b := m.LayerBytes[i]
			if b == 0 {
				continue
			}
			// Nearest holder: the serving rank with the fastest
			// link to this fetcher (ties break on lowest rank for
			// determinism). No holders (cold start) prices over
			// the flat Inter link as before.
			link := m.Link
			src := -1
			if i < len(holders) {
				for _, h := range holders[i] {
					l := m.Cluster.LinkBetween(rank, h)
					if src == -1 || l.BandwidthBps > link.BandwidthBps {
						link, src = l, h
					}
				}
			}
			fetch.bytes[link] += b
			if src >= 0 {
				s := serve[src]
				if s == nil {
					s = &load{bytes: make(map[hw.Link]int64)}
					serve[src] = s
				}
				s.bytes[link] += b
			}
		}
		if t := m.loadTime(fetch.bytes); t > maxTime {
			maxTime = t
		}
	}
	for _, s := range serve {
		// Checkpoint sharding splits each old stage's upload across
		// its D replicas, but nearest-replica selection already
		// spread demand across holders, so each server's attributed
		// bytes are charged in full.
		if t := m.loadTime(s.bytes); t > maxTime {
			maxTime = t
		}
	}
	return maxTime
}

// loadTime sums the transfer times of one endpoint's per-link-class
// byte totals (classes serialize on the endpoint's NIC).
func (m *Model) loadTime(bytes map[hw.Link]int64) simtime.Duration {
	var total simtime.Duration
	for link, b := range bytes {
		total += m.Fabric.PointToPoint(b, link)
	}
	return total
}
