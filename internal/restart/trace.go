package restart

import (
	"repro/internal/obs"
	"repro/internal/simtime"
)

// phaseNames orders the four reconfiguration phases as they execute.
var phaseNames = [...]string{"stop", "flush", "redistribute", "restart"}

// TracePhases emits one priced reconfiguration as four sequential child
// spans — stop → flush → redistribute → restart — on the given track,
// starting at start and parented to the morph-decision span that paid
// for them. Zero-duration phases are skipped (a clean rollback has no
// flush; a pure replacement has no redistribution). Returns the end of
// the last phase, which equals start + c.Total().
func TracePhases(tr *obs.Tracer, track obs.TrackID, parent obs.SpanID, start simtime.Time, c Costs) simtime.Time {
	at := start
	if !tr.Enabled() {
		return at.Add(c.Total())
	}
	for i, d := range [...]simtime.Duration{c.Stop, c.Flush, c.Redistribute, c.Restart} {
		if d <= 0 {
			continue
		}
		id := tr.Begin(track, parent, at, "restart", phaseNames[i])
		at = at.Add(d)
		tr.End(id, at)
	}
	return at
}
