package restart

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// StateFile is the planner-state file written alongside the §4.5
// checkpoint. A manager restart that finds it resumes with warm morph
// decisions instead of paying a cold re-sweep.
const StateFile = "planner-state.json"

// StateCarrier is anything that can snapshot its internal caches to
// bytes and restore them — implemented by autoconfig.Planner. The
// carrier owns the format; this package owns durability (atomic
// write-then-rename next to the checkpoint, like the manifest).
type StateCarrier interface {
	ExportState() ([]byte, error)
	ImportState(data []byte) error
}

// SaveState snapshots c into dir/planner-state.json. The write is
// atomic (temp file + rename) so a crash mid-save leaves the previous
// state intact — the same discipline the checkpoint manifest uses.
func SaveState(dir string, c StateCarrier) error {
	return SaveSections(dir, Sections{SectionPlanner: c})
}

// LoadState restores c from dir/planner-state.json. ok is false (with
// no error) when no state was ever saved — a genuinely cold start.
func LoadState(dir string, c StateCarrier) (bool, error) {
	found, err := LoadSections(dir, Sections{SectionPlanner: c})
	return found[SectionPlanner], err
}

// Section names of the planner-state file.
const (
	// SectionPlanner is the autoconfig.Planner cache snapshot.
	SectionPlanner = "planner"
	// SectionMeter is the price.Meter cost-accounting snapshot: the
	// cumulative dollars a warm-resumed manager continues from.
	SectionMeter = "meter"
)

// Sections maps section names to their carriers — what SaveSections
// persists together in one planner-state.json and LoadSections
// restores from it.
type Sections map[string]StateCarrier

// SaveSections snapshots every carrier into one atomic
// dir/planner-state.json, each under its section name:
//
//	{"planner": {…}, "meter": {…}}
//
// The write discipline matches SaveState (temp file + rename).
// Sections are emitted in sorted-name order so the file is
// byte-deterministic for identical state.
func SaveSections(dir string, sections Sections) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	names := make([]string, 0, len(sections))
	for name := range sections {
		names = append(names, name)
	}
	sort.Strings(names)
	doc := make(map[string]json.RawMessage, len(names))
	for _, name := range names {
		data, err := sections[name].ExportState()
		if err != nil {
			return fmt.Errorf("restart: %s: %w", name, err)
		}
		doc[name] = data
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	path := filepath.Join(dir, StateFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	return nil
}

// LoadSections restores the requested sections from
// dir/planner-state.json. found reports per section whether a
// snapshot was present and imported; a missing file is a cold start
// (all false, no error), and a file missing *some* requested section
// (e.g. pre-meter state files written before cost accounting existed)
// restores what it has and leaves the rest untouched — backward
// compatibility for old state files.
//
// Legacy files written before the sectioned format hold a bare
// planner snapshot at the top level (recognized by its "version"
// field); those load as SectionPlanner.
func LoadSections(dir string, sections Sections) (found map[string]bool, err error) {
	found = make(map[string]bool, len(sections))
	data, err := os.ReadFile(filepath.Join(dir, StateFile))
	if os.IsNotExist(err) {
		return found, nil
	}
	if err != nil {
		return found, fmt.Errorf("restart: %w", err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		return found, fmt.Errorf("restart: %w", err)
	}
	if _, legacy := doc["version"]; legacy {
		// Pre-sectioned format: the whole document is the planner
		// snapshot.
		if c, ok := sections[SectionPlanner]; ok {
			if err := c.ImportState(data); err != nil {
				return found, fmt.Errorf("restart: %w", err)
			}
			found[SectionPlanner] = true
		}
		return found, nil
	}
	names := make([]string, 0, len(sections))
	for name := range sections {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		raw, ok := doc[name]
		if !ok {
			continue
		}
		if err := sections[name].ImportState(raw); err != nil {
			return found, fmt.Errorf("restart: %s: %w", name, err)
		}
		found[name] = true
	}
	return found, nil
}
