package restart

import (
	"fmt"
	"os"
	"path/filepath"
)

// StateFile is the planner-state file written alongside the §4.5
// checkpoint. A manager restart that finds it resumes with warm morph
// decisions instead of paying a cold re-sweep.
const StateFile = "planner-state.json"

// StateCarrier is anything that can snapshot its internal caches to
// bytes and restore them — implemented by autoconfig.Planner. The
// carrier owns the format; this package owns durability (atomic
// write-then-rename next to the checkpoint, like the manifest).
type StateCarrier interface {
	ExportState() ([]byte, error)
	ImportState(data []byte) error
}

// SaveState snapshots c into dir/planner-state.json. The write is
// atomic (temp file + rename) so a crash mid-save leaves the previous
// state intact — the same discipline the checkpoint manifest uses.
func SaveState(dir string, c StateCarrier) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	data, err := c.ExportState()
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	path := filepath.Join(dir, StateFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	return nil
}

// LoadState restores c from dir/planner-state.json. ok is false (with
// no error) when no state was ever saved — a genuinely cold start.
func LoadState(dir string, c StateCarrier) (bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, StateFile))
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("restart: %w", err)
	}
	if err := c.ImportState(data); err != nil {
		return false, fmt.Errorf("restart: %w", err)
	}
	return true, nil
}
