// Package restart models the cost of one Varuna reconfiguration
// (§4.5, §4.6). The manager historically charged a flat constant for
// every morph; with warm planner sweeps costing well under a
// millisecond, that constant became the dominant — and least
// principled — term in every reconfiguration decision. This package
// replaces it with a calibrated price built from what a morph actually
// does:
//
//  1. stop the running tasks at a mini-batch boundary,
//  2. flush the state still dirty since the last continuous
//     checkpoint (sharded across data-parallel replicas, §4.5),
//  3. redistribute state: every new (stage, replica) slot fetches the
//     layers it must now hold but didn't hold under the old
//     partition, over the cluster fabric,
//  4. restart and re-warm worker processes (spawn, device context,
//     collective re-initialization).
//
// Because the price depends on the checkpoint's per-layer byte sizes
// and on the old→new stage→layer mapping, a small reshape of a small
// model costs seconds while a deep reshape of a large model costs
// minutes — exactly the gradient a morph-or-hold decision needs.
package restart

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/simtime"
)

// Costs breaks one reconfiguration's downtime into its phases.
type Costs struct {
	// Stop is the time to quiesce running tasks at a mini-batch
	// boundary.
	Stop simtime.Duration
	// Flush is the time to persist state dirty since the last
	// continuous checkpoint, written in parallel by the D replica
	// shards of each stage (§4.5).
	Flush simtime.Duration
	// Redistribute is the time for the new (stage, replica) slots to
	// fetch the layers they don't already hold, bounded by the slower
	// of the busiest fetcher and the busiest server.
	Redistribute simtime.Duration
	// Restart is process spawn + device context + collective re-init.
	Restart simtime.Duration
}

// Total is the modeled downtime of the morph.
func (c Costs) Total() simtime.Duration {
	return c.Stop + c.Flush + c.Redistribute + c.Restart
}

// String renders the breakdown.
func (c Costs) String() string {
	return fmt.Sprintf("total %v (stop %v, flush %v, redist %v, restart %v)",
		c.Total(), c.Stop, c.Flush, c.Redistribute, c.Restart)
}

// Assignment describes one running configuration for costing purposes:
// the stage partition over the model's ops and the data-parallel
// width. The zero value means "nothing running" (cold start).
type Assignment struct {
	// Stages is the pipeline partition (contiguous op ranges).
	Stages []model.Stage
	// D is the data-parallel width.
	D int
}

// Empty reports whether the assignment describes a running job.
func (a Assignment) Empty() bool { return len(a.Stages) == 0 || a.D < 1 }

// workers reports the number of (stage, replica) slots.
func (a Assignment) workers() int { return len(a.Stages) * a.D }

// Model prices reconfigurations of one job on one cluster. All inputs
// are deterministic, so identical (old, new, dirty) queries price
// identically — the property that lets the Planner memoize decisions
// built on top of it.
type Model struct {
	// LayerBytes is the per-op training-state size: params + grads +
	// fp32 master + Adam moments (model.BytesPerParamState per
	// parameter), the same unit the §4.5 checkpoint accounts in.
	LayerBytes []int64
	// FlushBps is the per-VM local-SSD write bandwidth the continuous
	// checkpointer flushes at (§4.5 writes locally; cloud upload is
	// background).
	FlushBps float64
	// Fabric and Link describe the network state redistribution rides:
	// the cluster's inter-node link under its contention model, the
	// same fabric the testbed grounds transfers in.
	Fabric netsim.Fabric
	Link   hw.Link
	// StopTime is the quiesce cost; RestartTime is process spawn +
	// device context + collective re-initialization.
	StopTime, RestartTime simtime.Duration
	// Cluster is the underlying pool; when its Topo is defined,
	// redistribution is priced per link class over the actual path
	// between serving and fetching failure domains instead of the
	// flat contended Inter link.
	Cluster hw.Cluster
	// Replication is the checkpoint replication policy; when enabled
	// (and the topology is defined) dirty flushes also push shards to
	// the cross-domain replicas, and Failover prices a full-state
	// cross-domain fetch.
	Replication checkpoint.Policy
}

// Default fixed phase costs. The paper's flat 4-minute figure bundled
// everything; measured systems put quiesce at seconds and full process
// re-warm (spawn, CUDA context, NCCL rings) at tens of seconds.
const (
	DefaultFlushBps            = 500e6 // local SSD, bytes/s
	DefaultStop                = 5 * simtime.Second
	DefaultRestart             = 30 * simtime.Second
	defaultEthernetContention  = 1.3
	defaultDedicatedContention = 1.0
)

// NewModel builds the reconfiguration-cost model for spec running on
// cluster. Layer sizes come from the spec's op-level parameter counts;
// bandwidths from the hardware catalogue (the same contention rule the
// testbed applies to low-priority fleets).
func NewModel(spec *model.Spec, cluster hw.Cluster) *Model {
	lb := make([]int64, len(spec.Ops))
	for i, op := range spec.Ops {
		lb[i] = op.Params * model.BytesPerParamState
	}
	return newModel(lb, cluster)
}

// NewModelFromManifest builds the cost model from a real checkpoint's
// per-layer byte accounting instead of analytic spec sizes — what a
// deployment prices from, since the manifest records exactly what a
// flush or redistribution will move.
func NewModelFromManifest(man checkpoint.Manifest, cluster hw.Cluster) *Model {
	return newModel(LayerBytesFromManifest(man), cluster)
}

func newModel(layerBytes []int64, cluster hw.Cluster) *Model {
	contention := defaultDedicatedContention
	if cluster.LowPriority {
		contention = defaultEthernetContention
	}
	return &Model{
		LayerBytes:  layerBytes,
		FlushBps:    DefaultFlushBps,
		Fabric:      netsim.New(contention),
		Link:        cluster.Inter,
		StopTime:    DefaultStop,
		RestartTime: DefaultRestart,
		Cluster:     cluster,
	}
}

// stageOps lists the op indices of one stage.
func stageOps(st model.Stage) []int {
	out := make([]int, 0, st.LastOp-st.FirstOp+1)
	for i := st.FirstOp; i <= st.LastOp; i++ {
		out = append(out, i)
	}
	return out
}

// rangeBytes sums the state bytes of ops in [first, last] that fall
// outside [exFirst, exLast] (pass exFirst > exLast to exclude nothing).
func (m *Model) rangeBytes(first, last, exFirst, exLast int) int64 {
	var n int64
	for i := first; i <= last && i < len(m.LayerBytes); i++ {
		if i >= exFirst && i <= exLast {
			continue
		}
		n += m.LayerBytes[i]
	}
	return n
}

// Price models the downtime of reconfiguring from old to new. dirty
// reports whether mini-batches completed since the last continuous
// checkpoint (they must be flushed before state can move); a
// preemption rollback arrives with dirty=false because the lost work
// was already discarded to the last checkpoint.
//
// A pure replacement — identical partition and width — prices at the
// redistribution-free restart cost: every surviving slot already holds
// exactly the state its new assignment needs.
func (m *Model) Price(old, new Assignment, dirty bool) Costs {
	var c Costs
	if new.Empty() {
		return c
	}
	if !old.Empty() {
		c.Stop = m.StopTime
		if dirty {
			c.Flush = m.flushTime(old)
			if push := m.ReplicationOverhead(old); push > c.Flush {
				c.Flush = push
			}
		}
	}
	if m.Cluster.Topo.Defined() {
		c.Redistribute = m.redistributeTimeTopo(old, new)
	} else {
		c.Redistribute = m.redistributeTime(old, new)
	}
	c.Restart = m.RestartTime
	return c
}

// flushTime prices the checkpoint flush: replica r of each stage
// writes every D-th of the stage's layers (checkpoint.ShardLayers), in
// parallel across all slots, so the flush completes when the largest
// shard hits local SSD.
func (m *Model) flushTime(a Assignment) simtime.Duration {
	if m.FlushBps <= 0 {
		return 0
	}
	var worst int64
	for _, st := range a.Stages {
		ops := stageOps(st)
		for r := 0; r < a.D; r++ {
			var shard int64
			for _, l := range checkpoint.ShardLayers(ops, a.D, r) {
				if l < len(m.LayerBytes) {
					shard += m.LayerBytes[l]
				}
			}
			if shard > worst {
				worst = shard
			}
		}
	}
	return simtime.FromSeconds(float64(worst) / m.FlushBps)
}

// redistributeTime prices the state movement of the old→new stage→layer
// remapping. Slots keep their flat rank across the morph, numbered
// replica-major (rank = replica · P + stage), so a width-only morph
// keeps every surviving rank on its old stage and fetches nothing for
// it; a fresh rank holds nothing. Fetches run concurrently, so the
// destination side is bounded by the busiest fetcher. On the source
// side each layer is served by the D_old replicas that hold it —
// checkpoint sharding splits the upload load — so the bound is the
// busiest old stage's per-replica upload. The transfer completes at
// the slower of the two.
func (m *Model) redistributeTime(old, new Assignment) simtime.Duration {
	demand := make([]int, len(m.LayerBytes))
	var maxFetch int64
	for w := 0; w < new.workers(); w++ {
		ns := new.Stages[w%len(new.Stages)]
		exFirst, exLast := 1, 0 // exclude nothing
		if !old.Empty() && w < old.workers() {
			os := old.Stages[w%len(old.Stages)]
			exFirst, exLast = os.FirstOp, os.LastOp
		}
		fetch := m.rangeBytes(ns.FirstOp, ns.LastOp, exFirst, exLast)
		if fetch > maxFetch {
			maxFetch = fetch
		}
		for i := ns.FirstOp; i <= ns.LastOp && i < len(demand); i++ {
			if i < exFirst || i > exLast {
				demand[i]++
			}
		}
	}
	if maxFetch == 0 {
		return 0
	}
	var maxServe int64
	if !old.Empty() {
		for _, st := range old.Stages {
			var upload int64
			for i := st.FirstOp; i <= st.LastOp && i < len(m.LayerBytes); i++ {
				upload += m.LayerBytes[i] * int64(demand[i])
			}
			perReplica := upload / int64(old.D)
			if perReplica > maxServe {
				maxServe = perReplica
			}
		}
	}
	dest := m.Fabric.PointToPoint(maxFetch, m.Link)
	if maxServe > maxFetch {
		return m.Fabric.PointToPoint(maxServe, m.Link)
	}
	return dest
}

// TotalStateBytes is the full training-state footprint the model
// accounts — Σ LayerBytes, the §4.5 checkpoint's size.
func (m *Model) TotalStateBytes() int64 {
	var n int64
	for _, b := range m.LayerBytes {
		n += b
	}
	return n
}

// LayerBytesFromManifest builds the model's per-layer byte vector from
// a real checkpoint's accounting instead of analytic spec sizes — the
// path a live deployment prices from, since the manifest records what
// the flush and redistribution will actually move (varuna-ckpt prices
// its morph-resume demo this way). Layers absent from the manifest
// price as zero.
func LayerBytesFromManifest(man checkpoint.Manifest) []int64 {
	n := man.NumLayers
	for _, l := range man.Layers {
		if l >= n {
			n = l + 1
		}
	}
	out := make([]int64, n)
	for i, l := range man.Layers {
		if i < len(man.LayerBytes) {
			out[l] = man.LayerBytes[i]
		}
	}
	return out
}

// EvenStages splits n layers into p contiguous stages — the layer→stage
// mapping engine.New uses, reconstructed for costing a checkpoint whose
// job is not running.
func EvenStages(n, p int) []model.Stage {
	if p < 1 || n < 1 {
		return nil
	}
	if p > n {
		p = n
	}
	out := make([]model.Stage, p)
	first := 0
	for i := 0; i < p; i++ {
		last := ((i + 1) * n / p) - 1
		out[i] = model.Stage{Index: i, FirstOp: first, LastOp: last}
		first = last + 1
	}
	return out
}
