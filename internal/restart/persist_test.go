package restart_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/autoconfig"
	"repro/internal/price"
	"repro/internal/restart"
	"repro/internal/simtime"
)

// chargedMeter builds a meter with full-precision float accumulators
// in every bucket, priced against a seeded stochastic curve.
func chargedMeter(t *testing.T) *price.Meter {
	t.Helper()
	curve, err := price.MeanReverting(price.MROptions{
		Mean: 2.9, Vol: 0.3, Reversion: 0.25, Horizon: 24 * simtime.Hour,
	}, 17)
	if err != nil {
		t.Fatal(err)
	}
	m := price.NewMeter(curve)
	at := simtime.Time(0)
	for i := 0; i < 41; i++ {
		next := at.Add(17*simtime.Minute + simtime.Duration(i)*11*simtime.Second)
		m.Charge(price.Bucket(i%int(price.NumBuckets)), at, next, 60+i%13)
		at = next
	}
	return m
}

// TestSectionsRoundTripMeterBitIdentical is the warm-resume
// acceptance test for cost accounting: the meter saved next to the
// planner snapshot must restore with every cumulative dollar
// accumulator bit-identical — a restarted manager continues the same
// bill, not a rounded copy of it.
func TestSectionsRoundTripMeterBitIdentical(t *testing.T) {
	in, pl := plannerFor(t)
	if _, err := pl.Best(72); err != nil {
		t.Fatal(err)
	}
	meter := chargedMeter(t)
	dir := t.TempDir()
	if err := restart.SaveSections(dir, restart.Sections{
		restart.SectionPlanner: pl,
		restart.SectionMeter:   meter,
	}); err != nil {
		t.Fatal(err)
	}

	freshPl := autoconfig.NewPlanner(in)
	freshMeter := price.NewMeter(meter.Curve())
	found, err := restart.LoadSections(dir, restart.Sections{
		restart.SectionPlanner: freshPl,
		restart.SectionMeter:   freshMeter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found[restart.SectionPlanner] || !found[restart.SectionMeter] {
		t.Fatalf("sections not found: %v", found)
	}
	for b := price.Bucket(0); b < price.NumBuckets; b++ {
		if freshMeter.InBucket(b) != meter.InBucket(b) {
			t.Fatalf("%v bucket not bit-identical: %v vs %v", b, freshMeter.InBucket(b), meter.InBucket(b))
		}
	}
	if freshMeter.Total() != meter.Total() {
		t.Fatalf("DollarsSpent not bit-identical: %v vs %v", freshMeter.Total(), meter.Total())
	}
	// The planner section warmed too.
	if s := freshPl.Stats(); s.Sweeps != 0 {
		t.Fatalf("planner section did not warm: %+v", s)
	}
	if _, err := freshPl.Best(72); err != nil {
		t.Fatal(err)
	}
	if s := freshPl.Stats(); s.CostComputes != 0 {
		t.Fatalf("warm planner recomputed: %+v", s)
	}
}

// TestLoadSectionsLegacyFile keeps old state files loading: a file
// written before cost accounting existed is a bare planner snapshot
// with no meter section — the planner must warm from it and the
// meter must be left untouched, not errored on.
func TestLoadSectionsLegacyFile(t *testing.T) {
	in, pl := plannerFor(t)
	if _, err := pl.Best(72); err != nil {
		t.Fatal(err)
	}
	// Write the pre-sectioned format: the planner snapshot at top
	// level, exactly what old SaveState produced.
	data, err := pl.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, restart.StateFile), data, 0o644); err != nil {
		t.Fatal(err)
	}

	freshPl := autoconfig.NewPlanner(in)
	meter := price.NewMeter(price.Constant(2))
	found, err := restart.LoadSections(dir, restart.Sections{
		restart.SectionPlanner: freshPl,
		restart.SectionMeter:   meter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found[restart.SectionPlanner] {
		t.Fatal("legacy planner snapshot must load")
	}
	if found[restart.SectionMeter] {
		t.Fatal("legacy file has no meter section")
	}
	if meter.Total() != 0 {
		t.Fatalf("meter must stay untouched, got %v", meter.Total())
	}
	if _, err := freshPl.Best(72); err != nil {
		t.Fatal(err)
	}
	if s := freshPl.Stats(); s.CostComputes != 0 {
		t.Fatalf("legacy planner snapshot did not warm: %+v", s)
	}
}

// TestLoadSectionsPartialFile: a sectioned file missing a requested
// section restores what it has (forward compatibility when new
// sections appear).
func TestLoadSectionsPartialFile(t *testing.T) {
	_, pl := plannerFor(t)
	if _, err := pl.Best(72); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := restart.SaveSections(dir, restart.Sections{restart.SectionPlanner: pl}); err != nil {
		t.Fatal(err)
	}
	meter := price.NewMeter(price.Constant(2))
	found, err := restart.LoadSections(dir, restart.Sections{restart.SectionMeter: meter})
	if err != nil {
		t.Fatal(err)
	}
	if found[restart.SectionMeter] {
		t.Fatal("meter section absent from the file")
	}
	if meter.Total() != 0 {
		t.Fatal("absent section must leave the carrier untouched")
	}
}
