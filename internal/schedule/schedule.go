// Package schedule defines pipeline micro-batch schedules: the task
// vocabulary (forward / backward / recompute), per-stage task orders,
// the scheduling policies of the systems the paper compares (Varuna,
// GPipe, Megatron-1F1B, DeepSpeed, PipeDream), and validation of
// schedule legality (dependency order, recompute coverage, activation
// memory).
//
// Varuna's own schedule (§3.2) is rule-based and partly dynamic: stages
// follow a static order generated offline but deviate opportunistically
// under network jitter. The rules are implemented by the executor in
// internal/sim; this package produces the strict comparison schedules
// and the shared types.
package schedule

import (
	"fmt"
	"strings"
)

// Kind labels a pipeline task.
type Kind int

// Task kinds. Backward takes roughly twice as long as Forward;
// Recompute equals Forward (§2).
const (
	Forward Kind = iota
	Backward
	Recompute
)

// String returns the single-letter task code used in Figure 4.
func (k Kind) String() string {
	switch k {
	case Forward:
		return "F"
	case Backward:
		return "B"
	case Recompute:
		return "R"
	default:
		return "?"
	}
}

// Task is one unit of stage work on a micro-batch (0-based index).
type Task struct {
	Kind  Kind
	Micro int
}

// String renders the task as in Figure 4, with 1-based micro-batch
// numbers.
func (t Task) String() string { return fmt.Sprintf("%s%d", t.Kind, t.Micro+1) }

// Order is the task sequence of one pipeline stage.
type Order []Task

// String renders the order space-separated.
func (o Order) String() string {
	parts := make([]string, len(o))
	for i, t := range o {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

// Schedule is a complete static pipeline schedule.
type Schedule struct {
	// Depth is the number of pipeline stages.
	Depth int
	// Micros is the number of micro-batches per mini-batch.
	Micros int
	// Orders holds one task order per stage.
	Orders []Order
}

// Policy selects a scheduling discipline for the executor.
type Policy struct {
	// Name identifies the system whose schedule this models.
	Name string
	// Rule selects Varuna's online rule-based scheduling (§3.2
	// constraints 1–3) instead of a fixed order.
	Rule bool
	// Opportunistic allows deviating from the schedule when the due
	// task's inputs have not arrived (Varuna's jitter tolerance).
	Opportunistic bool
	// SyncComm puts activation/gradient receives on the compute
	// critical path: the stage is charged the un-overlapped fraction
	// of each receive.
	SyncComm bool
	// OverlapFrac is the fraction of receive time hidden under compute
	// when SyncComm is set: 0 is fully blocking (DeepSpeed's engine on
	// commodity TCP), 0.5 models Megatron-1F1B's coupled batched
	// send/recv pairs. Ignored when SyncComm is false (full overlap).
	OverlapFrac float64
	// NoFlush models asynchronous pipelines (PipeDream) that never
	// drain between mini-batches, at the cost of stale updates.
	NoFlush bool
}

// The policies compared in the evaluation.
var (
	// Varuna is the paper's schedule: rule-based with opportunistic
	// deviation under jitter.
	Varuna = Policy{Name: "Varuna", Rule: true, Opportunistic: true}
	// VarunaStrict is the ablation without opportunistic scheduling.
	VarunaStrict = Policy{Name: "Varuna-strict", Rule: true}
	// GPipeP is GPipe: all forwards, then backwards in reverse order.
	GPipeP = Policy{Name: "GPipe"}
	// Megatron1F1B is Megatron's one-forward-one-backward schedule;
	// its batched send/recv pairs overlap only partially with compute
	// on commodity TCP.
	Megatron1F1B = Policy{Name: "Megatron-1F1B", SyncComm: true, OverlapFrac: 0.5}
	// DeepSpeedP is DeepSpeed's pipeline engine, which in the paper's
	// commodity setting does not overlap communication with compute.
	DeepSpeedP = Policy{Name: "DeepSpeed", SyncComm: true}
	// PipeDreamP is the asynchronous no-flush pipeline.
	PipeDreamP = Policy{Name: "PipeDream", NoFlush: true}
)

// GPipe builds GPipe's static schedule (Figure 4): every stage runs all
// forwards, then processes backwards in reverse micro-batch order. The
// most recently forwarded micro-batch still has hot activations so its
// backward needs no recompute; all others recompute first.
func GPipe(depth, micros int) (*Schedule, error) {
	if err := checkShape(depth, micros); err != nil {
		return nil, err
	}
	s := &Schedule{Depth: depth, Micros: micros, Orders: make([]Order, depth)}
	for st := 0; st < depth; st++ {
		var o Order
		for m := 0; m < micros; m++ {
			o = append(o, Task{Forward, m})
		}
		o = append(o, Task{Backward, micros - 1}) // hot activations
		for m := micros - 2; m >= 0; m-- {
			o = append(o, Task{Recompute, m}, Task{Backward, m})
		}
		s.Orders[st] = o
	}
	return s, nil
}

// OneFOneB builds the 1F1B schedule used by Megatron and DeepSpeed:
// stage s warms up with min(micros, depth-s) forwards, then strictly
// alternates backward/forward, then drains. Non-final stages recompute
// before each backward (activation checkpointing); the final stage's
// backwards immediately follow their forwards, so activations are hot.
func OneFOneB(depth, micros int) (*Schedule, error) {
	if err := checkShape(depth, micros); err != nil {
		return nil, err
	}
	s := &Schedule{Depth: depth, Micros: micros, Orders: make([]Order, depth)}
	for st := 0; st < depth; st++ {
		warm := depth - st
		if warm > micros {
			warm = micros
		}
		var o Order
		next := 0
		for ; next < warm; next++ {
			o = append(o, Task{Forward, next})
		}
		hot := st == depth-1 // backwards chase forwards directly
		for m := 0; m < micros; m++ {
			if !hot {
				o = append(o, Task{Recompute, m})
			}
			o = append(o, Task{Backward, m})
			if next < micros {
				o = append(o, Task{Forward, next})
				next++
			}
		}
		s.Orders[st] = o
	}
	return s, nil
}

func checkShape(depth, micros int) error {
	if depth < 1 {
		return fmt.Errorf("schedule: depth %d < 1", depth)
	}
	if micros < 1 {
		return fmt.Errorf("schedule: micros %d < 1", micros)
	}
	return nil
}

// Validate checks that a schedule is executable: per stage, every
// micro-batch is forwarded exactly once and backwarded exactly once, a
// backward is preceded by hot activations or a recompute, recomputes
// follow the micro-batch's forward, and no recompute is wasted.
func (s *Schedule) Validate() error {
	if len(s.Orders) != s.Depth {
		return fmt.Errorf("schedule: %d orders for depth %d", len(s.Orders), s.Depth)
	}
	for st, o := range s.Orders {
		fwd := make([]bool, s.Micros)
		bwd := make([]bool, s.Micros)
		rec := make([]bool, s.Micros)
		lastTouched := -1 // micro with hot activations
		for i, t := range o {
			if t.Micro < 0 || t.Micro >= s.Micros {
				return fmt.Errorf("schedule: stage %d task %d micro %d out of range", st, i, t.Micro)
			}
			switch t.Kind {
			case Forward:
				if fwd[t.Micro] {
					return fmt.Errorf("schedule: stage %d forwards micro %d twice", st, t.Micro)
				}
				fwd[t.Micro] = true
				lastTouched = t.Micro
			case Recompute:
				if !fwd[t.Micro] {
					return fmt.Errorf("schedule: stage %d recomputes micro %d before forward", st, t.Micro)
				}
				if bwd[t.Micro] {
					return fmt.Errorf("schedule: stage %d recomputes micro %d after backward", st, t.Micro)
				}
				if rec[t.Micro] {
					return fmt.Errorf("schedule: stage %d recomputes micro %d twice", st, t.Micro)
				}
				rec[t.Micro] = true
				lastTouched = t.Micro
			case Backward:
				if !fwd[t.Micro] {
					return fmt.Errorf("schedule: stage %d backwards micro %d before forward", st, t.Micro)
				}
				if bwd[t.Micro] {
					return fmt.Errorf("schedule: stage %d backwards micro %d twice", st, t.Micro)
				}
				if !rec[t.Micro] && lastTouched != t.Micro {
					return fmt.Errorf("schedule: stage %d backward for micro %d has neither hot activations nor recompute", st, t.Micro)
				}
				bwd[t.Micro] = true
			}
		}
		for m := 0; m < s.Micros; m++ {
			if !fwd[m] || !bwd[m] {
				return fmt.Errorf("schedule: stage %d incomplete for micro %d (fwd=%v bwd=%v)", st, m, fwd[m], bwd[m])
			}
		}
	}
	return nil
}

// RecomputeCount reports the total number of recompute tasks in the
// schedule — the measure behind Varuna's last-stage optimization.
func (s *Schedule) RecomputeCount() int {
	n := 0
	for _, o := range s.Orders {
		for _, t := range o {
			if t.Kind == Recompute {
				n++
			}
		}
	}
	return n
}
