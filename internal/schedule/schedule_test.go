package schedule

import (
	"testing"
	"testing/quick"
)

func TestTaskString(t *testing.T) {
	if (Task{Forward, 0}).String() != "F1" {
		t.Fatal("Forward format")
	}
	if (Task{Backward, 4}).String() != "B5" {
		t.Fatal("Backward format")
	}
	if (Task{Recompute, 2}).String() != "R3" {
		t.Fatal("Recompute format")
	}
	if Kind(9).String() != "?" {
		t.Fatal("unknown kind format")
	}
}

func TestGPipeMatchesFigure4(t *testing.T) {
	// Figure 4(b): every GPipe stage runs
	// F1 F2 F3 F4 F5 B5 R4 B4 R3 B3 R2 B2 R1 B1.
	s, err := GPipe(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := "F1 F2 F3 F4 F5 B5 R4 B4 R3 B3 R2 B2 R1 B1"
	for st := 0; st < 4; st++ {
		if got := s.Orders[st].String(); got != want {
			t.Fatalf("stage %d:\n got %s\nwant %s", st, got, want)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOneFOneBShape(t *testing.T) {
	s, err := OneFOneB(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Last stage alternates F/B with no recompute.
	last := s.Orders[3]
	if last.String() != "F1 B1 F2 B2 F3 B3 F4 B4 F5 B5 F6 B6 F7 B7 F8 B8" {
		t.Fatalf("last stage = %s", last)
	}
	// First stage warms up with `depth` forwards.
	first := s.Orders[0]
	for i := 0; i < 4; i++ {
		if first[i].Kind != Forward || first[i].Micro != i {
			t.Fatalf("first stage warmup wrong: %s", first)
		}
	}
	if first[4].Kind == Forward {
		t.Fatalf("first stage must switch to backward after warmup: %s", first)
	}
}

func TestOneFOneBRecomputeOnlyWhereNeeded(t *testing.T) {
	s, err := OneFOneB(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Final stage: zero recomputes (hot activations). Other stages:
	// one per micro-batch.
	for st, o := range s.Orders {
		n := 0
		for _, task := range o {
			if task.Kind == Recompute {
				n++
			}
		}
		if st == 3 && n != 0 {
			t.Fatalf("final stage has %d recomputes, want 0", n)
		}
		if st != 3 && n != 6 {
			t.Fatalf("stage %d has %d recomputes, want 6", st, n)
		}
	}
}

func TestGPipeRecomputeCount(t *testing.T) {
	// GPipe recomputes all but the hottest micro-batch on each stage.
	s, err := GPipe(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.RecomputeCount(); got != 4*(5-1) {
		t.Fatalf("recomputes = %d, want %d", got, 16)
	}
}

func TestShapeErrors(t *testing.T) {
	if _, err := GPipe(0, 5); err == nil {
		t.Fatal("depth 0 must fail")
	}
	if _, err := OneFOneB(4, 0); err == nil {
		t.Fatal("micros 0 must fail")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good, err := GPipe(2, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Backward before forward.
	bad := &Schedule{Depth: 1, Micros: 1, Orders: []Order{{{Backward, 0}, {Forward, 0}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("backward-before-forward must fail")
	}

	// Missing backward.
	bad = &Schedule{Depth: 1, Micros: 1, Orders: []Order{{{Forward, 0}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("missing backward must fail")
	}

	// Cold backward: F1 F2 B1 without recompute (activations of micro 0
	// were evicted by F2's checkpointing).
	bad = &Schedule{Depth: 1, Micros: 2, Orders: []Order{{
		{Forward, 0}, {Forward, 1}, {Backward, 0}, {Backward, 1},
	}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("cold backward without recompute must fail")
	}

	// Double recompute.
	bad = &Schedule{Depth: 1, Micros: 1, Orders: []Order{{
		{Forward, 0}, {Recompute, 0}, {Recompute, 0}, {Backward, 0},
	}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("double recompute must fail")
	}

	// Wrong order count.
	bad = &Schedule{Depth: 3, Micros: 3, Orders: good.Orders}
	if err := bad.Validate(); err == nil {
		t.Fatal("depth/order mismatch must fail")
	}

	// Out-of-range micro.
	bad = &Schedule{Depth: 1, Micros: 1, Orders: []Order{{{Forward, 5}, {Backward, 5}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("micro out of range must fail")
	}
}

func TestGeneratorsAlwaysValid(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(func(d, m uint8) bool {
		depth := int(d%24) + 1
		micros := int(m%48) + 1
		g, err := GPipe(depth, micros)
		if err != nil || g.Validate() != nil {
			return false
		}
		o, err := OneFOneB(depth, micros)
		if err != nil || o.Validate() != nil {
			return false
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestOneFOneBFewerMicrosThanDepth(t *testing.T) {
	// Degenerate but legal: fewer micro-batches than stages.
	s, err := OneFOneB(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyFlags(t *testing.T) {
	if !Varuna.Rule || !Varuna.Opportunistic {
		t.Fatal("Varuna policy must be rule-based and opportunistic")
	}
	if VarunaStrict.Opportunistic {
		t.Fatal("strict ablation must not be opportunistic")
	}
	if !DeepSpeedP.SyncComm {
		t.Fatal("DeepSpeed models synchronous communication")
	}
	if !PipeDreamP.NoFlush {
		t.Fatal("PipeDream never flushes")
	}
	if GPipeP.Rule || Megatron1F1B.Rule {
		t.Fatal("strict policies must not be rule-based")
	}
}
