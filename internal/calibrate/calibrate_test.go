package calibrate

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/simtime"
)

// fakeBench is a clean-room hardware model: times derive from op flops
// at a fixed rate with saturating micro-batch efficiency, transfers
// from a latency+bandwidth pair, allreduce from the standard ring
// formula. No noise, so fits must recover parameters exactly.
type fakeBench struct {
	flopsPerSec float64
	lat         simtime.Duration
	bps         float64
}

func (f fakeBench) eff(m int) float64 { return float64(m) / (float64(m) + 2) }

func (f fakeBench) OpForward(op model.Op, m int) simtime.Duration {
	return simtime.FromSeconds(op.FwdFlops * float64(m) / (f.flopsPerSec * f.eff(m)))
}

func (f fakeBench) OpBackward(op model.Op, m int) simtime.Duration {
	return 2 * f.OpForward(op, m)
}

func (f fakeBench) Overhead() simtime.Duration { return 200 * simtime.Microsecond }

func (f fakeBench) Transfer(n int64, inter bool) (simtime.Duration, float64) {
	lat := f.lat
	if !inter {
		lat = f.lat / 10
	}
	bps := f.bps
	if !inter {
		bps = f.bps * 10
	}
	return lat + simtime.FromSeconds(float64(n)/bps), 0.2
}

func (f fakeBench) AllReduce(n int64, d, inFlight int) simtime.Duration {
	if d <= 1 {
		return 0
	}
	wire := float64(n) * 2 * float64(d-1) / float64(d) * float64(inFlight)
	ser := wire / f.bps * stragglerFactor(d, 0.2) // bench reports cv 0.2
	return simtime.Duration(int64(f.lat)*int64(2*(d-1))) + simtime.FromSeconds(ser)
}

func (f fakeBench) Optimizer(n int64) simtime.Duration {
	return simtime.FromSeconds(float64(n) * 10e-12)
}

func (f fakeBench) DeviceSpread() float64 { return 0 }

func bench() fakeBench {
	return fakeBench{flopsPerSec: 50e12, lat: 500 * simtime.Microsecond, bps: 875e6}
}

func calibrated(t *testing.T, spec *model.Spec) *Params {
	t.Helper()
	p, err := Run(spec, bench(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunRejectsEmptySpec(t *testing.T) {
	if _, err := Run(nil, bench(), Options{}); err == nil {
		t.Fatal("nil spec must fail")
	}
	if _, err := Run(&model.Spec{}, bench(), Options{}); err == nil {
		t.Fatal("empty spec must fail")
	}
}

func TestCalibrationCoversAllOps(t *testing.T) {
	spec := model.GPT2XL2B()
	p := calibrated(t, spec)
	for _, m := range p.MicroSizes {
		if len(p.FwdOp[m]) != len(spec.Ops) || len(p.BwdOp[m]) != len(spec.Ops) {
			t.Fatalf("m=%d: measured %d/%d ops, want %d", m, len(p.FwdOp[m]), len(p.BwdOp[m]), len(spec.Ops))
		}
	}
	if !p.HasMicroSize(4) || p.HasMicroSize(3) {
		t.Fatal("HasMicroSize wrong")
	}
}

func TestNetworkFitRecoversTruth(t *testing.T) {
	p := calibrated(t, model.GPT2XL2B())
	b := bench()
	// Inter latency and bandwidth recovered within 2%.
	if rel(float64(p.Net.InterLatency), float64(b.lat)) > 0.02 {
		t.Fatalf("inter latency %v, want %v", p.Net.InterLatency, b.lat)
	}
	if rel(p.Net.InterBps, b.bps) > 0.02 {
		t.Fatalf("inter bps %.3g, want %.3g", p.Net.InterBps, b.bps)
	}
	if rel(p.Net.IntraBps, b.bps*10) > 0.02 {
		t.Fatalf("intra bps %.3g, want %.3g", p.Net.IntraBps, b.bps*10)
	}
	if p.Net.JitterCV != 0.2 {
		t.Fatalf("jitter cv = %v, want 0.2 from bench", p.Net.JitterCV)
	}
	// Prediction matches ground truth on unseen sizes.
	for _, n := range []int64{1 << 18, 5 << 20, 123456789} {
		want, _ := b.Transfer(n, true)
		got := p.Net.Transfer(n, true)
		if rel(float64(got), float64(want)) > 0.02 {
			t.Fatalf("Transfer(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestAllReduceFitRecoversTruth(t *testing.T) {
	p, err := Run(model.GPT2XL2B(), bench(), Options{GPUsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := bench()
	for _, c := range []struct {
		n int64
		d int
	}{{1 << 20, 2}, {200 << 20, 6}, {1 << 30, 16}} {
		want := b.AllReduce(c.n, c.d, 1)
		got := p.AR.Time(c.n, c.d)
		if rel(float64(got), float64(want)) > 0.05 {
			t.Fatalf("AR(%d,%d) = %v, want %v", c.n, c.d, got, want)
		}
	}
	if p.AR.Time(1<<20, 1) != 0 || p.AR.Time(0, 8) != 0 {
		t.Fatal("degenerate allreduce must be free")
	}
}

func TestPickMicroSizeSaturation(t *testing.T) {
	p := calibrated(t, model.GPT2XL2B())
	m := p.PickMicroSize(0.05)
	// With eff = m/(m+2): doubling gains fall below 5% somewhere
	// in the 8..32 range.
	if m < 8 || m > 32 {
		t.Fatalf("picked m=%d, want within [8,32]", m)
	}
	// Stricter tolerance picks a smaller m.
	loose := p.PickMicroSize(0.30)
	if loose > m {
		t.Fatalf("looser tolerance picked larger m: %d > %d", loose, m)
	}
	// Default tolerance path.
	if p.PickMicroSize(0) != m {
		t.Fatal("default tolerance must be 5%")
	}
}

func TestStageCostsAssembly(t *testing.T) {
	spec := model.GPT2XL2B()
	p := calibrated(t, spec)
	cuts, err := model.FindCutPoints(spec, 53)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := model.Partition(spec, cuts, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	inter := make([]bool, 9)
	for i := 0; i < 8; i++ {
		inter[i] = true
	}
	costs, err := p.StageCosts(spec, stages, 4, 6, inter)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 9 {
		t.Fatalf("got %d stage costs", len(costs))
	}
	b := bench()
	for i, c := range costs {
		// Backward ≈ 2× forward (modulo per-task overhead).
		ratio := float64(c.Bwd-p.Overhead) / float64(c.Fwd-p.Overhead)
		if math.Abs(ratio-2) > 0.01 {
			t.Fatalf("stage %d bwd/fwd = %.3f", i, ratio)
		}
		if c.Rec != c.Fwd {
			t.Fatalf("stage %d recompute != forward", i)
		}
		if i < 8 {
			if c.ActSend <= 0 || c.GradSend != c.ActSend {
				t.Fatalf("stage %d transfer costs wrong: %+v", i, c)
			}
			want, _ := b.Transfer(stages[i].SendBytes*4, true)
			if rel(float64(c.ActSend), float64(want)) > 0.03 {
				t.Fatalf("stage %d ActSend %v, want %v", i, c.ActSend, want)
			}
		} else if c.ActSend != 0 {
			t.Fatal("last stage must not send activations")
		}
		if c.AllReduce <= 0 {
			t.Fatalf("stage %d allreduce missing", i)
		}
		if c.Optimizer <= 0 {
			t.Fatalf("stage %d optimizer missing", i)
		}
	}
}

func TestStageCostsErrors(t *testing.T) {
	spec := model.GPT2XL2B()
	p := calibrated(t, spec)
	cuts, _ := model.FindCutPoints(spec, 53)
	stages, _ := model.Partition(spec, cuts, 9, true)
	if _, err := p.StageCosts(spec, stages, 3, 6, make([]bool, 9)); err == nil {
		t.Fatal("unprofiled micro size must fail")
	}
	if _, err := p.StageCosts(spec, stages, 4, 6, make([]bool, 3)); err == nil {
		t.Fatal("boundary flag length mismatch must fail")
	}
}

func TestCalibrationScaleInvariance(t *testing.T) {
	// The whole point of §4.3: parameter count is independent of the
	// number of GPUs. Nothing in Params depends on G; verify the
	// measurement count is a function of ops × micro sizes only.
	spec := model.GPT2Megatron8B()
	p := calibrated(t, spec)
	wantPerM := len(spec.Ops)
	for _, m := range p.MicroSizes {
		if len(p.FwdOp[m]) != wantPerM {
			t.Fatalf("measurement count per m = %d, want %d (independent of G)", len(p.FwdOp[m]), wantPerM)
		}
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// hierBench extends fakeBench with a node hierarchy: intra rings run
// on a 10x faster link, and rings spanning nodes pay both phases —
// matching the ARParams functional form so the fit must recover it.
type hierBench struct {
	fakeBench
	gpn int
}

func (h hierBench) ring(n int64, d int, lat simtime.Duration, bps float64, cv float64) simtime.Duration {
	if d <= 1 {
		return 0
	}
	wire := float64(n) * 2 * float64(d-1) / float64(d)
	return simtime.Duration(int64(lat)*int64(2*(d-1))) +
		simtime.FromSeconds(wire/bps*stragglerFactor(d, cv))
}

func (h hierBench) AllReduce(n int64, d, inFlight int) simtime.Duration {
	if d <= h.gpn {
		return h.ring(n, d, h.lat/10, h.bps*10, 0)
	}
	nodes := (d + h.gpn - 1) / h.gpn
	return h.ring(n, h.gpn, h.lat/10, h.bps*10, 0) + h.ring(n, nodes, h.lat, h.bps, 0.2)
}

func TestHierarchicalARFit(t *testing.T) {
	b := hierBench{fakeBench: bench(), gpn: 4}
	p, err := Run(model.GPT2XL2B(), b, Options{GPUsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		n int64
		d int
	}{{64 << 20, 2}, {64 << 20, 4}, {256 << 20, 16}, {1 << 30, 32}} {
		want := b.AllReduce(c.n, c.d, 1)
		got := p.AR.Time(c.n, c.d)
		if rel(float64(got), float64(want)) > 0.06 {
			t.Fatalf("hier AR(%d,%d) = %v, want %v", c.n, c.d, got, want)
		}
	}
}
