// Package calibrate implements Varuna's scale-invariant calibration
// (§4.3): a one-time profiling pass that measures the small set of
// primitive parameters in Table 2 — per-cut-point forward/backward
// compute times F_i(m), B_i(m), activation/gradient transfer latencies
// intra- and cross-node, and gradient allreduce times AR_i(D) with k
// allreduces in flight. The parameters are (a) mutually orthogonal, so
// they can be measured in parallel; (b) agnostic to the end-to-end
// configuration; and (c) independent of the total GPU count, so
// calibration happens once at job start and survives every morph.
package calibrate

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// Bench abstracts the hardware being profiled. The testbed implements
// it by sampling its ground-truth cost models with measurement noise —
// the role real GPUs and NICs play for the paper's profiler.
type Bench interface {
	// OpForward measures the raw forward kernel time of op at
	// micro-batch size m, overhead excluded.
	OpForward(op model.Op, m int) simtime.Duration
	// OpBackward measures the raw backward kernel time.
	OpBackward(op model.Op, m int) simtime.Duration
	// Overhead measures fixed per-task launch overhead.
	Overhead() simtime.Duration
	// Transfer measures a point-to-point transfer of n bytes,
	// returning the observed mean and jitter coefficient.
	Transfer(n int64, inter bool) (mean simtime.Duration, cv float64)
	// AllReduce measures a ring allreduce of n bytes per member over d
	// members with inFlight concurrent rings per NIC.
	AllReduce(n int64, d, inFlight int) simtime.Duration
	// Optimizer measures the weight-update time for n parameters.
	Optimizer(n int64) simtime.Duration
	// DeviceSpread measures the persistent speed spread across the
	// fleet's devices (coefficient of variation), observed by running
	// the same kernel on many GPUs. Synchronous training runs at the
	// slowest replica's pace, so the simulator folds the expected
	// max-of-D factor into stage times.
	DeviceSpread() float64
}

// NetParams carries the measured network characteristics.
type NetParams struct {
	IntraLatency simtime.Duration
	InterLatency simtime.Duration
	IntraBps     float64
	InterBps     float64
	// JitterCV is the observed coefficient of variation on the
	// inter-node path, fed to the simulator (§3.1, Observation 3).
	JitterCV float64
}

// Transfer predicts a point-to-point transfer time from the measured
// latency and bandwidth.
func (n NetParams) Transfer(bytes int64, inter bool) simtime.Duration {
	lat, bps := n.IntraLatency, n.IntraBps
	if inter {
		lat, bps = n.InterLatency, n.InterBps
	}
	if bps <= 0 {
		return lat
	}
	return lat + simtime.FromSeconds(float64(bytes)/bps)
}

// ARParams is the fitted allreduce model, mirroring the deployment's
// hierarchical placement: replicas of a stage pack into nodes, so an
// allreduce of d members is an intra-node ring (up to GPUsPerNode)
// followed by one cross-node ring over the node groups. Each phase is
// the bandwidth-optimal ring — 2(d−1) latency steps plus 2(d−1)/d
// per-byte serialization — with the cross-node phase inflated by the
// ring-step straggler factor (every synchronized step runs at its
// slowest member's pace; the expected max of d jittered hops grows as
// 1 + cv·√(2·ln d)).
type ARParams struct {
	GPUsPerNode int
	// Intra-node phase fit (zero when GPUsPerNode ≤ 1).
	IntraStepLatency simtime.Duration
	IntraPerByteSec  float64
	// Cross-node phase fit.
	InterStepLatency simtime.Duration
	InterPerByteSec  float64
	// JitterCV drives the cross-node straggler factor.
	JitterCV float64
}

// stragglerFactor mirrors netsim.RingStragglerFactor (duplicated to
// keep calibration free of the ground-truth package).
func stragglerFactor(d int, cv float64) float64 {
	if d < 2 || cv <= 0 {
		return 1
	}
	return 1 + cv*math.Sqrt(2*math.Log(float64(d)))
}

// ringTime evaluates one ring phase.
func ringTime(n int64, d int, step simtime.Duration, perByte, cv float64) simtime.Duration {
	if d <= 1 || n <= 0 {
		return 0
	}
	wire := float64(n) * 2 * float64(d-1) / float64(d)
	ser := wire * perByte * stragglerFactor(d, cv)
	return simtime.Duration(int64(step)*int64(2*(d-1))) + simtime.FromSeconds(ser)
}

// Time predicts the allreduce of n bytes over d members.
func (a ARParams) Time(n int64, d int) simtime.Duration {
	if d <= 1 || n <= 0 {
		return 0
	}
	gpn := a.GPUsPerNode
	if gpn <= 1 {
		return ringTime(n, d, a.InterStepLatency, a.InterPerByteSec, a.JitterCV)
	}
	if d <= gpn {
		return ringTime(n, d, a.IntraStepLatency, a.IntraPerByteSec, 0)
	}
	local := gpn
	if d%gpn != 0 {
		local = d % gpn
		if local < 2 {
			local = gpn
		}
	}
	return ringTime(n, local, a.IntraStepLatency, a.IntraPerByteSec, 0) +
		ringTime(n, (d+gpn-1)/gpn, a.InterStepLatency, a.InterPerByteSec, a.JitterCV)
}

// Params is the complete calibration output.
type Params struct {
	// SpecName records the profiled model.
	SpecName string
	// MicroSizes are the profiled micro-batch sizes, ascending.
	MicroSizes []int
	// FwdOp[m][i] is the raw forward time of op i at micro-batch size m.
	FwdOp map[int][]simtime.Duration
	// BwdOp[m][i] is the raw backward time.
	BwdOp map[int][]simtime.Duration
	// Overhead is the per-task launch overhead.
	Overhead simtime.Duration
	// PerParamOptSec is the optimizer time per parameter, in seconds.
	PerParamOptSec float64
	// DeviceSpreadCV is the measured per-device speed spread.
	DeviceSpreadCV float64
	// Net is the measured network profile.
	Net NetParams
	// AR is the fitted allreduce model.
	AR ARParams
}

// Options tunes a calibration run.
type Options struct {
	// MicroSizes to profile; default {1,2,4,8,16,32}.
	MicroSizes []int
	// ARProbeBytes is the payload for allreduce probing; default 64 MiB.
	ARProbeBytes int64
	// GPUsPerNode describes the placement hierarchy (1 for 1-GPU VMs).
	GPUsPerNode int
}

func (o *Options) fill() {
	if len(o.MicroSizes) == 0 {
		o.MicroSizes = []int{1, 2, 4, 8, 16, 32}
	}
	if o.ARProbeBytes <= 0 {
		o.ARProbeBytes = 64 << 20
	}
	if o.GPUsPerNode < 1 {
		o.GPUsPerNode = 1
	}
}

// Run profiles spec on bench and returns the calibrated parameters.
func Run(spec *model.Spec, bench Bench, opts Options) (*Params, error) {
	if spec == nil || len(spec.Ops) == 0 {
		return nil, fmt.Errorf("calibrate: empty model spec")
	}
	opts.fill()
	sizes := append([]int(nil), opts.MicroSizes...)
	sort.Ints(sizes)

	p := &Params{
		SpecName:   spec.Name,
		MicroSizes: sizes,
		FwdOp:      make(map[int][]simtime.Duration, len(sizes)),
		BwdOp:      make(map[int][]simtime.Duration, len(sizes)),
		Overhead:   bench.Overhead(),
	}
	for _, m := range sizes {
		f := make([]simtime.Duration, len(spec.Ops))
		b := make([]simtime.Duration, len(spec.Ops))
		for i, op := range spec.Ops {
			f[i] = bench.OpForward(op, m)
			b[i] = bench.OpBackward(op, m)
		}
		p.FwdOp[m] = f
		p.BwdOp[m] = b
	}

	// Network: probe with a representative block-boundary activation.
	probe := spec.BlockActivationBytes() * 4
	if probe < 1<<20 {
		probe = 1 << 20
	}
	small := probe / 8
	im, _ := bench.Transfer(small, false)
	il, _ := bench.Transfer(probe, false)
	em, cv := bench.Transfer(small, true)
	el, _ := bench.Transfer(probe, true)
	p.Net = NetParams{
		IntraLatency: fitLatency(im, il, small, probe),
		InterLatency: fitLatency(em, el, small, probe),
		IntraBps:     fitBandwidth(im, il, small, probe),
		InterBps:     fitBandwidth(em, el, small, probe),
		JitterCV:     cv,
	}

	// Allreduce: probe each hierarchy phase with two payloads — the
	// payload delta isolates the per-byte rate, the residual pins the
	// per-step latency. The intra-node phase is probed at ring size
	// GPUsPerNode; the cross-node phase at 4 node groups, with the
	// intra contribution subtracted.
	big := opts.ARProbeBytes
	sm := big / 8
	gpn := opts.GPUsPerNode
	p.AR = ARParams{GPUsPerNode: gpn, JitterCV: p.Net.JitterCV}
	intraPred := func(n int64) simtime.Duration { return 0 }
	if gpn > 1 {
		t1 := bench.AllReduce(sm, gpn, 1)
		t2 := bench.AllReduce(big, gpn, 1)
		step, perByte := fitRing(t1, t2, sm, big, gpn, 1)
		p.AR.IntraStepLatency = step
		p.AR.IntraPerByteSec = perByte
		intraPred = func(n int64) simtime.Duration {
			return ringTime(n, gpn, step, perByte, 0)
		}
	}
	dInter := 4
	t1 := bench.AllReduce(sm, dInter*gpn, 1) - intraPred(sm)
	t2 := bench.AllReduce(big, dInter*gpn, 1) - intraPred(big)
	step, perByte := fitRing(t1, t2, sm, big, dInter, stragglerFactor(dInter, p.Net.JitterCV))
	p.AR.InterStepLatency = step
	p.AR.InterPerByteSec = perByte

	// Optimizer cost per parameter from a large probe.
	const optProbe = int64(100_000_000)
	p.PerParamOptSec = bench.Optimizer(optProbe).Seconds() / float64(optProbe)

	p.DeviceSpreadCV = bench.DeviceSpread()
	return p, nil
}

// fitRing solves (stepLatency, perByteSec) of one ring phase from two
// probes at payloads sm and big over a ring of d whose serialization
// was inflated by strag.
func fitRing(t1, t2 simtime.Duration, sm, big int64, d int, strag float64) (simtime.Duration, float64) {
	ring := 2 * float64(d-1) / float64(d)
	perByte := (t2 - t1).Seconds() / (ring * float64(big-sm) * strag)
	if perByte < 0 {
		perByte = 0
	}
	step := (float64(t1) - ring*float64(sm)*perByte*strag*float64(simtime.Second)) / float64(2*(d-1))
	if step < 0 {
		step = 0
	}
	return simtime.Duration(step + 0.5), perByte
}

// fitLatency solves lat from two transfer measurements.
func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fitLatency(tSmall, tLarge simtime.Duration, bSmall, bLarge int64) simtime.Duration {
	perByte := float64(tLarge-tSmall) / float64(bLarge-bSmall)
	lat := float64(tSmall) - perByte*float64(bSmall)
	if lat < 0 {
		lat = 0
	}
	return simtime.Duration(lat + 0.5)
}

// fitBandwidth solves bytes/s from two transfer measurements.
func fitBandwidth(tSmall, tLarge simtime.Duration, bSmall, bLarge int64) float64 {
	perByte := (tLarge - tSmall).Seconds() / float64(bLarge-bSmall)
	if perByte <= 0 {
		return 0
	}
	return 1 / perByte
}

// PickMicroSize applies §4.4: the smallest profiled m at which per-
// example forward time F(m)/m stops improving materially (less than
// improveTol relative gain from doubling).
func (p *Params) PickMicroSize(improveTol float64) int {
	if improveTol <= 0 {
		improveTol = 0.05
	}
	best := p.MicroSizes[len(p.MicroSizes)-1]
	for i := 0; i+1 < len(p.MicroSizes); i++ {
		m, next := p.MicroSizes[i], p.MicroSizes[i+1]
		cur := p.perExampleFwd(m)
		nxt := p.perExampleFwd(next)
		if cur-nxt < improveTol*cur {
			return m
		}
	}
	return best
}

// PerExampleFwdAt reports whole-model forward seconds per example at a
// profiled micro-batch size, used to rank candidate m values.
func (p *Params) PerExampleFwdAt(m int) float64 { return p.perExampleFwd(m) }

// perExampleFwd is whole-model forward seconds per example at m.
func (p *Params) perExampleFwd(m int) float64 {
	var sum simtime.Duration
	for _, d := range p.FwdOp[m] {
		sum += d
	}
	return sum.Seconds() / float64(m)
}

// HasMicroSize reports whether m was profiled.
func (p *Params) HasMicroSize(m int) bool {
	for _, s := range p.MicroSizes {
		if s == m {
			return true
		}
	}
	return false
}

// StageCosts assembles the simulator inputs for a concrete
// configuration: stages (a grouping of ops), micro-batch size m,
// data-parallel width d, and a per-boundary flag saying whether the
// activation hop to the next stage crosses nodes. This is the bridge
// from Table 2 parameters to the §4.4 simulator.
func (p *Params) StageCosts(spec *model.Spec, stages []model.Stage, m, d int, interBoundary []bool) ([]sim.StageCosts, error) {
	if !p.HasMicroSize(m) {
		return nil, fmt.Errorf("calibrate: micro size %d was not profiled", m)
	}
	if len(interBoundary) != len(stages) {
		return nil, fmt.Errorf("calibrate: %d boundary flags for %d stages", len(interBoundary), len(stages))
	}
	fwd := p.FwdOp[m]
	bwd := p.BwdOp[m]
	// The data-parallel barrier runs at the slowest of d replicas;
	// with the measured device spread the expected slowdown is the
	// max-of-d factor (§4.3 folds observed spread into the
	// calibrated parameters, just as network times fold in jitter).
	barrier := 1 + p.DeviceSpreadCV*math.Sqrt(2*math.Log(float64(maxI(d, 2))))
	scale := func(t simtime.Duration) simtime.Duration {
		return simtime.Duration(float64(t)*barrier + 0.5)
	}
	costs := make([]sim.StageCosts, len(stages))
	for i, st := range stages {
		var f, b simtime.Duration
		for j := st.FirstOp; j <= st.LastOp; j++ {
			f += fwd[j]
			b += bwd[j]
		}
		c := sim.StageCosts{
			Fwd: scale(f + p.Overhead),
			Bwd: scale(b + p.Overhead),
			Rec: scale(f + p.Overhead),
		}
		if i < len(stages)-1 {
			actBytes := st.SendBytes * int64(m)
			c.ActSend = p.Net.Transfer(actBytes, interBoundary[i])
			c.GradSend = c.ActSend
		}
		c.AllReduce = p.AR.Time(st.Params*model.BytesPerParam, d)
		c.Optimizer = simtime.FromSeconds(float64(st.Params)*p.PerParamOptSec) + p.Overhead
		costs[i] = c
	}
	return costs, nil
}
