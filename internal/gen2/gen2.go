// Package gen2 provides a generation-bounded map: segmented-LRU
// semantics with two plain maps and no per-entry bookkeeping.
//
// Entries live in a current and a previous generation of at most cap
// keys each. Lookups check both, promoting previous-generation hits
// into the current one; when an insert would grow the current
// generation past the bound, the current generation becomes the
// previous one and the old previous generation is dropped. A key
// touched within the last cap distinct insertions therefore always
// survives, and memory stays bounded at 2·cap entries.
//
// The Varuna planner keeps two such caches alive for a job's lifetime
// — the (spec, p, m, d) cost cache and the per-fleet-size decision
// memo (§4.6 re-decides on every fleet event, and spot churn revisits
// the same keys constantly). Both caches hold values that are
// deterministic in their key, which is what makes this eviction scheme
// safe there: dropping a generation only ever costs recomputation,
// never a different decision.
//
// A Map is not safe for concurrent use; callers that share one across
// goroutines hold their own lock (both planner caches do).
package gen2

// Map is a two-generation bounded map. The zero value is not usable;
// construct with New.
type Map[K comparable, V any] struct {
	cap       int // per-generation key bound; <= 0 is unbounded
	cur, prev map[K]V
	rotations uint64
}

// New builds a map bounded to capacity keys per generation
// (capacity <= 0 is unbounded — a plain map with promote-on-hit
// semantics). sizeHint pre-sizes the first generation.
func New[K comparable, V any](capacity, sizeHint int) *Map[K, V] {
	if capacity > 0 && sizeHint > capacity {
		sizeHint = capacity
	}
	return &Map[K, V]{cap: capacity, cur: make(map[K]V, sizeHint)}
}

// Get finds a key in either generation, promoting previous-generation
// hits into the current one (which can rotate).
func (m *Map[K, V]) Get(k K) (V, bool) {
	if v, ok := m.cur[k]; ok {
		return v, true
	}
	if v, ok := m.prev[k]; ok {
		m.Put(k, v)
		return v, true
	}
	var zero V
	return zero, false
}

// Put inserts into the current generation. When the bound is reached
// and k is not already current, the generations rotate: current
// becomes previous, the old previous generation is dropped, and k
// starts the fresh current generation.
func (m *Map[K, V]) Put(k K, v V) {
	if m.cap > 0 && len(m.cur) >= m.cap {
		if _, ok := m.cur[k]; !ok {
			m.prev = m.cur
			m.cur = make(map[K]V, m.cap)
			m.rotations++
		}
	}
	m.cur[k] = v
}

// Len reports the number of live keys across both generations
// (a key present in both counts once).
func (m *Map[K, V]) Len() int {
	n := len(m.cur)
	for k := range m.prev {
		if _, ok := m.cur[k]; !ok {
			n++
		}
	}
	return n
}

// Rotations reports how many generation rotations Put has performed —
// the eviction counter surfaced in planner stats.
func (m *Map[K, V]) Rotations() uint64 { return m.rotations }

// Each visits every live entry, previous generation first so that a
// key present in both generations is visited last with its current
// (authoritative) value. Iteration order within a generation is map
// order; callers needing determinism sort afterwards.
func (m *Map[K, V]) Each(f func(K, V)) {
	for k, v := range m.prev {
		if _, ok := m.cur[k]; ok {
			continue
		}
		f(k, v)
	}
	for k, v := range m.cur {
		f(k, v)
	}
}
