package gen2

import "testing"

func TestBasicGetPut(t *testing.T) {
	m := New[int, string](0, 4)
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map reported a hit")
	}
	m.Put(1, "a")
	m.Put(2, "b")
	if v, ok := m.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	m.Put(1, "a2")
	if v, _ := m.Get(1); v != "a2" {
		t.Fatalf("overwrite lost: Get(1) = %q", v)
	}
	if m.Rotations() != 0 {
		t.Fatalf("unbounded map rotated %d times", m.Rotations())
	}
}

// TestRotationDropsOldestGeneration pins the segmented-LRU contract:
// filling the current generation rotates, and a second rotation drops
// keys untouched since before the first.
func TestRotationDropsOldestGeneration(t *testing.T) {
	m := New[int, int](2, 0)
	m.Put(1, 1)
	m.Put(2, 2)
	m.Put(3, 3) // rotation 1: {1,2} -> prev
	if m.Rotations() != 1 {
		t.Fatalf("Rotations = %d, want 1", m.Rotations())
	}
	if _, ok := m.Get(1); !ok {
		t.Fatal("key 1 should survive in the previous generation")
	}
	// Get(1) promoted 1 into cur = {3,1}. Next insert rotates again.
	m.Put(4, 4) // rotation 2: {3,1} -> prev, {1,2} dropped
	if m.Rotations() != 2 {
		t.Fatalf("Rotations = %d, want 2", m.Rotations())
	}
	if _, ok := m.Get(2); ok {
		t.Fatal("key 2 survived two rotations without a touch")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := m.Get(k); !ok {
			t.Fatalf("recently-touched key %d was evicted", k)
		}
	}
}

// TestPromotionKeepsHotKeysAlive: a key read on every cycle must never
// be evicted no matter how much cold traffic flows past it.
func TestPromotionKeepsHotKeysAlive(t *testing.T) {
	m := New[int, int](4, 0)
	m.Put(0, 42)
	for i := 1; i <= 100; i++ {
		m.Put(i, i)
		if _, ok := m.Get(0); !ok {
			t.Fatalf("hot key evicted after %d cold inserts", i)
		}
	}
	if m.Len() > 8 {
		t.Fatalf("Len = %d exceeds 2·cap", m.Len())
	}
}

// TestReinsertExistingKeyAtCapacityDoesNotRotate: overwriting a key
// already in the full current generation must not evict anything.
func TestReinsertExistingKeyAtCapacityDoesNotRotate(t *testing.T) {
	m := New[int, int](2, 0)
	m.Put(1, 1)
	m.Put(2, 2)
	m.Put(2, 22)
	if m.Rotations() != 0 {
		t.Fatalf("overwrite at capacity rotated (%d)", m.Rotations())
	}
	if v, _ := m.Get(2); v != 22 {
		t.Fatalf("Get(2) = %d, want 22", v)
	}
}

// TestEachVisitsLiveEntriesOnce: Each must yield every live key exactly
// once with its authoritative value, across both generations.
func TestEachVisitsLiveEntriesOnce(t *testing.T) {
	m := New[int, int](2, 0)
	m.Put(1, 1)
	m.Put(2, 2)
	m.Put(3, 3) // {1,2} in prev, {3} in cur
	m.Put(1, 10)
	seen := map[int]int{}
	m.Each(func(k, v int) {
		if _, dup := seen[k]; dup {
			t.Fatalf("Each visited key %d twice", k)
		}
		seen[k] = v
	})
	want := map[int]int{1: 10, 2: 2, 3: 3}
	if len(seen) != len(want) {
		t.Fatalf("Each visited %v, want %v", seen, want)
	}
	for k, v := range want {
		if seen[k] != v {
			t.Fatalf("Each[%d] = %d, want %d", k, seen[k], v)
		}
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
}
