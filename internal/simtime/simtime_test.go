package simtime

import (
	"testing"
	"testing/quick"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500µs"},
		{2500, "2.500ms"},
		{3 * Second, "3.000s"},
		{90 * Minute, "1.50h"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(2 * Second)
	if t1.Sub(t0) != 2*Second {
		t.Fatalf("Sub = %v, want 2s", t1.Sub(t0))
	}
	if t1.Seconds() != 2 {
		t.Fatalf("Seconds = %v, want 2", t1.Seconds())
	}
	if Max(t0, t1) != t1 || Min(t0, t1) != t0 {
		t.Fatal("Max/Min wrong")
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	if err := quick.Check(func(ms uint16) bool {
		d := FromSeconds(float64(ms) / 1000)
		return d == Duration(ms)*Millisecond
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestJitterProperties(t *testing.T) {
	r := NewRand(1)
	base := 10 * Millisecond
	for i := 0; i < 1000; i++ {
		j := r.Jitter(base, 0.2)
		if j < base/2 {
			t.Fatalf("jitter produced %v, below floor %v", j, base/2)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Fatal("cv=0 must be identity")
	}
	if r.Jitter(0, 0.5) != 0 {
		t.Fatal("zero duration must stay zero")
	}
}

func TestJitterMeanNearOne(t *testing.T) {
	r := NewRand(7)
	base := Second
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(r.Jitter(base, 0.1))
	}
	mean := sum / n / float64(Second)
	if mean < 0.98 || mean > 1.02 {
		t.Fatalf("jitter mean = %v, want ≈1", mean)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must yield same stream")
		}
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	var got []int
	q.Schedule(30, func() { got = append(got, 3) })
	q.Schedule(10, func() { got = append(got, 1) })
	q.Schedule(20, func() { got = append(got, 2) })
	q.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if q.Now() != 30 {
		t.Fatalf("Now = %v, want 30", q.Now())
	}
}

func TestEventQueueFIFOAtSameTime(t *testing.T) {
	var q EventQueue
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		q.Schedule(5, func() { got = append(got, i) })
	}
	q.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events must fire FIFO, got %v", got)
		}
	}
}

func TestEventQueueCascade(t *testing.T) {
	var q EventQueue
	count := 0
	var step func()
	step = func() {
		count++
		if count < 10 {
			q.After(Millisecond, step)
		}
	}
	q.Schedule(0, step)
	end := q.Run(0)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if end != Time(9*Millisecond) {
		t.Fatalf("end = %v, want 9ms", end)
	}
}

func TestEventQueueHorizon(t *testing.T) {
	var q EventQueue
	fired := 0
	q.Schedule(Time(Second), func() { fired++ })
	q.Schedule(Time(3*Second), func() { fired++ })
	end := q.Run(Time(2 * Second))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if end != Time(2*Second) {
		t.Fatalf("end = %v, want horizon", end)
	}
	if q.Len() != 1 {
		t.Fatalf("pending = %d, want 1", q.Len())
	}
}

func TestSchedulePastClamped(t *testing.T) {
	var q EventQueue
	var at Time
	q.Schedule(100, func() {
		q.Schedule(10, func() { at = q.Now() }) // in the past
	})
	q.Run(0)
	if at != 100 {
		t.Fatalf("past event fired at %v, want clamp to 100", at)
	}
}
