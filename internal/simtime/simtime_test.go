package simtime

import (
	"testing"
	"testing/quick"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500µs"},
		{2500, "2.500ms"},
		{3 * Second, "3.000s"},
		{90 * Minute, "1.50h"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(2 * Second)
	if t1.Sub(t0) != 2*Second {
		t.Fatalf("Sub = %v, want 2s", t1.Sub(t0))
	}
	if t1.Seconds() != 2 {
		t.Fatalf("Seconds = %v, want 2", t1.Seconds())
	}
	if Max(t0, t1) != t1 || Min(t0, t1) != t0 {
		t.Fatal("Max/Min wrong")
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	if err := quick.Check(func(ms uint16) bool {
		d := FromSeconds(float64(ms) / 1000)
		return d == Duration(ms)*Millisecond
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestJitterProperties(t *testing.T) {
	r := NewRand(1)
	base := 10 * Millisecond
	for i := 0; i < 1000; i++ {
		j := r.Jitter(base, 0.2)
		if j < base/2 {
			t.Fatalf("jitter produced %v, below floor %v", j, base/2)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Fatal("cv=0 must be identity")
	}
	if r.Jitter(0, 0.5) != 0 {
		t.Fatal("zero duration must stay zero")
	}
}

func TestJitterMeanNearOne(t *testing.T) {
	r := NewRand(7)
	base := Second
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(r.Jitter(base, 0.1))
	}
	mean := sum / n / float64(Second)
	if mean < 0.98 || mean > 1.02 {
		t.Fatalf("jitter mean = %v, want ≈1", mean)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must yield same stream")
		}
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	var got []int
	q.Schedule(30, func() { got = append(got, 3) })
	q.Schedule(10, func() { got = append(got, 1) })
	q.Schedule(20, func() { got = append(got, 2) })
	q.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if q.Now() != 30 {
		t.Fatalf("Now = %v, want 30", q.Now())
	}
}

func TestEventQueueFIFOAtSameTime(t *testing.T) {
	var q EventQueue
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		q.Schedule(5, func() { got = append(got, i) })
	}
	q.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events must fire FIFO, got %v", got)
		}
	}
}

func TestEventQueueCascade(t *testing.T) {
	var q EventQueue
	count := 0
	var step func()
	step = func() {
		count++
		if count < 10 {
			q.After(Millisecond, step)
		}
	}
	q.Schedule(0, step)
	end := q.Run(0)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if end != Time(9*Millisecond) {
		t.Fatalf("end = %v, want 9ms", end)
	}
}

func TestEventQueueHorizon(t *testing.T) {
	var q EventQueue
	fired := 0
	q.Schedule(Time(Second), func() { fired++ })
	q.Schedule(Time(3*Second), func() { fired++ })
	end := q.Run(Time(2 * Second))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if end != Time(2*Second) {
		t.Fatalf("end = %v, want horizon", end)
	}
	if q.Len() != 1 {
		t.Fatalf("pending = %d, want 1", q.Len())
	}
}

func TestSchedulePastClamped(t *testing.T) {
	var q EventQueue
	var at Time
	q.Schedule(100, func() {
		q.Schedule(10, func() { at = q.Now() }) // in the past
	})
	q.Run(0)
	if at != 100 {
		t.Fatalf("past event fired at %v, want clamp to 100", at)
	}
}

func TestScheduleCallOrderingInterleaved(t *testing.T) {
	// ScheduleCall and Schedule events at the same instant must share
	// one FIFO sequence.
	var q EventQueue
	var got []int32
	record := func(a, _ int32) { got = append(got, a) }
	q.ScheduleCall(5, record, 0, 0)
	q.Schedule(5, func() { got = append(got, 1) })
	q.ScheduleCall(5, record, 2, 0)
	q.Schedule(3, func() { got = append(got, -1) })
	q.Run(0)
	want := []int32{-1, 0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestScheduleCallArgs(t *testing.T) {
	var q EventQueue
	var gotA, gotB int32
	q.ScheduleCall(7, func(a, b int32) { gotA, gotB = a, b }, 42, -9)
	q.Run(0)
	if gotA != 42 || gotB != -9 {
		t.Fatalf("args (%d, %d), want (42, -9)", gotA, gotB)
	}
	if q.Now() != 7 {
		t.Fatalf("Now = %v, want 7", q.Now())
	}
}

func TestEventQueueArenaRecycling(t *testing.T) {
	// Slots must be recycled through the free list: a drain/refill cycle
	// keeps the arena at its high-water mark instead of growing.
	var q EventQueue
	fired := 0
	cb := func(a, b int32) { fired++ }
	for round := 0; round < 10; round++ {
		for i := 0; i < 100; i++ {
			q.ScheduleCall(q.Now().Add(Duration(i)), cb, 0, 0)
		}
		q.Run(0)
	}
	if fired != 1000 {
		t.Fatalf("fired %d, want 1000", fired)
	}
	if len(q.arena) > 100 {
		t.Fatalf("arena grew to %d slots; free-list recycling broken", len(q.arena))
	}
}

func TestEventQueueReset(t *testing.T) {
	var q EventQueue
	q.Schedule(100, func() { t.Fatal("discarded event fired") })
	q.Reset()
	if q.Len() != 0 || q.Now() != 0 {
		t.Fatalf("Reset left len=%d now=%v", q.Len(), q.Now())
	}
	// The queue must be fully usable after Reset, with seq restarting so
	// ordering stays deterministic.
	var got []int
	q.Schedule(5, func() { got = append(got, 1) })
	q.Schedule(5, func() { got = append(got, 2) })
	q.Run(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("post-Reset events fired as %v", got)
	}
}

func TestEventQueueScheduleDuringFire(t *testing.T) {
	// A callback scheduling into the slot it just vacated must not
	// corrupt the queue.
	var q EventQueue
	var got []int32
	var cb func(a, b int32)
	cb = func(a, _ int32) {
		got = append(got, a)
		if a < 5 {
			q.ScheduleCall(q.Now().Add(1), cb, a+1, 0)
		}
	}
	q.ScheduleCall(0, cb, 0, 0)
	q.Run(0)
	if len(got) != 6 || got[5] != 5 {
		t.Fatalf("cascade fired %v", got)
	}
}

// BenchmarkEventQueue measures a schedule/drain cycle of 1024 events
// through the indexed-heap arena. The ScheduleCall path must be
// allocation-free after warm-up.
func BenchmarkEventQueue(b *testing.B) {
	var q EventQueue
	n := 0
	cb := func(a, _ int32) { n++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = 0
		for j := 0; j < 1024; j++ {
			q.ScheduleCall(q.Now().Add(Duration(j%97)), cb, int32(j), 0)
		}
		q.Run(0)
		if n != 1024 {
			b.Fatal(n)
		}
	}
}

func TestSnapshotPendingFiringOrder(t *testing.T) {
	var q EventQueue
	cb := func(a, b int32) {}
	// Schedule out of order, with a same-instant pair to pin the
	// insertion-sequence tiebreak.
	q.ScheduleCall(30, cb, 3, 30)
	q.ScheduleCall(10, cb, 1, 10)
	q.ScheduleCall(20, cb, 2, 20)
	q.ScheduleCall(10, cb, 4, 40) // same instant as the second event, inserted later
	evs, ok := q.SnapshotPending(nil)
	if !ok {
		t.Fatal("call-only queue must be fingerprintable")
	}
	if len(evs) != 4 {
		t.Fatalf("snapshot has %d events, want 4", len(evs))
	}
	wantA := []int32{1, 4, 2, 3}
	wantAt := []Time{10, 10, 20, 30}
	for i, ev := range evs {
		if ev.A != wantA[i] || ev.At != wantAt[i] {
			t.Fatalf("snapshot[%d] = (at %v, a %d), want (at %v, a %d)", i, ev.At, ev.A, wantAt[i], wantA[i])
		}
	}
	// The snapshot must not disturb execution order.
	var fired []int32
	run := func(a, b int32) { fired = append(fired, a) }
	var q3 EventQueue
	q3.ScheduleCall(30, run, 3, 0)
	q3.ScheduleCall(10, run, 1, 0)
	q3.ScheduleCall(20, run, 2, 0)
	q3.ScheduleCall(10, run, 4, 0)
	if _, ok := q3.SnapshotPending(nil); !ok {
		t.Fatal("snapshot failed")
	}
	q3.Run(0)
	if len(fired) != 4 || fired[0] != 1 || fired[1] != 4 || fired[2] != 2 || fired[3] != 3 {
		t.Fatalf("post-snapshot firing order %v, want [1 4 2 3]", fired)
	}
}

func TestSnapshotPendingClosureEventUnfingerprintable(t *testing.T) {
	var q EventQueue
	q.ScheduleCall(10, func(a, b int32) {}, 1, 0)
	q.Schedule(20, func() {})
	if _, ok := q.SnapshotPending(nil); ok {
		t.Fatal("a pending closure event must make the snapshot report ok == false")
	}
}

func TestSnapshotPendingReusesBuffer(t *testing.T) {
	var q EventQueue
	cb := func(a, b int32) {}
	for i := 0; i < 8; i++ {
		q.ScheduleCall(Time(i), cb, int32(i), 0)
	}
	buf, ok := q.SnapshotPending(nil)
	if !ok || len(buf) != 8 {
		t.Fatalf("snapshot = %d events, ok=%v", len(buf), ok)
	}
	allocs := testing.AllocsPerRun(50, func() {
		var ok2 bool
		buf, ok2 = q.SnapshotPending(buf)
		if !ok2 || len(buf) != 8 {
			t.Fatal("warm snapshot changed")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm SnapshotPending allocated %.1f times per run", allocs)
	}
}

func TestShiftPendingAdvancesClockEventsAndArgs(t *testing.T) {
	var fired []int32
	var at []Time
	var q EventQueue
	run := func(a, b int32) { fired = append(fired, a, b); at = append(at, q.Now()) }
	q.ScheduleCall(10, run, 1, 100)
	q.ScheduleCall(10, run, 2, 200)
	q.ScheduleCall(30, run, 3, 300)
	q.ShiftPending(5, func(a, b int32) (int32, int32) {
		if a == 2 {
			return a, b + 1000 // rewrite one event's payload
		}
		return a, b
	})
	if q.Now() != 5 {
		t.Fatalf("clock after shift = %v, want 5", q.Now())
	}
	end := q.Run(0)
	// Order preserved (uniform shift), times moved by 5, args rewritten.
	want := []int32{1, 100, 2, 1200, 3, 300}
	if len(fired) != len(want) {
		t.Fatalf("fired %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if at[0] != 15 || at[1] != 15 || at[2] != 35 || end != 35 {
		t.Fatalf("fire times %v end %v, want [15 15 35] 35", at, end)
	}
}

func TestShiftPendingNilRewrite(t *testing.T) {
	var got []int32
	var q EventQueue
	q.ScheduleCall(10, func(a, b int32) { got = append(got, a, b) }, 7, 70)
	q.ShiftPending(20, nil)
	q.Run(0)
	if q.Now() != 30 {
		t.Fatalf("event fired at %v, want 30", q.Now())
	}
	if len(got) != 2 || got[0] != 7 || got[1] != 70 {
		t.Fatalf("args %v, want [7 70] (nil rewrite must not touch them)", got)
	}
}
