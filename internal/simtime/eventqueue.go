package simtime

import "container/heap"

// Event is a unit of work scheduled on the simulated clock. Events with
// equal times fire in insertion order, which keeps simulations
// deterministic regardless of heap internals.
type Event struct {
	At   Time
	Fire func()

	seq int64
	idx int
}

// EventQueue is a priority queue of simulated events. The zero value is
// ready to use.
type EventQueue struct {
	h   eventHeap
	seq int64
	now Time
}

// Now reports the current simulated time: the timestamp of the most
// recently fired event.
func (q *EventQueue) Now() Time { return q.now }

// Schedule enqueues fn to run at instant at. Scheduling in the past is
// clamped to the current time (the event fires next).
func (q *EventQueue) Schedule(at Time, fn func()) {
	if at < q.now {
		at = q.now
	}
	q.seq++
	heap.Push(&q.h, &Event{At: at, Fire: fn, seq: q.seq})
}

// After enqueues fn to run d after the current simulated time.
func (q *EventQueue) After(d Duration, fn func()) {
	q.Schedule(q.now.Add(d), fn)
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return q.h.Len() }

// Step fires the earliest pending event, advancing the clock. It
// reports false when no events remain.
func (q *EventQueue) Step() bool {
	if q.h.Len() == 0 {
		return false
	}
	ev := heap.Pop(&q.h).(*Event)
	q.now = ev.At
	ev.Fire()
	return true
}

// Run fires events until the queue drains or the clock passes horizon
// (horizon <= 0 means no horizon). It returns the final simulated time.
func (q *EventQueue) Run(horizon Time) Time {
	for q.h.Len() > 0 {
		if horizon > 0 && q.h[0].At > horizon {
			q.now = horizon
			break
		}
		q.Step()
	}
	return q.now
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
