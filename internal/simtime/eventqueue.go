package simtime

// event is one arena slot: a unit of work scheduled on the simulated
// clock. Events with equal times fire in insertion order (seq), which
// keeps simulations deterministic regardless of heap internals.
//
// An event carries either a plain closure (fire) or a pre-bound
// callback plus two integer arguments (call, a, b). The second form
// lets hot simulation loops schedule millions of events without
// allocating: the caller binds a method value once and passes it for
// every event, so only the 16 bytes of arguments travel through the
// queue.
type event struct {
	at   Time
	seq  int64
	fire func()
	call func(a, b int32)
	a, b int32
}

// EventQueue is a priority queue of simulated events, implemented as an
// indexed binary heap over a reusable arena: the heap orders int32
// slots rather than pointers, and popped slots are recycled through a
// free list. After warm-up a schedule/fire cycle performs zero
// allocations. The zero value is ready to use.
type EventQueue struct {
	now   Time
	seq   int64
	arena []event
	frees []int32 // recycled arena slots
	heap  []int32 // arena indices ordered by (at, seq)
}

// Now reports the current simulated time: the timestamp of the most
// recently fired event.
func (q *EventQueue) Now() Time { return q.now }

// Schedule enqueues fn to run at instant at. Scheduling in the past is
// clamped to the current time (the event fires next).
func (q *EventQueue) Schedule(at Time, fn func()) {
	q.push(at, fn, nil, 0, 0)
}

// ScheduleCall enqueues fn(a, b) at instant at. The func value is
// stored as-is, not wrapped, so passing the same pre-bound method value
// for every event keeps the scheduling path allocation-free. The same
// past-clamping as Schedule applies.
func (q *EventQueue) ScheduleCall(at Time, fn func(a, b int32), a, b int32) {
	q.push(at, nil, fn, a, b)
}

// After enqueues fn to run d after the current simulated time.
func (q *EventQueue) After(d Duration, fn func()) {
	q.Schedule(q.now.Add(d), fn)
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.heap) }

func (q *EventQueue) push(at Time, fire func(), call func(a, b int32), a, b int32) {
	if at < q.now {
		at = q.now
	}
	q.seq++
	var id int32
	if n := len(q.frees); n > 0 {
		id = q.frees[n-1]
		q.frees = q.frees[:n-1]
	} else {
		q.arena = append(q.arena, event{})
		id = int32(len(q.arena) - 1)
	}
	q.arena[id] = event{at: at, seq: q.seq, fire: fire, call: call, a: a, b: b}
	q.heap = append(q.heap, id)
	q.up(len(q.heap) - 1)
}

// Step fires the earliest pending event, advancing the clock. It
// reports false when no events remain.
func (q *EventQueue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	id := q.heap[0]
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap = q.heap[:n]
	if n > 0 {
		q.down(0)
	}
	ev := &q.arena[id]
	q.now = ev.at
	fire, call, a, b := ev.fire, ev.call, ev.a, ev.b
	// Drop the callback references and recycle the slot before firing:
	// completed events must not pin captured state, and the callback is
	// free to schedule into the slot it just vacated.
	ev.fire, ev.call = nil, nil
	q.frees = append(q.frees, id)
	if call != nil {
		call(a, b)
	} else {
		fire()
	}
	return true
}

// Run fires events until the queue drains or the clock passes horizon
// (horizon <= 0 means no horizon). It returns the final simulated time.
func (q *EventQueue) Run(horizon Time) Time {
	for len(q.heap) > 0 {
		if horizon > 0 && q.arena[q.heap[0]].at > horizon {
			q.now = horizon
			break
		}
		q.Step()
	}
	return q.now
}

// PendingEvent is one scheduled-but-unfired call-style event as seen
// by SnapshotPending: its absolute time and the two callback
// arguments. The insertion sequence stays unexported — snapshots are
// already emitted in firing order, and absolute sequence numbers would
// defeat the relative-state comparison snapshots exist for.
type PendingEvent struct {
	At   Time
	A, B int32

	seq int64
}

// SnapshotPending appends every pending call-style event to dst[:0] in
// deterministic firing order (time, then insertion sequence) and
// reports whether the snapshot is complete. A pending closure event
// (Schedule/After) has no inspectable identity, so its presence makes
// the queue unfingerprintable: the snapshot reports ok == false and
// the caller must not treat the queue as comparable. The returned
// slice aliases dst's backing array (grown as needed); a warm caller
// performs no allocations.
func (q *EventQueue) SnapshotPending(dst []PendingEvent) (out []PendingEvent, ok bool) {
	dst = dst[:0]
	for _, id := range q.heap {
		ev := &q.arena[id]
		if ev.fire != nil {
			return dst, false
		}
		dst = append(dst, PendingEvent{At: ev.at, A: ev.a, B: ev.b, seq: ev.seq})
	}
	// Insertion sort by (At, seq): pending counts are small (O(P) for
	// the simulator) and the heap emits them nearly ordered already.
	for i := 1; i < len(dst); i++ {
		e := dst[i]
		j := i - 1
		for j >= 0 && (dst[j].At > e.At || (dst[j].At == e.At && dst[j].seq > e.seq)) {
			dst[j+1] = dst[j]
			j--
		}
		dst[j+1] = e
	}
	return dst, true
}

// ShiftPending advances the simulated clock and every pending event by
// d, optionally rewriting each event's callback arguments. A uniform
// shift preserves the (time, sequence) order, so the heap stays valid
// and execution resumes exactly as if the skipped interval had been
// simulated event by event. This is the fast-forward primitive behind
// the simulator's steady-state cycle detection: once a deterministic
// schedule is known to be periodic, whole periods are applied
// arithmetically instead of fired.
func (q *EventQueue) ShiftPending(d Duration, rewrite func(a, b int32) (int32, int32)) {
	q.now = q.now.Add(d)
	for _, id := range q.heap {
		ev := &q.arena[id]
		ev.at = ev.at.Add(d)
		if rewrite != nil && ev.call != nil {
			ev.a, ev.b = rewrite(ev.a, ev.b)
		}
	}
}

// Reset returns the queue to its zero state while keeping the arena,
// heap and free-list capacity, so a pooled simulation can run again
// without reallocating. Pending events are discarded and their
// callbacks released.
func (q *EventQueue) Reset() {
	for i := range q.arena {
		q.arena[i].fire, q.arena[i].call = nil, nil
	}
	q.arena = q.arena[:0]
	q.frees = q.frees[:0]
	q.heap = q.heap[:0]
	q.seq = 0
	q.now = 0
}

// less orders arena slots by time, then insertion sequence.
func (q *EventQueue) less(x, y int32) bool {
	ex, ey := &q.arena[x], &q.arena[y]
	if ex.at != ey.at {
		return ex.at < ey.at
	}
	return ex.seq < ey.seq
}

// up restores the heap property from leaf i toward the root.
func (q *EventQueue) up(i int) {
	h := q.heap
	id := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(id, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = id
}

// down restores the heap property from node i toward the leaves.
func (q *EventQueue) down(i int) {
	h := q.heap
	n := len(h)
	id := h[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && q.less(h[r], h[l]) {
			c = r
		}
		if !q.less(h[c], id) {
			break
		}
		h[i] = h[c]
		i = c
	}
	h[i] = id
}
