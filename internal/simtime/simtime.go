// Package simtime provides the simulated-time primitives shared by the
// Varuna testbed, the parametric simulator, the spot-VM market and the
// manager. All simulated timing in this repository is expressed as
// integer microseconds so that event ordering is exact and every
// experiment is bit-reproducible.
package simtime

import (
	"fmt"
	"math/rand"
)

// Time is an absolute instant on the simulated clock, in microseconds
// since the start of the simulation.
type Time int64

// Duration is a span of simulated time in microseconds.
type Duration int64

// Common durations.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
	Hour        Duration = 60 * Minute
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the instant as fractional seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Hours reports the instant as fractional hours since simulation start.
func (t Time) Hours() float64 { return float64(t) / float64(Hour) }

// String formats the instant as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// Seconds reports the duration as fractional seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports the duration as fractional milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// String formats the duration using the most natural unit.
func (d Duration) String() string {
	switch {
	case d >= Hour:
		return fmt.Sprintf("%.2fh", float64(d)/float64(Hour))
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%dµs", int64(d))
	}
}

// FromSeconds converts fractional seconds to a Duration, rounding to
// the nearest microsecond.
func FromSeconds(s float64) Duration { return Duration(s*float64(Second) + 0.5) }

// FromMillis converts fractional milliseconds to a Duration.
func FromMillis(ms float64) Duration { return Duration(ms*float64(Millisecond) + 0.5) }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxDur returns the longer of a and b.
func MaxDur(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// Rand is a deterministic random source used for jitter and the spot
// market. It wraps math/rand with a fixed seed discipline so that two
// components never share a stream accidentally.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Intn returns a uniform value in [0, n).
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// NormFloat64 returns a standard normal sample.
func (r *Rand) NormFloat64() float64 { return r.r.NormFloat64() }

// ExpFloat64 returns an exponentially distributed sample with mean 1.
func (r *Rand) ExpFloat64() float64 { return r.r.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }

// Jitter returns d scaled by a non-negative multiplicative factor drawn
// from a truncated normal with the given coefficient of variation. A cv
// of 0 returns d unchanged. The result is never below d/2 so pathologic
// draws cannot make work complete unrealistically fast.
func (r *Rand) Jitter(d Duration, cv float64) Duration {
	if cv <= 0 || d <= 0 {
		return d
	}
	f := 1 + cv*r.NormFloat64()
	if f < 0.5 {
		f = 0.5
	}
	return Duration(float64(d)*f + 0.5)
}

// Exp returns an exponentially distributed duration with the given mean.
func (r *Rand) Exp(mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	return Duration(float64(mean)*r.ExpFloat64() + 0.5)
}
