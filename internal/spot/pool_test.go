package spot

import (
	"testing"

	"repro/internal/simtime"
)

// legacyEventTrace is a frozen copy of the pre-Pool EventTrace body:
// the reference the driven pool is pinned against. Any drift in the
// per-tick rng discipline (draw order, attempt cap, hazard scaling)
// breaks the single-job parity goldens, so it fails here first with a
// pointed message.
func legacyEventTrace(mk *Market, target int, horizon, probe simtime.Duration) []Event {
	var out []Event
	nextVM := 0
	live := make(map[int]bool)
	var order []int
	runProbeLoop(horizon, probe, func(t simtime.Time) {
		haz := mk.PreemptionHazard(t) * probe.Seconds() / 3600
		for i := 0; i < len(order); i++ {
			id := order[i]
			if !live[id] {
				continue
			}
			if mk.rng.Float64() < haz {
				mk.Release()
				live[id] = false
				out = append(out, Event{At: t, Kind: Preempt, VM: id, GPUs: mk.GPUsPerVM})
			}
		}
		for i := 0; i < 8 && mk.held < target; i++ {
			if !mk.TryAllocate(t) {
				break
			}
			id := nextVM
			nextVM++
			live[id] = true
			order = append(order, id)
			out = append(out, Event{At: t, Kind: Alloc, VM: id, GPUs: mk.GPUsPerVM})
		}
	})
	return out
}

func TestPoolMatchesLegacyEventTrace(t *testing.T) {
	for _, tc := range []struct {
		gpusPerVM, base, target int
		seed                    int64
	}{
		{1, 120, 150, 55},
		{4, 200, 300, 42},
		{1, 400, 1200, 77},
	} {
		want := legacyEventTrace(NewMarket(tc.gpusPerVM, tc.base, tc.seed),
			tc.target, 24*simtime.Hour, 10*simtime.Minute)
		got := EventTrace(NewMarket(tc.gpusPerVM, tc.base, tc.seed),
			tc.target, 24*simtime.Hour, 10*simtime.Minute)
		if len(got) != len(want) {
			t.Fatalf("seed %d: pool trace has %d events, legacy %d", tc.seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: event %d diverged: pool %v, legacy %v", tc.seed, i, got[i], want[i])
			}
		}
	}
}

func TestPoolKillFeedsBackIntoMarket(t *testing.T) {
	mk := NewMarket(1, 120, 9)
	p := NewPool(mk, 150)
	var live map[int]bool
	// Tick until some VMs exist.
	tick := simtime.Time(0)
	for p.Held() == 0 {
		tick = tick.Add(10 * simtime.Minute)
		p.Tick(tick, 10*simtime.Minute)
	}
	ids := p.LiveIDs()
	if len(ids) == 0 {
		t.Fatal("held > 0 but no live ids")
	}
	held := p.Held()
	if !p.Kill(ids[0]) {
		t.Fatal("killing a live VM must succeed")
	}
	if p.Held() != held-mk.GPUsPerVM {
		t.Fatalf("kill must return capacity: held %d, want %d", p.Held(), held-mk.GPUsPerVM)
	}
	if p.Kill(ids[0]) {
		t.Fatal("killing a dead VM must be a no-op")
	}
	// The killed VM never reappears in LiveIDs and is never re-preempted
	// by subsequent ticks.
	for i := 0; i < 200; i++ {
		tick = tick.Add(10 * simtime.Minute)
		for _, ev := range p.Tick(tick, 10*simtime.Minute) {
			if ev.Kind == Preempt && ev.VM == ids[0] {
				t.Fatal("killed VM preempted again by the market")
			}
		}
	}
	live = make(map[int]bool)
	for _, id := range p.LiveIDs() {
		live[id] = true
	}
	if live[ids[0]] {
		t.Fatal("killed VM still listed live")
	}
}

func TestPoolTargetDrivesGrowth(t *testing.T) {
	mk := NewMarket(1, 200, 3)
	p := NewPool(mk, 5)
	tick := simtime.Time(0)
	for i := 0; i < 100; i++ {
		tick = tick.Add(10 * simtime.Minute)
		p.Tick(tick, 10*simtime.Minute)
		if p.Held() > 5 {
			t.Fatalf("pool grew past its target: held %d > 5", p.Held())
		}
	}
	if p.Target() != 5 {
		t.Fatalf("Target() = %d", p.Target())
	}
	p.SetTarget(120)
	peak := 0
	for i := 0; i < 100; i++ {
		tick = tick.Add(10 * simtime.Minute)
		p.Tick(tick, 10*simtime.Minute)
		if p.Held() > peak {
			peak = p.Held()
		}
	}
	if peak <= 5 {
		t.Fatalf("raising the target must let the pool grow: peak held %d", peak)
	}
}

func TestPoolLiveInDomain(t *testing.T) {
	mk := NewMarket(1, 200, 7)
	p := NewPool(mk, 40)
	tick := simtime.Time(0)
	for i := 0; i < 50; i++ {
		tick = tick.Add(10 * simtime.Minute)
		p.Tick(tick, 10*simtime.Minute)
	}
	const zones = 4
	all := p.LiveIDs()
	if len(all) == 0 {
		t.Fatal("pool never grew")
	}
	seen := map[int]bool{}
	for zone := 0; zone < zones; zone++ {
		for _, id := range p.LiveInDomain(zones, zone) {
			if id%zones != zone {
				t.Fatalf("vm%d listed in zone %d", id, zone)
			}
			if seen[id] {
				t.Fatalf("vm%d listed in two zones", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != len(all) {
		t.Fatalf("zones partition %d of %d live VMs", len(seen), len(all))
	}
	// Flat pool: zone 0 is everything, other zones empty.
	if got := p.LiveInDomain(0, 0); len(got) != len(all) {
		t.Fatalf("flat zone 0 lists %d of %d", len(got), len(all))
	}
	if got := p.LiveInDomain(1, 3); got != nil {
		t.Fatalf("flat nonzero zone must be empty, got %v", got)
	}
}
