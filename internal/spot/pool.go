package spot

import "repro/internal/simtime"

// Pool is the driven form of the spot market: instead of pregenerating
// a whole event trace up front (EventTrace), a Pool advances one probe
// tick at a time and reports the allocations and preemptions that tick
// produced. This is what lets a control plane sit *inside* the
// simulated timeline — the fleet arbiter ticks the pool at its probe
// cadence on the shared event queue, reacts to what the market did,
// and can return reclaimed or released capacity to circulation instead
// of treating every release as a one-way door.
//
// The per-tick discipline is exactly EventTrace's: every ever-granted
// VM draws against the preemption hazard in allocation order, then up
// to eight allocation attempts run while the pool holds fewer GPUs
// than its target. A Pool driven tick-by-tick therefore consumes the
// market's random stream identically to EventTrace — the property the
// single-job parity goldens pin.
type Pool struct {
	mk     *Market
	target int

	nextVM int
	live   map[int]bool
	order  []int
}

// NewPool wraps a market into a driven pool that grows toward target
// GPUs. The pool assumes it is the market's only client: it owns the
// market's held count and random stream.
func NewPool(mk *Market, target int) *Pool {
	return &Pool{mk: mk, target: target, live: make(map[int]bool)}
}

// Market exposes the underlying market (price curve, hazard model).
func (p *Pool) Market() *Market { return p.mk }

// Target reports the GPU count the pool grows toward.
func (p *Pool) Target() int { return p.target }

// SetTarget changes the GPU count the pool grows toward from the next
// tick on.
func (p *Pool) SetTarget(gpus int) { p.target = gpus }

// Held reports the GPUs the pool currently holds from the market.
func (p *Pool) Held() int { return p.mk.held }

// LiveIDs lists the currently-held VM ids in allocation order — the
// deterministic iteration order scripted reclaims pick victims from.
func (p *Pool) LiveIDs() []int {
	ids := make([]int, 0, len(p.order))
	for _, id := range p.order {
		if p.live[id] {
			ids = append(ids, id)
		}
	}
	return ids
}

// LiveInDomain lists the currently-held VM ids mapped to the given
// zone under round-robin placement (id % zones), in allocation order —
// the victim set of a zone outage. zones <= 1 means a flat pool, where
// zone 0 is everything.
func (p *Pool) LiveInDomain(zones, zone int) []int {
	if zones <= 1 {
		if zone == 0 {
			return p.LiveIDs()
		}
		return nil
	}
	var ids []int
	for _, id := range p.order {
		if p.live[id] && id%zones == zone {
			ids = append(ids, id)
		}
	}
	return ids
}

// Tick advances the pool by one probe interval ending at t: held VMs
// draw against the preemption hazard in allocation order, then the
// pool attempts to grow toward its target. It returns the fleet events
// the tick produced, in market order (preemptions before allocations).
func (p *Pool) Tick(t simtime.Time, probe simtime.Duration) []Event {
	var out []Event
	haz := p.mk.PreemptionHazard(t) * probe.Seconds() / 3600
	for i := 0; i < len(p.order); i++ {
		id := p.order[i]
		if !p.live[id] {
			continue
		}
		if p.mk.rng.Float64() < haz {
			p.mk.Release()
			p.live[id] = false
			out = append(out, Event{At: t, Kind: Preempt, VM: id, GPUs: p.mk.GPUsPerVM})
		}
	}
	for i := 0; i < 8 && p.mk.held < p.target; i++ {
		if !p.mk.TryAllocate(t) {
			break
		}
		id := p.nextVM
		p.nextVM++
		p.live[id] = true
		p.order = append(p.order, id)
		out = append(out, Event{At: t, Kind: Alloc, VM: id, GPUs: p.mk.GPUsPerVM})
	}
	return out
}

// Kill reclaims one named VM out of band (a scripted mass-preemption,
// an operator action): the VM leaves the live set and its capacity
// returns to the market, shifting subsequent hazard and allocation
// odds — the pool is driven, so injected events feed back into the
// market instead of being spliced into a pregenerated trace. It
// reports whether the VM was live.
func (p *Pool) Kill(vm int) bool {
	if !p.live[vm] {
		return false
	}
	p.live[vm] = false
	p.mk.Release()
	return true
}
