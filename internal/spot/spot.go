// Package spot simulates the low-priority VM market the paper trains
// on: VM allocations that succeed or fail depending on spare capacity,
// and running VMs that are preempted when the provider reclaims them.
// It generates the availability dynamics behind Figure 3 (1-GPU VMs are
// more readily available than 4-GPU VMs) and the 60-hour trace behind
// Figure 8.
//
// The market is a birth–death process over a hidden spare-capacity pool
// that drifts on a multi-hour cycle (datacenter load varies by time of
// day). Multi-GPU VMs require contiguous capacity, so their allocation
// success probability falls much faster as the pool tightens — the
// observed mechanism for Observation 4.
package spot

import (
	"fmt"
	"math"

	"repro/internal/price"
	"repro/internal/simtime"
)

// Market models spot capacity for one VM size in one region.
type Market struct {
	// GPUsPerVM is the VM size (1 or 4 in the paper).
	GPUsPerVM int
	// BaseCapacity is the average number of spare GPUs.
	BaseCapacity int
	// CycleAmplitude is the fraction of BaseCapacity that the
	// spare pool swings over a load cycle.
	CycleAmplitude float64
	// CyclePeriod is the load-cycle length (default 8h).
	CyclePeriod simtime.Duration
	// MeanHold is the average time a granted VM survives before
	// preemption pressure applies (preemptions are more likely when
	// the pool is tight).
	MeanHold simtime.Duration
	// Prices is the market's spot price curve in dollars per
	// GPU-hour. Nil means unpriced — availability dynamics only, the
	// pre-dollar behavior. core.Job.RunOnSpotMarketOpts forwards a
	// market's curve into the manager's cost accounting when the
	// caller didn't supply one explicitly.
	Prices *price.Curve

	rng  *simtime.Rand
	held int // GPUs currently granted to us
}

// NewMarket builds a market with the given spare pool and seed.
func NewMarket(gpusPerVM, baseCapacity int, seed int64) *Market {
	return &Market{
		GPUsPerVM:      gpusPerVM,
		BaseCapacity:   baseCapacity,
		CycleAmplitude: 0.6,
		CyclePeriod:    8 * simtime.Hour,
		MeanHold:       4 * simtime.Hour,
		rng:            simtime.NewRand(seed),
	}
}

// spareAt reports the (fractional) spare GPU pool at time t, excluding
// what we already hold.
func (mk *Market) spareAt(t simtime.Time) float64 {
	phase := 2 * math.Pi * float64(t) / float64(mk.CyclePeriod)
	spare := float64(mk.BaseCapacity) * (1 + mk.CycleAmplitude*math.Sin(phase))
	return spare - float64(mk.held)
}

// TryAllocate attempts to allocate one VM at time t. Multi-GPU VMs need
// contiguous free capacity: the success probability is the single-GPU
// probability raised to the VM size, matching the empirically much
// poorer availability of 4-GPU VMs (Figure 3).
func (mk *Market) TryAllocate(t simtime.Time) bool {
	spare := mk.spareAt(t)
	if spare < float64(mk.GPUsPerVM) {
		return false
	}
	// Probability a single GPU slot is free, saturating with slack;
	// a k-GPU VM needs k contiguous slots on one host, so its success
	// probability decays geometrically in the VM size.
	pOne := 1 - math.Exp(-spare/float64(mk.BaseCapacity))
	p := math.Pow(pOne, float64(mk.GPUsPerVM))
	if mk.rng.Float64() >= p {
		return false
	}
	mk.held += mk.GPUsPerVM
	return true
}

// Release returns one VM to the pool (voluntary teardown).
func (mk *Market) Release() {
	if mk.held >= mk.GPUsPerVM {
		mk.held -= mk.GPUsPerVM
	}
}

// PreemptionHazard reports the per-hour probability that a given held
// VM is preempted at time t: baseline churn plus capacity pressure when
// the pool is tight.
func (mk *Market) PreemptionHazard(t simtime.Time) float64 {
	base := float64(simtime.Hour) / float64(mk.MeanHold)
	spare := mk.spareAt(t)
	if spare < 0 {
		spare = 0
	}
	pressure := math.Exp(-spare / (0.3 * float64(mk.BaseCapacity)))
	// Larger VMs are reclaimed preferentially: evicting one frees a
	// whole contiguous block for a dedicated customer.
	size := 1 + 0.25*float64(mk.GPUsPerVM-1)
	return base * (0.3 + 2.7*pressure) * size
}

// Held reports the GPUs currently allocated from this market.
func (mk *Market) Held() int { return mk.held }

// ExpectedNextEvent reports the analytic expected time until the next
// fleet event for a job holding vms VMs at time t: the superposition
// of the per-VM preemption hazards. It is the market's own estimate of
// the stable-window length a reconfiguration's cost must amortize over
// — the horizon the morph-or-hold decision discounts throughput gains
// by. Allocation arrivals shorten real windows further, so this is an
// optimistic (upper) bound; the manager's empirical GapEstimator
// tracks the realized gaps instead.
func (mk *Market) ExpectedNextEvent(t simtime.Time, vms int) simtime.Duration {
	if vms < 1 {
		vms = 1
	}
	perHour := mk.PreemptionHazard(t) * float64(vms)
	if perHour <= 0 {
		return mk.MeanHold
	}
	return simtime.Duration(float64(simtime.Hour) / perHour)
}

// GapEstimator tracks the observed inter-arrival gaps of fleet events
// (allocations and preemptions, batched per instant) as an EWMA. The
// §4.6 manager feeds it every fleet change it applies and reads back
// the expected time to the next one — the spot-derived horizon of each
// morph-or-hold decision. Deterministic: the estimate is a pure
// function of the observed event times.
//
// Beyond the kind-agnostic overall gap, ObserveKind maintains one EWMA
// hazard per event kind. Allocations and preemptions have very
// different dynamics on a spot market — allocations trickle in as the
// probe loop fills toward the target, while preemptions cluster when
// the provider reclaims capacity (the bursty reclaim behind Figure 8's
// worst segments) — so a single pooled gap both overstates the window
// after a preemption and understates it after an allocation. NextKind
// projects which kind arrives next from the per-kind tracks; the
// manager passes that forecast into the morph-or-hold decision, which
// holds more aggressively when the next expected event is another
// preemption.
type GapEstimator struct {
	// Alpha is the EWMA weight of the newest gap (0 < Alpha <= 1).
	Alpha float64
	// Prior seeds the estimate before two events have been seen.
	Prior simtime.Duration

	last    simtime.Time
	haveOne bool
	mean    float64
	n       int

	kinds [2]kindTrack
}

// kindTrack is the per-kind EWMA: gaps between successive events of
// one kind.
type kindTrack struct {
	last    simtime.Time
	haveOne bool
	mean    float64
	n       int
}

// NewGapEstimator builds an estimator with the given prior and the
// default smoothing (alpha 0.25: responsive to load-cycle swings,
// stable against one-off bursts).
func NewGapEstimator(prior simtime.Duration) *GapEstimator {
	return &GapEstimator{Alpha: 0.25, Prior: prior}
}

// Observe records that a fleet event (or a batch of simultaneous
// events) happened at t. Repeated observations at the same instant
// collapse into one.
func (e *GapEstimator) Observe(t simtime.Time) {
	if e.haveOne && t == e.last {
		return
	}
	if e.haveOne {
		gap := float64(t.Sub(e.last))
		if e.n == 0 {
			e.mean = gap
		} else {
			e.mean += e.Alpha * (gap - e.mean)
		}
		e.n++
	}
	e.last = t
	e.haveOne = true
}

// ObserveKind records a fleet event of a known kind at t: the overall
// gap track updates exactly as Observe does, and the event additionally
// feeds the per-kind EWMA (gaps between successive events of the same
// kind, batched per instant like the overall track).
func (e *GapEstimator) ObserveKind(t simtime.Time, kind EventKind) {
	e.Observe(t)
	k := &e.kinds[kind]
	if k.haveOne && t == k.last {
		return
	}
	if k.haveOne {
		gap := float64(t.Sub(k.last))
		if k.n == 0 {
			k.mean = gap
		} else {
			k.mean += e.Alpha * (gap - k.mean)
		}
		k.n++
	}
	k.last = t
	k.haveOne = true
}

// Expected reports the estimated time to the next fleet event: the
// EWMA of observed gaps, or the prior before any gap has been seen.
func (e *GapEstimator) Expected() simtime.Duration {
	if e.n == 0 {
		return e.Prior
	}
	return simtime.Duration(e.mean + 0.5)
}

// ExpectedOf reports the estimated gap between successive events of
// one kind — the inverse of that kind's EWMA hazard — or the prior
// before two events of the kind have been seen.
func (e *GapEstimator) ExpectedOf(kind EventKind) simtime.Duration {
	k := &e.kinds[kind]
	if k.n == 0 {
		return e.Prior
	}
	return simtime.Duration(k.mean + 0.5)
}

// NextKind projects which kind of fleet event arrives next: each
// kind's next arrival is extrapolated as its last occurrence plus its
// EWMA gap, and the earlier projection wins (ties go to Preempt, the
// conservative answer). It reports ok == false until at least one kind
// has an observed gap to project from.
func (e *GapEstimator) NextKind() (kind EventKind, ok bool) {
	best := simtime.Time(0)
	for i := range e.kinds {
		k := &e.kinds[i]
		if k.n == 0 {
			continue
		}
		at := k.last.Add(simtime.Duration(k.mean + 0.5))
		if !ok || at < best || (at == best && EventKind(i) == Preempt) {
			best, kind, ok = at, EventKind(i), true
		}
	}
	return kind, ok
}

// Observations reports how many gaps the estimate is built on.
func (e *GapEstimator) Observations() int { return e.n }

// KindObservations reports how many same-kind gaps back ExpectedOf for
// the given kind.
func (e *GapEstimator) KindObservations(kind EventKind) int { return e.kinds[kind].n }

// KindFor bridges this market's observed economics into a price.Kind
// for ChooseMarket: the market's price curve plus the preemption gap
// the estimator measured from a real event stream (falling back to
// the market's analytic hazard at time 0 before any preemption gap
// has been observed). exPerSec is the job's steady-state throughput
// on a gpus-GPU fleet of this kind and restartCost the expected
// downtime-plus-rollback paid per preemption (restart.Model pricing).
func (mk *Market) KindFor(name string, gpus int, exPerSec float64, gaps *GapEstimator, restartCost simtime.Duration) price.Kind {
	vms := (gpus + mk.GPUsPerVM - 1) / mk.GPUsPerVM
	preemptEvery := mk.ExpectedNextEvent(0, vms)
	if gaps != nil && gaps.KindObservations(Preempt) > 0 {
		preemptEvery = gaps.ExpectedOf(Preempt)
	}
	return price.Kind{
		Name:         name,
		Curve:        mk.Prices,
		GPUs:         gpus,
		ExPerSec:     exPerSec,
		PreemptEvery: preemptEvery,
		RestartCost:  restartCost,
	}
}

// Sample is one point of an availability trace.
type Sample struct {
	At   simtime.Time
	GPUs int
}

// probeLoop drives a market probe cadence through the simulated event
// queue, keeping the market on the same clock machinery as the rest
// of the system: body runs once per probe interval from time 0
// through horizon inclusive. The tick callback is bound once and
// rescheduled through the queue's ScheduleCall path, so a multi-day
// trace generates no per-tick closures.
type probeLoop struct {
	hz     simtime.Time
	probe  simtime.Duration
	q      simtime.EventQueue
	onTick func(a, b int32)
	body   func(t simtime.Time)
}

func runProbeLoop(horizon, probe simtime.Duration, body func(t simtime.Time)) {
	l := &probeLoop{hz: simtime.Time(horizon), probe: probe, body: body}
	l.onTick = l.tick
	l.q.ScheduleCall(0, l.onTick, 0, 0)
	l.q.Run(0)
}

func (l *probeLoop) tick(int32, int32) {
	t := l.q.Now()
	l.body(t)
	if next := t.Add(l.probe); next <= l.hz {
		l.q.ScheduleCall(next, l.onTick, 0, 0)
	}
}

// AvailabilityTrace reproduces the Figure 3 experiment: request and
// release VMs alternately at the given probe interval for the given
// duration, recording aggregate GPUs held. The probe loop continually
// tries to grow toward target GPUs and random preemptions shrink it.
func AvailabilityTrace(mk *Market, target int, horizon simtime.Duration, probe simtime.Duration) []Trace {
	var out []Trace
	runProbeLoop(horizon, probe, func(t simtime.Time) {
		// Preempt each held VM independently.
		haz := mk.PreemptionHazard(t) * probe.Seconds() / 3600
		vms := mk.held / mk.GPUsPerVM
		for v := 0; v < vms; v++ {
			if mk.rng.Float64() < haz {
				mk.Release()
			}
		}
		// Grow toward the target, a few attempts per probe.
		for i := 0; i < 8 && mk.held < target; i++ {
			if !mk.TryAllocate(t) {
				break
			}
		}
		out = append(out, Trace{At: t, GPUs: mk.held})
	})
	return out
}

// Trace is one point of an availability trace.
type Trace struct {
	At   simtime.Time
	GPUs int
}

// EventKind labels a fleet change.
type EventKind int

// Fleet change kinds.
const (
	Alloc EventKind = iota
	Preempt
)

// String names the event kind.
func (k EventKind) String() string {
	if k == Alloc {
		return "alloc"
	}
	return "preempt"
}

// Event is one allocation or preemption affecting a named VM.
type Event struct {
	At   simtime.Time
	Kind EventKind
	// VM is the market-assigned VM identifier.
	VM int
	// GPUs is the VM's GPU count.
	GPUs int
	// Cause carries the obs.SpanID of the span that produced this
	// event (a market reclaim, an arbiter lease or revocation), so the
	// consumer's own spans can parent to it and the exported trace
	// connects market tick → arbiter cascade → manager preemption
	// causally. Zero (untraced) everywhere tracing is off; the field
	// is deliberately a plain int64 so spot does not depend on obs.
	Cause int64
}

// String formats the event.
func (e Event) String() string {
	return fmt.Sprintf("%v %s vm%d(%dgpu)", e.At, e.Kind, e.VM, e.GPUs)
}

// EventTrace generates a full allocation/preemption event stream for a
// job that keeps trying to hold target GPUs over the horizon — the
// input the Varuna manager consumes (Figure 8's 60-hour run). It is a
// Pool driven through every probe tick up front: the pregenerated
// trace and the tick-by-tick arbiter path consume the market's random
// stream identically.
func EventTrace(mk *Market, target int, horizon simtime.Duration, probe simtime.Duration) []Event {
	var out []Event
	p := NewPool(mk, target)
	runProbeLoop(horizon, probe, func(t simtime.Time) {
		out = append(out, p.Tick(t, probe)...)
	})
	return out
}
