package spot

import (
	"testing"

	"repro/internal/simtime"
)

func TestSingleGPUMoreAvailable(t *testing.T) {
	// Figure 3 / Observation 4: aggregate capacity from 1-GPU VMs
	// materially exceeds what 4-GPU VMs yield over a 16-hour window.
	one := NewMarket(1, 200, 42)
	four := NewMarket(4, 200, 42)
	horizon, probe := 16*simtime.Hour, 5*simtime.Minute
	target := 300
	avg := func(tr []Trace) float64 {
		var sum float64
		for _, s := range tr {
			sum += float64(s.GPUs)
		}
		return sum / float64(len(tr))
	}
	a1 := avg(AvailabilityTrace(one, target, horizon, probe))
	a4 := avg(AvailabilityTrace(four, target, horizon, probe))
	if a1 <= a4*1.2 {
		t.Fatalf("1-GPU avg %.1f must exceed 4-GPU avg %.1f by >20%%", a1, a4)
	}
	if a1 <= 0 || a4 <= 0 {
		t.Fatal("markets must yield some capacity")
	}
}

func TestTryAllocateRespectsCapacity(t *testing.T) {
	mk := NewMarket(4, 12, 1)
	// Exhaust the pool; held can never exceed what the pool supports.
	for i := 0; i < 100; i++ {
		mk.TryAllocate(0)
	}
	if mk.Held() > 12*2 { // pool swings with amplitude but never 100 VMs
		t.Fatalf("held %d exceeds any plausible capacity", mk.Held())
	}
	// Releases return capacity.
	h := mk.Held()
	if h >= 4 {
		mk.Release()
		if mk.Held() != h-4 {
			t.Fatal("release must return one VM")
		}
	}
	// Releasing below zero is a no-op.
	for i := 0; i < 100; i++ {
		mk.Release()
	}
	if mk.Held() != 0 {
		t.Fatalf("held = %d after mass release", mk.Held())
	}
	mk.Release()
	if mk.Held() != 0 {
		t.Fatal("release at zero must be a no-op")
	}
}

func TestPreemptionHazardPressure(t *testing.T) {
	mk := NewMarket(1, 100, 1)
	// Hold most of the pool: hazard must rise.
	loose := mk.PreemptionHazard(0)
	for i := 0; i < 90; i++ {
		mk.held++
	}
	tight := mk.PreemptionHazard(0)
	if tight <= loose {
		t.Fatalf("hazard must rise under pressure: %.4f vs %.4f", tight, loose)
	}
	if loose <= 0 {
		t.Fatal("baseline hazard must be positive")
	}
}

func TestAvailabilityTraceShape(t *testing.T) {
	mk := NewMarket(1, 150, 7)
	tr := AvailabilityTrace(mk, 200, 16*simtime.Hour, 5*simtime.Minute)
	if len(tr) != int(16*60/5)+1 {
		t.Fatalf("trace has %d samples", len(tr))
	}
	// Time is monotone; capacity varies (a flat trace means the market
	// dynamics are dead).
	varies := false
	for i := 1; i < len(tr); i++ {
		if tr[i].At <= tr[i-1].At {
			t.Fatal("trace times must increase")
		}
		if tr[i].GPUs != tr[i-1].GPUs {
			varies = true
		}
	}
	if !varies {
		t.Fatal("availability never changed over 16 hours")
	}
}

func TestEventTraceConsistency(t *testing.T) {
	mk := NewMarket(1, 120, 9)
	events := EventTrace(mk, 150, 60*simtime.Hour, 10*simtime.Minute)
	if len(events) == 0 {
		t.Fatal("no events over 60 hours")
	}
	live := make(map[int]bool)
	var preempts int
	for _, e := range events {
		switch e.Kind {
		case Alloc:
			if live[e.VM] {
				t.Fatalf("VM %d allocated twice", e.VM)
			}
			live[e.VM] = true
		case Preempt:
			if !live[e.VM] {
				t.Fatalf("VM %d preempted while not live", e.VM)
			}
			live[e.VM] = false
			preempts++
		}
	}
	if preempts == 0 {
		t.Fatal("a 60-hour spot trace must contain preemptions")
	}
	// Determinism.
	mk2 := NewMarket(1, 120, 9)
	events2 := EventTrace(mk2, 150, 60*simtime.Hour, 10*simtime.Minute)
	if len(events2) != len(events) {
		t.Fatal("same seed must give the same trace")
	}
}

func TestEventKindString(t *testing.T) {
	if Alloc.String() != "alloc" || Preempt.String() != "preempt" {
		t.Fatal("event kind names")
	}
	e := Event{At: simtime.Time(simtime.Hour), Kind: Preempt, VM: 3, GPUs: 4}
	if e.String() == "" {
		t.Fatal("event string empty")
	}
}

func TestGapEstimator(t *testing.T) {
	e := NewGapEstimator(30 * simtime.Minute)
	if e.Expected() != 30*simtime.Minute {
		t.Fatalf("no observations must return the prior, got %v", e.Expected())
	}
	// Simultaneous events collapse into one observation.
	e.Observe(0)
	e.Observe(0)
	if e.Observations() != 0 || e.Expected() != 30*simtime.Minute {
		t.Fatalf("one instant is no gap: n=%d expected=%v", e.Observations(), e.Expected())
	}
	// A steady 10-minute cadence converges to a 10-minute estimate.
	for i := 1; i <= 50; i++ {
		e.Observe(simtime.Time(i) * simtime.Time(10*simtime.Minute))
	}
	if e.Observations() != 50 {
		t.Fatalf("observations = %d, want 50", e.Observations())
	}
	got := e.Expected()
	if got != 10*simtime.Minute {
		t.Fatalf("constant 10min gaps must estimate exactly 10min, got %v", got)
	}
	// A burst of rapid events pulls the estimate down, but EWMA keeps
	// it above the raw burst gap.
	last := simtime.Time(50) * simtime.Time(10*simtime.Minute)
	for i := 1; i <= 5; i++ {
		e.Observe(last.Add(simtime.Duration(i) * simtime.Minute))
	}
	after := e.Expected()
	if after >= got || after <= simtime.Minute {
		t.Fatalf("burst must pull %v below %v but stay above the 1min gap", after, got)
	}
}

func TestExpectedNextEvent(t *testing.T) {
	mk := NewMarket(1, 200, 7)
	one := mk.ExpectedNextEvent(0, 1)
	if one <= 0 {
		t.Fatalf("expected next event %v must be positive", one)
	}
	hundred := mk.ExpectedNextEvent(0, 100)
	if hundred >= one {
		t.Fatalf("100 VMs (%v) must see events sooner than 1 VM (%v)", hundred, one)
	}
	// Superposition: n times the hazard means 1/n the wait.
	if ratio := float64(one) / float64(hundred); ratio < 99 || ratio > 101 {
		t.Fatalf("hazard superposition off: ratio %.2f, want ~100", ratio)
	}
	if mk.ExpectedNextEvent(0, 0) != one {
		t.Fatal("vms < 1 must clamp to 1")
	}
}

// TestGapEstimatorPerKindBursty feeds the estimator the bursty regime
// the per-kind hazards exist for: allocations arriving on a slow
// steady cadence and preemptions clustering in a rapid burst. The
// pooled estimate blurs the two; the per-kind tracks must separate
// them, and the next-event projection must call the burst.
func TestGapEstimatorPerKindBursty(t *testing.T) {
	e := NewGapEstimator(30 * simtime.Minute)
	if _, ok := e.NextKind(); ok {
		t.Fatal("NextKind must not project before any per-kind gap exists")
	}
	// Steady allocations: one every hour for ten hours.
	for i := 0; i <= 10; i++ {
		e.ObserveKind(simtime.Time(i)*simtime.Time(simtime.Hour), Alloc)
	}
	// A reclaim burst: preemptions every 2 minutes starting at 10h30m.
	burst := simtime.Time(10*simtime.Hour + 30*simtime.Minute)
	for i := 0; i < 6; i++ {
		e.ObserveKind(burst.Add(simtime.Duration(i)*2*simtime.Minute), Preempt)
	}
	allocGap := e.ExpectedOf(Alloc)
	preGap := e.ExpectedOf(Preempt)
	if allocGap != simtime.Hour {
		t.Fatalf("steady hourly allocations must estimate exactly 1h, got %v", allocGap)
	}
	if preGap != 2*simtime.Minute {
		t.Fatalf("a 2-minute preemption burst must estimate exactly 2min, got %v", preGap)
	}
	if e.KindObservations(Alloc) != 10 || e.KindObservations(Preempt) != 5 {
		t.Fatalf("kind observations = %d/%d, want 10/5",
			e.KindObservations(Alloc), e.KindObservations(Preempt))
	}
	// Mid-burst, the next event is another preemption: the preemption
	// track projects minutes out while the alloc track projects on its
	// hourly cadence.
	k, ok := e.NextKind()
	if !ok || k != Preempt {
		t.Fatalf("mid-burst NextKind = %v, %v; want Preempt", k, ok)
	}
	// The pooled estimate is dragged far below the alloc cadence by the
	// burst — exactly the blur the per-kind hazards avoid.
	if pooled := e.Expected(); pooled >= allocGap {
		t.Fatalf("pooled estimate %v should sit below the alloc cadence %v", pooled, allocGap)
	}
	// Same-instant duplicates collapse per kind too.
	before := e.KindObservations(Preempt)
	lastPre := burst.Add(5 * 2 * simtime.Minute)
	e.ObserveKind(lastPre, Preempt)
	if e.KindObservations(Preempt) != before {
		t.Fatal("same-instant same-kind observation must collapse")
	}
	// After a long quiet spell the alloc track, projecting from its
	// later cadence, wins again once an allocation resumes the rhythm.
	e.ObserveKind(simtime.Time(11)*simtime.Time(simtime.Hour), Alloc)
	k, ok = e.NextKind()
	if !ok {
		t.Fatal("NextKind lost its projection")
	}
	// Preemption track still projects from the stale burst (10h40m +
	// 2min, long past), alloc projects 12h: the projection floor is the
	// event time, so the stale-but-past preempt projection still wins.
	// This conservatism is intentional — assert it so a future change
	// is a conscious one.
	if k != Preempt {
		t.Fatalf("stale burst projection should still win conservatively, got %v", k)
	}
}
