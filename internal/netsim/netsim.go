// Package netsim models the network fabric between GPUs: point-to-point
// activation/gradient transfers with latency and jitter, and ring
// allreduce for data-parallel gradient synchronization. The allreduce
// model is the bandwidth-optimal ring (Patarasuk & Yuan): each member
// sends and receives 2·(D−1)/D of the payload, in 2·(D−1) latency-bound
// steps. Concurrent allreduces sharing a NIC contend for bandwidth,
// which is the k-in-flight effect Varuna's calibration measures (§4.3).
package netsim

import (
	"math"

	"repro/internal/hw"
	"repro/internal/simtime"
)

// RingStragglerFactor is the expected slowdown of a synchronized ring
// step across d members whose per-hop times jitter with coefficient of
// variation cv: every step completes at the pace of its slowest hop,
// and the expected maximum of d roughly-normal samples sits near
// mean·(1 + cv·√(2·ln d)). This is why data-parallel allreduce scales
// poorly in D on commodity networks — the pressure behind Varuna's
// deep-pipeline preference at large G (Observation 2).
func RingStragglerFactor(d int, cv float64) float64 {
	if d < 2 || cv <= 0 {
		return 1
	}
	return 1 + cv*math.Sqrt(2*math.Log(float64(d)))
}

// Fabric evaluates transfer times over a set of links.
type Fabric struct {
	// Contention multiplies serialization time on shared links to
	// account for oversubscribed datacenter switches between
	// arbitrarily-placed spot VMs. 1.0 = no contention.
	Contention float64
}

// New returns a fabric with the given switch-contention factor.
func New(contention float64) Fabric {
	if contention < 1 {
		contention = 1
	}
	return Fabric{Contention: contention}
}

// serialization reports the byte-time of moving n bytes over l.
func (f Fabric) serialization(n int64, l hw.Link) simtime.Duration {
	if n <= 0 {
		return 0
	}
	sec := float64(n) / l.BandwidthBps
	if l.Kind == hw.LinkEthernet {
		sec *= f.Contention
	}
	return simtime.FromSeconds(sec)
}

// PointToPoint reports the mean time to move n bytes over l: one-way
// latency plus serialization. Jitter is applied by the caller (the
// testbed samples it per transfer; the parametric simulator folds in
// the calibrated mean+jitter).
func (f Fabric) PointToPoint(n int64, l hw.Link) simtime.Duration {
	return l.Latency + f.serialization(n, l)
}

// AllReduce reports the time for a ring allreduce of n bytes per member
// over a ring of d members joined by link l, with inFlight concurrent
// allreduces sharing each NIC (Varuna's calibration runs k allreduces
// in flight where k is GPUs per node, §4.3).
func (f Fabric) AllReduce(n int64, d int, l hw.Link, inFlight int) simtime.Duration {
	if d <= 1 || n <= 0 {
		return 0
	}
	if inFlight < 1 {
		inFlight = 1
	}
	steps := 2 * (d - 1)
	wire := int64(float64(n) * 2 * float64(d-1) / float64(d))
	t := simtime.Duration(int64(l.Latency) * int64(steps))
	ser := f.serialization(wire*int64(inFlight), l)
	ser = simtime.Duration(float64(ser)*RingStragglerFactor(d, l.JitterCV) + 0.5)
	return t + ser
}

// HierarchicalAllReduce reports the time for a two-level allreduce of
// n bytes per member across d members placed gpn-per-node
// (replica-major placement: the replicas of one pipeline stage pack
// into nodes, so the intra-node phase rides the fast local link and
// each node joins exactly one cross-node ring). For d ≤ gpn the whole
// ring is node-local.
func (f Fabric) HierarchicalAllReduce(n int64, d, gpn int, intra, inter hw.Link) simtime.Duration {
	if d <= 1 || n <= 0 {
		return 0
	}
	if gpn <= 1 {
		return f.AllReduce(n, d, inter, 1)
	}
	if d <= gpn {
		return f.AllReduce(n, d, intra, 1)
	}
	local := gpn
	if d%gpn != 0 {
		// Ragged placement: fall back to the largest full local group.
		local = d % gpn
		if local < 2 {
			local = gpn
		}
	}
	intraT := f.AllReduce(n, local, intra, 1)
	interT := f.AllReduce(n, (d+gpn-1)/gpn, inter, 1)
	return intraT + interT
}

// RingLink picks the link governing an allreduce ring over the given
// GPU ranks in a cluster: the slowest link between consecutive ring
// members (the ring is only as fast as its weakest hop).
func RingLink(c hw.Cluster, ranks []int) hw.Link {
	if len(ranks) <= 1 {
		return c.VM.Intra
	}
	worst := c.VM.Intra
	for i := range ranks {
		j := (i + 1) % len(ranks)
		l := c.LinkBetween(ranks[i], ranks[j])
		if l.BandwidthBps < worst.BandwidthBps {
			worst = l
		}
	}
	return worst
}
