package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/simtime"
)

func TestPointToPointComponents(t *testing.T) {
	f := New(1)
	l := hw.Ethernet10G
	// Zero bytes: pure latency.
	if got := f.PointToPoint(0, l); got != l.Latency {
		t.Fatalf("0-byte transfer = %v, want latency %v", got, l.Latency)
	}
	// 875 MB/s effective → 8.75 MB takes ~10 ms.
	got := f.PointToPoint(8_750_000, l)
	want := l.Latency + 10*simtime.Millisecond
	if diff := got - want; diff < -simtime.Millisecond || diff > simtime.Millisecond {
		t.Fatalf("transfer = %v, want ≈%v", got, want)
	}
}

func TestContentionOnlyHitsEthernet(t *testing.T) {
	plain, congested := New(1), New(2)
	n := int64(10 << 20)
	if congested.PointToPoint(n, hw.Ethernet10G) <= plain.PointToPoint(n, hw.Ethernet10G) {
		t.Fatal("contention must slow ethernet")
	}
	if congested.PointToPoint(n, hw.NVLink) != plain.PointToPoint(n, hw.NVLink) {
		t.Fatal("contention must not affect NVLink")
	}
	if New(0.5).Contention != 1 {
		t.Fatal("contention must clamp to >= 1")
	}
}

func TestAllReduceDegenerate(t *testing.T) {
	f := New(1)
	if f.AllReduce(1<<20, 1, hw.Ethernet10G, 1) != 0 {
		t.Fatal("1-member allreduce must be free")
	}
	if f.AllReduce(0, 8, hw.Ethernet10G, 1) != 0 {
		t.Fatal("0-byte allreduce must be free")
	}
}

func TestAllReduceRingScaling(t *testing.T) {
	f := New(1)
	n := int64(100 << 20)
	// Ring allreduce wire volume 2(d-1)/d·n converges as d grows:
	// going 2→16 members costs at most 2x in serialization, plus
	// latency steps.
	t2 := f.AllReduce(n, 2, hw.Ethernet10G, 1)
	t16 := f.AllReduce(n, 16, hw.Ethernet10G, 1)
	if t16 <= t2 {
		t.Fatal("bigger ring must cost more")
	}
	if float64(t16) > 2.5*float64(t2) {
		t.Fatalf("ring scaling too steep: d=2 %v vs d=16 %v", t2, t16)
	}
}

func TestAllReduceInFlightContention(t *testing.T) {
	f := New(1)
	n := int64(10 << 20)
	one := f.AllReduce(n, 8, hw.Ethernet10G, 1)
	four := f.AllReduce(n, 8, hw.Ethernet10G, 4)
	if four <= one {
		t.Fatal("4 in-flight allreduces must be slower than 1")
	}
	if f.AllReduce(n, 8, hw.Ethernet10G, 0) != one {
		t.Fatal("inFlight<1 must clamp to 1")
	}
}

func TestAllReduceMonotoneInBytes(t *testing.T) {
	f := New(1.5)
	if err := quick.Check(func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return f.AllReduce(x, 4, hw.Ethernet10G, 2) <= f.AllReduce(y, 4, hw.Ethernet10G, 2)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRingLinkWeakestHop(t *testing.T) {
	c := hw.SpotCluster(hw.NC24v3, 16)
	// Ring within one 4-GPU VM: PCIe.
	if got := RingLink(c, []int{0, 1, 2, 3}); got.Kind != hw.LinkPCIe {
		t.Fatalf("intra-VM ring = %v, want pcie", got.Kind)
	}
	// Ring spanning VMs: governed by ethernet.
	if got := RingLink(c, []int{0, 1, 4, 5}); got.Kind != hw.LinkEthernet {
		t.Fatalf("cross-VM ring = %v, want ethernet", got.Kind)
	}
	if got := RingLink(c, []int{3}); got.Kind != hw.LinkPCIe {
		t.Fatal("singleton ring uses intra link")
	}
}

func TestPaperScaleAllReduce(t *testing.T) {
	// Data-parallel allreduce for one stage of 8.3B at P=18:
	// 8.3e9/18 params × 2 bytes ≈ 0.92 GB per replica. Over 10 GbE
	// with D=4 this must take seconds — the reason Varuna limits D
	// (Observation 2).
	f := New(1)
	params := 8.3e9 / 18.0
	stageBytes := int64(params) * 2
	d4 := f.AllReduce(stageBytes, 4, hw.Ethernet10G, 1)
	if d4 < simtime.Second || d4 > 10*simtime.Second {
		t.Fatalf("stage allreduce = %v, want seconds-scale", d4)
	}
	// The same allreduce over NVLink is milliseconds.
	nv := f.AllReduce(stageBytes, 4, hw.NVLink, 1)
	if nv > 100*simtime.Millisecond {
		t.Fatalf("NVLink allreduce = %v, want tens of ms", nv)
	}
}

func TestHierarchicalAllReduce(t *testing.T) {
	f := New(1)
	n := int64(100 << 20)
	// Degenerate: gpn=1 equals the flat ring.
	if f.HierarchicalAllReduce(n, 8, 1, hw.PCIe3, hw.Ethernet10G) != f.AllReduce(n, 8, hw.Ethernet10G, 1) {
		t.Fatal("gpn=1 must equal flat ring")
	}
	// Ring inside one node: intra link only, much faster than ethernet.
	local := f.HierarchicalAllReduce(n, 4, 4, hw.PCIe3, hw.Ethernet10G)
	flat := f.AllReduce(n, 4, hw.Ethernet10G, 1)
	if local >= flat/2 {
		t.Fatalf("node-local ring %v should be far below ethernet %v", local, flat)
	}
	// Two-level: more than one node but cheaper than a flat ethernet
	// ring of all members at the same size (fewer cross-node steps).
	two := f.HierarchicalAllReduce(n, 16, 4, hw.PCIe3, hw.Ethernet10G)
	flat16 := f.AllReduce(n, 16, hw.Ethernet10G, 1)
	if two >= flat16 {
		t.Fatalf("hierarchical %v should beat flat 16-ring %v", two, flat16)
	}
	if f.HierarchicalAllReduce(0, 16, 4, hw.PCIe3, hw.Ethernet10G) != 0 {
		t.Fatal("0 bytes is free")
	}
	if f.HierarchicalAllReduce(n, 1, 4, hw.PCIe3, hw.Ethernet10G) != 0 {
		t.Fatal("1 member is free")
	}
	// Ragged placement still produces a positive, finite time.
	if f.HierarchicalAllReduce(n, 7, 4, hw.PCIe3, hw.Ethernet10G) <= 0 {
		t.Fatal("ragged hierarchy must still cost time")
	}
}

func TestRingStragglerFactor(t *testing.T) {
	if RingStragglerFactor(1, 0.5) != 1 || RingStragglerFactor(8, 0) != 1 {
		t.Fatal("degenerate factors must be 1")
	}
	if RingStragglerFactor(4, 0.25) >= RingStragglerFactor(64, 0.25) {
		t.Fatal("factor must grow with ring size")
	}
	if RingStragglerFactor(8, 0.1) >= RingStragglerFactor(8, 0.3) {
		t.Fatal("factor must grow with jitter")
	}
}
